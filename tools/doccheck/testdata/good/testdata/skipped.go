package skipped

const Undocumented = true

func AlsoUndocumented() {}
