// Package nested proves the walk recurses into subdirectories.
package nested

// Depth is documented.
const Depth = 2
