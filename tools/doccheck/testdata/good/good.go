// Package good is a fully documented fixture: every exported identifier
// carries a doc comment, so doccheck must report nothing.
package good

// Answer is a documented exported const.
const Answer = 42

// Grouped consts share the block comment.
const (
	One = 1
	Two = 2
)

// Name is a documented exported var.
var Name = "good"

// Thing is a documented exported type.
type Thing struct{}

// Do is a documented exported method.
func (t Thing) Do() {}

// Run is a documented exported function.
func Run() {}

type hidden struct{}

func (h hidden) poke() {}

func internal() {}

// EOL-commented exported values pass too.
var (
	Port = 80 // Port is the default port.
)
