package bad

func TestExemptFromDoccheck() {}
