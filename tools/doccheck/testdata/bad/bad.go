package bad

const Bare = 1

type Widget struct{}

func (w Widget) Spin() {}

func Exported() {}

func unexportedIsFine() {}

type small struct{}

func (s small) Quiet() {}
