package main

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckTreeGoodFixture: a fully documented tree, including a nested
// package and a testdata subdirectory full of undocumented code that the
// walk must skip, yields zero violations.
func TestCheckTreeGoodFixture(t *testing.T) {
	violations, err := checkTree(filepath.Join("testdata", "good"))
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("good fixture reported %d violations:\n%s",
			len(violations), strings.Join(violations, "\n"))
	}
}

// TestCheckTreeBadFixture pins every violation class: missing package
// doc, undocumented exported const, type, method, and function — while
// unexported identifiers, methods on unexported types, and _test.go
// files stay exempt.
func TestCheckTreeBadFixture(t *testing.T) {
	violations, err := checkTree(filepath.Join("testdata", "bad"))
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{
		"has no package doc comment",
		"exported const Bare has no doc comment",
		"exported type Widget has no doc comment",
		"exported method Widget.Spin has no doc comment",
		"exported function Exported has no doc comment",
	}
	if len(violations) != len(wants) {
		t.Fatalf("bad fixture reported %d violations, want %d:\n%s",
			len(violations), len(wants), strings.Join(violations, "\n"))
	}
	joined := strings.Join(violations, "\n")
	for _, want := range wants {
		if !strings.Contains(joined, want) {
			t.Errorf("missing violation %q in:\n%s", want, joined)
		}
	}
	for _, exempt := range []string{"unexportedIsFine", "Quiet", "TestExemptFromDoccheck"} {
		if strings.Contains(joined, exempt) {
			t.Errorf("exempt identifier %q reported:\n%s", exempt, joined)
		}
	}
	// Every violation is file:line: message — the format CI consumers
	// (and editors) rely on.
	for _, v := range violations {
		parts := strings.SplitN(v, ":", 3)
		if len(parts) != 3 || parts[1] == "" {
			t.Errorf("violation not in file:line: message form: %q", v)
		}
	}
}

// TestCheckTreeMissingRoot: a nonexistent root is an error, not a pass.
func TestCheckTreeMissingRoot(t *testing.T) {
	if _, err := checkTree(filepath.Join("testdata", "nope")); err == nil {
		t.Fatal("missing root did not error")
	}
}

// TestCheckFileBlockDoc: a doc comment on a const/var/type block covers
// every spec in the block (the grouped-decl rule checkTree relies on).
func TestCheckFileBlockDoc(t *testing.T) {
	src := `package x

// Block comment covers the group.
const (
	A = 1
	B = 2
)

// Types too.
type (
	T1 struct{}
	T2 struct{}
)
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "block.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	if out := checkFile(fset, file); len(out) != 0 {
		t.Fatalf("documented blocks reported: %v", out)
	}
}

// TestCheckFileGenericReceiver: methods on generic exported types are
// checked through the IndexExpr receiver path.
func TestCheckFileGenericReceiver(t *testing.T) {
	src := `package x

// List is documented.
type List[T any] struct{}

func (l *List[T]) Push(v T) {}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "generic.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	out := checkFile(fset, file)
	if len(out) != 1 || !strings.Contains(out[0], "List.Push") {
		t.Fatalf("generic receiver check = %v, want one List.Push violation", out)
	}
}
