// Command doccheck is the CI documentation gate: it fails when a package
// is missing a package-level doc comment or when an exported top-level
// identifier (type, function, method, or const/var group) is missing a doc
// comment. Test files and example files are exempt.
//
// Usage:
//
//	go run ./tools/doccheck [dir ...]
//
// Each dir is walked recursively; without arguments the current directory
// is walked. Exit status 1 reports violations, one per line, as
// file:line: message.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var violations []string
	for _, root := range roots {
		v, err := checkTree(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		violations = append(violations, v...)
	}
	sort.Strings(violations)
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifiers or packages\n", len(violations))
		os.Exit(1)
	}
}

// checkTree walks root and checks every non-test Go file.
func checkTree(root string) ([]string, error) {
	var violations []string
	packageHasDoc := map[string]bool{}  // dir -> any file carries a package comment
	packageFirst := map[string]string{} // dir -> representative file for the report
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") || name == "vendor" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		dir := filepath.Dir(path)
		if file.Doc != nil {
			packageHasDoc[dir] = true
		}
		if _, ok := packageFirst[dir]; !ok {
			packageFirst[dir] = path
		}
		violations = append(violations, checkFile(fset, file)...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for dir, first := range packageFirst {
		if !packageHasDoc[dir] {
			violations = append(violations, fmt.Sprintf("%s:1: package in %s has no package doc comment", first, dir))
		}
	}
	return violations, nil
}

// checkFile reports exported top-level declarations without doc comments.
func checkFile(fset *token.FileSet, file *ast.File) []string {
	var out []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, fmt.Sprintf(format, args...)))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil {
				if recvType, exported := receiverName(d.Recv); !exported {
					continue // methods on unexported types are internal API
				} else {
					report(d.Pos(), "exported method %s.%s has no doc comment", recvType, d.Name.Name)
					continue
				}
			}
			report(d.Pos(), "exported function %s has no doc comment", d.Name.Name)
		case *ast.GenDecl:
			// A doc comment on the const/var/type block covers the block.
			blockDocumented := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !blockDocumented && s.Doc == nil {
						report(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
					}
				case *ast.ValueSpec:
					if blockDocumented || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							report(s.Pos(), "exported %s %s has no doc comment", d.Tok, name.Name)
							break
						}
					}
				}
			}
		}
	}
	return out
}

// receiverName extracts the receiver's type name and whether it is
// exported.
func receiverName(recv *ast.FieldList) (string, bool) {
	if len(recv.List) == 0 {
		return "", false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name, tt.IsExported()
		default:
			return "", false
		}
	}
}
