package main

import (
	"strings"
	"testing"
)

// TestAllocBoundReportsPartitionLocalPhase pins the analyzer against the
// real repository, not a fixture: Partition's phase-1 local miner
// (mineVertical in internal/assoc/partition.go) is the ROADMAP's named
// allocation hotspot (76 MB / 1.4 M allocs per run), and its sites are
// deliberately suppressed in-tree with reasons. This test bypasses the
// suppression layer and asserts the raw analyzer still proves every one
// of those sites, so the suppressions stay honest: if a refactor removes
// an allocation the stale directive shows up here, and if allocbound
// regresses into missing them the repo gate would silently stop
// guarding the hot path.
func TestAllocBoundReportsPartitionLocalPhase(t *testing.T) {
	units, err := sharedLoader.loadUnits("../../internal/assoc")
	if err != nil {
		t.Fatalf("loading internal/assoc: %v", err)
	}
	var raw []Finding
	for _, u := range units {
		if u.Pkg != "assoc" {
			continue
		}
		for _, f := range u.Files {
			raw = append(raw, analyzerAllocBound.Run(f)...)
		}
	}
	sortFindings(raw)

	var mineVertical []Finding
	for _, fd := range raw {
		if strings.Contains(fd.Message, "mineVertical") {
			mineVertical = append(mineVertical, fd)
			if !strings.HasSuffix(fd.File, "partition.go") {
				t.Errorf("mineVertical finding outside partition.go: %s", fd)
			}
		}
	}

	// The known local-phase allocation sites, in source order: the L1
	// singleton itemset literal and its level append (same line), the
	// result accumulation append, and the per-candidate join append.
	wants := []string{
		"allocates a slice literal transactions.Itemset",
		"appends to level",
		"appends to out",
		"appends to next",
	}
	if len(mineVertical) != len(wants) {
		t.Fatalf("mineVertical findings = %d, want %d:\n%s",
			len(mineVertical), len(wants), joinFindings(mineVertical))
	}
	for _, want := range wants {
		found := false
		for _, fd := range mineVertical {
			if strings.Contains(fd.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no mineVertical finding matching %q in:\n%s", want, joinFindings(mineVertical))
		}
	}

	// And the suppressed tree is clean: every raw finding above carries a
	// reasoned directive.
	var after []Finding
	for _, u := range units {
		after = append(after, checkUnit(u, []*Analyzer{analyzerAllocBound})...)
	}
	if len(after) != 0 {
		t.Errorf("suppressed tree not clean:\n%s", joinFindings(after))
	}
}
