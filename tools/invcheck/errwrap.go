package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// analyzerErrWrap guards the error-discipline contract from PR 6:
// package-level error sentinels (ErrNoHealthyWorkers, ErrWALFailed,
// io.EOF, …) travel through retry loops, transports, and facade layers
// wrapped in context, so direct ==/!= comparisons and %v formatting
// silently stop matching the moment anyone adds a wrap. errors.Is and
// %w are the only forms that survive composition.
//
// The typed pass resolves sentinels as objects: any package-level
// variable whose type implements error is a sentinel, whatever it is
// named — the syntactic Err[A-Z]* pattern missed lower-cased and
// imported sentinels (io.EOF, context.Canceled) and fired on
// non-error identifiers that merely looked the part.
var analyzerErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "error-typed sentinel objects are matched with errors.Is and wrapped with %w",
	Run:  runErrWrap,
}

// runErrWrap reports ==/!= comparisons against sentinels, switch cases
// on sentinels, and fmt.Errorf calls that format a sentinel without %w.
func runErrWrap(f *SrcFile) []Finding {
	var out []Finding
	ast.Inspect(f.File, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BinaryExpr:
			if v.Op != token.EQL && v.Op != token.NEQ {
				return true
			}
			if name := sentinelName(f, v.X); name != "" {
				out = append(out, f.finding("errwrap", v.Pos(),
					"sentinel %s compared with %s; use errors.Is so wrapped errors still match", name, v.Op))
			} else if name := sentinelName(f, v.Y); name != "" {
				out = append(out, f.finding("errwrap", v.Pos(),
					"sentinel %s compared with %s; use errors.Is so wrapped errors still match", name, v.Op))
			}
		case *ast.SwitchStmt:
			if v.Tag == nil {
				return true
			}
			for _, stmt := range v.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, expr := range cc.List {
					if name := sentinelName(f, expr); name != "" {
						out = append(out, f.finding("errwrap", expr.Pos(),
							"switch case on sentinel %s compares with ==; use errors.Is chains instead", name))
					}
				}
			}
		case *ast.CallExpr:
			if !f.isPkgFunc(v, "fmt", "Errorf") || len(v.Args) < 2 {
				return true
			}
			lit, ok := v.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING || strings.Contains(lit.Value, "%w") {
				return true
			}
			for _, arg := range v.Args[1:] {
				if name := deepSentinelName(f, arg); name != "" {
					out = append(out, f.finding("errwrap", v.Pos(),
						"fmt.Errorf formats sentinel %s without %%w; errors.Is will not match the result", name))
					break
				}
			}
		}
		return true
	})
	return out
}

// sentinelName returns the rendered name when the expression resolves
// to a package-level variable whose type implements error — the typed
// definition of a sentinel — and "" otherwise. Locals, fields, and
// non-error variables never match.
func sentinelName(f *SrcFile, e ast.Expr) string {
	var id *ast.Ident
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return ""
	}
	obj := f.obj(id)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return ""
	}
	if v.Parent() != v.Pkg().Scope() {
		return "" // not package-level: locals may alias freely
	}
	if !isErrorType(v.Type()) {
		return ""
	}
	return types.ExprString(ast.Unparen(e))
}

// deepSentinelName walks the expression for any embedded sentinel
// reference (covers arguments like ErrX or pkg.ErrX inside casts).
func deepSentinelName(f *SrcFile, e ast.Expr) string {
	name := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		if expr, ok := n.(ast.Expr); ok {
			if s := sentinelName(f, expr); s != "" {
				name = s
				return false
			}
		}
		return true
	})
	return name
}
