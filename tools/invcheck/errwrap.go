package main

import (
	"go/ast"
	"go/token"
	"strings"
	"unicode"
)

// analyzerErrWrap guards the error-discipline contract from PR 6:
// package-level Err* sentinels (ErrNoHealthyWorkers, ErrWALFailed, …)
// travel through retry loops, transports, and facade layers wrapped in
// context, so direct ==/!= comparisons and %v formatting silently stop
// matching the moment anyone adds a wrap. errors.Is and %w are the only
// forms that survive composition.
var analyzerErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "Err* sentinels are matched with errors.Is and wrapped with %w",
	Run:  runErrWrap,
}

// runErrWrap reports ==/!= comparisons against sentinels, switch cases
// on sentinels, and fmt.Errorf calls that format a sentinel without %w.
func runErrWrap(f *SrcFile) []Finding {
	var out []Finding
	fmtIdent := importIdent(f, "fmt")
	ast.Inspect(f.File, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BinaryExpr:
			if v.Op != token.EQL && v.Op != token.NEQ {
				return true
			}
			if name := sentinelName(v.X); name != "" {
				out = append(out, f.finding("errwrap", v.Pos(),
					"sentinel %s compared with %s; use errors.Is so wrapped errors still match", name, v.Op))
			} else if name := sentinelName(v.Y); name != "" {
				out = append(out, f.finding("errwrap", v.Pos(),
					"sentinel %s compared with %s; use errors.Is so wrapped errors still match", name, v.Op))
			}
		case *ast.SwitchStmt:
			if v.Tag == nil {
				return true
			}
			for _, stmt := range v.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, expr := range cc.List {
					if name := sentinelName(expr); name != "" {
						out = append(out, f.finding("errwrap", expr.Pos(),
							"switch case on sentinel %s compares with ==; use errors.Is chains instead", name))
					}
				}
			}
		case *ast.CallExpr:
			if !isPkgCall(v, fmtIdent, "Errorf") || len(v.Args) < 2 {
				return true
			}
			lit, ok := v.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING || strings.Contains(lit.Value, "%w") {
				return true
			}
			for _, arg := range v.Args[1:] {
				if name := deepSentinelName(arg); name != "" {
					out = append(out, f.finding("errwrap", v.Pos(),
						"fmt.Errorf formats sentinel %s without %%w; errors.Is will not match the result", name))
					break
				}
			}
		}
		return true
	})
	return out
}

// sentinelName returns the Err*-style name when the expression is a
// bare or package-qualified sentinel identifier, "" otherwise.
func sentinelName(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		if isSentinelIdent(v.Name) {
			return v.Name
		}
	case *ast.SelectorExpr:
		if isSentinelIdent(v.Sel.Name) {
			if id, ok := v.X.(*ast.Ident); ok {
				return id.Name + "." + v.Sel.Name
			}
		}
	}
	return ""
}

// deepSentinelName walks the expression for any embedded sentinel
// reference (covers arguments like ErrX or pkg.ErrX inside casts).
func deepSentinelName(e ast.Expr) string {
	name := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		if expr, ok := n.(ast.Expr); ok {
			if s := sentinelName(expr); s != "" {
				name = s
				return false
			}
		}
		return true
	})
	return name
}

// isSentinelIdent reports whether name follows the package-sentinel
// convention: Err followed by an upper-case letter or digit.
func isSentinelIdent(name string) bool {
	if !strings.HasPrefix(name, "Err") || len(name) < 4 {
		return false
	}
	r := rune(name[3])
	return unicode.IsUpper(r) || unicode.IsDigit(r)
}
