package main

import (
	"go/ast"
	"strings"
)

// analyzerCtxDiscipline guards the cancellation contract from PR 5:
// every engine hot loop polls its context, which only works when the
// context actually reaches the loop. Exported entry points in the
// engine, distribution, serving, and facade packages that iterate over
// shards or transactions must accept ctx context.Context as their
// first parameter; and contexts must flow through call chains, never
// hide in struct fields where they outlive their caller (the
// ctxFieldAllowlist names the session types permitted to carry one).
//
// The typed pass resolves context.Context by type identity, so type
// aliases (type reqCtx = context.Context) and renamed imports cannot
// smuggle a stored context past the gate the way they could past the
// selector-text match.
var analyzerCtxDiscipline = &Analyzer{
	Name:     "ctxdiscipline",
	Doc:      "shard/transaction loops in exported engine functions take ctx first; no ctx struct fields",
	Packages: []string{"assoc", "dist", "serve", "mining"},
	Run:      runCtxDiscipline,
}

// ctxFieldAllowlist names struct types allowed to store a
// context.Context (long-lived session carriers with documented
// lifecycles). Empty today: every current type threads ctx through
// calls instead.
var ctxFieldAllowlist = map[string]bool{}

// runCtxDiscipline reports exported shard-looping functions without a
// leading ctx parameter and struct fields that capture a context.
func runCtxDiscipline(f *SrcFile) []Finding {
	var out []Finding
	funcBodies(f, func(fd *ast.FuncDecl) {
		if !fd.Name.IsExported() || isRPCShape(fd) {
			return
		}
		loop := shardLoopPos(fd)
		if loop == nil {
			return
		}
		if !firstParamIsCtx(f, fd) {
			out = append(out, f.finding("ctxdiscipline", fd.Pos(),
				"exported %s loops over shards/transactions but does not take ctx context.Context as its first parameter; hot loops must be cancellable", fd.Name.Name))
		}
	})
	for _, decl := range f.File.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || ctxFieldAllowlist[ts.Name.Name] {
				continue
			}
			for _, field := range st.Fields.List {
				if isContextType(f, field.Type) {
					out = append(out, f.finding("ctxdiscipline", field.Pos(),
						"struct %s stores a context.Context; pass ctx through calls (or allowlist a session type with a documented lifecycle)", ts.Name.Name))
				}
			}
		}
	}
	return out
}

// isRPCShape reports whether fd has the net/rpc service-method
// signature — method, two parameters of which the second (the reply)
// is a pointer, single error result — which structurally cannot take a
// context and is exempt.
func isRPCShape(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Type.Params == nil || fd.Type.Results == nil {
		return false
	}
	var types []ast.Expr
	for _, p := range fd.Type.Params.List {
		c := len(p.Names)
		if c == 0 {
			c = 1
		}
		for i := 0; i < c; i++ {
			types = append(types, p.Type)
		}
	}
	if len(types) != 2 {
		return false
	}
	if _, ok := types[1].(*ast.StarExpr); !ok {
		return false
	}
	res := fd.Type.Results.List
	if len(res) != 1 {
		return false
	}
	id, ok := res[0].Type.(*ast.Ident)
	return ok && id.Name == "error"
}

// shardLoopPos returns the first loop in fd whose header ranges over or
// conditions on a shard/transaction expression, nil when none does.
// Only the loop header counts: mentioning shards in a body statement is
// not iteration over them.
func shardLoopPos(fd *ast.FuncDecl) ast.Node {
	var found ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch st := n.(type) {
		case *ast.RangeStmt:
			if mentionsShardish(st.X) {
				found = st
			}
		case *ast.ForStmt:
			if st.Cond != nil && mentionsShardish(st.Cond) {
				found = st
			}
		}
		return true
	})
	return found
}

// mentionsShardish reports whether the expression's identifiers name
// shards or transactions (case-insensitive substring match).
func mentionsShardish(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		var name string
		switch v := n.(type) {
		case *ast.Ident:
			name = v.Name
		case *ast.SelectorExpr:
			name = v.Sel.Name
		default:
			return true
		}
		lower := strings.ToLower(name)
		if strings.Contains(lower, "shard") || strings.Contains(lower, "transact") {
			found = true
			return false
		}
		return true
	})
	return found
}

// firstParamIsCtx reports whether fd's first parameter is
// ctx context.Context (both the name and the type are part of the
// contract: callers grep for ctx, and the name is what the hot-loop
// polling helpers close over).
func firstParamIsCtx(f *SrcFile, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
		return false
	}
	first := fd.Type.Params.List[0]
	if len(first.Names) == 0 || first.Names[0].Name != "ctx" {
		return false
	}
	return isContextType(f, first.Type)
}

// isContextType reports whether the type expression denotes
// context.Context, resolved through the checker so aliases and renamed
// imports count.
func isContextType(f *SrcFile, t ast.Expr) bool {
	return isNamedType(f.typeOf(t), "context", "Context")
}
