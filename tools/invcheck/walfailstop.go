package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// analyzerWALFailStop guards the durability contract of the write-ahead
// log: an op is acknowledged only after its record is written and (under
// SyncAlways) fsynced, and the first failed write latches the log into
// fail-stop. Both halves die silently if an error from a write-shaped
// call is dropped, shadowed, or checked only after the state it was
// supposed to gate has already advanced — the op is acked, the torn
// snapshot renamed into place, the old segments deleted.
//
// In the wal and serve packages, every call to a persist-shaped callee
// (a function returning error whose name contains write, sync, append,
// flush, snapshot, or persist) must have its error:
//   - captured — not discarded as a bare statement, defer, or go, and
//     not assigned to _;
//   - read — an error assigned to a variable that is never read before
//     the variable is reassigned or goes dead is swallowed (this is how
//     a shadowed err hides a failed fsync);
//   - checked in time — the first read must come before any subsequent
//     gated call (another persist, or a rename/apply/ack/commit that
//     advances state the error should have stopped).
//
// bytes.Buffer, strings.Builder, and http.ResponseWriter receivers are
// exempt: their Write errors are documented always-nil or are the
// response path itself.
var analyzerWALFailStop = &Analyzer{
	Name:     "walfailstop",
	Doc:      "wal/serve persist errors are captured, read, and checked before state advances",
	Packages: []string{"wal", "serve"},
	Run:      runWALFailStop,
}

// persistVerbs are the name fragments that mark a callee as
// persist-shaped.
var persistVerbs = []string{"write", "sync", "append", "flush", "snapshot", "persist"}

// gateVerbs extend persistVerbs with the state-advancing calls an
// unchecked error must not flow past: renames publish files, apply/ack/
// reply/commit acknowledge ops.
var gateVerbs = []string{"rename", "apply", "ack", "reply", "commit"}

// allGateVerbs is the union used by the intervening-call scan.
var allGateVerbs = append(append([]string{}, persistVerbs...), gateVerbs...)

// runWALFailStop checks every function body in the gated packages.
func runWALFailStop(f *SrcFile) []Finding {
	var out []Finding
	funcBodies(f, func(fd *ast.FuncDecl) {
		out = append(out, checkFailStop(f, fd)...)
	})
	return out
}

// errTrack records one persist error captured into a variable, for the
// read-before-gate analysis.
type errTrack struct {
	obj  types.Object
	pos  token.Pos // position of the persist call
	call string    // callee name, for messages
}

// checkFailStop applies the three fail-stop rules to one function body.
func checkFailStop(f *SrcFile, fd *ast.FuncDecl) []Finding {
	var out []Finding
	var tracked []errTrack
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
				if name, ok := persistCallName(f, call); ok {
					out = append(out, f.finding("walfailstop", call.Pos(),
						"error from %s discarded; wal writes are fail-stop — the error must gate what happens next", name))
				}
			}
		case *ast.DeferStmt:
			if name, ok := persistCallName(f, st.Call); ok {
				out = append(out, f.finding("walfailstop", st.Call.Pos(),
					"error from deferred %s discarded; a deferred persist failure must still be observed (capture it into a named result)", name))
			}
		case *ast.GoStmt:
			if name, ok := persistCallName(f, st.Call); ok {
				out = append(out, f.finding("walfailstop", st.Call.Pos(),
					"error from %s discarded by go statement; persist errors cannot be checked across a goroutine boundary", name))
			}
		case *ast.AssignStmt:
			tracked = append(tracked, trackAssign(f, st, &out)...)
		}
		return true
	})
	if len(tracked) > 0 {
		reads, writes := identAccesses(f, fd)
		for _, t := range tracked {
			out = append(out, checkTracked(f, fd, t, reads[t.obj], writes[t.obj])...)
		}
	}
	return out
}

// trackAssign handles a persist call on the right-hand side of an
// assignment: error results assigned to _ are findings immediately;
// error results captured into identifiers are returned for the
// read-before-gate analysis; stores into fields escape and are assumed
// checked by whoever reads the field.
func trackAssign(f *SrcFile, st *ast.AssignStmt, out *[]Finding) []errTrack {
	if len(st.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	name, ok := persistCallName(f, call)
	if !ok {
		return nil
	}
	var tracked []errTrack
	for _, i := range errorResultIndexes(f, call) {
		if i >= len(st.Lhs) {
			break
		}
		id, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		if id.Name == "_" {
			*out = append(*out, f.finding("walfailstop", id.Pos(),
				"error from %s assigned to _; wal writes are fail-stop — the error must be checked", name))
			continue
		}
		if obj := f.obj(id); obj != nil {
			tracked = append(tracked, errTrack{obj: obj, pos: call.Pos(), call: name})
		}
	}
	return tracked
}

// checkTracked applies the read-before-gate rules to one captured
// error: never read before its next overwrite means swallowed; first
// read after an intervening gated call means checked too late. Only an
// overwrite in the SAME statement block closes the read window — a
// write in a sibling branch (the other arm of a switch assigning the
// same err variable) is on a different execution path and proves
// nothing about this one.
func checkTracked(f *SrcFile, fd *ast.FuncDecl, t errTrack, reads, writes []token.Pos) []Finding {
	trackedBlock := blockOf(fd, t.pos)
	nextWrite := token.Pos(0)
	for _, wp := range writes {
		if wp > t.pos && blockOf(fd, wp) == trackedBlock {
			nextWrite = wp
			break
		}
	}
	firstRead := token.Pos(0)
	for _, rp := range reads {
		if rp > t.pos && (nextWrite == 0 || rp < nextWrite) {
			firstRead = rp
			break
		}
	}
	if firstRead == 0 {
		return []Finding{f.finding("walfailstop", t.pos,
			"error from %s assigned to %s but never read; a shadowed or overwritten error swallows a failed persist", t.call, t.obj.Name())}
	}
	if gname, ok := gatedCallBetween(f, fd, t.pos, firstRead); ok {
		return []Finding{f.finding("walfailstop", t.pos,
			"error from %s not checked before subsequent %s; the failure must stop the op before more state advances", t.call, gname)}
	}
	return nil
}

// blockOf returns the innermost statement list (block, case clause, or
// select clause) enclosing pos — the unit within which statements
// execute sequentially.
func blockOf(fd *ast.FuncDecl, pos token.Pos) ast.Node {
	var best ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			if n.Pos() <= pos && pos < n.End() {
				if best == nil || (n.Pos() >= best.Pos() && n.End() <= best.End()) {
					best = n
				}
			}
		}
		return true
	})
	return best
}

// gatedCallBetween reports the first state-advancing call strictly
// between the two positions. Calls inside a switch/select clause that
// contains neither endpoint sit on a sibling execution path — the other
// arm of the branch — and never run between the capture and the read.
func gatedCallBetween(f *SrcFile, fd *ast.FuncDecl, from, to token.Pos) (string, bool) {
	name, found := "", false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= from || call.Pos() >= to {
			return true
		}
		if onSiblingBranch(fd, call.Pos(), from, to) {
			return true
		}
		cn := calleeName(call)
		if cn == "" {
			return true
		}
		lower := strings.ToLower(cn)
		for _, verb := range allGateVerbs {
			if strings.Contains(lower, verb) {
				name, found = cn, true
				return false
			}
		}
		return true
	})
	return name, found
}

// onSiblingBranch reports whether pos sits inside a switch or select
// clause that contains neither endpoint of the capture-to-read span.
func onSiblingBranch(fd *ast.FuncDecl, pos, from, to token.Pos) bool {
	sibling := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sibling {
			return false
		}
		switch n.(type) {
		case *ast.CaseClause, *ast.CommClause:
			if n.Pos() <= pos && pos < n.End() {
				containsFrom := n.Pos() <= from && from < n.End()
				containsTo := n.Pos() <= to && to < n.End()
				if !containsFrom && !containsTo {
					sibling = true
					return false
				}
			}
		}
		return true
	})
	return sibling
}

// persistCallName classifies a call as persist-shaped: a resolvable
// function or method returning at least one error whose name carries a
// persist verb, excluding the always-nil and response-path receivers.
func persistCallName(f *SrcFile, call *ast.CallExpr) (string, bool) {
	fn, ok := f.calleeObj(call).(*types.Func)
	if !ok {
		return "", false
	}
	lower := strings.ToLower(fn.Name())
	verb := false
	for _, v := range persistVerbs {
		if strings.Contains(lower, v) {
			verb = true
			break
		}
	}
	if !verb {
		return "", false
	}
	if len(errorResultIndexes(f, call)) == 0 {
		return "", false
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if exemptWriteReceiver(f.typeOf(sel.X)) {
			return "", false
		}
	}
	return fn.Name(), true
}

// errorResultIndexes returns the result positions of the call's callee
// signature whose type implements error.
func errorResultIndexes(f *SrcFile, call *ast.CallExpr) []int {
	t := f.typeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	var out []int
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			out = append(out, i)
		}
	}
	return out
}

// exemptWriteReceiver reports whether the receiver type's writes are
// exempt from fail-stop: bytes.Buffer and strings.Builder document
// always-nil errors, and http.ResponseWriter IS the failure-reporting
// path.
func exemptWriteReceiver(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	return isNamedType(t, "bytes", "Buffer") ||
		isNamedType(t, "strings", "Builder") ||
		isNamedType(t, "net/http", "ResponseWriter")
}

// identAccesses indexes every read and write of each variable in fd's
// body, positions sorted ascending. Assignment left-hand sides count as
// writes (including :=); every other identifier use counts as a read.
func identAccesses(f *SrcFile, fd *ast.FuncDecl) (reads, writes map[types.Object][]token.Pos) {
	lhs := make(map[*ast.Ident]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, e := range st.Lhs {
				if id, ok := ast.Unparen(e).(*ast.Ident); ok {
					lhs[id] = true
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{st.Key, st.Value} {
				if id, ok := e.(*ast.Ident); ok {
					lhs[id] = true
				}
			}
		}
		return true
	})
	reads = make(map[types.Object][]token.Pos)
	writes = make(map[types.Object][]token.Pos)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := f.obj(id)
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if lhs[id] {
			writes[obj] = append(writes[obj], id.Pos())
		} else {
			reads[obj] = append(reads[obj], id.Pos())
		}
		return true
	})
	for _, m := range []map[types.Object][]token.Pos{reads, writes} {
		for _, ps := range m {
			sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
		}
	}
	return reads, writes
}
