package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// runOn runs exactly one analyzer (plus the suppression layer) over a
// fixture tree and returns the findings.
func runOn(t *testing.T, analyzer, root string) []Finding {
	t.Helper()
	selected, err := selectAnalyzers(analyzer)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := checkTree(root, selected)
	if err != nil {
		t.Fatal(err)
	}
	sortFindings(findings)
	return findings
}

// joinFindings renders findings one per line for failure messages and
// substring assertions.
func joinFindings(findings []Finding) string {
	lines := make([]string, len(findings))
	for i, f := range findings {
		lines[i] = f.String()
	}
	return strings.Join(lines, "\n")
}

// TestAnalyzerFixtures drives every analyzer over its good/bad fixture
// pair: the good tree is clean, and the bad tree reports exactly the
// pinned violation classes.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		analyzer string
		wants    []string // one substring per expected bad-tree finding
	}{
		{
			analyzer: "determinism",
			wants: []string{
				"time.Now in replayed engine code",
				"time.Since in replayed engine code",
				"rand.Intn draws from the global source",
				"range over map counts appends to a slice with no sort in mapOrderIntoSlice",
				"map iteration order over counts reaches the output stream",
			},
		},
		{
			analyzer: "ctxdiscipline",
			wants: []string{
				"exported CountAll loops over shards/transactions",
				"exported ScanTransactions loops over shards/transactions",
				"struct pinnedScanner stores a context.Context",
			},
		},
		{
			analyzer: "errwrap",
			wants: []string{
				"sentinel ErrCorrupt compared with ==",
				"sentinel ErrCorrupt compared with !=",
				"sentinel io.EOF compared with ==",
				"sentinel errShutdown compared with ==",
				"switch case on sentinel ErrCorrupt",
				"fmt.Errorf formats sentinel ErrCorrupt without %w",
			},
		},
		{
			analyzer: "goroutines",
			wants: []string{
				"go statement in fireAndForget has no lexically-paired join",
				"go statement in detachedLiteral has no lexically-paired join",
			},
		},
		{
			analyzer: "atomicpublish",
			wants: []string{
				"field view stored outside a publish helper (in refresh)",
				"field view stored outside a publish helper (in reset)",
			},
		},
		{
			analyzer: "allocbound",
			wants: []string{
				"hot path sliceLiteral allocates a slice literal []int",
				"hot path mapLiteral allocates a map literal map[int]bool",
				"hot path heapEscape heap-allocates &record",
				"hot path growingAppend appends to dst without capacity provably preallocated by make",
				"hot path concat concatenates strings",
				"hot path boxes boxes id (int) into interface parameter",
				"hot path closureCapture creates a closure capturing total by reference",
			},
		},
		{
			analyzer: "mergepure",
			wants: []string{
				"Merge stores to parameter src",
				"StampInto touches package-level mutable state mergeEpoch",
				"currentEpoch touches package-level mutable state mergeEpoch",
				"TraceInto calls fmt.Println, which is not on the pure-helper allowlist",
				"HookInto calls through a function value (hook)",
			},
		},
		{
			analyzer: "walfailstop",
			wants: []string{
				"error from Sync discarded",
				"error from Write assigned to _",
				"bad.go:29: [walfailstop] error from Sync assigned to err but never read",
				"bad.go:48: [walfailstop] error from Sync assigned to err but never read",
				"error from Write not checked before subsequent rename",
				"error from deferred Sync discarded",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			good := runOn(t, tc.analyzer, filepath.Join("testdata", tc.analyzer, "good"))
			if len(good) != 0 {
				t.Errorf("good fixture reported %d findings:\n%s", len(good), joinFindings(good))
			}
			bad := runOn(t, tc.analyzer, filepath.Join("testdata", tc.analyzer, "bad"))
			if len(bad) != len(tc.wants) {
				t.Fatalf("bad fixture reported %d findings, want %d:\n%s",
					len(bad), len(tc.wants), joinFindings(bad))
			}
			joined := joinFindings(bad)
			for _, want := range tc.wants {
				if !strings.Contains(joined, want) {
					t.Errorf("missing finding %q in:\n%s", want, joined)
				}
			}
			for _, f := range bad {
				if f.Analyzer != tc.analyzer {
					t.Errorf("finding attributed to %q, want %q: %s", f.Analyzer, tc.analyzer, f)
				}
			}
		})
	}
}

// TestDeterminismScope: the determinism analyzer gates only the
// byte-identity packages — the same wall-clock read that fails in
// package assoc passes in package experiments (the good fixture's
// unscoped subdirectory).
func TestDeterminismScope(t *testing.T) {
	findings := runOn(t, "determinism", filepath.Join("testdata", "determinism", "good", "unscoped"))
	if len(findings) != 0 {
		t.Fatalf("unscoped package reported %d findings:\n%s", len(findings), joinFindings(findings))
	}
}

// TestSuppressionFixtures pins the suppression contract: a reasoned
// directive (line above or same line) silences its finding; a missing
// reason or an unknown analyzer name is itself a violation AND leaves
// the original finding standing.
func TestSuppressionFixtures(t *testing.T) {
	good := runOn(t, "goroutines", filepath.Join("testdata", "suppress", "good"))
	if len(good) != 0 {
		t.Errorf("suppressed good fixture reported %d findings:\n%s", len(good), joinFindings(good))
	}
	bad := runOn(t, "goroutines", filepath.Join("testdata", "suppress", "bad"))
	wants := []string{
		"suppression for invcheck/goroutines is missing a reason",
		`suppression names unknown analyzer "nosuchcheck"`,
		"go statement in missingReason",
		"go statement in unknownAnalyzer",
	}
	if len(bad) != len(wants) {
		t.Fatalf("suppress bad fixture reported %d findings, want %d:\n%s",
			len(bad), len(wants), joinFindings(bad))
	}
	joined := joinFindings(bad)
	for _, want := range wants {
		if !strings.Contains(joined, want) {
			t.Errorf("missing finding %q in:\n%s", want, joined)
		}
	}
}

// TestSuppressionScopedToAnalyzer: a directive only silences its named
// analyzer — a goroutines ignore must not hide an errwrap finding on
// the same line.
func TestSuppressionScopedToAnalyzer(t *testing.T) {
	src := writeFixtureFile(t, "cross.go", `// Package worker crosses suppressions.
package worker

import "errors"

// ErrGone is the fixture sentinel.
var ErrGone = errors.New("gone")

func compare(err error) bool {
	//lint:ignore invcheck/goroutines wrong analyzer for the line below
	return err == ErrGone
}
`)
	findings := runOn(t, "errwrap", src)
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "ErrGone") {
		t.Fatalf("cross-analyzer suppression leaked: %s", joinFindings(findings))
	}
}
