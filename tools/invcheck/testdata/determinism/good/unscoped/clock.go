// Package experiments is outside the determinism gate: measurement
// harnesses may read the wall clock and the analyzer must not fire.
package experiments

import "time"

func measure(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
