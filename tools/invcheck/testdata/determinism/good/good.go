// Package wal is a determinism good fixture: seeded randomness,
// sorted map drains, per-key appends, and slice iteration.
package wal

import (
	"math/rand"
	"sort"
)

func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func sortedDrain(counts map[int]int) []int {
	var keys []int
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func perKeyAppend(parts map[int][]int, extra map[int]int) {
	for k, v := range extra {
		parts[k] = append(parts[k], v)
	}
}

func sliceIteration(rows [][]int) []int {
	var out []int
	for _, row := range rows {
		out = append(out, row...)
	}
	return out
}
