// Package assoc is a determinism bad fixture: wall-clock reads,
// global-source rand, and map iteration leaking into results.
package assoc

import (
	"fmt"
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()
	return time.Since(start)
}

func globalRand() int {
	return rand.Intn(10)
}

func mapOrderIntoSlice(counts map[int]int) []int {
	var out []int
	for k, v := range counts {
		out = append(out, k*v)
	}
	return out
}

func mapOrderIntoOutput(counts map[int]int) {
	for k, v := range counts {
		fmt.Println(k, v)
	}
}
