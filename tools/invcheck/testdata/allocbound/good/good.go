// Package assoc is an allocbound good fixture: hotpath functions that
// reuse scratch and preallocate, plus an unannotated function whose
// allocations must not fire.
package assoc

// counter accumulates per-item counts with preallocated scratch.
type counter struct {
	counts  []int
	scratch []int
}

//invcheck:hotpath
func (c *counter) countRow(row []int) {
	dst := make([]int, 0, len(row))
	for _, id := range row {
		c.counts[id]++
		dst = append(dst, id)
	}
	c.scratch = c.scratch[:0]
}

//invcheck:hotpath
func sumInto(dst []int, src []int) {
	for i, v := range src {
		dst[i] += v
	}
}

// buildIndex is NOT annotated: its allocations are setup-phase and out
// of scope.
func buildIndex(rows [][]int) map[int][]int {
	idx := map[int][]int{}
	for tid, row := range rows {
		for _, id := range row {
			idx[id] = append(idx[id], tid)
		}
	}
	return idx
}

// sink consumes an already-interface value: passing an interface
// through never boxes.
func sink(v any) { _ = v }

//invcheck:hotpath
func passThrough(v any, p *counter) {
	sink(v)                          // interface-to-interface: no box
	sink(p)                          // pointer-shaped: no copy allocation
	sink(nil)                        // nil never boxes
	sink(any(&counter{counts: nil})) //lint:ignore invcheck/allocbound fixture pins that a reasoned suppression silences a deliberate site
}

//invcheck:hotpath
func constantConcat() string {
	const prefix = "item-" + "v1" // constant-folded: no runtime concat
	return prefix
}
