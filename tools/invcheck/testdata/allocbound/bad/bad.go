// Package assoc is an allocbound bad fixture: one annotated function
// per provable allocation class.
package assoc

type record struct {
	id    int
	items []int
}

//invcheck:hotpath
func sliceLiteral(row []int) []int {
	out := []int{row[0]} // slice literal allocates per call
	return out
}

//invcheck:hotpath
func mapLiteral(row []int) map[int]bool {
	seen := map[int]bool{} // map literal allocates per call
	for _, id := range row {
		seen[id] = true
	}
	return seen
}

//invcheck:hotpath
func heapEscape(id int) *record {
	return &record{id: id} // &composite escapes to the heap
}

//invcheck:hotpath
func growingAppend(dst []int, row []int) []int {
	for _, id := range row {
		dst = append(dst, id) // dst's capacity is not provably preallocated here
	}
	return dst
}

//invcheck:hotpath
func concat(name string, n int) string {
	return name + name // runtime string concatenation
}

// emit takes an interface parameter, so concrete arguments box.
func emit(v any) { _ = v }

//invcheck:hotpath
func boxes(id int) {
	emit(id) // int boxed into any per call
}

//invcheck:hotpath
func closureCapture(rows [][]int) int {
	total := 0
	walk := func(row []int) { // captures total by reference
		total += len(row)
	}
	for _, row := range rows {
		walk(row)
	}
	return total
}
