// Package serve is an atomicpublish bad fixture: view stores scattered
// outside the publish helper.
package serve

import "sync/atomic"

type view struct{ version uint64 }

type server struct {
	view atomic.Pointer[view]
}

// refresh stores the view pointer directly instead of routing through
// the publish helper: flagged.
func (s *server) refresh() {
	s.view.Store(&view{})
}

// reset also swaps in place: flagged.
func (s *server) reset(v *view) {
	s.view.Store(v)
}
