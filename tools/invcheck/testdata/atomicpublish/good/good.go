// Package serve is an atomicpublish good fixture: every view swap goes
// through the designated publish helper, and non-pointer atomics are
// not gated.
package serve

import "sync/atomic"

type view struct{ version uint64 }

type server struct {
	view  atomic.Pointer[view]
	ready atomic.Bool
}

// publish is the single designated store point.
func (s *server) publish(v *view) {
	s.view.Store(v)
}

// refresh routes its swap through publish and flips a scalar atomic,
// which the analyzer does not gate.
func (s *server) refresh() {
	s.publish(&view{})
	s.ready.Store(true)
}

// load-only use is always fine.
func (s *server) current() *view {
	return s.view.Load()
}
