// Package worker is a goroutines bad fixture: detached go statements
// with no join evidence in the enclosing function.
package worker

func fireAndForget(work func()) {
	go work()
}

func detachedLiteral(jobs []int) {
	for _, j := range jobs {
		go func(j int) {
			process(j)
		}(j)
	}
}

func process(int) {}
