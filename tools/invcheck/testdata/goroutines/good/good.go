// Package worker is a goroutines good fixture: WaitGroup pairing,
// channel joins, and the Done-in-body / Wait-in-Close lifecycle.
package worker

import "sync"

func waitGroupJoin(jobs []int) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			process(j)
		}(j)
	}
	wg.Wait()
}

func channelJoin(work func() error) error {
	done := make(chan error, 1)
	go func() {
		done <- work()
	}()
	return <-done
}

type pool struct {
	wg sync.WaitGroup
}

// start's goroutine carries wg.Done in its body; the matching Wait
// lives in stop — the WaitGroup is the join token across the lifecycle.
func (p *pool) start(work func()) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		work()
	}()
}

func (p *pool) stop() {
	p.wg.Wait()
}

func process(int) {}
