// Package wal is an errwrap bad fixture: sentinel comparisons with
// ==/!=, a switch over sentinels, %v-wrapping a sentinel, and the
// sentinels only the typed pass can see — imported (io.EOF) and
// lower-cased (errShutdown) ones the Err[A-Z]* regex never matched.
package wal

import (
	"errors"
	"fmt"
	"io"
)

// ErrCorrupt is the fixture sentinel.
var ErrCorrupt = errors.New("corrupt")

// errShutdown is a lower-cased sentinel invisible to a name-based scan.
var errShutdown = errors.New("shutting down")

func compare(err error) bool {
	return err == ErrCorrupt
}

func compareNeq(err error) bool {
	if err != ErrCorrupt {
		return true
	}
	return false
}

func compareImported(err error) bool {
	return err == io.EOF
}

func compareUnexported(err error) bool {
	return err == errShutdown
}

func viaSwitch(err error) string {
	switch err {
	case ErrCorrupt:
		return "corrupt"
	}
	return "ok"
}

func wrapWithoutW(offset int) error {
	return fmt.Errorf("segment at %d: %v", offset, ErrCorrupt)
}
