// Package wal is an errwrap bad fixture: sentinel comparisons with
// ==/!=, a switch over sentinels, and %v-wrapping a sentinel.
package wal

import (
	"errors"
	"fmt"
)

// ErrCorrupt is the fixture sentinel.
var ErrCorrupt = errors.New("corrupt")

func compare(err error) bool {
	return err == ErrCorrupt
}

func compareNeq(err error) bool {
	if err != ErrCorrupt {
		return true
	}
	return false
}

func viaSwitch(err error) string {
	switch err {
	case ErrCorrupt:
		return "corrupt"
	}
	return "ok"
}

func wrapWithoutW(offset int) error {
	return fmt.Errorf("segment at %d: %v", offset, ErrCorrupt)
}
