// Package wal is an errwrap good fixture: errors.Is matching and %w
// wrapping, plus non-sentinel comparisons that must not fire.
package wal

import (
	"errors"
	"fmt"
	"io"
)

// ErrCorrupt is the fixture sentinel.
var ErrCorrupt = errors.New("corrupt")

func match(err error) bool {
	return errors.Is(err, ErrCorrupt)
}

func wrapWithW(offset int) error {
	return fmt.Errorf("segment at %d: %w", offset, ErrCorrupt)
}

func plainComparisons(err error, n int) bool {
	if err == nil {
		return false
	}
	if err == io.EOF && n == 0 {
		return true
	}
	return n != 3
}

func formatNonSentinel(err error) error {
	return fmt.Errorf("recoverable: %v", err)
}
