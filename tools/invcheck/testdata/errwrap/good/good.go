// Package wal is an errwrap good fixture: errors.Is matching and %w
// wrapping, plus non-sentinel comparisons that must not fire — notably
// ones the old syntactic Err[A-Z]* pattern would have flagged.
package wal

import (
	"errors"
	"fmt"
)

// ErrCorrupt is the fixture sentinel.
var ErrCorrupt = errors.New("corrupt")

// ErrBudget is named like a sentinel but is an int: the typed pass must
// not fire on it (the syntactic Err[A-Z]* match did).
var ErrBudget = 3

func match(err error) bool {
	return errors.Is(err, ErrCorrupt)
}

func matchStdlib(err error) bool {
	return errors.Is(err, errors.ErrUnsupported)
}

func wrapWithW(offset int) error {
	return fmt.Errorf("segment at %d: %w", offset, ErrCorrupt)
}

func plainComparisons(err error, n int) bool {
	if err == nil {
		return false
	}
	if n == ErrBudget {
		return true
	}
	local := errors.New("scratch")
	return err == local // locals are not sentinels; identity is fine
}

func formatNonSentinel(err error) error {
	return fmt.Errorf("recoverable: %v", err)
}
