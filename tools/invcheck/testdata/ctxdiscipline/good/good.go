// Package serve is a ctxdiscipline good fixture: ctx-first shard
// loops, rpc-shaped service methods, unexported helpers, and loops
// over non-shard data.
package serve

import "context"

// CountShards takes ctx first, as every cancellable shard loop must.
func CountShards(ctx context.Context, shards []int) int {
	total := 0
	for _, sh := range shards {
		if ctx.Err() != nil {
			return total
		}
		total += sh
	}
	return total
}

// countLocal is unexported: internal helpers inherit their caller's
// polling contract and are not gated.
func countLocal(shards []int) int {
	n := 0
	for range shards {
		n++
	}
	return n
}

// Worker is an rpc service carrier for the shape exemption below.
type Worker struct{}

// CountArgs is the rpc request type.
type CountArgs struct{ Shards []int }

// CountReply is the rpc reply type.
type CountReply struct{ Total int }

// CountShards is net/rpc-shaped (value args, pointer reply, error
// result) and structurally cannot take a context: exempt.
func (w *Worker) CountShards(args CountArgs, reply *CountReply) error {
	for _, sh := range args.Shards {
		reply.Total += sh
	}
	return nil
}

// TopRules loops, but not over shards or transactions: not gated.
func TopRules(rules []string) []string {
	var out []string
	for _, r := range rules {
		out = append(out, r)
	}
	return out
}
