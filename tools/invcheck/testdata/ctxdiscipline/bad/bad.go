// Package dist is a ctxdiscipline bad fixture: exported shard loops
// without a leading ctx, a misnamed context parameter, and a struct
// capturing a context.
package dist

import "context"

// CountAll loops over shards but takes no context at all.
func CountAll(shards []int) int {
	total := 0
	for _, sh := range shards {
		total += sh
	}
	return total
}

// ScanTransactions has a context, but not first and not named ctx.
func ScanTransactions(transactions []int, c context.Context) int {
	n := 0
	for range transactions {
		n++
	}
	_ = c
	return n
}

type pinnedScanner struct {
	ctx context.Context
}
