// Package wal is a walfailstop bad fixture: one function per fail-stop
// violation class — discarded, blanked, shadowed, checked-too-late, and
// deferred persist errors.
package wal

// file is a persist target; its Write and Sync return real errors.
type file struct{ failed bool }

func (f *file) Write(p []byte) (int, error) { return len(p), nil }
func (f *file) Sync() error                 { return nil }

func rename(from, to string) {}

func discarded(f *file, blob []byte) {
	f.Sync() // error dropped on the floor
}

func blanked(f *file, blob []byte) {
	_, _ = f.Write(blob) // error explicitly blanked
}

func shadowed(f *file, blob []byte) error {
	var err error
	if _, werr := f.Write(blob); werr == nil {
		err = f.Sync()
		_ = err
	}
	if _, err := f.Write(blob); err == nil {
		err = f.Sync() // assigns the inner err, which is never read
	}
	return err
}

func lateCheck(f *file, blob []byte, tmp, final string) error {
	_, err := f.Write(blob)
	rename(tmp, final) // state advances before the error is looked at
	if err != nil {
		return err
	}
	return nil
}

func deferred(f *file) {
	defer f.Sync() // deferred persist failure is unobservable
}

func overwritten(f *file, blob []byte) error {
	err := f.Sync()
	_, err = f.Write(blob) // overwrites the sync error before anyone read it
	return err
}
