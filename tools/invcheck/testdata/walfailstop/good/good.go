// Package wal is a walfailstop good fixture: every persist error is
// captured and checked before state advances, plus the documented
// always-nil writers that must not fire.
package wal

import (
	"bytes"
	"strings"
)

// file is a persist target; its Write and Sync return real errors.
type file struct{ failed bool }

func (f *file) Write(p []byte) (int, error) { return len(p), nil }
func (f *file) Sync() error                 { return nil }

// log is the group-commit shape: append then sync, both checked before
// apply and ack.
type log struct{ f *file }

func (l *log) appendRec(rec []byte) error { _, err := l.f.Write(rec); return err }
func (l *log) sync() error                { return l.f.Sync() }
func (l *log) apply(rec []byte)           {}
func (l *log) ack()                       {}

func checkedDirect(f *file, blob []byte) error {
	if _, err := f.Write(blob); err != nil {
		return err
	}
	return f.Sync() // propagated to the caller, not dropped
}

func groupCommit(l *log, batch [][]byte) error {
	var perr error
	for _, rec := range batch {
		perr = l.appendRec(rec)
		if perr != nil {
			break
		}
	}
	if perr == nil {
		perr = l.sync()
	}
	if perr != nil {
		return perr
	}
	for _, rec := range batch {
		l.apply(rec)
	}
	l.ack()
	return nil
}

// branchAssign mirrors the serving tier's apply switch: each case
// assigns the same err variable, and the check after the switch reads
// whichever branch ran. A sibling branch's write must not be mistaken
// for an overwrite of this branch's error.
func branchAssign(f *file, kind int, blob []byte) int {
	var err error
	switch kind {
	case 0:
		err = f.Sync()
	case 1:
		_, err = f.Write(blob)
	}
	if err != nil {
		return 0
	}
	return 1
}

func alwaysNilWriters(words []string) string {
	var buf bytes.Buffer
	var sb strings.Builder
	for _, w := range words {
		buf.WriteString(w) // bytes.Buffer errors are documented always-nil
		sb.WriteString(w)  // strings.Builder likewise
	}
	return buf.String() + sb.String()
}
