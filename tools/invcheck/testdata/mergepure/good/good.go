// Package hashtree is a mergepure good fixture: merges that accumulate
// into the receiver or a named destination, call only same-package pure
// helpers and allowlisted stdlib, and read sentinels but no mutable
// globals.
package hashtree

import (
	"errors"
	"sort"
)

// ErrMismatch is an error sentinel: merges may reference it freely —
// sentinels are write-once identity tokens, not mutable state.
var ErrMismatch = errors.New("buffer shape mismatch")

// maxItems is a constant: constants never vary between replays.
const maxItems = 1 << 16

// CountBuffer holds partial support counts.
type CountBuffer struct {
	Counts map[int]int
	order  []int
}

// Merge folds the source buffer into the receiver.
func (b *CountBuffer) Merge(src *CountBuffer) error {
	if src == nil {
		return ErrMismatch
	}
	for id, n := range src.Counts {
		b.bump(id, n)
	}
	return nil
}

// bump is a same-package helper reached transitively from Merge; it
// only touches the receiver.
func (b *CountBuffer) bump(id, n int) {
	if id >= maxItems {
		return
	}
	b.Counts[id] += n
}

// CountInto accumulates into an explicit destination parameter.
func CountInto(ids []int, dst *CountBuffer) {
	for _, id := range ids {
		dst.Counts[id]++
	}
}

// CanonicalInto writes a sorted view into the destination; sort.Ints is
// on the pure-callee allowlist.
func CanonicalInto(src map[int]int, out *CountBuffer) {
	out.order = out.order[:0]
	for id := range src {
		out.order = append(out.order, id)
	}
	sort.Ints(out.order)
}
