// Package hashtree is a mergepure bad fixture: merges that mutate their
// source, lean on package-level mutable state (directly and through a
// helper), call unvetted cross-package functions, and call through
// function values.
package hashtree

import "fmt"

// mergeEpoch is package-level mutable state: reading it makes merge
// results depend on call order.
var mergeEpoch int

// CountBuffer holds partial support counts.
type CountBuffer struct {
	Counts map[int]int
}

// Merge drains the source into the receiver — mutating the source makes
// merge order observable to later merges.
func (b *CountBuffer) Merge(src *CountBuffer) {
	for id, n := range src.Counts {
		b.Counts[id] += n
	}
	src.Counts = nil
}

// StampInto reads the package-level epoch directly.
func StampInto(dst *CountBuffer) {
	dst.Counts[0] = mergeEpoch
}

// AuditInto reaches mutable state through a same-package helper: the
// transitive walk must still see it.
func AuditInto(dst *CountBuffer) {
	dst.Counts[1] = currentEpoch()
}

// currentEpoch is only reachable from AuditInto.
func currentEpoch() int {
	return mergeEpoch
}

// TraceInto calls a cross-package function that is not on the
// allowlist.
func TraceInto(dst *CountBuffer) {
	fmt.Println("merging")
	dst.Counts[2]++
}

// HookInto calls through a function value, whose purity cannot be
// established.
func HookInto(dst *CountBuffer, hook func(int) int) {
	dst.Counts[3] = hook(3)
}
