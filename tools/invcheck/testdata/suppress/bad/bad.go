// Package worker is a suppression bad fixture: a reasonless ignore, an
// ignore naming an unknown analyzer, and an unsuppressed violation next
// to them.
package worker

func missingReason(work func()) {
	//lint:ignore invcheck/goroutines
	go work()
}

func unknownAnalyzer(work func()) {
	//lint:ignore invcheck/nosuchcheck detached on purpose
	go work()
}
