// Package worker is a suppression good fixture: a reasoned ignore on
// the line above its violation, a same-line ignore, and a directive for
// a different linter that invcheck must leave alone.
package worker

func documentedDetach(work func()) {
	//lint:ignore invcheck/goroutines fixture goroutine is joined by the process exit; detaching is the point of this fixture
	go work()
}

func sameLineDetach(work func()) {
	go work() //lint:ignore invcheck/goroutines fixture goroutine detaches deliberately with a same-line directive
}

func otherLinter(work func()) {
	done := make(chan struct{})
	//lint:ignore SA1000 someone else's directive, not invcheck's to police
	go func() {
		defer close(done)
		work()
	}()
	<-done
}
