package main

import (
	"go/ast"
	"strings"
)

// analyzerAtomicPublish guards the snapshot-consistency contract of the
// serving tier: readers are lock-free because every query dereferences
// the atomic.Pointer-published View exactly once, and the never-stale
// cache keys on the View's version. That only stays auditable while
// the pointer is swapped in one designated place — a store scattered
// into an arbitrary code path can publish a View whose version, ops
// stamp, and cache interaction were never reasoned about. In
// internal/serve, atomic.Pointer stores are therefore confined to
// publish helpers (functions whose name contains "publish").
var analyzerAtomicPublish = &Analyzer{
	Name:     "atomicpublish",
	Doc:      "atomic.Pointer stores in internal/serve happen only inside publish helpers",
	Packages: []string{"serve"},
	Run:      runAtomicPublish,
}

// runAtomicPublish reports .Store calls on atomic.Pointer struct fields
// outside functions whose name contains "publish". Fields are resolved
// per file: the Server struct and its stores live in the same file, and
// fixtures mirror that.
func runAtomicPublish(f *SrcFile) []Finding {
	fields := atomicPointerFields(f)
	if len(fields) == 0 {
		return nil
	}
	var out []Finding
	funcBodies(f, func(fd *ast.FuncDecl) {
		if strings.Contains(strings.ToLower(fd.Name.Name), "publish") {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Store" {
				return true
			}
			inner, ok := sel.X.(*ast.SelectorExpr)
			if !ok || !fields[inner.Sel.Name] {
				return true
			}
			out = append(out, f.finding("atomicpublish", call.Pos(),
				"atomic.Pointer field %s stored outside a publish helper (in %s); route the swap through publish so version/ops stamping stays centralized", inner.Sel.Name, fd.Name.Name))
			return true
		})
	})
	return out
}

// atomicPointerFields collects names of struct fields declared as
// atomic.Pointer[T] in this file.
func atomicPointerFields(f *SrcFile) map[string]bool {
	atomicIdent := importIdent(f, "sync/atomic")
	fields := make(map[string]bool)
	if atomicIdent == "" {
		return fields
	}
	for _, decl := range f.File.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, field := range st.Fields.List {
				idx, ok := field.Type.(*ast.IndexExpr)
				if !ok {
					continue
				}
				sel, ok := idx.X.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Pointer" {
					continue
				}
				if id, ok := sel.X.(*ast.Ident); !ok || id.Name != atomicIdent {
					continue
				}
				for _, name := range field.Names {
					fields[name.Name] = true
				}
			}
		}
	}
	return fields
}
