package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzerAtomicPublish guards the snapshot-consistency contract of the
// serving tier: readers are lock-free because every query dereferences
// the atomic.Pointer-published View exactly once, and the never-stale
// cache keys on the View's version. That only stays auditable while
// the pointer is swapped in one designated place — a store scattered
// into an arbitrary code path can publish a View whose version, ops
// stamp, and cache interaction were never reasoned about. In
// internal/serve, atomic.Pointer stores are therefore confined to
// publish helpers (functions whose name contains "publish").
//
// The typed pass matches sync/atomic.Pointer[T] by type identity: the
// receiver of every .Store call is resolved through go/types, so
// stores through locals, embedded structs, aliases, and fields declared
// in other files are all gated — the syntactic pass only saw fields
// declared in the same file as the store.
var analyzerAtomicPublish = &Analyzer{
	Name:     "atomicpublish",
	Doc:      "atomic.Pointer stores in internal/serve happen only inside publish helpers",
	Packages: []string{"serve"},
	Run:      runAtomicPublish,
}

// runAtomicPublish reports .Store calls whose receiver's type is
// sync/atomic.Pointer[T] outside functions whose name contains
// "publish".
func runAtomicPublish(f *SrcFile) []Finding {
	var out []Finding
	funcBodies(f, func(fd *ast.FuncDecl) {
		if strings.Contains(strings.ToLower(fd.Name.Name), "publish") {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Store" {
				return true
			}
			if !isAtomicPointer(f.typeOf(sel.X)) {
				return true
			}
			out = append(out, f.finding("atomicpublish", call.Pos(),
				"atomic.Pointer field %s stored outside a publish helper (in %s); route the swap through publish so version/ops stamping stays centralized", storeTargetName(sel.X), fd.Name.Name))
			return true
		})
	})
	return out
}

// isAtomicPointer reports whether t (possibly behind a pointer or
// alias) is the generic sync/atomic.Pointer type.
func isAtomicPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	return isNamedType(t, "sync/atomic", "Pointer")
}

// storeTargetName names the stored-to value for the finding message:
// the terminal field or variable name.
func storeTargetName(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	case *ast.StarExpr:
		return storeTargetName(v.X)
	}
	return types.ExprString(e)
}
