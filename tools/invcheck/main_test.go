package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// writeFixtureFile writes one Go source file into a fresh temp dir and
// returns the dir, for tests that need a fixture not worth checking in.
func writeFixtureFile(t *testing.T, name, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestRunExitCodes pins the process contract CI depends on: 0 on a
// clean tree, 1 on violations, 2 on usage errors (bad flag, unknown
// analyzer, missing root) — the same ladder as tools/doccheck.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		want int
	}{
		{"clean tree", []string{filepath.Join("testdata", "errwrap", "good")}, 0},
		{"violations", []string{filepath.Join("testdata", "errwrap", "bad")}, 1},
		{"unknown flag", []string{"-nope"}, 2},
		{"unknown analyzer", []string{"-only=nosuchcheck", "."}, 2},
		{"empty only selection", []string{"-only=,", "."}, 2},
		{"missing root", []string{filepath.Join("testdata", "does-not-exist")}, 2},
		{"list", []string{"-list"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.argv, &stdout, &stderr); got != tc.want {
				t.Fatalf("run(%v) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.argv, got, tc.want, stdout.String(), stderr.String())
			}
		})
	}
}

// TestRunOnlySelectsExactly: -only=determinism,errwrap runs exactly
// those analyzers — errwrap findings surface from its bad tree while
// the goroutines bad tree stays silent, and the determinism bad tree
// still fires.
func TestRunOnlySelectsExactly(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-only=determinism,errwrap",
		filepath.Join("testdata", "determinism", "bad"),
		filepath.Join("testdata", "errwrap", "bad"),
		filepath.Join("testdata", "goroutines", "bad"),
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run = %d, want 1\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[determinism]") || !strings.Contains(out, "[errwrap]") {
		t.Errorf("selected analyzers missing from output:\n%s", out)
	}
	if strings.Contains(out, "[goroutines]") {
		t.Errorf("-only leaked an unselected analyzer:\n%s", out)
	}
}

// TestSelectAnalyzers covers the resolver directly: default is the full
// registry in order, duplicates collapse, whitespace is tolerated, and
// unknown names error.
func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) != len(registry) {
		t.Fatalf("selectAnalyzers(\"\") = %d analyzers, err %v; want the full registry", len(all), err)
	}
	two, err := selectAnalyzers(" errwrap , goroutines , errwrap ")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name != "errwrap" || two[1].Name != "goroutines" {
		t.Fatalf("selection = %v, want [errwrap goroutines]", two)
	}
	if _, err := selectAnalyzers("errwrap,nope"); err == nil {
		t.Fatal("unknown analyzer did not error")
	}
}

// TestFindingFormat: every emitted line is file:line: [analyzer]
// message — the shape CI log scrapers and editors parse.
func TestFindingFormat(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{filepath.Join("testdata", "errwrap", "bad")}, &stdout, &stderr); code != 1 {
		t.Fatalf("run = %d, want 1", code)
	}
	format := regexp.MustCompile(`^[^:]+\.go:\d+: \[[a-z]+\] .+$`)
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		if !format.MatchString(line) {
			t.Errorf("line not in file:line: [analyzer] message form: %q", line)
		}
	}
	if !strings.Contains(stderr.String(), "invariant violations") {
		t.Errorf("summary line missing from stderr: %q", stderr.String())
	}
}

// TestNormalizeRoot: go-style ./... patterns map onto their directory,
// so `go run ./tools/invcheck ./...` gates the whole tree.
func TestNormalizeRoot(t *testing.T) {
	cases := map[string]string{
		"./...":         ".",
		"...":           ".",
		"internal/...":  "internal",
		"internal/wal":  "internal/wal",
		"internal/wal/": "internal/wal",
	}
	for in, want := range cases {
		if got := normalizeRoot(in); got != want {
			t.Errorf("normalizeRoot(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestFindingsSorted: findings across files and lines come out ordered
// by (file, line), keeping CI output diffable run to run.
func TestFindingsSorted(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		filepath.Join("testdata", "goroutines", "bad"),
		filepath.Join("testdata", "determinism", "bad"),
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run = %d, want 1", code)
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	for i := 1; i < len(lines); i++ {
		fileOf := func(s string) string { return s[:strings.Index(s, ".go:")] }
		if fileOf(lines[i-1]) > fileOf(lines[i]) {
			t.Fatalf("findings not sorted by file:\n%s", stdout.String())
		}
	}
}

// TestWalkerExemptions: testdata, examples, vendor, and dot-dirs are
// skipped, as are _test.go files, so fixtures and example code never
// gate the build.
func TestWalkerExemptions(t *testing.T) {
	dir := t.TempDir()
	bad := `// Package worker holds a violation the walker must skip.
package worker

func detach(work func()) {
	go work()
}
`
	for _, sub := range []string{"testdata", "examples", "vendor", ".hidden"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, sub, "bad.go"), []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	testFile := strings.Replace(bad, "func detach", "func testDetach", 1)
	if err := os.WriteFile(filepath.Join(dir, "skip_test.go"), []byte(testFile), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := checkTree(dir, registry)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("exempt trees reported %d findings:\n%s", len(findings), joinFindings(findings))
	}
}
