package main

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Finding is one invariant violation at a source position.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the finding in the file:line: [analyzer] message form
// that CI consumers and editors parse.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
}

// Analyzer is one registered invariant check. Exactly one of Run and
// RunPkg is set: Run is invoked once per type-checked non-test file
// whose package name matches Packages (nil means every package), RunPkg
// once per type-checked package unit — for checks like merge purity
// that chase helpers across the files of a package.
type Analyzer struct {
	Name     string
	Doc      string
	Packages []string
	Run      func(f *SrcFile) []Finding
	RunPkg   func(u *Unit) []Finding
}

// appliesTo reports whether the analyzer gates the named package.
func (a *Analyzer) appliesTo(pkg string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if p == pkg {
			return true
		}
	}
	return false
}

// Unit is one type-checked package: every non-test file of one package
// clause in one directory, plus the shared go/types facts. This is what
// makes the checker type-aware — analyzers resolve objects, types, and
// selections instead of matching names, so aliases, renamed imports,
// and cross-file declarations cannot slip past them.
type Unit struct {
	Dir   string
	Pkg   string // package clause name (analyzer scoping key)
	Files []*SrcFile
	Info  *types.Info
	Types *types.Package
}

// SrcFile is one parsed, type-checked source file handed to analyzers.
type SrcFile struct {
	Fset *token.FileSet
	File *ast.File
	Path string
	Pkg  string
	Unit *Unit
}

// position resolves an AST position against the file set.
func (f *SrcFile) position(pos token.Pos) token.Position {
	return f.Fset.Position(pos)
}

// finding builds a Finding for the analyzer at the given position.
func (f *SrcFile) finding(name string, pos token.Pos, format string, args ...any) Finding {
	p := f.position(pos)
	return Finding{File: p.Filename, Line: p.Line, Analyzer: name, Message: fmt.Sprintf(format, args...)}
}

// typeOf returns the static type of e, nil when the checker recorded
// none (which for a fully type-checked unit only happens for non-value
// expressions).
func (f *SrcFile) typeOf(e ast.Expr) types.Type {
	return f.Unit.Info.TypeOf(e)
}

// obj resolves an identifier to the object it uses or defines.
func (f *SrcFile) obj(id *ast.Ident) types.Object {
	if o := f.Unit.Info.Uses[id]; o != nil {
		return o
	}
	return f.Unit.Info.Defs[id]
}

// calleeObj resolves a call's callee to its object: the function or
// method for pkg.F / recv.M / plain F calls, nil for indirect calls
// through function values and for conversions.
func (f *SrcFile) calleeObj(call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.obj(fn)
	case *ast.SelectorExpr:
		return f.obj(fn.Sel)
	case *ast.IndexExpr: // generic instantiation F[T](...)
		if id, ok := fn.X.(*ast.Ident); ok {
			return f.obj(id)
		}
	}
	return nil
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name, resolved through the type checker — renamed imports and
// aliases are seen through, method calls never match.
func (f *SrcFile) isPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	obj := f.calleeObj(call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// errorIface is the universe error interface, the target for sentinel
// detection.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements (or is) error.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

// isNamedType reports whether t (through aliases) is the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// registry lists every analyzer in the order their findings group in
// the README; selectAnalyzers resolves -only against it.
var registry = []*Analyzer{
	analyzerDeterminism,
	analyzerCtxDiscipline,
	analyzerErrWrap,
	analyzerGoroutines,
	analyzerAtomicPublish,
	analyzerAllocBound,
	analyzerMergePure,
	analyzerWALFailStop,
}

// frameworkError is a parse or type-check failure: the tree cannot be
// analyzed, which must abort the run with exit 2 — silently skipping an
// unparseable file would let violations through unreported. Each line
// renders as file:line: [framework] message.
type frameworkError struct {
	diags []string
}

// Error joins the diagnostics one per line.
func (e *frameworkError) Error() string { return strings.Join(e.diags, "\n") }

// loader owns the shared file set, the stdlib source importer, and the
// per-module importers, so repeated checkTree calls (tests, multiple
// roots) pay the standard-library type-check once per process.
type loader struct {
	mu      sync.Mutex
	fset    *token.FileSet
	std     types.ImporterFrom
	mods    map[string]*moduleImporter // module root dir -> importer
	modMemo map[string]moduleRef       // package dir -> module
}

// moduleRef locates the module a directory belongs to.
type moduleRef struct {
	root string // directory holding go.mod ("" when none)
	path string // module path from go.mod
}

// sharedLoader is the process-wide loader. Cgo is disabled on the build
// context before the source importer is created so cgo-using standard
// library packages (net, os/user) type-check from their pure-Go
// fallbacks instead of invoking the cgo tool.
var sharedLoader = func() *loader {
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		mods:    make(map[string]*moduleImporter),
		modMemo: make(map[string]moduleRef),
	}
}()

// moduleImporter resolves import paths inside one module from source
// (with function bodies skipped) and delegates everything else to the
// shared standard-library importer. It implements types.ImporterFrom.
type moduleImporter struct {
	ld      *loader
	ref     moduleRef
	pkgs    map[string]*types.Package
	loading map[string]bool
}

// Import implements types.Importer.
func (im *moduleImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

// ImportFrom resolves module-local paths against the module root and
// everything else (the standard library) through the source importer.
func (im *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if im.ref.path != "" && (path == im.ref.path || strings.HasPrefix(path, im.ref.path+"/")) {
		if p, ok := im.pkgs[path]; ok {
			return p, nil
		}
		if im.loading[path] {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		im.loading[path] = true
		defer delete(im.loading, path)
		sub := strings.TrimPrefix(strings.TrimPrefix(path, im.ref.path), "/")
		pkg, err := im.loadLocal(path, filepath.Join(im.ref.root, filepath.FromSlash(sub)))
		if err != nil {
			return nil, err
		}
		im.pkgs[path] = pkg
		return pkg, nil
	}
	return im.ld.std.ImportFrom(path, dir, mode)
}

// loadLocal type-checks one module-local package from source, bodies
// skipped — imported packages only contribute their exported shape.
func (im *moduleImporter) loadLocal(path, dir string) (*types.Package, error) {
	names, err := listGoFiles(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(im.ld.fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: im, IgnoreFuncBodies: true, FakeImportC: true}
	return conf.Check(path, im.ld.fset, files, nil)
}

// listGoFiles returns the analyzable Go file names in dir: non-test .go
// files whose build constraints are satisfied by the default context
// (so a //go:build ignore'd generator script never poisons its
// package's type check).
func listGoFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if match, err := build.Default.MatchFile(dir, name); err != nil || !match {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// moduleFor finds the module containing dir by walking up to the
// nearest go.mod, memoized per directory. A tree outside any module
// (fixture temp dirs) gets an empty ref: only standard-library imports
// resolve there.
func (ld *loader) moduleFor(dir string) moduleRef {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return moduleRef{}
	}
	if ref, ok := ld.modMemo[abs]; ok {
		return ref
	}
	ref := moduleRef{}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			if path := parseModulePath(data); path != "" {
				ref = moduleRef{root: d, path: path}
			}
			break
		}
		parent := filepath.Dir(d)
		if parent == d {
			break
		}
		d = parent
	}
	ld.modMemo[abs] = ref
	return ref
}

// parseModulePath extracts the module path from go.mod contents.
func parseModulePath(data []byte) string {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// importerFor returns the module importer for dir's module, shared
// across packages of the same module.
func (ld *loader) importerFor(dir string) *moduleImporter {
	ref := ld.moduleFor(dir)
	key := ref.root // "" groups every outside-module tree together
	im, ok := ld.mods[key]
	if !ok {
		im = &moduleImporter{ld: ld, ref: ref, pkgs: make(map[string]*types.Package), loading: make(map[string]bool)}
		ld.mods[key] = im
	}
	return im
}

// loadUnits parses and type-checks every package under root: one Unit
// per (directory, package clause) pair. Parse and type errors abort
// with a frameworkError — a file that fails to parse or type-check is
// never silently skipped.
func (ld *loader) loadUnits(root string) ([]*Unit, error) {
	ld.mu.Lock()
	defer ld.mu.Unlock()
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" || name == "examples" || strings.HasPrefix(name, ".")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var units []*Unit
	for _, dir := range dirs {
		us, err := ld.loadDir(dir)
		if err != nil {
			return nil, err
		}
		units = append(units, us...)
	}
	return units, nil
}

// loadDir parses the directory's analyzable files, groups them by
// package clause (so a stray main-package tool next to a library does
// not break the library's type check), and type-checks each group with
// full bodies and a populated types.Info.
func (ld *loader) loadDir(dir string) ([]*Unit, error) {
	names, err := listGoFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, nil // empty package: nothing to analyze
	}
	byPkg := make(map[string][]*SrcFile)
	var order []string
	var ferr frameworkError
	for _, name := range names {
		path := filepath.Join(dir, name)
		file, err := parser.ParseFile(ld.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			ferr.diags = append(ferr.diags, frameworkDiag(err))
			continue
		}
		pkg := file.Name.Name
		if _, ok := byPkg[pkg]; !ok {
			order = append(order, pkg)
		}
		byPkg[pkg] = append(byPkg[pkg], &SrcFile{Fset: ld.fset, File: file, Path: path, Pkg: pkg})
	}
	if len(ferr.diags) > 0 {
		return nil, &ferr
	}
	im := ld.importerFor(dir)
	var units []*Unit
	for _, pkg := range order {
		files := byPkg[pkg]
		asts := make([]*ast.File, len(files))
		for i, f := range files {
			asts[i] = f.File
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		var terrs []error
		conf := types.Config{
			Importer:    im,
			FakeImportC: true,
			Error:       func(err error) { terrs = append(terrs, err) },
		}
		tpkg, _ := conf.Check(unitImportPath(im.ref, dir, pkg), ld.fset, asts, info)
		if len(terrs) > 0 {
			for _, te := range terrs {
				ferr.diags = append(ferr.diags, frameworkDiag(te))
			}
			return nil, &ferr
		}
		unit := &Unit{Dir: dir, Pkg: pkg, Files: files, Info: info, Types: tpkg}
		for _, f := range files {
			f.Unit = unit
		}
		units = append(units, unit)
	}
	return units, nil
}

// unitImportPath names the package being checked: its module-based
// import path when the directory is inside a module, a synthetic
// path otherwise (fixture trees — the name only matters for error
// messages and self-import detection).
func unitImportPath(ref moduleRef, dir, pkg string) string {
	if ref.path != "" {
		if abs, err := filepath.Abs(dir); err == nil {
			if rel, err := filepath.Rel(ref.root, abs); err == nil && !strings.HasPrefix(rel, "..") {
				if rel == "." {
					return ref.path
				}
				return ref.path + "/" + filepath.ToSlash(rel)
			}
		}
	}
	return "invcheck.fixture/" + pkg
}

// frameworkDiag renders a parse or type error as a [framework]
// diagnostic line. go/parser and go/types errors already lead with
// file:line:col.
func frameworkDiag(err error) string {
	return fmt.Sprintf("[framework] %s", err.Error())
}

// checkTree type-checks every package under root and runs the selected
// analyzers over it, honoring the testdata/vendor/examples exemptions
// and the inline suppression directives.
func checkTree(root string, analyzers []*Analyzer) ([]Finding, error) {
	units, err := sharedLoader.loadUnits(root)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, u := range units {
		findings = append(findings, checkUnit(u, analyzers)...)
	}
	return findings, nil
}

// checkUnit runs the selected analyzers over one package unit and
// applies each file's suppression directives to the findings that
// landed in it.
func checkUnit(u *Unit, analyzers []*Analyzer) []Finding {
	var raw []Finding
	for _, a := range analyzers {
		if !a.appliesTo(u.Pkg) {
			continue
		}
		if a.RunPkg != nil {
			raw = append(raw, a.RunPkg(u)...)
		}
		if a.Run != nil {
			for _, f := range u.Files {
				raw = append(raw, a.Run(f)...)
			}
		}
	}
	byFile := make(map[string][]Finding)
	for _, fd := range raw {
		byFile[fd.File] = append(byFile[fd.File], fd)
	}
	var out []Finding
	for _, f := range u.Files {
		out = append(out, applySuppressions(f, byFile[f.Path])...)
	}
	// Findings in files the unit does not own (none today, but a RunPkg
	// analyzer could theoretically report on an import) pass through.
	for path, fds := range byFile {
		owned := false
		for _, f := range u.Files {
			if f.Path == path {
				owned = true
				break
			}
		}
		if !owned {
			out = append(out, fds...)
		}
	}
	return out
}

// suppression is one parsed //lint:ignore invcheck/<name> reason
// directive.
type suppression struct {
	analyzer string
	reason   string
	file     string
	line     int
	pos      token.Pos
}

// parseSuppressions extracts every invcheck ignore directive from the
// file's comments, keyed by the source line the comment sits on.
func parseSuppressions(f *SrcFile) []suppression {
	var out []suppression
	for _, cg := range f.File.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "lint:ignore ") {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore "))
			target, reason, _ := strings.Cut(rest, " ")
			if !strings.HasPrefix(target, "invcheck/") {
				continue // other linters' directives are not ours to police
			}
			out = append(out, suppression{
				analyzer: strings.TrimPrefix(target, "invcheck/"),
				reason:   strings.TrimSpace(reason),
				file:     f.Path,
				line:     f.position(c.Pos()).Line,
				pos:      c.Pos(),
			})
		}
	}
	return out
}

// applySuppressions filters findings covered by a reasoned directive on
// the same line or the line above, and appends [suppress] findings for
// malformed directives: a missing reason or an unknown analyzer name is
// itself a violation, so suppressions stay auditable.
func applySuppressions(f *SrcFile, raw []Finding) []Finding {
	sups := parseSuppressions(f)
	known := make(map[string]bool, len(registry))
	for _, a := range registry {
		known[a.Name] = true
	}
	var out []Finding
	for _, s := range sups {
		if !known[s.analyzer] {
			out = append(out, f.finding("suppress", s.pos,
				"suppression names unknown analyzer %q (have %s)", s.analyzer, registryNames()))
			continue
		}
		if s.reason == "" {
			out = append(out, f.finding("suppress", s.pos,
				"suppression for invcheck/%s is missing a reason", s.analyzer))
		}
	}
	for _, fd := range raw {
		suppressed := false
		for _, s := range sups {
			if s.analyzer == fd.Analyzer && s.reason != "" && (s.line == fd.Line || s.line == fd.Line-1) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, fd)
		}
	}
	return out
}

// collectSuppressions parses (without type-checking) every analyzable
// file under root and returns its suppression directives — the
// -suppressions audit walks this so the directive inventory stays
// reviewable even while the tree is mid-refactor.
func collectSuppressions(root string) ([]suppression, error) {
	var out []suppression
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" || name == "examples" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return &frameworkError{diags: []string{frameworkDiag(err)}}
		}
		src := &SrcFile{Fset: fset, File: file, Path: p, Pkg: file.Name.Name}
		out = append(out, parseSuppressions(src)...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// calleeName returns the terminal name of a call's callee: the selector
// field for pkg.F or recv.M calls, the identifier for plain calls, ""
// otherwise.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// funcBodies yields every function declaration and its body in the
// file, including methods; bodies of function literals are visited as
// part of their enclosing declaration.
func funcBodies(f *SrcFile, visit func(decl *ast.FuncDecl)) {
	for _, decl := range f.File.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			visit(fd)
		}
	}
}
