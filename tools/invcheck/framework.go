package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path"
	"path/filepath"
	"strconv"
	"strings"
)

// Finding is one invariant violation at a source position.
type Finding struct {
	File     string
	Line     int
	Analyzer string
	Message  string
}

// String renders the finding in the file:line: [analyzer] message form
// that CI consumers and editors parse.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
}

// Analyzer is one registered invariant check. Run is invoked once per
// parsed non-test file whose package name matches Packages (nil means
// every package).
type Analyzer struct {
	Name     string
	Doc      string
	Packages []string
	Run      func(f *SrcFile) []Finding
}

// appliesTo reports whether the analyzer gates the named package.
func (a *Analyzer) appliesTo(pkg string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if p == pkg {
			return true
		}
	}
	return false
}

// SrcFile is one parsed source file handed to analyzers.
type SrcFile struct {
	Fset *token.FileSet
	File *ast.File
	Path string
	Pkg  string
}

// position resolves an AST position against the file set.
func (f *SrcFile) position(pos token.Pos) token.Position {
	return f.Fset.Position(pos)
}

// finding builds a Finding for the analyzer at the given position.
func (f *SrcFile) finding(name string, pos token.Pos, format string, args ...any) Finding {
	p := f.position(pos)
	return Finding{File: p.Filename, Line: p.Line, Analyzer: name, Message: fmt.Sprintf(format, args...)}
}

// registry lists every analyzer in the order their findings group in
// the README; selectAnalyzers resolves -only against it.
var registry = []*Analyzer{
	analyzerDeterminism,
	analyzerCtxDiscipline,
	analyzerErrWrap,
	analyzerGoroutines,
	analyzerAtomicPublish,
}

// checkTree walks root and runs the selected analyzers over every
// non-test Go file, honoring the testdata/vendor/examples exemptions
// and the inline suppression directives.
func checkTree(root string, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" || name == "examples" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		src := &SrcFile{Fset: fset, File: file, Path: p, Pkg: file.Name.Name}
		var raw []Finding
		for _, a := range analyzers {
			if a.appliesTo(src.Pkg) {
				raw = append(raw, a.Run(src)...)
			}
		}
		findings = append(findings, applySuppressions(src, raw)...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return findings, nil
}

// suppression is one parsed //lint:ignore invcheck/<name> reason
// directive.
type suppression struct {
	analyzer string
	reason   string
	line     int
	pos      token.Pos
}

// parseSuppressions extracts every invcheck ignore directive from the
// file's comments, keyed by the source line the comment sits on.
func parseSuppressions(f *SrcFile) []suppression {
	var out []suppression
	for _, cg := range f.File.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "lint:ignore ") {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore "))
			target, reason, _ := strings.Cut(rest, " ")
			if !strings.HasPrefix(target, "invcheck/") {
				continue // other linters' directives are not ours to police
			}
			out = append(out, suppression{
				analyzer: strings.TrimPrefix(target, "invcheck/"),
				reason:   strings.TrimSpace(reason),
				line:     f.position(c.Pos()).Line,
				pos:      c.Pos(),
			})
		}
	}
	return out
}

// applySuppressions filters findings covered by a reasoned directive on
// the same line or the line above, and appends [suppress] findings for
// malformed directives: a missing reason or an unknown analyzer name is
// itself a violation, so suppressions stay auditable.
func applySuppressions(f *SrcFile, raw []Finding) []Finding {
	sups := parseSuppressions(f)
	known := make(map[string]bool, len(registry))
	for _, a := range registry {
		known[a.Name] = true
	}
	var out []Finding
	for _, s := range sups {
		if !known[s.analyzer] {
			out = append(out, f.finding("suppress", s.pos,
				"suppression names unknown analyzer %q (have %s)", s.analyzer, registryNames()))
			continue
		}
		if s.reason == "" {
			out = append(out, f.finding("suppress", s.pos,
				"suppression for invcheck/%s is missing a reason", s.analyzer))
		}
	}
	for _, fd := range raw {
		suppressed := false
		for _, s := range sups {
			if s.analyzer == fd.Analyzer && s.reason != "" && (s.line == fd.Line || s.line == fd.Line-1) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, fd)
		}
	}
	return out
}

// importIdent returns the identifier that refers to importPath in this
// file ("" when the file does not import it), accounting for renamed
// imports.
func importIdent(f *SrcFile, importPath string) string {
	for _, imp := range f.File.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != importPath {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		return path.Base(p)
	}
	return ""
}

// calleeName returns the terminal name of a call's callee: the selector
// field for pkg.F or recv.M calls, the identifier for plain calls, ""
// otherwise.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// isPkgCall reports whether call is pkgIdent.name(...) for the given
// package identifier (as resolved by importIdent).
func isPkgCall(call *ast.CallExpr, pkgIdent, name string) bool {
	if pkgIdent == "" {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkgIdent
}

// funcBodies yields every function declaration and its body in the
// file, including methods; bodies of function literals are visited as
// part of their enclosing declaration.
func funcBodies(f *SrcFile, visit func(decl *ast.FuncDecl)) {
	for _, decl := range f.File.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			visit(fd)
		}
	}
}
