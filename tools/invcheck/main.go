// Command invcheck is the CI invariant gate: a multi-analyzer static
// checker that mechanically enforces the repo's determinism, context,
// error-discipline, goroutine-join, snapshot-publish, hot-path
// allocation, merge-purity, and WAL fail-stop contracts — the
// invariants that keep results byte-identical across workers,
// shardings, transports, and WAL replays, and that property tests can
// only catch probabilistically.
//
// Since v2 the checker is type-aware: every package is type-checked
// once (go/types with the stdlib source importer; module-local imports
// resolve from the module root) and analyzers match real objects and
// types — error-typed sentinel objects rather than Err[A-Z]* name
// patterns, sync/atomic.Pointer[T] by type identity, context.Context
// through aliases and renamed imports.
//
// Usage:
//
//	go run ./tools/invcheck [-only=name,...] [-format=text|json|github] [-suppressions] [dir ...]
//
// Each dir is walked recursively (a trailing /... is accepted and
// equivalent); without arguments the current directory is walked.
// Files under testdata, vendor, examples, and dot-directories are
// exempt, as are _test.go files and files excluded by their build
// constraints. Exit status 1 reports violations; exit status 2 reports
// a usage error, or a file that fails to parse or type-check (printed
// to stderr as [framework] diagnostics — an unanalyzable file is never
// silently skipped).
//
// Output formats (-format):
//
//	text    file:line: [analyzer] message, sorted (default)
//	json    a JSON array of {file, line, analyzer, message} objects
//	github  GitHub Actions ::error annotations for inline CI review
//
// Analyzers (run all by default; -only selects a subset):
//
//	determinism   — no wall-clock reads or unseeded math/rand in the
//	                byte-identity engine packages (assoc, fptree,
//	                hashtree, transactions, dist, wal, serve, seqmine),
//	                and no range over a map-typed expression that
//	                appends to a slice or writes output without an
//	                intervening sort.
//	ctxdiscipline — exported functions in engine/dist/serve packages
//	                that loop over shards or transactions take
//	                ctx context.Context first, and no struct stores a
//	                context outside the allowlist.
//	errwrap       — package-level error-typed sentinel objects are
//	                matched with errors.Is (never ==/!= or switch
//	                cases) and wrapped with %w.
//	goroutines    — every go statement is lexically paired with a
//	                WaitGroup or channel join in the same function.
//	atomicpublish — in internal/serve, stores on values of type
//	                sync/atomic.Pointer[T] happen only inside a
//	                designated publish helper.
//	allocbound    — functions annotated //invcheck:hotpath are free of
//	                provable allocation sites: composite literals,
//	                growing appends, string concatenation, interface
//	                boxing at call sites, capturing closures.
//	mergepure     — Merge/*Into methods on count-buffer types perform
//	                only commutative accumulation: no package-level
//	                mutable state, no calls outside the purity
//	                allowlist, no stores to non-destination parameters.
//	walfailstop   — in internal/wal and internal/serve, errors from
//	                write/sync-shaped calls are checked on every path
//	                before any further persist/apply/ack step and are
//	                never swallowed.
//
// A finding can be suppressed with a reasoned inline directive on the
// same line or the line above:
//
//	//lint:ignore invcheck/<analyzer> <reason>
//
// A suppression without a reason, or naming an unknown analyzer, is
// itself a violation ([suppress]). The -suppressions flag audits the
// inventory instead of checking: it lists every directive under the
// roots as file:line: invcheck/<analyzer>: reason and exits 0, so CI
// can budget the count and review the reasons.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses argv, runs the selected
// analyzers over every root, prints findings to stdout, and returns the
// process exit code (0 clean, 1 violations, 2 usage/parse/type error).
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("invcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "print the registered analyzers and exit")
	format := fs.String("format", "text", "output format: text, json, or github")
	audit := fs.Bool("suppressions", false, "list every //lint:ignore invcheck/* directive instead of checking")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	switch *format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(stderr, "invcheck: unknown -format %q (have text, json, github)\n", *format)
		return 2
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "invcheck:", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	roots := fs.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	if *audit {
		return runSuppressionAudit(roots, *format, stdout, stderr)
	}
	var findings []Finding
	for _, root := range roots {
		v, err := checkTree(normalizeRoot(root), analyzers)
		if err != nil {
			if fe, ok := err.(*frameworkError); ok {
				for _, d := range fe.diags {
					fmt.Fprintln(stderr, d)
				}
				fmt.Fprintln(stderr, "invcheck: tree failed to parse or type-check; nothing was gated")
				return 2
			}
			fmt.Fprintln(stderr, "invcheck:", err)
			return 2
		}
		findings = append(findings, v...)
	}
	sortFindings(findings)
	if err := emitFindings(findings, *format, stdout); err != nil {
		fmt.Fprintln(stderr, "invcheck:", err)
		return 2
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "invcheck: %d invariant violations\n", len(findings))
		return 1
	}
	return 0
}

// emitFindings renders findings in the selected format. The json form
// always emits an array (possibly empty) so consumers can parse
// unconditionally; github emits workflow ::error annotations that
// surface inline on the PR diff.
func emitFindings(findings []Finding, format string, stdout io.Writer) error {
	switch format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []Finding{}
		}
		return enc.Encode(findings)
	case "github":
		for _, f := range findings {
			fmt.Fprintf(stdout, "::error file=%s,line=%d::%s\n",
				f.File, f.Line, githubEscape(fmt.Sprintf("[%s] %s", f.Analyzer, f.Message)))
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	return nil
}

// githubEscape encodes the characters the workflow-command parser
// treats specially in annotation messages.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// runSuppressionAudit lists every invcheck suppression directive under
// the roots. Exit 0 with the inventory on stdout (and a count on
// stderr); exit 2 when a root cannot be parsed.
func runSuppressionAudit(roots []string, format string, stdout, stderr io.Writer) int {
	var sups []suppression
	for _, root := range roots {
		s, err := collectSuppressions(normalizeRoot(root))
		if err != nil {
			if fe, ok := err.(*frameworkError); ok {
				for _, d := range fe.diags {
					fmt.Fprintln(stderr, d)
				}
			} else {
				fmt.Fprintln(stderr, "invcheck:", err)
			}
			return 2
		}
		sups = append(sups, s...)
	}
	sort.Slice(sups, func(i, j int) bool {
		if sups[i].file != sups[j].file {
			return sups[i].file < sups[j].file
		}
		return sups[i].line < sups[j].line
	})
	if format == "json" {
		type auditEntry struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Reason   string `json:"reason"`
		}
		entries := make([]auditEntry, 0, len(sups))
		for _, s := range sups {
			entries = append(entries, auditEntry{File: s.file, Line: s.line, Analyzer: s.analyzer, Reason: s.reason})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(entries); err != nil {
			fmt.Fprintln(stderr, "invcheck:", err)
			return 2
		}
	} else {
		for _, s := range sups {
			fmt.Fprintf(stdout, "%s:%d: invcheck/%s: %s\n", s.file, s.line, s.analyzer, s.reason)
		}
	}
	fmt.Fprintf(stderr, "invcheck: %d suppressions\n", len(sups))
	return 0
}

// normalizeRoot maps a go-style package pattern like ./... onto the
// directory it names, so `go run ./tools/invcheck ./...` works the way
// the other go tools do. The walk is always recursive.
func normalizeRoot(root string) string {
	root = strings.TrimSuffix(root, "...")
	root = strings.TrimSuffix(root, "/")
	if root == "" {
		root = "."
	}
	return root
}

// selectAnalyzers resolves -only against the registry: an empty spec
// selects every registered analyzer, and an unknown name is a usage
// error so CI misconfigurations fail loudly rather than gate nothing.
func selectAnalyzers(only string) ([]*Analyzer, error) {
	if only == "" {
		return registry, nil
	}
	byName := make(map[string]*Analyzer, len(registry))
	for _, a := range registry {
		byName[a.Name] = a
	}
	var out []*Analyzer
	seen := make(map[string]bool)
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, registryNames())
		}
		if !seen[name] {
			out = append(out, a)
			seen[name] = true
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers (have %s)", registryNames())
	}
	return out, nil
}

// registryNames returns the registered analyzer names, comma-joined,
// for error messages.
func registryNames() string {
	names := make([]string, len(registry))
	for i, a := range registry {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// sortFindings orders findings by file, then line, then analyzer and
// message, so output is deterministic and diffs are stable.
func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
