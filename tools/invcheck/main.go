// Command invcheck is the CI invariant gate: a multi-analyzer static
// checker that mechanically enforces the repo's determinism, context,
// error-discipline, goroutine-join, and snapshot-publish contracts —
// the invariants that keep results byte-identical across workers,
// shardings, transports, and WAL replays, and that property tests can
// only catch probabilistically.
//
// Usage:
//
//	go run ./tools/invcheck [-only=name,name] [dir ...]
//
// Each dir is walked recursively (a trailing /... is accepted and
// equivalent); without arguments the current directory is walked.
// Files under testdata, vendor, examples, and dot-directories are
// exempt, as are _test.go files. Exit status 1 reports violations, one
// per line, as file:line: [analyzer] message; exit status 2 reports a
// usage or parse error.
//
// Analyzers (run all by default; -only selects a subset):
//
//	determinism   — no wall-clock reads or unseeded math/rand in the
//	                byte-identity engine packages (assoc, fptree,
//	                hashtree, transactions, dist, wal), and no range
//	                over a map that appends to a slice or writes output
//	                without an intervening sort.
//	ctxdiscipline — exported functions in engine/dist/serve packages
//	                that loop over shards or transactions take
//	                ctx context.Context as their first parameter, and
//	                no struct stores a context outside the allowlist.
//	errwrap       — Err* sentinels are matched with errors.Is (never
//	                ==/!= or switch cases) and wrapped with %w.
//	goroutines    — every go statement is lexically paired with a
//	                WaitGroup or channel join in the same function.
//	atomicpublish — in internal/serve, atomic.Pointer stores happen
//	                only inside a designated publish helper.
//
// A finding can be suppressed with a reasoned inline directive on the
// same line or the line above:
//
//	//lint:ignore invcheck/<analyzer> <reason>
//
// A suppression without a reason, or naming an unknown analyzer, is
// itself a violation ([suppress]).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses argv, runs the selected
// analyzers over every root, prints findings to stdout, and returns the
// process exit code (0 clean, 1 violations, 2 usage/parse error).
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("invcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "print the registered analyzers and exit")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "invcheck:", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	roots := fs.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var findings []Finding
	for _, root := range roots {
		v, err := checkTree(normalizeRoot(root), analyzers)
		if err != nil {
			fmt.Fprintln(stderr, "invcheck:", err)
			return 2
		}
		findings = append(findings, v...)
	}
	sortFindings(findings)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "invcheck: %d invariant violations\n", len(findings))
		return 1
	}
	return 0
}

// normalizeRoot maps a go-style package pattern like ./... onto the
// directory it names, so `go run ./tools/invcheck ./...` works the way
// the other go tools do. The walk is always recursive.
func normalizeRoot(root string) string {
	root = strings.TrimSuffix(root, "...")
	root = strings.TrimSuffix(root, "/")
	if root == "" {
		root = "."
	}
	return root
}

// selectAnalyzers resolves -only against the registry: an empty spec
// selects every registered analyzer, and an unknown name is a usage
// error so CI misconfigurations fail loudly rather than gate nothing.
func selectAnalyzers(only string) ([]*Analyzer, error) {
	if only == "" {
		return registry, nil
	}
	byName := make(map[string]*Analyzer, len(registry))
	for _, a := range registry {
		byName[a.Name] = a
	}
	var out []*Analyzer
	seen := make(map[string]bool)
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, registryNames())
		}
		if !seen[name] {
			out = append(out, a)
			seen[name] = true
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers (have %s)", registryNames())
	}
	return out, nil
}

// registryNames returns the registered analyzer names, comma-joined,
// for error messages.
func registryNames() string {
	names := make([]string, len(registry))
	for i, a := range registry {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// sortFindings orders findings by file, then line, then analyzer and
// message, so output is deterministic and diffs are stable.
func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
