package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// analyzerAllocBound guards the raw-speed contract on the mining hot
// paths: the ROADMAP's named target is Partition's 76 MB / 1.4 M allocs
// per run, and every allocation inside a per-transaction or per-pass
// loop multiplies by the database size. Functions annotated with a
//
//	//invcheck:hotpath
//
// directive in their doc comment are held to an allocation discipline:
// the analyzer reports every allocation site the type checker can
// prove — composite literals (slice, map, and heap-escaping &T{}),
// appends whose destination provably lacks a preallocated capacity
// from make, non-constant string concatenation, interface boxing at
// call sites (a concrete value passed to an interface parameter), and
// closures capturing enclosing variables (the capture forces both the
// closure and the variable onto the heap). Deliberate allocations —
// amortized pool growth, one-time result assembly — carry per-site
// //lint:ignore invcheck/allocbound suppressions with the reason the
// allocation is acceptable.
var analyzerAllocBound = &Analyzer{
	Name: "allocbound",
	Doc:  "//invcheck:hotpath functions are free of provable allocation sites",
	Run:  runAllocBound,
}

// hotpathDirective is the doc-comment annotation that opts a function
// into the allocation gate.
const hotpathDirective = "//invcheck:hotpath"

// isHotPath reports whether fd carries the hotpath directive in its doc
// comment group.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathDirective {
			return true
		}
	}
	return false
}

// runAllocBound checks every annotated function in the file.
func runAllocBound(f *SrcFile) []Finding {
	var out []Finding
	funcBodies(f, func(fd *ast.FuncDecl) {
		if !isHotPath(fd) {
			return
		}
		out = append(out, checkAllocSites(f, fd)...)
	})
	return out
}

// checkAllocSites walks one hotpath body and reports provable
// allocation sites.
func checkAllocSites(f *SrcFile, fd *ast.FuncDecl) []Finding {
	prealloc := preallocatedSlices(f, fd)
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if cl, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
					out = append(out, f.finding("allocbound", v.Pos(),
						"hot path %s heap-allocates &%s; reuse a scratch value or pool", fd.Name.Name, litTypeName(f, cl)))
					return false // the inner literal is part of this site
				}
			}
		case *ast.CompositeLit:
			switch f.typeOf(v).Underlying().(type) {
			case *types.Slice:
				out = append(out, f.finding("allocbound", v.Pos(),
					"hot path %s allocates a slice literal %s; hoist it out of the loop or reuse scratch", fd.Name.Name, litTypeName(f, v)))
			case *types.Map:
				out = append(out, f.finding("allocbound", v.Pos(),
					"hot path %s allocates a map literal %s; hoist it out of the loop or reuse scratch", fd.Name.Name, litTypeName(f, v)))
			}
		case *ast.CallExpr:
			out = append(out, checkAllocCall(f, fd, v, prealloc)...)
		case *ast.BinaryExpr:
			if v.Op == token.ADD && isNonConstantString(f, v) {
				out = append(out, f.finding("allocbound", v.Pos(),
					"hot path %s concatenates strings; build into a reused []byte or strings.Builder outside the loop", fd.Name.Name))
			}
		case *ast.FuncLit:
			if name, ok := capturesEnclosing(f, fd, v); ok {
				out = append(out, f.finding("allocbound", v.Pos(),
					"hot path %s creates a closure capturing %s by reference; the capture heap-allocates both — pass values explicitly or hoist the closure", fd.Name.Name, name))
			}
			return false // do not double-report the literal's own body
		}
		return true
	})
	return out
}

// checkAllocCall reports the call-shaped allocation classes: growing
// appends, make calls, and interface boxing of concrete arguments.
func checkAllocCall(f *SrcFile, fd *ast.FuncDecl, call *ast.CallExpr, prealloc map[types.Object]bool) []Finding {
	var out []Finding
	if name := calleeName(call); name == "append" && len(call.Args) > 0 {
		if _, isBuiltin := f.calleeObj(call).(*types.Builtin); isBuiltin {
			if !appendDestPreallocated(f, call.Args[0], prealloc) {
				out = append(out, f.finding("allocbound", call.Pos(),
					"hot path %s appends to %s without capacity provably preallocated by make; size it up front or reuse scratch", fd.Name.Name, types.ExprString(call.Args[0])))
			}
			return out
		}
	}
	out = append(out, checkBoxing(f, fd, call)...)
	return out
}

// litTypeName renders a composite literal's type for the finding
// message, falling back to the checker's view for untyped (nested)
// literals.
func litTypeName(f *SrcFile, cl *ast.CompositeLit) string {
	if cl.Type != nil {
		return types.ExprString(cl.Type)
	}
	if t := f.typeOf(cl); t != nil {
		return t.String()
	}
	return "composite literal"
}

// checkBoxing reports concrete values passed to interface parameters —
// the conversion boxes the value on the heap (fmt-style call sites are
// the classic leak). Conversions, nils, and already-interface arguments
// never box.
func checkBoxing(f *SrcFile, fd *ast.FuncDecl, call *ast.CallExpr) []Finding {
	tv, ok := f.Unit.Info.Types[call.Fun]
	if ok && tv.IsType() {
		return nil // conversion, not a call
	}
	sig := signatureOf(f, call)
	if sig == nil {
		return nil
	}
	var out []Finding
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i, call)
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := f.typeOf(arg)
		if at == nil || at == types.Typ[types.UntypedNil] {
			continue
		}
		if atv, ok := f.Unit.Info.Types[arg]; ok && atv.IsNil() {
			continue
		}
		if _, argIface := at.Underlying().(*types.Interface); argIface {
			continue // interface-to-interface: no box
		}
		if _, isSig := at.Underlying().(*types.Signature); isSig {
			continue // func values are already pointers
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue // pointer-shaped: boxing is pointer-sized, no copy alloc
		}
		out = append(out, f.finding("allocbound", arg.Pos(),
			"hot path %s boxes %s (%s) into interface parameter; the conversion allocates per call", fd.Name.Name, types.ExprString(arg), at.String()))
	}
	return out
}

// signatureOf resolves the call's function signature, nil for builtins
// and unresolvable callees.
func signatureOf(f *SrcFile, call *ast.CallExpr) *types.Signature {
	t := f.typeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

// paramTypeAt returns the declared parameter type for argument i,
// unrolling variadic tails. An argument spread with ... keeps the slice
// type and never boxes element-wise.
func paramTypeAt(sig *types.Signature, i int, call *ast.CallExpr) types.Type {
	params := sig.Params()
	if sig.Variadic() {
		last := params.Len() - 1
		if i >= last {
			if call.Ellipsis.IsValid() {
				return nil // passed as a whole slice
			}
			sl, ok := params.At(last).Type().(*types.Slice)
			if !ok {
				return nil
			}
			return sl.Elem()
		}
		return params.At(i).Type()
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// preallocatedSlices collects the objects in fd provably created by a
// make with an explicit capacity argument (make([]T, n, cap)) — the
// only local shape under which append is guaranteed allocation-free up
// to the reserved capacity.
func preallocatedSlices(f *SrcFile, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || calleeName(call) != "make" || len(call.Args) != 3 {
				continue
			}
			if obj := f.obj(id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// appendDestPreallocated reports whether the append destination is an
// identifier whose object was created by a capacity-carrying make in
// this function.
func appendDestPreallocated(f *SrcFile, dest ast.Expr, prealloc map[types.Object]bool) bool {
	id, ok := ast.Unparen(dest).(*ast.Ident)
	if !ok {
		return false
	}
	obj := f.obj(id)
	return obj != nil && prealloc[obj]
}

// isNonConstantString reports whether the binary + has static type
// string and is not folded at compile time.
func isNonConstantString(f *SrcFile, b *ast.BinaryExpr) bool {
	tv, ok := f.Unit.Info.Types[b]
	if !ok || tv.Value != nil {
		return false // untracked or constant-folded
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// capturesEnclosing reports whether the function literal references a
// variable declared in the enclosing function — a by-reference capture
// that forces the variable (and the closure) onto the heap.
func capturesEnclosing(f *SrcFile, fd *ast.FuncDecl, lit *ast.FuncLit) (string, bool) {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := f.Unit.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || obj.Pkg() == nil {
			return true
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return true // package-level: no capture
		}
		// Declared outside the literal but inside the enclosing decl.
		if obj.Pos() < lit.Pos() && obj.Pos() >= fd.Pos() {
			captured = obj.Name()
			return false
		}
		return true
	})
	return captured, captured != ""
}
