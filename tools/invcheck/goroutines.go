package main

import (
	"go/ast"
)

// analyzerGoroutines guards against silent goroutine leaks: the chaos
// and cancellation property tests end with goroutine-leak checks, and
// every leak they have caught came from a go statement with no join in
// sight. The rule is lexical: a go statement must share its top-level
// function with a WaitGroup or channel join — a .Wait() call, a channel
// receive, or a wg.Done() inside the launched body (the WaitGroup being
// the join token even when Wait lives in Close). Intentionally detached
// goroutines (per-connection rpc servers, server loops joined by Close)
// carry a reasoned suppression instead.
var analyzerGoroutines = &Analyzer{
	Name: "goroutines",
	Doc:  "every go statement is lexically paired with a WaitGroup or channel join",
	Run:  runGoroutines,
}

// runGoroutines reports go statements whose enclosing top-level
// function shows no join evidence.
func runGoroutines(f *SrcFile) []Finding {
	var out []Finding
	funcBodies(f, func(fd *ast.FuncDecl) {
		var goStmts []*ast.GoStmt
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				goStmts = append(goStmts, gs)
			}
			return true
		})
		if len(goStmts) == 0 {
			return
		}
		joined := funcHasJoin(fd)
		for _, gs := range goStmts {
			if joined || goBodyHasDone(gs) {
				continue
			}
			out = append(out, f.finding("goroutines", gs.Pos(),
				"go statement in %s has no lexically-paired join (WaitGroup or channel receive); join it or suppress with a documented lifecycle", fd.Name.Name))
		}
	})
	return out
}

// funcHasJoin reports whether fd's body contains join evidence: a
// .Wait() call (sync.WaitGroup, errgroup) or a channel receive
// (including receives inside select clauses and range-drains appear as
// unary <- expressions or assignment receives).
func funcHasJoin(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && len(v.Args) == 0 {
				found = true
				return false
			}
		case *ast.UnaryExpr:
			if v.Op.String() == "<-" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// goBodyHasDone reports whether the go statement launches a function
// literal that calls .Done() (typically defer wg.Done()), the WaitGroup
// discipline that pairs with a Wait elsewhere in the type's lifecycle.
func goBodyHasDone(gs *ast.GoStmt) bool {
	lit, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && len(call.Args) == 0 {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
