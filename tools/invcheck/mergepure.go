package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzerMergePure guards the merge-commutativity contract the whole
// distribution layer rests on: partial counts merged in ANY order must
// produce identical totals, because worker results arrive in retry- and
// failover-dependent order and WAL replay re-merges them from scratch.
// That only holds when Merge and *Into methods are pure accumulations —
// they fold the source into the destination and touch nothing else.
//
// Every function named Merge or ending in Into in the count-buffer
// packages is checked, transitively through same-package helpers:
//   - no reads of package-level mutable state (error sentinels and
//     constants are fine — their values never vary between replays);
//   - no stores to parameters other than the destination (the receiver,
//     plus pointer/slice/map parameters named dst, dest, buf, out, or
//     acc) — mutating the source would make merge order observable;
//   - no calls outside builtins, conversions, same-package helpers
//     (which are checked recursively), and the mergePureCallees
//     allowlist of vetted cross-package pure functions.
var analyzerMergePure = &Analyzer{
	Name:     "mergepure",
	Doc:      "Merge/*Into accumulators are pure: destination-only stores, no global state, vetted callees",
	Packages: []string{"assoc", "hashtree", "fptree", "dist"},
	RunPkg:   runMergePure,
}

// mergeDestNames are the parameter names that mark an explicit merge
// destination (alongside the receiver).
var mergeDestNames = map[string]bool{
	"dst": true, "dest": true, "buf": true, "out": true, "acc": true,
}

// mergePureCallees lists cross-package functions vetted as pure reads,
// keyed by types.Func.FullName. Additions need review: anything here
// runs inside every merge on every worker and every replay.
var mergePureCallees = map[string]bool{
	// Itemset membership probes: read-only scans over sorted item IDs.
	"(repro/internal/transactions.Itemset).ContainsAll": true,
	"(repro/internal/transactions.Itemset).Contains":    true,
	// Stable ordering helpers keep merged output canonical without
	// touching anything outside the slice being sorted.
	"sort.Ints":    true,
	"sort.Slice":   true,
	"sort.Strings": true,
	"sort.Search":  true,
}

// declSite pairs a function declaration with the file it lives in, so
// transitive checking reports findings against the right file.
type declSite struct {
	f  *SrcFile
	fd *ast.FuncDecl
}

// runMergePure finds the merge-shaped entry points of the package and
// checks each, chasing same-package helper calls across files. Each
// function body is analyzed at most once per package even when several
// merges share a helper.
func runMergePure(u *Unit) []Finding {
	decls := make(map[*types.Func]declSite)
	for _, f := range u.Files {
		funcBodies(f, func(fd *ast.FuncDecl) {
			if fn, ok := u.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = declSite{f: f, fd: fd}
			}
		})
	}
	visited := make(map[*types.Func]bool)
	var out []Finding
	for _, f := range u.Files {
		funcBodies(f, func(fd *ast.FuncDecl) {
			if !isMergeShaped(fd.Name.Name) {
				return
			}
			fn, ok := u.Info.Defs[fd.Name].(*types.Func)
			if !ok || visited[fn] {
				return
			}
			out = append(out, checkMergeFrom(u, decls, visited, fn)...)
		})
	}
	return out
}

// isMergeShaped reports whether the function name marks a merge entry
// point: Merge itself or any *Into accumulator (MergeInto, countInto).
func isMergeShaped(name string) bool {
	return name == "Merge" || strings.HasSuffix(name, "Into")
}

// checkMergeFrom checks fn's body and, breadth-first, every
// same-package helper it calls that has not been checked yet.
func checkMergeFrom(u *Unit, decls map[*types.Func]declSite, visited map[*types.Func]bool, fn *types.Func) []Finding {
	var out []Finding
	queue := []*types.Func{fn}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if visited[cur] {
			continue
		}
		visited[cur] = true
		site, ok := decls[cur]
		if !ok {
			continue // no body in this unit (e.g. declared via cgo/asm); call-site rule already flagged it
		}
		findings, callees := checkMergeBody(u, site)
		out = append(out, findings...)
		queue = append(queue, callees...)
	}
	return out
}

// checkMergeBody applies the purity rules to one function body and
// returns its findings plus the same-package callees to check next.
func checkMergeBody(u *Unit, site declSite) ([]Finding, []*types.Func) {
	f, fd := site.f, site.fd
	params := paramObjects(u, fd)
	dests := destObjects(u, fd)
	var out []Finding
	var callees []*types.Func
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if obj := storeRootObject(f, lhs); obj != nil && params[obj] && !dests[obj] {
					out = append(out, f.finding("mergepure", lhs.Pos(),
						"%s stores to parameter %s, which is not the merge destination; merges may only accumulate into the receiver or a dst/dest/buf/out/acc parameter", fd.Name.Name, obj.Name()))
				}
			}
		case *ast.IncDecStmt:
			if obj := storeRootObject(f, v.X); obj != nil && params[obj] && !dests[obj] {
				out = append(out, f.finding("mergepure", v.Pos(),
					"%s stores to parameter %s, which is not the merge destination; merges may only accumulate into the receiver or a dst/dest/buf/out/acc parameter", fd.Name.Name, obj.Name()))
			}
		case *ast.Ident:
			if obj, ok := u.Info.Uses[v].(*types.Var); ok && isGlobalMutable(obj) {
				out = append(out, f.finding("mergepure", v.Pos(),
					"%s touches package-level mutable state %s; merge results must not depend on anything but the two operands", fd.Name.Name, obj.Name()))
			}
		case *ast.CallExpr:
			fs, cs := checkMergeCall(u, f, fd, v)
			out = append(out, fs...)
			callees = append(callees, cs...)
		}
		return true
	})
	return out, callees
}

// checkMergeCall classifies one call inside a merge body: builtins and
// conversions pass, same-package functions are queued for transitive
// checking, and anything else must be on the allowlist.
func checkMergeCall(u *Unit, f *SrcFile, fd *ast.FuncDecl, call *ast.CallExpr) ([]Finding, []*types.Func) {
	if tv, ok := u.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil, nil // conversion
	}
	obj := f.calleeObj(call)
	switch o := obj.(type) {
	case *types.Builtin:
		return nil, nil
	case *types.TypeName:
		return nil, nil // conversion through a named type
	case *types.Func:
		if o.Pkg() != nil && o.Pkg() == u.Types {
			return nil, []*types.Func{o}
		}
		if mergePureCallees[o.FullName()] {
			return nil, nil
		}
		return []Finding{f.finding("mergepure", call.Pos(),
			"%s calls %s, which is not on the pure-helper allowlist; merges must stay side-effect-free on every worker and every replay", fd.Name.Name, o.FullName())}, nil
	default:
		return []Finding{f.finding("mergepure", call.Pos(),
			"%s calls through a function value (%s); purity cannot be established for an indirect callee", fd.Name.Name, types.ExprString(call.Fun))}, nil
	}
}

// paramObjects collects the objects of fd's declared parameters.
func paramObjects(u *Unit, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := u.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// destObjects collects the merge destinations: the receiver plus every
// pointer-, slice-, or map-typed parameter whose name declares it a
// destination.
func destObjects(u *Unit, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				if obj := u.Info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := u.Info.Defs[name]
			if obj == nil || !mergeDestNames[name.Name] {
				continue
			}
			switch obj.Type().Underlying().(type) {
			case *types.Pointer, *types.Slice, *types.Map:
				out[obj] = true
			}
		}
	}
	return out
}

// storeRootObject resolves the base object being stored through: the
// identifier at the root of a chain of selectors, indexes, derefs, and
// slices. Stores to locals return their (local) object too; the caller
// decides which objects matter.
func storeRootObject(f *SrcFile, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return f.obj(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// isGlobalMutable reports whether obj is a package-level variable whose
// value can change between runs or replays — anything but an
// error-typed sentinel (sentinels are write-once identity tokens).
func isGlobalMutable(obj *types.Var) bool {
	if obj.IsField() || obj.Pkg() == nil {
		return false
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return false
	}
	return !isErrorType(obj.Type())
}
