package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestFrameworkParseFailureExits2: a file that fails to PARSE aborts
// the run with exit 2 and [framework] diagnostics — it is never
// silently skipped, because an unparseable file could hide any number
// of violations.
func TestFrameworkParseFailureExits2(t *testing.T) {
	dir := writeFixtureFile(t, "broken.go", `package broken

func unclosed() {
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{dir}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("run on unparseable tree = %d, want 2\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "[framework]") {
		t.Errorf("stderr missing [framework] diagnostic:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "nothing was gated") {
		t.Errorf("stderr missing the nothing-was-gated notice:\n%s", stderr.String())
	}
}

// TestFrameworkTypeFailureExits2: a file that parses but fails to
// TYPE-CHECK is just as fatal — the typed analyzers cannot run without
// types.Info, and skipping the package would ungate it.
func TestFrameworkTypeFailureExits2(t *testing.T) {
	dir := writeFixtureFile(t, "broken.go", `package broken

func mismatched() int {
	var s string = 42
	return s
}
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{dir}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("run on untypeable tree = %d, want 2\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "[framework]") {
		t.Errorf("stderr missing [framework] diagnostic:\n%s", stderr.String())
	}
}

// TestFormatJSON: -format=json emits a parseable array of findings, and
// composes with -only; a clean tree emits an empty array, never null,
// so consumers can index unconditionally.
func TestFormatJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-only=errwrap", "-format=json", filepath.Join("testdata", "errwrap", "bad")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run = %d, want 1\nstderr: %s", code, stderr.String())
	}
	var findings []Finding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("stdout is not a JSON findings array: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("JSON array is empty for the errwrap bad tree")
	}
	for _, f := range findings {
		if f.Analyzer != "errwrap" {
			t.Errorf("-only=errwrap leaked analyzer %q", f.Analyzer)
		}
		if f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("finding missing fields: %+v", f)
		}
	}

	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-only=errwrap", "-format=json", filepath.Join("testdata", "errwrap", "good")}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("clean run = %d, want 0\nstderr: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean tree JSON = %q, want []", got)
	}
}

// TestFormatGitHub: -format=github emits workflow ::error annotations
// with file and line properties, one per finding.
func TestFormatGitHub(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-only=errwrap", "-format=github", filepath.Join("testdata", "errwrap", "bad")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run = %d, want 1\nstderr: %s", code, stderr.String())
	}
	want := regexp.MustCompile(`^::error file=.+\.go,line=\d+::\[errwrap\] .+$`)
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		if !want.MatchString(line) {
			t.Errorf("line is not a ::error annotation: %q", line)
		}
	}
}

// TestGitHubEscape: the workflow-command parser's special characters
// are percent-encoded so multi-line or %-bearing messages cannot break
// out of the annotation.
func TestGitHubEscape(t *testing.T) {
	got := githubEscape("50% done\r\nnext")
	want := "50%25 done%0D%0Anext"
	if got != want {
		t.Errorf("githubEscape = %q, want %q", got, want)
	}
}

// TestUnknownFormatExits2: a typo'd -format is a usage error, not a
// silent fallback to text.
func TestUnknownFormatExits2(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-format=xml", "."}, &stdout, &stderr); code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown -format") {
		t.Errorf("stderr missing format diagnostic: %s", stderr.String())
	}
}

// TestSuppressionAudit: -suppressions lists every directive under the
// roots as file:line: invcheck/<analyzer>: reason, exits 0 even though
// the tree has violations, and reports the count on stderr.
func TestSuppressionAudit(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-suppressions", filepath.Join("testdata", "suppress")}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("audit run = %d, want 0\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "invcheck/goroutines:") {
		t.Errorf("audit output missing the goroutines directives:\n%s", out)
	}
	lineRe := regexp.MustCompile(`^[^:]+\.go:\d+: invcheck/[a-z]+: .*$`)
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !lineRe.MatchString(line) {
			t.Errorf("audit line not in file:line: invcheck/<name>: reason form: %q", line)
		}
	}
	if !strings.Contains(stderr.String(), "suppressions") {
		t.Errorf("stderr missing the count summary: %q", stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-suppressions", "-format=json", filepath.Join("testdata", "suppress")}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("json audit run = %d, want 0", code)
	}
	var entries []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Reason   string `json:"reason"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &entries); err != nil {
		t.Fatalf("json audit output unparseable: %v\n%s", err, stdout.String())
	}
	if len(entries) == 0 {
		t.Fatal("json audit reported no suppressions for the suppress fixture tree")
	}
}

// TestWalkerSkipsSymlinkedDirs: the walker does not follow directory
// symlinks, so a link pointing at a tree full of violations (or at an
// ancestor, forming a cycle) neither gates nor hangs the run.
func TestWalkerSkipsSymlinkedDirs(t *testing.T) {
	target := writeFixtureFile(t, "bad.go", `package worker

func detach(work func()) {
	go work()
}
`)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "ok.go"), []byte("package worker\n\nfunc fine() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Symlink(target, filepath.Join(dir, "linked")); err != nil {
		t.Skipf("symlinks unavailable: %v", err)
	}
	if err := os.Symlink(dir, filepath.Join(dir, "cycle")); err != nil {
		t.Fatal(err)
	}
	findings, err := checkTree(dir, registry)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("symlinked violations leaked into the walk:\n%s", joinFindings(findings))
	}
}

// TestWalkerEmptyPackages: directories with no Go files at all, and
// directories holding only _test.go files, contribute nothing — no
// findings and no framework error.
func TestWalkerEmptyPackages(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "docs"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "docs", "README.md"), []byte("notes\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	testOnly := filepath.Join(dir, "testsonly")
	if err := os.MkdirAll(testOnly, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(testOnly, "x_test.go"), []byte("package testsonly\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := checkTree(dir, registry)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("empty packages reported findings:\n%s", joinFindings(findings))
	}
}

// TestWalkerHonorsBuildConstraints: a file excluded by its //go:build
// header is invisible — its violations do not fire AND its type errors
// do not abort the run, because the default build context would never
// compile it either.
func TestWalkerHonorsBuildConstraints(t *testing.T) {
	dir := writeFixtureFile(t, "gen.go", `//go:build ignore

package main

func main() {
	undefinedHelper()
	go undefinedHelper()
}
`)
	if err := os.WriteFile(filepath.Join(dir, "lib.go"), []byte("package lib\n\nfunc fine() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := checkTree(dir, registry)
	if err != nil {
		t.Fatalf("constraint-excluded file poisoned the run: %v", err)
	}
	if len(findings) != 0 {
		t.Fatalf("constraint-excluded file reported findings:\n%s", joinFindings(findings))
	}
}

// TestMixedPackageClausesInOneDir: a //go:build ignore'd main-package
// generator script cannot break its host package, and two compilable
// package clauses in one directory each type-check as their own unit.
func TestMixedPackageClausesInOneDir(t *testing.T) {
	dir := writeFixtureFile(t, "lib.go", `package lib

import "errors"

var ErrBoom = errors.New("boom")

func compare(err error) bool {
	return err == ErrBoom
}
`)
	other := `package libtool

func detach(work func()) {
	go work()
}
`
	if err := os.WriteFile(filepath.Join(dir, "tool.go"), []byte(other), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := checkTree(dir, registry)
	if err != nil {
		t.Fatal(err)
	}
	joined := joinFindings(findings)
	if !strings.Contains(joined, "sentinel ErrBoom") {
		t.Errorf("lib unit finding missing:\n%s", joined)
	}
	if !strings.Contains(joined, "go statement in detach") {
		t.Errorf("libtool unit finding missing:\n%s", joined)
	}
}
