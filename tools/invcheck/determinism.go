package main

import (
	"go/ast"
	"go/token"
	"strings"
)

// analyzerDeterminism guards the byte-identity contract: engine code
// must produce the same bytes on every run, across workers, shardings,
// transports, and WAL replays. Wall-clock reads, the global math/rand
// source, and map iteration order are the three ways nondeterminism has
// historically crept into mining engines, so all three are gated in the
// packages whose outputs are compared byte-for-byte.
var analyzerDeterminism = &Analyzer{
	Name: "determinism",
	Doc:  "no wall-clock, unseeded rand, or unsorted map-range output in byte-identity packages",
	Packages: []string{
		"assoc", "fptree", "hashtree", "transactions", "dist", "wal",
	},
	Run: runDeterminism,
}

// seededRandOK lists math/rand selectors that construct seeded sources
// rather than draw from the process-global one.
var seededRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// runDeterminism reports time.Now/time.Since calls, global-source
// math/rand calls, and map-range loops that append to slices or write
// output without an intervening sort.
func runDeterminism(f *SrcFile) []Finding {
	var out []Finding
	timeIdent := importIdent(f, "time")
	randIdent := importIdent(f, "math/rand")
	if randIdent == "" {
		randIdent = importIdent(f, "math/rand/v2")
	}
	ast.Inspect(f.File, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, fn := range []string{"Now", "Since"} {
			if isPkgCall(call, timeIdent, fn) {
				out = append(out, f.finding("determinism", call.Pos(),
					"time.%s in replayed engine code breaks byte-identity; inject a clock or measure outside the engine", fn))
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && randIdent != "" {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == randIdent && !seededRandOK[sel.Sel.Name] {
				out = append(out, f.finding("determinism", call.Pos(),
					"rand.%s draws from the global source; use rand.New(rand.NewSource(seed)) so runs replay", sel.Sel.Name))
			}
		}
		return true
	})
	funcBodies(f, func(fd *ast.FuncDecl) {
		out = append(out, checkMapRanges(f, fd)...)
	})
	return out
}

// checkMapRanges flags range statements over locally-provable maps
// whose bodies append to a slice with no sort call anywhere in the
// enclosing function, or write directly to output. Map types are
// inferred syntactically (parameters, var declarations, make/composite
// assignments), so fields and cross-package maps are out of scope —
// the gate catches the common local pattern without type checking.
func checkMapRanges(f *SrcFile, fd *ast.FuncDecl) []Finding {
	maps := localMapNames(fd)
	if len(maps) == 0 {
		return nil
	}
	hasSort := funcHasSortCall(fd)
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		id, ok := rs.X.(*ast.Ident)
		if !ok || !maps[id.Name] {
			return true
		}
		appends, writes := false, false
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch calleeName(call) {
			case "append":
				if !appendPerRangeKey(call, rs) {
					appends = true
				}
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln", "Write", "WriteString":
				writes = true
			}
			return true
		})
		if writes {
			out = append(out, f.finding("determinism", rs.Pos(),
				"map iteration order over %s reaches the output stream; collect and sort first", id.Name))
		} else if appends && !hasSort {
			out = append(out, f.finding("determinism", rs.Pos(),
				"range over map %s appends to a slice with no sort in %s; iteration order leaks into results", id.Name, fd.Name.Name))
		}
		return true
	})
	return out
}

// localMapNames collects identifiers provably map-typed inside fd:
// map-typed parameters, var declarations, and := / = assignments from
// make(map[...]) or map literals.
func localMapNames(fd *ast.FuncDecl) map[string]bool {
	maps := make(map[string]bool)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if _, ok := field.Type.(*ast.MapType); ok {
				for _, name := range field.Names {
					maps[name.Name] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeclStmt:
			gd, ok := st.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if _, isMap := vs.Type.(*ast.MapType); isMap {
					for _, name := range vs.Names {
						maps[name.Name] = true
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if i >= len(st.Lhs) {
					break
				}
				id, ok := st.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if exprIsMap(rhs) {
					maps[id.Name] = true
				}
			}
		}
		return true
	})
	return maps
}

// exprIsMap reports whether the expression syntactically constructs a
// map: make(map[...]...) or a map composite literal.
func exprIsMap(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) > 0 {
			_, isMap := v.Args[0].(*ast.MapType)
			return isMap
		}
	case *ast.CompositeLit:
		_, isMap := v.Type.(*ast.MapType)
		return isMap
	}
	return false
}

// appendPerRangeKey reports whether the append's destination is an
// index expression keyed by the range statement's key variable
// (m2[k] = append(m2[k], …)): each key is visited exactly once, so the
// iteration order cannot leak into any single slice.
func appendPerRangeKey(call *ast.CallExpr, rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || len(call.Args) == 0 {
		return false
	}
	idx, ok := call.Args[0].(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := idx.Index.(*ast.Ident)
	return ok && id.Name == key.Name
}

// funcHasSortCall reports whether any call in fd's body resolves to a
// sort-ish callee (sort.Ints, slices.SortFunc, or a helper whose name
// contains "sort", like the engines' sortLevel) — the "intervening
// sort" that makes map-order appends deterministic again. Qualified
// calls are matched on the full pkg.Func name so sort.Ints counts.
func funcHasSortCall(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				name = id.Name + "." + sel.Sel.Name
			}
		}
		if strings.Contains(strings.ToLower(name), "sort") {
			found = true
			return false
		}
		return true
	})
	return found
}
