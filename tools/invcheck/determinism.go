package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzerDeterminism guards the byte-identity contract: engine code
// must produce the same bytes on every run, across workers, shardings,
// transports, and WAL replays. Wall-clock reads, the global math/rand
// source, and map iteration order are the three ways nondeterminism has
// historically crept into mining engines, so all three are gated in the
// packages whose outputs are compared byte-for-byte. The serving tier
// and the sequence miners are in scope too: serve's views replay
// against from-scratch mines, and seqmine is next onto the substrate.
//
// The typed pass resolves callees through go/types (renamed imports and
// wrapper aliases cannot hide a wall-clock read) and recognizes ranges
// over any map-typed expression — struct fields and cross-package maps
// included, which the syntactic pass could not see.
var analyzerDeterminism = &Analyzer{
	Name: "determinism",
	Doc:  "no wall-clock, unseeded rand, or unsorted map-range output in byte-identity packages",
	Packages: []string{
		"assoc", "fptree", "hashtree", "transactions", "dist", "wal", "serve", "seqmine",
	},
	Run: runDeterminism,
}

// seededRandOK lists math/rand functions that construct seeded sources
// rather than draw from the process-global one.
var seededRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// runDeterminism reports time.Now/time.Since calls, global-source
// math/rand calls, and map-range loops that append to slices or write
// output without an intervening sort.
func runDeterminism(f *SrcFile) []Finding {
	var out []Finding
	ast.Inspect(f.File, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, fn := range []string{"Now", "Since"} {
			if f.isPkgFunc(call, "time", fn) {
				out = append(out, f.finding("determinism", call.Pos(),
					"time.%s in replayed engine code breaks byte-identity; inject a clock or measure outside the engine", fn))
			}
		}
		if name, ok := globalRandCall(f, call); ok {
			out = append(out, f.finding("determinism", call.Pos(),
				"rand.%s draws from the global source; use rand.New(rand.NewSource(seed)) so runs replay", name))
		}
		return true
	})
	funcBodies(f, func(fd *ast.FuncDecl) {
		out = append(out, checkMapRanges(f, fd)...)
	})
	return out
}

// globalRandCall reports whether call draws from math/rand's (or
// rand/v2's) process-global source: a package-level function of either
// package that is not one of the seeded constructors. Methods on
// seeded *rand.Rand values resolve to a receiver-carrying signature and
// never match.
func globalRandCall(f *SrcFile, call *ast.CallExpr) (string, bool) {
	fn, ok := f.calleeObj(call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return "", false
	}
	if seededRandOK[fn.Name()] {
		return "", false
	}
	return fn.Name(), true
}

// checkMapRanges flags range statements over map-typed expressions
// whose bodies append to a slice with no sort call anywhere in the
// enclosing function, or write directly to output. The map type comes
// from the checker, so fields (s.counts), call results, and
// cross-package maps are all in scope — not just locally-declared
// identifiers.
func checkMapRanges(f *SrcFile, fd *ast.FuncDecl) []Finding {
	hasSort := funcHasSortCall(fd)
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := f.typeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		label := types.ExprString(rs.X)
		appends, writes := false, false
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch calleeName(call) {
			case "append":
				if !appendPerRangeKey(call, rs) {
					appends = true
				}
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln", "Write", "WriteString":
				writes = true
			}
			return true
		})
		if writes {
			out = append(out, f.finding("determinism", rs.Pos(),
				"map iteration order over %s reaches the output stream; collect and sort first", label))
		} else if appends && !hasSort {
			out = append(out, f.finding("determinism", rs.Pos(),
				"range over map %s appends to a slice with no sort in %s; iteration order leaks into results", label, fd.Name.Name))
		}
		return true
	})
	return out
}

// appendPerRangeKey reports whether the append's destination is an
// index expression keyed by the range statement's key variable
// (m2[k] = append(m2[k], …)): each key is visited exactly once, so the
// iteration order cannot leak into any single slice.
func appendPerRangeKey(call *ast.CallExpr, rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || len(call.Args) == 0 {
		return false
	}
	idx, ok := call.Args[0].(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := idx.Index.(*ast.Ident)
	return ok && id.Name == key.Name
}

// funcHasSortCall reports whether any call in fd's body resolves to a
// sort-ish callee (sort.Ints, slices.SortFunc, or a helper whose name
// contains "sort", like the engines' sortLevel) — the "intervening
// sort" that makes map-order appends deterministic again. Qualified
// calls are matched on the full pkg.Func name so sort.Ints counts.
func funcHasSortCall(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				name = id.Name + "." + sel.Sel.Name
			}
		}
		if strings.Contains(strings.ToLower(name), "sort") {
			found = true
			return false
		}
		return true
	})
	return found
}
