// Package tree implements ID3/C4.5-style decision-tree induction over
// dataset.Table: information gain, gain ratio and Gini split criteria,
// multiway splits on categorical attributes, binary threshold splits on
// numeric attributes, C4.5 pessimistic pruning, reduced-error pruning, and
// extraction of the tree as a rule set. Induction sorts each numeric
// attribute once per node, so training costs O(depth·rows·attrs·log rows)
// in the worst case — the growth curve EXP-T3 measures.
package tree

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dataset"
)

// Criterion selects the split-quality measure.
type Criterion int

const (
	// InfoGain is ID3's entropy reduction.
	InfoGain Criterion = iota
	// GainRatio is C4.5's information gain normalised by split entropy.
	GainRatio
	// Gini is CART's impurity reduction.
	Gini
)

// String names the criterion.
func (c Criterion) String() string {
	switch c {
	case InfoGain:
		return "infogain"
	case GainRatio:
		return "gainratio"
	case Gini:
		return "gini"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// Config controls induction.
type Config struct {
	Criterion Criterion
	// MaxDepth limits tree depth; zero means unlimited.
	MaxDepth int
	// MinLeaf is the minimum number of training rows in a leaf; zero
	// means 1.
	MinLeaf int
	// MinGain is the smallest split quality worth splitting on.
	MinGain float64
}

// Node is a tree node. Leaves have Attr == -1.
type Node struct {
	// Attr is the splitting attribute column, or -1 for a leaf.
	Attr int
	// Threshold is the numeric split point (branch 0: <=, branch 1: >).
	Threshold float64
	// Children holds one child per categorical value, or two for numeric.
	Children []*Node
	// MajorityChild receives rows whose split attribute is missing.
	MajorityChild int

	// Class is the majority class at this node (the prediction if leaf).
	Class int
	// ClassCounts is the training class distribution at this node.
	ClassCounts []int
	// N is the number of training rows that reached this node.
	N int
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Attr < 0 }

// Errors returned by Build.
var (
	ErrNoClass   = errors.New("tree: table has no categorical class attribute")
	ErrNoRows    = errors.New("tree: empty training table")
	ErrBadConfig = errors.New("tree: invalid configuration")
)

// Tree is a trained decision tree bound to its training schema.
type Tree struct {
	Root   *Node
	Attrs  []dataset.Attribute
	Class  int
	Config Config
}

// Build induces a tree from the table.
func Build(t *dataset.Table, cfg Config) (*Tree, error) {
	if t == nil || t.NumRows() == 0 {
		return nil, ErrNoRows
	}
	if t.NumClasses() < 1 {
		return nil, ErrNoClass
	}
	if cfg.MinLeaf < 0 || cfg.MaxDepth < 0 || cfg.MinGain < 0 {
		return nil, ErrBadConfig
	}
	if cfg.MinLeaf == 0 {
		cfg.MinLeaf = 1
	}
	b := &builder{t: t, cfg: cfg, nClasses: t.NumClasses()}
	rows := make([]int, t.NumRows())
	for i := range rows {
		rows[i] = i
	}
	root := b.build(rows, 1)
	return &Tree{Root: root, Attrs: t.Attributes, Class: t.ClassIndex, Config: cfg}, nil
}

type builder struct {
	t        *dataset.Table
	cfg      Config
	nClasses int
}

// classCounts tallies class frequencies of the rows.
func (b *builder) classCounts(rows []int) []int {
	counts := make([]int, b.nClasses)
	for _, r := range rows {
		counts[b.t.Class(r)]++
	}
	return counts
}

func majority(counts []int) int {
	best := 0
	for c, n := range counts {
		if n > counts[best] {
			best = c
		}
	}
	return best
}

func isPure(counts []int) bool {
	nonZero := 0
	for _, n := range counts {
		if n > 0 {
			nonZero++
		}
	}
	return nonZero <= 1
}

// build recursively grows the tree.
func (b *builder) build(rows []int, depth int) *Node {
	counts := b.classCounts(rows)
	node := &Node{
		Attr:        -1,
		Class:       majority(counts),
		ClassCounts: counts,
		N:           len(rows),
	}
	if isPure(counts) || len(rows) < 2*b.cfg.MinLeaf {
		return node
	}
	if b.cfg.MaxDepth > 0 && depth > b.cfg.MaxDepth {
		return node
	}
	attr, threshold, gain, parts := b.bestSplit(rows, counts)
	if attr < 0 || gain <= b.cfg.MinGain {
		return node
	}
	node.Attr = attr
	node.Threshold = threshold
	node.Children = make([]*Node, len(parts))
	bestChild, bestN := 0, -1
	for i, part := range parts {
		if len(part) == 0 {
			// Empty branch: a leaf predicting the parent majority.
			node.Children[i] = &Node{
				Attr:        -1,
				Class:       node.Class,
				ClassCounts: make([]int, b.nClasses),
			}
			continue
		}
		node.Children[i] = b.build(part, depth+1)
		if len(part) > bestN {
			bestChild, bestN = i, len(part)
		}
	}
	node.MajorityChild = bestChild
	return node
}

// bestSplit searches every attribute for the best split of rows, returning
// the attribute, numeric threshold (if numeric), quality, and the row
// partition. attr -1 means no valid split.
func (b *builder) bestSplit(rows []int, parentCounts []int) (attr int, threshold, gain float64, parts [][]int) {
	attr = -1
	parentImp := b.impurity(parentCounts, len(rows))
	for j := range b.t.Attributes {
		if j == b.t.ClassIndex {
			continue
		}
		var g, th float64
		var p [][]int
		if b.t.Attributes[j].Kind == dataset.Categorical {
			g, p = b.categoricalSplit(rows, j, parentImp)
		} else {
			g, th, p = b.numericSplit(rows, j, parentImp)
		}
		if p != nil && g > gain {
			attr, threshold, gain, parts = j, th, g, p
		}
	}
	return attr, threshold, gain, parts
}

// impurity computes entropy (InfoGain/GainRatio) or Gini impurity.
func (b *builder) impurity(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	switch b.cfg.Criterion {
	case Gini:
		g := 1.0
		for _, n := range counts {
			p := float64(n) / float64(total)
			g -= p * p
		}
		return g
	default:
		e := 0.0
		for _, n := range counts {
			if n == 0 {
				continue
			}
			p := float64(n) / float64(total)
			e -= p * math.Log2(p)
		}
		return e
	}
}

// categoricalSplit evaluates the multiway split on attribute j. Rows with
// missing values are excluded from the gain computation and routed to the
// majority branch at prediction time.
func (b *builder) categoricalSplit(rows []int, j int, parentImp float64) (float64, [][]int) {
	nValues := len(b.t.Attributes[j].Values)
	if nValues < 2 {
		return 0, nil
	}
	parts := make([][]int, nValues)
	known := 0
	for _, r := range rows {
		v := b.t.Rows[r][j]
		if dataset.IsMissing(v) {
			continue
		}
		parts[int(v)] = append(parts[int(v)], r)
		known++
	}
	if known == 0 {
		return 0, nil
	}
	nonEmpty := 0
	for _, p := range parts {
		if len(p) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		return 0, nil
	}
	for _, p := range parts {
		if len(p) > 0 && len(p) < b.cfg.MinLeaf {
			return 0, nil
		}
	}
	childImp := 0.0
	splitInfo := 0.0
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		w := float64(len(p)) / float64(known)
		childImp += w * b.impurity(b.classCounts(p), len(p))
		splitInfo -= w * math.Log2(w)
	}
	g := parentImp - childImp
	if b.cfg.Criterion == GainRatio {
		if splitInfo <= 0 {
			return 0, nil
		}
		g /= splitInfo
	}
	// Penalise gain by the known fraction, C4.5's missing-value discount.
	g *= float64(known) / float64(len(rows))
	return g, parts
}

// valClass pairs an attribute value with a row's class for split sweeps.
type valClass struct {
	v float64
	c int
}

// numericSplit finds the best binary threshold on attribute j by a single
// sorted sweep with incremental class counts.
func (b *builder) numericSplit(rows []int, j int, parentImp float64) (float64, float64, [][]int) {
	vals := make([]valClass, 0, len(rows))
	for _, r := range rows {
		v := b.t.Rows[r][j]
		if dataset.IsMissing(v) {
			continue
		}
		vals = append(vals, valClass{v: v, c: b.t.Class(r)})
	}
	if len(vals) < 2*b.cfg.MinLeaf {
		return 0, 0, nil
	}
	sort.Slice(vals, func(i, k int) bool { return vals[i].v < vals[k].v })
	known := len(vals)
	left := make([]int, b.nClasses)
	right := b.countsOf(vals)
	bestGain, bestTh := -1.0, 0.0
	nLeft := 0
	for i := 0; i < len(vals)-1; i++ {
		left[vals[i].c]++
		right[vals[i].c]--
		nLeft++
		if vals[i].v == vals[i+1].v {
			continue
		}
		if nLeft < b.cfg.MinLeaf || known-nLeft < b.cfg.MinLeaf {
			continue
		}
		wl := float64(nLeft) / float64(known)
		wr := 1 - wl
		childImp := wl*b.impurity(left, nLeft) + wr*b.impurity(right, known-nLeft)
		g := parentImp - childImp
		if b.cfg.Criterion == GainRatio {
			si := -wl*math.Log2(wl) - wr*math.Log2(wr)
			if si <= 0 {
				continue
			}
			g /= si
		}
		if g > bestGain {
			bestGain = g
			bestTh = (vals[i].v + vals[i+1].v) / 2
		}
	}
	if bestGain < 0 {
		return 0, 0, nil
	}
	parts := make([][]int, 2)
	for _, r := range rows {
		v := b.t.Rows[r][j]
		if dataset.IsMissing(v) {
			continue
		}
		if v <= bestTh {
			parts[0] = append(parts[0], r)
		} else {
			parts[1] = append(parts[1], r)
		}
	}
	bestGain *= float64(known) / float64(len(rows))
	return bestGain, bestTh, parts
}

func (b *builder) countsOf(vals []valClass) []int {
	counts := make([]int, b.nClasses)
	for _, x := range vals {
		counts[x.c]++
	}
	return counts
}

// Predict returns the predicted class index for a row laid out like the
// training schema.
func (tr *Tree) Predict(row []float64) int {
	n := tr.Root
	for !n.IsLeaf() {
		v := row[n.Attr]
		var next *Node
		if dataset.IsMissing(v) {
			next = n.Children[n.MajorityChild]
		} else if tr.Attrs[n.Attr].Kind == dataset.Categorical {
			idx := int(v)
			if idx < 0 || idx >= len(n.Children) {
				next = n.Children[n.MajorityChild]
			} else {
				next = n.Children[idx]
			}
		} else {
			if v <= n.Threshold {
				next = n.Children[0]
			} else {
				next = n.Children[1]
			}
		}
		n = next
	}
	return n.Class
}

// Size returns the number of nodes.
func (tr *Tree) Size() int { return countNodes(tr.Root) }

// Leaves returns the number of leaf nodes.
func (tr *Tree) Leaves() int { return countLeaves(tr.Root) }

// Depth returns the maximum root-to-leaf depth (a lone leaf has depth 1).
func (tr *Tree) Depth() int { return depthOf(tr.Root) }

func countNodes(n *Node) int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}

func countLeaves(n *Node) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	total := 0
	for _, c := range n.Children {
		total += countLeaves(c)
	}
	return total
}

func depthOf(n *Node) int {
	if n == nil {
		return 0
	}
	best := 0
	for _, c := range n.Children {
		if d := depthOf(c); d > best {
			best = d
		}
	}
	return best + 1
}

// String renders an indented view of the tree.
func (tr *Tree) String() string {
	var sb strings.Builder
	tr.render(&sb, tr.Root, 0, "")
	return sb.String()
}

func (tr *Tree) render(sb *strings.Builder, n *Node, depth int, edge string) {
	indent := strings.Repeat("  ", depth)
	classAttr := tr.Attrs[tr.Class]
	if edge != "" {
		fmt.Fprintf(sb, "%s%s\n", indent, edge)
		indent += "  "
		depth++
	}
	if n.IsLeaf() {
		label := fmt.Sprintf("%d", n.Class)
		if n.Class < len(classAttr.Values) {
			label = classAttr.Values[n.Class]
		}
		fmt.Fprintf(sb, "%s-> %s %v (n=%d)\n", indent, label, n.ClassCounts, n.N)
		return
	}
	a := tr.Attrs[n.Attr]
	if a.Kind == dataset.Categorical {
		for vi, child := range n.Children {
			tr.render(sb, child, depth, fmt.Sprintf("%s = %s:", a.Name, a.Values[vi]))
		}
	} else {
		tr.render(sb, n.Children[0], depth, fmt.Sprintf("%s <= %g:", a.Name, n.Threshold))
		tr.render(sb, n.Children[1], depth, fmt.Sprintf("%s > %g:", a.Name, n.Threshold))
	}
}
