package tree

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
)

// Condition is one test on a root-to-leaf path.
type Condition struct {
	Attr int
	// Op is "=", "<=" or ">".
	Op string
	// Value is the category index for "=", the threshold otherwise.
	Value float64
}

// Rule is a conjunctive classification rule read off one leaf, in the
// style of the tutorial's "rules extraction from tree diagram" workflows.
type Rule struct {
	Conditions []Condition
	Class      int
	// Support is the number of training rows at the leaf.
	Support int
	// Purity is the fraction of leaf rows in the predicted class; 1.0
	// marks a "pure subset" rule.
	Purity float64
}

// Pure reports whether the rule's leaf was 100% one class.
func (r Rule) Pure() bool { return r.Purity >= 1.0 }

// ExtractRules flattens the tree into one rule per leaf. Leaves with no
// training rows (empty branches) are skipped.
func (tr *Tree) ExtractRules() []Rule {
	var rules []Rule
	var walk func(n *Node, conds []Condition)
	walk = func(n *Node, conds []Condition) {
		if n.IsLeaf() {
			if n.N == 0 {
				return
			}
			purity := float64(n.ClassCounts[n.Class]) / float64(n.N)
			rules = append(rules, Rule{
				Conditions: append([]Condition(nil), conds...),
				Class:      n.Class,
				Support:    n.N,
				Purity:     purity,
			})
			return
		}
		for i, c := range n.Children {
			var cond Condition
			if tr.Attrs[n.Attr].Kind == dataset.Categorical {
				cond = Condition{Attr: n.Attr, Op: "=", Value: float64(i)}
			} else if i == 0 {
				cond = Condition{Attr: n.Attr, Op: "<=", Value: n.Threshold}
			} else {
				cond = Condition{Attr: n.Attr, Op: ">", Value: n.Threshold}
			}
			walk(c, append(conds, cond))
		}
	}
	walk(tr.Root, nil)
	return rules
}

// Matches reports whether the row satisfies every condition of the rule.
// Missing values never match a condition.
func (r Rule) Matches(attrs []dataset.Attribute, row []float64) bool {
	for _, c := range r.Conditions {
		v := row[c.Attr]
		if dataset.IsMissing(v) {
			return false
		}
		switch c.Op {
		case "=":
			if v != c.Value {
				return false
			}
		case "<=":
			if !(v <= c.Value) {
				return false
			}
		case ">":
			if !(v > c.Value) {
				return false
			}
		}
	}
	return true
}

// Format renders the rule with attribute and class names.
func (r Rule) Format(attrs []dataset.Attribute, class *dataset.Attribute) string {
	var sb strings.Builder
	sb.WriteString("IF ")
	if len(r.Conditions) == 0 {
		sb.WriteString("true")
	}
	for i, c := range r.Conditions {
		if i > 0 {
			sb.WriteString(" AND ")
		}
		a := attrs[c.Attr]
		if c.Op == "=" && a.Kind == dataset.Categorical {
			fmt.Fprintf(&sb, "%s = %s", a.Name, a.Values[int(c.Value)])
		} else {
			fmt.Fprintf(&sb, "%s %s %g", a.Name, c.Op, c.Value)
		}
	}
	label := fmt.Sprintf("%d", r.Class)
	if class != nil && r.Class < len(class.Values) {
		label = class.Values[r.Class]
	}
	fmt.Fprintf(&sb, " THEN %s = %s (n=%d, purity=%.1f%%)",
		classNameOf(class), label, r.Support, r.Purity*100)
	return sb.String()
}

func classNameOf(class *dataset.Attribute) string {
	if class == nil {
		return "class"
	}
	return class.Name
}
