package tree

import (
	"errors"
	"math"

	"repro/internal/dataset"
)

// ErrNoHoldout is returned by reduced-error pruning without a holdout set.
var ErrNoHoldout = errors.New("tree: reduced-error pruning needs a non-empty holdout table")

// PrunePessimistic applies C4.5's pessimistic (error-based) pruning in
// place: a subtree collapses to a leaf when the leaf's pessimistic error
// estimate — the binomial upper confidence bound at the given confidence
// level — does not exceed the subtree's. confidence defaults to C4.5's
// 0.25 when zero or out of range.
func (tr *Tree) PrunePessimistic(confidence float64) {
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.25
	}
	z := normalQuantile(1 - confidence)
	pruneNode(tr.Root, z)
}

// pruneNode returns the subtree's estimated error count after pruning.
func pruneNode(n *Node, z float64) float64 {
	leafErr := pessimisticErrors(n, z)
	if n.IsLeaf() {
		return leafErr
	}
	subtreeErr := 0.0
	for _, c := range n.Children {
		subtreeErr += pruneNode(c, z)
	}
	if leafErr <= subtreeErr+1e-12 {
		n.Attr = -1
		n.Children = nil
		return leafErr
	}
	return subtreeErr
}

// pessimisticErrors estimates the errors if n were a leaf: observed errors
// plus C4.5's pessimistic increment U_CF(E, N).
func pessimisticErrors(n *Node, z float64) float64 {
	if n.N == 0 {
		return 0
	}
	errs := n.N - n.ClassCounts[n.Class]
	return float64(errs) + addErrs(float64(n.N), float64(errs), z)
}

// addErrs is C4.5's pessimistic error increment (the form used by Weka's
// Utils.addErrs): exact binomial for E < 1, the continuity-corrected normal
// upper bound otherwise. cf25z is the normal quantile of 1-CF; the exact
// branch recovers CF from it.
func addErrs(n, e, z float64) float64 {
	cf := 1 - normalCDF(z)
	if e < 1 {
		// Exact: upper bound on the error rate when no errors were seen is
		// 1 - CF^(1/N); interpolate for fractional 0 < e < 1.
		base := n * (1 - math.Pow(cf, 1/n))
		if e == 0 {
			return base
		}
		return base + e*(addErrs(n, 1, z)-base)
	}
	if e+0.5 >= n {
		return math.Max(0, n-e)
	}
	f := (e + 0.5) / n
	r := (f + z*z/(2*n) + z*math.Sqrt(f/n-f*f/n+z*z/(4*n*n))) / (1 + z*z/n)
	return r*n - e
}

// normalCDF is the standard normal CDF via erfc.
func normalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// normalQuantile inverts the standard normal CDF via Acklam's rational
// approximation, accurate to ~1e-9 — far beyond what pruning needs.
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := []float64{-39.69683028665376, 220.9460984245205, -275.9285104469687,
		138.3577518672690, -30.66479806614716, 2.506628277459239}
	b := []float64{-54.47609879822406, 161.5858368580409, -155.6989798598866,
		66.80131188771972, -13.28068155288572}
	c := []float64{-0.007784894002430293, -0.3223964580411365, -2.400758277161838,
		-2.549732539343734, 4.374664141464968, 2.938163982698783}
	d := []float64{0.007784695709041462, 0.3224671290700398, 2.445134137142996,
		3.754408661907416}
	pLow := 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// PruneReducedError prunes bottom-up against a holdout table: a subtree
// collapses when predicting its majority class on the holdout rows that
// reach it makes no more errors than the subtree does.
func (tr *Tree) PruneReducedError(holdout *dataset.Table) error {
	if holdout == nil || holdout.NumRows() == 0 {
		return ErrNoHoldout
	}
	rows := make([]int, holdout.NumRows())
	for i := range rows {
		rows[i] = i
	}
	tr.reducedError(tr.Root, holdout, rows)
	return nil
}

// reducedError returns the subtree's holdout error count after pruning.
func (tr *Tree) reducedError(n *Node, hold *dataset.Table, rows []int) int {
	leafErrs := 0
	for _, r := range rows {
		if hold.Class(r) != n.Class {
			leafErrs++
		}
	}
	if n.IsLeaf() {
		return leafErrs
	}
	// Route holdout rows to children.
	parts := make([][]int, len(n.Children))
	for _, r := range rows {
		parts[tr.routeChild(n, hold.Rows[r])] = append(parts[tr.routeChild(n, hold.Rows[r])], r)
	}
	subtreeErrs := 0
	for i, c := range n.Children {
		subtreeErrs += tr.reducedError(c, hold, parts[i])
	}
	if leafErrs <= subtreeErrs {
		n.Attr = -1
		n.Children = nil
		return leafErrs
	}
	return subtreeErrs
}

// routeChild returns the child index a row descends into at node n.
func (tr *Tree) routeChild(n *Node, row []float64) int {
	v := row[n.Attr]
	if dataset.IsMissing(v) {
		return n.MajorityChild
	}
	if tr.Attrs[n.Attr].Kind == dataset.Categorical {
		idx := int(v)
		if idx < 0 || idx >= len(n.Children) {
			return n.MajorityChild
		}
		return idx
	}
	if v <= n.Threshold {
		return 0
	}
	return 1
}
