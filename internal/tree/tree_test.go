package tree

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

// weatherTable is the classic Quinlan play-tennis dataset.
func weatherTable(t *testing.T) *dataset.Table {
	t.Helper()
	tbl := dataset.New(
		dataset.NewCategoricalAttribute("outlook", "sunny", "overcast", "rain"),
		dataset.NewNumericAttribute("temperature"),
		dataset.NewNumericAttribute("humidity"),
		dataset.NewCategoricalAttribute("windy", "false", "true"),
		dataset.NewCategoricalAttribute("play", "no", "yes"),
	)
	tbl.ClassIndex = 4
	rows := []string{
		"sunny,85,85,false,no",
		"sunny,80,90,true,no",
		"overcast,83,86,false,yes",
		"rain,70,96,false,yes",
		"rain,68,80,false,yes",
		"rain,65,70,true,no",
		"overcast,64,65,true,yes",
		"sunny,72,95,false,no",
		"sunny,69,70,false,yes",
		"rain,75,80,false,yes",
		"sunny,75,70,true,yes",
		"overcast,72,90,true,yes",
		"overcast,81,75,false,yes",
		"rain,71,91,true,no",
	}
	for _, r := range rows {
		if err := tbl.AppendLabeled(strings.Split(r, ",")); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestBuildWeatherPerfectOnTraining(t *testing.T) {
	for _, crit := range []Criterion{InfoGain, GainRatio, Gini} {
		tbl := weatherTable(t)
		tr, err := Build(tbl, Config{Criterion: crit})
		if err != nil {
			t.Fatalf("%v: %v", crit, err)
		}
		for i, row := range tbl.Rows {
			if got := tr.Predict(row); got != tbl.Class(i) {
				t.Errorf("%v: row %d predicted %d, want %d", crit, i, got, tbl.Class(i))
			}
		}
	}
}

func TestWeatherRootIsOutlook(t *testing.T) {
	// The textbook result: outlook is the best first split by info gain.
	tbl := weatherTable(t)
	tr, err := Build(tbl, Config{Criterion: InfoGain})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.IsLeaf() {
		t.Fatal("root is a leaf")
	}
	if name := tbl.Attributes[tr.Root.Attr].Name; name != "outlook" {
		t.Errorf("root attribute = %s, want outlook", name)
	}
	// The overcast branch is pure "yes".
	overcast := tr.Root.Children[1]
	if !overcast.IsLeaf() || overcast.Class != 1 {
		t.Errorf("overcast branch should be a pure yes leaf: %+v", overcast)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Config{}); !errors.Is(err, ErrNoRows) {
		t.Errorf("nil table error = %v", err)
	}
	empty := dataset.New(dataset.NewNumericAttribute("x"))
	if _, err := Build(empty, Config{}); !errors.Is(err, ErrNoRows) {
		t.Errorf("empty error = %v", err)
	}
	noClass := dataset.New(dataset.NewNumericAttribute("x"))
	if err := noClass.AppendRow([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(noClass, Config{}); !errors.Is(err, ErrNoClass) {
		t.Errorf("no class error = %v", err)
	}
	tbl := weatherTable(t)
	if _, err := Build(tbl, Config{MinLeaf: -1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad config error = %v", err)
	}
}

func TestMaxDepth(t *testing.T) {
	tbl := weatherTable(t)
	tr, err := Build(tbl, Config{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 2 { // root split + leaves
		t.Errorf("depth = %d with MaxDepth 1", tr.Depth())
	}
}

func TestMinLeaf(t *testing.T) {
	tbl := weatherTable(t)
	tr, err := Build(tbl, Config{MinLeaf: 6})
	if err != nil {
		t.Fatal(err)
	}
	var check func(n *Node)
	check = func(n *Node) {
		if n.IsLeaf() {
			if n.N > 0 && n.N < 6 {
				t.Errorf("leaf with %d rows under MinLeaf 6", n.N)
			}
			return
		}
		for _, c := range n.Children {
			check(c)
		}
	}
	check(tr.Root)
}

func TestHighAccuracyOnSyntheticFunctions(t *testing.T) {
	// The tree should learn the axis-parallel benchmark functions well.
	for _, fn := range []int{1, 2, 3} {
		train, err := synth.Classify(synth.ClassifyConfig{NumRows: 2000, Function: fn, Seed: 100})
		if err != nil {
			t.Fatal(err)
		}
		test, err := synth.Classify(synth.ClassifyConfig{NumRows: 1000, Function: fn, Seed: 200})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Build(train, Config{Criterion: GainRatio, MinLeaf: 5})
		if err != nil {
			t.Fatal(err)
		}
		correct := 0
		for i, row := range test.Rows {
			if tr.Predict(row) == test.Class(i) {
				correct++
			}
		}
		acc := float64(correct) / float64(test.NumRows())
		if acc < 0.9 {
			t.Errorf("F%d: accuracy = %v, want >= 0.9", fn, acc)
		}
	}
}

func TestPredictMissingGoesMajority(t *testing.T) {
	tbl := weatherTable(t)
	tr, err := Build(tbl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	row := []float64{dataset.Missing, dataset.Missing, dataset.Missing, dataset.Missing, 0}
	got := tr.Predict(row)
	if got != 0 && got != 1 {
		t.Errorf("missing row predicted %d", got)
	}
}

func TestPessimisticPruningShrinksNoisyTree(t *testing.T) {
	train, err := synth.Classify(synth.ClassifyConfig{NumRows: 2000, Function: 2, Noise: 0.15, Seed: 300})
	if err != nil {
		t.Fatal(err)
	}
	test, err := synth.Classify(synth.ClassifyConfig{NumRows: 1000, Function: 2, Seed: 301})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Build(train, Config{Criterion: GainRatio})
	if err != nil {
		t.Fatal(err)
	}
	before := tr.Size()
	accBefore := accuracy(tr, test)
	tr.PrunePessimistic(0.25)
	after := tr.Size()
	accAfter := accuracy(tr, test)
	if after >= before {
		t.Errorf("pruning did not shrink the tree: %d -> %d", before, after)
	}
	if accAfter < accBefore-0.02 {
		t.Errorf("pruning hurt holdout accuracy: %v -> %v", accBefore, accAfter)
	}
}

func TestReducedErrorPruning(t *testing.T) {
	full, err := synth.Classify(synth.ClassifyConfig{NumRows: 3000, Function: 5, Noise: 0.15, Seed: 400})
	if err != nil {
		t.Fatal(err)
	}
	train, hold, err := full.Split(2.0 / 3.0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Build(train, Config{})
	if err != nil {
		t.Fatal(err)
	}
	before := tr.Size()
	holdBefore := accuracy(tr, hold)
	if err := tr.PruneReducedError(hold); err != nil {
		t.Fatal(err)
	}
	if tr.Size() >= before {
		t.Errorf("reduced-error pruning did not shrink: %d -> %d", before, tr.Size())
	}
	holdAfter := accuracy(tr, hold)
	if holdAfter < holdBefore {
		t.Errorf("reduced-error pruning must not hurt holdout accuracy: %v -> %v", holdBefore, holdAfter)
	}
	if err := tr.PruneReducedError(nil); !errors.Is(err, ErrNoHoldout) {
		t.Errorf("nil holdout error = %v", err)
	}
}

func accuracy(tr *Tree, tbl *dataset.Table) float64 {
	correct := 0
	for i, row := range tbl.Rows {
		if tr.Predict(row) == tbl.Class(i) {
			correct++
		}
	}
	return float64(correct) / float64(tbl.NumRows())
}

func TestSizeLeavesDepth(t *testing.T) {
	tbl := weatherTable(t)
	tr, err := Build(tbl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() < 3 {
		t.Errorf("Size = %d", tr.Size())
	}
	if tr.Leaves() >= tr.Size() {
		t.Errorf("Leaves %d >= Size %d", tr.Leaves(), tr.Size())
	}
	if tr.Depth() < 2 {
		t.Errorf("Depth = %d", tr.Depth())
	}
}

func TestStringRendering(t *testing.T) {
	tbl := weatherTable(t)
	tr, err := Build(tbl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.String()
	if !strings.Contains(s, "outlook") {
		t.Errorf("rendering missing root attribute:\n%s", s)
	}
	if !strings.Contains(s, "yes") {
		t.Errorf("rendering missing class label:\n%s", s)
	}
}

func TestExtractRules(t *testing.T) {
	tbl := weatherTable(t)
	tr, err := Build(tbl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rules := tr.ExtractRules()
	if len(rules) != tr.Leaves() {
		// Empty branches are dropped, so rules may be fewer, never more.
		if len(rules) > tr.Leaves() {
			t.Fatalf("rules = %d > leaves = %d", len(rules), tr.Leaves())
		}
	}
	// Every training row must match exactly one rule, and that rule must
	// predict the tree's output.
	for i, row := range tbl.Rows {
		matched := 0
		for _, r := range rules {
			if r.Matches(tbl.Attributes, row) {
				matched++
				if r.Class != tr.Predict(row) {
					t.Errorf("row %d: rule class %d != tree prediction %d", i, r.Class, tr.Predict(row))
				}
			}
		}
		if matched != 1 {
			t.Errorf("row %d matched %d rules, want 1", i, matched)
		}
	}
	// Training-pure tree: every rule has purity 1.
	for _, r := range rules {
		if !r.Pure() {
			t.Errorf("unpruned pure tree produced impure rule: %+v", r)
		}
	}
}

func TestRuleFormat(t *testing.T) {
	tbl := weatherTable(t)
	tr, err := Build(tbl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	classAttr, err := tbl.ClassAttribute()
	if err != nil {
		t.Fatal(err)
	}
	rules := tr.ExtractRules()
	if len(rules) == 0 {
		t.Fatal("no rules")
	}
	s := rules[0].Format(tbl.Attributes, classAttr)
	if !strings.Contains(s, "IF ") || !strings.Contains(s, " THEN play = ") {
		t.Errorf("Format = %q", s)
	}
}

func TestCriterionString(t *testing.T) {
	if InfoGain.String() != "infogain" || GainRatio.String() != "gainratio" || Gini.String() != "gini" {
		t.Error("criterion names")
	}
	if Criterion(9).String() != "Criterion(9)" {
		t.Error("unknown criterion name")
	}
}

func TestNormalQuantile(t *testing.T) {
	tests := []struct{ p, want float64 }{
		{0.5, 0},
		{0.75, 0.6745},
		{0.975, 1.9600},
		{0.25, -0.6745},
	}
	for _, tt := range tests {
		got := normalQuantile(tt.p)
		if diff := got - tt.want; diff > 1e-3 || diff < -1e-3 {
			t.Errorf("normalQuantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestMissingValuesInTraining(t *testing.T) {
	tbl := weatherTable(t)
	// Knock out some cells; training must still work.
	tbl.Rows[0][0] = dataset.Missing
	tbl.Rows[1][2] = dataset.Missing
	tbl.Rows[5][1] = dataset.Missing
	tr, err := Build(tbl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() < 1 {
		t.Error("degenerate tree")
	}
	for _, row := range tbl.Rows {
		c := tr.Predict(row)
		if c < 0 || c > 1 {
			t.Errorf("prediction out of range: %d", c)
		}
	}
}
