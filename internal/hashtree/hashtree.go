// Package hashtree implements the candidate hash tree of Agrawal & Srikant
// (VLDB'94 §2.1.2), the data structure Apriori uses to count, for every
// transaction, which of the current candidate k-itemsets it contains,
// without testing every candidate.
//
// Interior nodes hash the item at their depth into a fixed fanout of
// children; leaves store candidate itemsets with their support counters.
// A leaf splits into an interior node when it exceeds the leaf capacity,
// unless it is already at depth k (where further splitting cannot separate
// candidates). Counting a transaction of t items visits at most C(t, k)
// root-to-leaf paths but in practice far fewer, since subtrees with no
// matching candidates are never entered — the structure that keeps a pass
// over |D| transactions near-linear instead of |D|·|C_k|.
//
// The tree participates in the engine's shard/count/merge contract through
// CountBuffer: after all inserts, the tree is read-only, each worker (or
// each shard of the incremental backend's cache) counts into a private
// buffer indexed by entry id, and Merge folds buffers back with plain
// integer adds — bit-identical to a serial scan in any merge order.
package hashtree

import (
	"errors"

	"repro/internal/transactions"
)

// Entry is a candidate itemset with its running support count.
type Entry struct {
	Items transactions.Itemset
	Count int

	// id is the entry's insertion rank, the index into per-worker count
	// buffers in the concurrent counting mode.
	id int

	// seen guards against counting the same transaction twice when the
	// traversal reaches the same leaf along different hash paths. It stores
	// tid+1 so that the zero value means "no transaction seen yet" — storing
	// the tid directly would make a zero-valued Entry silently skip tid 0.
	seen int
}

// ID returns the entry's insertion rank, in [0, Tree.Len()).
func (e *Entry) ID() int { return e.id }

// Tree is a hash tree over candidate itemsets of a single length k.
type Tree struct {
	k       int
	fanout  int
	maxLeaf int
	root    *node
	size    int
	byID    []*Entry // entries in insertion order, indexed by Entry.id
}

type node struct {
	children []*node  // non-nil for interior nodes
	entries  []*Entry // leaf payload
}

// Defaults match the spirit of the paper's implementation.
const (
	DefaultFanout  = 16
	DefaultMaxLeaf = 32
)

// Errors returned by the tree.
var (
	ErrWrongLength = errors.New("hashtree: itemset length does not match tree")
	ErrBadParams   = errors.New("hashtree: fanout and leaf capacity must be positive")
)

// New returns an empty hash tree for candidates of length k.
func New(k int) *Tree {
	t, _ := NewWithParams(k, DefaultFanout, DefaultMaxLeaf)
	return t
}

// NewWithParams returns an empty hash tree with explicit fanout and leaf
// capacity, for the ablation benchmarks.
func NewWithParams(k, fanout, maxLeaf int) (*Tree, error) {
	if fanout < 1 || maxLeaf < 1 || k < 1 {
		return nil, ErrBadParams
	}
	return &Tree{k: k, fanout: fanout, maxLeaf: maxLeaf, root: &node{}}, nil
}

// Len returns the number of candidates stored.
func (t *Tree) Len() int { return t.size }

// K returns the candidate length the tree was built for.
func (t *Tree) K() int { return t.k }

// Insert adds a candidate itemset with a zero count. The caller must not
// insert duplicates; Apriori's candidate generation never produces them.
func (t *Tree) Insert(items transactions.Itemset) (*Entry, error) {
	if len(items) != t.k {
		return nil, ErrWrongLength
	}
	e := &Entry{Items: items, id: t.size}
	t.insert(t.root, e, 0)
	t.byID = append(t.byID, e)
	t.size++
	return e, nil
}

func (t *Tree) insert(n *node, e *Entry, depth int) {
	if n.children != nil {
		h := e.Items[depth] % t.fanout
		child := n.children[h]
		if child == nil {
			child = &node{}
			n.children[h] = child
		}
		t.insert(child, e, depth+1)
		return
	}
	n.entries = append(n.entries, e)
	// Split an overfull leaf unless hashing deeper cannot discriminate.
	if len(n.entries) > t.maxLeaf && depth < t.k {
		entries := n.entries
		n.entries = nil
		n.children = make([]*node, t.fanout)
		for _, old := range entries {
			h := old.Items[depth] % t.fanout
			child := n.children[h]
			if child == nil {
				child = &node{}
				n.children[h] = child
			}
			t.insert(child, old, depth+1)
		}
	}
}

// CountTransaction increments the count of every candidate that is a
// subset of tx, using the paper's recursive traversal: at an interior node
// of depth d, hash each remaining transaction item and descend; at a leaf,
// verify containment per candidate. tid must be distinct per transaction
// (and non-negative); it guards against double counting when a leaf is
// reachable along several hash paths.
func (t *Tree) CountTransaction(tx transactions.Itemset, tid int) {
	if len(tx) < t.k {
		return
	}
	t.count(t.root, tx, 0, 0, tid)
}

// count descends from n; items before start are already consumed by the
// path, depth is the node's depth in the tree. The recursion is
// allocation-free: support counting runs once per transaction per pass,
// and allocbound holds it to zero provable allocation sites.
//
//invcheck:hotpath
func (t *Tree) count(n *node, tx transactions.Itemset, start, depth, tid int) {
	if n.children == nil {
		for _, e := range n.entries {
			if e.seen != tid+1 && tx.ContainsAll(e.Items) {
				e.Count++
				e.seen = tid + 1
			}
		}
		return
	}
	// Need k-depth more items; stop early when too few remain.
	for i := start; i <= len(tx)-(t.k-depth); i++ {
		child := n.children[tx[i]%t.fanout]
		if child != nil {
			t.count(child, tx, i+1, depth+1, tid)
		}
	}
}

// CountBuffer holds one worker's private support counters for the
// concurrent counting mode: counts and duplicate-visit guards indexed by
// entry id. Workers traverse the tree read-only and write only into their
// own buffer, so any number of them may count disjoint transaction shards
// concurrently; the buffers are merged serially after the scan
// (count-distribution). All candidate insertions must happen before the
// first concurrent count.
type CountBuffer struct {
	Counts []int
	seen   []int // tid+1 of the last transaction counted per entry; 0 = none
}

// NewCountBuffer returns a zeroed buffer sized for the tree's entries.
func (t *Tree) NewCountBuffer() *CountBuffer {
	return &CountBuffer{Counts: make([]int, t.size), seen: make([]int, t.size)}
}

// CountTransactionInto is CountTransaction for the concurrent mode: counts
// and duplicate guards go into buf instead of the shared entries. The tree
// itself is only read, so concurrent calls with distinct buffers are
// race-free.
func (t *Tree) CountTransactionInto(tx transactions.Itemset, tid int, buf *CountBuffer) {
	if len(tx) < t.k {
		return
	}
	t.countInto(t.root, tx, 0, 0, tid, buf)
}

// countInto is count for the concurrent mode; like count it must stay
// allocation-free, since it runs once per transaction per worker.
//
//invcheck:hotpath
func (t *Tree) countInto(n *node, tx transactions.Itemset, start, depth, tid int, buf *CountBuffer) {
	if n.children == nil {
		for _, e := range n.entries {
			if buf.seen[e.id] != tid+1 && tx.ContainsAll(e.Items) {
				buf.Counts[e.id]++
				buf.seen[e.id] = tid + 1
			}
		}
		return
	}
	for i := start; i <= len(tx)-(t.k-depth); i++ {
		child := n.children[tx[i]%t.fanout]
		if child != nil {
			t.countInto(child, tx, i+1, depth+1, tid, buf)
		}
	}
}

// Merge folds a worker buffer's counts into the shared entry counts. Call
// it from a single goroutine after all concurrent counting has finished.
//
//invcheck:hotpath
func (t *Tree) Merge(buf *CountBuffer) {
	for id, c := range buf.Counts {
		t.byID[id].Count += c
	}
}

// EntriesByID returns the stored entries in insertion order (deterministic,
// unlike Entries). The slice is shared with the tree; do not modify it.
func (t *Tree) EntriesByID() []*Entry { return t.byID }

// Entries appends all stored entries to dst and returns it; iteration
// order is unspecified.
func (t *Tree) Entries(dst []*Entry) []*Entry {
	return collect(t.root, dst)
}

func collect(n *node, dst []*Entry) []*Entry {
	if n == nil {
		return dst
	}
	if n.children == nil {
		return append(dst, n.entries...)
	}
	for _, c := range n.children {
		dst = collect(c, dst)
	}
	return dst
}
