package hashtree

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/transactions"
)

func TestInsertAndLen(t *testing.T) {
	tr := New(2)
	if _, err := tr.Insert(transactions.NewItemset(1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Insert(transactions.NewItemset(1, 3)); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.K() != 2 {
		t.Errorf("K = %d", tr.K())
	}
	if _, err := tr.Insert(transactions.NewItemset(1, 2, 3)); !errors.Is(err, ErrWrongLength) {
		t.Errorf("wrong-length error = %v", err)
	}
}

func TestNewWithParamsValidation(t *testing.T) {
	if _, err := NewWithParams(2, 0, 4); !errors.Is(err, ErrBadParams) {
		t.Errorf("fanout=0 error = %v", err)
	}
	if _, err := NewWithParams(2, 4, 0); !errors.Is(err, ErrBadParams) {
		t.Errorf("leaf=0 error = %v", err)
	}
	if _, err := NewWithParams(0, 4, 4); !errors.Is(err, ErrBadParams) {
		t.Errorf("k=0 error = %v", err)
	}
}

func TestCountSimple(t *testing.T) {
	tr := New(2)
	e12, _ := tr.Insert(transactions.NewItemset(1, 2))
	e13, _ := tr.Insert(transactions.NewItemset(1, 3))
	e24, _ := tr.Insert(transactions.NewItemset(2, 4))

	txs := []transactions.Itemset{
		transactions.NewItemset(1, 2, 3),
		transactions.NewItemset(1, 2),
		transactions.NewItemset(2, 4, 5),
		transactions.NewItemset(3),
	}
	for tid, tx := range txs {
		tr.CountTransaction(tx, tid)
	}
	if e12.Count != 2 {
		t.Errorf("{1,2} count = %d, want 2", e12.Count)
	}
	if e13.Count != 1 {
		t.Errorf("{1,3} count = %d, want 1", e13.Count)
	}
	if e24.Count != 1 {
		t.Errorf("{2,4} count = %d, want 1", e24.Count)
	}
}

func TestCountShortTransactionSkipped(t *testing.T) {
	tr := New(3)
	e, _ := tr.Insert(transactions.NewItemset(1, 2, 3))
	tr.CountTransaction(transactions.NewItemset(1, 2), 0)
	if e.Count != 0 {
		t.Errorf("count = %d, want 0", e.Count)
	}
}

func TestLeafSplitStillCorrect(t *testing.T) {
	// Force splits with a tiny leaf capacity and verify counts against
	// brute force.
	tr, err := NewWithParams(2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	var cands []transactions.Itemset
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			c := transactions.NewItemset(a, b)
			cands = append(cands, c)
			if _, err := tr.Insert(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	rng := rand.New(rand.NewSource(1))
	var txs []transactions.Itemset
	for i := 0; i < 50; i++ {
		n := 1 + rng.Intn(6)
		items := make([]int, n)
		for j := range items {
			items[j] = rng.Intn(8)
		}
		txs = append(txs, transactions.NewItemset(items...))
	}
	for tid, tx := range txs {
		tr.CountTransaction(tx, tid)
	}
	want := make(map[string]int)
	for _, c := range cands {
		for _, tx := range txs {
			if tx.ContainsAll(c) {
				want[c.Key()]++
			}
		}
	}
	for _, e := range tr.Entries(nil) {
		if e.Count != want[e.Items.Key()] {
			t.Errorf("candidate %v count = %d, want %d", e.Items, e.Count, want[e.Items.Key()])
		}
	}
}

func TestNoDoubleCountAcrossHashCollisions(t *testing.T) {
	// Fanout 2 forces heavy collisions; items 1 and 3 share hash, so a
	// transaction with both could reach the same leaf twice.
	tr, err := NewWithParams(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := tr.Insert(transactions.NewItemset(1, 3))
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			if a == 1 && b == 3 {
				continue
			}
			if _, err := tr.Insert(transactions.NewItemset(a, b)); err != nil {
				t.Fatal(err)
			}
		}
	}
	tr.CountTransaction(transactions.NewItemset(1, 3, 5), 7)
	if e.Count != 1 {
		t.Errorf("{1,3} counted %d times in one transaction, want 1", e.Count)
	}
}

func TestEntriesReturnsAll(t *testing.T) {
	tr, _ := NewWithParams(3, 4, 2)
	keys := map[string]bool{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		a, b, c := rng.Intn(30), rng.Intn(30), rng.Intn(30)
		s := transactions.NewItemset(a, b, c)
		if len(s) != 3 || keys[s.Key()] {
			continue
		}
		keys[s.Key()] = true
		if _, err := tr.Insert(s); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.Entries(nil)
	if len(got) != len(keys) {
		t.Fatalf("Entries len = %d, want %d", len(got), len(keys))
	}
	for _, e := range got {
		if !keys[e.Items.Key()] {
			t.Errorf("unexpected entry %v", e.Items)
		}
	}
}

// Property: hash-tree counting agrees with brute-force subset counting for
// random candidate sets and transactions, across parameter settings.
func TestCountMatchesBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64, fanoutRaw, leafRaw uint8) bool {
		fanout := int(fanoutRaw%7) + 1
		maxLeaf := int(leafRaw%5) + 1
		local := rand.New(rand.NewSource(seed))
		k := 1 + local.Intn(3)
		tr, err := NewWithParams(k, fanout, maxLeaf)
		if err != nil {
			return false
		}
		seen := map[string]bool{}
		var cands []transactions.Itemset
		for i := 0; i < 30; i++ {
			items := make([]int, k)
			for j := range items {
				items[j] = local.Intn(12)
			}
			s := transactions.NewItemset(items...)
			if len(s) != k || seen[s.Key()] {
				continue
			}
			seen[s.Key()] = true
			cands = append(cands, s)
			if _, err := tr.Insert(s); err != nil {
				return false
			}
		}
		var txs []transactions.Itemset
		for i := 0; i < 30; i++ {
			n := 1 + local.Intn(8)
			items := make([]int, n)
			for j := range items {
				items[j] = local.Intn(12)
			}
			txs = append(txs, transactions.NewItemset(items...))
		}
		for tid, tx := range txs {
			tr.CountTransaction(tx, tid)
		}
		want := map[string]int{}
		for _, c := range cands {
			for _, tx := range txs {
				if tx.ContainsAll(c) {
					want[c.Key()]++
				}
			}
		}
		for _, e := range tr.Entries(nil) {
			if e.Count != want[e.Items.Key()] {
				return false
			}
		}
		return true
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEntriesSortable(t *testing.T) {
	tr := New(1)
	for _, v := range []int{5, 1, 3} {
		if _, err := tr.Insert(transactions.NewItemset(v)); err != nil {
			t.Fatal(err)
		}
	}
	es := tr.Entries(nil)
	sort.Slice(es, func(i, j int) bool { return es[i].Items.Compare(es[j].Items) < 0 })
	if es[0].Items[0] != 1 || es[2].Items[0] != 5 {
		t.Errorf("sorted entries = %v", es)
	}
}

// Regression: the duplicate-count guard must not confuse its zero value
// with transaction id 0 — tid 0 has to be counted on the very first leaf
// visit, including through leaves reachable along several hash paths.
func TestTransactionZeroCounted(t *testing.T) {
	tr, err := NewWithParams(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Items 0 and 2 collide under fanout 2, so the leaf holding {0,2} is
	// reachable twice from the root for a transaction containing both.
	e, _ := tr.Insert(transactions.NewItemset(0, 2))
	if _, err := tr.Insert(transactions.NewItemset(1, 3)); err != nil {
		t.Fatal(err)
	}
	tr.CountTransaction(transactions.NewItemset(0, 2, 4), 0)
	if e.Count != 1 {
		t.Fatalf("tid 0: {0,2} count = %d, want 1", e.Count)
	}
	// The guard must still admit the next transaction.
	tr.CountTransaction(transactions.NewItemset(0, 2), 1)
	if e.Count != 2 {
		t.Fatalf("tid 1: {0,2} count = %d, want 2", e.Count)
	}
}

// TestConcurrentCountMatchesSerial shards the transactions across workers
// counting into private buffers and checks the merged counts equal the
// serial scan, under the race detector.
func TestConcurrentCountMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, workers := range []int{1, 2, 4, 8} {
		serial, _ := NewWithParams(2, 3, 2)
		parallel, _ := NewWithParams(2, 3, 2)
		var cands []transactions.Itemset
		seen := map[string]bool{}
		for i := 0; i < 25; i++ {
			s := transactions.NewItemset(rng.Intn(10), rng.Intn(10))
			if len(s) != 2 || seen[s.Key()] {
				continue
			}
			seen[s.Key()] = true
			cands = append(cands, s)
			if _, err := serial.Insert(s); err != nil {
				t.Fatal(err)
			}
			if _, err := parallel.Insert(s); err != nil {
				t.Fatal(err)
			}
		}
		var txs []transactions.Itemset
		for i := 0; i < 101; i++ {
			items := make([]int, 1+rng.Intn(7))
			for j := range items {
				items[j] = rng.Intn(10)
			}
			txs = append(txs, transactions.NewItemset(items...))
		}
		for tid, tx := range txs {
			serial.CountTransaction(tx, tid)
		}

		// Count-distribution: disjoint contiguous shards, private buffers.
		bufs := make([]*CountBuffer, workers)
		var wg sync.WaitGroup
		per := (len(txs) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			start := w * per
			end := start + per
			if end > len(txs) {
				end = len(txs)
			}
			if start >= end {
				continue
			}
			bufs[w] = parallel.NewCountBuffer()
			wg.Add(1)
			go func(w, start, end int) {
				defer wg.Done()
				for tid := start; tid < end; tid++ {
					parallel.CountTransactionInto(txs[tid], tid, bufs[w])
				}
			}(w, start, end)
		}
		wg.Wait()
		for _, buf := range bufs {
			if buf != nil {
				parallel.Merge(buf)
			}
		}

		wantByKey := map[string]int{}
		for _, e := range serial.Entries(nil) {
			wantByKey[e.Items.Key()] = e.Count
		}
		ids := map[int]bool{}
		for _, e := range parallel.EntriesByID() {
			if e.Count != wantByKey[e.Items.Key()] {
				t.Fatalf("workers=%d: %v count = %d, want %d", workers, e.Items, e.Count, wantByKey[e.Items.Key()])
			}
			if ids[e.ID()] {
				t.Fatalf("duplicate entry id %d", e.ID())
			}
			ids[e.ID()] = true
		}
		if len(parallel.EntriesByID()) != len(cands) {
			t.Fatalf("EntriesByID returned %d entries, want %d", len(parallel.EntriesByID()), len(cands))
		}
	}
}
