// Package rules implements simple rule-based classifiers, principally
// Holte's 1R ("Very simple classification rules perform well on most
// commonly used datasets", 1993) — the one-attribute baseline the
// classifier comparisons of the era always included — and PRISM's
// covering-rule induction. 1R trains in one O(rows·attrs) counting pass;
// PRISM repeatedly specialises rules until each covers one class, worst
// case O(rules·rows·attrs).
package rules

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/dataset"
)

// Errors returned by Train1R.
var (
	ErrNoRows      = errors.New("rules: empty training table")
	ErrNoClass     = errors.New("rules: table has no categorical class attribute")
	ErrNoAttribute = errors.New("rules: no usable attribute")
)

// OneR is a trained 1R classifier: a single attribute with one predicted
// class per value (numeric attributes are pre-binned).
type OneR struct {
	Attr int
	// ClassFor maps the attribute's value index to the predicted class.
	ClassFor []int
	// Default handles missing values and unseen bins.
	Default int
	// TrainError is the training error rate of the chosen rule.
	TrainError float64
	// Disc holds the discretizer applied to a numeric chosen attribute
	// (nil for categorical).
	Disc *dataset.Discretizer

	attrs    []dataset.Attribute
	classIdx int
}

// Bins is the number of bins used when a numeric attribute is evaluated.
const Bins = 6

// Train1R picks the single attribute whose one-rule has the lowest
// training error.
func Train1R(t *dataset.Table) (*OneR, error) {
	if t == nil || t.NumRows() == 0 {
		return nil, ErrNoRows
	}
	if t.NumClasses() < 1 {
		return nil, ErrNoClass
	}
	defaultClass, err := t.MajorityClass()
	if err != nil {
		return nil, err
	}
	best := &OneR{Attr: -1, TrainError: 1.1, Default: defaultClass, attrs: t.Attributes, classIdx: t.ClassIndex}
	for j := range t.Attributes {
		if j == t.ClassIndex {
			continue
		}
		cand, err := oneRuleFor(t, j, defaultClass)
		if err != nil {
			continue
		}
		if cand.TrainError < best.TrainError {
			cand.attrs = t.Attributes
			cand.classIdx = t.ClassIndex
			best = cand
		}
	}
	if best.Attr < 0 {
		return nil, ErrNoAttribute
	}
	return best, nil
}

// oneRuleFor builds the one-rule for attribute j.
func oneRuleFor(t *dataset.Table, j, defaultClass int) (*OneR, error) {
	a := t.Attributes[j]
	var disc *dataset.Discretizer
	nVals := len(a.Values)
	valueOf := func(v float64) int { return int(v) }
	if a.Kind == dataset.Numeric {
		d, err := dataset.FitEqualFrequency(t, j, Bins)
		if err != nil {
			return nil, err
		}
		disc = d
		nVals = d.NumBins()
		valueOf = d.Bin
	}
	if nVals < 1 {
		return nil, ErrNoAttribute
	}
	counts := make([][]int, nVals)
	for v := range counts {
		counts[v] = make([]int, t.NumClasses())
	}
	known := 0
	errsMissing := 0
	for i, row := range t.Rows {
		v := row[j]
		if dataset.IsMissing(v) {
			if t.Class(i) != defaultClass {
				errsMissing++
			}
			continue
		}
		counts[valueOf(v)][t.Class(i)]++
		known++
	}
	if known == 0 {
		return nil, ErrNoAttribute
	}
	classFor := make([]int, nVals)
	errs := errsMissing
	for v := range counts {
		bestC, bestN, total := defaultClass, -1, 0
		for c, n := range counts[v] {
			total += n
			if n > bestN {
				bestC, bestN = c, n
			}
		}
		if total == 0 {
			classFor[v] = defaultClass
			continue
		}
		classFor[v] = bestC
		errs += total - bestN
	}
	return &OneR{
		Attr:       j,
		ClassFor:   classFor,
		Default:    defaultClass,
		TrainError: float64(errs) / float64(t.NumRows()),
		Disc:       disc,
	}, nil
}

// Predict classifies a row.
func (r *OneR) Predict(row []float64) int {
	v := row[r.Attr]
	if dataset.IsMissing(v) {
		return r.Default
	}
	idx := int(v)
	if r.Disc != nil {
		idx = r.Disc.Bin(v)
	}
	if idx < 0 || idx >= len(r.ClassFor) {
		return r.Default
	}
	return r.ClassFor[idx]
}

// String renders the rule table.
func (r *OneR) String() string {
	var sb strings.Builder
	a := r.attrs[r.Attr]
	fmt.Fprintf(&sb, "1R on %s (train error %.1f%%):\n", a.Name, r.TrainError*100)
	for v, c := range r.ClassFor {
		val := fmt.Sprintf("bin%d", v)
		if a.Kind == dataset.Categorical && v < len(a.Values) {
			val = a.Values[v]
		}
		label := fmt.Sprintf("%d", c)
		classAttr := r.attrs[r.classIdx]
		if c < len(classAttr.Values) {
			label = classAttr.Values[c]
		}
		fmt.Fprintf(&sb, "  %s = %s -> %s\n", a.Name, val, label)
	}
	return sb.String()
}
