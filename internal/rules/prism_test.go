package rules

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

// contactLensStyle builds a small categorical table PRISM separates
// perfectly (in the spirit of Cendrowska's contact-lens data).
func contactLensStyle(t *testing.T) *dataset.Table {
	t.Helper()
	tbl := dataset.New(
		dataset.NewCategoricalAttribute("tears", "reduced", "normal"),
		dataset.NewCategoricalAttribute("astig", "no", "yes"),
		dataset.NewCategoricalAttribute("lens", "none", "soft", "hard"),
	)
	tbl.ClassIndex = 2
	rows := [][]float64{
		{0, 0, 0}, {0, 1, 0}, // reduced tears -> none
		{1, 0, 1}, {1, 0, 1}, // normal, no astig -> soft
		{1, 1, 2}, {1, 1, 2}, // normal, astig -> hard
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestPRISMSeparable(t *testing.T) {
	tbl := contactLensStyle(t)
	m, err := TrainPRISM(tbl, PRISM{})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tbl.Rows {
		if got := m.Predict(row); got != tbl.Class(i) {
			t.Errorf("row %d predicted %d, want %d", i, got, tbl.Class(i))
		}
	}
	// Every rule on separable data must be pure.
	for _, r := range m.Rules {
		if r.Correct != r.Covered {
			t.Errorf("impure rule: %+v", r)
		}
	}
}

func TestPRISMNumericAttributes(t *testing.T) {
	train, err := synth.Classify(synth.ClassifyConfig{NumRows: 800, Function: 1, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	test, err := synth.Classify(synth.ClassifyConfig{NumRows: 400, Function: 1, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainPRISM(train, PRISM{Bins: 8})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, row := range test.Rows {
		if m.Predict(row) == test.Class(i) {
			correct++
		}
	}
	acc := float64(correct) / float64(test.NumRows())
	// F1 depends on age alone; covering rules over 8 age bins should get
	// most of it.
	if acc < 0.8 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestPRISMValidation(t *testing.T) {
	if _, err := TrainPRISM(nil, PRISM{}); !errors.Is(err, ErrNoRows) {
		t.Errorf("nil error = %v", err)
	}
	noClass := dataset.New(dataset.NewNumericAttribute("x"))
	if err := noClass.AppendRow([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := TrainPRISM(noClass, PRISM{}); !errors.Is(err, ErrNoClass) {
		t.Errorf("no-class error = %v", err)
	}
}

func TestPRISMMaxRulesCap(t *testing.T) {
	train, err := synth.Classify(synth.ClassifyConfig{NumRows: 500, Function: 5, Noise: 0.2, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainPRISM(train, PRISM{MaxRules: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rules) > 5 {
		t.Errorf("rules = %d, cap 5", len(m.Rules))
	}
}

func TestPRISMString(t *testing.T) {
	tbl := contactLensStyle(t)
	m, err := TrainPRISM(tbl, PRISM{})
	if err != nil {
		t.Fatal(err)
	}
	s := m.String()
	for _, frag := range []string{"IF ", " THEN ", "DEFAULT"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q:\n%s", frag, s)
		}
	}
}

func TestPRISMMissingValues(t *testing.T) {
	tbl := contactLensStyle(t)
	m, err := TrainPRISM(tbl, PRISM{})
	if err != nil {
		t.Fatal(err)
	}
	row := []float64{dataset.Missing, dataset.Missing, 0}
	if got := m.Predict(row); got != m.Default {
		t.Errorf("all-missing predicted %d, want default %d", got, m.Default)
	}
}
