package rules

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
)

// PRISM is Cendrowska's covering algorithm (1987): for each class it
// repeatedly grows a conjunctive rule by adding, one at a time, the
// attribute-value test with the highest precision on the rows still
// covered, until the rule is pure (or no test helps); covered rows are
// removed and the process repeats until the class is exhausted. Numeric
// attributes are discretized into equal-frequency bins up front.
type PRISM struct {
	// Bins is the number of bins for numeric attributes (default 6).
	Bins int
	// MaxRules caps the total rule count as a safety valve (default 256).
	MaxRules int
}

// PrismTest is one attribute-value condition of a rule. For numeric
// attributes Value is the bin index of the stored discretizer.
type PrismTest struct {
	Attr  int
	Value int
}

// PrismRule is a conjunctive rule predicting Class.
type PrismRule struct {
	Tests []PrismTest
	Class int
	// Covered and Correct are training statistics.
	Covered, Correct int
}

// PrismModel is a trained rule list plus a default class.
type PrismModel struct {
	Rules   []PrismRule
	Default int

	attrs    []dataset.Attribute
	classIdx int
	discs    map[int]*dataset.Discretizer
}

// TrainPRISM induces the rule list.
func TrainPRISM(t *dataset.Table, cfg PRISM) (*PrismModel, error) {
	if t == nil || t.NumRows() == 0 {
		return nil, ErrNoRows
	}
	nClasses := t.NumClasses()
	if nClasses < 1 {
		return nil, ErrNoClass
	}
	bins := cfg.Bins
	if bins < 2 {
		bins = 6
	}
	maxRules := cfg.MaxRules
	if maxRules <= 0 {
		maxRules = 256
	}
	def, err := t.MajorityClass()
	if err != nil {
		return nil, err
	}
	m := &PrismModel{Default: def, attrs: t.Attributes, classIdx: t.ClassIndex, discs: map[int]*dataset.Discretizer{}}

	// Pre-discretize numeric attributes; nVals[j] is the test-value count.
	nVals := make([]int, len(t.Attributes))
	for j, a := range t.Attributes {
		if j == t.ClassIndex {
			continue
		}
		if a.Kind == dataset.Categorical {
			nVals[j] = len(a.Values)
			continue
		}
		d, err := dataset.FitEqualFrequency(t, j, bins)
		if err != nil {
			continue // unusable column
		}
		m.discs[j] = d
		nVals[j] = d.NumBins()
	}

	valueOf := func(row []float64, j int) int {
		v := row[j]
		if dataset.IsMissing(v) {
			return -1
		}
		if d, ok := m.discs[j]; ok {
			return d.Bin(v)
		}
		return int(v)
	}

	for class := 0; class < nClasses; class++ {
		// Rows of this class not yet covered by a rule for it.
		remaining := make([]int, 0, t.NumRows())
		for i := range t.Rows {
			if t.Class(i) == class {
				remaining = append(remaining, i)
			}
		}
		for len(remaining) > 0 && len(m.Rules) < maxRules {
			// Grow one rule on the full table, restricted to rows
			// matching the tests so far.
			candidateRows := make([]int, 0, t.NumRows())
			for i := range t.Rows {
				candidateRows = append(candidateRows, i)
			}
			var tests []PrismTest
			used := make(map[int]bool)
			for {
				// Pure already?
				correct := 0
				for _, i := range candidateRows {
					if t.Class(i) == class {
						correct++
					}
				}
				if correct == len(candidateRows) || len(used) == len(t.Attributes)-1 {
					break
				}
				bestAttr, bestVal, bestPrec, bestCover := -1, -1, -1.0, 0
				for j := range t.Attributes {
					if j == t.ClassIndex || used[j] || nVals[j] == 0 {
						continue
					}
					cover := make([]int, nVals[j])
					hit := make([]int, nVals[j])
					for _, i := range candidateRows {
						v := valueOf(t.Rows[i], j)
						if v < 0 || v >= nVals[j] {
							continue
						}
						cover[v]++
						if t.Class(i) == class {
							hit[v]++
						}
					}
					for v := 0; v < nVals[j]; v++ {
						if cover[v] == 0 || hit[v] == 0 {
							continue
						}
						prec := float64(hit[v]) / float64(cover[v])
						// Tie-break on coverage, as Cendrowska specifies.
						if prec > bestPrec || (prec == bestPrec && hit[v] > bestCover) {
							bestAttr, bestVal, bestPrec, bestCover = j, v, prec, hit[v]
						}
					}
				}
				if bestAttr < 0 {
					break
				}
				tests = append(tests, PrismTest{Attr: bestAttr, Value: bestVal})
				used[bestAttr] = true
				filtered := candidateRows[:0]
				for _, i := range candidateRows {
					if valueOf(t.Rows[i], bestAttr) == bestVal {
						filtered = append(filtered, i)
					}
				}
				candidateRows = filtered
			}
			if len(tests) == 0 {
				break // nothing discriminates; stop covering this class
			}
			covered, correct := 0, 0
			for _, i := range candidateRows {
				covered++
				if t.Class(i) == class {
					correct++
				}
			}
			m.Rules = append(m.Rules, PrismRule{Tests: tests, Class: class, Covered: covered, Correct: correct})
			// Remove covered class rows from the worklist.
			still := remaining[:0]
			for _, i := range remaining {
				if !m.matches(tests, t.Rows[i]) {
					still = append(still, i)
				}
			}
			if len(still) == len(remaining) {
				break // no progress; avoid looping forever
			}
			remaining = still
		}
	}
	return m, nil
}

func (m *PrismModel) matches(tests []PrismTest, row []float64) bool {
	for _, ts := range tests {
		v := row[ts.Attr]
		if dataset.IsMissing(v) {
			return false
		}
		if d, ok := m.discs[ts.Attr]; ok {
			if d.Bin(v) != ts.Value {
				return false
			}
		} else if int(v) != ts.Value {
			return false
		}
	}
	return true
}

// Predict returns the class of the first matching rule, or the default.
func (m *PrismModel) Predict(row []float64) int {
	for _, r := range m.Rules {
		if m.matches(r.Tests, row) {
			return r.Class
		}
	}
	return m.Default
}

// String renders the rule list.
func (m *PrismModel) String() string {
	var sb strings.Builder
	classAttr := m.attrs[m.classIdx]
	for _, r := range m.Rules {
		sb.WriteString("IF ")
		for i, ts := range r.Tests {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			a := m.attrs[ts.Attr]
			if a.Kind == dataset.Categorical {
				fmt.Fprintf(&sb, "%s = %s", a.Name, a.Values[ts.Value])
			} else {
				fmt.Fprintf(&sb, "%s in bin%d", a.Name, ts.Value)
			}
		}
		label := fmt.Sprintf("%d", r.Class)
		if r.Class < len(classAttr.Values) {
			label = classAttr.Values[r.Class]
		}
		fmt.Fprintf(&sb, " THEN %s (%d/%d)\n", label, r.Correct, r.Covered)
	}
	fmt.Fprintf(&sb, "DEFAULT %s\n", classAttr.Values[m.Default])
	return sb.String()
}
