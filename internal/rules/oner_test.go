package rules

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

func outlookTable(t *testing.T) *dataset.Table {
	t.Helper()
	tbl := dataset.New(
		dataset.NewCategoricalAttribute("outlook", "sunny", "overcast", "rain"),
		dataset.NewCategoricalAttribute("windy", "false", "true"),
		dataset.NewCategoricalAttribute("play", "no", "yes"),
	)
	tbl.ClassIndex = 2
	// outlook predicts play far better than windy.
	rows := [][]float64{
		{0, 0, 0}, {0, 1, 0}, {0, 0, 0},
		{1, 0, 1}, {1, 1, 1}, {1, 0, 1},
		{2, 0, 1}, {2, 1, 0}, {2, 0, 1},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestTrain1RPicksBestAttribute(t *testing.T) {
	tbl := outlookTable(t)
	r, err := Train1R(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if name := tbl.Attributes[r.Attr].Name; name != "outlook" {
		t.Errorf("chosen attribute = %s, want outlook", name)
	}
	// outlook=sunny -> no, overcast -> yes, rain -> yes (majority).
	if r.ClassFor[0] != 0 || r.ClassFor[1] != 1 || r.ClassFor[2] != 1 {
		t.Errorf("ClassFor = %v", r.ClassFor)
	}
	// One error (rain/windy/no): error rate 1/9.
	if r.TrainError < 0.1 || r.TrainError > 0.12 {
		t.Errorf("TrainError = %v, want ~1/9", r.TrainError)
	}
}

func TestPredict(t *testing.T) {
	tbl := outlookTable(t)
	r, err := Train1R(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Predict([]float64{0, 0, 0}); got != 0 {
		t.Errorf("sunny = %d, want 0", got)
	}
	if got := r.Predict([]float64{1, 0, 0}); got != 1 {
		t.Errorf("overcast = %d, want 1", got)
	}
	if got := r.Predict([]float64{dataset.Missing, 0, 0}); got != r.Default {
		t.Errorf("missing = %d, want default %d", got, r.Default)
	}
}

func TestTrain1RNumeric(t *testing.T) {
	tbl, err := synth.Classify(synth.ClassifyConfig{NumRows: 1500, Function: 1, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Train1R(tbl)
	if err != nil {
		t.Fatal(err)
	}
	// F1 depends only on age; 1R must pick age (column 2) and bin it.
	if r.Attr != synth.ColAge {
		t.Errorf("chosen attribute = %d (%s), want age",
			r.Attr, tbl.Attributes[r.Attr].Name)
	}
	if r.Disc == nil {
		t.Error("numeric attribute should carry a discretizer")
	}
	test, err := synth.Classify(synth.ClassifyConfig{NumRows: 500, Function: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, row := range test.Rows {
		if r.Predict(row) == test.Class(i) {
			correct++
		}
	}
	acc := float64(correct) / float64(test.NumRows())
	if acc < 0.75 {
		t.Errorf("1R on its own function: accuracy = %v", acc)
	}
}

func TestTrain1RValidation(t *testing.T) {
	if _, err := Train1R(nil); !errors.Is(err, ErrNoRows) {
		t.Errorf("nil error = %v", err)
	}
	noClass := dataset.New(dataset.NewNumericAttribute("x"))
	if err := noClass.AppendRow([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Train1R(noClass); !errors.Is(err, ErrNoClass) {
		t.Errorf("no-class error = %v", err)
	}
	classOnly := dataset.New(dataset.NewCategoricalAttribute("class", "a", "b"))
	classOnly.ClassIndex = 0
	if err := classOnly.AppendRow([]float64{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := Train1R(classOnly); !errors.Is(err, ErrNoAttribute) {
		t.Errorf("class-only error = %v", err)
	}
}

func TestMissingTrainingValues(t *testing.T) {
	tbl := outlookTable(t)
	tbl.Rows[0][0] = dataset.Missing
	r, err := Train1R(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if r.Attr < 0 {
		t.Error("no attribute chosen")
	}
}

func TestString(t *testing.T) {
	tbl := outlookTable(t)
	r, err := Train1R(tbl)
	if err != nil {
		t.Fatal(err)
	}
	s := r.String()
	for _, frag := range []string{"1R on outlook", "sunny", "-> no"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}
