// Package stats provides the small statistical toolkit shared by the mining
// packages: descriptive statistics, chi-square tests for predictor ranking,
// and distribution sampling helpers used by the synthetic data generators.
//
// Everything here is deterministic given a seed; nothing reads global
// state, and every helper is a single pass (or one sort) over its input.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by descriptive statistics that are undefined on
// empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It requires at least two observations.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	m, _ := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2], nil
	}
	return (cp[n/2-1] + cp[n/2]) / 2, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics, without modifying xs.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if len(cp) == 1 {
		return cp[0], nil
	}
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo], nil
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac, nil
}

// Summary holds the standard five-number-plus summary for a numeric column.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	m, _ := Mean(xs)
	sd := 0.0
	if len(xs) > 1 {
		sd, _ = StdDev(xs)
	}
	min, max, _ := MinMax(xs)
	med, _ := Median(xs)
	return Summary{N: len(xs), Mean: m, StdDev: sd, Min: min, Median: med, Max: max}, nil
}
