package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"single", []float64{4}, 4},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1, -3, 3}, 0},
		{"fractional", []float64{1.5, 2.5, 3.5}, 2.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Mean(tt.in)
			if err != nil {
				t.Fatalf("Mean(%v) error: %v", tt.in, err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Mean(nil) error = %v, want ErrEmpty", err)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Sample variance with n-1 denominator: sum sq dev = 32, /7.
	if want := 32.0 / 7.0; !almostEqual(v, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, want)
	}
	sd, err := StdDev(xs)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Sqrt(32.0 / 7.0); !almostEqual(sd, want, 1e-12) {
		t.Errorf("StdDev = %v, want %v", sd, want)
	}
}

func TestVarianceTooFew(t *testing.T) {
	if _, err := Variance([]float64{1}); !errors.Is(err, ErrEmpty) {
		t.Errorf("Variance single error = %v, want ErrEmpty", err)
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"odd", []float64{3, 1, 2}, 2},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"single", []float64{7}, 7},
	}
	for _, tt := range tests {
		got, err := Median(tt.in)
		if err != nil {
			t.Fatalf("%s: %v", tt.name, err)
		}
		if got != tt.want {
			t.Errorf("%s: Median = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	if _, err := Median(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("Quantile(1.5) should error")
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -2, 8, 0})
	if err != nil {
		t.Fatal(err)
	}
	if min != -2 || max != 8 {
		t.Errorf("MinMax = (%v, %v), want (-2, 8)", min, max)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summarize = %+v", s)
	}
}

func TestChiSquareIndependence(t *testing.T) {
	// Perfectly independent table: chi2 == 0, p == 1.
	table := [][]float64{{10, 20}, {20, 40}}
	chi2, df, p, err := ChiSquare(table)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(chi2, 0, 1e-9) || df != 1 || !almostEqual(p, 1, 1e-9) {
		t.Errorf("independent: chi2=%v df=%d p=%v", chi2, df, p)
	}
}

func TestChiSquareKnownValue(t *testing.T) {
	// Classic 2x2 example: chi2 = n(ad-bc)^2 / ((a+b)(c+d)(a+c)(b+d)).
	table := [][]float64{{20, 30}, {30, 20}}
	chi2, df, p, err := ChiSquare(table)
	if err != nil {
		t.Fatal(err)
	}
	want := 100.0 * math.Pow(20*20-30*30, 2) / (50 * 50 * 50 * 50)
	if !almostEqual(chi2, want, 1e-9) {
		t.Errorf("chi2 = %v, want %v", chi2, want)
	}
	if df != 1 {
		t.Errorf("df = %d, want 1", df)
	}
	// chi2 = 4.0 with df 1 => p ~ 0.0455.
	if !almostEqual(p, 0.04550026, 1e-6) {
		t.Errorf("p = %v, want ~0.0455", p)
	}
}

func TestChiSquareZeroMarginIgnored(t *testing.T) {
	table := [][]float64{{10, 20, 0}, {20, 40, 0}}
	_, df, _, err := ChiSquare(table)
	if err != nil {
		t.Fatal(err)
	}
	if df != 1 {
		t.Errorf("df = %d, want 1 (zero column ignored)", df)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, _, err := ChiSquare(nil); err == nil {
		t.Error("nil table should error")
	}
	if _, _, _, err := ChiSquare([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged table should error")
	}
	if _, _, _, err := ChiSquare([][]float64{{1, -2}}); err == nil {
		t.Error("negative cell should error")
	}
	if _, _, _, err := ChiSquare([][]float64{{0, 0}, {0, 0}}); err == nil {
		t.Error("all-zero table should error")
	}
}

func TestChiSquareSurvivalReferenceValues(t *testing.T) {
	// Reference values from standard chi-square tables.
	tests := []struct {
		chi2 float64
		df   int
		want float64
	}{
		{3.841, 1, 0.05},
		{5.991, 2, 0.05},
		{6.635, 1, 0.01},
		{0, 1, 1},
	}
	for _, tt := range tests {
		got := ChiSquareSurvival(tt.chi2, tt.df)
		if !almostEqual(got, tt.want, 5e-4) {
			t.Errorf("ChiSquareSurvival(%v, %d) = %v, want ~%v", tt.chi2, tt.df, got, tt.want)
		}
	}
}

func TestPairedTTest(t *testing.T) {
	a := []float64{0.90, 0.85, 0.88, 0.92, 0.87}
	b := []float64{0.80, 0.78, 0.81, 0.79, 0.80}
	tStat, df, p, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tStat <= 0 {
		t.Errorf("t = %v, want positive (a > b)", tStat)
	}
	if df != 4 {
		t.Errorf("df = %d, want 4", df)
	}
	if p >= 0.05 {
		t.Errorf("p = %v, want < 0.05 for clearly separated samples", p)
	}
}

func TestPairedTTestIdentical(t *testing.T) {
	a := []float64{1, 2, 3}
	_, _, p, err := PairedTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("identical samples p = %v, want 1", p)
	}
}

func TestPairedTTestErrors(t *testing.T) {
	if _, _, _, err := PairedTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, _, _, err := PairedTTest([]float64{1}, []float64{2}); err == nil {
		t.Error("too-short samples should error")
	}
}

func TestPoissonMeanMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, mean := range []float64{0.5, 2, 10, 50} {
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += Poisson(rng, mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > 0.1*mean+0.1 {
			t.Errorf("Poisson mean %v: sample mean %v", mean, got)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := Poisson(rng, 0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := Poisson(rng, -3); got != 0 {
		t.Errorf("Poisson(-3) = %d, want 0", got)
	}
}

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += Exponential(rng, 4)
	}
	if got := sum / float64(n); math.Abs(got-4) > 0.15 {
		t.Errorf("Exponential mean = %v, want ~4", got)
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	weights := []float64{1, 3, 0, 6}
	counts := make([]int, len(weights))
	n := 50000
	for i := 0; i < n; i++ {
		idx := WeightedChoice(rng, weights)
		if idx < 0 || idx >= len(weights) {
			t.Fatalf("index out of range: %d", idx)
		}
		counts[idx]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight index chosen %d times", counts[2])
	}
	ratio := float64(counts[3]) / float64(counts[0])
	if math.Abs(ratio-6) > 1 {
		t.Errorf("weight ratio = %v, want ~6", ratio)
	}
}

func TestWeightedChoiceDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if got := WeightedChoice(rng, nil); got != -1 {
		t.Errorf("empty weights = %d, want -1", got)
	}
	if got := WeightedChoice(rng, []float64{0, -1}); got != -1 {
		t.Errorf("non-positive weights = %d, want -1", got)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	got := SampleWithoutReplacement(rng, 100, 10)
	if len(got) != 10 {
		t.Fatalf("len = %d, want 10", len(got))
	}
	seen := make(map[int]bool)
	for _, v := range got {
		if v < 0 || v >= 100 {
			t.Errorf("value %d out of range", v)
		}
		if seen[v] {
			t.Errorf("duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacementEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if got := SampleWithoutReplacement(rng, 0, 5); got != nil {
		t.Errorf("n=0 should return nil, got %v", got)
	}
	got := SampleWithoutReplacement(rng, 4, 10)
	if len(got) != 4 {
		t.Errorf("k>n should return full permutation, len=%d", len(got))
	}
}

// Property: sampling k of n always yields k distinct in-range values.
func TestSampleWithoutReplacementProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%200) + 1
		k := int(kRaw % 200)
		got := SampleWithoutReplacement(rng, n, k)
		wantLen := k
		if k > n {
			wantLen = n
		}
		if len(got) != wantLen {
			return false
		}
		seen := make(map[int]bool)
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: chi-square of any table proportional to an outer product of
// marginals is ~0 (independence).
func TestChiSquareIndependenceProperty(t *testing.T) {
	f := func(aRaw, bRaw, cRaw, dRaw uint8) bool {
		a := float64(aRaw%50) + 1
		b := float64(bRaw%50) + 1
		c := float64(cRaw%50) + 1
		d := float64(dRaw%50) + 1
		// Build rank-1 table: rows (a, b) x cols (c, d).
		table := [][]float64{{a * c, a * d}, {b * c, b * d}}
		chi2, _, _, err := ChiSquare(table)
		return err == nil && chi2 < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
