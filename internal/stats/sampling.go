package stats

import (
	"math"
	"math/rand"
)

// Poisson draws a sample from a Poisson distribution with the given mean
// using Knuth's multiplication method for small means and the normal
// approximation (rounded, clamped at zero) for large means. The synthetic
// transaction generators use this for transaction and itemset sizes.
func Poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation; adequate for generator use where mean
		// only controls a size distribution, not a test statistic.
		v := rng.NormFloat64()*math.Sqrt(mean) + mean
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Exponential draws from an exponential distribution with the given mean.
func Exponential(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// WeightedChoice returns an index drawn from weights proportionally.
// The weights need not be normalised; non-positive weights are skipped.
// It returns -1 if no weight is positive.
func WeightedChoice(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	r := rng.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		r -= w
		if r <= 0 {
			return i
		}
	}
	// Floating-point slack: return last positive index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}

// SampleWithoutReplacement returns k distinct integers drawn uniformly from
// [0, n). If k >= n it returns the full permutation of [0, n).
func SampleWithoutReplacement(rng *rand.Rand, n, k int) []int {
	if n <= 0 {
		return nil
	}
	if k >= n {
		return rng.Perm(n)
	}
	// Floyd's algorithm: O(k) expected.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := rng.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}
