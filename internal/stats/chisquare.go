package stats

import (
	"errors"
	"math"
)

// ChiSquare performs Pearson's chi-square test of independence on a
// contingency table (rows = categories of one variable, columns = categories
// of the other). It returns the chi-square statistic, degrees of freedom,
// and the p-value.
//
// Rows and columns whose marginal total is zero contribute no degrees of
// freedom and are ignored, matching the usual statistical-package behaviour.
func ChiSquare(table [][]float64) (chi2 float64, df int, p float64, err error) {
	if len(table) == 0 || len(table[0]) == 0 {
		return 0, 0, 0, errors.New("stats: empty contingency table")
	}
	nCols := len(table[0])
	for _, row := range table {
		if len(row) != nCols {
			return 0, 0, 0, errors.New("stats: ragged contingency table")
		}
	}
	rowSum := make([]float64, len(table))
	colSum := make([]float64, nCols)
	total := 0.0
	for i, row := range table {
		for j, v := range row {
			if v < 0 {
				return 0, 0, 0, errors.New("stats: negative cell count")
			}
			rowSum[i] += v
			colSum[j] += v
			total += v
		}
	}
	if total == 0 {
		return 0, 0, 0, errors.New("stats: all-zero contingency table")
	}
	activeRows, activeCols := 0, 0
	for _, s := range rowSum {
		if s > 0 {
			activeRows++
		}
	}
	for _, s := range colSum {
		if s > 0 {
			activeCols++
		}
	}
	df = (activeRows - 1) * (activeCols - 1)
	if df <= 0 {
		return 0, 0, 1, nil
	}
	for i, row := range table {
		if rowSum[i] == 0 {
			continue
		}
		for j, v := range row {
			if colSum[j] == 0 {
				continue
			}
			expected := rowSum[i] * colSum[j] / total
			d := v - expected
			chi2 += d * d / expected
		}
	}
	return chi2, df, ChiSquareSurvival(chi2, df), nil
}

// ChiSquareSurvival returns P(X >= chi2) for a chi-square distribution with
// df degrees of freedom, i.e. the p-value of the test statistic.
func ChiSquareSurvival(chi2 float64, df int) float64 {
	if chi2 <= 0 || df <= 0 {
		return 1
	}
	return 1 - lowerRegularizedGamma(float64(df)/2, chi2/2)
}

// lowerRegularizedGamma computes P(a, x), the lower regularized incomplete
// gamma function, via the series expansion for x < a+1 and the continued
// fraction otherwise (Numerical Recipes §6.2).
func lowerRegularizedGamma(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaContinuedFraction(a, x)
	}
}

func gammaSeries(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// PairedTTest performs a two-sided paired t-test on equal-length samples a
// and b and returns the t statistic, degrees of freedom, and p-value. It is
// used to compare per-fold cross-validation scores of two classifiers.
func PairedTTest(a, b []float64) (t float64, df int, p float64, err error) {
	if len(a) != len(b) {
		return 0, 0, 0, errors.New("stats: paired samples differ in length")
	}
	if len(a) < 2 {
		return 0, 0, 0, ErrEmpty
	}
	diffs := make([]float64, len(a))
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	m, _ := Mean(diffs)
	v, _ := Variance(diffs)
	n := float64(len(diffs))
	if v == 0 {
		if m == 0 {
			return 0, len(diffs) - 1, 1, nil
		}
		return math.Inf(sign(m)), len(diffs) - 1, 0, nil
	}
	t = m / math.Sqrt(v/n)
	df = len(diffs) - 1
	return t, df, studentTSurvival2(math.Abs(t), float64(df)), nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTSurvival2 returns the two-sided p-value P(|T| >= t) for Student's
// t distribution with df degrees of freedom, via the regularized incomplete
// beta function identity.
func studentTSurvival2(t, df float64) float64 {
	x := df / (df + t*t)
	return regularizedIncompleteBeta(df/2, 0.5, x)
}

// regularizedIncompleteBeta computes I_x(a, b) using the continued-fraction
// expansion (Numerical Recipes §6.4).
func regularizedIncompleteBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lgA, _ := math.Lgamma(a)
	lgB, _ := math.Lgamma(b)
	lgAB, _ := math.Lgamma(a + b)
	front := math.Exp(lgAB - lgA - lgB + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func betaCF(a, b, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	const tiny = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
