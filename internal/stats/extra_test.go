package stats

import (
	"math"
	"testing"
)

func TestStudentTSurvivalReference(t *testing.T) {
	// Two-sided p-values from standard t tables.
	tests := []struct {
		t, df, want float64
	}{
		{2.262, 9, 0.05},
		{3.250, 9, 0.01},
		{12.706, 1, 0.05},
		{0, 10, 1},
	}
	for _, tt := range tests {
		got := studentTSurvival2(tt.t, tt.df)
		if math.Abs(got-tt.want) > 2e-3 {
			t.Errorf("studentTSurvival2(%v, %v) = %v, want ~%v", tt.t, tt.df, got, tt.want)
		}
	}
}

func TestRegularizedIncompleteBetaBounds(t *testing.T) {
	if got := regularizedIncompleteBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v", got)
	}
	if got := regularizedIncompleteBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v", got)
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	a, b, x := 2.5, 4.0, 0.3
	lhs := regularizedIncompleteBeta(a, b, x)
	rhs := 1 - regularizedIncompleteBeta(b, a, 1-x)
	if math.Abs(lhs-rhs) > 1e-12 {
		t.Errorf("symmetry violated: %v vs %v", lhs, rhs)
	}
}

func TestLowerRegularizedGammaKnown(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
		got := lowerRegularizedGamma(1, x)
		want := 1 - math.Exp(-x)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("P(1, %v) = %v, want %v", x, got, want)
		}
	}
	if got := lowerRegularizedGamma(2, 0); got != 0 {
		t.Errorf("P(2, 0) = %v", got)
	}
	if !math.IsNaN(lowerRegularizedGamma(-1, 1)) {
		t.Error("negative a should be NaN")
	}
}

func TestPairedTTestInfiniteT(t *testing.T) {
	// Constant nonzero difference with zero variance: infinite t, p = 0.
	a := []float64{1, 2, 3}
	b := []float64{0, 1, 2}
	tStat, _, p, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(tStat, 1) {
		t.Errorf("t = %v, want +Inf", tStat)
	}
	if p != 0 {
		t.Errorf("p = %v, want 0", p)
	}
	tStat, _, _, err = PairedTTest(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(tStat, -1) {
		t.Errorf("t = %v, want -Inf", tStat)
	}
}

func TestChiSquareSurvivalEdge(t *testing.T) {
	if got := ChiSquareSurvival(-1, 3); got != 1 {
		t.Errorf("negative chi2 = %v", got)
	}
	if got := ChiSquareSurvival(5, 0); got != 1 {
		t.Errorf("df=0 = %v", got)
	}
	// Large statistic: p approaches 0.
	if got := ChiSquareSurvival(1000, 1); got > 1e-10 {
		t.Errorf("huge chi2 p = %v", got)
	}
}
