package serve

import (
	"net"
	"net/rpc"

	"repro/mining"
)

// RPCService is the net/rpc name the query service registers under —
// the same gob-codec transport family the distributed mining workers
// speak, so a deployment already running dist.ServeWorker processes can
// query the serving tier without a second protocol stack.
const RPCService = "DMServe"

// RPC is the net/rpc face of a Server's query path. Register it with
// Server.ServeRPC, or mount it on an existing *rpc.Server via
// rpc.RegisterName(RPCService, NewRPC(s)).
type RPC struct {
	s *Server
}

// NewRPC wraps a server for net/rpc registration.
func NewRPC(s *Server) *RPC { return &RPC{s: s} }

// RulesArgs mirrors RulesQuery for the wire.
type RulesArgs struct {
	K             int
	By            string
	MinConfidence float64
	Antecedent    []int
}

// RulesReply carries a rule-query answer and the view version it was
// computed from.
type RulesReply struct {
	Version uint64
	NumTx   int
	Rules   []mining.Rule
}

// SupportArgs is an itemset support lookup.
type SupportArgs struct {
	Items []int
}

// RecommendArgs is a per-antecedent recommendation request.
type RecommendArgs struct {
	Items []int
	K     int
}

// TopRules answers a rule query (see Server.TopRules).
func (r *RPC) TopRules(args RulesArgs, reply *RulesReply) error {
	rules, version, err := r.s.TopRules(RulesQuery{
		K:             args.K,
		By:            RankBy(args.By),
		MinConfidence: args.MinConfidence,
		Antecedent:    args.Antecedent,
	})
	if err != nil {
		return err
	}
	reply.Version, reply.NumTx, reply.Rules = version, r.s.View().NumTx(), rules
	return nil
}

// Support answers an itemset support lookup (see Server.ItemsetSupport).
func (r *RPC) Support(args SupportArgs, reply *SupportResult) error {
	res, err := r.s.ItemsetSupport(args.Items...)
	if err != nil {
		return err
	}
	*reply = res
	return nil
}

// Recommend answers a recommendation request (see Server.Recommend).
func (r *RPC) Recommend(args RecommendArgs, reply *RulesReply) error {
	rules, version, err := r.s.Recommend(args.Items, args.K)
	if err != nil {
		return err
	}
	reply.Version, reply.NumTx, reply.Rules = version, r.s.View().NumTx(), rules
	return nil
}

// Stats reports the server counters over the wire.
func (r *RPC) Stats(_ struct{}, reply *Stats) error {
	*reply = r.s.Stats()
	return nil
}

// ServeRPC registers the query service as RPCService and serves gob-codec
// connections from l (one goroutine per connection) until the listener
// closes, whose error it returns — the same serving shape as
// dist.ServeWorker.
func (s *Server) ServeRPC(l net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName(RPCService, NewRPC(s)); err != nil {
		return err
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		//lint:ignore invcheck/goroutines per-connection rpc goroutines run until the peer disconnects; their lifetime is bounded by closing the listener, the standard net/rpc serving shape
		go srv.ServeConn(conn)
	}
}
