package serve

import (
	"context"
	"reflect"
	"testing"

	"repro/mining"
)

// cacheCounters reads the server's cache counters.
func cacheCounters(srv *Server) (hits, misses uint64) {
	return srv.cache.counters()
}

// TestCacheHitMissCounters pins the counter semantics: first query
// misses, an identical repeat hits, a differently-spelled but
// identically-normalized query hits too.
func TestCacheHitMissCounters(t *testing.T) {
	srv := newTestServer(t, fixtureRows(150, 16, 11), Config{})
	q := RulesQuery{K: 5, By: BySupport, Antecedent: []int{3, 1}}
	first, v1, err := srv.TopRules(q)
	if err != nil {
		t.Fatalf("TopRules: %v", err)
	}
	hits, misses := cacheCounters(srv)
	if hits != 0 || misses != 1 {
		t.Fatalf("after first query: hits=%d misses=%d, want 0/1", hits, misses)
	}
	again, v2, err := srv.TopRules(RulesQuery{K: 5, By: BySupport, Antecedent: []int{1, 3, 3}})
	if err != nil {
		t.Fatalf("TopRules repeat: %v", err)
	}
	hits, misses = cacheCounters(srv)
	if hits != 1 || misses != 1 {
		t.Fatalf("after normalized repeat: hits=%d misses=%d, want 1/1", hits, misses)
	}
	if v1 != v2 || !reflect.DeepEqual(first, again) {
		t.Fatal("cache hit returned a different result than the computed miss")
	}
}

// TestCacheNeverServesStaleVersion is the cache-correctness pin: after a
// Maintain publishes a new version, the same query must be recomputed
// against the new view — never answered from the old version's entry.
func TestCacheNeverServesStaleVersion(t *testing.T) {
	rows := fixtureRows(120, 14, 12)
	srv := newTestServer(t, rows, Config{})
	ctx := context.Background()
	q := RulesQuery{K: 8, By: BySupport}

	stale, v1, err := srv.TopRules(q)
	if err != nil {
		t.Fatalf("TopRules: %v", err)
	}
	if _, _, err := srv.TopRules(q); err != nil { // warm the entry
		t.Fatalf("TopRules warm: %v", err)
	}

	// Shift the distribution hard: a burst of one correlated pair changes
	// supports (and the top-by-support ranking).
	model := opModel{rows: append([][]int(nil), rows...)}
	for i := 0; i < 60; i++ {
		op := Op{Kind: OpAppend, Items: []int{7, 8, 9}}
		if err := srv.Enqueue(ctx, op); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
		model.apply(op)
	}
	view, err := srv.Flush(ctx)
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if view.Version() <= v1 {
		t.Fatalf("Flush did not publish a new version: %d", view.Version())
	}

	hitsBefore, missesBefore := cacheCounters(srv)
	fresh, v2, err := srv.TopRules(q)
	if err != nil {
		t.Fatalf("TopRules after publish: %v", err)
	}
	if v2 != view.Version() {
		t.Fatalf("query answered from version %d, current is %d", v2, view.Version())
	}
	hits, misses := cacheCounters(srv)
	if hits != hitsBefore || misses != missesBefore+1 {
		t.Fatalf("stale-version lookup was a hit (hits %d→%d, misses %d→%d)",
			hitsBefore, hits, missesBefore, misses)
	}
	// The recomputed answer must match the new view's from-scratch state.
	_, wantRules := mineFromScratch(t, model.snapshotRows(), testMinSup, testFloor)
	want := topRules(&View{rules: wantRules}, RulesQuery{K: 8, By: BySupport, MinConfidence: 0})
	if !reflect.DeepEqual(fresh, want) {
		t.Fatal("post-publish query does not match the new version's from-scratch rules")
	}
	if reflect.DeepEqual(fresh, stale) {
		t.Log("warning: distribution shift did not change the top rules; stale detection relies on counters only")
	}
}

// TestCacheLRUEviction pins the eviction order with a capacity-2 cache.
func TestCacheLRUEviction(t *testing.T) {
	srv := newTestServer(t, fixtureRows(100, 12, 13), Config{CacheSize: 2})
	queries := []RulesQuery{{K: 1}, {K: 2}, {K: 3}}
	for _, q := range queries {
		if _, _, err := srv.TopRules(q); err != nil {
			t.Fatalf("TopRules: %v", err)
		}
	}
	// {K:1} was evicted by {K:3}; {K:3} and {K:2} remain.
	_, missesBefore := cacheCounters(srv)
	if _, _, err := srv.TopRules(RulesQuery{K: 1}); err != nil {
		t.Fatalf("TopRules: %v", err)
	}
	if _, misses := cacheCounters(srv); misses != missesBefore+1 {
		t.Fatal("evicted entry was served from cache")
	}
	hitsBefore, _ := cacheCounters(srv)
	if _, _, err := srv.TopRules(RulesQuery{K: 3}); err != nil {
		t.Fatalf("TopRules: %v", err)
	}
	if hits, _ := cacheCounters(srv); hits != hitsBefore+1 {
		t.Fatal("resident entry missed")
	}
}

// TestCacheDisabled pins CacheSize < 0: everything misses, nothing is
// stored, queries still work.
func TestCacheDisabled(t *testing.T) {
	srv := newTestServer(t, fixtureRows(100, 12, 14), Config{CacheSize: -1})
	for i := 0; i < 3; i++ {
		if _, _, err := srv.TopRules(RulesQuery{K: 4}); err != nil {
			t.Fatalf("TopRules: %v", err)
		}
	}
	hits, misses := cacheCounters(srv)
	if hits != 0 || misses != 3 {
		t.Fatalf("disabled cache: hits=%d misses=%d, want 0/3", hits, misses)
	}
}

// TestRecommendCached pins that recommendations go through the cache and
// respect version keying too.
func TestRecommendCached(t *testing.T) {
	srv := newTestServer(t, fixtureRows(150, 16, 15), Config{})
	ctx := context.Background()
	first, v1, err := srv.Recommend([]int{2}, 5)
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	again, _, err := srv.Recommend([]int{2, 2}, 5) // normalizes identically
	if err != nil {
		t.Fatalf("Recommend repeat: %v", err)
	}
	hits, _ := cacheCounters(srv)
	if hits != 1 {
		t.Fatalf("normalized recommend repeat did not hit (hits=%d)", hits)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("recommend hit differs from the miss")
	}
	for i := 0; i < 40; i++ {
		if err := srv.Enqueue(ctx, Op{Kind: OpAppend, Items: []int{2, 13}}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	view, err := srv.Flush(ctx)
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	_, v2, err := srv.Recommend([]int{2}, 5)
	if err != nil {
		t.Fatalf("Recommend after publish: %v", err)
	}
	if v2 != view.Version() || v2 == v1 {
		t.Fatalf("recommend served version %d after publish of %d", v2, view.Version())
	}
	// The consequent of every recommendation must add something new.
	rules, _, err := srv.Recommend([]int{2, 13}, 10)
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	for _, r := range rules {
		if containsAll([]int{2, 13}, r.Consequent) {
			t.Fatalf("recommendation %v adds nothing beyond the basket", r)
		}
	}
	if stats := srv.Stats(); stats.CacheHits == 0 || stats.CacheMisses == 0 {
		t.Fatalf("Stats does not expose cache counters: %+v", stats)
	}
}

// TestLRUCacheUnit exercises the raw cache: overwrite, eviction of the
// oldest key, version keying.
func TestLRUCacheUnit(t *testing.T) {
	c := newLRUCache(2)
	rulesA := []mining.Rule{{Support: 1}}
	rulesB := []mining.Rule{{Support: 2}}
	c.put(1, "q", rulesA)
	c.put(1, "q", rulesB) // overwrite moves to front, no growth
	if got, ok := c.get(1, "q"); !ok || !reflect.DeepEqual(got, rulesB) {
		t.Fatal("overwrite lost the newest value")
	}
	if _, ok := c.get(2, "q"); ok {
		t.Fatal("version 2 hit a version-1 entry")
	}
	c.put(2, "q", rulesA)
	c.put(3, "q", rulesB) // evicts (1, "q") — the least recently used
	if _, ok := c.get(1, "q"); ok {
		t.Fatal("evicted entry still present")
	}
	if _, ok := c.get(3, "q"); !ok {
		t.Fatal("newest entry missing")
	}
}
