package serve

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestReadyzAndHealthz(t *testing.T) {
	srv := newTestServer(t, fixtureRows(80, 12, 4), Config{})
	ts := startHTTP(t, srv)
	var st map[string]string
	getJSON(t, ts.URL+"/v1/healthz", http.StatusOK, &st)
	if st["status"] != "ok" {
		t.Fatalf("healthz: %v", st)
	}
	getJSON(t, ts.URL+"/v1/readyz", http.StatusOK, &st)
	if st["status"] != "ready" {
		t.Fatalf("readyz: %v", st)
	}
}

func TestStartingHandlerNotReady(t *testing.T) {
	ts := httptest.NewServer(StartingHandler())
	defer ts.Close()
	var st map[string]string
	getJSON(t, ts.URL+"/v1/healthz", http.StatusOK, &st)
	if st["status"] != "ok" {
		t.Fatalf("healthz during startup: %v", st)
	}
	getJSON(t, ts.URL+"/v1/readyz", http.StatusServiceUnavailable, &st)
	if st["status"] != "recovering" {
		t.Fatalf("readyz during startup: %v", st)
	}
	getJSON(t, ts.URL+"/v1/rules?k=3", http.StatusServiceUnavailable, nil)
}

func TestCanonicalEndpoint(t *testing.T) {
	rows := fixtureRows(150, 16, 8)
	srv := newTestServer(t, rows, Config{})
	ts := startHTTP(t, srv)
	resp, err := http.Get(ts.URL + "/v1/canonical")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	wantCanon, _ := mineFromScratch(t, rows, testMinSup, testFloor)
	if !bytes.Equal(body, wantCanon) {
		t.Fatalf("canonical endpoint served %d bytes, want %d matching a from-scratch mine",
			len(body), len(wantCanon))
	}
	if got := resp.Header.Get("X-Serve-Version"); got != "1" {
		t.Fatalf("X-Serve-Version = %q", got)
	}
}

// TestPanicRecoveryMiddleware injects a panicking handler behind the
// middleware: the client sees a 500, the process survives, the counter
// increments, and the next request works.
func TestPanicRecoveryMiddleware(t *testing.T) {
	srv := newTestServer(t, fixtureRows(60, 12, 5), Config{})
	boom := srv.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("injected")
	}))
	ts := httptest.NewServer(boom)
	defer ts.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/")
		if err != nil {
			t.Fatalf("request %d after panic: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d, want 500", i, resp.StatusCode)
		}
	}
	if got := srv.Stats().Panics; got != 3 {
		t.Fatalf("Panics = %d, want 3", got)
	}
}

// TestSlowlorisHeaderStallRejected: a client that opens a connection and
// trickles no header bytes must be cut off by ReadHeaderTimeout instead
// of holding the connection forever.
func TestSlowlorisHeaderStallRejected(t *testing.T) {
	srv := newTestServer(t, fixtureRows(40, 12, 6), Config{})
	httpSrv := NewHTTPServer(srv.Handler(), HTTPTimeouts{ReadHeader: 150 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send a partial request line, then stall.
	if _, err := conn.Write([]byte("GET /v1/rules HTTP/1.1\r\nHost: x\r\nX-Stall:")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	start := time.Now()
	_, rerr := conn.Read(buf)
	if rerr == nil {
		t.Fatal("stalled connection got a response byte without completing headers")
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("connection survived %v, want the ~150ms header timeout to cut it", waited)
	}

	// A well-behaved client on the same server still gets served.
	conn2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	fmt.Fprintf(conn2, "GET /v1/healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(conn2).ReadString('\n')
	if err != nil || !strings.Contains(line, "200") {
		t.Fatalf("healthy client: %q, %v", line, err)
	}
}

// TestNewHTTPServerDefaults pins the default slowloris guards.
func TestNewHTTPServerDefaults(t *testing.T) {
	hs := NewHTTPServer(http.NotFoundHandler(), HTTPTimeouts{})
	if hs.ReadHeaderTimeout != 5*time.Second || hs.ReadTimeout != 60*time.Second ||
		hs.IdleTimeout != 120*time.Second {
		t.Fatalf("defaults: header %v read %v idle %v",
			hs.ReadHeaderTimeout, hs.ReadTimeout, hs.IdleTimeout)
	}
}
