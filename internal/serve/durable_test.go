package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/wal"
)

// foldOps replays ops over initial rows with the exact store semantics
// apply has: appends with a negative item are rejected, deletes out of
// range are rejected, both still advance the sequence. The independent
// oracle of every durability test.
func foldOps(initial [][]int, ops []Op) [][]int {
	rows := make([][]int, len(initial))
	copy(rows, initial)
	for _, op := range ops {
		switch op.Kind {
		case OpAppend:
			ok := true
			for _, it := range op.Items {
				if it < 0 {
					ok = false
				}
			}
			if ok {
				rows = append(rows, op.Items)
			}
		case OpDelete:
			if op.TID >= 0 && op.TID < len(rows) {
				rows = append(rows[:op.TID:op.TID], rows[op.TID+1:]...)
			}
		}
	}
	return rows
}

// randomOp draws one op: mostly valid appends, some deletes, a sprinkle
// of store-invalid ops (negative items, wild TIDs) that must round-trip
// the WAL as sequence-advancing no-ops.
func randomOp(rng *rand.Rand, live int) Op {
	switch rng.Intn(10) {
	case 0:
		return Op{Kind: OpDelete, TID: rng.Intn(live + 1)}
	case 1:
		return Op{Kind: OpAppend, Items: []int{-1, 3}} // store rejects
	case 2:
		return Op{Kind: OpDelete, TID: live + 100} // out of range
	default:
		pair := rng.Intn(8) * 2
		return Op{Kind: OpAppend, Items: []int{pair, pair + 1, rng.Intn(16)}}
	}
}

func TestDurableRestartRoundTrip(t *testing.T) {
	fs := wal.NewMemFS()
	rows := fixtureRows(60, 16, 3)
	srv := newTestServer(t, rows, Config{FS: fs, SnapshotEvery: 7})
	if !srv.Durable() {
		t.Fatal("server with FS not durable")
	}
	ctx := context.Background()
	var sent []Op
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 25; i++ {
		op := randomOp(rng, len(rows)+i)
		sent = append(sent, op)
		if err := srv.Enqueue(ctx, op); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if _, err := srv.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same directory with no initial db: everything must
	// come back from snapshot + replay.
	restarted, err := New(nil, Config{MinSupport: testMinSup, RuleFloor: testFloor,
		MaintainAfter: manualTrigger, FS: fs})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer restarted.Close()
	recOps, found := restarted.Recovered()
	if !found || recOps != uint64(len(sent)) {
		t.Fatalf("recovered %d ops (found=%v), want %d", recOps, found, len(sent))
	}
	wantCanon, _ := mineFromScratch(t, foldOps(rows, sent), testMinSup, testFloor)
	if got := restarted.View().Canonical(); !bytes.Equal(got, wantCanon) {
		t.Fatalf("recovered canonical bytes diverge from from-scratch mine")
	}
	if restarted.View().Ops() != uint64(len(sent)) {
		t.Fatalf("recovered view at ops %d, want %d", restarted.View().Ops(), len(sent))
	}
}

// TestDurableRecoveredStateWins: when the data directory already holds
// state, an -in style initial db must be ignored, not merged.
func TestDurableRecoveredStateWins(t *testing.T) {
	fs := wal.NewMemFS()
	first := fixtureRows(40, 12, 1)
	srv := newTestServer(t, first, Config{FS: fs})
	if _, err := srv.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	other := fixtureRows(99, 12, 2)
	restarted, err := New(mustDB(t, other), Config{MinSupport: testMinSup,
		RuleFloor: testFloor, MaintainAfter: manualTrigger, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	if _, found := restarted.Recovered(); !found {
		t.Fatal("prior state not detected")
	}
	if got := restarted.View().NumTx(); got != len(first) {
		t.Fatalf("restarted with %d transactions, want the recovered %d", got, len(first))
	}
}

// TestDurableCrashRecoveryProperty is the tentpole: random op streams,
// random crash points (fsynced prefix kept, unsynced tail torn and
// bit-flipped), across sync policies and seeds. After every crash the
// recovered server's canonical rule bytes must be byte-identical to a
// from-scratch mine over the recovered prefix of the sent op sequence;
// under SyncAlways that prefix must include every acknowledged op —
// acknowledged-then-lost is impossible.
func TestDurableCrashRecoveryProperty(t *testing.T) {
	policies := []wal.SyncPolicy{wal.SyncAlways, wal.SyncNever, wal.SyncInterval}
	for seed := int64(0); seed < 12; seed++ {
		for _, policy := range policies {
			seed, policy := seed, policy
			t.Run(fmt.Sprintf("policy=%s/seed=%d", policy, seed), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(seed))
				fs := wal.NewMemFS()
				initial := fixtureRows(20+rng.Intn(40), 16, seed)
				srv := newTestServer(t, initial, Config{
					FS:            fs,
					Fsync:         policy,
					FsyncEvery:    time.Millisecond, // sync aggressively
					SnapshotEvery: 5 + rng.Intn(20),
				})
				ctx := context.Background()
				var sent []Op // every op the server sequenced, in order
				acked := 0    // prefix length acknowledged durable
				n := 10 + rng.Intn(80)
				for i := 0; i < n; i++ {
					op := randomOp(rng, len(initial)+i)
					sent = append(sent, op)
					if err := srv.Enqueue(ctx, op); err != nil {
						t.Fatalf("enqueue %d: %v", i, err)
					}
					if policy == wal.SyncAlways {
						acked = i + 1
					}
					if rng.Intn(16) == 0 {
						if _, err := srv.Flush(ctx); err != nil {
							t.Fatal(err)
						}
						acked = i + 1 // Flush implies fsync under every policy
					}
				}
				// Crash: no Close, no final sync. The crashed image keeps
				// fsynced bytes and a torn, possibly bit-flipped tail.
				crashed := fs.Crash(rng)

				rec, err := New(nil, Config{MinSupport: testMinSup, RuleFloor: testFloor,
					MaintainAfter: manualTrigger, FS: crashed})
				if err != nil {
					t.Fatalf("recovery: %v", err)
				}
				defer rec.Close()
				recOps, _ := rec.Recovered()
				if recOps < uint64(acked) {
					t.Fatalf("acknowledged-then-lost: recovered %d < acked %d", recOps, acked)
				}
				if recOps > uint64(len(sent)) {
					t.Fatalf("invented ops: recovered %d > sent %d", recOps, len(sent))
				}
				wantCanon, _ := mineFromScratch(t, foldOps(initial, sent[:recOps]), testMinSup, testFloor)
				if got := rec.View().Canonical(); !bytes.Equal(got, wantCanon) {
					t.Fatalf("recovered canonical bytes diverge at ops %d", recOps)
				}
			})
		}
	}
}

// failAfterFS delegates to an inner FS but makes every sync fail once n
// syncs have succeeded — a deterministic disk failure mid-flight.
type failAfterFS struct {
	wal.FS
	mu    sync.Mutex
	left  int
	errlo error
}

func (f *failAfterFS) Create(name string) (wal.File, error) {
	file, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &failAfterFile{fs: f, File: file}, nil
}

type failAfterFile struct {
	fs *failAfterFS
	wal.File
}

func (ff *failAfterFile) Sync() error {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if ff.fs.left <= 0 {
		return ff.fs.errlo
	}
	ff.fs.left--
	return ff.File.Sync()
}

// TestDurableFailStop: after the first sync failure nothing further is
// acknowledged (every Enqueue errors), reads keep serving, and a
// restart over the underlying directory recovers exactly the acked
// prefix.
func TestDurableFailStop(t *testing.T) {
	mem := wal.NewMemFS()
	injected := errors.New("disk on fire")
	// Budget: 1 sync for wal.Open's segment header, 1 for the initial
	// snapshot rotation... the snapshot path needs several (new segment,
	// snapshot file). Give it 10, then enqueue until the failure lands.
	ffs := &failAfterFS{FS: mem, left: 10, errlo: injected}
	rows := fixtureRows(30, 12, 7)
	srv := newTestServer(t, rows, Config{FS: ffs, SnapshotEvery: -1})
	ctx := context.Background()
	var acked []Op
	sawFailure := false
	for i := 0; i < 40; i++ {
		op := Op{Kind: OpAppend, Items: []int{i % 5, 10}}
		err := srv.Enqueue(ctx, op)
		if err == nil {
			if sawFailure {
				t.Fatalf("enqueue %d succeeded after a wal failure", i)
			}
			acked = append(acked, op)
			continue
		}
		if !errors.Is(err, wal.ErrWALFailed) {
			t.Fatalf("enqueue %d: %v (want ErrWALFailed)", i, err)
		}
		sawFailure = true
	}
	if !sawFailure {
		t.Fatal("sync failure never surfaced")
	}
	if srv.Stats().WALErrors == 0 {
		t.Fatal("WALErrors not counted")
	}
	// Reads still serve the last published view.
	if _, _, err := srv.TopRules(RulesQuery{K: 5}); err != nil {
		t.Fatalf("reads broken after fail-stop: %v", err)
	}
	srv.Close()

	restarted, err := New(nil, Config{MinSupport: testMinSup, RuleFloor: testFloor,
		MaintainAfter: manualTrigger, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	recOps, _ := restarted.Recovered()
	if recOps < uint64(len(acked)) {
		t.Fatalf("recovered %d < acked %d", recOps, len(acked))
	}
	wantCanon, _ := mineFromScratch(t, foldOps(rows, acked), testMinSup, testFloor)
	// Recovery may include ops beyond the acked prefix only if they were
	// fully written; with sync-failure-only faults every append landed,
	// so the recovered fold must equal the acked fold extended by the
	// unacked writes that still hit the file. Recompute against the
	// actual recovered count instead of assuming.
	if recOps > uint64(len(acked)) {
		t.Logf("recovered %d ops, acked %d (unacked writes survived in the page cache model)", recOps, len(acked))
	}
	_ = wantCanon
	allSent := make([]Op, 0, 40)
	for i := 0; i < 40; i++ {
		allSent = append(allSent, Op{Kind: OpAppend, Items: []int{i % 5, 10}})
	}
	wantCanon, _ = mineFromScratch(t, foldOps(rows, allSent[:recOps]), testMinSup, testFloor)
	if got := restarted.View().Canonical(); !bytes.Equal(got, wantCanon) {
		t.Fatalf("recovered canonical bytes diverge")
	}
}

// TestDurableEmptyStartIsNotRecovered: a fresh durable server with no
// initial data reports no recovered state and starts ready.
func TestDurableEmptyStartIsNotRecovered(t *testing.T) {
	srv := newTestServer(t, nil, Config{FS: wal.NewMemFS()})
	if _, found := srv.Recovered(); found {
		t.Fatal("fresh directory reported prior state")
	}
	if !srv.Ready() {
		t.Fatal("fresh server not ready")
	}
}
