package serve

import (
	"errors"
	"net/url"
	"reflect"
	"testing"
)

// FuzzParseRulesQuery drives the HTTP query parser with arbitrary query
// strings: it must never panic, every accepted query must be a fixpoint
// of normalize (so cache keys are stable), and every rejection must wrap
// ErrBadQuery (the 400 class) — never anything the handler would turn
// into a 500.
func FuzzParseRulesQuery(f *testing.F) {
	seeds := []string{
		"",
		"k=5&by=lift",
		"k=0&by=confidence&minconf=0.5",
		"antecedent=1,2,3&k=100",
		"antecedent=3+1++2",
		"by=support&minconf=1",
		"k=-1",
		"k=99999999999999999999",
		"by=BOGUS",
		"minconf=NaN",
		"minconf=+Inf",
		"minconf=1e-300",
		"antecedent=-1",
		"antecedent=,,,",
		"antecedent=1,9223372036854775808",
		"k=5&k=7",
		"%zz=bad",
		"antecedent=%31%2C%32",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		values, err := url.ParseQuery(raw)
		if err != nil {
			t.Skip()
		}
		q, err := ParseRulesQuery(values)
		if err != nil {
			if !errors.Is(err, ErrBadQuery) {
				t.Fatalf("rejection %v does not wrap ErrBadQuery", err)
			}
			return
		}
		again, err := q.normalize()
		if err != nil {
			t.Fatalf("accepted query %+v fails re-normalization: %v", q, err)
		}
		if !reflect.DeepEqual(q, again) {
			t.Fatalf("normalize is not a fixpoint: %+v != %+v", q, again)
		}
		if q.key() != again.key() {
			t.Fatalf("cache key unstable for %+v", q)
		}
		if q.K < 1 || q.K > MaxTopK {
			t.Fatalf("accepted query has out-of-bounds K %d", q.K)
		}
		for i, it := range q.Antecedent {
			if it < 0 || (i > 0 && q.Antecedent[i-1] >= it) {
				t.Fatalf("accepted antecedent not sorted/deduped/non-negative: %v", q.Antecedent)
			}
		}
	})
}

// FuzzParseItems drives the item-list parser: no panics, rejections wrap
// ErrBadQuery, accepted lists contain only non-negative ids within the
// documented bound.
func FuzzParseItems(f *testing.F) {
	seeds := []string{
		"",
		"1,2,3",
		"3 1\t2",
		"0",
		"-5",
		"1,,2",
		"9999999999999999999999",
		"1;2",
		"a b",
		" 7 ",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		items, err := ParseItems(raw)
		if err != nil {
			if !errors.Is(err, ErrBadQuery) {
				t.Fatalf("rejection %v does not wrap ErrBadQuery", err)
			}
			return
		}
		if len(items) > maxQueryItems {
			t.Fatalf("accepted %d items over the %d limit", len(items), maxQueryItems)
		}
		for _, it := range items {
			if it < 0 {
				t.Fatalf("accepted negative item %d", it)
			}
		}
		if _, err := normalizeItems(items); err != nil {
			t.Fatalf("accepted items %v fail normalization: %v", items, err)
		}
	})
}
