// Package serve is the long-running query tier over mining.Session: the
// piece that turns the incremental/distributed mining library into a
// service handling thousands of concurrent readers while an update
// stream runs.
//
// # Snapshot-consistency contract
//
// The server separates one writer from many readers. A single ingest
// goroutine drains a bounded queue of Ops (appends and deletes) into the
// session and triggers Maintain on a dirty-op threshold or a timer. Each
// completed Maintain publishes an immutable View — version, maintained
// Result, the rule set at the configured confidence floor, and the
// result's canonical bytes — behind one atomic pointer swap
// (copy-on-write). Readers load the pointer and never take a lock, so
// queries never block the maintainer and the maintainer never blocks
// queries. The contract, pinned by the concurrency property tests:
//
//   - every published View is internally consistent: its Result and rules
//     are byte-identical to a from-scratch mine over the store's contents
//     after exactly View.Ops() queue operations were applied;
//   - versions are strictly monotone: a reader that observed version v
//     never later observes a version < v;
//   - a View, once obtained, never changes — readers may hold it across
//     any number of concurrent Maintains.
//
// Query results (top-k rules, recommendations) are cached in a small LRU
// keyed on (view version, normalized query), so a version bump can never
// serve a stale entry: the new version misses by construction.
//
// # Durability
//
// With Config.DataDir (or a test FS) set, the server writes every op to
// an internal/wal write-ahead log *before* applying or acknowledging it:
// the ingest goroutine drains a batch from the queue, appends all of it
// to the log, fsyncs once (under wal.SyncAlways — the group commit that
// amortizes fsync latency across concurrent writers), and only then
// applies the ops and unblocks their Enqueue calls. Crash recovery in
// New loads the newest valid snapshot, replays the log tail through the
// same apply path the live stream uses, and — because a store-rejected
// op advances the op sequence in both paths — reconstructs exactly the
// fold of the persisted op prefix. Flush implies fsync; Close drains the
// queue, syncs, and writes a final snapshot. The first write or sync
// error makes the log fail-stop: every later Enqueue returns the error
// and nothing more is acknowledged (retrying a failed fsync silently
// drops data on most kernels), while reads keep serving the last
// published view.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transactions"
	"repro/internal/wal"
	"repro/mining"
)

// Defaults applied by New when the corresponding Config field is zero.
const (
	// DefaultRuleFloor is the confidence floor of the published rule set.
	DefaultRuleFloor = 0.5
	// DefaultQueueSize bounds the ingest queue; Enqueue blocks when full.
	DefaultQueueSize = 1024
	// DefaultMaintainAfter is the dirty-op count that triggers a Maintain.
	DefaultMaintainAfter = 256
	// DefaultCacheSize is the query-result LRU's entry capacity.
	DefaultCacheSize = 512
	// DefaultSnapshotEvery is the op count between WAL snapshots.
	DefaultSnapshotEvery = 4096
	// DefaultFsyncEvery is the sync period under wal.SyncInterval.
	DefaultFsyncEvery = 100 * time.Millisecond
)

// Errors returned by the server.
var (
	// ErrServerClosed reports use of a server after Close.
	ErrServerClosed = errors.New("serve: server is closed")
	// ErrBadQuery reports an invalid query (unknown rank key, negative
	// top-k, malformed item list); HTTP handlers map it to 400.
	ErrBadQuery = errors.New("serve: invalid query")
	// ErrBadConfig reports an invalid Config field.
	ErrBadConfig = errors.New("serve: invalid config")
)

// OpKind selects an ingest mutation.
type OpKind int

// The two ingest mutations, mirroring Session.Append and Session.DeleteAt.
const (
	// OpAppend appends Op.Items as one transaction.
	OpAppend OpKind = iota
	// OpDelete deletes the live transaction with id Op.TID.
	OpDelete
)

// Op is one queued store mutation. Ops are applied in queue order by the
// single ingest goroutine; an op that the store rejects (negative item
// ids, an out-of-range TID) is counted in Stats.IngestErrors and dropped
// — it still advances the op sequence, so replay-based verification must
// mirror the same skip. The WAL persists rejected ops too, verbatim, for
// the same reason: replay must skip exactly where the live stream did.
type Op struct {
	// Kind selects the mutation.
	Kind OpKind
	// Items is the transaction to append (OpAppend only).
	Items []int
	// TID is the live transaction id to delete (OpDelete only).
	TID int
}

// Config tunes a Server. The zero value of every field selects a
// documented default; Options forwards arbitrary mining options
// (Algorithm, Workers, Transport, ShardCap, TrackSlack...) to the
// underlying session, which is how a serving tier fans counting out to
// distributed workers.
type Config struct {
	// MinSupport is the session's relative minimum support
	// (0 = mining.DefaultMinSupport).
	MinSupport float64
	// RuleFloor is the minimum confidence of the published rule set in
	// (0, 1] (0 = DefaultRuleFloor). Queries filter at or above it; a
	// query asking below the floor is answered from the floor set.
	RuleFloor float64
	// QueueSize bounds the ingest queue (0 = DefaultQueueSize).
	QueueSize int
	// MaintainAfter triggers a Maintain once that many ops were applied
	// since the last publish (0 = DefaultMaintainAfter).
	MaintainAfter int
	// MaintainEvery additionally triggers a Maintain on a timer when at
	// least one op is pending (0 = no timer).
	MaintainEvery time.Duration
	// CacheSize is the query-result LRU capacity in entries
	// (0 = DefaultCacheSize; negative disables caching).
	CacheSize int
	// DataDir enables durability: the directory holding the write-ahead
	// log and snapshots. Empty (and FS nil) keeps the server in-memory
	// only. New recovers whatever state the directory holds before
	// serving; an initial db is used only when the directory is fresh.
	DataDir string
	// Fsync is the WAL sync policy (zero value wal.SyncAlways: sync
	// before acknowledging — no acked op can be lost to a crash).
	Fsync wal.SyncPolicy
	// FsyncEvery is the sync period under wal.SyncInterval
	// (0 = DefaultFsyncEvery).
	FsyncEvery time.Duration
	// SnapshotEvery writes a WAL snapshot (and truncates the log) every
	// that many ops (0 = DefaultSnapshotEvery; negative disables
	// periodic snapshots — the log grows until Close).
	SnapshotEvery int
	// FS overrides the WAL filesystem — the fault-injection and crash
	// property tests' hook. When set, DataDir is ignored.
	FS wal.FS
	// Options are extra mining options for the session.
	Options []mining.Option
}

// withDefaults resolves zero fields and validates the rest.
func (c Config) withDefaults() (Config, error) {
	if c.MinSupport == 0 {
		c.MinSupport = mining.DefaultMinSupport
	}
	if c.RuleFloor == 0 {
		c.RuleFloor = DefaultRuleFloor
	}
	if c.RuleFloor < 0 || c.RuleFloor > 1 {
		return c, fmt.Errorf("%w: RuleFloor %v outside (0, 1]", ErrBadConfig, c.RuleFloor)
	}
	if c.QueueSize == 0 {
		c.QueueSize = DefaultQueueSize
	}
	if c.QueueSize < 0 {
		return c, fmt.Errorf("%w: negative QueueSize %d", ErrBadConfig, c.QueueSize)
	}
	if c.MaintainAfter == 0 {
		c.MaintainAfter = DefaultMaintainAfter
	}
	if c.MaintainAfter < 0 {
		return c, fmt.Errorf("%w: negative MaintainAfter %d", ErrBadConfig, c.MaintainAfter)
	}
	if c.MaintainEvery < 0 {
		return c, fmt.Errorf("%w: negative MaintainEvery %v", ErrBadConfig, c.MaintainEvery)
	}
	if c.CacheSize == 0 {
		c.CacheSize = DefaultCacheSize
	}
	switch c.Fsync {
	case wal.SyncAlways, wal.SyncInterval, wal.SyncNever:
	default:
		return c, fmt.Errorf("%w: unknown Fsync policy %d", ErrBadConfig, int(c.Fsync))
	}
	if c.FsyncEvery < 0 {
		return c, fmt.Errorf("%w: negative FsyncEvery %v", ErrBadConfig, c.FsyncEvery)
	}
	if c.FsyncEvery == 0 {
		c.FsyncEvery = DefaultFsyncEvery
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = DefaultSnapshotEvery
	}
	return c, nil
}

// View is one immutable published snapshot: a version-stamped frequent
// set plus its rule set. Readers obtain one with Server.View (or
// implicitly through the query methods) and may hold it indefinitely —
// it never changes after publication. A View with Empty() true reports
// an empty store (version 0 before the first publish, or the store was
// drained by deletes).
type View struct {
	version uint64
	ops     uint64
	numTx   int
	stats   mining.MaintainStats
	res     *mining.Result
	rules   []mining.Rule
	canon   []byte
}

// Version is the publish sequence number, strictly increasing from 1
// (0 is the pre-first-publish empty view).
func (v *View) Version() uint64 { return v.version }

// Ops is the number of queue operations consumed when this view was
// mined — the replay point for from-scratch verification.
func (v *View) Ops() uint64 { return v.ops }

// NumTx is the number of live transactions mined into this view.
func (v *View) NumTx() int { return v.numTx }

// MaintainStats reports the work of the Maintain that produced this view.
func (v *View) MaintainStats() mining.MaintainStats { return v.stats }

// Empty reports whether the view holds no mined result (empty store).
func (v *View) Empty() bool { return v.res == nil }

// Rules returns the published rule set at the server's confidence floor,
// in assoc.GenerateRules order (confidence desc, support desc, antecedent
// order). The slice is shared and read-only.
func (v *View) Rules() []mining.Rule { return v.rules }

// Canonical returns the deterministic byte encoding of the view's
// frequent levels — byte-identical to Result.Canonical of a from-scratch
// mine at this version. The slice is shared and read-only; nil for an
// empty view.
func (v *View) Canonical() []byte { return v.canon }

// Support returns the absolute support of items if the itemset is
// frequent in this view.
func (v *View) Support(items ...int) (int, bool) {
	if v.res == nil {
		return 0, false
	}
	return v.res.Support(items...)
}

// Stats is a point-in-time counter snapshot of a server.
type Stats struct {
	// Version is the current published view's version.
	Version uint64 `json:"version"`
	// NumTx is the current view's transaction count.
	NumTx int `json:"num_tx"`
	// Ops is the number of queue operations consumed so far.
	Ops uint64 `json:"ops"`
	// QueueLen is the current ingest-queue depth.
	QueueLen int `json:"queue_len"`
	// Maintains counts published views; FullRuns counts the ones whose
	// Maintain fell back to a full re-mine.
	Maintains uint64 `json:"maintains"`
	// FullRuns counts maintains that fell back to a full re-mine.
	FullRuns uint64 `json:"full_runs"`
	// IngestErrors counts ops the store rejected.
	IngestErrors uint64 `json:"ingest_errors"`
	// CacheHits and CacheMisses are the query-result LRU counters.
	CacheHits uint64 `json:"cache_hits"`
	// CacheMisses counts cache lookups that had to compute the result.
	CacheMisses uint64 `json:"cache_misses"`
	// Durable reports whether a write-ahead log is attached.
	Durable bool `json:"durable"`
	// RecoveredOps is the op count reconstructed from the WAL at startup.
	RecoveredOps uint64 `json:"recovered_ops"`
	// Snapshots counts WAL snapshots written since startup.
	Snapshots uint64 `json:"snapshots"`
	// WALErrors counts persistence failures; nonzero means the log is
	// fail-stop and ingestion has been refused since the first one.
	WALErrors uint64 `json:"wal_errors"`
	// Panics counts HTTP handler panics recovered into 500 responses.
	Panics uint64 `json:"panics"`
}

// Server is the long-running query tier: one ingest goroutine feeding a
// mining.Session, an atomically swapped immutable View for readers, and
// a version-keyed query cache. All methods are safe for concurrent use;
// the query methods never block on ingestion or maintenance.
type Server struct {
	cfg     Config
	session *mining.Session
	view    atomic.Pointer[View]
	cache   *lruCache

	ops     chan queued
	flushCh chan chan flushReply
	quit    chan struct{}
	done    chan struct{}
	closeMu sync.Mutex
	closed  bool

	log          *wal.Log
	lastSnapOps  uint64 // ingest-goroutine owned after New
	recovered    bool
	recoveredOps uint64
	ready        atomic.Bool

	consumed     atomic.Uint64
	maintains    atomic.Uint64
	fullRuns     atomic.Uint64
	ingestErrors atomic.Uint64
	walErrors    atomic.Uint64
	snapshots    atomic.Uint64
	panics       atomic.Uint64
}

// queued is one op in flight through the ingest queue, with the ack
// channel a durable Enqueue blocks on (nil for fire-and-forget).
type queued struct {
	op  Op
	ack chan error
}

// reply delivers the persistence outcome without ever blocking (ack is
// buffered and written exactly once).
func (q queued) reply(err error) {
	if q.ack != nil {
		q.ack <- err
	}
}

// flushReply is the synchronous answer to a Flush request.
type flushReply struct {
	view *View
	err  error
}

// New builds a server over an initial database (nil or empty starts
// empty), publishes the initial view (version 1 when the store is
// non-empty), and starts the ingest loop. Close releases it.
//
// With durability configured, New first recovers the data directory:
// load the newest valid snapshot, replay the log tail through the live
// apply path, truncate at the first torn record. A recovered state takes
// precedence over db — the initial database seeds only a fresh
// directory, where it is immediately snapshotted so that a crash before
// the first periodic snapshot cannot lose it.
func New(db *mining.DB, cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		cache:   newLRUCache(cfg.CacheSize),
		ops:     make(chan queued, cfg.QueueSize),
		flushCh: make(chan chan flushReply),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	var rec *wal.Recovery
	if cfg.FS != nil || cfg.DataDir != "" {
		fsys := cfg.FS
		if fsys == nil {
			if fsys, err = wal.DirFS(cfg.DataDir); err != nil {
				return nil, fmt.Errorf("serve: data dir: %w", err)
			}
		}
		if s.log, rec, err = wal.Open(fsys, wal.Options{Policy: cfg.Fsync}); err != nil {
			return nil, fmt.Errorf("serve: opening wal: %w", err)
		}
	}
	if rec != nil && (rec.Snapshot != nil || rec.Ops > 0) {
		// The directory has state: it wins over the caller's initial db.
		s.recovered = true
		rows := make([][]int, len(rec.Snapshot))
		for i, tx := range rec.Snapshot {
			rows[i] = tx
		}
		if db, err = mining.NewDB(rows); err != nil {
			s.log.Close()
			return nil, fmt.Errorf("serve: recovered snapshot: %w", err)
		}
	}
	opts := append([]mining.Option{mining.MinSupport(cfg.MinSupport)}, cfg.Options...)
	session, err := mining.NewSession(db, opts...)
	if err != nil {
		if s.log != nil {
			s.log.Close()
		}
		return nil, err
	}
	s.session = session
	s.publish(&View{}) // version 0: empty until the first maintain
	fail := func(err error) (*Server, error) {
		session.Close()
		if s.log != nil {
			s.log.Close()
		}
		return nil, err
	}
	if rec != nil {
		s.consumed.Store(rec.SnapshotOps)
		s.lastSnapOps = rec.SnapshotOps
		for _, op := range rec.Tail {
			s.apply(Op{Kind: OpKind(op.Kind), Items: op.Items, TID: op.TID})
		}
		s.recoveredOps = s.consumed.Load()
		switch {
		case !s.recovered && db.Len() > 0:
			// Fresh directory seeded from db: snapshot it now, or a crash
			// before the first periodic snapshot would recover empty.
			if err := s.writeSnapshot(); err != nil {
				return fail(fmt.Errorf("serve: initial snapshot: %w", err))
			}
		case rec.Truncated || rec.Ops > rec.SnapshotOps:
			// Compact the replayed tail so the next recovery starts from
			// here. Best-effort: failure just means a longer replay.
			//lint:ignore invcheck/walfailstop startup compaction is best-effort by design — writeSnapshot counts its own failures in walErrors and the longer replay tail stays authoritative
			s.writeSnapshot()
		}
	}
	if db.Len() > 0 || s.consumed.Load() > 0 {
		if err := s.maintainPublish(context.Background()); err != nil {
			return fail(err)
		}
	}
	s.ready.Store(true)
	//lint:ignore invcheck/goroutines loop is joined by Close, which signals s.quit and blocks on <-s.done until the goroutine exits
	go s.loop()
	return s, nil
}

// View returns the current published view (never nil).
func (s *Server) View() *View { return s.view.Load() }

// publish swaps the served view pointer. It is the only function that
// may store s.view (enforced by the invcheck atomicpublish analyzer):
// readers dereference the pointer exactly once and the query cache
// keys on the view's version, so centralizing the swap is what keeps
// version monotonicity and ops stamping auditable.
func (s *Server) publish(v *View) { s.view.Store(v) }

// Ready reports whether startup — WAL recovery, tail replay and the
// first publish — has completed. The HTTP readiness endpoint serves 503
// until it returns true.
func (s *Server) Ready() bool { return s.ready.Load() }

// Durable reports whether a write-ahead log is attached.
func (s *Server) Durable() bool { return s.log != nil }

// Recovered reports the op count reconstructed from the WAL at startup
// and whether the data directory held any prior state (in which case the
// initial database passed to New was ignored).
func (s *Server) Recovered() (ops uint64, found bool) {
	return s.recoveredOps, s.recovered
}

// Stats returns a point-in-time counter snapshot.
func (s *Server) Stats() Stats {
	v := s.View()
	hits, misses := s.cache.counters()
	return Stats{
		Version:      v.Version(),
		NumTx:        v.NumTx(),
		Ops:          s.consumed.Load(),
		QueueLen:     len(s.ops),
		Maintains:    s.maintains.Load(),
		FullRuns:     s.fullRuns.Load(),
		IngestErrors: s.ingestErrors.Load(),
		CacheHits:    hits,
		CacheMisses:  misses,
		Durable:      s.log != nil,
		RecoveredOps: s.recoveredOps,
		Snapshots:    s.snapshots.Load(),
		WALErrors:    s.walErrors.Load(),
		Panics:       s.panics.Load(),
	}
}

// Enqueue adds one op to the bounded ingest queue, blocking while the
// queue is full (backpressure). It returns ErrServerClosed after Close
// and ctx.Err() if the context ends first.
//
// Without durability the call returns as soon as the op is queued. With
// a WAL attached it blocks until the op is persisted per the sync policy
// — a nil return under wal.SyncAlways means the op is fsynced and cannot
// be lost — and returns the persistence error otherwise (after the log
// fail-stops, every call errors). A context cancellation while waiting
// for the ack leaves the op in flight: it may still be applied.
func (s *Server) Enqueue(ctx context.Context, op Op) error {
	select {
	case <-s.quit:
		return ErrServerClosed
	default:
	}
	q := queued{op: op}
	if s.log != nil {
		q.ack = make(chan error, 1)
	}
	select {
	case s.ops <- q:
	case <-s.quit:
		return ErrServerClosed
	case <-ctx.Done():
		return ctx.Err()
	}
	if q.ack == nil {
		return nil
	}
	select {
	case err := <-q.ack:
		return err
	case <-s.done:
		// The loop exited; Close's drain acks everything it ingested.
		select {
		case err := <-q.ack:
			return err
		default:
			return ErrServerClosed
		}
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Flush synchronously drains the queue and, if any op was applied since
// the last publish (or nothing was ever published), runs one Maintain
// and publishes the resulting view — the deterministic trigger tests and
// bulk loads use. With a WAL attached, Flush implies fsync: every op it
// drained is durable before it returns. It returns the now-current view.
func (s *Server) Flush(ctx context.Context) (*View, error) {
	reply := make(chan flushReply, 1)
	select {
	case s.flushCh <- reply:
	case <-s.quit:
		return nil, ErrServerClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case r := <-reply:
		return r.view, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close stops the ingest loop and releases the session. With a WAL
// attached the shutdown is a graceful drain: queued ops are persisted,
// applied and acknowledged, the log is synced, a final snapshot written,
// and the log closed. It is idempotent.
func (s *Server) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return nil
	}
	s.closed = true
	close(s.quit)
	s.closeMu.Unlock()
	<-s.done
	return s.session.Close()
}

// loop is the single ingest goroutine: it owns every session mutation
// and every log write after New.
func (s *Server) loop() {
	defer close(s.done)
	var tick <-chan time.Time
	if s.cfg.MaintainEvery > 0 {
		t := time.NewTicker(s.cfg.MaintainEvery)
		defer t.Stop()
		tick = t.C
	}
	var syncTick <-chan time.Time
	if s.log != nil && s.cfg.Fsync == wal.SyncInterval {
		t := time.NewTicker(s.cfg.FsyncEvery)
		defer t.Stop()
		syncTick = t.C
	}
	dirty := 0
	for {
		select {
		case q := <-s.ops:
			batch := append([]queued{q}, s.drainQueued()...)
			dirty += s.ingest(batch)
			s.maybeSnapshot()
			if dirty >= s.cfg.MaintainAfter {
				if s.maintainPublish(context.Background()) == nil {
					dirty = 0
				}
			}
		case <-syncTick:
			if err := s.log.Sync(); err != nil {
				s.walErrors.Add(1)
			}
		case <-tick:
			if dirty > 0 {
				if s.maintainPublish(context.Background()) == nil {
					dirty = 0
				}
			}
		case reply := <-s.flushCh:
			dirty += s.ingest(s.drainQueued())
			var err error
			if s.log != nil {
				if err = s.log.Sync(); err != nil {
					s.walErrors.Add(1)
				}
			}
			if err == nil && (dirty > 0 || s.View().Version() == 0) {
				if err = s.maintainPublish(context.Background()); err == nil {
					dirty = 0
				}
			}
			s.maybeSnapshot()
			reply <- flushReply{view: s.View(), err: err}
		case <-s.quit:
			s.shutdown()
			return
		}
	}
}

// shutdown is the graceful drain on Close: ingest what is already
// queued (persisting and acking it), then sync, snapshot and close the
// log.
func (s *Server) shutdown() {
	s.ingest(s.drainQueued())
	if s.log == nil {
		return
	}
	if err := s.log.Sync(); err != nil {
		s.walErrors.Add(1)
	} else if s.consumed.Load() > s.lastSnapOps {
		//lint:ignore invcheck/walfailstop shutdown compaction is best-effort — every acked op is already synced above, writeSnapshot counts failures in walErrors, and recovery replays the un-compacted tail
		s.writeSnapshot()
	}
	if err := s.log.Close(); err != nil {
		s.walErrors.Add(1)
	}
}

// drainQueued consumes every op already sitting in the queue without
// blocking — the ingest batch.
func (s *Server) drainQueued() []queued {
	var batch []queued
	for {
		select {
		case q := <-s.ops:
			batch = append(batch, q)
		default:
			return batch
		}
	}
}

// ingest is the group commit: persist the whole batch to the log, sync
// once (under wal.SyncAlways), then apply and acknowledge. If any
// persistence step fails, the entire batch is rejected — nothing is
// applied, every waiter gets the error — because the log is fail-stop
// and acknowledging unpersisted ops would break the durability contract.
// Returns the number of ops that changed the store.
func (s *Server) ingest(batch []queued) int {
	if len(batch) == 0 {
		return 0
	}
	var perr error
	if s.log != nil {
		for _, q := range batch {
			op := q.op
			if _, err := s.log.Append(wal.Op{Kind: int(op.Kind), Items: op.Items, TID: op.TID}); err != nil {
				perr = err
				break
			}
		}
		if perr == nil && s.cfg.Fsync == wal.SyncAlways {
			perr = s.log.Sync()
		}
	}
	applied := 0
	for _, q := range batch {
		if perr != nil {
			s.walErrors.Add(1)
			q.reply(perr)
			continue
		}
		applied += s.apply(q.op)
		q.reply(nil)
	}
	return applied
}

// apply performs one op against the session, returning 1 if the store
// changed and 0 if the store rejected the op (counted, dropped). Either
// way the op sequence advances. Recovery replays the WAL tail through
// this same path, so live and replayed streams skip identically.
func (s *Server) apply(op Op) int {
	s.consumed.Add(1)
	var err error
	switch op.Kind {
	case OpAppend:
		err = s.session.Append(op.Items...)
	case OpDelete:
		_, err = s.session.DeleteAt(op.TID)
	default:
		err = fmt.Errorf("serve: unknown op kind %d", op.Kind)
	}
	if err != nil {
		s.ingestErrors.Add(1)
		return 0
	}
	return 1
}

// maybeSnapshot writes a WAL snapshot when SnapshotEvery ops have
// accumulated since the last one.
func (s *Server) maybeSnapshot() {
	if s.log == nil || s.cfg.SnapshotEvery <= 0 {
		return
	}
	if s.consumed.Load()-s.lastSnapOps >= uint64(s.cfg.SnapshotEvery) {
		//lint:ignore invcheck/walfailstop periodic compaction is best-effort — acked ops are durable in the log, writeSnapshot counts failures in walErrors, and the previous snapshot stays authoritative
		s.writeSnapshot()
	}
}

// writeSnapshot persists the session's current rows as the fold of the
// consumed op prefix, truncating the log. Errors are counted and leave
// the previous snapshot authoritative.
func (s *Server) writeSnapshot() error {
	rows := s.session.Snapshot().Rows()
	txs := make([]transactions.Itemset, len(rows))
	for i, r := range rows {
		txs[i] = transactions.Itemset(r)
	}
	ops := s.consumed.Load()
	if err := s.log.Snapshot(txs, ops); err != nil {
		s.walErrors.Add(1)
		return err
	}
	s.lastSnapOps = ops
	s.snapshots.Add(1)
	return nil
}

// maintainPublish runs one Maintain over the session and publishes the
// immutable result view. An empty store publishes an empty view (readers
// must never keep seeing deleted data); any other error leaves the
// current view in place for the next trigger to retry.
func (s *Server) maintainPublish(ctx context.Context) error {
	prev := s.view.Load()
	ops := s.consumed.Load()
	res, mstats, err := s.session.Maintain(ctx)
	if err != nil {
		if errors.Is(err, mining.ErrEmptyDB) {
			s.publish(&View{version: prev.version + 1, ops: ops, stats: mstats})
			s.maintains.Add(1)
			return nil
		}
		s.ingestErrors.Add(1)
		return err
	}
	rules, err := s.session.Rules(s.cfg.RuleFloor)
	if err != nil {
		s.ingestErrors.Add(1)
		return err
	}
	s.publish(&View{
		version: prev.version + 1,
		ops:     ops,
		numTx:   res.NumTx(),
		stats:   mstats,
		res:     res,
		rules:   rules,
		canon:   res.Canonical(),
	})
	s.maintains.Add(1)
	if mstats.FullRun {
		s.fullRuns.Add(1)
	}
	return nil
}
