// Package serve is the long-running query tier over mining.Session: the
// piece that turns the incremental/distributed mining library into a
// service handling thousands of concurrent readers while an update
// stream runs.
//
// # Snapshot-consistency contract
//
// The server separates one writer from many readers. A single ingest
// goroutine drains a bounded queue of Ops (appends and deletes) into the
// session and triggers Maintain on a dirty-op threshold or a timer. Each
// completed Maintain publishes an immutable View — version, maintained
// Result, the rule set at the configured confidence floor, and the
// result's canonical bytes — behind one atomic pointer swap
// (copy-on-write). Readers load the pointer and never take a lock, so
// queries never block the maintainer and the maintainer never blocks
// queries. The contract, pinned by the concurrency property tests:
//
//   - every published View is internally consistent: its Result and rules
//     are byte-identical to a from-scratch mine over the store's contents
//     after exactly View.Ops() queue operations were applied;
//   - versions are strictly monotone: a reader that observed version v
//     never later observes a version < v;
//   - a View, once obtained, never changes — readers may hold it across
//     any number of concurrent Maintains.
//
// Query results (top-k rules, recommendations) are cached in a small LRU
// keyed on (view version, normalized query), so a version bump can never
// serve a stale entry: the new version misses by construction.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/mining"
)

// Defaults applied by New when the corresponding Config field is zero.
const (
	// DefaultRuleFloor is the confidence floor of the published rule set.
	DefaultRuleFloor = 0.5
	// DefaultQueueSize bounds the ingest queue; Enqueue blocks when full.
	DefaultQueueSize = 1024
	// DefaultMaintainAfter is the dirty-op count that triggers a Maintain.
	DefaultMaintainAfter = 256
	// DefaultCacheSize is the query-result LRU's entry capacity.
	DefaultCacheSize = 512
)

// Errors returned by the server.
var (
	// ErrServerClosed reports use of a server after Close.
	ErrServerClosed = errors.New("serve: server is closed")
	// ErrBadQuery reports an invalid query (unknown rank key, negative
	// top-k, malformed item list); HTTP handlers map it to 400.
	ErrBadQuery = errors.New("serve: invalid query")
	// ErrBadConfig reports an invalid Config field.
	ErrBadConfig = errors.New("serve: invalid config")
)

// OpKind selects an ingest mutation.
type OpKind int

// The two ingest mutations, mirroring Session.Append and Session.DeleteAt.
const (
	// OpAppend appends Op.Items as one transaction.
	OpAppend OpKind = iota
	// OpDelete deletes the live transaction with id Op.TID.
	OpDelete
)

// Op is one queued store mutation. Ops are applied in queue order by the
// single ingest goroutine; an op that the store rejects (negative item
// ids, an out-of-range TID) is counted in Stats.IngestErrors and dropped
// — it still advances the op sequence, so replay-based verification must
// mirror the same skip.
type Op struct {
	// Kind selects the mutation.
	Kind OpKind
	// Items is the transaction to append (OpAppend only).
	Items []int
	// TID is the live transaction id to delete (OpDelete only).
	TID int
}

// Config tunes a Server. The zero value of every field selects a
// documented default; Options forwards arbitrary mining options
// (Algorithm, Workers, Transport, ShardCap, TrackSlack...) to the
// underlying session, which is how a serving tier fans counting out to
// distributed workers.
type Config struct {
	// MinSupport is the session's relative minimum support
	// (0 = mining.DefaultMinSupport).
	MinSupport float64
	// RuleFloor is the minimum confidence of the published rule set in
	// (0, 1] (0 = DefaultRuleFloor). Queries filter at or above it; a
	// query asking below the floor is answered from the floor set.
	RuleFloor float64
	// QueueSize bounds the ingest queue (0 = DefaultQueueSize).
	QueueSize int
	// MaintainAfter triggers a Maintain once that many ops were applied
	// since the last publish (0 = DefaultMaintainAfter).
	MaintainAfter int
	// MaintainEvery additionally triggers a Maintain on a timer when at
	// least one op is pending (0 = no timer).
	MaintainEvery time.Duration
	// CacheSize is the query-result LRU capacity in entries
	// (0 = DefaultCacheSize; negative disables caching).
	CacheSize int
	// Options are extra mining options for the session.
	Options []mining.Option
}

// withDefaults resolves zero fields and validates the rest.
func (c Config) withDefaults() (Config, error) {
	if c.MinSupport == 0 {
		c.MinSupport = mining.DefaultMinSupport
	}
	if c.RuleFloor == 0 {
		c.RuleFloor = DefaultRuleFloor
	}
	if c.RuleFloor < 0 || c.RuleFloor > 1 {
		return c, fmt.Errorf("%w: RuleFloor %v outside (0, 1]", ErrBadConfig, c.RuleFloor)
	}
	if c.QueueSize == 0 {
		c.QueueSize = DefaultQueueSize
	}
	if c.QueueSize < 0 {
		return c, fmt.Errorf("%w: negative QueueSize %d", ErrBadConfig, c.QueueSize)
	}
	if c.MaintainAfter == 0 {
		c.MaintainAfter = DefaultMaintainAfter
	}
	if c.MaintainAfter < 0 {
		return c, fmt.Errorf("%w: negative MaintainAfter %d", ErrBadConfig, c.MaintainAfter)
	}
	if c.MaintainEvery < 0 {
		return c, fmt.Errorf("%w: negative MaintainEvery %v", ErrBadConfig, c.MaintainEvery)
	}
	if c.CacheSize == 0 {
		c.CacheSize = DefaultCacheSize
	}
	return c, nil
}

// View is one immutable published snapshot: a version-stamped frequent
// set plus its rule set. Readers obtain one with Server.View (or
// implicitly through the query methods) and may hold it indefinitely —
// it never changes after publication. A View with Empty() true reports
// an empty store (version 0 before the first publish, or the store was
// drained by deletes).
type View struct {
	version uint64
	ops     uint64
	numTx   int
	stats   mining.MaintainStats
	res     *mining.Result
	rules   []mining.Rule
	canon   []byte
}

// Version is the publish sequence number, strictly increasing from 1
// (0 is the pre-first-publish empty view).
func (v *View) Version() uint64 { return v.version }

// Ops is the number of queue operations consumed when this view was
// mined — the replay point for from-scratch verification.
func (v *View) Ops() uint64 { return v.ops }

// NumTx is the number of live transactions mined into this view.
func (v *View) NumTx() int { return v.numTx }

// MaintainStats reports the work of the Maintain that produced this view.
func (v *View) MaintainStats() mining.MaintainStats { return v.stats }

// Empty reports whether the view holds no mined result (empty store).
func (v *View) Empty() bool { return v.res == nil }

// Rules returns the published rule set at the server's confidence floor,
// in assoc.GenerateRules order (confidence desc, support desc, antecedent
// order). The slice is shared and read-only.
func (v *View) Rules() []mining.Rule { return v.rules }

// Canonical returns the deterministic byte encoding of the view's
// frequent levels — byte-identical to Result.Canonical of a from-scratch
// mine at this version. The slice is shared and read-only; nil for an
// empty view.
func (v *View) Canonical() []byte { return v.canon }

// Support returns the absolute support of items if the itemset is
// frequent in this view.
func (v *View) Support(items ...int) (int, bool) {
	if v.res == nil {
		return 0, false
	}
	return v.res.Support(items...)
}

// Stats is a point-in-time counter snapshot of a server.
type Stats struct {
	// Version is the current published view's version.
	Version uint64 `json:"version"`
	// NumTx is the current view's transaction count.
	NumTx int `json:"num_tx"`
	// Ops is the number of queue operations consumed so far.
	Ops uint64 `json:"ops"`
	// QueueLen is the current ingest-queue depth.
	QueueLen int `json:"queue_len"`
	// Maintains counts published views; FullRuns counts the ones whose
	// Maintain fell back to a full re-mine.
	Maintains uint64 `json:"maintains"`
	// FullRuns counts maintains that fell back to a full re-mine.
	FullRuns uint64 `json:"full_runs"`
	// IngestErrors counts ops the store rejected.
	IngestErrors uint64 `json:"ingest_errors"`
	// CacheHits and CacheMisses are the query-result LRU counters.
	CacheHits uint64 `json:"cache_hits"`
	// CacheMisses counts cache lookups that had to compute the result.
	CacheMisses uint64 `json:"cache_misses"`
}

// Server is the long-running query tier: one ingest goroutine feeding a
// mining.Session, an atomically swapped immutable View for readers, and
// a version-keyed query cache. All methods are safe for concurrent use;
// the query methods never block on ingestion or maintenance.
type Server struct {
	cfg     Config
	session *mining.Session
	view    atomic.Pointer[View]
	cache   *lruCache

	ops     chan Op
	flushCh chan chan flushReply
	quit    chan struct{}
	done    chan struct{}
	closeMu sync.Mutex
	closed  bool

	consumed     atomic.Uint64
	maintains    atomic.Uint64
	fullRuns     atomic.Uint64
	ingestErrors atomic.Uint64
}

// flushReply is the synchronous answer to a Flush request.
type flushReply struct {
	view *View
	err  error
}

// New builds a server over an initial database (nil or empty starts
// empty), publishes the initial view (version 1 when db is non-empty),
// and starts the ingest loop. Close releases it.
func New(db *mining.DB, cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	opts := append([]mining.Option{mining.MinSupport(cfg.MinSupport)}, cfg.Options...)
	session, err := mining.NewSession(db, opts...)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		session: session,
		cache:   newLRUCache(cfg.CacheSize),
		ops:     make(chan Op, cfg.QueueSize),
		flushCh: make(chan chan flushReply),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	s.view.Store(&View{}) // version 0: empty until the first publish
	if db.Len() > 0 {
		if err := s.maintainPublish(context.Background()); err != nil {
			session.Close()
			return nil, err
		}
	}
	go s.loop()
	return s, nil
}

// View returns the current published view (never nil).
func (s *Server) View() *View { return s.view.Load() }

// Stats returns a point-in-time counter snapshot.
func (s *Server) Stats() Stats {
	v := s.View()
	hits, misses := s.cache.counters()
	return Stats{
		Version:      v.Version(),
		NumTx:        v.NumTx(),
		Ops:          s.consumed.Load(),
		QueueLen:     len(s.ops),
		Maintains:    s.maintains.Load(),
		FullRuns:     s.fullRuns.Load(),
		IngestErrors: s.ingestErrors.Load(),
		CacheHits:    hits,
		CacheMisses:  misses,
	}
}

// Enqueue adds one op to the bounded ingest queue, blocking while the
// queue is full (backpressure). It returns ErrServerClosed after Close
// and ctx.Err() if the context ends first. The op becomes visible to
// readers only after a later Maintain publishes a new view.
func (s *Server) Enqueue(ctx context.Context, op Op) error {
	select {
	case <-s.quit:
		return ErrServerClosed
	default:
	}
	select {
	case s.ops <- op:
		return nil
	case <-s.quit:
		return ErrServerClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Flush synchronously drains the queue and, if any op was applied since
// the last publish (or nothing was ever published), runs one Maintain
// and publishes the resulting view — the deterministic trigger tests and
// bulk loads use. It returns the now-current view.
func (s *Server) Flush(ctx context.Context) (*View, error) {
	reply := make(chan flushReply, 1)
	select {
	case s.flushCh <- reply:
	case <-s.quit:
		return nil, ErrServerClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case r := <-reply:
		return r.view, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close stops the ingest loop (pending queued ops are dropped) and
// releases the session. It is idempotent.
func (s *Server) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return nil
	}
	s.closed = true
	close(s.quit)
	s.closeMu.Unlock()
	<-s.done
	return s.session.Close()
}

// loop is the single ingest goroutine: it owns every session mutation.
func (s *Server) loop() {
	defer close(s.done)
	var tick <-chan time.Time
	if s.cfg.MaintainEvery > 0 {
		t := time.NewTicker(s.cfg.MaintainEvery)
		defer t.Stop()
		tick = t.C
	}
	dirty := 0
	for {
		select {
		case op := <-s.ops:
			dirty += s.apply(op)
			dirty += s.drainPending()
			if dirty >= s.cfg.MaintainAfter {
				if s.maintainPublish(context.Background()) == nil {
					dirty = 0
				}
			}
		case <-tick:
			if dirty > 0 {
				if s.maintainPublish(context.Background()) == nil {
					dirty = 0
				}
			}
		case reply := <-s.flushCh:
			dirty += s.drainPending()
			var err error
			if dirty > 0 || s.View().Version() == 0 {
				if err = s.maintainPublish(context.Background()); err == nil {
					dirty = 0
				}
			}
			reply <- flushReply{view: s.View(), err: err}
		case <-s.quit:
			return
		}
	}
}

// drainPending consumes every op already sitting in the queue without
// blocking and returns how many were applied — the ingest batch.
func (s *Server) drainPending() int {
	applied := 0
	for {
		select {
		case op := <-s.ops:
			applied += s.apply(op)
		default:
			return applied
		}
	}
}

// apply performs one op against the session, returning 1 if the store
// changed and 0 if the store rejected the op (counted, dropped). Either
// way the op sequence advances.
func (s *Server) apply(op Op) int {
	s.consumed.Add(1)
	var err error
	switch op.Kind {
	case OpAppend:
		err = s.session.Append(op.Items...)
	case OpDelete:
		_, err = s.session.DeleteAt(op.TID)
	default:
		err = fmt.Errorf("serve: unknown op kind %d", op.Kind)
	}
	if err != nil {
		s.ingestErrors.Add(1)
		return 0
	}
	return 1
}

// maintainPublish runs one Maintain over the session and publishes the
// immutable result view. An empty store publishes an empty view (readers
// must never keep seeing deleted data); any other error leaves the
// current view in place for the next trigger to retry.
func (s *Server) maintainPublish(ctx context.Context) error {
	prev := s.view.Load()
	ops := s.consumed.Load()
	res, mstats, err := s.session.Maintain(ctx)
	if err != nil {
		if errors.Is(err, mining.ErrEmptyDB) {
			s.view.Store(&View{version: prev.version + 1, ops: ops, stats: mstats})
			s.maintains.Add(1)
			return nil
		}
		s.ingestErrors.Add(1)
		return err
	}
	rules, err := s.session.Rules(s.cfg.RuleFloor)
	if err != nil {
		s.ingestErrors.Add(1)
		return err
	}
	s.view.Store(&View{
		version: prev.version + 1,
		ops:     ops,
		numTx:   res.NumTx(),
		stats:   mstats,
		res:     res,
		rules:   rules,
		canon:   res.Canonical(),
	})
	s.maintains.Add(1)
	if mstats.FullRun {
		s.fullRuns.Add(1)
	}
	return nil
}
