package serve

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/mining"
)

// testMinSup and testFloor are the thresholds every serve test mines at.
const (
	testMinSup = 0.05
	testFloor  = 0.2
)

// manualTrigger is a MaintainAfter value no test reaches, so Maintain
// runs only when a test calls Flush — the deterministic trigger.
const manualTrigger = 1 << 30

// fixtureRows builds a deterministic correlated workload: item pairs
// (2i, 2i+1) co-occur often, plus uniform noise.
func fixtureRows(n, items int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]int, n)
	for i := range rows {
		var row []int
		pair := rng.Intn(items/2) * 2
		row = append(row, pair, pair+1)
		for j := 0; j < 3; j++ {
			row = append(row, rng.Intn(items))
		}
		rows[i] = row
	}
	return rows
}

// mustDB wraps mining.NewDB.
func mustDB(t *testing.T, rows [][]int) *mining.DB {
	t.Helper()
	db, err := mining.NewDB(rows)
	if err != nil {
		t.Fatalf("NewDB: %v", err)
	}
	return db
}

// newTestServer builds a server over rows with the manual maintain
// trigger and registers cleanup.
func newTestServer(t *testing.T, rows [][]int, cfg Config) *Server {
	t.Helper()
	if cfg.MinSupport == 0 {
		cfg.MinSupport = testMinSup
	}
	if cfg.RuleFloor == 0 {
		cfg.RuleFloor = testFloor
	}
	if cfg.MaintainAfter == 0 {
		cfg.MaintainAfter = manualTrigger
	}
	var db *mining.DB
	if len(rows) > 0 {
		db = mustDB(t, rows)
	}
	srv, err := New(db, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// mineFromScratch mines rows with the facade and returns the canonical
// bytes and the floor rule set — the independent oracle every view is
// checked against.
func mineFromScratch(t *testing.T, rows [][]int, minSup, floor float64) ([]byte, []mining.Rule) {
	t.Helper()
	if len(rows) == 0 {
		return nil, nil
	}
	res, err := mining.Mine(context.Background(), mustDB(t, rows), mining.MinSupport(minSup))
	if err != nil {
		t.Fatalf("from-scratch mine: %v", err)
	}
	rules, err := res.Rules(floor)
	if err != nil {
		t.Fatalf("from-scratch rules: %v", err)
	}
	return res.Canonical(), rules
}

// opModel replays the queue-op semantics on plain rows: appends add a
// row, deletes remove the live row at TID, out-of-range deletes are
// dropped — exactly what Server.apply does to the store.
type opModel struct {
	rows [][]int
}

// apply replays one op.
func (m *opModel) apply(op Op) {
	switch op.Kind {
	case OpAppend:
		m.rows = append(m.rows, op.Items)
	case OpDelete:
		if op.TID >= 0 && op.TID < len(m.rows) {
			m.rows = append(m.rows[:op.TID:op.TID], m.rows[op.TID+1:]...)
		}
	}
}

// snapshotRows returns a copy of the current rows.
func (m *opModel) snapshotRows() [][]int {
	out := make([][]int, len(m.rows))
	copy(out, m.rows)
	return out
}

func TestInitialPublish(t *testing.T) {
	rows := fixtureRows(200, 20, 1)
	srv := newTestServer(t, rows, Config{})
	v := srv.View()
	if v.Version() != 1 {
		t.Fatalf("initial view version = %d, want 1", v.Version())
	}
	if v.Ops() != 0 {
		t.Fatalf("initial view ops = %d, want 0", v.Ops())
	}
	if v.NumTx() != len(rows) {
		t.Fatalf("NumTx = %d, want %d", v.NumTx(), len(rows))
	}
	wantCanon, wantRules := mineFromScratch(t, rows, testMinSup, testFloor)
	if string(v.Canonical()) != string(wantCanon) {
		t.Fatal("initial view diverges from a from-scratch mine")
	}
	if !reflect.DeepEqual(v.Rules(), wantRules) {
		t.Fatal("initial rules diverge from a from-scratch mine")
	}
}

func TestEmptyStartAndIngest(t *testing.T) {
	srv := newTestServer(t, nil, Config{})
	v := srv.View()
	if v.Version() != 0 || !v.Empty() {
		t.Fatalf("empty server start: version %d empty %v, want 0/true", v.Version(), v.Empty())
	}
	if _, ok := v.Support(1); ok {
		t.Fatal("empty view reported a frequent itemset")
	}
	ctx := context.Background()
	rows := fixtureRows(150, 16, 2)
	for _, row := range rows {
		if err := srv.Enqueue(ctx, Op{Kind: OpAppend, Items: row}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	v2, err := srv.Flush(ctx)
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if v2.Version() == 0 || v2.Empty() {
		t.Fatalf("post-ingest view version %d empty %v", v2.Version(), v2.Empty())
	}
	if v2.Ops() != uint64(len(rows)) {
		t.Fatalf("view ops = %d, want %d", v2.Ops(), len(rows))
	}
	wantCanon, _ := mineFromScratch(t, rows, testMinSup, testFloor)
	if string(v2.Canonical()) != string(wantCanon) {
		t.Fatal("ingested view diverges from a from-scratch mine")
	}
}

func TestDeleteToEmptyPublishesEmptyView(t *testing.T) {
	rows := fixtureRows(3, 8, 3)
	srv := newTestServer(t, rows, Config{})
	ctx := context.Background()
	for i := 0; i < len(rows); i++ {
		if err := srv.Enqueue(ctx, Op{Kind: OpDelete, TID: 0}); err != nil {
			t.Fatalf("Enqueue delete: %v", err)
		}
	}
	v, err := srv.Flush(ctx)
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if !v.Empty() || v.NumTx() != 0 {
		t.Fatalf("drained store: view empty=%v numTx=%d, want empty", v.Empty(), v.NumTx())
	}
	if len(v.Rules()) != 0 || v.Canonical() != nil {
		t.Fatal("drained store still serves rules")
	}
	if v.Version() < 2 {
		t.Fatalf("drained store did not publish a new version: %d", v.Version())
	}
}

func TestIngestErrorsCountedAndSkipped(t *testing.T) {
	rows := fixtureRows(50, 12, 4)
	srv := newTestServer(t, rows, Config{})
	ctx := context.Background()
	// An out-of-range delete and a negative-item append are both rejected
	// by the store but still advance the op sequence.
	bad := []Op{
		{Kind: OpDelete, TID: 10_000},
		{Kind: OpAppend, Items: []int{-1, 2}},
		{Kind: OpKind(99)},
	}
	for _, op := range bad {
		if err := srv.Enqueue(ctx, op); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	if err := srv.Enqueue(ctx, Op{Kind: OpAppend, Items: []int{1, 2, 3}}); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	v, err := srv.Flush(ctx)
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if v.Ops() != 4 {
		t.Fatalf("ops consumed = %d, want 4 (errors advance the sequence)", v.Ops())
	}
	if v.NumTx() != len(rows)+1 {
		t.Fatalf("NumTx = %d, want %d (only the good append applied)", v.NumTx(), len(rows)+1)
	}
	if got := srv.Stats().IngestErrors; got != uint64(len(bad)) {
		t.Fatalf("IngestErrors = %d, want %d", got, len(bad))
	}
}

func TestFlushWithoutChangesKeepsVersion(t *testing.T) {
	srv := newTestServer(t, fixtureRows(60, 12, 5), Config{})
	ctx := context.Background()
	v1, err := srv.Flush(ctx)
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	v2, err := srv.Flush(ctx)
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if v1.Version() != 1 || v2.Version() != 1 {
		t.Fatalf("no-op flushes bumped the version: %d, %d", v1.Version(), v2.Version())
	}
}

func TestMaintainAfterThreshold(t *testing.T) {
	srv := newTestServer(t, fixtureRows(80, 12, 6), Config{MaintainAfter: 5})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := srv.Enqueue(ctx, Op{Kind: OpAppend, Items: []int{1, 2, 3}}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.View().Version() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if v := srv.View(); v.Version() < 2 {
		t.Fatalf("dirty threshold never triggered a publish (version %d)", v.Version())
	}
}

func TestMaintainEveryTimer(t *testing.T) {
	srv := newTestServer(t, fixtureRows(80, 12, 7), Config{MaintainEvery: 5 * time.Millisecond})
	ctx := context.Background()
	if err := srv.Enqueue(ctx, Op{Kind: OpAppend, Items: []int{4, 5, 6}}); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.View().Version() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if v := srv.View(); v.Version() < 2 {
		t.Fatalf("timer never triggered a publish (version %d)", v.Version())
	}
}

func TestCloseIsIdempotentAndFailsFurtherUse(t *testing.T) {
	srv := newTestServer(t, fixtureRows(40, 10, 8), Config{})
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	ctx := context.Background()
	if err := srv.Enqueue(ctx, Op{Kind: OpAppend, Items: []int{1}}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Enqueue after Close = %v, want ErrServerClosed", err)
	}
	if _, err := srv.Flush(ctx); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Flush after Close = %v, want ErrServerClosed", err)
	}
	// Queries still serve the last published view after Close.
	if v := srv.View(); v.Version() != 1 {
		t.Fatalf("view after Close: version %d, want 1", v.Version())
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{RuleFloor: -0.1},
		{RuleFloor: 1.5},
		{QueueSize: -1},
		{MaintainAfter: -2},
		{MaintainEvery: -time.Second},
	}
	for _, cfg := range cases {
		if _, err := New(nil, cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("New(%+v) = %v, want ErrBadConfig", cfg, err)
		}
	}
	if _, err := New(nil, Config{Options: []mining.Option{mining.Workers(-1)}}); err == nil {
		t.Error("New with an invalid mining option did not fail")
	}
}

// TestSnapshotSwapProperty is the concurrency property test of the
// copy-on-write publish: reader goroutines spin on the view and the
// query paths while the writer runs Enqueue/Flush cycles. Every observed
// (version, canonical, rules) triple must be byte-identical to a
// from-scratch mine over the op-log replayed to that view's Ops()
// position, versions must be monotone per reader, and nothing may leak.
// CI runs it under -race.
func TestSnapshotSwapProperty(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	const (
		readers = 4
		rounds  = 20
	)
	rng := rand.New(rand.NewSource(42))
	initial := fixtureRows(100, 18, 42)
	srv := newTestServer(t, initial, Config{CacheSize: 64})

	type observation struct {
		ops   uint64
		canon string
		rules []mining.Rule
	}
	var (
		obsMu    sync.Mutex
		observed = map[uint64]observation{} // version → first observation
	)
	record := func(v *View) {
		obsMu.Lock()
		defer obsMu.Unlock()
		prev, ok := observed[v.Version()]
		if !ok {
			observed[v.Version()] = observation{ops: v.Ops(), canon: string(v.Canonical()), rules: v.Rules()}
			return
		}
		// Two loads of the same version must agree in every field —
		// the immutability half of the contract.
		if prev.ops != v.Ops() || prev.canon != string(v.Canonical()) {
			t.Errorf("version %d observed with two different contents", v.Version())
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(seed))
			var last uint64
			for !stop.Load() {
				v := srv.View()
				if v.Version() < last {
					t.Errorf("reader saw version go backwards: %d after %d", v.Version(), last)
					return
				}
				last = v.Version()
				record(v)
				// Exercise the cached query paths too; the version they
				// report must also be monotone for this reader.
				var qv uint64
				var err error
				switch rrng.Intn(3) {
				case 0:
					_, qv, err = srv.TopRules(RulesQuery{K: 5, By: BySupport})
				case 1:
					_, qv, err = srv.Recommend([]int{rrng.Intn(18)}, 3)
				default:
					res, serr := srv.ItemsetSupport(rrng.Intn(18))
					qv, err = res.Version, serr
				}
				if err != nil {
					t.Errorf("query failed: %v", err)
					return
				}
				if qv < last {
					t.Errorf("query served version %d after reader saw %d", qv, last)
					return
				}
				last = qv
			}
		}(int64(1000 + r))
	}

	// The writer: random append/delete batches, Flush after each batch.
	var opLog []Op
	driver := opModel{rows: append([][]int(nil), initial...)}
	ctx := context.Background()
	for round := 0; round < rounds; round++ {
		batch := 1 + rng.Intn(6)
		for i := 0; i < batch; i++ {
			var op Op
			if len(driver.rows) > 40 && rng.Float64() < 0.25 {
				op = Op{Kind: OpDelete, TID: rng.Intn(len(driver.rows))}
			} else {
				row := []int{rng.Intn(18), rng.Intn(18), rng.Intn(18), rng.Intn(18)}
				op = Op{Kind: OpAppend, Items: row}
			}
			if err := srv.Enqueue(ctx, op); err != nil {
				t.Fatalf("Enqueue: %v", err)
			}
			opLog = append(opLog, op)
			driver.apply(op)
		}
		v, err := srv.Flush(ctx)
		if err != nil {
			t.Fatalf("Flush round %d: %v", round, err)
		}
		if v.Ops() != uint64(len(opLog)) {
			t.Fatalf("round %d: view ops %d, want %d", round, v.Ops(), len(opLog))
		}
	}
	stop.Store(true)
	wg.Wait()

	// Verify every observed version against an independent from-scratch
	// mine at its op position.
	replay := opModel{rows: append([][]int(nil), initial...)}
	replayed := uint64(0)
	versions := make([]uint64, 0, len(observed))
	for v := range observed {
		versions = append(versions, v)
	}
	slices.Sort(versions)
	for _, version := range versions {
		obs := observed[version]
		if obs.ops < replayed {
			t.Fatalf("version %d has ops %d < already-replayed %d (non-monotone publish)", version, obs.ops, replayed)
		}
		for replayed < obs.ops {
			replay.apply(opLog[replayed])
			replayed++
		}
		wantCanon, wantRules := mineFromScratch(t, replay.snapshotRows(), testMinSup, testFloor)
		if obs.canon != string(wantCanon) {
			t.Errorf("version %d (ops %d): canonical bytes diverge from a from-scratch mine", version, obs.ops)
		}
		if !reflect.DeepEqual(obs.rules, wantRules) {
			t.Errorf("version %d (ops %d): rules diverge from a from-scratch mine", version, obs.ops)
		}
	}
	if len(versions) == 0 {
		t.Fatal("readers observed no versions at all")
	}

	// Goroutine-leak check: after Close everything the server started
	// must be gone.
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > goroutinesBefore {
		t.Errorf("goroutine leak: %d before, %d after", goroutinesBefore, got)
	}
}
