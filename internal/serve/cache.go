package serve

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/mining"
)

// lruCache is the query-result cache: a classic map+list LRU keyed on
// "v<version>|<normalized query>". Because the view version is part of
// the key, a published version bump invalidates every prior entry by
// construction — a stale result cannot be served — and dead-version
// entries age out through normal LRU eviction. A capacity < 0 disables
// caching (every lookup is a miss and nothing is stored).
type lruCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

// cacheEntry is one stored result.
type cacheEntry struct {
	key   string
	rules []mining.Rule
}

// newLRUCache builds a cache holding up to capacity entries.
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// versionedKey prefixes a query key with the view version it was
// computed from.
func versionedKey(version uint64, key string) string {
	return fmt.Sprintf("v%d|%s", version, key)
}

// get looks up the result for (version, key), promoting a hit to
// most-recently-used.
func (c *lruCache) get(version uint64, key string) ([]mining.Rule, bool) {
	if c.cap < 0 {
		c.misses.Add(1)
		return nil, false
	}
	k := versionedKey(version, key)
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).rules, true
}

// put stores the result for (version, key), evicting the least recently
// used entry when the cache is full.
func (c *lruCache) put(version uint64, key string, rules []mining.Rule) {
	if c.cap <= 0 {
		return
	}
	k := versionedKey(version, key)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).rules = rules
		c.order.MoveToFront(el)
		return
	}
	c.entries[k] = c.order.PushFront(&cacheEntry{key: k, rules: rules})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// counters returns the hit and miss totals.
func (c *lruCache) counters() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
