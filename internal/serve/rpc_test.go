package serve

import (
	"net"
	"net/rpc"
	"reflect"
	"testing"
)

// dialRPC starts the server's rpc listener on a loopback port and
// returns a connected client.
func dialRPC(t *testing.T, srv *Server) *rpc.Client {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.ServeRPC(l)
	t.Cleanup(func() { l.Close() })
	client, err := rpc.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

func TestRPCQueryPath(t *testing.T) {
	srv := newTestServer(t, fixtureRows(200, 16, 31), Config{})
	client := dialRPC(t, srv)

	var rules RulesReply
	if err := client.Call(RPCService+".TopRules", RulesArgs{K: 5, By: "support"}, &rules); err != nil {
		t.Fatalf("TopRules: %v", err)
	}
	want, version, err := srv.TopRules(RulesQuery{K: 5, By: BySupport})
	if err != nil {
		t.Fatalf("direct TopRules: %v", err)
	}
	if rules.Version != version || !reflect.DeepEqual(rules.Rules, want) {
		t.Fatal("rpc rules diverge from the direct API")
	}

	var sup SupportResult
	if err := client.Call(RPCService+".Support", SupportArgs{Items: []int{2, 3}}, &sup); err != nil {
		t.Fatalf("Support: %v", err)
	}
	wantSup, err := srv.ItemsetSupport(2, 3)
	if err != nil {
		t.Fatalf("direct support: %v", err)
	}
	if !reflect.DeepEqual(sup, wantSup) {
		t.Fatalf("rpc support %+v != direct %+v", sup, wantSup)
	}

	var rec RulesReply
	if err := client.Call(RPCService+".Recommend", RecommendArgs{Items: []int{2}, K: 3}, &rec); err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	wantRec, _, err := srv.Recommend([]int{2}, 3)
	if err != nil {
		t.Fatalf("direct recommend: %v", err)
	}
	if !reflect.DeepEqual(rec.Rules, wantRec) {
		t.Fatal("rpc recommend diverges from the direct API")
	}

	var stats Stats
	if err := client.Call(RPCService+".Stats", struct{}{}, &stats); err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats.Version != 1 || stats.NumTx != 200 {
		t.Fatalf("rpc stats %+v", stats)
	}
}

func TestRPCBadQuery(t *testing.T) {
	srv := newTestServer(t, fixtureRows(60, 12, 32), Config{})
	client := dialRPC(t, srv)
	var rules RulesReply
	if err := client.Call(RPCService+".TopRules", RulesArgs{K: -1}, &rules); err == nil {
		t.Fatal("negative top-k over rpc did not error")
	}
	var sup SupportResult
	if err := client.Call(RPCService+".Support", SupportArgs{}, &sup); err == nil {
		t.Fatal("empty support lookup over rpc did not error")
	}
}
