package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/mining"
)

// maxIngestBody bounds one POST /v1/append body (16 MiB).
const maxIngestBody = 16 << 20

// ruleJSON is the wire form of one rule.
type ruleJSON struct {
	Antecedent []int   `json:"antecedent"`
	Consequent []int   `json:"consequent"`
	Support    int     `json:"support"`
	Confidence float64 `json:"confidence"`
	Lift       float64 `json:"lift"`
}

// rulesResponse is the wire form of the rule-query endpoints.
type rulesResponse struct {
	Version uint64     `json:"version"`
	NumTx   int        `json:"num_tx"`
	Rules   []ruleJSON `json:"rules"`
}

// toRuleJSON adapts the facade rules to the wire form.
func toRuleJSON(rules []mining.Rule) []ruleJSON {
	out := make([]ruleJSON, len(rules))
	for i, r := range rules {
		out[i] = ruleJSON{
			Antecedent: r.Antecedent,
			Consequent: r.Consequent,
			Support:    r.Support,
			Confidence: r.Confidence,
			Lift:       r.Lift,
		}
	}
	return out
}

// Handler returns the HTTP/JSON query and ingest surface:
//
//	GET  /v1/rules?k=&by=&minconf=&antecedent=   top-k rules
//	GET  /v1/support?items=1,2                   itemset support lookup
//	GET  /v1/recommend?items=1,2&k=              per-antecedent recommendation
//	GET  /v1/stats                               server counters
//	GET  /v1/canonical                           canonical result bytes
//	GET  /v1/healthz                             liveness
//	GET  /v1/readyz                              readiness (503 until recovered)
//	POST /v1/append                              basket lines to enqueue
//	POST /v1/delete?tid=N                        enqueue one delete
//	POST /v1/flush                               drain queue, maintain, publish
//
// Query errors map to 400, everything else to 500; responses are JSON.
// Every handler runs behind a panic-recovery middleware: a panicking
// handler produces a 500 and bumps Stats.Panics instead of killing the
// process.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/rules", s.handleRules)
	mux.HandleFunc("GET /v1/support", s.handleSupport)
	mux.HandleFunc("GET /v1/recommend", s.handleRecommend)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/canonical", s.handleCanonical)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	mux.HandleFunc("POST /v1/append", s.handleAppend)
	mux.HandleFunc("POST /v1/delete", s.handleDelete)
	mux.HandleFunc("POST /v1/flush", s.handleFlush)
	return s.recoverPanics(mux)
}

// recoverPanics is the middleware keeping one bad handler (or one
// poisoned request) from taking the whole serving process down: the
// panic is swallowed, the client gets a 500, and Stats.Panics counts it.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.panics.Add(1)
				// Best-effort 500: if the handler already wrote a status,
				// this is a no-op beyond the log line net/http would emit.
				writeError(w, fmt.Errorf("serve: handler panic: %v", v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// handleReadyz serves GET /v1/readyz: 200 once startup (WAL recovery,
// tail replay, first publish) finished, 503 before. Load balancers gate
// traffic on this; liveness probes use /v1/healthz, which is green the
// moment the process accepts connections.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "recovering"})
		return
	}
	writeJSON(w, map[string]string{"status": "ready"})
}

// handleCanonical serves GET /v1/canonical: the current view's canonical
// result bytes (the deterministic encoding every byte-identity check in
// this repo compares), with the view's version and op count in headers.
// The crash-recovery CI gate diffs this against a from-scratch mine.
func (s *Server) handleCanonical(w http.ResponseWriter, r *http.Request) {
	v := s.View()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Serve-Version", strconv.FormatUint(v.Version(), 10))
	w.Header().Set("X-Serve-Ops", strconv.FormatUint(v.Ops(), 10))
	w.Write(v.Canonical())
}

// StartingHandler is the bootstrap surface a command serves while the
// real server is still recovering its WAL: liveness is green, readiness
// and everything else answer 503. Swapping it for Server.Handler once
// New returns gives probes an honest view of a long replay without
// delaying the listen socket.
func StartingHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "recovering"})
	})
	return mux
}

// HTTPTimeouts are the slow-client guards of NewHTTPServer. Zero fields
// take the defaults; production servers should not disable them — a
// client trickling header bytes forever (slowloris) otherwise pins a
// connection per drip.
type HTTPTimeouts struct {
	// ReadHeader bounds request-header reads (0 = 5s).
	ReadHeader time.Duration
	// Read bounds the whole request read, including ingest bodies
	// (0 = 60s).
	Read time.Duration
	// Idle bounds keep-alive idleness between requests (0 = 120s).
	Idle time.Duration
}

// NewHTTPServer wraps h in an http.Server with the slowloris guards
// applied. Write deadlines are left off deliberately: flush and append
// calls legitimately block on maintenance under load, and the read-side
// timeouts already bound a malicious peer.
func NewHTTPServer(h http.Handler, t HTTPTimeouts) *http.Server {
	if t.ReadHeader == 0 {
		t.ReadHeader = 5 * time.Second
	}
	if t.Read == 0 {
		t.Read = 60 * time.Second
	}
	if t.Idle == 0 {
		t.Idle = 120 * time.Second
	}
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: t.ReadHeader,
		ReadTimeout:       t.Read,
		IdleTimeout:       t.Idle,
	}
}

// writeJSON writes v as a JSON response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// writeError maps an error to its status code and a JSON error body.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadQuery):
		code = http.StatusBadRequest
	case errors.Is(err, ErrServerClosed):
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// handleRules serves GET /v1/rules.
func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	q, err := ParseRulesQuery(r.URL.Query())
	if err != nil {
		writeError(w, err)
		return
	}
	rules, version, err := s.TopRules(q)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, rulesResponse{Version: version, NumTx: s.View().NumTx(), Rules: toRuleJSON(rules)})
}

// handleSupport serves GET /v1/support.
func (s *Server) handleSupport(w http.ResponseWriter, r *http.Request) {
	items, err := ParseItems(r.URL.Query().Get("items"))
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := s.ItemsetSupport(items...)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, res)
}

// handleRecommend serves GET /v1/recommend.
func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	values := r.URL.Query()
	items, err := ParseItems(values.Get("items"))
	if err != nil {
		writeError(w, err)
		return
	}
	k := 0
	if raw := values.Get("k"); raw != "" {
		k, err = strconv.Atoi(raw)
		if err != nil {
			writeError(w, fmt.Errorf("%w: k=%q: %v", ErrBadQuery, raw, err))
			return
		}
	}
	rules, version, err := s.Recommend(items, k)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, rulesResponse{Version: version, NumTx: s.View().NumTx(), Rules: toRuleJSON(rules)})
}

// handleStats serves GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

// handleAppend serves POST /v1/append: the body is basket lines
// (whitespace-separated item ids, one transaction per line), each
// enqueued as one OpAppend. The enqueue respects the request context, so
// a client timeout unblocks a full queue's backpressure.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	enqueued := 0
	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, maxIngestBody))
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		items, err := ParseItems(line)
		if err != nil {
			writeError(w, err)
			return
		}
		if len(items) == 0 {
			continue
		}
		if err := s.Enqueue(r.Context(), Op{Kind: OpAppend, Items: items}); err != nil {
			writeError(w, err)
			return
		}
		enqueued++
	}
	if err := sc.Err(); err != nil {
		writeError(w, fmt.Errorf("%w: reading body: %v", ErrBadQuery, err))
		return
	}
	writeJSON(w, map[string]int{"enqueued": enqueued})
}

// handleDelete serves POST /v1/delete?tid=N.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("tid")
	tid, err := strconv.Atoi(raw)
	if err != nil {
		writeError(w, fmt.Errorf("%w: tid=%q: %v", ErrBadQuery, raw, err))
		return
	}
	if tid < 0 {
		writeError(w, fmt.Errorf("%w: negative tid %d", ErrBadQuery, tid))
		return
	}
	if err := s.Enqueue(r.Context(), Op{Kind: OpDelete, TID: tid}); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, map[string]int{"enqueued": 1})
}

// handleFlush serves POST /v1/flush.
func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	v, err := s.Flush(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, map[string]any{
		"version": v.Version(),
		"num_tx":  v.NumTx(),
		"ops":     v.Ops(),
	})
}
