package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"testing"
)

// startHTTP wraps a test server's handler in an httptest server.
func startHTTP(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// getJSON fetches url and decodes the JSON body into out, asserting the
// status code.
func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d (body %s)", url, resp.StatusCode, wantStatus, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", url, body, err)
		}
	}
}

// postStatus posts a body and asserts the status code.
func postStatus(t *testing.T, url, body string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	got, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d (body %s)", url, resp.StatusCode, wantStatus, got)
	}
	return got
}

func TestHTTPRules(t *testing.T) {
	srv := newTestServer(t, fixtureRows(200, 16, 21), Config{})
	ts := startHTTP(t, srv)

	var resp rulesResponse
	getJSON(t, ts.URL+"/v1/rules?k=5&by=support", http.StatusOK, &resp)
	if resp.Version != 1 {
		t.Fatalf("rules version = %d, want 1", resp.Version)
	}
	if len(resp.Rules) == 0 || len(resp.Rules) > 5 {
		t.Fatalf("rules count = %d, want 1..5", len(resp.Rules))
	}
	// The HTTP answer must match the direct API answer exactly.
	want, _, err := srv.TopRules(RulesQuery{K: 5, By: BySupport})
	if err != nil {
		t.Fatalf("TopRules: %v", err)
	}
	if !reflect.DeepEqual(resp.Rules, toRuleJSON(want)) {
		t.Fatal("HTTP rules diverge from the API rules")
	}
	// Supports are descending under by=support.
	for i := 1; i < len(resp.Rules); i++ {
		if resp.Rules[i].Support > resp.Rules[i-1].Support {
			t.Fatal("by=support ordering violated")
		}
	}

	// Antecedent filter: every returned antecedent contains the item.
	getJSON(t, ts.URL+"/v1/rules?antecedent=2", http.StatusOK, &resp)
	for _, r := range resp.Rules {
		if !containsAll(r.Antecedent, []int{2}) {
			t.Fatalf("antecedent filter leaked rule %+v", r)
		}
	}
}

func TestHTTPSupportAndRecommend(t *testing.T) {
	srv := newTestServer(t, fixtureRows(200, 16, 22), Config{})
	ts := startHTTP(t, srv)

	var sup SupportResult
	getJSON(t, ts.URL+"/v1/support?items=2,3", http.StatusOK, &sup)
	wantSup, err := srv.ItemsetSupport(2, 3)
	if err != nil {
		t.Fatalf("ItemsetSupport: %v", err)
	}
	if !reflect.DeepEqual(sup, wantSup) {
		t.Fatalf("HTTP support %+v != API support %+v", sup, wantSup)
	}

	var rec rulesResponse
	getJSON(t, ts.URL+"/v1/recommend?items=2&k=3", http.StatusOK, &rec)
	want, _, err := srv.Recommend([]int{2}, 3)
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	if !reflect.DeepEqual(rec.Rules, toRuleJSON(want)) {
		t.Fatal("HTTP recommend diverges from the API")
	}
}

func TestHTTPBadQueries(t *testing.T) {
	srv := newTestServer(t, fixtureRows(80, 12, 23), Config{})
	ts := startHTTP(t, srv)
	bad := []string{
		"/v1/rules?k=oops",
		"/v1/rules?k=-3",
		"/v1/rules?by=bogus",
		"/v1/rules?minconf=1.7",
		"/v1/rules?minconf=NaN",
		"/v1/rules?antecedent=1,x",
		"/v1/rules?antecedent=-4",
		"/v1/support?items=",
		"/v1/support?items=a",
		"/v1/recommend?items=",
		"/v1/recommend?items=1&k=zzz",
	}
	for _, path := range bad {
		var body map[string]string
		getJSON(t, ts.URL+path, http.StatusBadRequest, &body)
		if body["error"] == "" {
			t.Errorf("%s: no error body", path)
		}
	}
	postStatus(t, ts.URL+"/v1/delete?tid=x", "", http.StatusBadRequest)
	postStatus(t, ts.URL+"/v1/delete?tid=-1", "", http.StatusBadRequest)
	postStatus(t, ts.URL+"/v1/append", "1 2 -9", http.StatusBadRequest)
}

func TestHTTPIngestFlushRoundTrip(t *testing.T) {
	srv := newTestServer(t, fixtureRows(100, 12, 24), Config{})
	ts := startHTTP(t, srv)

	var enq map[string]int
	body := postStatus(t, ts.URL+"/v1/append", "1 2 3\n\n4 5 6\n", http.StatusOK)
	if err := json.Unmarshal(body, &enq); err != nil || enq["enqueued"] != 2 {
		t.Fatalf("append reply %s (err %v), want enqueued=2", body, err)
	}
	postStatus(t, ts.URL+"/v1/delete?tid=0", "", http.StatusOK)

	var flush map[string]any
	body = postStatus(t, ts.URL+"/v1/flush", "", http.StatusOK)
	if err := json.Unmarshal(body, &flush); err != nil {
		t.Fatalf("flush reply %s: %v", body, err)
	}
	if v, ok := flush["version"].(float64); !ok || v < 2 {
		t.Fatalf("flush did not publish: %v", flush)
	}
	if n, ok := flush["num_tx"].(float64); !ok || int(n) != 100+2-1 {
		t.Fatalf("flush num_tx = %v, want 101", flush["num_tx"])
	}

	var stats Stats
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &stats)
	if stats.Ops != 3 || stats.Maintains == 0 {
		t.Fatalf("stats after round trip: %+v", stats)
	}
	var health map[string]string
	getJSON(t, ts.URL+"/v1/healthz", http.StatusOK, &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz: %v", health)
	}
}

// TestParseRulesQueryTable pins the parser's accept/reject behavior
// directly (the fuzz targets explore beyond it).
func TestParseRulesQueryTable(t *testing.T) {
	cases := []struct {
		raw  string
		want RulesQuery
		ok   bool
	}{
		{"", RulesQuery{K: 10, By: ByConfidence, Antecedent: []int{}}, true},
		{"k=3&by=LIFT", RulesQuery{K: 3, By: ByLift, Antecedent: []int{}}, true},
		{"k=99999999", RulesQuery{K: MaxTopK, By: ByConfidence, Antecedent: []int{}}, true},
		{"antecedent=3,1,3&minconf=0.6", RulesQuery{K: 10, By: ByConfidence, MinConfidence: 0.6, Antecedent: []int{1, 3}}, true},
		{"by=support&unknown=ignored", RulesQuery{K: 10, By: BySupport, Antecedent: []int{}}, true},
		{"k=-1", RulesQuery{}, false},
		{"by=frequency", RulesQuery{}, false},
		{"minconf=2", RulesQuery{}, false},
		{"minconf=x", RulesQuery{}, false},
		{"antecedent=1|2", RulesQuery{}, false},
	}
	for _, tc := range cases {
		values, err := url.ParseQuery(tc.raw)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", tc.raw, err)
		}
		got, err := ParseRulesQuery(values)
		if tc.ok != (err == nil) {
			t.Errorf("ParseRulesQuery(%q) error = %v, want ok=%v", tc.raw, err, tc.ok)
			continue
		}
		if tc.ok && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseRulesQuery(%q) = %+v, want %+v", tc.raw, got, tc.want)
		}
	}
}

// TestQueryLimits pins the documented bounds.
func TestQueryLimits(t *testing.T) {
	big := make([]int, maxQueryItems+1)
	if _, err := normalizeItems(big); err == nil {
		t.Error("oversized item list accepted")
	}
	var sb strings.Builder
	for i := 0; i <= maxQueryItems; i++ {
		fmt.Fprintf(&sb, "%d,", i)
	}
	if _, err := ParseItems(sb.String()); err == nil {
		t.Error("oversized item string accepted")
	}
	if _, err := ParseItems("5 , 3\t2"); err != nil {
		t.Errorf("mixed separators rejected: %v", err)
	}
}
