package serve

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"repro/mining"
)

// Query limits applied during normalization.
const (
	// DefaultTopK is the rule count returned when K is 0.
	DefaultTopK = 10
	// MaxTopK caps K so one query cannot ask the server to copy the whole
	// rule set per request.
	MaxTopK = 10000
	// maxQueryItems caps the item-list length of a single query.
	maxQueryItems = 1024
)

// RankBy selects the rule ordering of a RulesQuery.
type RankBy string

// The three rule orderings. Ties always break toward the published
// GenerateRules order so every ordering is deterministic.
const (
	// ByConfidence ranks by confidence descending (the default).
	ByConfidence RankBy = "confidence"
	// BySupport ranks by absolute support descending.
	BySupport RankBy = "support"
	// ByLift ranks by lift descending.
	ByLift RankBy = "lift"
)

// RulesQuery selects and orders association rules from the current view:
// the top K rules by the chosen metric, at or above MinConfidence,
// optionally restricted to rules whose antecedent contains every item in
// Antecedent. The zero value is "top 10 by confidence at the floor".
type RulesQuery struct {
	// K is the maximum number of rules returned (0 = DefaultTopK,
	// clamped to MaxTopK).
	K int
	// By is the ranking metric ("" = ByConfidence).
	By RankBy
	// MinConfidence filters rules below it; values at or below the
	// server's rule floor are answered from the floor set.
	MinConfidence float64
	// Antecedent, when non-empty, keeps only rules whose antecedent
	// contains every listed item.
	Antecedent []int
}

// normalize validates q and returns its canonical form: K bounded, By
// resolved, the antecedent sorted and deduplicated. Two queries that
// normalize identically share one cache entry.
func (q RulesQuery) normalize() (RulesQuery, error) {
	if q.K < 0 {
		return q, fmt.Errorf("%w: negative top-k %d", ErrBadQuery, q.K)
	}
	if q.K == 0 {
		q.K = DefaultTopK
	}
	if q.K > MaxTopK {
		q.K = MaxTopK
	}
	switch q.By {
	case "":
		q.By = ByConfidence
	case ByConfidence, BySupport, ByLift:
	default:
		return q, fmt.Errorf("%w: unknown rank key %q (want confidence, support or lift)", ErrBadQuery, q.By)
	}
	// The inverted comparison also rejects NaN, which every ordered
	// comparison lets through.
	if !(q.MinConfidence >= 0 && q.MinConfidence <= 1) {
		return q, fmt.Errorf("%w: min confidence %v outside [0, 1]", ErrBadQuery, q.MinConfidence)
	}
	ant, err := normalizeItems(q.Antecedent)
	if err != nil {
		return q, err
	}
	q.Antecedent = ant
	return q, nil
}

// key renders the normalized query as its cache key.
func (q RulesQuery) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rules|k=%d|by=%s|conf=%g|ant=", q.K, q.By, q.MinConfidence)
	for i, it := range q.Antecedent {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(it))
	}
	return b.String()
}

// normalizeItems sorts, deduplicates and bounds-checks a query item list.
func normalizeItems(items []int) ([]int, error) {
	if len(items) > maxQueryItems {
		return nil, fmt.Errorf("%w: %d items exceeds the %d-item limit", ErrBadQuery, len(items), maxQueryItems)
	}
	out := make([]int, 0, len(items))
	for _, it := range items {
		if it < 0 {
			return nil, fmt.Errorf("%w: negative item id %d", ErrBadQuery, it)
		}
		out = append(out, it)
	}
	sort.Ints(out)
	j := 0
	for i, it := range out {
		if i == 0 || it != out[j-1] {
			out[j] = it
			j++
		}
	}
	return out[:j], nil
}

// ParseRulesQuery parses the HTTP form of a RulesQuery: k (int), by
// (confidence|support|lift), minconf (float), antecedent (item ids
// separated by commas or spaces). Unknown parameters are ignored so the
// surface can grow; malformed values wrap ErrBadQuery. The returned
// query is already normalized.
func ParseRulesQuery(values url.Values) (RulesQuery, error) {
	var q RulesQuery
	if raw := values.Get("k"); raw != "" {
		k, err := strconv.Atoi(raw)
		if err != nil {
			return q, fmt.Errorf("%w: k=%q: %v", ErrBadQuery, raw, err)
		}
		q.K = k
	}
	q.By = RankBy(strings.ToLower(strings.TrimSpace(values.Get("by"))))
	if raw := values.Get("minconf"); raw != "" {
		c, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return q, fmt.Errorf("%w: minconf=%q: %v", ErrBadQuery, raw, err)
		}
		q.MinConfidence = c
	}
	if raw := values.Get("antecedent"); raw != "" {
		items, err := ParseItems(raw)
		if err != nil {
			return q, err
		}
		q.Antecedent = items
	}
	return q.normalize()
}

// ParseItems parses an item-id list separated by commas and/or
// whitespace ("3,1 2"). Empty fields are skipped; an empty list is an
// error for the endpoints that require items, which they check
// themselves. Malformed or negative ids wrap ErrBadQuery.
func ParseItems(raw string) ([]int, error) {
	fields := strings.FieldsFunc(raw, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t'
	})
	if len(fields) > maxQueryItems {
		return nil, fmt.Errorf("%w: %d items exceeds the %d-item limit", ErrBadQuery, len(fields), maxQueryItems)
	}
	items := make([]int, 0, len(fields))
	for _, f := range fields {
		id, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("%w: item %q: %v", ErrBadQuery, f, err)
		}
		if id < 0 {
			return nil, fmt.Errorf("%w: negative item id %d", ErrBadQuery, id)
		}
		items = append(items, id)
	}
	return items, nil
}

// SupportResult is the answer to an itemset support lookup against one
// view version.
type SupportResult struct {
	// Version is the view the lookup ran against.
	Version uint64 `json:"version"`
	// Items is the normalized queried itemset.
	Items []int `json:"items"`
	// Count is the absolute support (0 when not frequent).
	Count int `json:"count"`
	// NumTx is the view's transaction count, for relative support.
	NumTx int `json:"num_tx"`
	// Frequent reports whether the itemset met minimum support.
	Frequent bool `json:"frequent"`
}

// TopRules answers q against the current view, serving repeats of the
// same normalized query on the same version from the cache. The returned
// slice is shared and read-only; the version identifies the view it was
// computed from.
func (s *Server) TopRules(q RulesQuery) ([]mining.Rule, uint64, error) {
	nq, err := q.normalize()
	if err != nil {
		return nil, 0, err
	}
	v := s.View()
	key := nq.key()
	if rules, ok := s.cache.get(v.version, key); ok {
		return rules, v.version, nil
	}
	rules := topRules(v, nq)
	s.cache.put(v.version, key, rules)
	return rules, v.version, nil
}

// topRules computes q over one immutable view.
func topRules(v *View, q RulesQuery) []mining.Rule {
	matched := make([]mining.Rule, 0, q.K)
	for _, r := range v.rules {
		if r.Confidence < q.MinConfidence {
			continue
		}
		if len(q.Antecedent) > 0 && !containsAll(r.Antecedent, q.Antecedent) {
			continue
		}
		matched = append(matched, r)
	}
	rankRules(matched, q.By)
	if len(matched) > q.K {
		matched = matched[:q.K]
	}
	return matched
}

// rankRules stably sorts rules by the chosen metric descending; the
// incoming GenerateRules order breaks ties.
func rankRules(rules []mining.Rule, by RankBy) {
	switch by {
	case BySupport:
		sort.SliceStable(rules, func(i, j int) bool { return rules[i].Support > rules[j].Support })
	case ByLift:
		sort.SliceStable(rules, func(i, j int) bool { return rules[i].Lift > rules[j].Lift })
	default:
		// ByConfidence is the GenerateRules order already.
	}
}

// containsAll reports whether the sorted list haystack contains every
// element of the sorted list needle.
func containsAll(haystack, needle []int) bool {
	i := 0
	for _, want := range needle {
		for i < len(haystack) && haystack[i] < want {
			i++
		}
		if i >= len(haystack) || haystack[i] != want {
			return false
		}
		i++
	}
	return true
}

// ItemsetSupport looks up the absolute support of one itemset in the
// current view. Items may be unordered and duplicated; negative ids are
// an error.
func (s *Server) ItemsetSupport(items ...int) (SupportResult, error) {
	norm, err := normalizeItems(items)
	if err != nil {
		return SupportResult{}, err
	}
	if len(norm) == 0 {
		return SupportResult{}, fmt.Errorf("%w: empty itemset", ErrBadQuery)
	}
	v := s.View()
	res := SupportResult{Version: v.version, Items: norm, NumTx: v.numTx}
	res.Count, res.Frequent = v.Support(norm...)
	return res, nil
}

// Recommend answers "users who have basket also have ...": the top k
// rules whose antecedent is contained in basket and whose consequent
// adds at least one item not already in it, ranked by confidence (ties
// by lift, then the published order). The returned slice is shared and
// read-only.
func (s *Server) Recommend(basket []int, k int) ([]mining.Rule, uint64, error) {
	norm, err := normalizeItems(basket)
	if err != nil {
		return nil, 0, err
	}
	if len(norm) == 0 {
		return nil, 0, fmt.Errorf("%w: empty basket", ErrBadQuery)
	}
	if k < 0 {
		return nil, 0, fmt.Errorf("%w: negative top-k %d", ErrBadQuery, k)
	}
	if k == 0 {
		k = DefaultTopK
	}
	if k > MaxTopK {
		k = MaxTopK
	}
	v := s.View()
	key := recommendKey(norm, k)
	if rules, ok := s.cache.get(v.version, key); ok {
		return rules, v.version, nil
	}
	rules := recommend(v, norm, k)
	s.cache.put(v.version, key, rules)
	return rules, v.version, nil
}

// recommendKey renders a recommendation request as its cache key.
func recommendKey(basket []int, k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rec|k=%d|items=", k)
	for i, it := range basket {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(it))
	}
	return b.String()
}

// recommend computes the recommendation rules over one immutable view.
func recommend(v *View, basket []int, k int) []mining.Rule {
	var matched []mining.Rule
	for _, r := range v.rules {
		if !containsAll(basket, r.Antecedent) {
			continue
		}
		if containsAll(basket, r.Consequent) {
			continue // nothing new to recommend
		}
		matched = append(matched, r)
	}
	sort.SliceStable(matched, func(i, j int) bool {
		if matched[i].Confidence != matched[j].Confidence {
			return matched[i].Confidence > matched[j].Confidence
		}
		return matched[i].Lift > matched[j].Lift
	})
	if len(matched) > k {
		matched = matched[:k]
	}
	return matched
}
