package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/dist"
)

func TestFaultsBaselineJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("measures wall-clock sweeps")
	}
	var buf bytes.Buffer
	if err := WriteFaultsBaseline(&buf, Quick); err != nil {
		t.Fatal(err)
	}
	var base FaultsBaseline
	if err := json.Unmarshal(buf.Bytes(), &base); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if base.Fixture == "" || base.MinSupport <= 0 || base.GOMAXPROCS < 1 {
		t.Fatalf("incomplete header: %+v", base)
	}
	want := len(p4Engines())
	if len(base.Overhead) != want || len(base.Recovery) != want {
		t.Fatalf("runs = %d overhead, %d recovery, want %d each",
			len(base.Overhead), len(base.Recovery), want)
	}
	for _, r := range base.Overhead {
		if r.BareMillis <= 0 || r.GuardedMillis <= 0 {
			t.Errorf("%s: non-positive timing: %+v", r.Engine, r)
		}
		// A fault-free transport must trigger neither retries nor
		// failovers; the overhead target itself is timing-dependent, so
		// only the baseline generation asserts on it.
		if r.Retries != 0 || r.Failovers != 0 {
			t.Errorf("%s: fault-free run retried or failed over: %+v", r.Engine, r)
		}
	}
	for _, r := range base.Recovery {
		if r.Millis <= 0 {
			t.Errorf("%s: non-positive recovery timing: %+v", r.Engine, r)
		}
		if r.Failovers < 1 {
			t.Errorf("%s: recovery run recorded no failover: %+v", r.Engine, r)
		}
		if r.ShippedShards < 1 {
			t.Errorf("%s: recovery run shipped nothing: %+v", r.Engine, r)
		}
	}
}

func TestRunF1PrintsTable(t *testing.T) {
	if testing.Short() {
		t.Skip("measures wall-clock sweeps")
	}
	var buf bytes.Buffer
	if err := RunF1(&buf, Quick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"EXP-F1", "overhead", "recovery", "Apriori", "FPGrowth", "failovers"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestRunFaultSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("measures wall-clock sweeps")
	}
	var buf bytes.Buffer
	plan := dist.FaultPlan{Seed: 1, Drop: 0.02, Error: 0.1, Kill: 0.02, Delay: 100 * time.Microsecond, DelayProb: 0.1}
	retry := dist.RetryPolicy{MaxAttempts: 3, CallTimeout: 250 * time.Millisecond,
		BaseBackoff: 200 * time.Microsecond, MaxBackoff: 2 * time.Millisecond, Seed: 1}
	if err := RunFaultSmoke(&buf, Quick, plan, retry); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte("chaos smoke passed")) {
		t.Errorf("smoke output missing pass line:\n%s", buf.String())
	}
}
