package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/synth"
)

// RunC1 reproduces the CLARANS comparison: runtime growth and clustering
// cost of the k-medoid family (with k-means as the centroid reference) as
// n grows. PAM is skipped above a size cap — the point of the original
// figure is precisely that PAM becomes infeasible first.
func RunC1(w io.Writer, s Scale) error {
	header(w, "C1", "k-medoid family: time (ms) and medoid cost vs n, k=5")
	sizes := []int{100, 200, 400}
	pamCap := 400
	if s == Full {
		sizes = []int{100, 200, 400, 800, 1600, 3200}
		pamCap = 800
	}
	const k = 5
	fmt.Fprintf(w, "%-8s%12s%12s%12s%12s%14s%14s%14s\n",
		"n", "PAM", "CLARA", "CLARANS", "k-means", "PAM cost", "CLARANS cost", "CLARA cost")
	for _, n := range sizes {
		p, err := synth.GaussianMixture(synth.GaussianConfig{
			NumPoints: n, NumCluster: k, Dims: 2, Spread: 1, Separation: 80, Seed: 41,
		})
		if err != nil {
			return err
		}
		pamTime, pamCost := "-", "-"
		if n <= pamCap {
			var res *cluster.Result
			dur, err := timeIt(func() error {
				var e error
				res, e = (&cluster.PAM{K: k}).Run(p.X)
				return e
			})
			if err != nil {
				return err
			}
			pamTime, pamCost = ms(dur), fmt.Sprintf("%.1f", res.Cost)
		}
		claraRes, claraDur, err := timedCluster(&cluster.CLARA{K: k, Seed: 41}, p.X)
		if err != nil {
			return err
		}
		claransRes, claransDur, err := timedCluster(&cluster.CLARANS{K: k, Seed: 41}, p.X)
		if err != nil {
			return err
		}
		_, kmDur, err := timedCluster(&cluster.KMeans{K: k, Seed: 41}, p.X)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d%12s%12s%12s%12s%14s%14.1f%14.1f\n",
			n, pamTime, ms(claraDur), ms(claransDur), ms(kmDur),
			pamCost, claransRes.Cost, claraRes.Cost)
	}
	return nil
}

// runner abstracts the clusterers' shared Run method.
type runner interface {
	Run(points [][]float64) (*cluster.Result, error)
}

func timedCluster(r runner, pts [][]float64) (*cluster.Result, time.Duration, error) {
	start := time.Now()
	res, err := r.Run(pts)
	return res, time.Since(start), err
}

// RunC2 reproduces the DBSCAN claims: quality on non-convex shapes where
// k-means fails, and the effect of a spatial index on runtime.
func RunC2(w io.Writer, s Scale) error {
	header(w, "C2", "DBSCAN vs k-means on non-convex shapes (Rand index vs truth)")
	n := 400
	if s == Full {
		n = 1500
	}
	shapes := []struct {
		name string
		kind synth.ShapeKind
		eps  float64
	}{
		{"two-moons", synth.TwoMoons, 0.25},
		{"rings", synth.Rings, 0.5},
	}
	fmt.Fprintf(w, "%-12s%12s%12s%12s%16s\n", "dataset", "k-means RI", "DBSCAN RI", "noise found", "clusters found")
	for _, sh := range shapes {
		p, err := synth.Shapes(synth.ShapeConfig{
			Kind: sh.kind, NumPoints: n, Jitter: 0.04, NoiseFrac: 0.05, Seed: 96,
		})
		if err != nil {
			return err
		}
		km, err := (&cluster.KMeans{K: 2, Seed: 1}).Run(p.X)
		if err != nil {
			return err
		}
		db, err := (&cluster.DBSCAN{Eps: sh.eps, MinPts: 5, UseIndex: true}).Run(p.X)
		if err != nil {
			return err
		}
		kmRI, err := cluster.RandIndex(km.Assignments, p.Labels)
		if err != nil {
			return err
		}
		dbRI, err := cluster.RandIndex(db.Assignments, p.Labels)
		if err != nil {
			return err
		}
		noise := 0
		for _, a := range db.Assignments {
			if a == cluster.Noise {
				noise++
			}
		}
		fmt.Fprintf(w, "%-12s%12.3f%12.3f%12d%16d\n", sh.name, kmRI, dbRI, noise, db.NumClusters())
	}

	fmt.Fprintf(w, "\nDBSCAN runtime (ms): brute region queries vs grid index\n")
	fmt.Fprintf(w, "%-8s%12s%12s\n", "n", "brute", "grid")
	sizes := []int{500, 1000, 2000}
	if s == Full {
		sizes = []int{1000, 2000, 4000, 8000}
	}
	for _, sz := range sizes {
		p, err := synth.Shapes(synth.ShapeConfig{Kind: synth.Rings, NumPoints: sz, Jitter: 0.04, Seed: 97})
		if err != nil {
			return err
		}
		_, brute, err := timedCluster(&cluster.DBSCAN{Eps: 0.3, MinPts: 5}, p.X)
		if err != nil {
			return err
		}
		_, grid, err := timedCluster(&cluster.DBSCAN{Eps: 0.3, MinPts: 5, UseIndex: true}, p.X)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d%12s%12s\n", sz, ms(brute), ms(grid))
	}
	return nil
}

// RunC3 reproduces BIRCH's time-vs-n claim against full k-means, with the
// SSE of both, on the DS1-style grid mixture.
func RunC3(w io.Writer, s Scale) error {
	header(w, "C3", "BIRCH vs k-means: time (ms) and SSE vs n (grid mixture, k=4)")
	sizes := []int{2000, 5000, 10000}
	if s == Full {
		sizes = []int{10000, 25000, 50000, 100000}
	}
	fmt.Fprintf(w, "%-10s%12s%12s%14s%14s\n", "n", "BIRCH", "k-means", "BIRCH SSE", "k-means SSE")
	for _, n := range sizes {
		p, err := synth.GaussianGrid(synth.GridConfig{
			NumPoints: n, GridSide: 2, CentreDist: 40, Spread: 2, Seed: 98,
		})
		if err != nil {
			return err
		}
		bRes, bDur, err := timedCluster(&cluster.BIRCH{K: 4, MaxLeaves: 256, Seed: 1}, p.X)
		if err != nil {
			return err
		}
		kRes, kDur, err := timedCluster(&cluster.KMeans{K: 4, Seed: 1}, p.X)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10d%12s%12s%14.0f%14.0f\n", n, ms(bDur), ms(kDur), bRes.Cost, kRes.Cost)
	}
	return nil
}

// RunC4 compares the linkages on spherical vs elongated cluster shapes.
func RunC4(w io.Writer, s Scale) error {
	header(w, "C4", "hierarchical linkages: Rand index vs truth")
	n := 120
	if s == Full {
		n = 300
	}
	spherical, err := synth.GaussianMixture(synth.GaussianConfig{
		NumPoints: n, NumCluster: 3, Dims: 2, Spread: 1, Separation: 60, Seed: 99,
	})
	if err != nil {
		return err
	}
	// Elongated: two parallel strips (the single-linkage showcase).
	var strips [][]float64
	var stripTruth []int
	for i := 0; i < n/2; i++ {
		strips = append(strips, []float64{float64(i) * 0.5, 0})
		stripTruth = append(stripTruth, 0)
		strips = append(strips, []float64{float64(i) * 0.5, 15})
		stripTruth = append(stripTruth, 1)
	}
	linkages := []cluster.Linkage{
		cluster.SingleLinkage, cluster.CompleteLinkage, cluster.AverageLinkage, cluster.WardLinkage,
	}
	fmt.Fprintf(w, "%-10s%14s%14s\n", "linkage", "spherical RI", "elongated RI")
	for _, l := range linkages {
		h := &cluster.Hierarchical{Linkage: l}
		d1, err := h.Run(spherical.X)
		if err != nil {
			return err
		}
		l1, err := d1.CutK(3)
		if err != nil {
			return err
		}
		ri1, err := cluster.RandIndex(l1, spherical.Labels)
		if err != nil {
			return err
		}
		d2, err := h.Run(strips)
		if err != nil {
			return err
		}
		l2, err := d2.CutK(2)
		if err != nil {
			return err
		}
		ri2, err := cluster.RandIndex(l2, stripTruth)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s%14.3f%14.3f\n", l, ri1, ri2)
	}
	return nil
}
