package experiments

import (
	"fmt"
	"io"

	"repro/internal/assoc"
	"repro/internal/ensemble"
	"repro/internal/quant"
	"repro/internal/synth"
	"repro/internal/tree"
)

// RunA6 compares the later-generation miners (Eclat's vertical
// intersections, Toivonen's sampling) against Apriori.
func RunA6(w io.Writer, s Scale) error {
	header(w, "A6", "Eclat and Sampling vs Apriori: execution time (ms)")
	d := 2000
	supports := []float64{0.02, 0.01, 0.005}
	if s == Full {
		d = 10000
		supports = []float64{0.02, 0.01, 0.005, 0.0033}
	}
	db, err := synth.Baskets(synth.TxI(10, 4, d, 94))
	if err != nil {
		return err
	}
	miners := []assoc.Miner{
		withWorkers(&assoc.Apriori{}),
		withWorkers(&assoc.Eclat{}),
		&assoc.Sampling{},
		&assoc.Sampling{SampleFraction: 0.1, LowerFactor: 0.7, Seed: 5},
	}
	fmt.Fprintf(w, "%-8s%14s%14s%14s%18s\n", "minsup",
		"Apriori", "Eclat", "Sampling(20%)", "Sampling(10%)")
	for _, sup := range supports {
		fmt.Fprintf(w, "%-8.2f", sup*100)
		for _, m := range miners {
			dur, err := timeIt(func() error {
				_, e := m.Mine(db, sup)
				return e
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%14s", ms(dur))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RunQ1 reproduces the SIGMOD'96 quantitative-rules behaviour: rule counts
// and mining time as the interval partitioning and the maximum-support
// pruning vary, on the benchmark people table.
func RunQ1(w io.Writer, s Scale) error {
	header(w, "Q1", "quantitative rules: count and time vs bins / max-support")
	rows := 600
	if s == Full {
		rows = 3000
	}
	tbl, err := synth.Classify(synth.ClassifyConfig{NumRows: rows, Function: 2, Seed: 71})
	if err != nil {
		return err
	}
	// MaxSupport = 1 (no pruning) is deliberately absent: without the
	// paper's maximum-support prune the frequent-itemset space over
	// nested intervals grows exponentially — the prune is the point.
	fmt.Fprintf(w, "%-6s%-10s%10s%12s%12s\n", "bins", "maxsup", "items", "rules", "time(ms)")
	for _, bins := range []int{4, 8} {
		for _, maxSup := range []float64{0.2, 0.35, 0.5} {
			var nRules, nItems int
			dur, err := timeIt(func() error {
				rules, codec, e := quant.Mine(tbl, quant.Config{Bins: bins, MaxSupport: maxSup}, 0.1, 0.7)
				if e != nil {
					return e
				}
				nRules, nItems = len(rules), len(codec.Items)
				return nil
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-6d%-10.1f%10d%12d%12s\n", bins, maxSup, nItems, nRules, ms(dur))
		}
	}
	return nil
}

// RunE1 compares single trees against bagging and boosting on a clean
// diagonal-boundary task (where boosting shines) and a label-noisy task
// (where boosting famously does not, and bagging stays safe).
func RunE1(w io.Writer, s Scale) error {
	header(w, "E1", "ensembles: holdout accuracy (%) vs single trees")
	rows := 800
	if s == Full {
		rows = 2000
	}
	cases := []struct {
		name  string
		fn    int
		noise float64
	}{
		{"F7 clean (diagonal)", 7, 0},
		{"F5 15% label noise", 5, 0.15},
	}
	fmt.Fprintf(w, "%-22s%12s%12s%12s%12s\n", "task", "stump", "tree", "bagging", "adaboost")
	for _, c := range cases {
		train, err := synth.Classify(synth.ClassifyConfig{NumRows: rows, Function: c.fn, Noise: c.noise, Seed: 81})
		if err != nil {
			return err
		}
		test, err := synth.Classify(synth.ClassifyConfig{NumRows: rows / 2, Function: c.fn, Seed: 82})
		if err != nil {
			return err
		}
		stump, err := tree.Build(train, tree.Config{Criterion: tree.GainRatio, MaxDepth: 2, MinLeaf: 2})
		if err != nil {
			return err
		}
		full, err := tree.Build(train, tree.Config{Criterion: tree.GainRatio, MinLeaf: 2})
		if err != nil {
			return err
		}
		full.PrunePessimistic(0.25)
		bag, err := (&ensemble.Bagging{Rounds: 15, Tree: tree.Config{Criterion: tree.GainRatio, MinLeaf: 2}, Seed: 1}).Train(train)
		if err != nil {
			return err
		}
		boost, err := (&ensemble.AdaBoost{Rounds: 30, MaxDepth: 2, Seed: 1}).Train(train)
		if err != nil {
			return err
		}
		measure := func(p interface{ Predict([]float64) int }) float64 {
			correct := 0
			for i, row := range test.Rows {
				if p.Predict(row) == test.Class(i) {
					correct++
				}
			}
			return 100 * float64(correct) / float64(test.NumRows())
		}
		fmt.Fprintf(w, "%-22s%12.1f%12.1f%12.1f%12.1f\n",
			c.name, measure(stump), measure(full), measure(bag), measure(boost))
	}
	return nil
}
