package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"repro/internal/assoc"
)

// p3SupportLevels is the EXP-P3 support ladder. It runs deliberately lower
// than EXP-P1's fixed support: the pattern-growth argument is about the
// low-support regime, where level-wise candidate sets explode while the
// FP-tree only deepens a little. The quick scale doubles the relative
// supports so the absolute count floor stays meaningful on the smaller
// fixture (D1000 at 0.001 would mean "appears once" — a combinatorial
// blowup that measures nothing).
func p3SupportLevels(s Scale) []float64 {
	if s == Full {
		return []float64{0.01, 0.005, 0.0033, 0.002, 0.001}
	}
	return []float64{0.02, 0.01, 0.0066, 0.004, 0.002}
}

// p3Lineup returns the engines the pattern-growth sweep compares: the
// level-wise reference, the vertical bitset layout, and pattern growth.
func p3Lineup() []assoc.Miner {
	return []assoc.Miner{
		withWorkers(&assoc.Apriori{}),
		withWorkers(&assoc.Eclat{Layout: assoc.LayoutBitset}),
		withWorkers(&assoc.FPGrowth{}),
	}
}

// p3Name labels a lineup miner in the baseline (Eclat carries its layout).
func p3Name(m assoc.Miner) string {
	if e, ok := m.(*assoc.Eclat); ok && e.Layout == assoc.LayoutBitset {
		return "Eclat(bitset)"
	}
	return m.Name()
}

// PatternRun is one timed (miner, support) configuration of EXP-P3.
type PatternRun struct {
	Miner    string  `json:"miner"`
	MinSup   float64 `json:"minsup"`
	Frequent int     `json:"frequent"` // itemsets found (identical across miners)
	Millis   float64 `json:"ms"`
	Speedup  float64 `json:"speedup"` // Apriori time / this time, same support
	AllocStats
}

// PatternBaseline is the machine-readable output of EXP-P3, persisted as
// BENCH_fpgrowth.json: the candidate-generation vs pattern-growth
// trajectory across a support ladder on the T10.I4 fixture, with
// allocations recorded alongside wall-clock.
type PatternBaseline struct {
	Fixture    string       `json:"fixture"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"numcpu"`
	Runs       []PatternRun `json:"runs"`
	// LowestSupportSpeedup is FPGrowth's speedup over Apriori at the
	// lowest support of the ladder — the acceptance headline.
	LowestSupportSpeedup float64 `json:"lowest_support_speedup"`
	Note                 string  `json:"note,omitempty"`
}

// MeasurePatternBaseline runs the EXP-P3 sweep: every lineup engine at
// every support level, best-of-three wall clock with the fastest run's
// allocations, plus a cross-check that the engines found the same number
// of itemsets.
func MeasurePatternBaseline(s Scale) (*PatternBaseline, error) {
	db, fixture, err := p1Fixture(s)
	if err != nil {
		return nil, err
	}
	base := &PatternBaseline{
		Fixture:    fixture,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	levels := p3SupportLevels(s)
	for _, minSup := range levels {
		aprioriMS := 0.0
		frequent := -1
		for _, m := range p3Lineup() {
			res, d, alloc, err := bestOf(m, db, minSup)
			if err != nil {
				return nil, err
			}
			if frequent == -1 {
				frequent = res.NumFrequent()
			} else if res.NumFrequent() != frequent {
				return nil, fmt.Errorf("EXP-P3: %s found %d itemsets at %v, want %d",
					p3Name(m), res.NumFrequent(), minSup, frequent)
			}
			msVal := float64(d.Microseconds()) / 1000.0
			if p3Name(m) == "Apriori" {
				aprioriMS = msVal
			}
			speedup := 0.0
			if aprioriMS > 0 && msVal > 0 {
				speedup = aprioriMS / msVal
			}
			base.Runs = append(base.Runs, PatternRun{
				Miner: p3Name(m), MinSup: minSup, Frequent: frequent,
				Millis: msVal, Speedup: speedup, AllocStats: alloc,
			})
			if p3Name(m) == "FPGrowth" && minSup == levels[len(levels)-1] {
				base.LowestSupportSpeedup = speedup
			}
		}
	}
	base.Note = "speedup is Apriori's time over the run's time at the same support; " +
		"pattern growth wins grow as support falls and candidate sets explode"
	return base, nil
}

// WritePatternBaseline emits the EXP-P3 baseline as indented JSON.
func WritePatternBaseline(w io.Writer, s Scale) error {
	base, err := MeasurePatternBaseline(s)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(base)
}

// RunP3 prints the pattern-growth sweep as a table: each engine at each
// support level with wall-clock, speedup over Apriori, and allocations.
func RunP3(w io.Writer, s Scale) error {
	header(w, "P3", "pattern growth vs candidate generation across supports")
	base, err := MeasurePatternBaseline(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%s (GOMAXPROCS=%d)\n", base.Fixture, base.GOMAXPROCS)
	fmt.Fprintf(w, "%-10s%-16s%10s%12s%10s%12s%12s\n",
		"minsup", "miner", "frequent", "ms", "speedup", "alloc MB", "allocs")
	for _, r := range base.Runs {
		fmt.Fprintf(w, "%-10.4f%-16s%10d%12.1f%10.2f%12.1f%12d\n",
			r.MinSup, r.Miner, r.Frequent, r.Millis, r.Speedup, float64(r.Bytes)/1e6, r.Allocs)
	}
	fmt.Fprintf(w, "\nFPGrowth at the lowest support: %.2fx over Apriori\n", base.LowestSupportSpeedup)
	if base.Note != "" {
		fmt.Fprintf(w, "note: %s\n", base.Note)
	}
	return nil
}
