package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestDistBaselineJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("measures wall-clock sweeps")
	}
	var buf bytes.Buffer
	if err := WriteDistBaseline(&buf, Quick); err != nil {
		t.Fatal(err)
	}
	var base DistBaseline
	if err := json.Unmarshal(buf.Bytes(), &base); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if base.Fixture == "" || base.MinSupport <= 0 || base.GOMAXPROCS < 1 {
		t.Fatalf("incomplete header: %+v", base)
	}
	want := len(p4Engines()) * len(DistWorkerCounts)
	if len(base.Runs) != want {
		t.Fatalf("runs = %d, want %d", len(base.Runs), want)
	}
	for _, r := range base.Runs {
		if r.Millis <= 0 || r.LocalMillis <= 0 || r.Overhead <= 0 {
			t.Errorf("%s/%d: non-positive timing: %+v", r.Engine, r.Workers, r)
		}
		if r.ShippedShards < r.Workers && r.ShippedShards < 1 {
			t.Errorf("%s/%d: no shards shipped", r.Engine, r.Workers)
		}
		if r.CountCalls < 1 {
			t.Errorf("%s/%d: no count calls recorded", r.Engine, r.Workers)
		}
		if r.Allocs == 0 {
			t.Errorf("%s/%d: missing alloc stats", r.Engine, r.Workers)
		}
	}
}

func TestRunP4PrintsTable(t *testing.T) {
	if testing.Short() {
		t.Skip("measures wall-clock sweeps")
	}
	var buf bytes.Buffer
	if err := RunP4(&buf, Quick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"EXP-P4", "overhead", "Apriori", "FPGrowth"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
