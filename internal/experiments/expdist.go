package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"repro/internal/assoc"
	"repro/internal/dist"
)

// DistWorkerCounts is the worker ladder the EXP-P4 sweep runs; cmd/dmbench
// narrows it to one count with -distworkers.
var DistWorkerCounts = []int{1, 2, 4}

// p4Engines lists the distributed engine strategies the sweep compares,
// each against its local reference miner.
func p4Engines() []struct {
	Engine string
	Local  assoc.Miner
} {
	return []struct {
		Engine string
		Local  assoc.Miner
	}{
		{assoc.DistEngineApriori, &assoc.Apriori{}},
		{assoc.DistEngineFPGrowth, &assoc.FPGrowth{}},
	}
}

// DistRun is one timed (engine, workers) configuration of EXP-P4.
type DistRun struct {
	Engine  string  `json:"engine"`
	Workers int     `json:"workers"`
	Millis  float64 `json:"ms"`
	// LocalMillis is the matching local engine's best-of-three time.
	LocalMillis float64 `json:"local_ms"`
	// Overhead is Millis / LocalMillis: what shipping shards through the
	// gob transport and merging serialized buffers costs over counting in
	// place. On a single-CPU host it is all cost; on a multi-core host the
	// fan-out claws it back.
	Overhead float64 `json:"overhead"`
	// ShippedShards / ShipCalls / CountCalls are the coordinator's traffic
	// counters for one Mine run (plain-DB traffic is deterministic per
	// run, so the accumulated best-of sweep divides down exactly).
	ShippedShards int `json:"shipped_shards"`
	ShipCalls     int `json:"ship_calls"`
	CountCalls    int `json:"count_calls"`
	AllocStats
}

// DistBaseline is the machine-readable output of EXP-P4, persisted as
// BENCH_dist.json: the distributed-vs-local overhead trajectory across the
// worker ladder, with allocations and transport traffic recorded alongside
// wall-clock.
type DistBaseline struct {
	Fixture    string    `json:"fixture"`
	MinSupport float64   `json:"minsup"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	NumCPU     int       `json:"numcpu"`
	Runs       []DistRun `json:"runs"`
	Note       string    `json:"note,omitempty"`
}

// MeasureDistBaseline runs the EXP-P4 sweep: each distributed engine at
// every worker count over the in-process gob transport (so serialization
// is paid exactly as the RPC transport would pay it), best-of-three
// against the local reference, with a byte-identity cross-check on every
// measured run.
func MeasureDistBaseline(s Scale) (*DistBaseline, error) {
	db, fixture, err := p1Fixture(s)
	if err != nil {
		return nil, err
	}
	base := &DistBaseline{
		Fixture:    fixture,
		MinSupport: p1MinSup,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, eng := range p4Engines() {
		localRes, localD, _, err := bestOf(eng.Local, db, p1MinSup)
		if err != nil {
			return nil, err
		}
		localMS := float64(localD.Microseconds()) / 1000.0
		want := string(localRes.Canonical())
		for _, workers := range DistWorkerCounts {
			d := &assoc.Distributed{
				Transport: dist.NewLocalTransport(workers, true),
				Workers:   workers,
				Engine:    eng.Engine,
			}
			res, dur, alloc, err := bestOf(d, db, p1MinSup)
			// The counters accumulated over all bestOf runs; each run of a
			// plain-DB mine ships and counts identically, so dividing
			// recovers the per-run traffic exactly.
			stats := d.Coordinator().Stats()
			stats.ShippedShards /= bestOfRuns
			stats.ShipCalls /= bestOfRuns
			stats.CountCalls /= bestOfRuns
			d.Close()
			if err != nil {
				return nil, err
			}
			if got := string(res.Canonical()); got != want {
				return nil, fmt.Errorf("EXP-P4: distributed %s at %d workers diverges from local run",
					eng.Engine, workers)
			}
			msVal := float64(dur.Microseconds()) / 1000.0
			overhead := 0.0
			if localMS > 0 {
				overhead = msVal / localMS
			}
			base.Runs = append(base.Runs, DistRun{
				Engine: eng.Engine, Workers: workers,
				Millis: msVal, LocalMillis: localMS, Overhead: overhead,
				ShippedShards: stats.ShippedShards, ShipCalls: stats.ShipCalls,
				CountCalls: stats.CountCalls, AllocStats: alloc,
			})
		}
	}
	base.Note = "overhead is distributed time over the local engine's time (gob in-process transport; " +
		"every run byte-identity-checked against the local result)"
	if base.GOMAXPROCS < 2 {
		base.Note += "; measured on a single-CPU host, so the fan-out cannot repay the serialization cost here"
	}
	return base, nil
}

// WriteDistBaseline emits the EXP-P4 baseline as indented JSON.
func WriteDistBaseline(w io.Writer, s Scale) error {
	base, err := MeasureDistBaseline(s)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(base)
}

// RunP4 prints the distributed overhead sweep as a table: each engine at
// each worker count with wall-clock, overhead over local, transport
// traffic and allocations.
func RunP4(w io.Writer, s Scale) error {
	header(w, "P4", "distributed mining: serialization and merge overhead vs local")
	base, err := MeasureDistBaseline(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%s at minsup %.4f (GOMAXPROCS=%d)\n", base.Fixture, base.MinSupport, base.GOMAXPROCS)
	fmt.Fprintf(w, "%-12s%8s%10s%12s%10s%10s%10s%12s%12s\n",
		"engine", "workers", "ms", "local ms", "overhead", "shipped", "calls", "alloc MB", "allocs")
	for _, r := range base.Runs {
		fmt.Fprintf(w, "%-12s%8d%10.1f%12.1f%10.2f%10d%10d%12.1f%12d\n",
			r.Engine, r.Workers, r.Millis, r.LocalMillis, r.Overhead,
			r.ShippedShards, r.ShipCalls+r.CountCalls, float64(r.Bytes)/1e6, r.Allocs)
	}
	if base.Note != "" {
		fmt.Fprintf(w, "\nnote: %s\n", base.Note)
	}
	return nil
}
