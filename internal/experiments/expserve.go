package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/mining"
)

// EXP-SV1 thresholds: supports low enough that the fixture yields a real
// rule set, floors matching internal/serve's defaults scale.
const (
	sv1MinSup  = 0.02
	sv1Floor   = 0.3
	sv1Readers = 4
	// sv1BatchOps is the ops per writer round (appends and deletes mixed).
	sv1BatchOps = 6
)

// ServeBaseline is the machine-readable output of EXP-SV1, persisted as
// BENCH_serve.json: query throughput and latency of the serving tier
// under a live update stream, with every sampled snapshot replay-verified
// byte-identical to a from-scratch mine at its version.
type ServeBaseline struct {
	Fixture    string  `json:"fixture"`
	MinSupport float64 `json:"minsup"`
	RuleFloor  float64 `json:"rule_floor"`
	// Readers concurrent query goroutines; Rounds writer batches (each
	// batch is sv1BatchOps ops followed by a synchronous flush/maintain).
	Readers int `json:"readers"`
	Rounds  int `json:"rounds"`
	// OpsIngested is the total queue ops the update stream pushed.
	OpsIngested int `json:"ops_ingested"`
	// VersionsSampled counts distinct snapshot versions the readers
	// observed; VersionsVerified counts those replay-verified
	// byte-identical against a from-scratch mine (the two must be equal).
	VersionsSampled  int `json:"versions_sampled"`
	VersionsVerified int `json:"versions_verified"`
	// Queries is the total completed reads; QPS the aggregate rate.
	Queries int     `json:"queries"`
	QPS     float64 `json:"qps"`
	// P50Micros / P99Micros are query-latency percentiles across all
	// readers and query kinds, in microseconds (cache hits are
	// sub-microsecond, so milliseconds would round to zero).
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	// CacheHits / CacheMisses are the server's LRU counters at the end of
	// the run.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"numcpu"`
	Note        string `json:"note,omitempty"`
}

// sv1Fixture builds the serving workload: correlated item pairs plus
// noise, the same shape internal/serve's tests mine.
func sv1Fixture(s Scale) ([][]int, string, int) {
	n, rounds := 400, 12
	if s == Full {
		n, rounds = 2000, 30
	}
	rng := rand.New(rand.NewSource(17))
	rows := make([][]int, n)
	for i := range rows {
		pair := rng.Intn(12) * 2
		row := []int{pair, pair + 1}
		for j := 0; j < 3; j++ {
			row = append(row, rng.Intn(24))
		}
		rows[i] = row
	}
	return rows, fmt.Sprintf("SERVE.D%d", n), rounds
}

// sv1Sample is one reader's first observation of a snapshot version.
type sv1Sample struct {
	ops   uint64
	canon []byte
}

// replayRows replays opLog[:ops] over the initial rows with the queue-op
// semantics (append adds a row, delete removes the live row at TID,
// out-of-range deletes dropped — exactly Server.apply).
func replayRows(initial [][]int, opLog []serve.Op, ops uint64) [][]int {
	rows := make([][]int, len(initial))
	copy(rows, initial)
	for _, op := range opLog[:ops] {
		switch op.Kind {
		case serve.OpAppend:
			rows = append(rows, op.Items)
		case serve.OpDelete:
			if op.TID >= 0 && op.TID < len(rows) {
				rows = append(rows[:op.TID:op.TID], rows[op.TID+1:]...)
			}
		}
	}
	return rows
}

// MeasureServeBaseline runs EXP-SV1: a serve.Server over the fixture,
// sv1Readers goroutines issuing randomized rule/support/recommend
// queries while a writer streams append/delete batches and flushes after
// each; then every snapshot version any reader observed is replayed from
// the op log and mined from scratch, and its canonical bytes must match
// — the snapshot-consistency contract measured under load, not just
// asserted in unit tests.
func MeasureServeBaseline(s Scale) (*ServeBaseline, error) {
	rows, fixture, rounds := sv1Fixture(s)
	initial := make([][]int, len(rows))
	copy(initial, rows)
	db, err := mining.NewDB(rows)
	if err != nil {
		return nil, err
	}
	srv, err := serve.New(db, serve.Config{
		MinSupport:    sv1MinSup,
		RuleFloor:     sv1Floor,
		MaintainAfter: 1 << 30, // flush-driven: versions advance only at round boundaries
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	base := &ServeBaseline{
		Fixture:    fixture,
		MinSupport: sv1MinSup,
		RuleFloor:  sv1Floor,
		Readers:    sv1Readers,
		Rounds:     rounds,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	var (
		mu      sync.Mutex
		samples = map[uint64]sv1Sample{}
		done    = make(chan struct{})
		wg      sync.WaitGroup
		lats    = make([][]time.Duration, sv1Readers)
	)
	ctx := context.Background()
	start := time.Now()

	// Readers: randomized queries against whatever snapshot is live,
	// recording latency and the first observation of each version.
	for r := 0; r < sv1Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-done:
					return
				default:
				}
				v := srv.View()
				mu.Lock()
				if _, ok := samples[v.Version()]; !ok {
					samples[v.Version()] = sv1Sample{ops: v.Ops(), canon: v.Canonical()}
				}
				mu.Unlock()
				t0 := time.Now()
				var qerr error
				bys := []serve.RankBy{serve.ByConfidence, serve.BySupport, serve.ByLift}
				switch rng.Intn(3) {
				case 0:
					_, _, qerr = srv.TopRules(serve.RulesQuery{K: 1 + rng.Intn(20), By: bys[rng.Intn(len(bys))]})
				case 1:
					_, qerr = srv.ItemsetSupport(rng.Intn(24))
				default:
					_, _, qerr = srv.Recommend([]int{rng.Intn(24)}, 5)
				}
				if qerr != nil {
					return // Close() raced the drain; the writer decides success
				}
				lats[r] = append(lats[r], time.Since(t0))
			}
		}(r)
	}

	// Writer: the live update stream. Each round enqueues a batch and
	// flushes, so every round publishes a fresh snapshot under the
	// readers' feet.
	wrng := rand.New(rand.NewSource(99))
	var opLog []serve.Op
	liveRows := len(initial)
	for round := 0; round < rounds; round++ {
		for i := 0; i < sv1BatchOps; i++ {
			var op serve.Op
			if liveRows > len(initial)/2 && wrng.Intn(3) == 0 {
				op = serve.Op{Kind: serve.OpDelete, TID: wrng.Intn(liveRows)}
				liveRows--
			} else {
				pair := wrng.Intn(12) * 2
				op = serve.Op{Kind: serve.OpAppend, Items: []int{pair, pair + 1, wrng.Intn(24)}}
				liveRows++
			}
			opLog = append(opLog, op)
			if err := srv.Enqueue(ctx, op); err != nil {
				close(done)
				wg.Wait()
				return nil, err
			}
		}
		if _, err := srv.Flush(ctx); err != nil {
			close(done)
			wg.Wait()
			return nil, err
		}
		// Give the readers a scheduling window on the fresh snapshot, so
		// the verification covers most published versions even on one CPU.
		time.Sleep(time.Millisecond)
	}
	close(done)
	wg.Wait()
	elapsed := time.Since(start)

	// Aggregate latency and throughput.
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("EXP-SV1: readers completed no queries")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(all)-1))
		return float64(all[idx].Nanoseconds()) / 1000.0
	}
	base.Queries = len(all)
	base.QPS = float64(len(all)) / elapsed.Seconds()
	base.P50Micros = pct(0.50)
	base.P99Micros = pct(0.99)
	base.OpsIngested = len(opLog)

	// Verify: every sampled version must be byte-identical to a
	// from-scratch mine over the op log replayed to that version's
	// position.
	versions := make([]uint64, 0, len(samples))
	for v := range samples {
		versions = append(versions, v)
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
	base.VersionsSampled = len(versions)
	for _, ver := range versions {
		smp := samples[ver]
		replayed := replayRows(initial, opLog, smp.ops)
		rdb, err := mining.NewDB(replayed)
		if err != nil {
			return nil, err
		}
		res, err := mining.Mine(ctx, rdb, mining.MinSupport(sv1MinSup))
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(res.Canonical(), smp.canon) {
			return nil, fmt.Errorf("EXP-SV1: version %d (ops %d) diverges from a from-scratch mine", ver, smp.ops)
		}
		base.VersionsVerified++
	}

	stats := srv.Stats()
	base.CacheHits, base.CacheMisses = stats.CacheHits, stats.CacheMisses
	base.Note = "qps and latency measured while a writer streamed append/delete batches with a flush per round; " +
		"every snapshot version any reader observed was replayed from the op log and byte-checked against a from-scratch mine"
	return base, nil
}

// WriteServeBaseline emits the EXP-SV1 baseline as indented JSON.
func WriteServeBaseline(w io.Writer, s Scale) error {
	base, err := MeasureServeBaseline(s)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(base)
}

// RunSV1 prints the serving-tier load experiment: throughput, latency
// percentiles and the replay-verification tally.
func RunSV1(w io.Writer, s Scale) error {
	header(w, "SV1", "serving tier: concurrent reads under a live update stream")
	base, err := MeasureServeBaseline(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%s at minsup %.3f, floor %.2f (%d readers, %d rounds, GOMAXPROCS=%d)\n",
		base.Fixture, base.MinSupport, base.RuleFloor, base.Readers, base.Rounds, base.GOMAXPROCS)
	fmt.Fprintf(w, "%-14s%12s%12s%12s%12s\n", "queries", "qps", "p50 us", "p99 us", "ops in")
	fmt.Fprintf(w, "%-14d%12.0f%12.2f%12.2f%12d\n",
		base.Queries, base.QPS, base.P50Micros, base.P99Micros, base.OpsIngested)
	fmt.Fprintf(w, "\nsnapshots: %d versions sampled, %d replay-verified byte-identical; cache %d hits / %d misses\n",
		base.VersionsSampled, base.VersionsVerified, base.CacheHits, base.CacheMisses)
	if base.Note != "" {
		fmt.Fprintf(w, "\nnote: %s\n", base.Note)
	}
	return nil
}
