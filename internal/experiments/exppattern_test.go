package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestPatternBaselineJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("measures wall-clock sweeps")
	}
	var buf bytes.Buffer
	if err := WritePatternBaseline(&buf, Quick); err != nil {
		t.Fatal(err)
	}
	var base PatternBaseline
	if err := json.Unmarshal(buf.Bytes(), &base); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if base.Fixture == "" || base.GOMAXPROCS < 1 {
		t.Fatalf("incomplete header: %+v", base)
	}
	// 3 engines x 5 support levels.
	if len(base.Runs) != 15 {
		t.Fatalf("runs = %d, want 15", len(base.Runs))
	}
	for _, r := range base.Runs {
		if r.Millis <= 0 || r.Speedup <= 0 || r.Frequent <= 0 {
			t.Errorf("run %+v has non-positive fields", r)
		}
		if r.Allocs == 0 || r.Bytes == 0 {
			t.Errorf("run %+v is missing allocation stats", r)
		}
		if r.Miner == "Apriori" && r.Speedup != 1.0 {
			t.Errorf("Apriori reference run %+v should have speedup 1.0", r)
		}
	}
	if base.LowestSupportSpeedup <= 0 {
		t.Fatalf("lowest-support speedup = %v", base.LowestSupportSpeedup)
	}
}
