package experiments

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"A1", "A2", "A3", "A4", "A5", "A6", "C1", "C2", "C3", "C4", "D1", "E1", "F1", "K1", "P1", "P2", "P3", "P4", "Q1", "R1", "S1", "SV1", "T1", "T2", "T3"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("ids[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("C2")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "C2" {
		t.Errorf("ID = %s", e.ID)
	}
	if _, err := ByID("ZZ"); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown error = %v", err)
	}
}

// TestEveryExperimentRunsQuick executes the whole suite at Quick scale and
// sanity-checks the output headers. This is the integration test of the
// entire library: every substrate and every algorithm executes.
func TestEveryExperimentRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment suite takes tens of seconds")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, Quick); err != nil {
				t.Fatalf("EXP-%s: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, "== EXP-"+e.ID) {
				t.Errorf("missing header in output: %q", out[:minInt(80, len(out))])
			}
			if len(strings.Split(out, "\n")) < 4 {
				t.Errorf("suspiciously short output:\n%s", out)
			}
		})
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestMsFormatting(t *testing.T) {
	if got := ms(1500 * 1000); got != "1.5" {
		// 1.5ms in nanoseconds.
		t.Errorf("ms = %q", got)
	}
}
