package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestParallelBaselineJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("measures wall-clock sweeps")
	}
	var buf bytes.Buffer
	if err := WriteParallelBaseline(&buf, Quick); err != nil {
		t.Fatal(err)
	}
	var base ParallelBaseline
	if err := json.Unmarshal(buf.Bytes(), &base); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if base.Fixture == "" || base.MinSupport <= 0 || base.GOMAXPROCS < 1 {
		t.Fatalf("incomplete header: %+v", base)
	}
	// 3 miners x 4 worker counts, plus 2 fixtures x 2 Eclat layouts.
	if len(base.Runs) != 12 {
		t.Fatalf("runs = %d, want 12", len(base.Runs))
	}
	if len(base.EclatLayouts) != 4 {
		t.Fatalf("eclat layouts = %d, want 4", len(base.EclatLayouts))
	}
	for _, r := range base.Runs {
		if r.Millis <= 0 || r.Speedup <= 0 {
			t.Errorf("run %+v has non-positive timing", r)
		}
		if r.Workers == 1 && r.Speedup != 1.0 {
			t.Errorf("serial run %+v should have speedup 1.0", r)
		}
	}
}
