package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestIncrementalBaselineJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("measures wall-clock sweeps")
	}
	var buf bytes.Buffer
	if err := WriteIncrementalBaseline(&buf, Quick); err != nil {
		t.Fatal(err)
	}
	var base IncrementalBaseline
	if err := json.Unmarshal(buf.Bytes(), &base); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if base.Fixture == "" || base.MinSupport <= 0 || base.ShardCap%64 != 0 || base.GOMAXPROCS < 1 {
		t.Fatalf("incomplete header: %+v", base)
	}
	if len(base.Steps) != 8 {
		t.Fatalf("steps = %d, want 8", len(base.Steps))
	}
	for i, st := range base.Steps {
		if !st.Verified {
			t.Errorf("step %d not verified against a from-scratch run", i+1)
		}
		if st.MaintainMS <= 0 || st.FullMineMS <= 0 {
			t.Errorf("step %d has non-positive timing: %+v", i+1, st)
		}
		if st.DirtyShards > st.NumShards {
			t.Errorf("step %d dirty %d > shards %d", i+1, st.DirtyShards, st.NumShards)
		}
		// The workload is built to stay within the dirty-fraction envelope
		// the acceptance target is defined on (unless a border crossing
		// forced a full re-count).
		if !st.FullRun && st.DirtyFrac > 0.25 {
			t.Errorf("step %d dirty fraction %.2f exceeds the 25%% envelope", i+1, st.DirtyFrac)
		}
	}
}
