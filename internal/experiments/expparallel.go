package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/assoc"
	"repro/internal/synth"
	"repro/internal/transactions"
)

// DefaultWorkers is applied to every miner that supports count
// distribution when an experiment builds its lineup; cmd/dmbench sets it
// from -workers. 0 or 1 keeps the serial scans.
var DefaultWorkers = 0

// withWorkers applies DefaultWorkers to a miner when it supports it.
func withWorkers(m assoc.Miner) assoc.Miner {
	if DefaultWorkers > 1 {
		if ws, ok := m.(assoc.WorkerSetter); ok {
			ws.SetWorkers(DefaultWorkers)
		}
	}
	return m
}

// p1Fixture returns the scaling fixture: the T10.I4 workload the parallel
// acceptance target is defined on.
func p1Fixture(s Scale) (*transactions.DB, string, error) {
	d := 1000
	if s == Full {
		d = 4000
	}
	db, err := synth.Baskets(synth.TxI(10, 4, d, 94))
	return db, fmt.Sprintf("T10.I4.D%d", d), err
}

// p1DenseFixture returns a small-universe (dense tid-list) workload where
// the bitset layout's word-wise AND pays off most.
func p1DenseFixture(s Scale) (*transactions.DB, string, error) {
	d := 1000
	if s == Full {
		d = 4000
	}
	c := synth.TxI(10, 4, d, 94)
	c.NumItems = 100
	c.NumPatterns = 200
	db, err := synth.Baskets(c)
	return db, fmt.Sprintf("T10.I4.D%d.N100", d), err
}

const p1MinSup = 0.0075

// bestOfRuns is how many times bestOf mines each configuration; stats
// that accumulate across runs (the EXP-P4 traffic counters) divide by it
// to report per-run values.
const bestOfRuns = 3

// bestOf mines bestOfRuns times and returns the fastest run's wall-clock
// duration, allocation stats and Result — the usual noise guard for
// coarse single-shot timings; returning the Result lets callers
// cross-check outputs without paying an extra mine.
func bestOf(m assoc.Miner, db *transactions.DB, minSup float64) (*assoc.Result, time.Duration, AllocStats, error) {
	best := time.Duration(0)
	var bestAlloc AllocStats
	var bestRes *assoc.Result
	for i := 0; i < bestOfRuns; i++ {
		var res *assoc.Result
		d, alloc, err := timeItAlloc(func() error {
			var e error
			res, e = m.Mine(db, minSup)
			return e
		})
		if err != nil {
			return nil, 0, AllocStats{}, err
		}
		if best == 0 || d < best {
			best = d
			bestAlloc = alloc
			bestRes = res
		}
	}
	return bestRes, best, bestAlloc, nil
}

// p1Lineup returns the count-distributed miners the scaling sweep covers,
// built fresh per worker count.
func p1Lineup(workers int) []assoc.Miner {
	return []assoc.Miner{
		&assoc.Apriori{Workers: workers},
		&assoc.DHP{Workers: workers},
		&assoc.Partition{NumPartitions: 4, Workers: workers},
	}
}

var p1WorkerCounts = []int{1, 2, 4, 8}

// ParallelRun is one timed configuration of the scaling sweep.
type ParallelRun struct {
	Miner   string  `json:"miner"`
	Workers int     `json:"workers"`
	Millis  float64 `json:"ms"`
	Speedup float64 `json:"speedup"` // serial time / this time, same miner
	AllocStats
}

// EclatLayoutRun is one timed Eclat layout configuration.
type EclatLayoutRun struct {
	Fixture string  `json:"fixture"`
	Layout  string  `json:"layout"`
	Millis  float64 `json:"ms"`
	Speedup float64 `json:"speedup"` // tid-list time / this time, same fixture
	AllocStats
}

// ParallelBaseline is the machine-readable output of EXP-P1, persisted as
// BENCH_parallel.json so later PRs have a perf trajectory to compare
// against.
type ParallelBaseline struct {
	Fixture      string           `json:"fixture"`
	MinSupport   float64          `json:"minsup"`
	GOMAXPROCS   int              `json:"gomaxprocs"`
	NumCPU       int              `json:"numcpu"`
	Runs         []ParallelRun    `json:"runs"`
	EclatLayouts []EclatLayoutRun `json:"eclat_layouts"`
	Note         string           `json:"note,omitempty"`
}

// MeasureParallelBaseline runs the serial-vs-2/4/8-workers sweep and the
// Eclat layout ablation.
func MeasureParallelBaseline(s Scale) (*ParallelBaseline, error) {
	db, fixture, err := p1Fixture(s)
	if err != nil {
		return nil, err
	}
	base := &ParallelBaseline{
		Fixture:    fixture,
		MinSupport: p1MinSup,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	serialMS := map[string]float64{}
	for _, workers := range p1WorkerCounts {
		for _, m := range p1Lineup(workers) {
			_, d, alloc, err := bestOf(m, db, p1MinSup)
			if err != nil {
				return nil, err
			}
			msVal := float64(d.Microseconds()) / 1000.0
			if workers == 1 {
				serialMS[m.Name()] = msVal
			}
			speedup := 0.0
			if s := serialMS[m.Name()]; s > 0 && msVal > 0 {
				speedup = s / msVal
			}
			base.Runs = append(base.Runs, ParallelRun{
				Miner: m.Name(), Workers: workers, Millis: msVal, Speedup: speedup,
				AllocStats: alloc,
			})
		}
	}
	// Eclat tid-list vs bitset, on the sparse and the dense fixture.
	denseDB, denseName, err := p1DenseFixture(s)
	if err != nil {
		return nil, err
	}
	for _, fx := range []struct {
		name string
		db   *transactions.DB
	}{{fixture, db}, {denseName, denseDB}} {
		tidMS := 0.0
		for _, layout := range []struct {
			name string
			l    assoc.TidLayout
		}{{"tidlist", assoc.LayoutTIDList}, {"bitset", assoc.LayoutBitset}} {
			_, d, alloc, err := bestOf(&assoc.Eclat{Layout: layout.l}, fx.db, p1MinSup)
			if err != nil {
				return nil, err
			}
			msVal := float64(d.Microseconds()) / 1000.0
			if layout.name == "tidlist" {
				tidMS = msVal
			}
			speedup := 0.0
			if tidMS > 0 && msVal > 0 {
				speedup = tidMS / msVal
			}
			base.EclatLayouts = append(base.EclatLayouts, EclatLayoutRun{
				Fixture: fx.name, Layout: layout.name, Millis: msVal, Speedup: speedup,
				AllocStats: alloc,
			})
		}
	}
	if base.GOMAXPROCS < 2 {
		base.Note = "measured on a single-CPU host: count-distribution cannot show wall-clock speedup here; re-emit on a multi-core machine for the scaling trajectory"
	}
	return base, nil
}

// WriteParallelBaseline emits the baseline as indented JSON.
func WriteParallelBaseline(w io.Writer, s Scale) error {
	base, err := MeasureParallelBaseline(s)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(base)
}

// RunP1 prints the parallel scaling sweep as a table: the count-distributed
// miners at 1/2/4/8 workers plus the Eclat layout ablation.
func RunP1(w io.Writer, s Scale) error {
	header(w, "P1", "count-distribution scaling and Eclat layout ablation")
	base, err := MeasureParallelBaseline(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%s at minsup %.4f (GOMAXPROCS=%d)\n", base.Fixture, base.MinSupport, base.GOMAXPROCS)
	fmt.Fprintf(w, "%-16s%10s%12s%10s%12s%12s\n", "miner", "workers", "ms", "speedup", "alloc MB", "allocs")
	for _, r := range base.Runs {
		fmt.Fprintf(w, "%-16s%10d%12.1f%10.2f%12.1f%12d\n",
			r.Miner, r.Workers, r.Millis, r.Speedup, float64(r.Bytes)/1e6, r.Allocs)
	}
	fmt.Fprintf(w, "\n%-20s%-10s%12s%10s%12s%12s\n", "fixture", "layout", "ms", "speedup", "alloc MB", "allocs")
	for _, r := range base.EclatLayouts {
		fmt.Fprintf(w, "%-20s%-10s%12.1f%10.2f%12.1f%12d\n",
			r.Fixture, r.Layout, r.Millis, r.Speedup, float64(r.Bytes)/1e6, r.Allocs)
	}
	if base.Note != "" {
		fmt.Fprintf(w, "\nnote: %s\n", base.Note)
	}
	return nil
}
