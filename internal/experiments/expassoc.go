package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/assoc"
	"repro/internal/synth"
	"repro/internal/transactions"
	"repro/mining"
)

// a1Algorithms is the VLDB'94 Fig. 4 lineup, named for the public API.
func a1Algorithms() []string {
	return []string{"SETM", "AIS", "AprioriTid", "Apriori", "AprioriHybrid"}
}

// miningDB adapts an internal database to the public facade once per
// workload (the row headers are shared, the DB wrapper re-normalises).
func miningDB(db *transactions.DB) (*mining.DB, error) {
	rows := make([][]int, db.Len())
	for i, tx := range db.Transactions {
		rows[i] = tx
	}
	return mining.NewDB(rows)
}

// RunA1 reproduces the execution-time-vs-support figure on the three
// classic workloads, driven through the public mining API — the same
// sweep a library consumer would write, which keeps the facade's overhead
// honest in the headline experiment.
func RunA1(w io.Writer, s Scale) error {
	header(w, "A1", "execution time (ms) vs minimum support")
	d := 2000
	supports := []float64{0.02, 0.01, 0.0075, 0.005}
	if s == Full {
		d = 10000
		supports = []float64{0.02, 0.015, 0.01, 0.0075, 0.005, 0.0033}
	}
	datasets := []struct {
		name string
		t, i float64
	}{
		{"T5.I2", 5, 2},
		{"T10.I4", 10, 4},
		{"T20.I6", 20, 6},
	}
	ctx := context.Background()
	for _, ds := range datasets {
		raw, err := synth.Baskets(synth.TxI(ds.t, ds.i, d, 94))
		if err != nil {
			return err
		}
		db, err := miningDB(raw)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n%s.D%d\n", ds.name, d)
		fmt.Fprintf(w, "%-8s", "minsup")
		for _, name := range a1Algorithms() {
			fmt.Fprintf(w, "%14s", name)
		}
		fmt.Fprintln(w)
		for _, sup := range supports {
			fmt.Fprintf(w, "%-8.2f", sup*100)
			for _, name := range a1Algorithms() {
				opts := []mining.Option{mining.Algorithm(name), mining.MinSupport(sup)}
				// Mirror withWorkers: only Apriori takes the -workers
				// fan-out here, and 0/1 keeps the serial scans.
				if name == "Apriori" && DefaultWorkers > 1 {
					opts = append(opts, mining.Workers(DefaultWorkers))
				}
				dur, err := timeIt(func() error {
					_, e := mining.Mine(ctx, db, opts...)
					return e
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%14s", ms(dur))
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// RunA2 prints the per-pass candidate/frequent counts for Apriori and the
// on-the-fly candidate counts of AIS/SETM on the same workload.
func RunA2(w io.Writer, s Scale) error {
	header(w, "A2", "candidates and frequent itemsets per pass, T10.I4 at 0.75% support")
	d := 2000
	if s == Full {
		d = 10000
	}
	db, err := synth.Baskets(synth.TxI(10, 4, d, 94))
	if err != nil {
		return err
	}
	for _, m := range []assoc.Miner{withWorkers(&assoc.Apriori{}), &assoc.AIS{}} {
		res, err := m.Mine(db, 0.0075)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n%s\n%-6s%12s%12s\n", m.Name(), "pass", "candidates", "frequent")
		for _, p := range res.Passes {
			fmt.Fprintf(w, "%-6d%12d%12d\n", p.K, p.Candidates, p.Frequent)
		}
	}
	return nil
}

// RunA3 reproduces the transactions scale-up figure.
func RunA3(w io.Writer, s Scale) error {
	header(w, "A3", "execution time (ms) vs number of transactions, T10.I4 at 0.75% support")
	sizes := []int{500, 1000, 2000, 4000}
	if s == Full {
		sizes = []int{2500, 5000, 10000, 25000, 50000}
	}
	miners := []assoc.Miner{withWorkers(&assoc.Apriori{}), &assoc.AprioriTid{}, &assoc.AprioriHybrid{}}
	fmt.Fprintf(w, "%-10s", "D")
	for _, m := range miners {
		fmt.Fprintf(w, "%14s", m.Name())
	}
	fmt.Fprintln(w)
	for _, d := range sizes {
		db, err := synth.Baskets(synth.TxI(10, 4, d, 94))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10d", d)
		for _, m := range miners {
			dur, err := timeIt(func() error {
				_, e := m.Mine(db, 0.0075)
				return e
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%14s", ms(dur))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RunA4 reproduces the transaction-size scale-up: T grows while D*T (total
// item occurrences) stays constant; minimum support is an absolute count
// so the workload difficulty tracks only transaction size.
func RunA4(w io.Writer, s Scale) error {
	header(w, "A4", "execution time (ms) vs average transaction size (fixed D*T)")
	budget := 20000
	if s == Full {
		budget = 100000
	}
	miners := []assoc.Miner{withWorkers(&assoc.Apriori{}), &assoc.AprioriTid{}, &assoc.AprioriHybrid{}}
	fmt.Fprintf(w, "%-8s%-10s", "T", "D")
	for _, m := range miners {
		fmt.Fprintf(w, "%14s", m.Name())
	}
	fmt.Fprintln(w)
	for _, t := range []float64{5, 10, 20, 30} {
		d := int(float64(budget) / t)
		db, err := synth.Baskets(synth.TxI(t, 4, d, 94))
		if err != nil {
			return err
		}
		// Fixed absolute support of ~50 occurrences (scaled with budget).
		minSup := 50.0 / float64(d)
		if s == Full {
			minSup = 250.0 / float64(d)
		}
		fmt.Fprintf(w, "%-8.0f%-10d", t, d)
		for _, m := range miners {
			dur, err := timeIt(func() error {
				_, e := m.Mine(db, minSup)
				return e
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%14s", ms(dur))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RunA5 measures the Partition algorithm against Apriori across partition
// counts and supports.
func RunA5(w io.Writer, s Scale) error {
	header(w, "A5", "Partition algorithm: execution time (ms) vs partitions")
	d := 2000
	supports := []float64{0.01, 0.0075, 0.005}
	if s == Full {
		d = 10000
		supports = []float64{0.01, 0.0075, 0.005, 0.0033}
	}
	db, err := synth.Baskets(synth.TxI(10, 4, d, 94))
	if err != nil {
		return err
	}
	parts := []int{1, 2, 4, 8}
	fmt.Fprintf(w, "%-8s%14s", "minsup", "Apriori")
	for _, p := range parts {
		fmt.Fprintf(w, "%14s", fmt.Sprintf("Part(%d)", p))
	}
	fmt.Fprintln(w)
	for _, sup := range supports {
		fmt.Fprintf(w, "%-8.2f", sup*100)
		dur, err := timeIt(func() error {
			_, e := withWorkers(&assoc.Apriori{}).Mine(db, sup)
			return e
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%14s", ms(dur))
		for _, p := range parts {
			m := withWorkers(&assoc.Partition{NumPartitions: p})
			dur, err := timeIt(func() error {
				_, e := m.Mine(db, sup)
				return e
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%14s", ms(dur))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RunS1 reproduces the GSP vs AprioriAll comparison.
func RunS1(w io.Writer, s Scale) error {
	header(w, "S1", "sequential patterns: execution time (ms) vs minimum support")
	customers := 300
	supports := []float64{0.04, 0.03, 0.02}
	if s == Full {
		customers = 800
		supports = []float64{0.03, 0.02, 0.015, 0.01}
	}
	raw, err := synth.Sequences(synth.C10T2S4I1(customers, 96))
	if err != nil {
		return err
	}
	data := fromSynth(raw)
	fmt.Fprintf(w, "%-8s%14s%14s%16s%16s\n", "minsup", "AprioriAll", "GSP", "AA candidates", "GSP candidates")
	for _, sup := range supports {
		row := fmt.Sprintf("%-8.2f", sup*100)
		var candAA, candGSP int
		aa := timeSeqMiner(data, sup, true, &candAA)
		gsp := timeSeqMiner(data, sup, false, &candGSP)
		row += fmt.Sprintf("%14s%14s%16d%16d", ms(aa), ms(gsp), candAA, candGSP)
		fmt.Fprintln(w, row)
	}
	return nil
}

func fromSynth(raw []synth.Sequence) []seqData {
	out := make([]seqData, len(raw))
	for i, s := range raw {
		out[i] = seqData(s)
	}
	return out
}

// seqData aliases the miner input type so expassoc.go stays free of a
// seqmine import cycle risk; see expseq.go for the timing helpers.
type seqData = []transactions.Itemset
