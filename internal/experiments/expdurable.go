package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/transactions"
	"repro/internal/wal"
	"repro/mining"
)

// EXP-D1 shape: a modest correlated fixture (the WAL, not the miner, is
// under test) and a few concurrent producers so wal's group commit has
// batches to merge under SyncAlways.
const (
	d1MinSup    = 0.05
	d1Producers = 8
)

// DurablePolicy is one fsync policy's ingest cost: ops durably ingested
// (enqueue through the WAL plus one final flush) and the resulting rate.
type DurablePolicy struct {
	Policy    string  `json:"policy"`
	Ops       int     `json:"ops"`
	Millis    float64 `json:"ms"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// MicrosPerOp is the amortized per-op persistence cost.
	MicrosPerOp float64 `json:"us_per_op"`
}

// DurableRecovery is one recovery measurement: a prepared data directory
// with Ops logged ops (snapshotted every SnapshotEvery ops, 0 = WAL
// replay only) and the wall time for serve.New to recover it to a
// served view.
type DurableRecovery struct {
	Ops           int     `json:"ops"`
	SnapshotEvery int     `json:"snapshot_every"`
	RecoveredOps  uint64  `json:"recovered_ops"`
	Millis        float64 `json:"ms"`
}

// DurableBaseline is the machine-readable output of EXP-D1, persisted as
// BENCH_durable.json: what durability costs at ingest time per fsync
// policy, and what recovery costs at startup as the log grows, with and
// without snapshots bounding replay.
type DurableBaseline struct {
	Fixture    string            `json:"fixture"`
	InitialTx  int               `json:"initial_tx"`
	Producers  int               `json:"producers"`
	Policies   []DurablePolicy   `json:"policies"`
	Recovery   []DurableRecovery `json:"recovery"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	NumCPU     int               `json:"numcpu"`
	Note       string            `json:"note,omitempty"`
}

// d1Fixture builds the initial rows and the workload sizes.
func d1Fixture(s Scale) ([][]int, int, []int) {
	n, ingest := 200, 1500
	replay := []int{500, 2000}
	if s == Full {
		n, ingest = 500, 6000
		replay = []int{1000, 4000, 12000}
	}
	rng := rand.New(rand.NewSource(23))
	rows := make([][]int, n)
	for i := range rows {
		pair := rng.Intn(10) * 2
		rows[i] = []int{pair, pair + 1, rng.Intn(20)}
	}
	return rows, ingest, replay
}

// d1Op is the deterministic append stream both halves of the experiment
// share.
func d1Op(i int) serve.Op {
	pair := (i % 10) * 2
	return serve.Op{Kind: serve.OpAppend, Items: []int{pair, pair + 1, i % 20}}
}

// measureIngest times n durable ingests (plus the final flush) under one
// policy. An empty dir string measures the in-memory baseline.
func measureIngest(rows [][]int, n int, dir string, policy wal.SyncPolicy) (float64, error) {
	db, err := mining.NewDB(rows)
	if err != nil {
		return 0, err
	}
	cfg := serve.Config{
		MinSupport:    d1MinSup,
		MaintainAfter: 1 << 30, // flush-driven: measure the WAL, not the miner
		SnapshotEvery: -1,
		QueueSize:     4 * d1Producers,
	}
	if dir != "" {
		cfg.DataDir = dir
		cfg.Fsync = policy
		cfg.FsyncEvery = 10 * time.Millisecond
	}
	srv, err := serve.New(db, cfg)
	if err != nil {
		return 0, err
	}
	defer srv.Close()

	ctx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, d1Producers)
	per := n / d1Producers
	for p := 0; p < d1Producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p * per; i < (p+1)*per; i++ {
				if err := srv.Enqueue(ctx, d1Op(i)); err != nil {
					errc <- err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return 0, err
	default:
	}
	// Flush makes the tail durable under every policy, so the clock stops
	// at the same guarantee regardless of how lazy the policy was.
	if _, err := srv.Flush(ctx); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds() * 1000, nil
}

// prepareLog writes a data directory with the initial rows snapshotted at
// offset 0 and ops logged appends, snapshotting every snapEvery ops when
// snapEvery > 0. It drives wal.Log directly (SyncNever — preparation is
// not under test) so no final compaction snapshot hides the replay cost
// serve.New will pay.
func prepareLog(dir string, rows [][]int, ops, snapEvery int) error {
	fsys, err := wal.DirFS(dir)
	if err != nil {
		return err
	}
	log, _, err := wal.Open(fsys, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		return err
	}
	defer log.Close()
	cur := make([]transactions.Itemset, len(rows))
	for i, r := range rows {
		cur[i] = transactions.NewItemset(r...)
	}
	if err := log.Snapshot(cur, 0); err != nil {
		return err
	}
	for i := 0; i < ops; i++ {
		op := d1Op(i)
		if _, err := log.Append(wal.Op{Kind: int(op.Kind), Items: op.Items, TID: op.TID}); err != nil {
			return err
		}
		cur = append(cur, transactions.NewItemset(op.Items...))
		if snapEvery > 0 && (i+1)%snapEvery == 0 {
			if err := log.Snapshot(cur, uint64(i+1)); err != nil {
				return err
			}
		}
	}
	return nil
}

// measureRecovery times serve.New over a prepared directory: WAL open,
// snapshot load, tail replay, session build and first published view.
func measureRecovery(dir string) (uint64, float64, error) {
	start := time.Now()
	srv, err := serve.New(nil, serve.Config{
		MinSupport:    d1MinSup,
		MaintainAfter: 1 << 30,
		SnapshotEvery: -1,
		DataDir:       dir,
	})
	if err != nil {
		return 0, 0, err
	}
	ms := time.Since(start).Seconds() * 1000
	ops, found := srv.Recovered()
	srv.Close()
	if !found {
		return 0, 0, fmt.Errorf("EXP-D1: prepared directory %s recovered nothing", dir)
	}
	return ops, ms, nil
}

// MeasureDurableBaseline runs EXP-D1: the durable ingest cost ladder
// (no WAL, SyncNever, SyncInterval, SyncAlways over a real directory)
// and the recovery-time curve vs log length with and without snapshots.
func MeasureDurableBaseline(s Scale) (*DurableBaseline, error) {
	rows, ingest, replay := d1Fixture(s)
	base := &DurableBaseline{
		Fixture:    fmt.Sprintf("DURABLE.D%d", len(rows)),
		InitialTx:  len(rows),
		Producers:  d1Producers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	policies := []struct {
		name   string
		policy wal.SyncPolicy
		onDisk bool
	}{
		{"off", wal.SyncAlways, false},
		{"never", wal.SyncNever, true},
		{"interval", wal.SyncInterval, true},
		{"always", wal.SyncAlways, true},
	}
	for _, p := range policies {
		dir := ""
		if p.onDisk {
			d, err := os.MkdirTemp("", "expd1-ingest-")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(d)
			dir = d
		}
		ms, err := measureIngest(rows, ingest, dir, p.policy)
		if err != nil {
			return nil, fmt.Errorf("EXP-D1 ingest %s: %w", p.name, err)
		}
		base.Policies = append(base.Policies, DurablePolicy{
			Policy:      p.name,
			Ops:         ingest,
			Millis:      ms,
			OpsPerSec:   float64(ingest) / (ms / 1000),
			MicrosPerOp: ms * 1000 / float64(ingest),
		})
	}

	for _, ops := range replay {
		for _, snapEvery := range []int{0, 256} {
			dir, err := os.MkdirTemp("", "expd1-recover-")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			if err := prepareLog(dir, rows, ops, snapEvery); err != nil {
				return nil, fmt.Errorf("EXP-D1 prepare (%d ops): %w", ops, err)
			}
			recOps, ms, err := measureRecovery(dir)
			if err != nil {
				return nil, err
			}
			if recOps != uint64(ops) {
				return nil, fmt.Errorf("EXP-D1: recovered %d of %d prepared ops", recOps, ops)
			}
			base.Recovery = append(base.Recovery, DurableRecovery{
				Ops:           ops,
				SnapshotEvery: snapEvery,
				RecoveredOps:  recOps,
				Millis:        ms,
			})
		}
	}

	base.Note = "ingest: producers enqueue concurrently, the clock stops after a flush makes the tail durable; " +
		"recovery: wall time for serve.New over a prepared directory (snapshot load, WAL replay, session build, first view)"
	return base, nil
}

// WriteDurableBaseline emits the EXP-D1 baseline as indented JSON.
func WriteDurableBaseline(w io.Writer, s Scale) error {
	base, err := MeasureDurableBaseline(s)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(base)
}

// RunD1 prints the durability experiment: the fsync-policy ingest ladder
// and the recovery-time curve.
func RunD1(w io.Writer, s Scale) error {
	header(w, "D1", "durable serving: fsync-policy ingest cost and crash-recovery time")
	base, err := MeasureDurableBaseline(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%s: %d initial tx, %d producers (GOMAXPROCS=%d)\n",
		base.Fixture, base.InitialTx, base.Producers, base.GOMAXPROCS)
	fmt.Fprintf(w, "%-12s%10s%12s%14s%12s\n", "fsync", "ops", "ms", "ops/sec", "us/op")
	for _, p := range base.Policies {
		fmt.Fprintf(w, "%-12s%10d%12.1f%14.0f%12.2f\n",
			p.Policy, p.Ops, p.Millis, p.OpsPerSec, p.MicrosPerOp)
	}
	fmt.Fprintf(w, "\n%-12s%16s%14s%12s\n", "log ops", "snapshot every", "recovered", "ms")
	for _, r := range base.Recovery {
		every := "none"
		if r.SnapshotEvery > 0 {
			every = fmt.Sprintf("%d", r.SnapshotEvery)
		}
		fmt.Fprintf(w, "%-12d%16s%14d%12.1f\n", r.Ops, every, r.RecoveredOps, r.Millis)
	}
	if base.Note != "" {
		fmt.Fprintf(w, "\nnote: %s\n", base.Note)
	}
	return nil
}
