package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/serve"
)

func TestServeBaselineJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("measures wall-clock sweeps")
	}
	var buf bytes.Buffer
	if err := WriteServeBaseline(&buf, Quick); err != nil {
		t.Fatal(err)
	}
	var base ServeBaseline
	if err := json.Unmarshal(buf.Bytes(), &base); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if base.Fixture == "" || base.MinSupport <= 0 || base.GOMAXPROCS < 1 {
		t.Fatalf("incomplete header: %+v", base)
	}
	if base.Queries < 1 || base.QPS <= 0 {
		t.Fatalf("no throughput measured: %+v", base)
	}
	if base.P50Micros < 0 || base.P99Micros < base.P50Micros {
		t.Fatalf("latency percentiles inconsistent: p50=%v p99=%v", base.P50Micros, base.P99Micros)
	}
	if base.OpsIngested == 0 {
		t.Fatal("the update stream ingested nothing")
	}
	// The contract the baseline exists to measure: every snapshot any
	// reader observed replay-verified byte-identical.
	if base.VersionsSampled < 1 || base.VersionsVerified != base.VersionsSampled {
		t.Fatalf("verification tally: %d sampled, %d verified",
			base.VersionsSampled, base.VersionsVerified)
	}
}

func TestRunSV1PrintsTable(t *testing.T) {
	if testing.Short() {
		t.Skip("measures wall-clock sweeps")
	}
	var buf bytes.Buffer
	if err := RunSV1(&buf, Quick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"EXP-SV1", "qps", "p99 us", "replay-verified"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestReplayRows(t *testing.T) {
	initial := [][]int{{1, 2}, {3, 4}}
	// Append two rows, drop an out-of-range delete, delete row 0 — the
	// exact Server.apply semantics the verification relies on.
	log := []serve.Op{
		{Kind: serve.OpAppend, Items: []int{5, 6}},
		{Kind: serve.OpAppend, Items: []int{7, 8}},
		{Kind: serve.OpDelete, TID: 99},
		{Kind: serve.OpDelete, TID: 0},
	}
	replayed := replayRows(initial, log, uint64(len(log)))
	want := [][]int{{3, 4}, {5, 6}, {7, 8}}
	if !reflect.DeepEqual(replayed, want) {
		t.Fatalf("replayed %v, want %v", replayed, want)
	}
	// A shorter prefix replays fewer ops, and the initial rows stay
	// untouched.
	if got := replayRows(initial, log, 1); !reflect.DeepEqual(got, [][]int{{1, 2}, {3, 4}, {5, 6}}) {
		t.Fatalf("prefix replay %v", got)
	}
	if !reflect.DeepEqual(initial, [][]int{{1, 2}, {3, 4}}) {
		t.Fatalf("replay mutated the initial rows: %v", initial)
	}
}
