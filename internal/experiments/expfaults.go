package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"repro/internal/assoc"
	"repro/internal/dist"
	"repro/internal/transactions"
)

// faultGuardTimeout is the per-attempt deadline the guarded configuration
// measures: generous enough that a fault-free in-process call never trips
// it, so the measured cost is pure bookkeeping (one context.WithTimeout
// per call plus the retry-loop plumbing).
const faultGuardTimeout = 250 * time.Millisecond

// FaultOverheadRun is one fault-free (engine, workers) comparison of
// EXP-F1: the same distributed mine with the retry/timeout machinery off
// (MaxAttempts 1, no deadline — the pre-fault-tolerance coordinator) and
// on (defaults plus a per-call deadline).
type FaultOverheadRun struct {
	Engine  string `json:"engine"`
	Workers int    `json:"workers"`
	// BareMillis is the fastest of f1OverheadRuns mines with retries
	// disabled.
	BareMillis float64 `json:"bare_ms"`
	// GuardedMillis is the fastest of f1OverheadRuns mines under the
	// default retry policy with a per-call deadline.
	GuardedMillis float64 `json:"guarded_ms"`
	// OverheadPct is the median of the per-round guarded/bare time ratios,
	// minus one, in percent: what arming the fault-tolerance layer costs
	// when nothing faults. The acceptance target is < 5.
	OverheadPct float64 `json:"overhead_pct"`
	// Retries and Failovers are the guarded run's coordinator counters —
	// both must be zero on a fault-free transport.
	Retries   int `json:"retries"`
	Failovers int `json:"failovers"`
	AllocStats
}

// FaultRecoveryRun is one recovery measurement of EXP-F1: a scripted
// fault transport kills one worker after its first successful call, and
// the mine must fail over and still finish byte-identically.
type FaultRecoveryRun struct {
	Engine  string `json:"engine"`
	Workers int    `json:"workers"`
	// Millis is the single-run wall clock with the injected kill;
	// FaultFreeMillis is the same configuration's guarded best-of-three.
	Millis          float64 `json:"ms"`
	FaultFreeMillis float64 `json:"fault_free_ms"`
	// RecoverySlowdown is Millis / FaultFreeMillis: time-to-recover from
	// one worker death, expressed against the undisturbed run.
	RecoverySlowdown float64 `json:"recovery_slowdown"`
	// Retries / Failovers / ShippedShards are the coordinator's counters
	// for the faulted run: the failover and the re-shipped shards show up
	// here.
	Retries       int `json:"retries"`
	Failovers     int `json:"failovers"`
	ShippedShards int `json:"shipped_shards"`
}

// FaultsBaseline is the machine-readable output of EXP-F1, persisted as
// BENCH_faults.json: the cost of the fault-tolerance layer when healthy
// and the cost of recovering from one worker death.
type FaultsBaseline struct {
	Fixture    string             `json:"fixture"`
	MinSupport float64            `json:"minsup"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"numcpu"`
	Overhead   []FaultOverheadRun `json:"overhead"`
	Recovery   []FaultRecoveryRun `json:"recovery"`
	Note       string             `json:"note,omitempty"`
}

// f1Workers is the worker count both EXP-F1 measurements run at: two
// workers is the smallest cluster where failover has a survivor.
const f1Workers = 2

// f1OverheadRuns is how many interleaved bare/guarded rounds the overhead
// measurement runs. The layer's true cost is a few context.WithTimeout
// calls per pass — far below the GC and scheduler noise of a single
// ~15ms mine — so the comparison pairs each bare run with the guarded
// run timed right after it and takes the median of the per-round ratios:
// a GC cycle landing in one run skews one ratio, not the median.
const f1OverheadRuns = 15

// measureFaultOverhead times one engine bare vs guarded on a fault-free
// transport (interleaved rounds, minimum of each) and byte-checks every
// run against want.
func measureFaultOverhead(db *transactions.DB, engine, want string) (FaultOverheadRun, float64, error) {
	run := FaultOverheadRun{Engine: engine, Workers: f1Workers}
	bare := &assoc.Distributed{
		Transport: dist.NewLocalTransport(f1Workers, true),
		Workers:   f1Workers,
		Engine:    engine,
		// MaxAttempts 1 with no deadline reproduces the coordinator before
		// the fault-tolerance layer existed.
		Retry: dist.RetryPolicy{MaxAttempts: 1},
	}
	defer bare.Close()
	guarded := &assoc.Distributed{
		Transport: dist.NewLocalTransport(f1Workers, true),
		Workers:   f1Workers,
		Engine:    engine,
		Retry:     dist.RetryPolicy{CallTimeout: faultGuardTimeout},
	}
	defer guarded.Close()
	mineOnce := func(d *assoc.Distributed) (time.Duration, AllocStats, error) {
		var res *assoc.Result
		dur, alloc, err := timeItAlloc(func() error {
			var merr error
			res, merr = d.Mine(db, p1MinSup)
			return merr
		})
		if err != nil {
			return 0, alloc, err
		}
		if string(res.Canonical()) != want {
			return 0, alloc, fmt.Errorf("EXP-F1: %s overhead run diverges from the local engine", engine)
		}
		return dur, alloc, nil
	}
	var bareBest, guardedBest time.Duration
	var guardedAlloc AllocStats
	ratios := make([]float64, 0, f1OverheadRuns)
	for i := 0; i < f1OverheadRuns; i++ {
		bd, _, err := mineOnce(bare)
		if err != nil {
			return run, 0, err
		}
		gd, galloc, err := mineOnce(guarded)
		if err != nil {
			return run, 0, err
		}
		ratios = append(ratios, float64(gd)/float64(bd))
		if i == 0 || bd < bareBest {
			bareBest = bd
		}
		if i == 0 || gd < guardedBest {
			guardedBest = gd
			guardedAlloc = galloc
		}
	}
	sort.Float64s(ratios)
	stats := guarded.Coordinator().Stats()
	run.BareMillis = float64(bareBest.Microseconds()) / 1000.0
	run.GuardedMillis = float64(guardedBest.Microseconds()) / 1000.0
	run.OverheadPct = (ratios[len(ratios)/2] - 1) * 100
	run.Retries, run.Failovers = stats.Retries, stats.Failovers
	run.AllocStats = guardedAlloc
	return run, run.GuardedMillis, nil
}

// measureFaultRecovery times one engine through a scripted worker death:
// worker 1 completes its first call (the shard shipping) and then dies,
// forcing a failover onto worker 0 mid-mine.
func measureFaultRecovery(db *transactions.DB, engine, want string, faultFreeMS float64) (FaultRecoveryRun, error) {
	run := FaultRecoveryRun{Engine: engine, Workers: f1Workers, FaultFreeMillis: faultFreeMS}
	ft := dist.NewFaultTransport(dist.NewLocalTransport(f1Workers, true), dist.FaultPlan{})
	ft.FailNext(1, dist.FaultNone, dist.FaultKill)
	d := &assoc.Distributed{
		Transport: ft,
		Workers:   f1Workers,
		Engine:    engine,
		Retry:     dist.RetryPolicy{CallTimeout: faultGuardTimeout},
	}
	defer d.Close()
	// One timed run, not best-of: the scripted kill is consumed by the
	// first mine, so repeats would measure a fault-free cluster.
	var res *assoc.Result
	dur, err := timeIt(func() error {
		var merr error
		res, merr = d.Mine(db, p1MinSup)
		return merr
	})
	if err != nil {
		return run, err
	}
	if string(res.Canonical()) != want {
		return run, fmt.Errorf("EXP-F1: %s recovery run diverges from the local engine", engine)
	}
	stats := d.Coordinator().Stats()
	if stats.Failovers < 1 {
		return run, fmt.Errorf("EXP-F1: %s recovery run recorded no failover — the scripted kill missed", engine)
	}
	run.Millis = float64(dur.Microseconds()) / 1000.0
	if faultFreeMS > 0 {
		run.RecoverySlowdown = run.Millis / faultFreeMS
	}
	run.Retries, run.Failovers, run.ShippedShards = stats.Retries, stats.Failovers, stats.ShippedShards
	return run, nil
}

// MeasureFaultsBaseline runs EXP-F1: for each distributed engine at two
// workers, the fault-free cost of arming retries and deadlines (bare vs
// guarded, best-of-three, byte-identity-checked), then the time to
// recover from one scripted worker death.
func MeasureFaultsBaseline(s Scale) (*FaultsBaseline, error) {
	db, fixture, err := p1Fixture(s)
	if err != nil {
		return nil, err
	}
	base := &FaultsBaseline{
		Fixture:    fixture,
		MinSupport: p1MinSup,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, eng := range p4Engines() {
		localRes, _, _, err := bestOf(eng.Local, db, p1MinSup)
		if err != nil {
			return nil, err
		}
		want := string(localRes.Canonical())
		over, guardedMS, err := measureFaultOverhead(db, eng.Engine, want)
		if err != nil {
			return nil, err
		}
		base.Overhead = append(base.Overhead, over)
		rec, err := measureFaultRecovery(db, eng.Engine, want, guardedMS)
		if err != nil {
			return nil, err
		}
		base.Recovery = append(base.Recovery, rec)
	}
	base.Note = "overhead_pct is the fault-free cost of the retry/deadline layer (target < 5); " +
		"recovery_slowdown is one scripted worker death absorbed by failover, against the guarded fault-free time; " +
		"every run byte-identity-checked against the local engine"
	return base, nil
}

// WriteFaultsBaseline emits the EXP-F1 baseline as indented JSON.
func WriteFaultsBaseline(w io.Writer, s Scale) error {
	base, err := MeasureFaultsBaseline(s)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(base)
}

// RunFaultSmoke mines the EXP-F1 fixture once per distributed engine
// under the given injected fault schedule and retry policy — the
// reproducible chaos run behind dmbench -distfaults. A completed mine is
// byte-checked against the local engine; a mine the schedule kills
// entirely degrades to the local fallback and is byte-checked too, so
// the smoke fails only on a real divergence, a hang, or a transport bug.
func RunFaultSmoke(w io.Writer, s Scale, plan dist.FaultPlan, retry dist.RetryPolicy) error {
	db, fixture, err := p1Fixture(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "chaos smoke: %s at minsup %.4f, %d workers, schedule %+v\n",
		fixture, p1MinSup, f1Workers, plan)
	for _, eng := range p4Engines() {
		localRes, err := eng.Local.Mine(db, p1MinSup)
		if err != nil {
			return err
		}
		ft := dist.NewFaultTransport(dist.NewLocalTransport(f1Workers, true), plan)
		d := &assoc.Distributed{
			Transport: ft,
			Workers:   f1Workers,
			Engine:    eng.Engine,
			Retry:     retry,
		}
		var res *assoc.Result
		dur, err := timeIt(func() error {
			var merr error
			res, merr = d.Mine(db, p1MinSup)
			return merr
		})
		if err != nil {
			d.Close()
			return fmt.Errorf("chaos smoke: %s failed under schedule (injected: %+v): %w",
				eng.Engine, ft.Stats(), err)
		}
		if string(res.Canonical()) != string(localRes.Canonical()) {
			d.Close()
			return fmt.Errorf("chaos smoke: %s diverges from the local engine (injected: %+v)",
				eng.Engine, ft.Stats())
		}
		stats := d.Coordinator().Stats()
		mode := "remote"
		if d.Degraded() {
			mode = "degraded (local fallback)"
		}
		if cerr := d.Close(); cerr != nil {
			return cerr
		}
		fmt.Fprintf(w, "  %-10s %s in %s ms, byte-identical; injected %+v; retries=%d failovers=%d\n",
			eng.Engine, mode, ms(dur), ft.Stats(), stats.Retries, stats.Failovers)
	}
	fmt.Fprintln(w, "chaos smoke passed: every mine byte-identical to the local engine")
	return nil
}

// RunF1 prints the fault-tolerance experiment as two tables: the
// fault-free overhead of arming the retry layer, then the recovery cost
// of one worker death.
func RunF1(w io.Writer, s Scale) error {
	header(w, "F1", "fault tolerance: fault-free overhead and failover recovery")
	base, err := MeasureFaultsBaseline(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%s at minsup %.4f (GOMAXPROCS=%d, %d workers)\n",
		base.Fixture, base.MinSupport, base.GOMAXPROCS, f1Workers)
	fmt.Fprintf(w, "%-12s%12s%12s%12s%10s%10s\n",
		"engine", "bare ms", "guarded ms", "overhead%", "retries", "failovers")
	for _, r := range base.Overhead {
		fmt.Fprintf(w, "%-12s%12.1f%12.1f%12.2f%10d%10d\n",
			r.Engine, r.BareMillis, r.GuardedMillis, r.OverheadPct, r.Retries, r.Failovers)
	}
	fmt.Fprintf(w, "\nrecovery from one worker death (scripted kill after the first call)\n")
	fmt.Fprintf(w, "%-12s%12s%14s%10s%10s%10s%10s\n",
		"engine", "ms", "fault-free ms", "slowdown", "retries", "failovers", "shipped")
	for _, r := range base.Recovery {
		fmt.Fprintf(w, "%-12s%12.1f%14.1f%10.2f%10d%10d%10d\n",
			r.Engine, r.Millis, r.FaultFreeMillis, r.RecoverySlowdown,
			r.Retries, r.Failovers, r.ShippedShards)
	}
	if base.Note != "" {
		fmt.Fprintf(w, "\nnote: %s\n", base.Note)
	}
	return nil
}
