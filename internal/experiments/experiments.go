// Package experiments regenerates every table and figure of the
// reproduction's experiment index (DESIGN.md): the canonical evaluations of
// the algorithms the SIGMOD'96 tutorial surveys. Each experiment prints a
// plain-text table shaped like its source figure; cmd/dmbench is the CLI
// front end and EXPERIMENTS.md records measured-vs-published shapes. The
// engine-trajectory experiments additionally persist machine-readable
// baselines: EXP-P1 writes BENCH_parallel.json (count-distribution scaling
// and Eclat layouts), EXP-P2 writes BENCH_incremental.json (dirty-shard
// maintenance vs full re-mining), EXP-P3 writes BENCH_fpgrowth.json
// (pattern growth vs candidate generation across a support ladder), and
// EXP-P4 writes BENCH_dist.json (distributed shard-shipping overhead vs
// local counting, with transport traffic counters), EXP-F1 writes
// BENCH_faults.json (fault-free cost of the retry/deadline layer plus the
// recovery cost of one worker death), EXP-SV1 writes BENCH_serve.json
// (serving-tier QPS and latency percentiles under a live update stream,
// every sampled snapshot replay-verified against a from-scratch mine),
// and EXP-D1 writes BENCH_durable.json (per-fsync-policy durable ingest
// cost and crash-recovery time vs log length and snapshot interval).
// Every baseline records
// heap allocations (alloc_bytes, allocs) alongside wall-clock so memory
// regressions show up in the trajectory too.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"
)

// Scale selects workload sizes.
type Scale int

const (
	// Quick runs in seconds; used by tests and -quick.
	Quick Scale = iota
	// Full approximates the papers' (scaled-down) workloads.
	Full
)

// Experiment is one reproducible table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, s Scale) error
}

// ErrUnknown reports a bad experiment id.
var ErrUnknown = errors.New("experiments: unknown experiment id")

// All returns the registry in run order.
func All() []Experiment {
	return []Experiment{
		{ID: "A1", Title: "Execution time vs minimum support (VLDB'94 Fig. 4)", Run: RunA1},
		{ID: "A2", Title: "Per-pass candidate and frequent itemset counts (VLDB'94)", Run: RunA2},
		{ID: "A3", Title: "Scale-up: number of transactions (VLDB'94 Fig. 6)", Run: RunA3},
		{ID: "A4", Title: "Scale-up: transaction size (VLDB'94 Fig. 7)", Run: RunA4},
		{ID: "A5", Title: "Partition: partitions vs time (VLDB'95)", Run: RunA5},
		{ID: "A6", Title: "Eclat and Sampling vs Apriori", Run: RunA6},
		{ID: "S1", Title: "GSP vs AprioriAll (EDBT'96)", Run: RunS1},
		{ID: "C1", Title: "k-medoid family: time and cost vs n (CLARANS, VLDB'94)", Run: RunC1},
		{ID: "C2", Title: "DBSCAN vs k-means on non-convex shapes (KDD'96)", Run: RunC2},
		{ID: "C3", Title: "BIRCH vs k-means: time and quality vs n (SIGMOD'96)", Run: RunC3},
		{ID: "C4", Title: "Hierarchical linkage comparison", Run: RunC4},
		{ID: "T1", Title: "Classifier accuracy on benchmark functions (cross-validated)", Run: RunT1},
		{ID: "T2", Title: "Decision-tree pruning ablation", Run: RunT2},
		{ID: "T3", Title: "Decision-tree training time vs examples (SLIQ-style)", Run: RunT3},
		{ID: "K1", Title: "k-d tree vs brute-force query time", Run: RunK1},
		{ID: "R1", Title: "Rule extraction from decision trees", Run: RunR1},
		{ID: "Q1", Title: "Quantitative association rules (SIGMOD'96)", Run: RunQ1},
		{ID: "E1", Title: "Bagging and boosting vs single trees", Run: RunE1},
		{ID: "P1", Title: "Parallel count-distribution scaling and Eclat layouts", Run: RunP1},
		{ID: "P2", Title: "Incremental maintenance: dirty-shard re-count vs full re-mine", Run: RunP2},
		{ID: "P3", Title: "Pattern growth (FP-growth) vs candidate generation across supports", Run: RunP3},
		{ID: "P4", Title: "Distributed mining: serialization and merge overhead vs local", Run: RunP4},
		{ID: "F1", Title: "Fault tolerance: fault-free overhead and failover recovery", Run: RunF1},
		{ID: "SV1", Title: "Serving tier: concurrent reads under a live update stream", Run: RunSV1},
		{ID: "D1", Title: "Durable serving: fsync-policy ingest cost and crash-recovery time", Run: RunD1},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("%w: %q", ErrUnknown, id)
}

// IDs returns all experiment ids sorted.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// timeIt measures fn's wall-clock duration.
func timeIt(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

// AllocStats records the heap allocation delta of one measured run —
// the B/op and allocs/op columns of the BENCH_*.json baselines. Memory
// regressions are as real a perf trajectory as wall-clock, so every
// emitter records both.
type AllocStats struct {
	// Bytes is the total heap bytes allocated during the run.
	Bytes uint64 `json:"alloc_bytes"`
	// Allocs is the number of heap allocations during the run.
	Allocs uint64 `json:"allocs"`
}

// timeItAlloc measures fn's wall-clock duration and heap allocation delta
// (via runtime.MemStats, so allocations on every goroutine fn spawns are
// included).
func timeItAlloc(fn func() error) (time.Duration, AllocStats, error) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	err := fn()
	d := time.Since(start)
	runtime.ReadMemStats(&m1)
	return d, AllocStats{Bytes: m1.TotalAlloc - m0.TotalAlloc, Allocs: m1.Mallocs - m0.Mallocs}, err
}

// ms renders a duration in milliseconds with sensible precision.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000.0)
}

// header prints the experiment banner.
func header(w io.Writer, e string, title string) {
	fmt.Fprintf(w, "== EXP-%s: %s ==\n", e, title)
}
