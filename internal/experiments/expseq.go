package experiments

import (
	"time"

	"repro/internal/seqmine"
)

// timeSeqMiner runs one sequence miner, reporting its duration and total
// candidate count.
func timeSeqMiner(data []seqData, minSup float64, aprioriAll bool, candidates *int) time.Duration {
	seqs := make([]seqmine.Sequence, len(data))
	for i, d := range data {
		seqs[i] = seqmine.Sequence(d)
	}
	var m seqmine.Miner
	if aprioriAll {
		m = &seqmine.AprioriAll{}
	} else {
		m = &seqmine.GSP{}
	}
	start := time.Now()
	res, err := m.Mine(seqs, minSup)
	dur := time.Since(start)
	if err == nil && candidates != nil {
		total := 0
		for _, p := range res.Passes {
			total += p.Candidates
		}
		*candidates = total
	}
	return dur
}
