package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"

	"repro/internal/assoc"
	"repro/internal/synth"
	"repro/internal/transactions"
)

// p2ShardCap returns the shard capacity of the EXP-P2 store: small enough
// that a typical update batch dirties well under 25% of the shards.
func p2ShardCap(s Scale) int {
	if s == Full {
		return 128 // D4000 -> ~32 shards
	}
	return 64 // D1000 -> ~16 shards
}

// p2MinSup is the EXP-P2 support threshold. It is higher than EXP-P1's:
// at p1MinSup most of the item universe is frequent, so per-pass work is
// dominated by thresholding the |L1|^2/2 pair candidates — work every
// approach repeats. At p2MinSup the database scan dominates, which is the
// work dirty-shard re-counting actually saves.
const p2MinSup = 0.02

// p2Fixture generates the base database and the append pool from one
// generator stream, so appends continue the same workload (same pattern
// tables) instead of simulating a distribution shift that would cross the
// border every step.
func p2Fixture(s Scale) (base *transactions.DB, pool []transactions.Itemset, name string, err error) {
	d := 1000
	if s == Full {
		d = 4000
	}
	db, err := synth.Baskets(synth.TxI(10, 4, d+d/2, 94))
	if err != nil {
		return nil, nil, "", err
	}
	base = &transactions.DB{}
	for _, tx := range db.Transactions[:d] {
		if err := base.Add(tx...); err != nil {
			return nil, nil, "", err
		}
	}
	return base, db.Transactions[d:], fmt.Sprintf("T10.I4.D%d", d), nil
}

// IncrementalStep is one timed append/delete batch of the EXP-P2 workload.
type IncrementalStep struct {
	Appended    int     `json:"appended"`
	Deleted     int     `json:"deleted"`
	DirtyShards int     `json:"dirty_shards"`
	NumShards   int     `json:"num_shards"`
	DirtyFrac   float64 `json:"dirty_frac"`
	FullRun     bool    `json:"full_run"` // border crossed: fell back to a full re-mine
	MaintainMS  float64 `json:"maintain_ms"`
	FullMineMS  float64 `json:"full_mine_ms"`
	Speedup     float64 `json:"speedup"` // full re-mine time / maintain time
	Verified    bool    `json:"verified"`
	// MaintainAlloc / FullMineAlloc record each path's heap allocations:
	// the memory face of the dirty-shard win.
	MaintainAlloc AllocStats `json:"maintain_alloc"`
	FullMineAlloc AllocStats `json:"full_mine_alloc"`
}

// IncrementalBaseline is the machine-readable output of EXP-P2, persisted
// as BENCH_incremental.json: per-step maintain-vs-remine timings for an
// append/delete workload over the T10.I4 fixture.
type IncrementalBaseline struct {
	Fixture     string            `json:"fixture"`
	MinSupport  float64           `json:"minsup"`
	ShardCap    int               `json:"shard_cap"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	NumCPU      int               `json:"numcpu"`
	AttachMS    float64           `json:"attach_ms"`
	AttachAlloc AllocStats        `json:"attach_alloc"`
	Steps       []IncrementalStep `json:"steps"`
	IncTotalMS  float64           `json:"inc_total_ms"`
	FullTotalMS float64           `json:"full_total_ms"`
	Speedup     float64           `json:"speedup"` // totals ratio across all steps
	Note        string            `json:"note,omitempty"`
}

// MeasureIncrementalBaseline runs the EXP-P2 append/delete workload: the
// T10.I4 fixture is bulk-loaded into a sharded store, then each step
// appends a half-shard of fresh transactions and deletes a handful
// clustered in one victim shard (keeping the dirty fraction low), times
// Incremental.Maintain against a from-scratch re-mine of the snapshot, and
// verifies the two results are byte-identical.
func MeasureIncrementalBaseline(s Scale) (*IncrementalBaseline, error) {
	db, pool, fixture, err := p2Fixture(s)
	if err != nil {
		return nil, err
	}
	shardCap := p2ShardCap(s)
	store := transactions.NewShardedDBFrom(db, shardCap)
	base := &IncrementalBaseline{
		Fixture:    fixture,
		MinSupport: p2MinSup,
		ShardCap:   shardCap,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	inc := &assoc.Incremental{Workers: DefaultWorkers}
	scratch := &assoc.Apriori{Workers: DefaultWorkers}

	attach, attachAlloc, err := timeItAlloc(func() error {
		_, _, e := inc.Attach(store, p2MinSup)
		return e
	})
	if err != nil {
		return nil, err
	}
	base.AttachMS = float64(attach.Microseconds()) / 1000.0
	base.AttachAlloc = attachAlloc

	rng := rand.New(rand.NewSource(7))
	steps := 8
	batch := shardCap / 2
	next := 0
	for i := 0; i < steps; i++ {
		appended := 0
		for ; appended < batch && next < len(pool); appended++ {
			if err := store.Append(pool[next]...); err != nil {
				return nil, err
			}
			next++
		}
		// Deletes clustered in one victim shard so the dirty fraction stays
		// far below the 25% target envelope.
		deleted := batch / 8
		victim := rng.Intn(store.NumShards() - 1) // spare the append shard
		lo := victim * shardCap                   // global tid range of the victim (approximate after earlier deletes)
		for d := 0; d < deleted; d++ {
			tid := lo + rng.Intn(shardCap/2)
			if tid >= store.Len() {
				tid = rng.Intn(store.Len())
			}
			if _, err := store.DeleteAt(tid); err != nil {
				return nil, err
			}
		}

		var stats assoc.MaintainStats
		var res *assoc.Result
		dInc, incAlloc, err := timeItAlloc(func() error {
			var e error
			res, stats, e = inc.Maintain()
			return e
		})
		if err != nil {
			return nil, err
		}
		var want *assoc.Result
		dFull, fullAlloc, err := timeItAlloc(func() error {
			var e error
			want, e = scratch.Mine(store.Snapshot(), p2MinSup)
			return e
		})
		if err != nil {
			return nil, err
		}
		verified := bytes.Equal(res.Canonical(), want.Canonical())
		if !verified {
			return nil, fmt.Errorf("EXP-P2 step %d: incremental result diverged from from-scratch run", i+1)
		}
		incMS := float64(dInc.Microseconds()) / 1000.0
		fullMS := float64(dFull.Microseconds()) / 1000.0
		speedup := 0.0
		if incMS > 0 {
			speedup = fullMS / incMS
		}
		base.Steps = append(base.Steps, IncrementalStep{
			Appended:      appended,
			Deleted:       deleted,
			DirtyShards:   stats.DirtyShards,
			NumShards:     stats.NumShards,
			DirtyFrac:     float64(stats.DirtyShards) / float64(stats.NumShards),
			FullRun:       stats.FullRun,
			MaintainMS:    incMS,
			FullMineMS:    fullMS,
			Speedup:       speedup,
			Verified:      verified,
			MaintainAlloc: incAlloc,
			FullMineAlloc: fullAlloc,
		})
		base.IncTotalMS += incMS
		base.FullTotalMS += fullMS
	}
	// Cross-check the final counts through the third counting path: the
	// word-aligned per-shard bitset concatenation must agree with the
	// maintained pass-1 totals on every frequent item's support.
	vert := store.ToVerticalBitset()
	final := inc.Result()
	if len(final.Levels) > 0 {
		for _, ic := range final.Levels[0] {
			bits := vert.Bits[ic.Items[0]]
			if bits == nil || bits.OnesCount() != ic.Count {
				return nil, fmt.Errorf("EXP-P2: bitset view support of item %d disagrees with maintained count %d",
					ic.Items[0], ic.Count)
			}
		}
	}
	if base.IncTotalMS > 0 {
		base.Speedup = base.FullTotalMS / base.IncTotalMS
	}
	if base.GOMAXPROCS < 2 {
		base.Note = "measured on a single-CPU host; the dirty-shard win is algorithmic (less work), not parallelism, so it holds here too"
	}
	return base, nil
}

// WriteIncrementalBaseline emits the EXP-P2 baseline as indented JSON.
func WriteIncrementalBaseline(w io.Writer, s Scale) error {
	base, err := MeasureIncrementalBaseline(s)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(base)
}

// RunP2 prints the incremental maintenance workload as a table: per
// append/delete batch, the dirty-shard fraction and maintain-vs-remine
// wall clock.
func RunP2(w io.Writer, s Scale) error {
	header(w, "P2", "incremental maintenance: dirty-shard re-count vs full re-mine")
	base, err := MeasureIncrementalBaseline(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%s at minsup %.4f, shard cap %d (attach %.1f ms)\n",
		base.Fixture, base.MinSupport, base.ShardCap, base.AttachMS)
	fmt.Fprintf(w, "%-6s%8s%8s%12s%10s%12s%12s%10s\n",
		"step", "+txs", "-txs", "dirty", "mode", "maintain", "re-mine", "speedup")
	for i, st := range base.Steps {
		mode := "inc"
		if st.FullRun {
			mode = "full"
		}
		fmt.Fprintf(w, "%-6d%8d%8d%9d/%-3d%10s%10.1fms%10.1fms%10.2f\n",
			i+1, st.Appended, st.Deleted, st.DirtyShards, st.NumShards, mode,
			st.MaintainMS, st.FullMineMS, st.Speedup)
	}
	fmt.Fprintf(w, "\ntotal: maintain %.1f ms vs re-mine %.1f ms (speedup %.2f)\n",
		base.IncTotalMS, base.FullTotalMS, base.Speedup)
	if base.Note != "" {
		fmt.Fprintf(w, "note: %s\n", base.Note)
	}
	return nil
}
