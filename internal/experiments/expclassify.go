package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/synth"
	"repro/internal/tree"
)

// RunT1 reproduces the classifier-comparison accuracy table over the
// benchmark functions.
func RunT1(w io.Writer, s Scale) error {
	header(w, "T1", "cross-validated accuracy (%) on benchmark functions")
	rows, folds := 500, 3
	if s == Full {
		rows, folds = 2000, 10
	}
	trainers := core.Classifiers()
	fmt.Fprintf(w, "%-10s", "function")
	for _, tr := range trainers {
		fmt.Fprintf(w, "%16s", tr.Name())
	}
	fmt.Fprintf(w, "%16s\n", "majority")
	for fn := 1; fn <= 5; fn++ {
		tbl, err := synth.Classify(synth.ClassifyConfig{NumRows: rows, Function: fn, Seed: int64(1000 + fn)})
		if err != nil {
			return err
		}
		comps, err := core.CompareClassifiers(tbl, trainers, folds, 7)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "F%-9d", fn)
		for _, c := range comps {
			fmt.Fprintf(w, "%16.1f", c.Accuracy*100)
		}
		dist, err := tbl.ClassDistribution()
		if err != nil {
			return err
		}
		best := 0
		for _, n := range dist {
			if n > best {
				best = n
			}
		}
		fmt.Fprintf(w, "%16.1f\n", 100*float64(best)/float64(rows))
	}
	return nil
}

// RunT2 reproduces the pruning ablation: tree size and holdout accuracy of
// the unpruned, pessimistically pruned, and reduced-error pruned trees on
// noisy data.
func RunT2(w io.Writer, s Scale) error {
	header(w, "T2", "pruning ablation: tree size / holdout accuracy (%) with 10% label noise")
	rows := 1200
	if s == Full {
		rows = 5000
	}
	fmt.Fprintf(w, "%-10s%20s%20s%20s\n", "function", "unpruned", "pessimistic", "reduced-error")
	for _, fn := range []int{2, 5} {
		full, err := synth.Classify(synth.ClassifyConfig{NumRows: rows, Function: fn, Noise: 0.10, Seed: int64(2000 + fn)})
		if err != nil {
			return err
		}
		train, hold, err := full.Split(2.0 / 3.0)
		if err != nil {
			return err
		}
		test, err := synth.Classify(synth.ClassifyConfig{NumRows: rows / 2, Function: fn, Seed: int64(3000 + fn)})
		if err != nil {
			return err
		}

		unpruned, err := tree.Build(train, tree.Config{Criterion: tree.GainRatio})
		if err != nil {
			return err
		}
		pess, err := tree.Build(train, tree.Config{Criterion: tree.GainRatio})
		if err != nil {
			return err
		}
		pess.PrunePessimistic(0.25)
		red, err := tree.Build(train, tree.Config{Criterion: tree.GainRatio})
		if err != nil {
			return err
		}
		if err := red.PruneReducedError(hold); err != nil {
			return err
		}
		cell := func(tr *tree.Tree) string {
			return fmt.Sprintf("%d / %.1f", tr.Size(), 100*treeAccuracy(tr, test))
		}
		fmt.Fprintf(w, "F%-9d%20s%20s%20s\n", fn, cell(unpruned), cell(pess), cell(red))
	}
	return nil
}

func treeAccuracy(tr *tree.Tree, tbl *dataset.Table) float64 {
	correct := 0
	for i, row := range tbl.Rows {
		if tr.Predict(row) == tbl.Class(i) {
			correct++
		}
	}
	return float64(correct) / float64(tbl.NumRows())
}

// RunT3 reproduces the SLIQ-style training-time scalability plot.
func RunT3(w io.Writer, s Scale) error {
	header(w, "T3", "decision-tree training time (ms) vs training examples")
	sizes := []int{1000, 2000, 5000}
	if s == Full {
		sizes = []int{1000, 2000, 5000, 10000, 25000, 50000}
	}
	fmt.Fprintf(w, "%-10s%12s%12s\n", "n", "F1", "F7")
	for _, n := range sizes {
		row := fmt.Sprintf("%-10d", n)
		for _, fn := range []int{1, 7} {
			tbl, err := synth.Classify(synth.ClassifyConfig{NumRows: n, Function: fn, Seed: int64(4000 + fn)})
			if err != nil {
				return err
			}
			dur, err := timeIt(func() error {
				_, e := tree.Build(tbl, tree.Config{Criterion: tree.GainRatio, MinLeaf: 5})
				return e
			})
			if err != nil {
				return err
			}
			row += fmt.Sprintf("%12s", ms(dur))
		}
		fmt.Fprintln(w, row)
	}
	return nil
}

// RunK1 reproduces the k-d tree query-time figure against brute force,
// including the dimensionality penalty.
func RunK1(w io.Writer, s Scale) error {
	header(w, "K1", "10-NN query time (µs/query): k-d tree vs brute force")
	sizes := []int{1000, 10000}
	queries := 200
	if s == Full {
		sizes = []int{1000, 10000, 100000}
		queries = 1000
	}
	fmt.Fprintf(w, "%-10s%-8s%14s%14s\n", "n", "dims", "k-d tree", "brute")
	for _, dims := range []int{2, 8} {
		for _, n := range sizes {
			pts, qs := kdWorkload(n, queries, dims)
			tr, err := knn.NewKDTree(pts)
			if err != nil {
				return err
			}
			durTree, err := timeIt(func() error {
				for _, q := range qs {
					if _, e := tr.KNearest(q, 10); e != nil {
						return e
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			durBrute, err := timeIt(func() error {
				for _, q := range qs {
					if _, e := knn.BruteKNearest(pts, q, 10); e != nil {
						return e
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			perQ := func(d float64) string { return fmt.Sprintf("%.1f", d/float64(queries)) }
			fmt.Fprintf(w, "%-10d%-8d%14s%14s\n", n, dims,
				perQ(float64(durTree.Microseconds())), perQ(float64(durBrute.Microseconds())))
		}
	}
	return nil
}

func kdWorkload(n, queries, dims int) (pts, qs [][]float64) {
	p, _ := synth.GaussianMixture(synth.GaussianConfig{
		NumPoints: n + queries, NumCluster: 8, Dims: dims, Spread: 3, Separation: 100, Seed: 55,
	})
	return p.X[:n], p.X[n:]
}

// RunR1 reproduces the rules-from-tree workflow summary: rule counts,
// pure-subset rules, and rule-set accuracy on held-out data.
func RunR1(w io.Writer, s Scale) error {
	header(w, "R1", "rule extraction: rules / pure rules / holdout accuracy (%)")
	rows := 800
	if s == Full {
		rows = 3000
	}
	fmt.Fprintf(w, "%-10s%10s%12s%12s%16s\n", "function", "rules", "pure rules", "tree size", "holdout acc")
	for _, fn := range []int{1, 3} {
		train, err := synth.Classify(synth.ClassifyConfig{NumRows: rows, Function: fn, Seed: int64(5000 + fn)})
		if err != nil {
			return err
		}
		test, err := synth.Classify(synth.ClassifyConfig{NumRows: rows / 2, Function: fn, Seed: int64(6000 + fn)})
		if err != nil {
			return err
		}
		tr, err := tree.Build(train, tree.Config{Criterion: tree.GainRatio, MinLeaf: 5})
		if err != nil {
			return err
		}
		tr.PrunePessimistic(0.25)
		rls := tr.ExtractRules()
		pure := 0
		for _, r := range rls {
			if r.Pure() {
				pure++
			}
		}
		fmt.Fprintf(w, "F%-9d%10d%12d%12d%16.1f\n",
			fn, len(rls), pure, tr.Size(), 100*treeAccuracy(tr, test))
	}
	return nil
}
