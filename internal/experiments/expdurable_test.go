package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestDurableBaselineJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("measures wall-clock sweeps")
	}
	var buf bytes.Buffer
	if err := WriteDurableBaseline(&buf, Quick); err != nil {
		t.Fatal(err)
	}
	var base DurableBaseline
	if err := json.Unmarshal(buf.Bytes(), &base); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if base.Fixture == "" || base.InitialTx < 1 || base.GOMAXPROCS < 1 {
		t.Fatalf("incomplete header: %+v", base)
	}
	if len(base.Policies) != 4 {
		t.Fatalf("policy ladder has %d rungs, want 4: %+v", len(base.Policies), base.Policies)
	}
	for _, p := range base.Policies {
		if p.Ops < 1 || p.OpsPerSec <= 0 || p.MicrosPerOp <= 0 {
			t.Fatalf("policy %q measured nothing: %+v", p.Policy, p)
		}
	}
	if base.Policies[0].Policy != "off" || base.Policies[3].Policy != "always" {
		t.Fatalf("policy order: %+v", base.Policies)
	}
	if len(base.Recovery) < 2 {
		t.Fatalf("recovery curve has %d points: %+v", len(base.Recovery), base.Recovery)
	}
	for _, r := range base.Recovery {
		if r.RecoveredOps != uint64(r.Ops) || r.Millis <= 0 {
			t.Fatalf("recovery point broken: %+v", r)
		}
	}
}

func TestRunD1PrintsTable(t *testing.T) {
	if testing.Short() {
		t.Skip("measures wall-clock sweeps")
	}
	var buf bytes.Buffer
	if err := RunD1(&buf, Quick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"EXP-D1", "fsync", "ops/sec", "snapshot every", "recovered"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
