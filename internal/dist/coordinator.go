package dist

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/fptree"
	"repro/internal/transactions"
)

// Stats counts a coordinator's transport traffic — the observable side of
// the dirty-shard protocol. Tests assert ShippedShards to prove clean
// shards are never re-shipped, and EXP-P4 reports the totals as the
// distribution overhead trail.
type Stats struct {
	// ShippedShards counts shard snapshots actually moved (new or dirty).
	ShippedShards int
	// ShipCalls counts Ship requests (one per worker with dirty shards).
	ShipCalls int
	// CountCalls counts scan requests (CountItems/Pairs/Candidates and
	// BuildTree) across all workers.
	CountCalls int
}

// Coordinator owns shard placement and buffer merging: Sync ships shard
// snapshots to their workers (round-robin by id, re-shipping only versions
// the worker has not seen), and the Count*/BuildTree methods fan a scan
// out over every worker holding shards and fold the mergeable replies with
// plain integer adds (or fptree.Merge), so results are byte-identical to a
// local scan. A coordinator is not safe for concurrent use; the engines
// drive it one pass at a time, like every other counting structure here.
type Coordinator struct {
	t       Transport
	assign  map[int]int    // shard id -> worker
	shipped map[int]uint64 // shard id -> last shipped version
	current []int          // shard ids of the last Sync, sorted
	stats   Stats
}

// NewCoordinator returns a coordinator over t with nothing placed yet.
func NewCoordinator(t Transport) *Coordinator {
	return &Coordinator{
		t:       t,
		assign:  make(map[int]int),
		shipped: make(map[int]uint64),
	}
}

// Transport returns the transport the coordinator drives.
func (c *Coordinator) Transport() Transport { return c.t }

// Stats returns a snapshot of the traffic counters.
func (c *Coordinator) Stats() Stats { return c.stats }

// Reset forgets all placement and version state (the traffic counters
// survive), so the next Sync re-ships everything — required when the
// underlying database identity changes and shard ids would otherwise
// collide with stale replicas.
func (c *Coordinator) Reset() {
	c.assign = make(map[int]int)
	c.shipped = make(map[int]uint64)
	c.current = nil
}

// Sync makes the workers' replicas match shards: unseen ids are placed
// round-robin, and exactly the payloads whose version differs from the
// last shipped one move over the transport. The shard set becomes the
// scan target of subsequent Count*/BuildTree calls.
func (c *Coordinator) Sync(ctx context.Context, shards []ShardPayload) error {
	n := c.t.NumWorkers()
	if n < 1 {
		return ErrNoWorkers
	}
	dirty := make(map[int][]ShardPayload)
	c.current = c.current[:0]
	for _, sh := range shards {
		c.current = append(c.current, sh.ID)
		w, ok := c.assign[sh.ID]
		if !ok {
			w = len(c.assign) % n
			c.assign[sh.ID] = w
		}
		if v, ok := c.shipped[sh.ID]; ok && v == sh.Version {
			continue
		}
		dirty[w] = append(dirty[w], sh)
	}
	sort.Ints(c.current)
	// Stats move before the fan-out: the closures below run concurrently
	// and must not touch shared counters.
	for _, payloads := range dirty {
		c.stats.ShipCalls++
		c.stats.ShippedShards += len(payloads)
	}
	if err := c.fanOut(ctx, func(w int, ids []int) error {
		payloads := dirty[w]
		if len(payloads) == 0 {
			return nil
		}
		return c.t.Call(ctx, w, MethodShip, &ShipArgs{Shards: payloads}, &ShipReply{})
	}); err != nil {
		return err
	}
	for _, payloads := range dirty {
		for _, sh := range payloads {
			c.shipped[sh.ID] = sh.Version
		}
	}
	return nil
}

// perWorker groups the current shard ids by their assigned worker.
func (c *Coordinator) perWorker() map[int][]int {
	out := make(map[int][]int)
	for _, id := range c.current {
		out[c.assign[id]] = append(out[c.assign[id]], id)
	}
	return out
}

// fanOut runs fn concurrently once per worker with assigned shards (ids
// sorted, so requests are deterministic) and returns the first error.
// Sync also routes its ships through here so ship and count traffic share
// one concurrency shape. fn must not touch coordinator state without its
// own synchronisation; the callers account stats before spawning. A done
// ctx short-circuits before spawning; mid-flight cancellation is handled
// by the transport, whose Call unblocks with ctx.Err().
func (c *Coordinator) fanOut(ctx context.Context, fn func(w int, ids []int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	groups := c.perWorker()
	workers := make([]int, 0, len(groups))
	for w := range groups {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i, w int) {
			defer wg.Done()
			errs[i] = fn(w, groups[w])
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// countMerged fans a counting method out and folds the flat reply buffers
// by elementwise addition into an array of length n.
func (c *Coordinator) countMerged(ctx context.Context, n int, method string, argsFor func(ids []int) any) ([]int, error) {
	out := make([]int, n)
	c.stats.CountCalls += len(c.perWorker())
	var mu sync.Mutex
	if err := c.fanOut(ctx, func(w int, ids []int) error {
		var reply CountsReply
		if err := c.t.Call(ctx, w, method, argsFor(ids), &reply); err != nil {
			return err
		}
		// Reply buffers are wire data; a version-skewed worker must not
		// crash the merge.
		if len(reply.Counts) != n {
			return fmt.Errorf("dist: worker %d: %s reply has %d counters, want %d",
				w, method, len(reply.Counts), n)
		}
		// Merge under a lock: addition is commutative, so arrival order
		// cannot change the totals.
		mu.Lock()
		defer mu.Unlock()
		for i, v := range reply.Counts {
			out[i] += v
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// CountItems runs the distributed pass-1 scan over the synced shards.
func (c *Coordinator) CountItems(ctx context.Context, numItems int) ([]int, error) {
	return c.countMerged(ctx, numItems, MethodCountItems, func(ids []int) any {
		return &CountItemsArgs{ShardIDs: ids, NumItems: numItems}
	})
}

// CountPairs runs the distributed triangular pass-2 scan; rank maps item
// id to L1 rank (-1 for infrequent items) and n is the rank count.
func (c *Coordinator) CountPairs(ctx context.Context, rank []int, n int) ([]int, error) {
	return c.countMerged(ctx, n*(n-1)/2, MethodCountPairs, func(ids []int) any {
		return &CountPairsArgs{ShardIDs: ids, Rank: rank, N: n}
	})
}

// CountCandidates runs a distributed pass-k (k >= 3) scan; the returned
// counts are indexed like cands because every worker rebuilds the hash
// tree in the same insertion order.
func (c *Coordinator) CountCandidates(ctx context.Context, k, fanout, maxLeaf int, cands []transactions.Itemset) ([]int, error) {
	return c.countMerged(ctx, len(cands), MethodCountCandidates, func(ids []int) any {
		return &CountCandidatesArgs{ShardIDs: ids, K: k, Fanout: fanout, MaxLeaf: maxLeaf, Candidates: cands}
	})
}

// BuildTree has every worker build an FP-tree over its shards and merges
// the imported trees path-wise — counts bit-identical to one local build,
// by the same commutativity the per-shard parallel builds rely on.
func (c *Coordinator) BuildTree(ctx context.Context, r *fptree.Ranks) (*fptree.Tree, error) {
	var mu sync.Mutex
	var global *fptree.Tree
	c.stats.CountCalls += len(c.perWorker())
	if err := c.fanOut(ctx, func(w int, ids []int) error {
		var reply TreeReply
		if err := c.t.Call(ctx, w, MethodBuildTree, &BuildTreeArgs{ShardIDs: ids, Ranks: r}, &reply); err != nil {
			return err
		}
		t, err := fptree.Import(r, reply.Nodes)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		if global == nil {
			global = t
		} else {
			global.Merge(t)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if global == nil {
		global = fptree.New(r)
	}
	return global, nil
}
