package dist

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/fptree"
	"repro/internal/transactions"
)

// Stats counts a coordinator's transport traffic and fault handling — the
// observable side of the dirty-shard protocol and of failover. Tests
// assert ShippedShards to prove clean shards are never re-shipped, EXP-P4
// reports the traffic totals as the distribution overhead trail, and
// EXP-F1 reports the fault counters as the recovery trail.
type Stats struct {
	// ShippedShards counts shard snapshots that actually arrived (the
	// Ship call succeeded); a failover re-ship counts again.
	ShippedShards int
	// ShipCalls counts Ship requests issued (one per worker with
	// outstanding shards, per delivery round).
	ShipCalls int
	// CountCalls counts scan requests (CountItems/Pairs/Candidates and
	// BuildTree) issued across all workers, including failover re-scans.
	CountCalls int
	// Retries counts extra attempts beyond each call's first.
	Retries int
	// Failovers counts workers marked down and drained of their shards.
	Failovers int
	// WorkersDown is the currently-down gauge at snapshot time.
	WorkersDown int
}

// Coordinator owns shard placement and buffer merging: Sync ships shard
// snapshots to their workers (round-robin by id, re-shipping only versions
// the worker has not seen), and the Count*/BuildTree methods fan a scan
// out over every worker holding shards and fold the mergeable replies with
// plain integer adds (or fptree.Merge), so results are byte-identical to a
// local scan.
//
// Under faults (see the package doc) every call gets Retry's deadline and
// retry budget; a worker that exhausts it is marked down, its shards are
// re-placed on the survivors and re-shipped from retained payloads, and
// the scan round repeats for the shards still missing a merged buffer —
// each shard's buffer is merged exactly once, so a scan either returns
// the exact totals or an error wrapping a sentinel, never a partial
// merge. A coordinator is not safe for concurrent use; the engines drive
// it one pass at a time, like every other counting structure here.
type Coordinator struct {
	t      Transport
	policy RetryPolicy

	assign   map[int]int          // shard id -> worker
	shipped  map[int]uint64       // shard id -> last delivered version
	payloads map[int]ShardPayload // retained current payloads, for re-ship
	down     map[int]bool         // workers marked dead
	placed   int                  // round-robin placement cursor
	current  []int                // shard ids of the last Sync, sorted

	statsMu sync.Mutex
	stats   Stats
}

// NewCoordinator returns a coordinator over t with nothing placed yet and
// the default RetryPolicy (3 attempts, no per-call deadline).
func NewCoordinator(t Transport) *Coordinator {
	return &Coordinator{
		t:        t,
		assign:   make(map[int]int),
		shipped:  make(map[int]uint64),
		payloads: make(map[int]ShardPayload),
		down:     make(map[int]bool),
	}
}

// SetRetry replaces the coordinator's retry policy (zero fields take the
// documented defaults). Call it before mining, not mid-pass.
func (c *Coordinator) SetRetry(p RetryPolicy) { c.policy = p }

// Transport returns the transport the coordinator drives.
func (c *Coordinator) Transport() Transport { return c.t }

// Stats returns a snapshot of the traffic and fault counters.
func (c *Coordinator) Stats() Stats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	s := c.stats
	s.WorkersDown = len(c.down)
	return s
}

// Reset forgets all placement and version state (the traffic counters
// survive), so the next Sync re-ships everything — required when the
// underlying database identity changes and shard ids would otherwise
// collide with stale replicas. Worker health is transport-scoped, not
// placement-scoped, so down markers survive Reset; Revive clears them.
func (c *Coordinator) Reset() {
	c.assign = make(map[int]int)
	c.shipped = make(map[int]uint64)
	c.payloads = make(map[int]ShardPayload)
	c.current = nil
	c.placed = 0
}

// Revive clears the down markers, letting the next Sync place shards on
// previously-failed workers again — the probe hook for a serving tier
// that knows a worker came back. Their replicas are gone from the
// coordinator's books (failover dropped the shipped versions), so they
// are re-shipped before any scan trusts them.
func (c *Coordinator) Revive() {
	for w := range c.down {
		delete(c.down, w)
	}
}

// place returns the next healthy worker round-robin, or -1 if none.
func (c *Coordinator) place() int {
	n := c.t.NumWorkers()
	for i := 0; i < n; i++ {
		w := c.placed % n
		c.placed++
		if !c.down[w] {
			return w
		}
	}
	return -1
}

// Sync makes the workers' replicas match shards: unseen ids (and ids
// stranded on a down worker) are placed round-robin over healthy workers,
// and exactly the payloads whose version differs from the last delivered
// one move over the transport, with retries and failover. The shard set
// becomes the scan target of subsequent Count*/BuildTree calls; its
// payloads are retained (shared slices, not copies) so failover can
// re-ship without the caller's help.
func (c *Coordinator) Sync(ctx context.Context, shards []ShardPayload) error {
	if c.t.NumWorkers() < 1 {
		return ErrNoWorkers
	}
	c.current = c.current[:0]
	for _, sh := range shards {
		c.current = append(c.current, sh.ID)
		c.payloads[sh.ID] = sh
		w, ok := c.assign[sh.ID]
		if ok && c.down[w] {
			delete(c.shipped, sh.ID)
			ok = false
		}
		if !ok {
			w = c.place()
			if w < 0 {
				return fmt.Errorf("%w: cannot place shard %d", ErrNoHealthyWorkers, sh.ID)
			}
			c.assign[sh.ID] = w
		}
	}
	sort.Ints(c.current)
	if len(c.payloads) > len(c.current) {
		cur := make(map[int]bool, len(c.current))
		for _, id := range c.current {
			cur[id] = true
		}
		for id := range c.payloads {
			if !cur[id] {
				delete(c.payloads, id)
			}
		}
	}
	return c.shipOutstanding(ctx)
}

// shipOutstanding delivers every current shard whose retained payload
// version has not been delivered to its assigned worker, in rounds: each
// round groups outstanding shards by worker, ships concurrently, records
// deliveries, and fails unreachable workers over; the next round ships
// the re-placed shards. It returns once nothing is outstanding, so a nil
// return means every current shard verifiably lives on a healthy worker.
func (c *Coordinator) shipOutstanding(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		need := make(map[int][]ShardPayload)
		for _, id := range c.current {
			p := c.payloads[id]
			if v, ok := c.shipped[id]; ok && v == p.Version {
				continue
			}
			need[c.assign[id]] = append(need[c.assign[id]], p)
		}
		if len(need) == 0 {
			return nil
		}
		c.statsMu.Lock()
		c.stats.ShipCalls += len(need)
		c.statsMu.Unlock()
		workers := sortedKeys(need)
		errs := c.runPerWorker(workers, func(_, w int) error {
			return c.call(ctx, w, MethodShip, &ShipArgs{Shards: need[w]}, &ShipReply{})
		})
		for i, w := range workers {
			if errs[i] != nil {
				continue
			}
			c.statsMu.Lock()
			c.stats.ShippedShards += len(need[w])
			c.statsMu.Unlock()
			for _, sh := range need[w] {
				c.shipped[sh.ID] = sh.Version
			}
		}
		if err := c.handleRoundErrors(workers, errs); err != nil {
			return err
		}
	}
}

// handleRoundErrors processes one fan-out round's per-worker errors:
// retryable failures trigger failover (re-placement of the worker's
// shards), anything else aborts the scan as-is.
func (c *Coordinator) handleRoundErrors(workers []int, errs []error) error {
	for i, w := range workers {
		err := errs[i]
		if err == nil {
			continue
		}
		if !Retryable(err) {
			return err
		}
		if ferr := c.failover(w, err); ferr != nil {
			return ferr
		}
	}
	return nil
}

// failover marks w down and re-places every shard assigned to it
// round-robin over the healthy workers, dropping their delivered
// versions so the next shipOutstanding round re-ships them. cause is the
// call error that condemned the worker, kept in the returned error when
// no healthy worker remains.
func (c *Coordinator) failover(w int, cause error) error {
	if !c.down[w] {
		c.down[w] = true
		c.statsMu.Lock()
		c.stats.Failovers++
		c.statsMu.Unlock()
	}
	n := c.t.NumWorkers()
	var healthy []int
	for i := 0; i < n; i++ {
		if !c.down[i] {
			healthy = append(healthy, i)
		}
	}
	if len(healthy) == 0 {
		return fmt.Errorf("%w: worker %d was the last (cause: %w)", ErrNoHealthyWorkers, w, cause)
	}
	i := 0
	for _, id := range c.current {
		if c.assign[id] != w {
			continue
		}
		c.assign[id] = healthy[i%len(healthy)]
		i++
		delete(c.shipped, id)
	}
	return nil
}

// call is the retrying transport call: up to MaxAttempts tries, each
// under the policy's per-attempt deadline, with capped-exponential
// deterministically-jittered backoff between them. Only transport-level
// failures (wrapping ErrWorkerUnavailable or ErrCallTimeout) are retried.
func (c *Coordinator) call(ctx context.Context, w int, method string, args, reply any) error {
	p := c.policy.normalized()
	for attempt := 1; ; attempt++ {
		err := c.callOnce(ctx, w, method, args, reply, p.CallTimeout)
		if err == nil || !Retryable(err) || attempt >= p.MaxAttempts {
			return err
		}
		c.statsMu.Lock()
		c.stats.Retries++
		c.statsMu.Unlock()
		if serr := sleepContext(ctx, p.Backoff(w, attempt)); serr != nil {
			return serr
		}
	}
}

// callOnce runs one attempt under the per-attempt deadline, converting a
// deadline we imposed (parent context still live) into a wrapped
// ErrCallTimeout so the retry loop can tell our timeout from the
// caller's cancellation.
func (c *Coordinator) callOnce(ctx context.Context, w int, method string, args, reply any, timeout time.Duration) error {
	cctx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	err := c.t.Call(cctx, w, method, args, reply)
	if err != nil && timeout > 0 && ctx.Err() == nil && errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: worker %d %s exceeded %v", ErrCallTimeout, w, method, timeout)
	}
	return err
}

// runPerWorker runs fn concurrently once per listed worker (i is the
// worker's index in the slice) and returns the per-worker errors,
// index-aligned with workers. fn must not touch coordinator state
// without its own synchronisation.
func (c *Coordinator) runPerWorker(workers []int, fn func(i, w int) error) []error {
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i, w int) {
			defer wg.Done()
			errs[i] = fn(i, w)
		}(i, w)
	}
	wg.Wait()
	return errs
}

// sortedKeys returns m's keys ascending, so fan-outs and error handling
// walk workers in a deterministic order.
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// scatter runs one distributed scan with failover: rounds of
// (re-)delivering outstanding shards, fanning method out over the
// workers holding still-unmerged shards, and folding each successful
// reply with merge — exactly once per shard, in the calling goroutine,
// so merge needs no locking. Retryable worker failures trigger failover
// and another round; any other error aborts the scan.
func (c *Coordinator) scatter(ctx context.Context, method string, argsFor func(ids []int) any, newReply func() any, merge func(w int, reply any) error) error {
	pending := make(map[int]bool, len(c.current))
	for _, id := range c.current {
		pending[id] = true
	}
	for len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := c.shipOutstanding(ctx); err != nil {
			return err
		}
		groups := make(map[int][]int)
		for _, id := range c.current {
			if pending[id] {
				groups[c.assign[id]] = append(groups[c.assign[id]], id)
			}
		}
		workers := sortedKeys(groups)
		c.statsMu.Lock()
		c.stats.CountCalls += len(workers)
		c.statsMu.Unlock()
		replies := make([]any, len(workers))
		errs := c.runPerWorker(workers, func(i, w int) error {
			reply := newReply()
			err := c.call(ctx, w, method, argsFor(groups[w]), reply)
			if err == nil {
				replies[i] = reply
			}
			return err
		})
		for i, w := range workers {
			if errs[i] != nil {
				continue
			}
			if err := merge(w, replies[i]); err != nil {
				return err
			}
			for _, id := range groups[w] {
				delete(pending, id)
			}
		}
		if err := c.handleRoundErrors(workers, errs); err != nil {
			return err
		}
	}
	return nil
}

// countMerged runs a counting scan through scatter and folds the flat
// reply buffers by elementwise addition into an array of length n.
func (c *Coordinator) countMerged(ctx context.Context, n int, method string, argsFor func(ids []int) any) ([]int, error) {
	out := make([]int, n)
	err := c.scatter(ctx, method, argsFor,
		func() any { return new(CountsReply) },
		func(w int, reply any) error {
			counts := reply.(*CountsReply).Counts
			// Reply buffers are wire data; a version-skewed worker must
			// not crash the merge.
			if len(counts) != n {
				return fmt.Errorf("dist: worker %d: %s reply has %d counters, want %d",
					w, method, len(counts), n)
			}
			for i, v := range counts {
				out[i] += v
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CountItems runs the distributed pass-1 scan over the synced shards.
func (c *Coordinator) CountItems(ctx context.Context, numItems int) ([]int, error) {
	return c.countMerged(ctx, numItems, MethodCountItems, func(ids []int) any {
		return &CountItemsArgs{ShardIDs: ids, NumItems: numItems}
	})
}

// CountPairs runs the distributed triangular pass-2 scan; rank maps item
// id to L1 rank (-1 for infrequent items) and n is the rank count.
func (c *Coordinator) CountPairs(ctx context.Context, rank []int, n int) ([]int, error) {
	return c.countMerged(ctx, n*(n-1)/2, MethodCountPairs, func(ids []int) any {
		return &CountPairsArgs{ShardIDs: ids, Rank: rank, N: n}
	})
}

// CountCandidates runs a distributed pass-k (k >= 3) scan; the returned
// counts are indexed like cands because every worker rebuilds the hash
// tree in the same insertion order.
func (c *Coordinator) CountCandidates(ctx context.Context, k, fanout, maxLeaf int, cands []transactions.Itemset) ([]int, error) {
	return c.countMerged(ctx, len(cands), MethodCountCandidates, func(ids []int) any {
		return &CountCandidatesArgs{ShardIDs: ids, K: k, Fanout: fanout, MaxLeaf: maxLeaf, Candidates: cands}
	})
}

// BuildTree has every worker build an FP-tree over its shards and merges
// the imported trees path-wise — counts bit-identical to one local build,
// by the same commutativity the per-shard parallel builds rely on.
func (c *Coordinator) BuildTree(ctx context.Context, r *fptree.Ranks) (*fptree.Tree, error) {
	var global *fptree.Tree
	err := c.scatter(ctx, MethodBuildTree,
		func(ids []int) any { return &BuildTreeArgs{ShardIDs: ids, Ranks: r} },
		func() any { return new(TreeReply) },
		func(w int, reply any) error {
			t, err := fptree.Import(r, reply.(*TreeReply).Nodes)
			if err != nil {
				return err
			}
			if global == nil {
				global = t
			} else {
				global.Merge(t)
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	if global == nil {
		global = fptree.New(r)
	}
	return global, nil
}
