package dist

import (
	"fmt"
	"sync"

	"repro/internal/fptree"
	"repro/internal/hashtree"
)

// Worker is the counting side of the backend: it keeps version-stamped
// shard replicas and answers count requests by scanning them into the
// repo's per-shard counting structures, returning mergeable buffers. The
// method signatures follow net/rpc conventions so one implementation
// serves both transports.
//
// A worker is safe for concurrent calls (net/rpc may interleave them), but
// the coordinator's protocol never counts a shard while re-shipping it, so
// the lock only guards the replica map, not the scans.
type Worker struct {
	mu     sync.Mutex
	shards map[int]ShardPayload
}

// NewWorker returns a worker with no replicas. Every exported method is
// net/rpc-shaped; adding a non-RPC exported method would make rpc.Register
// log a complaint on every worker startup.
func NewWorker() *Worker {
	return &Worker{shards: make(map[int]ShardPayload)}
}

// Ship installs (or replaces) shard replicas.
func (w *Worker) Ship(args ShipArgs, reply *ShipReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, sh := range args.Shards {
		w.shards[sh.ID] = sh
	}
	return nil
}

// replicas resolves the requested shard ids under the lock, so scans run
// on a consistent snapshot of the replica map.
func (w *Worker) replicas(ids []int) ([]ShardPayload, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]ShardPayload, 0, len(ids))
	for _, id := range ids {
		sh, ok := w.shards[id]
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrNoShard, id)
		}
		out = append(out, sh)
	}
	return out, nil
}

// CountItems runs the pass-1 scan over the requested replicas.
func (w *Worker) CountItems(args CountItemsArgs, reply *CountsReply) error {
	shards, err := w.replicas(args.ShardIDs)
	if err != nil {
		return err
	}
	counts := make([]int, args.NumItems)
	for _, sh := range shards {
		for _, tx := range sh.Txs {
			for _, item := range tx {
				if item < 0 || item >= args.NumItems {
					return fmt.Errorf("dist: shard %d: item %d outside universe %d", sh.ID, item, args.NumItems)
				}
				counts[item]++
			}
		}
	}
	reply.Counts = counts
	return nil
}

// CountPairs runs the triangular pass-2 scan over the requested replicas,
// the same arithmetic as the local engine's countTriangle.
func (w *Worker) CountPairs(args CountPairsArgs, reply *CountsReply) error {
	shards, err := w.replicas(args.ShardIDs)
	if err != nil {
		return err
	}
	n := args.N
	counts := make([]int, n*(n-1)/2)
	tri := func(i, j int) int { return i*(2*n-i-1)/2 + (j - i - 1) }
	ranks := make([]int, 0, 64)
	for _, sh := range shards {
		for _, tx := range sh.Txs {
			ranks = ranks[:0]
			for _, item := range tx {
				if item < len(args.Rank) && args.Rank[item] >= 0 {
					ranks = append(ranks, args.Rank[item])
				}
			}
			for a := 0; a < len(ranks); a++ {
				for b := a + 1; b < len(ranks); b++ {
					counts[tri(ranks[a], ranks[b])]++
				}
			}
		}
	}
	reply.Counts = counts
	return nil
}

// CountCandidates rebuilds the request's candidate hash tree (identical
// parameters and insertion order make entry ids equal candidate indices)
// and counts the replicas into one private buffer. Scan offsets serve as
// dedup tids; they only need to be distinct within this one scan.
func (w *Worker) CountCandidates(args CountCandidatesArgs, reply *CountsReply) error {
	shards, err := w.replicas(args.ShardIDs)
	if err != nil {
		return err
	}
	tree, err := hashtree.NewWithParams(args.K, args.Fanout, args.MaxLeaf)
	if err != nil {
		return err
	}
	for _, c := range args.Candidates {
		if _, err := tree.Insert(c); err != nil {
			return err
		}
	}
	buf := tree.NewCountBuffer()
	tid := 0
	for _, sh := range shards {
		for _, tx := range sh.Txs {
			tree.CountTransactionInto(tx, tid, buf)
			tid++
		}
	}
	reply.Counts = buf.Counts
	return nil
}

// BuildTree builds one FP-tree over the requested replicas under the
// shared rank table and returns its exported node pool. Building all
// shards into one tree equals building per shard and merging — the
// package's commutative-add contract.
func (w *Worker) BuildTree(args BuildTreeArgs, reply *TreeReply) error {
	shards, err := w.replicas(args.ShardIDs)
	if err != nil {
		return err
	}
	tree := fptree.New(args.Ranks)
	var buf []int32
	for _, sh := range shards {
		for _, tx := range sh.Txs {
			buf = tree.AddTransaction(tx, buf)
		}
	}
	reply.Nodes = tree.Export()
	return nil
}
