package dist

import (
	"bytes"
	"context"
	"encoding/gob"
	"sync"
)

// localCall is one request on a worker's channel.
type localCall struct {
	method string
	args   any
	reply  any
	done   chan error
}

// LocalTransport runs workers as in-process goroutines, one per worker,
// each serving calls from its own channel — the tests/single-binary
// transport. With Encode set every argument and reply makes a gob round
// trip through fresh message values, so the bytes moved (and the
// serialization cost EXP-P4 measures) are exactly what RPCTransport would
// move; without it, payloads pass by reference with zero copies.
type LocalTransport struct {
	// Encode turns on the gob round trip per call.
	Encode bool

	workers []*Worker
	calls   []chan localCall

	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup
}

// NewLocalTransport starts n in-process workers (n < 1 is treated as 1).
// encode selects the gob round-trip mode.
func NewLocalTransport(n int, encode bool) *LocalTransport {
	if n < 1 {
		n = 1
	}
	t := &LocalTransport{Encode: encode}
	for i := 0; i < n; i++ {
		w := NewWorker()
		ch := make(chan localCall)
		t.workers = append(t.workers, w)
		t.calls = append(t.calls, ch)
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			for c := range ch {
				c.done <- dispatch(w, c.method, c.args, c.reply)
			}
		}()
	}
	return t
}

// NumWorkers implements Transport.
func (t *LocalTransport) NumWorkers() int { return len(t.workers) }

// Call implements Transport. In encode mode the args are gob-encoded and
// decoded into a fresh message before the worker sees them, and the reply
// makes the reverse trip, so no memory is shared across the "wire". A
// cancelled ctx abandons the request: if the worker already took it, the
// buffered done channel absorbs its eventual reply, so neither side
// blocks or leaks. The worker always fills a fresh reply value that is
// copied into the caller's only on success, so an abandoned request that
// completes late never scribbles over a reply object the caller has
// handed to a retry.
func (t *LocalTransport) Call(ctx context.Context, w int, method string, args, reply any) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c := localCall{method: method, args: args, reply: freshReplyLike(reply), done: make(chan error, 1)}
	if t.Encode {
		wireArgs, wireReply, err := message(method)
		if err != nil {
			return err
		}
		if err := gobRoundTrip(args, wireArgs); err != nil {
			return err
		}
		c.args, c.reply = wireArgs, wireReply
	}
	// The read lock held across the send keeps Close from closing the
	// channel mid-send while still letting fan-out calls to distinct
	// workers proceed concurrently.
	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		return ErrClosed
	}
	select {
	case t.calls[w] <- c:
	case <-ctx.Done():
		t.mu.RUnlock()
		return ctx.Err()
	}
	t.mu.RUnlock()
	select {
	case err := <-c.done:
		if err != nil {
			return err
		}
	case <-ctx.Done():
		return ctx.Err()
	}
	if t.Encode {
		return gobRoundTrip(c.reply, reply)
	}
	copyReply(reply, c.reply)
	return nil
}

// Close implements Transport: it stops the worker goroutines and waits for
// in-flight calls to drain.
func (t *LocalTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, ch := range t.calls {
		close(ch)
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}

// gobRoundTrip encodes src and decodes the bytes into dst — the
// serialization leg of the local transport's encode mode.
func gobRoundTrip(src, dst any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(src); err != nil {
		return err
	}
	return gob.NewDecoder(&buf).Decode(dst)
}
