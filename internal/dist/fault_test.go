package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitForGoroutines polls until the goroutine count is back to at most
// want, dumping stacks on timeout — the leak check for abandoned calls.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > want {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak: %d alive, want <= %d\n%s", got, want, buf[:runtime.Stack(buf, true)])
	}
}

// TestBackoffDeterministicAndCapped pins the retry pacing: backoffs
// replay exactly for a given seed, stay within [step/2, step), grow with
// the retry number, and saturate at MaxBackoff.
func TestBackoffDeterministicAndCapped(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 4 * time.Millisecond, MaxBackoff: 16 * time.Millisecond, Seed: 7}
	step := p.BaseBackoff
	for retry := 1; retry <= 6; retry++ {
		a, b := p.Backoff(2, retry), p.Backoff(2, retry)
		if a != b {
			t.Fatalf("retry %d: backoff not deterministic: %v vs %v", retry, a, b)
		}
		if a < step/2 || a >= step {
			t.Errorf("retry %d: backoff %v outside [%v, %v)", retry, a, step/2, step)
		}
		if step < p.MaxBackoff {
			step *= 2
		}
		if step > p.MaxBackoff {
			step = p.MaxBackoff
		}
	}
	if p.Backoff(0, 1) == p.Backoff(1, 1) {
		t.Error("distinct workers drew identical jitter; seeds are not de-synchronising")
	}
	if (RetryPolicy{}).Backoff(0, 1) <= 0 {
		t.Error("zero-value policy produced a non-positive backoff")
	}
}

// TestRetryableClassification pins the error taxonomy: transport-level
// sentinels retry, application errors do not.
func TestRetryableClassification(t *testing.T) {
	for _, err := range []error{
		ErrWorkerUnavailable,
		ErrCallTimeout,
		fmt.Errorf("wrapped: %w", ErrWorkerUnavailable),
		fmt.Errorf("%w: worker 3 CountItems exceeded 5ms", ErrCallTimeout),
	} {
		if !Retryable(err) {
			t.Errorf("Retryable(%v) = false, want true", err)
		}
	}
	for _, err := range []error{nil, ErrNoShard, ErrBadMethod, ErrClosed, ErrNoHealthyWorkers, context.Canceled, errors.New("boom")} {
		if Retryable(err) {
			t.Errorf("Retryable(%v) = true, want false", err)
		}
	}
}

// TestRetryRecoversFromOneShotError pins the retry loop: a single
// injected connection blip on a scan call is absorbed by a retry, the
// counts stay exact, and the retry is visible in Stats.
func TestRetryRecoversFromOneShotError(t *testing.T) {
	db := testDB(t)
	ft := NewFaultTransport(NewLocalTransport(2, false), FaultPlan{})
	defer ft.Close()
	c := NewCoordinator(ft)
	c.SetRetry(RetryPolicy{MaxAttempts: 3, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond})
	if err := c.Sync(ctx, testShards(db, 4, 1)); err != nil {
		t.Fatal(err)
	}
	ft.FailNext(0, FaultErr)
	ft.FailNext(1, FaultErr)
	got, err := c.CountItems(ctx, db.NumItems())
	if err != nil {
		t.Fatal(err)
	}
	want := localCounts(db)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("count[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if s := c.Stats(); s.Retries < 2 {
		t.Errorf("Retries = %d, want >= 2", s.Retries)
	}
	if s := ft.Stats(); s.Errored != 2 {
		t.Errorf("injected errors = %d, want 2", s.Errored)
	}
}

// TestFailoverReshipsToSurvivor pins failover end to end: a sticky worker
// death mid-mine moves its shards to the survivor, re-ships them from
// the retained payloads, and the scan still returns the exact counts.
func TestFailoverReshipsToSurvivor(t *testing.T) {
	db := testDB(t)
	ft := NewFaultTransport(NewLocalTransport(2, true), FaultPlan{})
	defer ft.Close()
	c := NewCoordinator(ft)
	c.SetRetry(RetryPolicy{MaxAttempts: 2, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond})
	if err := c.Sync(ctx, testShards(db, 4, 1)); err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	ft.KillWorker(1)
	got, err := c.CountItems(ctx, db.NumItems())
	if err != nil {
		t.Fatal(err)
	}
	want := localCounts(db)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("count[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	after := c.Stats()
	if after.Failovers != 1 || after.WorkersDown != 1 {
		t.Errorf("Failovers = %d, WorkersDown = %d, want 1 and 1", after.Failovers, after.WorkersDown)
	}
	if after.ShippedShards <= before.ShippedShards {
		t.Error("failover did not re-ship the dead worker's shards")
	}
	// A later pass keeps working on the survivor without re-shipping.
	mid := c.Stats()
	if _, err := c.CountItems(ctx, db.NumItems()); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.ShippedShards != mid.ShippedShards {
		t.Error("healthy re-scan re-shipped shards")
	}
}

// TestAllWorkersDownSentinel pins total failure: once every worker is
// dead, scans and syncs fail with a wrapped ErrNoHealthyWorkers and
// never a partial result, and Revive restores the coordinator.
func TestAllWorkersDownSentinel(t *testing.T) {
	db := testDB(t)
	ft := NewFaultTransport(NewLocalTransport(2, false), FaultPlan{})
	defer ft.Close()
	c := NewCoordinator(ft)
	c.SetRetry(RetryPolicy{MaxAttempts: 2, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond})
	shards := testShards(db, 4, 1)
	if err := c.Sync(ctx, shards); err != nil {
		t.Fatal(err)
	}
	ft.KillWorker(0)
	ft.KillWorker(1)
	counts, err := c.CountItems(ctx, db.NumItems())
	if !errors.Is(err, ErrNoHealthyWorkers) {
		t.Fatalf("err = %v, want ErrNoHealthyWorkers", err)
	}
	if counts != nil {
		t.Fatal("failed scan returned a (partial) count buffer")
	}
	if err := c.Sync(ctx, shards); !errors.Is(err, ErrNoHealthyWorkers) {
		t.Fatalf("sync err = %v, want ErrNoHealthyWorkers", err)
	}
	// Down markers survive Reset (health is transport-scoped)...
	c.Reset()
	if err := c.Sync(ctx, shards); !errors.Is(err, ErrNoHealthyWorkers) {
		t.Fatalf("post-reset sync err = %v, want ErrNoHealthyWorkers", err)
	}
	// ...but Revive clears them; with the injected deaths sticky the
	// calls still fail unavailable, proving revival is a probe, not a lie.
	c.Revive()
	if s := c.Stats(); s.WorkersDown != 0 {
		t.Errorf("WorkersDown after Revive = %d, want 0", s.WorkersDown)
	}
	if err := c.Sync(ctx, shards); !errors.Is(err, ErrNoHealthyWorkers) {
		t.Fatalf("revived-but-dead sync err = %v, want ErrNoHealthyWorkers", err)
	}
}

// TestDropTimesOutAndRetries pins the deadline path: a dropped reply
// burns exactly the per-call timeout, surfaces as ErrCallTimeout when
// attempts run out, and is absorbed when a retry remains.
func TestDropTimesOutAndRetries(t *testing.T) {
	db := testDB(t)
	ft := NewFaultTransport(NewLocalTransport(1, false), FaultPlan{})
	defer ft.Close()
	c := NewCoordinator(ft)
	c.SetRetry(RetryPolicy{MaxAttempts: 1, CallTimeout: 20 * time.Millisecond})
	if err := c.Sync(ctx, testShards(db, 2, 1)); err != nil {
		t.Fatal(err)
	}
	ft.FailNext(0, FaultDrop)
	if _, err := c.CountItems(ctx, db.NumItems()); !errors.Is(err, ErrNoHealthyWorkers) || !errors.Is(err, ErrCallTimeout) {
		// With one attempt and one worker the timeout escalates through
		// failover to total failure; both sentinels must be in the chain.
		t.Fatalf("err = %v, want ErrNoHealthyWorkers wrapping ErrCallTimeout", err)
	}
	// With a fresh coordinator and two attempts the same drop is absorbed.
	ft2 := NewFaultTransport(NewLocalTransport(1, false), FaultPlan{})
	defer ft2.Close()
	c2 := NewCoordinator(ft2)
	c2.SetRetry(RetryPolicy{MaxAttempts: 2, CallTimeout: 20 * time.Millisecond, BaseBackoff: 100 * time.Microsecond})
	if err := c2.Sync(ctx, testShards(db, 2, 1)); err != nil {
		t.Fatal(err)
	}
	ft2.FailNext(0, FaultDrop)
	got, err := c2.CountItems(ctx, db.NumItems())
	if err != nil {
		t.Fatal(err)
	}
	want := localCounts(db)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("count[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestParentCancellationIsNotRetried pins that the caller's own
// cancellation wins over the retry loop: no sentinel wrapping, no extra
// attempts, just ctx.Err back.
func TestParentCancellationIsNotRetried(t *testing.T) {
	db := testDB(t)
	ft := NewFaultTransport(NewLocalTransport(1, false), FaultPlan{})
	defer ft.Close()
	c := NewCoordinator(ft)
	c.SetRetry(RetryPolicy{MaxAttempts: 5, CallTimeout: time.Second})
	if err := c.Sync(ctx, testShards(db, 2, 1)); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	ft.FailNext(0, FaultDrop)
	_, err := c.CountItems(cctx, db.NumItems())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := c.Stats(); s.Retries != 0 {
		t.Errorf("Retries = %d after parent cancellation, want 0", s.Retries)
	}
}

// TestFaultPlanDeterministic pins the schedule's replayability: the same
// plan produces the same draw sequence, and a different seed a different
// one.
func TestFaultPlanDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 42, Drop: 0.1, Error: 0.2, Kill: 0.05, Delay: time.Millisecond, DelayProb: 0.3}
	var a, b []FaultKind
	for idx := 0; idx < 200; idx++ {
		ka, _ := plan.decide(1, idx)
		kb, _ := plan.decide(1, idx)
		a, b = append(a, ka), append(b, kb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs on replay: %v vs %v", i, a[i], b[i])
		}
	}
	other := plan
	other.Seed = 43
	same := true
	for idx := 0; idx < 200 && same; idx++ {
		ka, _ := plan.decide(1, idx)
		kb, _ := other.decide(1, idx)
		same = ka == kb
	}
	if same {
		t.Error("seeds 42 and 43 drew identical 200-call schedules")
	}
}

// TestFaultTransportPartition pins PartitionAfter: once the call budget
// is spent every worker is dead and calls fail unavailable.
func TestFaultTransportPartition(t *testing.T) {
	db := testDB(t)
	ft := NewFaultTransport(NewLocalTransport(2, false), FaultPlan{PartitionAfter: 3})
	defer ft.Close()
	c := NewCoordinator(ft)
	c.SetRetry(RetryPolicy{MaxAttempts: 1, BaseBackoff: 100 * time.Microsecond})
	if err := c.Sync(ctx, testShards(db, 4, 1)); err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 10; i++ {
		if _, lastErr = c.CountItems(ctx, db.NumItems()); lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrNoHealthyWorkers) {
		t.Fatalf("err after partition = %v, want ErrNoHealthyWorkers", lastErr)
	}
	if s := ft.Stats(); !s.Partitioned {
		t.Error("partition never fired")
	}
}

// TestDialRPCMidListFailure is the satellite regression test: when the
// second address refuses the dial, the first (already-open) connection
// is closed — observed as EOF on the server side — and the returned
// error wraps ErrWorkerUnavailable around the dial cause.
func TestDialRPCMidListFailure(t *testing.T) {
	good, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer good.Close()
	serverSawEOF := make(chan error, 1)
	go func() {
		conn, err := good.Accept()
		if err != nil {
			serverSawEOF <- err
			return
		}
		_, err = conn.Read(make([]byte, 1))
		serverSawEOF <- err
	}()
	bad, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	badAddr := bad.Addr().String()
	bad.Close() // now refuses connections

	tr, err := DialRPC([]string{good.Addr().String(), badAddr})
	if err == nil {
		tr.Close()
		t.Fatal("DialRPC succeeded against a closed listener")
	}
	if !errors.Is(err, ErrWorkerUnavailable) {
		t.Fatalf("err = %v, want ErrWorkerUnavailable in the chain", err)
	}
	select {
	case rerr := <-serverSawEOF:
		if rerr == nil {
			t.Fatal("server read succeeded; expected EOF from the closed dial")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("first connection was never closed: mid-list dial failure leaked it")
	}
}

// TestLocalTransportAbandonedCallsLeakNothing is the satellite audit
// test: hammering one worker with calls abandoned at random points (some
// before the send, some mid-dispatch) leaves no goroutine behind once
// the transport closes, because the buffered done channel absorbs every
// late reply.
func TestLocalTransportAbandonedCallsLeakNothing(t *testing.T) {
	before := runtime.NumGoroutine()
	db := testDB(t)
	tr := NewLocalTransport(2, false)
	shards := testShards(db, 2, 1)
	for w := 0; w < 2; w++ {
		if err := tr.Call(ctx, w, MethodShip, &ShipArgs{Shards: shards[w : w+1]}, &ShipReply{}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, time.Duration(i%7)*50*time.Microsecond)
			defer cancel()
			var reply CountsReply
			err := tr.Call(cctx, i%2, MethodCountItems, &CountItemsArgs{ShardIDs: []int{i % 2}, NumItems: db.NumItems()}, &reply)
			if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrClosed) {
				t.Errorf("call %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	waitForGoroutines(t, before)
}

// TestTransportCloseSemantics is the satellite contract test: Close is
// idempotent on both transports and on the fault wrapper, and post-Close
// calls fail with ErrClosed.
func TestTransportCloseSemantics(t *testing.T) {
	// RPCTransport: double Close, then call.
	rt := &RPCTransport{}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("second RPC close: %v", err)
	}
	if err := rt.Call(ctx, 0, MethodShip, &ShipArgs{}, &ShipReply{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("rpc post-close err = %v, want ErrClosed", err)
	}
	// FaultTransport wraps the local one; Close must pass through and
	// stay idempotent.
	ft := NewFaultTransport(NewLocalTransport(1, false), FaultPlan{})
	if err := ft.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ft.Close(); err != nil {
		t.Fatalf("second fault-transport close: %v", err)
	}
	if err := ft.Call(ctx, 0, MethodShip, &ShipArgs{}, &ShipReply{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("fault post-close err = %v, want ErrClosed", err)
	}
}
