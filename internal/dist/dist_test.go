package dist

import (
	"context"
	"errors"
	"net"
	"testing"

	"repro/internal/fptree"
	"repro/internal/transactions"
)

// ctx is the background context shared by tests that do not exercise
// cancellation (the transport contract tests live in the assoc package).
var ctx = context.Background()

// testShards splits db into n payloads with the given version, mirroring
// the plain-DB path of the assoc engine.
func testShards(db *transactions.DB, n int, version uint64) []ShardPayload {
	var out []ShardPayload
	for i, sh := range db.Shards(n) {
		out = append(out, ShardPayload{ID: i, Version: version, Txs: sh.Transactions})
	}
	return out
}

func testDB(t *testing.T) *transactions.DB {
	t.Helper()
	db := transactions.NewDB()
	for _, tx := range [][]int{
		{1, 3, 4},
		{2, 3, 5},
		{1, 2, 3, 5},
		{2, 5},
		{0, 1, 2},
		{3, 4, 5},
		{1, 2},
	} {
		if err := db.Add(tx...); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// localCounts computes the oracle pass-1 counts.
func localCounts(db *transactions.DB) []int {
	counts := make([]int, db.NumItems())
	for _, tx := range db.Transactions {
		for _, item := range tx {
			counts[item]++
		}
	}
	return counts
}

func eachTransport(t *testing.T, fn func(t *testing.T, tr Transport)) {
	t.Helper()
	for _, tc := range []struct {
		name   string
		encode bool
	}{{"local", false}, {"local-gob", true}} {
		for _, workers := range []int{1, 2, 4} {
			tr := NewLocalTransport(workers, tc.encode)
			t.Run(tc.name+"/"+string(rune('0'+workers)), func(t *testing.T) {
				fn(t, tr)
			})
			tr.Close()
		}
	}
}

func TestCountItemsMatchesLocalScan(t *testing.T) {
	db := testDB(t)
	want := localCounts(db)
	eachTransport(t, func(t *testing.T, tr Transport) {
		c := NewCoordinator(tr)
		if err := c.Sync(ctx, testShards(db, tr.NumWorkers(), 1)); err != nil {
			t.Fatal(err)
		}
		got, err := c.CountItems(ctx, db.NumItems())
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("counts len = %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("count[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	})
}

func TestCountPairsMatchesBruteForce(t *testing.T) {
	db := testDB(t)
	// Rank every item (all "frequent"), so the triangle covers all pairs.
	n := db.NumItems()
	rank := make([]int, n)
	for i := range rank {
		rank[i] = i
	}
	tri := func(i, j int) int { return i*(2*n-i-1)/2 + (j - i - 1) }
	want := make([]int, n*(n-1)/2)
	for _, tx := range db.Transactions {
		for a := 0; a < len(tx); a++ {
			for b := a + 1; b < len(tx); b++ {
				want[tri(tx[a], tx[b])]++
			}
		}
	}
	eachTransport(t, func(t *testing.T, tr Transport) {
		c := NewCoordinator(tr)
		if err := c.Sync(ctx, testShards(db, tr.NumWorkers(), 1)); err != nil {
			t.Fatal(err)
		}
		got, err := c.CountPairs(ctx, rank, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pair count %d = %d, want %d", i, got[i], want[i])
			}
		}
	})
}

func TestCountCandidatesMatchesSupport(t *testing.T) {
	db := testDB(t)
	cands := []transactions.Itemset{
		transactions.NewItemset(1, 2, 3),
		transactions.NewItemset(2, 3, 5),
		transactions.NewItemset(1, 2, 5),
		transactions.NewItemset(3, 4, 5),
	}
	eachTransport(t, func(t *testing.T, tr Transport) {
		c := NewCoordinator(tr)
		if err := c.Sync(ctx, testShards(db, tr.NumWorkers(), 1)); err != nil {
			t.Fatal(err)
		}
		got, err := c.CountCandidates(ctx, 3, 16, 32, cands)
		if err != nil {
			t.Fatal(err)
		}
		for i, cand := range cands {
			if want := db.Support(cand); got[i] != want {
				t.Errorf("support(%v) = %d, want %d", cand, got[i], want)
			}
		}
	})
}

func TestBuildTreeMatchesLocalBuild(t *testing.T) {
	db := testDB(t)
	ranks := fptree.NewRanks(localCounts(db), 2)
	local := fptree.Build(db.Transactions, ranks)
	eachTransport(t, func(t *testing.T, tr Transport) {
		c := NewCoordinator(tr)
		if err := c.Sync(ctx, testShards(db, tr.NumWorkers(), 1)); err != nil {
			t.Fatal(err)
		}
		tree, err := c.BuildTree(ctx, ranks)
		if err != nil {
			t.Fatal(err)
		}
		for rk := int32(0); int(rk) < ranks.Len(); rk++ {
			if tree.Total(rk) != local.Total(rk) {
				t.Errorf("total(rank %d) = %d, want %d", rk, tree.Total(rk), local.Total(rk))
			}
		}
		if tree.NumNodes() != local.NumNodes() {
			t.Errorf("nodes = %d, want %d", tree.NumNodes(), local.NumNodes())
		}
	})
}

func TestSyncReshipsOnlyDirtyShards(t *testing.T) {
	db := testDB(t)
	tr := NewLocalTransport(2, true)
	defer tr.Close()
	c := NewCoordinator(tr)
	shards := testShards(db, 4, 1)
	if err := c.Sync(ctx, shards); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().ShippedShards; got != 4 {
		t.Fatalf("initial ship = %d shards, want 4", got)
	}
	// Unchanged versions: nothing moves.
	if err := c.Sync(ctx, shards); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().ShippedShards; got != 4 {
		t.Fatalf("clean re-sync shipped %d total, want 4", got)
	}
	// One dirty shard: exactly one moves.
	shards[2].Version = 2
	if err := c.Sync(ctx, shards); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().ShippedShards; got != 5 {
		t.Fatalf("dirty re-sync shipped %d total, want 5", got)
	}
	// Reset forgets versions: everything moves again.
	c.Reset()
	if err := c.Sync(ctx, shards); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().ShippedShards; got != 9 {
		t.Fatalf("post-reset sync shipped %d total, want 9", got)
	}
}

func TestWorkerMissingShard(t *testing.T) {
	w := NewWorker()
	var reply CountsReply
	err := w.CountItems(CountItemsArgs{ShardIDs: []int{3}, NumItems: 4}, &reply)
	if !errors.Is(err, ErrNoShard) {
		t.Fatalf("err = %v, want ErrNoShard", err)
	}
}

func TestLocalTransportClosed(t *testing.T) {
	tr := NewLocalTransport(1, false)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	err := tr.Call(ctx, 0, MethodShip, &ShipArgs{}, &ShipReply{})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestBadMethod(t *testing.T) {
	tr := NewLocalTransport(1, false)
	defer tr.Close()
	if err := tr.Call(ctx, 0, "Nope", &ShipArgs{}, &ShipReply{}); !errors.Is(err, ErrBadMethod) {
		t.Fatalf("err = %v, want ErrBadMethod", err)
	}
	tr2 := NewLocalTransport(1, true)
	defer tr2.Close()
	if err := tr2.Call(ctx, 0, "Nope", &ShipArgs{}, &ShipReply{}); !errors.Is(err, ErrBadMethod) {
		t.Fatalf("encode err = %v, want ErrBadMethod", err)
	}
}

// TestRPCTransport runs a real net/rpc worker over loopback TCP and checks
// the counts match the local scan — the deployment transport end to end.
func TestRPCTransport(t *testing.T) {
	db := testDB(t)
	var listeners []net.Listener
	var addrs []string
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Skipf("loopback listen unavailable: %v", err)
		}
		defer l.Close()
		listeners = append(listeners, l)
		addrs = append(addrs, l.Addr().String())
		go ServeWorker(l, NewWorker())
	}
	tr, err := DialRPC(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.NumWorkers() != 2 {
		t.Fatalf("workers = %d", tr.NumWorkers())
	}
	c := NewCoordinator(tr)
	if err := c.Sync(ctx, testShards(db, 3, 1)); err != nil {
		t.Fatal(err)
	}
	got, err := c.CountItems(ctx, db.NumItems())
	if err != nil {
		t.Fatal(err)
	}
	want := localCounts(db)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("count[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// FP-tree build over RPC: the Ranks pointer round-trips through gob.
	ranks := fptree.NewRanks(want, 2)
	tree, err := c.BuildTree(ctx, ranks)
	if err != nil {
		t.Fatal(err)
	}
	local := fptree.Build(db.Transactions, ranks)
	if tree.NumNodes() != local.NumNodes() {
		t.Errorf("rpc tree nodes = %d, want %d", tree.NumNodes(), local.NumNodes())
	}
}

func TestCoordinatorNoWorkers(t *testing.T) {
	c := NewCoordinator(&RPCTransport{})
	if err := c.Sync(ctx, nil); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

// stubTransport lets tests inject malformed replies.
type stubTransport struct {
	counts []int
}

func (s *stubTransport) NumWorkers() int { return 1 }
func (s *stubTransport) Call(_ context.Context, w int, method string, args, reply any) error {
	if r, ok := reply.(*CountsReply); ok {
		r.Counts = s.counts
	}
	return nil
}
func (s *stubTransport) Close() error { return nil }

func TestCountMergedRejectsWrongLengthReply(t *testing.T) {
	c := NewCoordinator(&stubTransport{counts: make([]int, 9)})
	if err := c.Sync(ctx, []ShardPayload{{ID: 0, Version: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CountItems(ctx, 4); err == nil {
		t.Fatal("oversized reply buffer accepted")
	}
}

func TestRPCTransportClosedCall(t *testing.T) {
	tr := &RPCTransport{}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Call(ctx, 0, MethodShip, &ShipArgs{}, &ShipReply{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}
