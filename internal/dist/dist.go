// Package dist is the distributed counting backend: a coordinator ships
// transactions.ShardedDB shard snapshots to workers over a pluggable
// Transport, workers run the repo's per-shard counting structures (flat
// pass-1 item arrays, the triangular pass-2 pair array, hash-tree count
// buffers for candidate lengths >= 3, and per-shard FP-tree builds) and
// return serialized mergeable buffers, and the coordinator folds the
// buffers together with the same commutative integer adds the parallel and
// incremental engines use locally.
//
// The transport/merge contract, stated once:
//
//   - Shards tile the database: every live transaction belongs to exactly
//     one shipped shard, so summed per-shard counts are exact supports.
//   - Every reply is a mergeable buffer — a flat integer array (or an
//     fptree node pool) whose merge is elementwise addition (or path-wise
//     tree merge), both commutative and associative. Worker count, shard
//     placement and merge order therefore cannot change a single count,
//     and distributed results are byte-identical to local runs.
//   - Shards are version-stamped. A worker keeps its replica until the
//     coordinator ships a newer version, and the coordinator re-ships only
//     shards whose version changed — the dirty-shard maintenance protocol
//     of the incremental engine, carried across the network boundary.
//
// Two transports are provided: LocalTransport runs workers as in-process
// goroutines fed by channels (tests and single-binary use; optionally gob
// round-tripping every message so serialization cost is real), and
// RPCTransport speaks net/rpc's gob codec to remote worker processes
// (ServeWorker is the listening side). internal/assoc's Distributed miner
// is the engine built on top of this package.
//
// # Fault model
//
// Workers are fail-stop with omission faults: a call may be slow, may
// never be answered, or may fail with a connection-level error, and a
// worker may die and stay dead. Transports surface those conditions as
// errors wrapping ErrWorkerUnavailable; the coordinator adds per-call
// deadlines (errors wrapping ErrCallTimeout) and retries both with capped
// exponential backoff and deterministic seeded jitter, per RetryPolicy.
// When a worker exhausts its retries the coordinator marks it down and
// fails its replicas over: every shard placed on it is re-assigned
// round-robin across the surviving workers and re-shipped from the
// retained payloads through the same versioned Sync machinery. When no
// healthy worker remains, calls fail with errors wrapping
// ErrNoHealthyWorkers (the Distributed engine reacts by degrading to
// local counting rather than failing the mine).
//
// The invariant all of this preserves is byte-identity under faults:
// a shard's buffer is merged exactly once per scan no matter how many
// attempts or placements it took to obtain, and merging is commutative
// addition, so any mine that completes — through retries, failovers, or
// none — returns exactly the bytes a local run returns, and any mine
// that cannot complete returns a wrapped sentinel, never a partial
// merge. FaultTransport (a deterministic, seeded fault-injecting
// Transport wrapper) exists to test exactly this.
package dist

import (
	"context"
	"errors"
	"fmt"
	"reflect"

	"repro/internal/fptree"
	"repro/internal/transactions"
)

// Errors returned by the package.
var (
	// ErrNoShard reports a count request for a shard id the worker holds no
	// replica of — the coordinator's Sync and the request disagree.
	ErrNoShard = errors.New("dist: worker holds no replica of requested shard")
	// ErrBadMethod reports an unknown transport method name.
	ErrBadMethod = errors.New("dist: unknown transport method")
	// ErrClosed reports a call through a closed transport.
	ErrClosed = errors.New("dist: transport is closed")
	// ErrNoWorkers reports a transport with no workers to place shards on.
	ErrNoWorkers = errors.New("dist: transport has no workers")
	// ErrWorkerUnavailable reports a connection-level failure talking to a
	// worker — the retryable class of transport errors. Transports wrap it
	// (%w) around the underlying cause.
	ErrWorkerUnavailable = errors.New("dist: worker unavailable")
	// ErrCallTimeout reports a call that exceeded the coordinator's
	// per-call deadline (RetryPolicy.CallTimeout). Retryable.
	ErrCallTimeout = errors.New("dist: call deadline exceeded")
	// ErrNoHealthyWorkers reports that every worker has been marked down;
	// the coordinator cannot place or scan shards until Revive.
	ErrNoHealthyWorkers = errors.New("dist: no healthy workers")
)

// Transport method names, the vocabulary every Transport must route. They
// double as the net/rpc method names under the "Worker" service.
const (
	MethodShip            = "Ship"
	MethodCountItems      = "CountItems"
	MethodCountPairs      = "CountPairs"
	MethodCountCandidates = "CountCandidates"
	MethodBuildTree       = "BuildTree"
)

// ShardPayload is one shard snapshot on the wire: the shard's id, its
// version stamp at shipping time, and its live transactions.
type ShardPayload struct {
	ID      int
	Version uint64
	Txs     []transactions.Itemset
}

// ShipArgs delivers shard replicas to a worker; newer versions replace
// older replicas of the same id.
type ShipArgs struct {
	Shards []ShardPayload
}

// ShipReply acknowledges a Ship.
type ShipReply struct{}

// CountItemsArgs requests the pass-1 scan: per-item transaction-occurrence
// counts over the listed shard replicas, into a flat array of NumItems.
type CountItemsArgs struct {
	ShardIDs []int
	NumItems int
}

// CountsReply carries one worker's merged flat count buffer; the
// coordinator folds replies together by elementwise addition.
type CountsReply struct {
	Counts []int
}

// CountPairsArgs requests the pass-2 scan: the triangular pair array over
// L1 ranks. Rank maps item id to rank (-1 marks infrequent items) and N is
// the rank count, so the reply has N*(N-1)/2 counters.
type CountPairsArgs struct {
	ShardIDs []int
	Rank     []int
	N        int
}

// CountCandidatesArgs requests a pass-k (k >= 3) scan: the worker builds a
// candidate hash tree with exactly these parameters and insertion order, so
// entry ids equal candidate indices, and counts the listed shards into one
// buffer. Dedup tids are request-local scan offsets — distinct per
// transaction, which is all the hash tree's double-count guard needs.
type CountCandidatesArgs struct {
	ShardIDs   []int
	K          int
	Fanout     int
	MaxLeaf    int
	Candidates []transactions.Itemset
}

// BuildTreeArgs requests a pattern-growth build: one FP-tree over the
// listed shards under the shared rank table, returned as an exported node
// pool for the coordinator to import and merge.
type BuildTreeArgs struct {
	ShardIDs []int
	Ranks    *fptree.Ranks
}

// TreeReply carries one worker's serialized FP-tree.
type TreeReply struct {
	Nodes []fptree.EncodedNode
}

// Transport carries coordinator requests to workers. Call invokes a
// Method* on worker w (args and reply follow net/rpc conventions: args may
// be a value or pointer, reply must be a pointer) and blocks until the
// reply is filled or ctx is done, whichever comes first — an abandoned
// in-flight request is discarded when its reply eventually arrives, so
// cancellation never corrupts a later call's reply. Calls to distinct
// workers may run concurrently; the coordinator never issues concurrent
// calls to one worker.
type Transport interface {
	// NumWorkers returns how many workers the transport reaches.
	NumWorkers() int
	// Call invokes method on worker w, honouring ctx cancellation.
	Call(ctx context.Context, w int, method string, args, reply any) error
	// Close releases the transport; subsequent calls fail with ErrClosed.
	Close() error
}

// dispatch routes one decoded call to the worker's typed methods. It is
// shared by LocalTransport (directly) and ServeWorker (net/rpc routes by
// method name instead, but the names match by construction).
func dispatch(w *Worker, method string, args, reply any) error {
	switch method {
	case MethodShip:
		return w.Ship(*args.(*ShipArgs), reply.(*ShipReply))
	case MethodCountItems:
		return w.CountItems(*args.(*CountItemsArgs), reply.(*CountsReply))
	case MethodCountPairs:
		return w.CountPairs(*args.(*CountPairsArgs), reply.(*CountsReply))
	case MethodCountCandidates:
		return w.CountCandidates(*args.(*CountCandidatesArgs), reply.(*CountsReply))
	case MethodBuildTree:
		return w.BuildTree(*args.(*BuildTreeArgs), reply.(*TreeReply))
	default:
		return fmt.Errorf("%w: %q", ErrBadMethod, method)
	}
}

// freshReplyLike returns a new zero value of reply's pointed-to type. The
// transports fill a fresh reply per request and copy it to the caller's
// only on success, so a request abandoned on cancellation or timeout can
// complete late without scribbling over a reply object the caller has
// already moved on from (e.g. the retry loop's next attempt).
func freshReplyLike(reply any) any {
	return reflect.New(reflect.TypeOf(reply).Elem()).Interface()
}

// copyReply shallow-copies *src into *dst (both pointers to the same
// struct type) — the success leg of the fresh-reply protocol.
func copyReply(dst, src any) {
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
}

// message returns fresh zero-valued args and reply instances for a method,
// the decode targets of LocalTransport's gob round-trip mode.
func message(method string) (args, reply any, err error) {
	switch method {
	case MethodShip:
		return new(ShipArgs), new(ShipReply), nil
	case MethodCountItems:
		return new(CountItemsArgs), new(CountsReply), nil
	case MethodCountPairs:
		return new(CountPairsArgs), new(CountsReply), nil
	case MethodCountCandidates:
		return new(CountCandidatesArgs), new(CountsReply), nil
	case MethodBuildTree:
		return new(BuildTreeArgs), new(TreeReply), nil
	default:
		return nil, nil, fmt.Errorf("%w: %q", ErrBadMethod, method)
	}
}
