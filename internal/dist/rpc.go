package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
)

// workerService is the net/rpc name workers register under; Transport
// method names append to it.
const workerService = "Worker"

// ServeWorker registers w as the "Worker" net/rpc service and serves
// connections from l (gob codec, one goroutine per connection) until the
// listener closes, whose error it returns. It is the remote side of
// RPCTransport; a worker process is just
//
//	l, _ := net.Listen("tcp", addr)
//	dist.ServeWorker(l, dist.NewWorker())
func ServeWorker(l net.Listener, w *Worker) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName(workerService, w); err != nil {
		return err
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		//lint:ignore invcheck/goroutines per-connection rpc goroutines run until the peer disconnects; their lifetime is bounded by closing the listener, the standard net/rpc serving shape
		go srv.ServeConn(conn)
	}
}

// RPCTransport reaches worker processes over net/rpc's gob codec — the
// real-deployment transport. One persistent connection per worker; calls
// to distinct workers run concurrently on their own connections.
type RPCTransport struct {
	clients []*rpc.Client
}

// DialRPC connects to one worker per address ("host:port", TCP). On any
// dial failure the already-open connections are closed before returning,
// so a mid-list failure leaks nothing, and the error wraps both the
// failing address's cause and ErrWorkerUnavailable.
func DialRPC(addrs []string) (*RPCTransport, error) {
	t := &RPCTransport{}
	for _, addr := range addrs {
		c, err := rpc.Dial("tcp", addr)
		if err != nil {
			if cerr := t.Close(); cerr != nil {
				return nil, fmt.Errorf("%w: dial %s: %w (and closing prior connections: %w)",
					ErrWorkerUnavailable, addr, err, cerr)
			}
			return nil, fmt.Errorf("%w: dial %s: %w", ErrWorkerUnavailable, addr, err)
		}
		t.clients = append(t.clients, c)
	}
	return t, nil
}

// NumWorkers implements Transport.
func (t *RPCTransport) NumWorkers() int { return len(t.clients) }

// Call implements Transport. A closed transport returns ErrClosed like
// the local one, instead of panicking on the nil client slice. A cancelled
// ctx abandons the in-flight rpc: net/rpc delivers the eventual reply to
// the call's own done channel (buffered), so nothing leaks and the
// connection stays usable — and because the rpc targets a fresh reply
// value (copied to the caller's only on success), a late delivery never
// corrupts a retry's reply. Connection-level failures (a shut-down
// client, a broken pipe — anything that is not the worker speaking) come
// back wrapping ErrWorkerUnavailable, the coordinator's retryable class;
// errors the worker itself returned pass through verbatim.
func (t *RPCTransport) Call(ctx context.Context, w int, method string, args, reply any) error {
	if w < 0 || w >= len(t.clients) {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	fresh := freshReplyLike(reply)
	call := t.clients[w].Go(workerService+"."+method, args, fresh, make(chan *rpc.Call, 1))
	select {
	case <-call.Done:
		if call.Error != nil {
			return wrapRPCError(w, call.Error)
		}
		copyReply(reply, fresh)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// wrapRPCError classifies a net/rpc call error: a *rpc.ServerError is the
// worker's own error string, returned as-is (deterministic, not worth a
// retry); everything else is the connection failing underneath us and
// wraps ErrWorkerUnavailable.
func wrapRPCError(w int, err error) error {
	var serverErr rpc.ServerError
	if errors.As(err, &serverErr) {
		return err
	}
	return fmt.Errorf("%w: worker %d: %w", ErrWorkerUnavailable, w, err)
}

// Close implements Transport, closing every connection and returning the
// first error.
func (t *RPCTransport) Close() error {
	var first error
	for _, c := range t.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.clients = nil
	return first
}
