package dist

import (
	"context"
	"net"
	"net/rpc"
)

// workerService is the net/rpc name workers register under; Transport
// method names append to it.
const workerService = "Worker"

// ServeWorker registers w as the "Worker" net/rpc service and serves
// connections from l (gob codec, one goroutine per connection) until the
// listener closes, whose error it returns. It is the remote side of
// RPCTransport; a worker process is just
//
//	l, _ := net.Listen("tcp", addr)
//	dist.ServeWorker(l, dist.NewWorker())
func ServeWorker(l net.Listener, w *Worker) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName(workerService, w); err != nil {
		return err
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go srv.ServeConn(conn)
	}
}

// RPCTransport reaches worker processes over net/rpc's gob codec — the
// real-deployment transport. One persistent connection per worker; calls
// to distinct workers run concurrently on their own connections.
type RPCTransport struct {
	clients []*rpc.Client
}

// DialRPC connects to one worker per address ("host:port", TCP). On any
// dial failure the already-open connections are closed and the error is
// returned.
func DialRPC(addrs []string) (*RPCTransport, error) {
	t := &RPCTransport{}
	for _, addr := range addrs {
		c, err := rpc.Dial("tcp", addr)
		if err != nil {
			t.Close()
			return nil, err
		}
		t.clients = append(t.clients, c)
	}
	return t, nil
}

// NumWorkers implements Transport.
func (t *RPCTransport) NumWorkers() int { return len(t.clients) }

// Call implements Transport. A closed transport returns ErrClosed like
// the local one, instead of panicking on the nil client slice. A cancelled
// ctx abandons the in-flight rpc: net/rpc delivers the eventual reply to
// the call's own done channel (buffered), so nothing leaks and the
// connection stays usable.
func (t *RPCTransport) Call(ctx context.Context, w int, method string, args, reply any) error {
	if w < 0 || w >= len(t.clients) {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	call := t.clients[w].Go(workerService+"."+method, args, reply, make(chan *rpc.Call, 1))
	select {
	case <-call.Done:
		return call.Error
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close implements Transport, closing every connection and returning the
// first error.
func (t *RPCTransport) Close() error {
	var first error
	for _, c := range t.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.clients = nil
	return first
}
