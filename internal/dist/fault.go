package dist

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// FaultKind names one injectable fault. FaultTransport draws kinds from a
// seeded schedule (FaultPlan) or from scripted per-worker queues.
type FaultKind int

// The injectable fault kinds.
const (
	// FaultNone lets the call through untouched.
	FaultNone FaultKind = iota
	// FaultErr fails this one call with a wrapped ErrWorkerUnavailable;
	// the next call may succeed — a one-shot connection blip.
	FaultErr
	// FaultKill fails this call and marks the worker dead for good — the
	// sticky fail-stop fault. Every later call to it fails immediately.
	FaultKill
	// FaultDrop swallows the reply: the call blocks until ctx is done and
	// returns ctx.Err(), exactly like a real transport whose worker never
	// answered. Only a per-call deadline (RetryPolicy.CallTimeout) or a
	// cancelled parent context unblocks it — schedules with Drop > 0 must
	// set one or the mine hangs by design.
	FaultDrop
	// FaultDelay sleeps before forwarding the call — the slow-worker
	// fault. It composes with success: the reply is real, just late.
	FaultDelay
)

// FaultPlan is a seeded random fault schedule. Each call to worker w gets
// an independent deterministic draw keyed by (Seed, w, per-worker call
// index), so a plan replays bit-identically across runs, goroutine
// schedules, and -count reruns. Drop, Error and Kill are cumulative
// probabilities over one draw (their sum should stay <= 1); Delay fires
// on a second independent draw so slowness composes with any outcome.
type FaultPlan struct {
	// Seed keys every draw; 0 means 1.
	Seed int64
	// Drop is the probability a call's reply is swallowed (FaultDrop).
	Drop float64
	// Error is the probability of a one-shot failure (FaultErr).
	Error float64
	// Kill is the probability the worker dies for good (FaultKill).
	Kill float64
	// Delay is how long a delayed call sleeps; DelayProb is the
	// probability it does. Delay <= 0 disables delays regardless.
	Delay     time.Duration
	DelayProb float64
	// PartitionAfter, when > 0, kills every worker once that many calls
	// (counted across all workers) have entered the transport — the full
	// network partition. From then on every call fails unavailable.
	PartitionAfter int
}

// decide draws the fault for per-worker call idx to worker w.
func (p FaultPlan) decide(w, idx int) (kind FaultKind, delayed bool) {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	u := unitFloat(mix64(uint64(seed), 0xfa01, uint64(w), uint64(idx)))
	switch {
	case u < p.Drop:
		kind = FaultDrop
	case u < p.Drop+p.Error:
		kind = FaultErr
	case u < p.Drop+p.Error+p.Kill:
		kind = FaultKill
	default:
		kind = FaultNone
	}
	if p.Delay > 0 && p.DelayProb > 0 {
		u2 := unitFloat(mix64(uint64(seed), 0xde1a, uint64(w), uint64(idx)))
		delayed = u2 < p.DelayProb
	}
	return kind, delayed
}

// unitFloat maps a hash to [0, 1) with 53 uniform bits.
func unitFloat(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// FaultStats counts what a FaultTransport actually injected — the ground
// truth a chaos test correlates coordinator behaviour against.
type FaultStats struct {
	// Calls is every call that entered the transport.
	Calls int
	// Delayed, Dropped, Errored and Killed count injected faults by kind.
	Delayed, Dropped, Errored, Killed int
	// DeadRejects counts calls refused because the worker was already
	// dead (killed earlier or partitioned).
	DeadRejects int
	// Partitioned reports that PartitionAfter fired.
	Partitioned bool
}

// FaultTransport wraps any Transport and injects faults per a FaultPlan
// and/or scripted per-worker queues (FailNext, KillWorker). It is safe
// for the coordinator's concurrent per-worker fan-out; the draw for each
// call depends only on (seed, worker, that worker's call index), never on
// cross-worker interleaving, so schedules are deterministic under -race.
type FaultTransport struct {
	inner Transport
	plan  FaultPlan

	mu     sync.Mutex
	calls  int   // total calls, for PartitionAfter
	idx    []int // per-worker call index, keys the draws
	dead   []bool
	queued [][]FaultKind
	stats  FaultStats
}

// NewFaultTransport wraps inner with the given plan. The wrapper owns
// inner: closing the FaultTransport closes it.
func NewFaultTransport(inner Transport, plan FaultPlan) *FaultTransport {
	n := inner.NumWorkers()
	return &FaultTransport{
		inner:  inner,
		plan:   plan,
		idx:    make([]int, n),
		dead:   make([]bool, n),
		queued: make([][]FaultKind, n),
	}
}

// FailNext scripts the next calls to worker w: each queued kind is
// consumed by one call, before any plan draw. Deterministic unit-test
// fodder ("fail exactly the second CountItems").
func (f *FaultTransport) FailNext(w int, kinds ...FaultKind) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.queued[w] = append(f.queued[w], kinds...)
}

// KillWorker marks worker w dead immediately, as if a FaultKill had fired.
func (f *FaultTransport) KillWorker(w int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dead[w] = true
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultTransport) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// NumWorkers implements Transport.
func (f *FaultTransport) NumWorkers() int { return f.inner.NumWorkers() }

// Call implements Transport, injecting the scheduled fault before (or
// instead of) forwarding to the wrapped transport.
func (f *FaultTransport) Call(ctx context.Context, w int, method string, args, reply any) error {
	f.mu.Lock()
	f.calls++
	f.stats.Calls++
	if f.plan.PartitionAfter > 0 && f.calls > f.plan.PartitionAfter && !f.stats.Partitioned {
		f.stats.Partitioned = true
		for i := range f.dead {
			f.dead[i] = true
		}
	}
	idx := f.idx[w]
	f.idx[w]++
	if f.dead[w] {
		f.stats.DeadRejects++
		f.mu.Unlock()
		return fmt.Errorf("%w: worker %d is dead (injected)", ErrWorkerUnavailable, w)
	}
	var kind FaultKind
	var delayed bool
	if len(f.queued[w]) > 0 {
		kind = f.queued[w][0]
		f.queued[w] = f.queued[w][1:]
	} else {
		kind, delayed = f.plan.decide(w, idx)
	}
	switch kind {
	case FaultKill:
		f.dead[w] = true
		f.stats.Killed++
		f.mu.Unlock()
		return fmt.Errorf("%w: worker %d killed (injected, call %d)", ErrWorkerUnavailable, w, idx)
	case FaultErr:
		f.stats.Errored++
		f.mu.Unlock()
		return fmt.Errorf("%w: worker %d injected error (call %d)", ErrWorkerUnavailable, w, idx)
	case FaultDrop:
		f.stats.Dropped++
		f.mu.Unlock()
		<-ctx.Done()
		return ctx.Err()
	case FaultDelay:
		delayed = true
	}
	if delayed {
		f.stats.Delayed++
		f.mu.Unlock()
		if err := sleepContext(ctx, f.plan.Delay); err != nil {
			return err
		}
	} else {
		f.mu.Unlock()
	}
	return f.inner.Call(ctx, w, method, args, reply)
}

// Close implements Transport, closing the wrapped transport.
func (f *FaultTransport) Close() error { return f.inner.Close() }
