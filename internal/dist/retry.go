package dist

import (
	"context"
	"errors"
	"time"
)

// RetryPolicy bounds the coordinator's per-call behaviour under faults:
// how long one attempt may run, how many attempts a call gets, and how
// the backoff between attempts grows. The zero value means "defaults"
// (see normalized); a policy with MaxAttempts == 1 and CallTimeout == 0
// reproduces the pre-fault-tolerance coordinator exactly.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call (first attempt
	// included). Values < 1 mean the default of 3.
	MaxAttempts int
	// CallTimeout is the per-attempt deadline; 0 disables it and attempts
	// run until the parent context is done. An attempt that exceeds it
	// fails with an error wrapping ErrCallTimeout (retryable).
	CallTimeout time.Duration
	// BaseBackoff is the backoff step before the second attempt; it
	// doubles per retry up to MaxBackoff. Values <= 0 mean 5ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Values <= 0 mean 250ms.
	MaxBackoff time.Duration
	// Seed feeds the deterministic jitter so fault schedules replay
	// exactly; 0 means 1.
	Seed int64
}

// Default retry knobs, exported so CLIs and docs quote one source.
const (
	DefaultMaxAttempts = 3
	DefaultBaseBackoff = 5 * time.Millisecond
	DefaultMaxBackoff  = 250 * time.Millisecond
)

// normalized fills the zero-value defaults in.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = DefaultBaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultMaxBackoff
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = p.BaseBackoff
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Backoff returns the pause before retry number retry (1-based: the pause
// after the first failed attempt is retry 1) of a call to worker w: the
// capped exponential step with deterministic jitter in [step/2, step),
// derived from (Seed, w, retry) so a replayed schedule backs off
// identically while distinct workers still de-synchronise.
func (p RetryPolicy) Backoff(w, retry int) time.Duration {
	p = p.normalized()
	step := p.BaseBackoff
	for i := 1; i < retry && step < p.MaxBackoff; i++ {
		step *= 2
	}
	if step > p.MaxBackoff {
		step = p.MaxBackoff
	}
	half := step / 2
	if half <= 0 {
		return step
	}
	jitter := time.Duration(mix64(uint64(p.Seed), uint64(w), uint64(retry)) % uint64(half))
	return half + jitter
}

// Retryable reports whether err is worth another attempt: only the
// transport-level sentinels qualify. Application errors (ErrNoShard,
// ErrBadMethod, malformed replies) are deterministic and retrying them
// would just repeat the failure.
func Retryable(err error) bool {
	return errors.Is(err, ErrWorkerUnavailable) || errors.Is(err, ErrCallTimeout)
}

// mix64 hashes its words through splitmix64 — the repo's stateless
// deterministic mixer (synth uses the same construction), here the jitter
// and fault-schedule source. No math/rand state means no cross-test
// coupling and exact replays.
func mix64(words ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range words {
		h ^= w + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		z := h
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		h = z ^ (z >> 31)
	}
	return h
}

// sleepContext pauses for d unless ctx finishes first, in which case it
// returns ctx.Err() — the cancellation-aware leg of the backoff loop.
func sleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
