// Package neural implements the feedforward multilayer perceptron with
// sigmoid units and stochastic backpropagation — the neural-network
// classifier of the tutorial era (Rumelhart-style backprop, no modern
// optimisers), operating over dataset.Table with the same mixed-attribute
// encoding as the kNN classifier. Training costs epochs × rows × weights;
// prediction is one O(weights) forward pass.
package neural

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// Config controls training.
type Config struct {
	Hidden       []int   // hidden layer widths; nil means one layer of 8
	LearningRate float64 // zero means 0.1
	Epochs       int     // zero means 50
	Momentum     float64 // classic momentum term
	Seed         int64
}

// Errors returned by Train.
var (
	ErrNoRows  = errors.New("neural: empty training table")
	ErrNoClass = errors.New("neural: table has no categorical class attribute")
	ErrConfig  = errors.New("neural: invalid configuration")
)

// Network is a trained MLP classifier.
type Network struct {
	attrs    []dataset.Attribute
	classIdx int
	nClasses int
	mins     []float64
	ranges   []float64

	// layers[l] transforms activations of layer l to l+1.
	weights [][][]float64 // [layer][to][from]
	biases  [][]float64   // [layer][to]
	sizes   []int
}

// Train fits the network with per-example (stochastic) backprop.
func Train(t *dataset.Table, cfg Config) (*Network, error) {
	if t == nil || t.NumRows() == 0 {
		return nil, ErrNoRows
	}
	if t.NumClasses() < 1 {
		return nil, ErrNoClass
	}
	if cfg.LearningRate < 0 || cfg.Epochs < 0 || cfg.Momentum < 0 || cfg.Momentum >= 1 {
		return nil, ErrConfig
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 0.1
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 50
	}
	hidden := cfg.Hidden
	if hidden == nil {
		hidden = []int{8}
	}
	for _, h := range hidden {
		if h < 1 {
			return nil, fmt.Errorf("%w: hidden width %d", ErrConfig, h)
		}
	}
	n := &Network{
		attrs:    t.Attributes,
		classIdx: t.ClassIndex,
		nClasses: t.NumClasses(),
	}
	n.fitScaling(t)
	inputDim := len(n.vectorize(t.Rows[0]))
	n.sizes = append([]int{inputDim}, hidden...)
	n.sizes = append(n.sizes, n.nClasses)

	rng := rand.New(rand.NewSource(cfg.Seed))
	nLayers := len(n.sizes) - 1
	n.weights = make([][][]float64, nLayers)
	n.biases = make([][]float64, nLayers)
	prevW := make([][][]float64, nLayers)
	prevB := make([][]float64, nLayers)
	for l := 0; l < nLayers; l++ {
		from, to := n.sizes[l], n.sizes[l+1]
		n.weights[l] = make([][]float64, to)
		prevW[l] = make([][]float64, to)
		n.biases[l] = make([]float64, to)
		prevB[l] = make([]float64, to)
		scale := 1 / math.Sqrt(float64(from))
		for j := 0; j < to; j++ {
			n.weights[l][j] = make([]float64, from)
			prevW[l][j] = make([]float64, from)
			for i := range n.weights[l][j] {
				n.weights[l][j][i] = rng.NormFloat64() * scale
			}
		}
	}

	inputs := make([][]float64, t.NumRows())
	targets := make([]int, t.NumRows())
	for i, row := range t.Rows {
		inputs[i] = n.vectorize(row)
		targets[i] = t.Class(i)
	}
	order := make([]int, len(inputs))
	for i := range order {
		order[i] = i
	}
	acts := make([][]float64, len(n.sizes))
	deltas := make([][]float64, nLayers)
	for l := 0; l < nLayers; l++ {
		deltas[l] = make([]float64, n.sizes[l+1])
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, ex := range order {
			n.forward(inputs[ex], acts)
			// Output deltas: squared-error derivative with sigmoid.
			out := acts[len(acts)-1]
			for j := range out {
				target := 0.0
				if j == targets[ex] {
					target = 1.0
				}
				deltas[nLayers-1][j] = (out[j] - target) * out[j] * (1 - out[j])
			}
			// Hidden deltas back through the layers.
			for l := nLayers - 2; l >= 0; l-- {
				for i := 0; i < n.sizes[l+1]; i++ {
					sum := 0.0
					for j := 0; j < n.sizes[l+2]; j++ {
						sum += deltas[l+1][j] * n.weights[l+1][j][i]
					}
					a := acts[l+1][i]
					deltas[l][i] = sum * a * (1 - a)
				}
			}
			// Gradient step with momentum.
			for l := 0; l < nLayers; l++ {
				for j := 0; j < n.sizes[l+1]; j++ {
					for i := 0; i < n.sizes[l]; i++ {
						dw := -cfg.LearningRate*deltas[l][j]*acts[l][i] + cfg.Momentum*prevW[l][j][i]
						n.weights[l][j][i] += dw
						prevW[l][j][i] = dw
					}
					db := -cfg.LearningRate*deltas[l][j] + cfg.Momentum*prevB[l][j]
					n.biases[l][j] += db
					prevB[l][j] = db
				}
			}
		}
	}
	return n, nil
}

func (n *Network) fitScaling(t *dataset.Table) {
	nAttrs := len(t.Attributes)
	n.mins = make([]float64, nAttrs)
	n.ranges = make([]float64, nAttrs)
	for j, a := range t.Attributes {
		if j == t.ClassIndex || a.Kind != dataset.Numeric {
			n.ranges[j] = 1
			continue
		}
		min, max := math.Inf(1), math.Inf(-1)
		for _, row := range t.Rows {
			v := row[j]
			if dataset.IsMissing(v) {
				continue
			}
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if min > max {
			min, max = 0, 1
		}
		n.mins[j] = min
		if max > min {
			n.ranges[j] = max - min
		} else {
			n.ranges[j] = 1
		}
	}
}

func (n *Network) vectorize(row []float64) []float64 {
	var out []float64
	for j, a := range n.attrs {
		if j == n.classIdx {
			continue
		}
		v := row[j]
		if a.Kind == dataset.Numeric {
			if dataset.IsMissing(v) {
				out = append(out, 0.5)
			} else {
				out = append(out, (v-n.mins[j])/n.ranges[j])
			}
			continue
		}
		oh := make([]float64, len(a.Values))
		if !dataset.IsMissing(v) {
			idx := int(v)
			if idx >= 0 && idx < len(oh) {
				oh[idx] = 1
			}
		}
		out = append(out, oh...)
	}
	return out
}

// forward fills acts[0..L] with layer activations.
func (n *Network) forward(input []float64, acts [][]float64) {
	acts[0] = input
	for l := 0; l < len(n.weights); l++ {
		if acts[l+1] == nil {
			acts[l+1] = make([]float64, n.sizes[l+1])
		}
		for j := 0; j < n.sizes[l+1]; j++ {
			sum := n.biases[l][j]
			w := n.weights[l][j]
			for i, a := range acts[l] {
				sum += w[i] * a
			}
			acts[l+1][j] = sigmoid(sum)
		}
	}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Proba returns the (normalised) output activations for the row.
func (n *Network) Proba(row []float64) []float64 {
	acts := make([][]float64, len(n.sizes))
	n.forward(n.vectorize(row), acts)
	out := acts[len(acts)-1]
	total := 0.0
	for _, v := range out {
		total += v
	}
	probs := make([]float64, len(out))
	for i, v := range out {
		if total > 0 {
			probs[i] = v / total
		} else {
			probs[i] = 1 / float64(len(out))
		}
	}
	return probs
}

// Predict returns the class with the highest output activation.
func (n *Network) Predict(row []float64) int {
	acts := make([][]float64, len(n.sizes))
	n.forward(n.vectorize(row), acts)
	out := acts[len(acts)-1]
	best := 0
	for j, v := range out {
		if v > out[best] {
			best = j
		}
	}
	return best
}
