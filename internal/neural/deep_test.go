package neural

import (
	"testing"

	"repro/internal/synth"
)

func TestTwoHiddenLayers(t *testing.T) {
	tbl := xorTable(t)
	n, err := Train(tbl, Config{Hidden: []int{6, 4}, LearningRate: 0.5, Epochs: 500, Momentum: 0.9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.sizes) != 4 { // input, 6, 4, output
		t.Fatalf("sizes = %v", n.sizes)
	}
	correct := 0
	for i, row := range tbl.Rows {
		if n.Predict(row) == tbl.Class(i) {
			correct++
		}
	}
	if correct < tbl.NumRows()*9/10 {
		t.Errorf("two-layer net solved %d/%d XOR rows", correct, tbl.NumRows())
	}
}

func TestCategoricalInputsOneHot(t *testing.T) {
	// A table with a categorical attribute must widen the input layer by
	// its one-hot size.
	tbl, err := synth.Classify(synth.ClassifyConfig{NumRows: 100, Function: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Train(tbl, Config{Epochs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Nine numeric attributes: input layer is 9 wide.
	if n.sizes[0] != 9 {
		t.Errorf("input width = %d", n.sizes[0])
	}
}

func TestMoreEpochsDoNotHurtTrainingFit(t *testing.T) {
	tbl := xorTable(t)
	few, err := Train(tbl, Config{Hidden: []int{8}, LearningRate: 0.5, Epochs: 5, Momentum: 0.9, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Train(tbl, Config{Hidden: []int{8}, LearningRate: 0.5, Epochs: 400, Momentum: 0.9, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	fit := func(n *Network) int {
		c := 0
		for i, row := range tbl.Rows {
			if n.Predict(row) == tbl.Class(i) {
				c++
			}
		}
		return c
	}
	if fit(many) < fit(few) {
		t.Errorf("more training fit worse: %d vs %d", fit(many), fit(few))
	}
}
