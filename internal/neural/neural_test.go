package neural

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

func xorTable(t *testing.T) *dataset.Table {
	t.Helper()
	tbl := dataset.New(
		dataset.NewNumericAttribute("a"),
		dataset.NewNumericAttribute("b"),
		dataset.NewCategoricalAttribute("class", "zero", "one"),
	)
	tbl.ClassIndex = 2
	// Replicated XOR so the stochastic updates see enough examples.
	for rep := 0; rep < 25; rep++ {
		for _, r := range [][]float64{
			{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0},
		} {
			if err := tbl.AppendRow(append([]float64(nil), r...)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tbl
}

func TestLearnsXOR(t *testing.T) {
	tbl := xorTable(t)
	n, err := Train(tbl, Config{Hidden: []int{8}, LearningRate: 0.5, Epochs: 400, Momentum: 0.9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[[2]float64]int{
		{0, 0}: 0, {0, 1}: 1, {1, 0}: 1, {1, 1}: 0,
	}
	for in, want := range cases {
		if got := n.Predict([]float64{in[0], in[1], 0}); got != want {
			t.Errorf("XOR(%v) = %d, want %d", in, got, want)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, Config{}); !errors.Is(err, ErrNoRows) {
		t.Errorf("nil error = %v", err)
	}
	noClass := dataset.New(dataset.NewNumericAttribute("x"))
	if err := noClass.AppendRow([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Train(noClass, Config{}); !errors.Is(err, ErrNoClass) {
		t.Errorf("no-class error = %v", err)
	}
	tbl := xorTable(t)
	if _, err := Train(tbl, Config{LearningRate: -1}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad lr error = %v", err)
	}
	if _, err := Train(tbl, Config{Momentum: 1}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad momentum error = %v", err)
	}
	if _, err := Train(tbl, Config{Hidden: []int{0}}); !errors.Is(err, ErrConfig) {
		t.Errorf("zero hidden error = %v", err)
	}
}

func TestDeterministicTraining(t *testing.T) {
	tbl := xorTable(t)
	cfg := Config{Hidden: []int{4}, Epochs: 20, Seed: 7}
	a, err := Train(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tbl.Rows {
		pa, pb := a.Proba(row), b.Proba(row)
		for c := range pa {
			if pa[c] != pb[c] {
				t.Fatalf("row %d class %d: %v != %v", i, c, pa[c], pb[c])
			}
		}
	}
}

func TestProbaSumsToOne(t *testing.T) {
	tbl := xorTable(t)
	n, err := Train(tbl, Config{Epochs: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := n.Proba(tbl.Rows[0])
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("proba sum = %v", sum)
	}
}

func TestBeatsMajorityOnLinearFunction(t *testing.T) {
	// F7 is a linear threshold of salary/commission/loan: MLP territory.
	train, err := synth.Classify(synth.ClassifyConfig{NumRows: 1500, Function: 7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	test, err := synth.Classify(synth.ClassifyConfig{NumRows: 600, Function: 7, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Train(train, Config{Hidden: []int{8}, Epochs: 60, LearningRate: 0.3, Momentum: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	counts := make([]int, 2)
	for i, row := range test.Rows {
		if n.Predict(row) == test.Class(i) {
			correct++
		}
		counts[test.Class(i)]++
	}
	acc := float64(correct) / float64(test.NumRows())
	base := float64(maxInt(counts[0], counts[1])) / float64(test.NumRows())
	if acc <= base+0.05 {
		t.Errorf("accuracy %v not better than baseline %v", acc, base)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestMissingInputsHandled(t *testing.T) {
	tbl := xorTable(t)
	n, err := Train(tbl, Config{Epochs: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	got := n.Predict([]float64{dataset.Missing, dataset.Missing, 0})
	if got != 0 && got != 1 {
		t.Errorf("prediction = %d", got)
	}
}
