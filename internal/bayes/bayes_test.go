package bayes

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

func smallTable(t *testing.T) *dataset.Table {
	t.Helper()
	tbl := dataset.New(
		dataset.NewCategoricalAttribute("color", "red", "blue"),
		dataset.NewNumericAttribute("size"),
		dataset.NewCategoricalAttribute("class", "a", "b"),
	)
	tbl.ClassIndex = 2
	rows := [][]float64{
		{0, 1.0, 0},
		{0, 1.2, 0},
		{0, 0.9, 0},
		{1, 5.0, 1},
		{1, 5.5, 1},
		{1, 4.8, 1},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil); !errors.Is(err, ErrNoRows) {
		t.Errorf("nil error = %v", err)
	}
	noClass := dataset.New(dataset.NewNumericAttribute("x"))
	if err := noClass.AppendRow([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Train(noClass); !errors.Is(err, ErrNoClass) {
		t.Errorf("no-class error = %v", err)
	}
}

func TestPredictSeparable(t *testing.T) {
	tbl := smallTable(t)
	c, err := Train(tbl)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tbl.Rows {
		if got := c.Predict(row); got != tbl.Class(i) {
			t.Errorf("row %d predicted %d, want %d", i, got, tbl.Class(i))
		}
	}
	// A new red small instance is class a; blue large is class b.
	if got := c.Predict([]float64{0, 1.1, 0}); got != 0 {
		t.Errorf("red small = %d", got)
	}
	if got := c.Predict([]float64{1, 5.2, 0}); got != 1 {
		t.Errorf("blue large = %d", got)
	}
}

func TestProbaSumsToOne(t *testing.T) {
	tbl := smallTable(t)
	c, err := Train(tbl)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Proba([]float64{0, 1.0, 0})
	sum := 0.0
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Errorf("probability out of range: %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if p[0] <= p[1] {
		t.Errorf("class a should dominate: %v", p)
	}
}

func TestMissingValuesSkipped(t *testing.T) {
	tbl := smallTable(t)
	c, err := Train(tbl)
	if err != nil {
		t.Fatal(err)
	}
	allMissing := []float64{dataset.Missing, dataset.Missing, 0}
	p := c.Proba(allMissing)
	// With everything missing, posterior equals the prior: equal here.
	if math.Abs(p[0]-p[1]) > 1e-9 {
		t.Errorf("all-missing posterior = %v, want prior", p)
	}
}

func TestLaplaceSmoothingNoZeroProbability(t *testing.T) {
	tbl := smallTable(t)
	c, err := Train(tbl)
	if err != nil {
		t.Fatal(err)
	}
	// "blue" never occurs with class a; smoothing keeps it possible.
	scores := c.LogPosterior([]float64{1, 1.0, 0})
	for _, s := range scores {
		if math.IsInf(s, -1) || math.IsNaN(s) {
			t.Errorf("log posterior = %v", scores)
		}
	}
}

func TestConstantNumericAttribute(t *testing.T) {
	tbl := dataset.New(
		dataset.NewNumericAttribute("x"),
		dataset.NewCategoricalAttribute("class", "a", "b"),
	)
	tbl.ClassIndex = 1
	for i := 0; i < 6; i++ {
		if err := tbl.AppendRow([]float64{2.0, float64(i % 2)}); err != nil {
			t.Fatal(err)
		}
	}
	c, err := Train(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Predict([]float64{2.0, 0}); got != 0 && got != 1 {
		t.Errorf("degenerate predict = %d", got)
	}
}

func TestAccuracyOnIndependentFunction(t *testing.T) {
	// F1 depends only on age: a naive-Bayes-friendly function.
	train, err := synth.Classify(synth.ClassifyConfig{NumRows: 2000, Function: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	test, err := synth.Classify(synth.ClassifyConfig{NumRows: 1000, Function: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Train(train)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, row := range test.Rows {
		if c.Predict(row) == test.Class(i) {
			correct++
		}
	}
	acc := float64(correct) / float64(test.NumRows())
	// F1's two age intervals are not Gaussian-separable perfectly, but NB
	// must beat the ~0.5 majority baseline comfortably.
	if acc < 0.6 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestPredictBeatsMajorityOnF7(t *testing.T) {
	train, err := synth.Classify(synth.ClassifyConfig{NumRows: 2000, Function: 7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	test, err := synth.Classify(synth.ClassifyConfig{NumRows: 1000, Function: 7, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Train(train)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	majority := make([]int, 2)
	for i, row := range test.Rows {
		if c.Predict(row) == test.Class(i) {
			correct++
		}
		majority[test.Class(i)]++
	}
	acc := float64(correct) / float64(test.NumRows())
	base := float64(max(majority[0], majority[1])) / float64(test.NumRows())
	if acc <= base {
		t.Errorf("accuracy %v <= majority baseline %v", acc, base)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
