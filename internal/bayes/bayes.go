// Package bayes implements the naive Bayes classifier over dataset.Table:
// Laplace-smoothed frequency estimates for categorical attributes and
// Gaussian class-conditional densities for numeric attributes, with missing
// values skipped per attribute (the standard treatment). Training is one
// O(rows·attributes) counting pass; prediction is O(attributes·classes).
package bayes

import (
	"errors"
	"math"

	"repro/internal/dataset"
)

// Errors returned by Train.
var (
	ErrNoClass = errors.New("bayes: table has no categorical class attribute")
	ErrNoRows  = errors.New("bayes: empty training table")
)

// Classifier is a trained naive Bayes model.
type Classifier struct {
	attrs    []dataset.Attribute
	classIdx int
	nClasses int

	logPrior []float64
	// catLogProb[j][c][v] = log P(attr j = v | class c) for categorical j.
	catLogProb map[int][][]float64
	// gauss[j][c] holds the class-conditional normal for numeric j.
	gauss map[int][]gaussian
}

type gaussian struct {
	mean, sd float64
	ok       bool // false when the class had no observed values
}

// Train fits the model.
func Train(t *dataset.Table) (*Classifier, error) {
	if t == nil || t.NumRows() == 0 {
		return nil, ErrNoRows
	}
	nClasses := t.NumClasses()
	if nClasses < 1 {
		return nil, ErrNoClass
	}
	c := &Classifier{
		attrs:      t.Attributes,
		classIdx:   t.ClassIndex,
		nClasses:   nClasses,
		catLogProb: make(map[int][][]float64),
		gauss:      make(map[int][]gaussian),
	}
	classCounts := make([]float64, nClasses)
	for i := range t.Rows {
		classCounts[t.Class(i)]++
	}
	c.logPrior = make([]float64, nClasses)
	total := float64(t.NumRows())
	for cl, cnt := range classCounts {
		// Laplace-smoothed prior guards against empty classes.
		c.logPrior[cl] = math.Log((cnt + 1) / (total + float64(nClasses)))
	}

	for j, a := range t.Attributes {
		if j == t.ClassIndex {
			continue
		}
		if a.Kind == dataset.Categorical {
			nVals := len(a.Values)
			counts := make([][]float64, nClasses)
			for cl := range counts {
				counts[cl] = make([]float64, nVals)
			}
			seen := make([]float64, nClasses)
			for i, row := range t.Rows {
				v := row[j]
				if dataset.IsMissing(v) {
					continue
				}
				cl := t.Class(i)
				counts[cl][int(v)]++
				seen[cl]++
			}
			logp := make([][]float64, nClasses)
			for cl := range logp {
				logp[cl] = make([]float64, nVals)
				for v := 0; v < nVals; v++ {
					logp[cl][v] = math.Log((counts[cl][v] + 1) / (seen[cl] + float64(nVals)))
				}
			}
			c.catLogProb[j] = logp
		} else {
			gs := make([]gaussian, nClasses)
			sum := make([]float64, nClasses)
			sumSq := make([]float64, nClasses)
			n := make([]float64, nClasses)
			for i, row := range t.Rows {
				v := row[j]
				if dataset.IsMissing(v) {
					continue
				}
				cl := t.Class(i)
				sum[cl] += v
				sumSq[cl] += v * v
				n[cl]++
			}
			for cl := range gs {
				if n[cl] == 0 {
					continue
				}
				mean := sum[cl] / n[cl]
				variance := 0.0
				if n[cl] > 1 {
					variance = (sumSq[cl] - sum[cl]*sum[cl]/n[cl]) / (n[cl] - 1)
				}
				sd := math.Sqrt(variance)
				if sd < 1e-9 {
					sd = 1e-9 // degenerate spike; keeps the density finite
				}
				gs[cl] = gaussian{mean: mean, sd: sd, ok: true}
			}
			c.gauss[j] = gs
		}
	}
	return c, nil
}

// LogPosterior returns the unnormalised log posterior of every class for
// the row.
func (c *Classifier) LogPosterior(row []float64) []float64 {
	scores := append([]float64(nil), c.logPrior...)
	for j := range c.attrs {
		if j == c.classIdx {
			continue
		}
		v := row[j]
		if dataset.IsMissing(v) {
			continue
		}
		if logp, ok := c.catLogProb[j]; ok {
			vi := int(v)
			for cl := range scores {
				if vi >= 0 && vi < len(logp[cl]) {
					scores[cl] += logp[cl][vi]
				}
			}
			continue
		}
		gs := c.gauss[j]
		for cl := range scores {
			if !gs[cl].ok {
				continue
			}
			scores[cl] += logNormPDF(v, gs[cl].mean, gs[cl].sd)
		}
	}
	return scores
}

// Proba returns normalised class probabilities for the row.
func (c *Classifier) Proba(row []float64) []float64 {
	scores := c.LogPosterior(row)
	max := scores[0]
	for _, s := range scores[1:] {
		if s > max {
			max = s
		}
	}
	total := 0.0
	for i, s := range scores {
		scores[i] = math.Exp(s - max)
		total += scores[i]
	}
	for i := range scores {
		scores[i] /= total
	}
	return scores
}

// Predict returns the most probable class for the row.
func (c *Classifier) Predict(row []float64) int {
	scores := c.LogPosterior(row)
	best := 0
	for cl, s := range scores {
		if s > scores[best] {
			best = cl
		}
	}
	return best
}

func logNormPDF(x, mean, sd float64) float64 {
	d := (x - mean) / sd
	return -0.5*d*d - math.Log(sd) - 0.5*math.Log(2*math.Pi)
}
