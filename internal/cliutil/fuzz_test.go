package cliutil

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseFaults drives the -distfaults k=v parser with arbitrary
// specs: it must never panic, every rejection must wrap ErrInvalidFlags
// (so commands exit 2, not crash), every accepted schedule must satisfy
// the documented invariants, and parsing must be deterministic.
func FuzzParseFaults(f *testing.F) {
	seeds := []string{
		"",
		"   ",
		"seed=7",
		"seed=7,drop=0.05,err=0.1,kill=0.02",
		"delay=1ms,delayprob=0.1,partition=40",
		"timeout=250ms,attempts=3,backoff=2ms,maxbackoff=50ms",
		"ERR=0.5",
		"error=1",
		"drop=0.4,err=0.4,kill=0.4",
		"drop=-0.1",
		"drop=NaN",
		"drop=1e300",
		"seed=notanumber",
		"seed=9223372036854775808",
		"delay=-1ms",
		"delay=500",
		"attempts=0",
		"partition=-1",
		"bogus=1",
		"seed",
		"=7",
		"seed=7,,err=0.1",
		"seed=7, err = 0.1 ",
		"timeout=1h2m3s",
		"drop=0.5,drop=0.1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		got, err := ParseFaults(spec)
		if err != nil {
			if !errors.Is(err, ErrInvalidFlags) {
				t.Fatalf("rejection %v does not wrap ErrInvalidFlags", err)
			}
			if got != nil {
				t.Fatal("rejection returned a non-nil schedule")
			}
			return
		}
		if strings.TrimSpace(spec) == "" {
			if got != nil {
				t.Fatalf("blank spec returned %+v, want nil", got)
			}
			return
		}
		if got == nil {
			t.Fatal("accepted non-blank spec returned nil")
		}
		// Documented invariants of an accepted schedule.
		for name, p := range map[string]float64{
			"drop": got.Drop, "err": got.Err, "kill": got.Kill, "delayprob": got.DelayProb,
		} {
			if !(p >= 0 && p <= 1) {
				t.Fatalf("accepted %s=%v outside [0, 1]", name, p)
			}
		}
		if sum := got.Drop + got.Err + got.Kill; sum > 1 {
			t.Fatalf("accepted drop+err+kill=%v > 1", sum)
		}
		if got.Attempts < 1 {
			t.Fatalf("accepted attempts=%d < 1", got.Attempts)
		}
		if got.Partition < 0 || got.Timeout < 0 || got.Delay < 0 || got.Backoff < 0 || got.MaxBackoff < 0 {
			t.Fatalf("accepted negative durations/counts: %+v", got)
		}
		// Parsing is deterministic: the same spec parses to the same
		// schedule.
		again, err := ParseFaults(spec)
		if err != nil || !reflect.DeepEqual(got, again) {
			t.Fatalf("re-parse diverged: %+v vs %+v (err %v)", got, again, err)
		}
	})
}
