package cliutil

import (
	"errors"
	"flag"
	"io"
	"runtime"
	"strings"
	"testing"
)

func TestParseInvalidFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-nosuch"},
		{"-workers", "notanint"},
		{"-minsup"}, // missing value
	} {
		fs := NewFlagSet("assoc")
		fs.SetOutput(io.Discard)
		AddWorkersFlag(fs)
		AddSupportFlags(fs)
		err := Parse(fs, args)
		if !errors.Is(err, ErrInvalidFlags) {
			t.Errorf("Parse(%v): err = %v, want ErrInvalidFlags", args, err)
		}
		if err == nil || !strings.HasPrefix(err.Error(), "invalid flags for assoc: ") {
			t.Errorf("Parse(%v): error text %q lacks the consistent prefix", args, err)
		}
		if ExitCode(err) != 2 {
			t.Errorf("Parse(%v): exit code = %d, want 2", args, ExitCode(err))
		}
	}
}

func TestParseHelp(t *testing.T) {
	fs := NewFlagSet("assoc")
	fs.SetOutput(io.Discard)
	err := Parse(fs, []string{"-h"})
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("err = %v, want flag.ErrHelp", err)
	}
	if ExitCode(err) != 0 {
		t.Errorf("exit code for -h = %d, want 0", ExitCode(err))
	}
}

func TestParseValid(t *testing.T) {
	fs := NewFlagSet("assoc")
	fs.SetOutput(io.Discard)
	workers := AddWorkersFlag(fs)
	sup := AddSupportFlags(fs)
	inc := AddIncrementalFlags(fs)
	dist := AddDistFlags(fs, "dist usage", "workers usage")
	if err := Parse(fs, []string{"-workers", "4", "-minsup", "0.02", "-incremental", "-dist", "-distworkers", "3"}); err != nil {
		t.Fatal(err)
	}
	if *workers != 4 || sup.MinSup != 0.02 || sup.MinConf != 0.5 || !inc.Enabled || !dist.Dist || dist.Workers != 3 {
		t.Errorf("parsed values = %d %v %+v %+v", *workers, sup, inc, dist)
	}
	if ExitCode(nil) != 0 {
		t.Error("nil error should exit 0")
	}
	if ExitCode(errors.New("boom")) != 1 {
		t.Error("plain errors should exit 1")
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(3); got != 3 {
		t.Errorf("ResolveWorkers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := ResolveWorkers(0); got != want {
		t.Errorf("ResolveWorkers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := ResolveWorkers(-2); got != want {
		t.Errorf("ResolveWorkers(-2) = %d, want GOMAXPROCS %d", got, want)
	}
	d := &DistFlags{Workers: 0}
	if got := d.EffectiveWorkers(); got != want {
		t.Errorf("EffectiveWorkers(0) = %d, want %d", got, want)
	}
}
