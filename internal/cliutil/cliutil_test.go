package cliutil

import (
	"errors"
	"flag"
	"io"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestParseInvalidFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-nosuch"},
		{"-workers", "notanint"},
		{"-minsup"}, // missing value
	} {
		fs := NewFlagSet("assoc")
		fs.SetOutput(io.Discard)
		AddWorkersFlag(fs)
		AddSupportFlags(fs)
		err := Parse(fs, args)
		if !errors.Is(err, ErrInvalidFlags) {
			t.Errorf("Parse(%v): err = %v, want ErrInvalidFlags", args, err)
		}
		if err == nil || !strings.HasPrefix(err.Error(), "invalid flags for assoc: ") {
			t.Errorf("Parse(%v): error text %q lacks the consistent prefix", args, err)
		}
		if ExitCode(err) != 2 {
			t.Errorf("Parse(%v): exit code = %d, want 2", args, ExitCode(err))
		}
	}
}

func TestParseHelp(t *testing.T) {
	fs := NewFlagSet("assoc")
	fs.SetOutput(io.Discard)
	err := Parse(fs, []string{"-h"})
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("err = %v, want flag.ErrHelp", err)
	}
	if ExitCode(err) != 0 {
		t.Errorf("exit code for -h = %d, want 0", ExitCode(err))
	}
}

func TestParseValid(t *testing.T) {
	fs := NewFlagSet("assoc")
	fs.SetOutput(io.Discard)
	workers := AddWorkersFlag(fs)
	sup := AddSupportFlags(fs)
	inc := AddIncrementalFlags(fs)
	dist := AddDistFlags(fs, "dist usage", "workers usage")
	if err := Parse(fs, []string{"-workers", "4", "-minsup", "0.02", "-incremental", "-dist", "-distworkers", "3"}); err != nil {
		t.Fatal(err)
	}
	if *workers != 4 || sup.MinSup != 0.02 || sup.MinConf != 0.5 || !inc.Enabled || !dist.Dist || dist.Workers != 3 {
		t.Errorf("parsed values = %d %v %+v %+v", *workers, sup, inc, dist)
	}
	if ExitCode(nil) != 0 {
		t.Error("nil error should exit 0")
	}
	if ExitCode(errors.New("boom")) != 1 {
		t.Error("plain errors should exit 1")
	}
}

func TestParseFaultsDefaults(t *testing.T) {
	for _, empty := range []string{"", "   "} {
		if f, err := ParseFaults(empty); f != nil || err != nil {
			t.Errorf("ParseFaults(%q) = %+v, %v; want nil, nil", empty, f, err)
		}
	}
	f, err := ParseFaults("drop=0.05")
	if err != nil {
		t.Fatal(err)
	}
	// A schedule with drops would hang by design without a call timeout,
	// so the defaults must always carry one.
	want := FaultSettings{Seed: 1, Drop: 0.05, Attempts: 3,
		Backoff: 2 * time.Millisecond, Timeout: 250 * time.Millisecond}
	if *f != want {
		t.Errorf("ParseFaults defaults = %+v, want %+v", *f, want)
	}
}

func TestParseFaultsFullSpec(t *testing.T) {
	f, err := ParseFaults("seed=7, drop=0.05,err=0.1,kill=0.02,delay=1ms,delayprob=0.1,partition=40,timeout=50ms,attempts=5,backoff=3ms,maxbackoff=20ms")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultSettings{
		Seed: 7, Drop: 0.05, Err: 0.1, Kill: 0.02,
		Delay: time.Millisecond, DelayProb: 0.1, Partition: 40,
		Timeout: 50 * time.Millisecond, Attempts: 5,
		Backoff: 3 * time.Millisecond, MaxBackoff: 20 * time.Millisecond,
	}
	if *f != want {
		t.Errorf("ParseFaults full spec = %+v, want %+v", *f, want)
	}
	if g, err := ParseFaults("error=0.2"); err != nil || g.Err != 0.2 {
		t.Errorf("'error' alias: %+v, %v", g, err)
	}
}

func TestParseFaultsRejects(t *testing.T) {
	for _, spec := range []string{
		"drop",                      // no '='
		"nosuch=1",                  // unknown key
		"drop=abc",                  // not a float
		"drop=1.5",                  // probability out of range
		"kill=-0.1",                 // negative probability
		"drop=0.5,err=0.4,kill=0.3", // probabilities sum past 1
		"delay=fast",                // not a duration
		"partition=-1",              // negative
		"attempts=0",                // below 1
		"timeout=-1ms",              // negative duration
	} {
		f, err := ParseFaults(spec)
		if !errors.Is(err, ErrInvalidFlags) {
			t.Errorf("ParseFaults(%q) = %+v, %v; want ErrInvalidFlags", spec, f, err)
		}
	}
}

func TestAddFaultsFlag(t *testing.T) {
	fs := NewFlagSet("assoc")
	fs.SetOutput(io.Discard)
	spec := AddFaultsFlag(fs)
	if err := Parse(fs, []string{"-distfaults", "seed=3,err=0.1"}); err != nil {
		t.Fatal(err)
	}
	f, err := ParseFaults(*spec)
	if err != nil {
		t.Fatal(err)
	}
	if f.Seed != 3 || f.Err != 0.1 {
		t.Errorf("round-trip = %+v", f)
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(3); got != 3 {
		t.Errorf("ResolveWorkers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := ResolveWorkers(0); got != want {
		t.Errorf("ResolveWorkers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := ResolveWorkers(-2); got != want {
		t.Errorf("ResolveWorkers(-2) = %d, want GOMAXPROCS %d", got, want)
	}
	d := &DistFlags{Workers: 0}
	if got := d.EffectiveWorkers(); got != want {
		t.Errorf("EffectiveWorkers(0) = %d, want %d", got, want)
	}
}

func TestAddServeFlags(t *testing.T) {
	fs := NewFlagSet("dmserve")
	fs.SetOutput(io.Discard)
	sf := AddServeFlags(fs)
	if err := Parse(fs, nil); err != nil {
		t.Fatal(err)
	}
	if sf.Addr != "127.0.0.1:8080" || sf.RPCAddr != "" || sf.MaintainEvery != 2*time.Second {
		t.Errorf("defaults = %+v", sf)
	}
	if sf.MaintainAfter != 0 || sf.Queue != 0 || sf.Cache != 0 || sf.RuleFloor != 0 {
		t.Errorf("zero-means-package-default knobs not zero: %+v", sf)
	}
	if sf.Data != "" || sf.Fsync != "always" || sf.SnapshotEvery != 0 {
		t.Errorf("durability defaults = %+v", sf)
	}

	fs = NewFlagSet("dmserve")
	fs.SetOutput(io.Discard)
	sf = AddServeFlags(fs)
	args := []string{
		"-addr", "0.0.0.0:9999", "-rpcaddr", "127.0.0.1:9998",
		"-maintainafter", "64", "-maintainevery", "500ms",
		"-queue", "32", "-cache", "-1", "-rulefloor", "0.75",
		"-data", "/tmp/dm", "-fsync", "interval=250ms", "-snapshotevery", "128",
	}
	if err := Parse(fs, args); err != nil {
		t.Fatal(err)
	}
	if sf.Addr != "0.0.0.0:9999" || sf.RPCAddr != "127.0.0.1:9998" ||
		sf.MaintainAfter != 64 || sf.MaintainEvery != 500*time.Millisecond ||
		sf.Queue != 32 || sf.Cache != -1 || sf.RuleFloor != 0.75 ||
		sf.Data != "/tmp/dm" || sf.Fsync != "interval=250ms" || sf.SnapshotEvery != 128 {
		t.Errorf("parsed values = %+v", sf)
	}

	fs = NewFlagSet("dmserve")
	fs.SetOutput(io.Discard)
	AddServeFlags(fs)
	if err := Parse(fs, []string{"-maintainevery", "soon"}); !errors.Is(err, ErrInvalidFlags) {
		t.Errorf("bad duration: err = %v, want ErrInvalidFlags", err)
	}
}

func TestParseFaultsRejectsNaN(t *testing.T) {
	for _, spec := range []string{"drop=NaN", "err=nan", "kill=NaN", "delayprob=NaN"} {
		if _, err := ParseFaults(spec); !errors.Is(err, ErrInvalidFlags) {
			t.Errorf("ParseFaults(%q) = %v, want ErrInvalidFlags", spec, err)
		}
	}
}

func TestParseFsync(t *testing.T) {
	cases := []struct {
		spec string
		want FsyncSetting
	}{
		{"always", FsyncSetting{Mode: "always"}},
		{"never", FsyncSetting{Mode: "never"}},
		{"interval", FsyncSetting{Mode: "interval"}},
		{"interval=250ms", FsyncSetting{Mode: "interval", Interval: 250 * time.Millisecond}},
		{" Interval = 1s ", FsyncSetting{Mode: "interval", Interval: time.Second}},
	}
	for _, c := range cases {
		got, err := ParseFsync(c.spec)
		if err != nil || got != c.want {
			t.Errorf("ParseFsync(%q) = %+v, %v, want %+v", c.spec, got, err, c.want)
		}
	}
	for _, spec := range []string{"", "sometimes", "always=1s", "never=x", "interval=soon", "interval=0s", "interval=-1s"} {
		if _, err := ParseFsync(spec); !errors.Is(err, ErrInvalidFlags) {
			t.Errorf("ParseFsync(%q) = %v, want ErrInvalidFlags", spec, err)
		}
	}
}
