// Package cliutil holds the flag plumbing cmd/dmine and cmd/dmbench
// share: the mining flag groups (workers, support, incremental,
// distributed) registered with one help text and one resolution rule, and
// a Parse/ExitCode pair that makes every invalid-flag path exit nonzero
// with consistent error text instead of whatever each FlagSet improvised.
package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// ErrInvalidFlags wraps every flag-parse failure Parse reports; commands
// test for it with errors.Is and exit with code 2.
var ErrInvalidFlags = errors.New("invalid flags")

// NewFlagSet returns a FlagSet wired for Parse: ContinueOnError (so
// failures return instead of exiting mid-library) with usage printed to
// stderr.
func NewFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

// Parse parses args with fs. On failure the flag package has already
// printed the specific problem and the usage to fs's output; the returned
// error wraps ErrInvalidFlags with the flag-set name, so every command
// reports "invalid flags for <cmd>: <reason>" and exits nonzero. -h/-help
// returns flag.ErrHelp unchanged (commands exit 0).
func Parse(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w for %s: %v", ErrInvalidFlags, fs.Name(), err)
	}
	return nil
}

// ExitCode maps a command's top-level error to its process exit code:
// 0 for success or -h, 2 for invalid flags, 1 for everything else.
func ExitCode(err error) int {
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		return 0
	case errors.Is(err, ErrInvalidFlags):
		return 2
	default:
		return 1
	}
}

// AddWorkersFlag registers the shared -workers flag: counting-scan
// goroutines for engines that support count distribution, default 1
// (serial), 0 meaning GOMAXPROCS. Resolve with ResolveWorkers.
func AddWorkersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 1,
		"counting-scan goroutines for miners that support count distribution; 0 means GOMAXPROCS")
}

// ResolveWorkers applies the CLI-wide convention: n <= 0 resolves to
// runtime.GOMAXPROCS(0).
func ResolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// SupportFlags are the shared mining thresholds.
type SupportFlags struct {
	MinSup  float64
	MinConf float64
}

// AddSupportFlags registers -minsup and -minconf with the shared
// defaults. Range validation stays with the engines (ErrBadSupport /
// ErrBadConfidence), so CLI and API errors cannot diverge.
func AddSupportFlags(fs *flag.FlagSet) *SupportFlags {
	s := &SupportFlags{}
	fs.Float64Var(&s.MinSup, "minsup", 0.01, "minimum relative support in (0, 1]")
	fs.Float64Var(&s.MinConf, "minconf", 0.5, "minimum rule confidence in (0, 1]")
	return s
}

// IncrementalFlags are the incremental-maintenance flags.
type IncrementalFlags struct {
	Enabled  bool
	Updates  string
	ShardCap int
	Verify   bool
}

// AddIncrementalFlags registers -incremental, -updates, -shardcap and
// -verify.
func AddIncrementalFlags(fs *flag.FlagSet) *IncrementalFlags {
	f := &IncrementalFlags{}
	fs.BoolVar(&f.Enabled, "incremental", false,
		"mine through the incremental maintenance backend (dirty-shard re-count)")
	fs.StringVar(&f.Updates, "updates", "",
		"incremental: update script ('+ items…' append, '- tid' delete, '=' re-maintain)")
	fs.IntVar(&f.ShardCap, "shardcap", 0,
		"incremental: transactions per shard (rounded up to a multiple of 64; 0 = 1024)")
	fs.BoolVar(&f.Verify, "verify", false,
		"incremental: check each maintained result is byte-identical to a from-scratch run")
	return f
}

// DistFlags are the distributed-backend flags. The two commands apply
// -distworkers differently (transport size vs. sweep-ladder narrowing),
// so the usage strings are parameters while the names and types are
// shared.
type DistFlags struct {
	Dist    bool
	Workers int
}

// AddDistFlags registers -dist and -distworkers with the given usage.
func AddDistFlags(fs *flag.FlagSet, distUsage, workersUsage string) *DistFlags {
	d := &DistFlags{}
	fs.BoolVar(&d.Dist, "dist", false, distUsage)
	fs.IntVar(&d.Workers, "distworkers", 0, workersUsage)
	return d
}

// EffectiveWorkers resolves -distworkers for the transport-sizing use:
// <= 0 means GOMAXPROCS.
func (d *DistFlags) EffectiveWorkers() int { return ResolveWorkers(d.Workers) }

// ServeFlags are cmd/dmserve's serving-tier flags: listen addresses,
// the ingest/maintenance pacing knobs of internal/serve, and the
// durability knobs (data directory, fsync policy, snapshot cadence).
type ServeFlags struct {
	Addr          string
	RPCAddr       string
	MaintainAfter int
	MaintainEvery time.Duration
	Queue         int
	Cache         int
	RuleFloor     float64
	Data          string
	Fsync         string
	SnapshotEvery int
}

// AddServeFlags registers -addr, -rpcaddr, -maintainafter,
// -maintainevery, -queue, -cache, -rulefloor, -data, -fsync and
// -snapshotevery with dmserve's defaults (0 values defer to
// internal/serve's documented defaults).
func AddServeFlags(fs *flag.FlagSet) *ServeFlags {
	f := &ServeFlags{}
	fs.StringVar(&f.Addr, "addr", "127.0.0.1:8080", "HTTP listen address")
	fs.StringVar(&f.RPCAddr, "rpcaddr", "", "optional net/rpc (gob) listen address")
	fs.IntVar(&f.MaintainAfter, "maintainafter", 0,
		"ops between maintains (dirty threshold; 0 = 256)")
	fs.DurationVar(&f.MaintainEvery, "maintainevery", 2*time.Second,
		"additional timer-based maintain interval (0 = no timer)")
	fs.IntVar(&f.Queue, "queue", 0, "bounded ingest queue size (0 = 1024)")
	fs.IntVar(&f.Cache, "cache", 0, "query result cache entries (0 = 512; negative disables)")
	fs.Float64Var(&f.RuleFloor, "rulefloor", 0,
		"confidence floor of the published rule set in (0, 1] (0 = 0.5)")
	fs.StringVar(&f.Data, "data", "",
		"durable data directory: WAL + snapshots, crash recovery on start (empty = in-memory only)")
	fs.StringVar(&f.Fsync, "fsync", "always",
		"WAL fsync policy with -data: 'always' (sync before ack), 'interval[=100ms]' (timer), 'never' (page cache)")
	fs.IntVar(&f.SnapshotEvery, "snapshotevery", 0,
		"ops between WAL snapshots with -data (0 = 4096; negative disables)")
	return f
}

// FsyncSetting is a parsed -fsync value. Mode is one of "always",
// "interval" or "never"; Interval is the timer period when Mode is
// "interval" (0 = the serving tier's default). cliutil stays free of an
// internal/wal dependency, so the command maps Mode onto wal.SyncPolicy.
type FsyncSetting struct {
	Mode     string
	Interval time.Duration
}

// ParseFsync parses a -fsync policy: "always", "never", "interval", or
// "interval=<duration>" for an explicit sync period.
func ParseFsync(spec string) (FsyncSetting, error) {
	mode, val, hasVal := strings.Cut(strings.TrimSpace(spec), "=")
	mode = strings.ToLower(strings.TrimSpace(mode))
	switch mode {
	case "always", "never":
		if hasVal {
			return FsyncSetting{}, fmt.Errorf("%w: -fsync %q: %q takes no value", ErrInvalidFlags, spec, mode)
		}
		return FsyncSetting{Mode: mode}, nil
	case "interval":
		f := FsyncSetting{Mode: mode}
		if hasVal {
			d, err := time.ParseDuration(strings.TrimSpace(val))
			if err != nil {
				return FsyncSetting{}, fmt.Errorf("%w: -fsync %q: %v", ErrInvalidFlags, spec, err)
			}
			if d <= 0 {
				return FsyncSetting{}, fmt.Errorf("%w: -fsync %q: interval must be positive", ErrInvalidFlags, spec)
			}
			f.Interval = d
		}
		return f, nil
	default:
		return FsyncSetting{}, fmt.Errorf("%w: -fsync %q: want always, never, or interval[=duration]", ErrInvalidFlags, spec)
	}
}

// AddFaultsFlag registers -distfaults, the reproducible fault-injection
// schedule both commands accept. Parse the value with ParseFaults.
func AddFaultsFlag(fs *flag.FlagSet) *string {
	return fs.String("distfaults", "",
		"distributed: seeded fault-injection schedule, e.g. 'seed=7,drop=0.05,err=0.1,kill=0.02,delay=1ms,delayprob=0.1,partition=40,timeout=250ms,attempts=3,backoff=2ms'")
}

// FaultSettings is a parsed -distfaults value: the injection schedule
// (seed, probabilities, delay, partition) plus the retry policy that
// makes it survivable (timeout, attempts, backoff). It stays a plain
// value type so cliutil depends on neither the mining facade nor
// internal/dist; each command maps it onto its own types.
type FaultSettings struct {
	Seed       int64
	Drop       float64
	Err        float64
	Kill       float64
	Delay      time.Duration
	DelayProb  float64
	Partition  int
	Timeout    time.Duration
	Attempts   int
	Backoff    time.Duration
	MaxBackoff time.Duration
}

// ParseFaults parses a -distfaults schedule: comma-separated key=value
// pairs. Keys: seed (int), drop/err/kill/delayprob (probability in
// [0, 1]), delay/timeout/backoff/maxbackoff (Go durations), partition
// (calls before a full partition), attempts (tries per call). Unset keys
// default to seed=1, attempts=3, backoff=2ms, timeout=250ms — a timeout
// always applies because a schedule with drops would otherwise hang by
// design. An empty spec returns (nil, nil): fault injection off.
func ParseFaults(spec string) (*FaultSettings, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	f := &FaultSettings{Seed: 1, Attempts: 3, Backoff: 2 * time.Millisecond, Timeout: 250 * time.Millisecond}
	bad := func(kv string, err error) error {
		return fmt.Errorf("%w: -distfaults %q: %v", ErrInvalidFlags, kv, err)
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, bad(kv, errors.New("want key=value"))
		}
		var err error
		switch strings.ToLower(strings.TrimSpace(key)) {
		case "seed":
			f.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			f.Drop, err = parseProb(val)
		case "err", "error":
			f.Err, err = parseProb(val)
		case "kill":
			f.Kill, err = parseProb(val)
		case "delayprob":
			f.DelayProb, err = parseProb(val)
		case "delay":
			f.Delay, err = time.ParseDuration(val)
		case "timeout":
			f.Timeout, err = time.ParseDuration(val)
		case "backoff":
			f.Backoff, err = time.ParseDuration(val)
		case "maxbackoff":
			f.MaxBackoff, err = time.ParseDuration(val)
		case "partition":
			f.Partition, err = strconv.Atoi(val)
		case "attempts":
			f.Attempts, err = strconv.Atoi(val)
		default:
			return nil, bad(kv, errors.New("unknown key"))
		}
		if err != nil {
			return nil, bad(kv, err)
		}
	}
	if sum := f.Drop + f.Err + f.Kill; sum > 1 {
		return nil, fmt.Errorf("%w: -distfaults: drop+err+kill = %v > 1", ErrInvalidFlags, sum)
	}
	if f.Attempts < 1 || f.Partition < 0 || f.Timeout < 0 || f.Delay < 0 || f.Backoff < 0 || f.MaxBackoff < 0 {
		return nil, fmt.Errorf("%w: -distfaults: negative or zero values where positive ones are required", ErrInvalidFlags)
	}
	return f, nil
}

// parseProb parses a probability and range-checks it into [0, 1]. The
// inverted comparison also rejects NaN, which would slip through a
// `p < 0 || p > 1` check and corrupt every downstream probability sum.
func parseProb(val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if !(p >= 0 && p <= 1) {
		return 0, fmt.Errorf("probability %v outside [0, 1]", p)
	}
	return p, nil
}
