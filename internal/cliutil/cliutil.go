// Package cliutil holds the flag plumbing cmd/dmine and cmd/dmbench
// share: the mining flag groups (workers, support, incremental,
// distributed) registered with one help text and one resolution rule, and
// a Parse/ExitCode pair that makes every invalid-flag path exit nonzero
// with consistent error text instead of whatever each FlagSet improvised.
package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
)

// ErrInvalidFlags wraps every flag-parse failure Parse reports; commands
// test for it with errors.Is and exit with code 2.
var ErrInvalidFlags = errors.New("invalid flags")

// NewFlagSet returns a FlagSet wired for Parse: ContinueOnError (so
// failures return instead of exiting mid-library) with usage printed to
// stderr.
func NewFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

// Parse parses args with fs. On failure the flag package has already
// printed the specific problem and the usage to fs's output; the returned
// error wraps ErrInvalidFlags with the flag-set name, so every command
// reports "invalid flags for <cmd>: <reason>" and exits nonzero. -h/-help
// returns flag.ErrHelp unchanged (commands exit 0).
func Parse(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w for %s: %v", ErrInvalidFlags, fs.Name(), err)
	}
	return nil
}

// ExitCode maps a command's top-level error to its process exit code:
// 0 for success or -h, 2 for invalid flags, 1 for everything else.
func ExitCode(err error) int {
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		return 0
	case errors.Is(err, ErrInvalidFlags):
		return 2
	default:
		return 1
	}
}

// AddWorkersFlag registers the shared -workers flag: counting-scan
// goroutines for engines that support count distribution, default 1
// (serial), 0 meaning GOMAXPROCS. Resolve with ResolveWorkers.
func AddWorkersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 1,
		"counting-scan goroutines for miners that support count distribution; 0 means GOMAXPROCS")
}

// ResolveWorkers applies the CLI-wide convention: n <= 0 resolves to
// runtime.GOMAXPROCS(0).
func ResolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// SupportFlags are the shared mining thresholds.
type SupportFlags struct {
	MinSup  float64
	MinConf float64
}

// AddSupportFlags registers -minsup and -minconf with the shared
// defaults. Range validation stays with the engines (ErrBadSupport /
// ErrBadConfidence), so CLI and API errors cannot diverge.
func AddSupportFlags(fs *flag.FlagSet) *SupportFlags {
	s := &SupportFlags{}
	fs.Float64Var(&s.MinSup, "minsup", 0.01, "minimum relative support in (0, 1]")
	fs.Float64Var(&s.MinConf, "minconf", 0.5, "minimum rule confidence in (0, 1]")
	return s
}

// IncrementalFlags are the incremental-maintenance flags.
type IncrementalFlags struct {
	Enabled  bool
	Updates  string
	ShardCap int
	Verify   bool
}

// AddIncrementalFlags registers -incremental, -updates, -shardcap and
// -verify.
func AddIncrementalFlags(fs *flag.FlagSet) *IncrementalFlags {
	f := &IncrementalFlags{}
	fs.BoolVar(&f.Enabled, "incremental", false,
		"mine through the incremental maintenance backend (dirty-shard re-count)")
	fs.StringVar(&f.Updates, "updates", "",
		"incremental: update script ('+ items…' append, '- tid' delete, '=' re-maintain)")
	fs.IntVar(&f.ShardCap, "shardcap", 0,
		"incremental: transactions per shard (rounded up to a multiple of 64; 0 = 1024)")
	fs.BoolVar(&f.Verify, "verify", false,
		"incremental: check each maintained result is byte-identical to a from-scratch run")
	return f
}

// DistFlags are the distributed-backend flags. The two commands apply
// -distworkers differently (transport size vs. sweep-ladder narrowing),
// so the usage strings are parameters while the names and types are
// shared.
type DistFlags struct {
	Dist    bool
	Workers int
}

// AddDistFlags registers -dist and -distworkers with the given usage.
func AddDistFlags(fs *flag.FlagSet, distUsage, workersUsage string) *DistFlags {
	d := &DistFlags{}
	fs.BoolVar(&d.Dist, "dist", false, distUsage)
	fs.IntVar(&d.Workers, "distworkers", 0, workersUsage)
	return d
}

// EffectiveWorkers resolves -distworkers for the transport-sizing use:
// <= 0 means GOMAXPROCS.
func (d *DistFlags) EffectiveWorkers() int { return ResolveWorkers(d.Workers) }
