package assoc

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/transactions"
)

// TidLayout selects Eclat's vertical representation.
type TidLayout int

const (
	// LayoutAuto picks bitsets when the frequent items are dense enough
	// (mean density >= the cutoff) and tid-lists otherwise.
	LayoutAuto TidLayout = iota
	// LayoutTIDList forces sorted tid-list intersections.
	LayoutTIDList
	// LayoutBitset forces bitset (word-wise AND + popcount) intersections.
	LayoutBitset
)

// DefaultDensityCutoff is the mean frequent-item density above which
// LayoutAuto switches to bitsets. A tid-list entry costs one 64-bit word
// per transaction containing the item, a bitset costs NumTx/64 words
// regardless, so bitsets win once lists hold more than ~1/64 of the
// transactions; the default adds headroom for the popcount advantage.
const DefaultDensityCutoff = 1.0 / 64

// Eclat mines frequent itemsets in the vertical layout: candidate tid-sets
// are the intersections of their generators' tid-sets, so support counting
// needs no database rescans (Zaki et al.; the same machinery the Partition
// algorithm applies per partition — here run over the whole database).
// Dense databases use the Bitset layout, where an intersection is an
// in-place word-wise AND with popcount support; sparse ones fall back to
// sorted tid-list merging.
type Eclat struct {
	// Layout selects tid-lists vs bitsets; zero value decides by density.
	Layout TidLayout
	// DensityCutoff overrides DefaultDensityCutoff when positive.
	DensityCutoff float64
	// Workers distributes each level's candidate intersections across this
	// many goroutines; <= 1 runs serially with identical results.
	Workers int

	hook PassHook
}

// Name implements Miner.
func (e *Eclat) Name() string { return "Eclat" }

// SetWorkers implements WorkerSetter.
func (e *Eclat) SetWorkers(n int) { e.Workers = n }

// SetPassHook implements PassObserver. Levels are emitted nil: a level's
// ItemsetCounts are materialised one loop iteration after its pass stat,
// so consumers read the levels from the final Result.
func (e *Eclat) SetPassHook(h PassHook) { e.hook = h }

// eclatNode is one frequent itemset with its tid-set in either layout
// (exactly one of tids/bits is set).
type eclatNode struct {
	items transactions.Itemset
	tids  []int
	bits  *transactions.Bitset
	sup   int
}

// Mine implements Miner.
func (e *Eclat) Mine(db *transactions.DB, minSupport float64) (*Result, error) {
	return e.MineContext(context.Background(), db, minSupport)
}

// MineContext implements ContextMiner.
func (e *Eclat) MineContext(ctx context.Context, db *transactions.DB, minSupport float64) (*Result, error) {
	minCount, err := checkInput(db, minSupport)
	if err != nil {
		return emptyResult(), err
	}
	res := &Result{MinCount: minCount, NumTx: db.Len()}

	var level []eclatNode
	if e.Layout == LayoutBitset {
		// Forced bitset layout builds the bitset vertical view directly —
		// one database scan, no tid-list intermediate.
		vert := db.ToVerticalBitset()
		items := make([]int, 0, len(vert.Bits))
		for item := range vert.Bits {
			items = append(items, item)
		}
		sort.Ints(items)
		for _, item := range items {
			bits := vert.Bits[item]
			if sup := bits.OnesCount(); sup >= minCount {
				level = append(level, eclatNode{items: transactions.Itemset{item}, bits: bits, sup: sup})
			}
		}
	} else {
		vert := db.ToVertical()
		items := make([]int, 0, len(vert.TIDLists))
		for item := range vert.TIDLists {
			items = append(items, item)
		}
		sort.Ints(items)
		totalTids := 0
		for _, item := range items {
			if tids := vert.TIDLists[item]; len(tids) >= minCount {
				level = append(level, eclatNode{items: transactions.Itemset{item}, tids: tids, sup: len(tids)})
				totalTids += len(tids)
			}
		}
		if e.useBitsets(len(level), totalTids, db.Len()) {
			for i := range level {
				level[i].bits = transactions.BitsetFromTIDs(level[i].tids, db.Len())
				level[i].tids = nil
			}
		}
	}
	res.addPass(e.hook, PassStat{K: 1, Candidates: db.NumItems(), Frequent: len(level)}, nil)

	for k := 1; len(level) > 0; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		counts := make([]ItemsetCount, len(level))
		for i, nd := range level {
			counts[i] = ItemsetCount{Items: nd.items, Count: nd.sup}
		}
		res.Levels = append(res.Levels, counts)

		next, candidates, err := e.joinLevel(ctx, level, minCount)
		if err != nil {
			return nil, err
		}
		if candidates > 0 {
			res.addPass(e.hook, PassStat{K: k + 1, Candidates: candidates, Frequent: len(next)}, nil)
		}
		level = next
	}
	return res, nil
}

// useBitsets decides the auto layout (forced LayoutBitset never reaches
// here). totalTids is the summed tid-list length of the frequent items, so
// totalTids/(n*numTx) is their mean density.
func (e *Eclat) useBitsets(n, totalTids, numTx int) bool {
	if e.Layout == LayoutTIDList || n == 0 || numTx == 0 {
		return false
	}
	cutoff := e.DensityCutoff
	if cutoff <= 0 {
		cutoff = DefaultDensityCutoff
	}
	return float64(totalTids)/float64(n*numTx) >= cutoff
}

// joinLevel produces the next level by joining equal-prefix node pairs and
// intersecting their tid-sets. The work is split by left-join index i
// (each i's joins are independent given the level snapshot), pulled by
// workers from an atomic counter and reassembled in i order, so the output
// is identical to the serial join. Both the serial and the worker loops
// poll ctx per left index, so cancellation surfaces within one i's joins.
func (e *Eclat) joinLevel(ctx context.Context, level []eclatNode, minCount int) ([]eclatNode, int, error) {
	joinsFor := func(i int, dst []eclatNode) ([]eclatNode, int) {
		candidates := 0
		a := level[i]
		for j := i + 1; j < len(level); j++ {
			b := level[j]
			if !samePrefix(a.items, b.items, len(a.items)-1) {
				break
			}
			candidates++
			var nd eclatNode
			if a.bits != nil {
				// Read-only count first: most joins are pruned, and a
				// pruned candidate should cost neither an allocation nor
				// any word writes. Survivors pay one more AND pass to
				// materialise; measured faster than a fused write-always
				// scratch pass because prunes dominate.
				nd.sup = transactions.AndCount(a.bits, b.bits)
				if nd.sup < minCount {
					continue
				}
				nd.bits = transactions.AndBitset(a.bits, b.bits)
			} else {
				tids := transactions.IntersectSorted(a.tids, b.tids)
				nd.sup = len(tids)
				if nd.sup < minCount {
					continue
				}
				nd.tids = tids
			}
			cand := make(transactions.Itemset, len(a.items)+1)
			copy(cand, a.items)
			cand[len(a.items)] = b.items[len(b.items)-1]
			nd.items = cand
			dst = append(dst, nd)
		}
		return dst, candidates
	}

	if e.Workers <= 1 || len(level) < 2 {
		var next []eclatNode
		candidates := 0
		for i := 0; i < len(level); i++ {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
			var c int
			next, c = joinsFor(i, next)
			candidates += c
		}
		return next, candidates, nil
	}

	perI := make([][]eclatNode, len(level))
	candsPerI := make([]int, len(level))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	workers := e.Workers
	if workers > len(level) {
		workers = len(level)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(level) || ctx.Err() != nil {
					return
				}
				perI[i], candsPerI[i] = joinsFor(i, nil)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	var next []eclatNode
	candidates := 0
	for i := range perI {
		next = append(next, perI[i]...)
		candidates += candsPerI[i]
	}
	return next, candidates, nil
}
