package assoc

import (
	"sort"

	"repro/internal/transactions"
)

// Eclat mines frequent itemsets in the vertical (tid-list) layout:
// candidate tid-lists are the intersections of their generators'
// tid-lists, so support counting needs no database rescans (Zaki et al.;
// the same machinery the Partition algorithm applies per partition —
// here run over the whole database).
type Eclat struct{}

// Name implements Miner.
func (e *Eclat) Name() string { return "Eclat" }

// Mine implements Miner.
func (e *Eclat) Mine(db *transactions.DB, minSupport float64) (*Result, error) {
	minCount, err := checkInput(db, minSupport)
	if err != nil {
		return nil, err
	}
	res := &Result{MinCount: minCount, NumTx: db.Len()}
	vert := db.ToVertical()

	type node struct {
		items transactions.Itemset
		tids  []int
	}
	items := make([]int, 0, len(vert.TIDLists))
	for item := range vert.TIDLists {
		items = append(items, item)
	}
	sort.Ints(items)
	var level []node
	for _, item := range items {
		if tids := vert.TIDLists[item]; len(tids) >= minCount {
			level = append(level, node{items: transactions.Itemset{item}, tids: tids})
		}
	}
	res.Passes = append(res.Passes, PassStat{K: 1, Candidates: db.NumItems(), Frequent: len(level)})

	for k := 1; len(level) > 0; k++ {
		counts := make([]ItemsetCount, len(level))
		for i, nd := range level {
			counts[i] = ItemsetCount{Items: nd.items, Count: len(nd.tids)}
		}
		res.Levels = append(res.Levels, counts)

		var next []node
		candidates := 0
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				a, b := level[i], level[j]
				if !samePrefix(a.items, b.items, len(a.items)-1) {
					break
				}
				candidates++
				tids := transactions.IntersectSorted(a.tids, b.tids)
				if len(tids) < minCount {
					continue
				}
				cand := make(transactions.Itemset, len(a.items)+1)
				copy(cand, a.items)
				cand[len(a.items)] = b.items[len(b.items)-1]
				next = append(next, node{items: cand, tids: tids})
			}
		}
		if candidates > 0 {
			res.Passes = append(res.Passes, PassStat{K: k + 1, Candidates: candidates, Frequent: len(next)})
		}
		level = next
	}
	return res, nil
}
