package assoc

// Registered returns fresh instances of the canonical miner lineup — the
// EXP-A1 suite plus the engines later milestones added. core.Miners and
// the public mining package both build on this list, so a new engine
// registers once and appears everywhere (CLIs, experiment sweeps, the
// public Algorithm option). Every returned miner implements ContextMiner
// and PassObserver; the compile-time assertions below keep that true.
func Registered() []Miner {
	return []Miner{
		&AIS{},
		&SETM{},
		&Apriori{},
		&AprioriTid{},
		&AprioriHybrid{},
		&Partition{NumPartitions: 4},
		&DHP{},
		&Eclat{},
		&FPGrowth{},
		&Sampling{},
		&Auto{},
		&Distributed{},
	}
}

// Every registered miner supports context cancellation and pass
// observation — the contract the public mining facade relies on.
var (
	_ ContextMiner = (*AIS)(nil)
	_ ContextMiner = (*SETM)(nil)
	_ ContextMiner = (*Apriori)(nil)
	_ ContextMiner = (*AprioriTid)(nil)
	_ ContextMiner = (*AprioriHybrid)(nil)
	_ ContextMiner = (*Partition)(nil)
	_ ContextMiner = (*DHP)(nil)
	_ ContextMiner = (*Eclat)(nil)
	_ ContextMiner = (*FPGrowth)(nil)
	_ ContextMiner = (*Sampling)(nil)
	_ ContextMiner = (*Auto)(nil)
	_ ContextMiner = (*Distributed)(nil)

	_ PassObserver = (*AIS)(nil)
	_ PassObserver = (*SETM)(nil)
	_ PassObserver = (*Apriori)(nil)
	_ PassObserver = (*AprioriTid)(nil)
	_ PassObserver = (*AprioriHybrid)(nil)
	_ PassObserver = (*Partition)(nil)
	_ PassObserver = (*DHP)(nil)
	_ PassObserver = (*Eclat)(nil)
	_ PassObserver = (*FPGrowth)(nil)
	_ PassObserver = (*Sampling)(nil)
	_ PassObserver = (*Auto)(nil)
	_ PassObserver = (*Distributed)(nil)
)
