package assoc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/synth"
	"repro/internal/transactions"
)

// randomDB mirrors the property-test generator: small random databases
// over a small universe, where the brute-force oracle is feasible.
func randomDB(seed int64) *transactions.DB {
	rng := rand.New(rand.NewSource(seed))
	db := transactions.NewDB()
	nTx := 4 + rng.Intn(30)
	for i := 0; i < nTx; i++ {
		n := 1 + rng.Intn(6)
		items := make([]int, n)
		for j := range items {
			items[j] = rng.Intn(9)
		}
		if err := db.Add(items...); err != nil {
			panic(err)
		}
	}
	return db
}

// parallelVariants returns, for a worker count, the miners whose results
// must be identical to their serial counterparts.
func parallelVariants(workers int) []Miner {
	return []Miner{
		&Apriori{Workers: workers},
		&Apriori{Strategy: CountMap, Workers: workers},
		&DHP{Workers: workers},
		&DHP{NumBuckets: 64, Workers: workers},
		&Partition{NumPartitions: 3, Workers: workers},
		&Eclat{Workers: workers},
		&Eclat{Layout: LayoutTIDList, Workers: workers},
		&Eclat{Layout: LayoutBitset, Workers: workers},
		&FPGrowth{Workers: workers},
	}
}

func serialCounterpart(m Miner) Miner {
	switch v := m.(type) {
	case *Apriori:
		cp := *v
		cp.Workers = 0
		return &cp
	case *DHP:
		cp := *v
		cp.Workers = 0
		return &cp
	case *Partition:
		cp := *v
		cp.Workers = 0
		return &cp
	case *Eclat:
		cp := *v
		cp.Workers = 0
		// The serial reference for Eclat is the tid-list layout — the
		// bitset layout must reproduce it exactly too.
		if cp.Layout == LayoutAuto {
			cp.Layout = LayoutTIDList
		}
		return &cp
	case *FPGrowth:
		cp := *v
		cp.Workers = 0
		return &cp
	}
	return m
}

// TestParallelMinersMatchSerialProperty checks that every parallel miner
// configuration returns byte-identical Result levels (and pass stats) to
// its serial counterpart on random databases, for workers 1, 2 and 8.
func TestParallelMinersMatchSerialProperty(t *testing.T) {
	f := func(seed int64, minRaw uint8) bool {
		db := randomDB(seed)
		minSup := 0.1 + float64(minRaw%60)/100.0
		for _, workers := range []int{1, 2, 8} {
			for _, m := range parallelVariants(workers) {
				want, err := serialCounterpart(m).Mine(db, minSup)
				if err != nil {
					t.Logf("serial %s: %v", m.Name(), err)
					return false
				}
				got, err := m.Mine(db, minSup)
				if err != nil {
					t.Logf("%s workers=%d: %v", m.Name(), workers, err)
					return false
				}
				if !reflect.DeepEqual(got.Levels, want.Levels) {
					t.Logf("%s workers=%d: levels diverge (seed %d minSup %v)\n got %v\nwant %v",
						m.Name(), workers, seed, minSup, got.Levels, want.Levels)
					return false
				}
				if !reflect.DeepEqual(got.Passes, want.Passes) {
					t.Logf("%s workers=%d: pass stats diverge (seed %d)\n got %v\nwant %v",
						m.Name(), workers, seed, got.Passes, want.Passes)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestParallelMinersMatchSerialSynthetic runs the same equivalence check
// once on a Quest-generator workload large enough to exercise multi-level
// passes, leaf splits and all shard boundaries.
func TestParallelMinersMatchSerialSynthetic(t *testing.T) {
	if testing.Short() {
		t.Skip("synthetic workload")
	}
	db, err := synth.Baskets(synth.TxI(10, 4, 800, 94))
	if err != nil {
		t.Fatal(err)
	}
	const minSup = 0.01
	for _, workers := range []int{1, 2, 8} {
		for _, m := range parallelVariants(workers) {
			want, err := serialCounterpart(m).Mine(db, minSup)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.Mine(db, minSup)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", m.Name(), workers, err)
			}
			if !reflect.DeepEqual(got.Levels, want.Levels) {
				t.Errorf("%s workers=%d: levels diverge from serial", m.Name(), workers)
			}
		}
	}
}

// TestEclatLayoutsAgree pins the density dispatch: forced bitset and
// forced tid-list runs must agree with each other and with auto.
func TestEclatLayoutsAgree(t *testing.T) {
	db := randomDB(42)
	want, err := (&Eclat{Layout: LayoutTIDList}).Mine(db, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []*Eclat{
		{},
		{Layout: LayoutBitset},
		{DensityCutoff: 1e-9}, // forces auto to pick bitsets
		{DensityCutoff: 2},    // forces auto to keep tid-lists
	} {
		got, err := e.Mine(db, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Levels, want.Levels) {
			t.Errorf("Eclat %+v: levels diverge from tid-list layout", e)
		}
	}
}

// TestSetWorkers pins the WorkerSetter wiring the CLIs rely on.
func TestSetWorkers(t *testing.T) {
	miners := []Miner{&Apriori{}, &DHP{}, &Partition{}, &Eclat{}}
	for _, m := range miners {
		ws, ok := m.(WorkerSetter)
		if !ok {
			t.Fatalf("%s does not implement WorkerSetter", m.Name())
		}
		ws.SetWorkers(4)
	}
	if (&Apriori{}).Workers != 0 {
		t.Fatal("zero value changed")
	}
	a := &Apriori{}
	a.SetWorkers(8)
	if a.Workers != 8 {
		t.Fatalf("SetWorkers: Workers = %d", a.Workers)
	}
}
