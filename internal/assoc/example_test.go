package assoc_test

import (
	"fmt"

	"repro/internal/assoc"
	"repro/internal/transactions"
)

// ExampleApriori mines a toy basket database and prints every frequent
// itemset with its absolute support.
func ExampleApriori() {
	db := transactions.NewDB()
	for _, basket := range [][]int{{1, 2, 3}, {1, 2}, {2, 3}, {1, 2, 3}} {
		if err := db.Add(basket...); err != nil {
			panic(err)
		}
	}
	res, err := (&assoc.Apriori{}).Mine(db, 0.5)
	if err != nil {
		panic(err)
	}
	for _, ic := range res.All() {
		fmt.Println(ic.Items, ic.Count)
	}
	// Output:
	// {1} 3
	// {2} 4
	// {3} 3
	// {1, 2} 3
	// {1, 3} 2
	// {2, 3} 3
	// {1, 2, 3} 2
}

// ExampleIncremental shows the mine → maintain lifecycle: an initial full
// mine over a sharded store builds per-shard count caches, and a later
// update is folded in by re-counting only dirty shards — with a result
// byte-identical to re-mining from scratch.
func ExampleIncremental() {
	store := transactions.NewShardedDB(64)
	for _, basket := range [][]int{{1, 2, 3}, {1, 2}, {2, 3}, {1, 2, 3}, {2}, {1, 2}} {
		if err := store.Append(basket...); err != nil {
			panic(err)
		}
	}
	inc := &assoc.Incremental{}
	res, _, err := inc.Attach(store, 0.5)
	if err != nil {
		panic(err)
	}
	fmt.Println("mined:", res.NumFrequent(), "frequent itemsets")

	// The store takes appends and deletes; Maintain brings the result up
	// to date, re-counting only the shards the update touched.
	if err := store.Append(1, 2); err != nil {
		panic(err)
	}
	res, stats, err := inc.Maintain()
	if err != nil {
		panic(err)
	}
	fmt.Println("maintained:", res.NumFrequent(), "frequent itemsets, full re-mine:", stats.FullRun)
	if sup, ok := res.Support(transactions.NewItemset(1, 2)); ok {
		fmt.Println("{1, 2} support", sup)
	}
	// Output:
	// mined: 5 frequent itemsets
	// maintained: 3 frequent itemsets, full re-mine: false
	// {1, 2} support 5
}
