package assoc

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/transactions"
)

// Partition is the two-scan algorithm of Savasere, Omiecinski & Navathe
// (VLDB'95): the database is split into memory-sized partitions; each
// partition is mined completely with a local minimum support using vertical
// tid-list intersections; the union of local frequent itemsets is the
// global candidate set (any globally frequent itemset must be locally
// frequent in at least one partition); a second scan counts the global
// support of every candidate.
type Partition struct {
	// NumPartitions is the number of chunks; zero or one degenerates to a
	// single partition (still a correct, two-scan run).
	NumPartitions int
	// Workers bounds how many partitions are mined concurrently in phase 1
	// and distributes the phase-2 global counting scan; <= 1 runs serially
	// with identical results.
	Workers int
	// LocalMiner overrides the phase-1 per-partition miner; nil keeps the
	// paper's vertical tid-list method. Any of the package's miners works
	// (they find identical local frequent sets); FPGrowth is the
	// pattern-growth option for low local supports. With Workers > 1 the
	// same LocalMiner value mines partitions concurrently, so it must be
	// safe for concurrent Mine calls — every miner in this package is.
	LocalMiner Miner

	hook PassHook
}

// SetWorkers implements WorkerSetter.
func (p *Partition) SetWorkers(n int) { p.Workers = n }

// SetPassHook implements PassObserver. Passes are emitted by the phase-2
// global count, one per candidate length; every emitted level is final.
func (p *Partition) SetPassHook(h PassHook) { p.hook = h }

// Name implements Miner.
func (p *Partition) Name() string {
	if p.NumPartitions > 1 {
		return fmt.Sprintf("Partition(%d)", p.NumPartitions)
	}
	return "Partition"
}

// Mine implements Miner.
func (p *Partition) Mine(db *transactions.DB, minSupport float64) (*Result, error) {
	return p.MineContext(context.Background(), db, minSupport)
}

// MineContext implements ContextMiner.
func (p *Partition) MineContext(ctx context.Context, db *transactions.DB, minSupport float64) (*Result, error) {
	minCount, err := checkInput(db, minSupport)
	if err != nil {
		return emptyResult(), err
	}
	n := p.NumPartitions
	if n < 1 {
		n = 1
	}
	parts := db.Partition(n)

	// Phase 1: local frequent itemsets per partition, via tidlists. The
	// local minimum support is ceil(rel * partition size), matching the
	// paper's guarantee that a globally frequent itemset is locally
	// frequent somewhere. Partitions are independent, so with Workers > 1
	// they are mined concurrently (bounded by a semaphore) and their local
	// results merged in partition order.
	mineLocal := func(part *transactions.DB) ([]transactions.Itemset, error) {
		if p.LocalMiner == nil {
			return mineVertical(ctx, part, part.AbsoluteSupport(minSupport))
		}
		res, err := MineContext(ctx, p.LocalMiner, part, minSupport)
		if err != nil {
			return nil, err
		}
		out := make([]transactions.Itemset, 0, res.NumFrequent())
		for _, ic := range res.All() {
			out = append(out, ic.Items)
		}
		return out, nil
	}
	local := make([][]transactions.Itemset, len(parts))
	errs := make([]error, len(parts))
	if p.Workers > 1 {
		sem := make(chan struct{}, p.Workers)
		var wg sync.WaitGroup
		for i, part := range parts {
			wg.Add(1)
			go func(i int, part *transactions.DB) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				local[i], errs[i] = mineLocal(part)
			}(i, part)
		}
		wg.Wait()
	} else {
		for i, part := range parts {
			local[i], errs[i] = mineLocal(part)
		}
	}
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	candidateKeys := make(map[string]transactions.Itemset)
	for _, sets := range local {
		for _, is := range sets {
			if _, ok := candidateKeys[is.Key()]; !ok {
				candidateKeys[is.Key()] = is
			}
		}
	}
	return p.countGlobal(ctx, db, candidateKeys, minCount)
}

// countGlobal is phase 2: count every candidate against the full database
// and assemble a Result.
func (p *Partition) countGlobal(ctx context.Context, db *transactions.DB, candidateKeys map[string]transactions.Itemset, minCount int) (*Result, error) {
	res := &Result{MinCount: minCount, NumTx: db.Len()}
	byLen := make(map[int][]transactions.Itemset)
	for _, is := range candidateKeys {
		byLen[len(is)] = append(byLen[len(is)], is)
	}
	lens := make([]int, 0, len(byLen))
	for l := range byLen {
		lens = append(lens, l)
	}
	sort.Ints(lens)
	for _, l := range lens {
		cands := byLen[l]
		counted, err := countWithMapWorkers(ctx, db, cands, l, p.Workers)
		if err != nil {
			return nil, err
		}
		var level []ItemsetCount
		for _, ic := range counted {
			if ic.Count >= minCount {
				level = append(level, ic)
			}
		}
		sortLevel(level)
		res.addPass(p.hook, PassStat{K: l, Candidates: len(cands), Frequent: len(level)}, level)
		if len(level) > 0 {
			for len(res.Levels) < l {
				res.Levels = append(res.Levels, nil)
			}
			res.Levels[l-1] = level
		}
	}
	// Trim trailing empty levels (possible when long local candidates were
	// globally infrequent).
	for len(res.Levels) > 0 && len(res.Levels[len(res.Levels)-1]) == 0 {
		res.Levels = res.Levels[:len(res.Levels)-1]
	}
	return res, nil
}

// mineVertical finds all locally frequent itemsets of a partition with the
// paper's tidlist method: L1 from the inverted index, then level-wise
// candidate generation where each candidate's tidlist is the intersection
// of its generators' tidlists. ctx is polled once per level.
//
// The allocation sites below are inherent to the tidlist method — every
// surviving candidate materializes a new itemset and tidlist — and they
// dominate Partition's allocation profile (the ROADMAP's 76 MB / 1.4 M
// allocs per run). They are suppressed individually so allocbound keeps
// flagging any *new* allocation introduced here.
//
//invcheck:hotpath
func mineVertical(ctx context.Context, db *transactions.DB, minCount int) ([]transactions.Itemset, error) {
	vert := db.ToVertical()
	type node struct {
		items transactions.Itemset
		tids  []int
	}
	var level []node
	items := make([]int, 0, len(vert.TIDLists))
	for item := range vert.TIDLists {
		items = append(items, item)
	}
	sort.Ints(items)
	for _, item := range items {
		if tids := vert.TIDLists[item]; len(tids) >= minCount {
			//lint:ignore invcheck/allocbound L1 seeding runs once per partition, not per transaction; each frequent item needs its own singleton itemset
			level = append(level, node{items: transactions.Itemset{item}, tids: tids})
		}
	}
	var out []transactions.Itemset
	for len(level) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, nd := range level {
			//lint:ignore invcheck/allocbound result accumulation: the final size is unknown until mining finishes, and growth amortizes across levels
			out = append(out, nd.items)
		}
		// Join nodes sharing a (k-1)-prefix; intersect tidlists.
		var next []node
		for i := 0; i < len(level); i++ {
			if i%ctxStride == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			for j := i + 1; j < len(level); j++ {
				a, b := level[i], level[j]
				if !samePrefix(a.items, b.items, len(a.items)-1) {
					break
				}
				tids := transactions.IntersectSorted(a.tids, b.tids)
				if len(tids) < minCount {
					continue
				}
				cand := make(transactions.Itemset, len(a.items)+1)
				copy(cand, a.items)
				cand[len(a.items)] = b.items[len(b.items)-1]
				//lint:ignore invcheck/allocbound each surviving candidate is a distinct itemset that outlives the level; the tidlist method has no reusable scratch here
				next = append(next, node{items: cand, tids: tids})
			}
		}
		level = next
	}
	return out, nil
}
