package assoc

import (
	"context"
	"sort"

	"repro/internal/hashtree"
	"repro/internal/transactions"
)

// CountStrategy selects the candidate-counting data structure used by
// Apriori. The hash tree is the paper's structure; the map counter is a
// simpler alternative kept for the ablation benchmarks.
type CountStrategy int

const (
	// CountHashTree counts candidates with the VLDB'94 hash tree.
	CountHashTree CountStrategy = iota
	// CountMap counts candidates by enumerating each transaction's
	// k-subsets into a hash map. Exponential in transaction size for
	// large k, but cheap for small candidate sets.
	CountMap
)

// Apriori is the level-wise miner of Agrawal & Srikant (VLDB'94).
type Apriori struct {
	// Strategy selects the counting structure; zero value is the paper's
	// hash tree.
	Strategy CountStrategy
	// Fanout and MaxLeaf override the hash-tree parameters when positive.
	Fanout  int
	MaxLeaf int
	// Workers distributes every counting scan across this many goroutines
	// (count distribution: private per-worker counters over contiguous
	// database shards, merged after the pass). Values <= 1 run serially;
	// results are identical either way.
	Workers int

	hook PassHook
}

// Name implements Miner.
func (a *Apriori) Name() string { return "Apriori" }

// SetWorkers implements WorkerSetter.
func (a *Apriori) SetWorkers(n int) { a.Workers = n }

// SetPassHook implements PassObserver. Every emitted level is final.
func (a *Apriori) SetPassHook(h PassHook) { a.hook = h }

// Mine implements Miner.
func (a *Apriori) Mine(db *transactions.DB, minSupport float64) (*Result, error) {
	return a.MineContext(context.Background(), db, minSupport)
}

// MineContext implements ContextMiner.
func (a *Apriori) MineContext(ctx context.Context, db *transactions.DB, minSupport float64) (*Result, error) {
	minCount, err := checkInput(db, minSupport)
	if err != nil {
		return emptyResult(), err
	}
	res := &Result{MinCount: minCount, NumTx: db.Len()}

	level, err := frequentOneWorkers(ctx, db, minCount, a.Workers)
	if err != nil {
		return nil, err
	}
	res.addPass(a.hook, PassStat{K: 1, Candidates: db.NumItems(), Frequent: len(level)}, level)
	for k := 2; len(level) > 0; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Levels = append(res.Levels, level)
		if k == 2 && a.Strategy == CountHashTree {
			// Pass-2 special case from the paper: C2 is the full join of
			// L1, so candidates are counted in a triangular array indexed
			// by L1 rank — no tree needed.
			nCands := len(level) * (len(level) - 1) / 2
			level, err = countPairsTriangular(ctx, db, level, minCount, a.Workers)
			if err != nil {
				return nil, err
			}
			res.addPass(a.hook, PassStat{K: 2, Candidates: nCands, Frequent: len(level)}, level)
			continue
		}
		cands := aprioriGen(itemsetsOf(level))
		if len(cands) == 0 {
			break
		}
		var counted []ItemsetCount
		if a.Strategy == CountMap {
			counted, err = countWithMapWorkers(ctx, db, cands, k, a.Workers)
		} else {
			counted, err = a.countWithHashTree(ctx, db, cands, k)
		}
		if err != nil {
			return nil, err
		}
		level = level[:0:0]
		for _, ic := range counted {
			if ic.Count >= minCount {
				level = append(level, ic)
			}
		}
		sortLevel(level)
		res.addPass(a.hook, PassStat{K: k, Candidates: len(cands), Frequent: len(level)}, level)
	}
	return res, nil
}

// countPairsTriangular counts every pair of frequent items with a
// triangular array over L1 ranks — the VLDB'94 second-pass optimisation.
// l1 is sorted by item id, so emitted pairs are already lexicographic.
// The scan is distributed across workers (each merges into a private
// triangle) when workers > 1.
func countPairsTriangular(ctx context.Context, db *transactions.DB, l1 []ItemsetCount, minCount, workers int) ([]ItemsetCount, error) {
	n := len(l1)
	if n < 2 {
		return nil, ctx.Err()
	}
	counts, err := countTriangle(ctx, db, l1Ranks(l1, db.NumItems()), n, workers)
	if err != nil {
		return nil, err
	}
	return thresholdTriangle(l1, counts, minCount), nil
}

// l1Ranks builds the item-id -> L1-rank map of the triangular pass-2 scan
// (-1 marks infrequent items). l1 is in item order, as frequentOne emits.
func l1Ranks(l1 []ItemsetCount, numItems int) []int {
	rank := make([]int, numItems)
	for i := range rank {
		rank[i] = -1
	}
	for r, ic := range l1 {
		rank[ic.Items[0]] = r
	}
	return rank
}

// thresholdTriangle filters a merged triangular pair-count array to the
// frequent pairs, emitted in lexicographic order. It is shared by the
// local and the distributed pass-2 paths, so thresholding cannot diverge
// between them.
func thresholdTriangle(l1 []ItemsetCount, counts []int, minCount int) []ItemsetCount {
	n := len(l1)
	tri := func(i, j int) int { return i*(2*n-i-1)/2 + (j - i - 1) }
	var out []ItemsetCount
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if c := counts[tri(i, j)]; c >= minCount {
				out = append(out, ItemsetCount{
					Items: transactions.Itemset{l1[i].Items[0], l1[j].Items[0]},
					Count: c,
				})
			}
		}
	}
	return out
}

func (a *Apriori) countWithHashTree(ctx context.Context, db *transactions.DB, cands []transactions.Itemset, k int) ([]ItemsetCount, error) {
	maxLeaf := hashtree.DefaultMaxLeaf
	if a.MaxLeaf > 0 {
		maxLeaf = a.MaxLeaf
	}
	fanout := a.Fanout
	if fanout <= 0 {
		// Size the fanout so that a depth-k tree can hold the candidates
		// within the leaf capacity: leaves at depth k cannot split further,
		// so a fixed small fanout degenerates for the huge C2 of pass 2.
		fanout = adaptiveFanout(len(cands), k, maxLeaf)
	}
	tree, err := hashtree.NewWithParams(k, fanout, maxLeaf)
	if err != nil {
		return nil, err
	}
	for _, c := range cands {
		if _, err := tree.Insert(c); err != nil {
			return nil, err
		}
	}
	if err := countTree(ctx, db, tree, a.Workers); err != nil {
		return nil, err
	}
	entries := tree.EntriesByID()
	out := make([]ItemsetCount, len(entries))
	for i, e := range entries {
		out[i] = ItemsetCount{Items: e.Items, Count: e.Count}
	}
	return out, nil
}

// countWithMap counts candidates by direct subset checks against an index
// of candidate keys. To avoid enumerating all k-subsets of long
// transactions it checks each candidate against each transaction when the
// candidate set is small, and otherwise enumerates transaction subsets.
func countWithMap(ctx context.Context, db *transactions.DB, cands []transactions.Itemset, k int) ([]ItemsetCount, error) {
	return countWithMapWorkers(ctx, db, cands, k, 1)
}

// countWithMapWorkers is countWithMap with the scan distributed across
// workers via per-worker count arrays indexed by candidate rank.
func countWithMapWorkers(ctx context.Context, db *transactions.DB, cands []transactions.Itemset, k, workers int) ([]ItemsetCount, error) {
	counts, err := countCandidatesDirect(ctx, db, cands, k, workers)
	if err != nil {
		return nil, err
	}
	out := make([]ItemsetCount, len(cands))
	for i, c := range cands {
		out[i] = ItemsetCount{Items: c, Count: counts[i]}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Items.Compare(out[j].Items) < 0 })
	return out, nil
}

// adaptiveFanout returns the smallest power of two f with f^k ≥
// nCands/maxLeaf, clamped to [16, 4096].
func adaptiveFanout(nCands, k, maxLeaf int) int {
	cells := nCands/maxLeaf + 1
	f := 16
	for f < 4096 {
		// f^k >= cells?
		prod := 1
		ok := false
		for i := 0; i < k; i++ {
			prod *= f
			if prod >= cells {
				ok = true
				break
			}
		}
		if ok {
			break
		}
		f *= 2
	}
	return f
}

// choose returns C(n, k) saturating at a large bound to avoid overflow.
func choose(n, k int) int {
	if k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
		if c > 1<<30 {
			return 1 << 30
		}
	}
	return c
}

// forEachSubset calls fn for every k-subset of sorted set s. The callback
// receives a shared buffer; it must not retain it.
func forEachSubset(s transactions.Itemset, k int, fn func(transactions.Itemset)) {
	buf := make(transactions.Itemset, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			fn(buf)
			return
		}
		for i := start; i <= len(s)-(k-depth); i++ {
			buf[depth] = s[i]
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}
