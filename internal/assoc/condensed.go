package assoc

// Condensed representations of the frequent-itemset result: maximal
// itemsets (no frequent superset) and closed itemsets (no superset with
// equal support). Both were folklore by the survey's era and are the
// standard way to summarise a large result set.

// MaximalItemsets returns the frequent itemsets with no frequent superset,
// in level order. By anti-monotonicity it suffices to check supersets one
// item larger: any larger frequent superset implies a frequent
// (k+1)-superset.
func (r *Result) MaximalItemsets() []ItemsetCount {
	var out []ItemsetCount
	for k := 0; k < len(r.Levels); k++ {
		for _, ic := range r.Levels[k] {
			maximal := true
			if k+1 < len(r.Levels) {
				for _, sup := range r.Levels[k+1] {
					if sup.Items.ContainsAll(ic.Items) {
						maximal = false
						break
					}
				}
			}
			if maximal {
				out = append(out, ic)
			}
		}
	}
	return out
}

// ClosedItemsets returns the frequent itemsets with no superset of equal
// support, in level order. The same one-level-up argument applies: if a
// larger superset has equal support, so does the intermediate
// (k+1)-superset (support is monotone non-increasing along the chain).
func (r *Result) ClosedItemsets() []ItemsetCount {
	var out []ItemsetCount
	for k := 0; k < len(r.Levels); k++ {
		for _, ic := range r.Levels[k] {
			closed := true
			if k+1 < len(r.Levels) {
				for _, sup := range r.Levels[k+1] {
					if sup.Count == ic.Count && sup.Items.ContainsAll(ic.Items) {
						closed = false
						break
					}
				}
			}
			if closed {
				out = append(out, ic)
			}
		}
	}
	return out
}
