package assoc

import (
	"context"
	"sort"

	"repro/internal/transactions"
)

// AIS is the original association miner of Agrawal, Imielinski & Swami
// (SIGMOD'93), in its basic frontier form: candidates are generated on the
// fly while scanning, by extending each frequent (k-1)-itemset found in a
// transaction with every later item of that transaction. Because
// candidates are created per transaction rather than once per pass, AIS
// counts many candidates that Apriori's join/prune step would never
// generate — the inefficiency the VLDB'94 evaluation quantifies.
//
// The paper's memory-management refinements (candidate estimation and
// pruning functions) are omitted; they reduce constants but do not change
// the asymptotic picture the EXP-A1 benchmark reproduces.
type AIS struct {
	hook PassHook
}

// Name implements Miner.
func (a *AIS) Name() string { return "AIS" }

// SetPassHook implements PassObserver. Every emitted level is final.
func (a *AIS) SetPassHook(h PassHook) { a.hook = h }

// Mine implements Miner.
func (a *AIS) Mine(db *transactions.DB, minSupport float64) (*Result, error) {
	return a.MineContext(context.Background(), db, minSupport)
}

// MineContext implements ContextMiner.
func (a *AIS) MineContext(ctx context.Context, db *transactions.DB, minSupport float64) (*Result, error) {
	minCount, err := checkInput(db, minSupport)
	if err != nil {
		return emptyResult(), err
	}
	res := &Result{MinCount: minCount, NumTx: db.Len()}

	level, err := frequentOne(ctx, db, minCount)
	if err != nil {
		return nil, err
	}
	res.addPass(a.hook, PassStat{K: 1, Candidates: db.NumItems(), Frequent: len(level)}, level)
	for k := 2; len(level) > 0; k++ {
		res.Levels = append(res.Levels, level)
		counts := make(map[string]int)
		// One scan: extend every frequent (k-1)-itemset contained in the
		// transaction by each transaction item greater than its maximum.
		frontier := itemsetsOf(level)
		for tid, tx := range db.Transactions {
			if tid%ctxStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if len(tx) < k {
				continue
			}
			for _, l := range frontier {
				if !tx.ContainsAll(l) {
					continue
				}
				maxItem := l[len(l)-1]
				// Items of tx after maxItem extend l.
				start := sort.SearchInts(tx, maxItem+1)
				for _, item := range tx[start:] {
					ext := make(transactions.Itemset, len(l)+1)
					copy(ext, l)
					ext[len(l)] = item
					counts[ext.Key()]++
				}
			}
		}
		level = nil
		for key, c := range counts {
			if c >= minCount {
				level = append(level, ItemsetCount{Items: parseKey(key), Count: c})
			}
		}
		sortLevel(level)
		res.addPass(a.hook, PassStat{K: k, Candidates: len(counts), Frequent: len(level)}, level)
	}
	return res, nil
}

// parseKey reverses Itemset.Key. Keys are produced internally, so malformed
// input cannot occur.
func parseKey(key string) transactions.Itemset {
	var out transactions.Itemset
	v := 0
	has := false
	for i := 0; i < len(key); i++ {
		if key[i] == ',' {
			out = append(out, v)
			v = 0
			has = false
			continue
		}
		v = v*10 + int(key[i]-'0')
		has = true
	}
	if has {
		out = append(out, v)
	}
	return out
}
