package assoc

import (
	"testing"

	"repro/internal/synth"
	"repro/internal/transactions"
)

func TestMaximalItemsetsPaperExample(t *testing.T) {
	res := minedPaper(t)
	maximal := res.MaximalItemsets()
	keys := map[string]bool{}
	for _, ic := range maximal {
		keys[ic.Items.Key()] = true
	}
	// Frequent sets: 1,2,3,5, 13,23,25,35, 235.
	// Maximal: {1,3} and {2,3,5}.
	if len(maximal) != 2 || !keys["1,3"] || !keys["2,3,5"] {
		t.Errorf("maximal = %v", keys)
	}
}

func TestClosedItemsetsPaperExample(t *testing.T) {
	res := minedPaper(t)
	closed := res.ClosedItemsets()
	keys := map[string]bool{}
	for _, ic := range closed {
		keys[ic.Items.Key()] = true
	}
	// {1} (sup 2) is not closed: {1,3} has sup 2. {2} (3) -> {2,5} sup 3:
	// not closed. {5} (3) -> {2,5} sup 3: not closed. {3} (3): supersets
	// 13(2) 23(2) 35(2) all smaller -> closed. {2,5} (3) closed.
	// {1,3}(2): superset? none frequent -> closed. {2,3}(2) -> {2,3,5}(2):
	// not closed. {3,5}(2) -> 235(2): not closed. {2,3,5}(2) closed.
	want := map[string]bool{"3": true, "2,5": true, "1,3": true, "2,3,5": true}
	if len(keys) != len(want) {
		t.Fatalf("closed = %v, want %v", keys, want)
	}
	for k := range want {
		if !keys[k] {
			t.Errorf("missing closed itemset %s", k)
		}
	}
}

func TestCondensedInvariants(t *testing.T) {
	db, err := synth.Baskets(synth.TxI(8, 3, 400, 71))
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Apriori{}).Mine(db, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	maximal := res.MaximalItemsets()
	closed := res.ClosedItemsets()
	// Maximal ⊆ closed ⊆ frequent.
	closedKeys := map[string]bool{}
	for _, ic := range closed {
		closedKeys[ic.Items.Key()] = true
	}
	for _, ic := range maximal {
		if !closedKeys[ic.Items.Key()] {
			t.Errorf("maximal itemset %v not closed", ic.Items)
		}
	}
	if len(maximal) > len(closed) || len(closed) > res.NumFrequent() {
		t.Errorf("sizes: maximal %d, closed %d, frequent %d",
			len(maximal), len(closed), res.NumFrequent())
	}
	// Every frequent itemset is a subset of some maximal itemset.
	for _, ic := range res.All() {
		found := false
		for _, m := range maximal {
			if m.Items.ContainsAll(ic.Items) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("frequent %v not covered by any maximal itemset", ic.Items)
		}
	}
	// Closedness verified against the database directly.
	for _, ic := range closed {
		for item := 0; item < db.NumItems(); item++ {
			if ic.Items.Contains(item) {
				continue
			}
			super := ic.Items.Union(transactions.Itemset{item})
			if db.Support(super) == ic.Count {
				t.Fatalf("%v (sup %d) is not closed: %v has equal support", ic.Items, ic.Count, super)
			}
		}
	}
}
