package assoc

import (
	"bytes"
	"testing"

	"repro/internal/synth"
	"repro/internal/transactions"
)

func level(sets ...transactions.Itemset) []ItemsetCount {
	out := make([]ItemsetCount, len(sets))
	for i, s := range sets {
		out[i] = ItemsetCount{Items: s, Count: 1}
	}
	return out
}

// TestNegativeBorder pins the shared border computation the Sampling
// verifier and the FUP-style incremental maintainer both build on.
func TestNegativeBorder(t *testing.T) {
	one := transactions.NewItemset
	// L1 = {1},{2},{3}; L2 = {1,2},{1,3}. The only pair join not frequent
	// is {2,3}; the triple {1,2,3} is pruned because its subset {2,3} is
	// not frequent — the border is exactly the minimal infrequent sets.
	levels := [][]ItemsetCount{
		level(one(1), one(2), one(3)),
		level(one(1, 2), one(1, 3)),
	}
	border := negativeBorder(levels)
	if len(border) != 1 || !border[0].Equal(one(2, 3)) {
		t.Fatalf("border = %v, want [{2, 3}]", border)
	}

	// With every pair frequent, the border moves up to the triple.
	levels = [][]ItemsetCount{
		level(one(1), one(2), one(3)),
		level(one(1, 2), one(1, 3), one(2, 3)),
	}
	border = negativeBorder(levels)
	if len(border) != 1 || !border[0].Equal(one(1, 2, 3)) {
		t.Fatalf("border = %v, want [{1, 2, 3}]", border)
	}

	// A frequent triple is not its own border: nothing joins beyond it.
	levels = append(levels, level(one(1, 2, 3)))
	if border = negativeBorder(levels); len(border) != 0 {
		t.Fatalf("border = %v, want empty", border)
	}

	if border = negativeBorder(nil); len(border) != 0 {
		t.Fatalf("border of no levels = %v, want empty", border)
	}
}

// TestSamplingMatchesApriori checks exactness across seeds: Toivonen's
// algorithm verifies the sampled candidates and their negative border
// against the full database and repairs misses, so the final result must
// equal a from-scratch Apriori run no matter how unlucky the sample was.
func TestSamplingMatchesApriori(t *testing.T) {
	cfg := synth.TxI(8, 3, 400, 21)
	cfg.NumItems = 50
	cfg.NumPatterns = 25
	db, err := synth.Baskets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&Apriori{}).Mine(db, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 6; seed++ {
		s := &Sampling{SampleFraction: 0.15, LowerFactor: 0.75, Seed: seed}
		got, err := s.Mine(db, 0.04)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bytes.Equal(got.Canonical(), want.Canonical()) {
			t.Fatalf("seed %d: Sampling diverged from Apriori", seed)
		}
	}
}

// TestSamplingDefaults: out-of-range knobs fall back to the documented
// defaults rather than breaking the run.
func TestSamplingDefaults(t *testing.T) {
	db := transactions.NewDB()
	for i := 0; i < 50; i++ {
		if err := db.Add(1, 2, 3); err != nil {
			t.Fatal(err)
		}
		if err := db.Add(1, 2); err != nil {
			t.Fatal(err)
		}
	}
	want, err := (&Apriori{}).Mine(db, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Sampling{
		{SampleFraction: -1, LowerFactor: -1, Seed: 3}, // both below range
		{SampleFraction: 2, LowerFactor: 2, Seed: 3},   // both above range
	} {
		got, err := s.Mine(db, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Canonical(), want.Canonical()) {
			t.Fatal("defaulted Sampling diverged from Apriori")
		}
	}
}

// TestSamplingErrors covers the shared input validation.
func TestSamplingErrors(t *testing.T) {
	s := &Sampling{}
	if _, err := s.Mine(transactions.NewDB(), 0.5); err == nil {
		t.Error("empty database should error")
	}
	db := transactions.NewDB()
	if err := db.Add(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Mine(db, 0); err == nil {
		t.Error("support 0 should error")
	}
	if _, err := s.Mine(db, 1.5); err == nil {
		t.Error("support > 1 should error")
	}
}
