package assoc

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/synth"
	"repro/internal/transactions"
)

// newDistributed builds a Distributed engine over a fresh in-process
// gob-encoding transport; the caller must Close it.
func newDistributed(engine string, workers int) *Distributed {
	return &Distributed{
		Transport: dist.NewLocalTransport(workers, true),
		Workers:   workers,
		Engine:    engine,
	}
}

// TestDistributedByteIdenticalProperty is the acceptance gate: on random
// databases, the distributed Apriori path is byte-identical to local
// Apriori and the distributed FPGrowth path to local FPGrowth, at workers
// 1, 2 and 4 over the in-process gob transport.
func TestDistributedByteIdenticalProperty(t *testing.T) {
	f := func(seed int64, minRaw uint8) bool {
		db := randomDB(seed)
		minSup := 0.1 + float64(minRaw%60)/100.0
		for _, workers := range []int{1, 2, 4} {
			for _, engine := range []string{DistEngineApriori, DistEngineFPGrowth} {
				var local Miner
				if engine == DistEngineApriori {
					local = &Apriori{}
				} else {
					local = &FPGrowth{}
				}
				want, err := local.Mine(db, minSup)
				if err != nil {
					t.Logf("local %s: %v", engine, err)
					return false
				}
				d := newDistributed(engine, workers)
				got, err := d.Mine(db, minSup)
				d.Close()
				if err != nil {
					t.Logf("distributed %s workers=%d: %v", engine, workers, err)
					return false
				}
				if string(got.Canonical()) != string(want.Canonical()) {
					t.Logf("distributed %s workers=%d diverges (seed %d minSup %v)\n got %s\nwant %s",
						engine, workers, seed, minSup, got.Canonical(), want.Canonical())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestDistributedSyntheticWorkload runs the equivalence once on a
// Quest-generator workload deep enough for multi-level passes and real
// hash-tree counting, at workers 4.
func TestDistributedSyntheticWorkload(t *testing.T) {
	db, err := synth.Baskets(synth.BasketConfig{
		NumTransactions: 400, AvgTxSize: 8, AvgPatternSize: 3,
		NumPatterns: 40, NumItems: 60,
		CorruptionMean: 0.4, CorruptionSD: 0.1, CorrelationMean: 0.5, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{DistEngineApriori, DistEngineFPGrowth} {
		want, err := (&Apriori{}).Mine(db, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		d := newDistributed(engine, 4)
		got, err := d.Mine(db, 0.02)
		d.Close()
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if string(got.Canonical()) != string(want.Canonical()) {
			t.Errorf("distributed %s diverges from Apriori on synthetic workload", engine)
		}
	}
}

// TestDistributedDefaultTransport checks the zero-value engine builds its
// own in-process transport and still matches the local reference.
func TestDistributedDefaultTransport(t *testing.T) {
	db := randomDB(99)
	want, err := (&Apriori{}).Mine(db, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	d := &Distributed{}
	defer d.Close()
	got, err := d.Mine(db, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Canonical()) != string(want.Canonical()) {
		t.Error("zero-value Distributed diverges from Apriori")
	}
	// Re-mining a plain DB opens a new epoch: everything re-ships, stale
	// replicas can never alias a different database.
	before := d.Coordinator().Stats().ShippedShards
	if _, err := d.Mine(db, 0.3); err != nil {
		t.Fatal(err)
	}
	if after := d.Coordinator().Stats().ShippedShards; after <= before {
		t.Errorf("plain re-mine shipped nothing (before %d, after %d)", before, after)
	}
}

// TestDistributedUnknownEngine pins the engine-name validation.
func TestDistributedUnknownEngine(t *testing.T) {
	d := newDistributed("Eclat", 1)
	defer d.Close()
	if _, err := d.Mine(randomDB(3), 0.5); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestDistributedStoreReshipsOnlyDirtyShards is the incremental acceptance
// check: with a bound store, a full re-mine after one Append re-ships
// exactly the shards the mutation dirtied, not the whole database.
func TestDistributedStoreReshipsOnlyDirtyShards(t *testing.T) {
	store := transactions.NewShardedDB(64)
	for i := 0; i < 300; i++ {
		if err := store.Append(i%7, 7+i%5, 12+i%3); err != nil {
			t.Fatal(err)
		}
	}
	d := newDistributed(DistEngineApriori, 2)
	defer d.Close()
	d.BindStore(store)

	mineStore := func() *Result {
		t.Helper()
		res, err := d.Mine(store.Snapshot(), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	mineStore()
	shipped := d.Coordinator().Stats().ShippedShards
	if shipped != store.NumShards() {
		t.Fatalf("initial mine shipped %d shards, want %d", shipped, store.NumShards())
	}

	// Clean re-mine: nothing moves.
	mineStore()
	if got := d.Coordinator().Stats().ShippedShards; got != shipped {
		t.Fatalf("clean re-mine shipped %d more shards", got-shipped)
	}

	// One append dirties exactly the tail shard; one delete in shard 0
	// dirties exactly shard 0. Each re-mine moves only those.
	if err := store.Append(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	mineStore()
	if got := d.Coordinator().Stats().ShippedShards; got != shipped+1 {
		t.Fatalf("append re-mine shipped %d shards, want 1", got-shipped)
	}
	shipped = d.Coordinator().Stats().ShippedShards
	if _, err := store.DeleteAt(0); err != nil {
		t.Fatal(err)
	}
	mineStore()
	if got := d.Coordinator().Stats().ShippedShards; got != shipped+1 {
		t.Fatalf("delete re-mine shipped %d shards, want 1", got-shipped)
	}

	// The store-backed result still matches a local from-scratch run.
	want, err := (&Apriori{}).Mine(store.Snapshot(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if string(mineStore().Canonical()) != string(want.Canonical()) {
		t.Error("store-backed distributed mine diverges from local Apriori")
	}
}

// TestIncrementalWithDistributedBase drives the maintainer with a
// Distributed base through appends and deletes: every maintained result is
// byte-identical to a from-scratch run, and the full re-mines triggered by
// border crossings re-ship only dirty shards (Attach binds the store).
func TestIncrementalWithDistributedBase(t *testing.T) {
	store := transactions.NewShardedDB(64)
	for i := 0; i < 256; i++ {
		if err := store.Append(i%6, 6+i%4, 10+i%2); err != nil {
			t.Fatal(err)
		}
	}
	d := newDistributed(DistEngineApriori, 2)
	defer d.Close()
	inc := &Incremental{Base: d}
	res, _, err := inc.Attach(store, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	afterAttach := d.Coordinator().Stats().ShippedShards
	if afterAttach != store.NumShards() {
		t.Fatalf("attach shipped %d shards, want %d", afterAttach, store.NumShards())
	}
	verify := func() {
		t.Helper()
		want, err := (&Apriori{}).Mine(store.Snapshot(), 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if string(res.Canonical()) != string(want.Canonical()) {
			t.Fatal("maintained result diverges from from-scratch run")
		}
	}
	verify()

	// A burst of appends introducing a brand-new frequent item crosses the
	// negative border, forcing a full re-mine through the distributed
	// base. Only the dirtied tail shards may travel.
	for i := 0; i < 40; i++ {
		if err := store.Append(50, 51); err != nil {
			t.Fatal(err)
		}
	}
	res, stats, err := inc.Maintain()
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FullRun {
		t.Fatalf("expected border-crossing full run, got %+v", stats)
	}
	verify()
	reshipped := d.Coordinator().Stats().ShippedShards - afterAttach
	// 40 appends into shardCap-64 shards touch at most two tail shards
	// (the partially filled one plus a new one); every other shard must
	// have been served from the workers' cached replicas.
	if reshipped < 1 || reshipped > 2 {
		t.Errorf("full re-mine re-shipped %d shards, want 1-2 (dirty tail only, %d total)",
			reshipped, store.NumShards())
	}

	// A delete in the first shard plus maintenance: if a full run happens
	// it may only re-ship that shard (and any shard the delete dirtied).
	before := d.Coordinator().Stats().ShippedShards
	if _, err := store.DeleteAt(1); err != nil {
		t.Fatal(err)
	}
	res, _, err = inc.Maintain()
	if err != nil {
		t.Fatal(err)
	}
	verify()
	if got := d.Coordinator().Stats().ShippedShards - before; got > 1 {
		t.Errorf("post-delete maintenance re-shipped %d shards, want <= 1", got)
	}
}

// TestDistributedStaleSnapshotTakesPlainPath pins the store-match
// identity walk: a snapshot taken before mutations that happen to leave
// the store at the same length must NOT be treated as the store — the
// engine mines the snapshot it was given (via the plain path), not the
// store's current contents.
func TestDistributedStaleSnapshotTakesPlainPath(t *testing.T) {
	store := transactions.NewShardedDB(64)
	for i := 0; i < 100; i++ {
		if err := store.Append(i%5, 5+i%3); err != nil {
			t.Fatal(err)
		}
	}
	d := newDistributed(DistEngineApriori, 2)
	defer d.Close()
	d.BindStore(store)

	snap := store.Snapshot()
	// One delete plus one append keeps the length equal while changing
	// the contents.
	if _, err := store.DeleteAt(0); err != nil {
		t.Fatal(err)
	}
	if err := store.Append(40, 41); err != nil {
		t.Fatal(err)
	}
	if store.Len() != snap.Len() {
		t.Fatalf("setup broken: store %d vs snap %d", store.Len(), snap.Len())
	}
	got, err := d.Mine(snap, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&Apriori{}).Mine(snap, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Canonical()) != string(want.Canonical()) {
		t.Error("stale snapshot mined as the store's current contents")
	}
	// A fresh snapshot passes the identity walk again (store path).
	fresh, err := d.Mine(store.Snapshot(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	wantFresh, err := (&Apriori{}).Mine(store.Snapshot(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if string(fresh.Canonical()) != string(wantFresh.Canonical()) {
		t.Error("fresh snapshot diverges after plain-path interlude")
	}
}

// TestDistributedDegenerateInputs checks Distributed obeys the uniform
// degenerate contract like every local engine (the cross-engine table test
// covers the rest).
func TestDistributedDegenerateInputs(t *testing.T) {
	d := newDistributed(DistEngineApriori, 1)
	defer d.Close()
	res, err := d.Mine(transactions.NewDB(), 0.5)
	if !errors.Is(err, ErrEmptyDB) {
		t.Fatalf("empty db err = %v", err)
	}
	if res == nil || res.NumFrequent() != 0 {
		t.Fatalf("empty db result = %+v, want canonical empty", res)
	}
	res, err = d.Mine(randomDB(1), 0)
	if !errors.Is(err, ErrBadSupport) {
		t.Fatalf("minsup 0 err = %v", err)
	}
	if res == nil || len(res.Canonical()) != 0 {
		t.Fatalf("minsup 0 result = %+v, want canonical empty", res)
	}
}
