package assoc

import (
	"context"

	"repro/internal/transactions"
)

// AprioriTid is the second VLDB'94 algorithm: after the first pass it never
// rescans the database. Instead it carries C̄k — for every transaction, the
// ids of the candidate k-itemsets it contains — and derives C̄k+1 from C̄k
// using the two generator (k-1)-itemsets of each candidate.
type AprioriTid struct {
	hook PassHook
}

// Name implements Miner.
func (a *AprioriTid) Name() string { return "AprioriTid" }

// SetPassHook implements PassObserver. Every emitted level is final.
func (a *AprioriTid) SetPassHook(h PassHook) { a.hook = h }

// tidEntry is one transaction's surviving candidate ids.
type tidEntry struct {
	tid   int
	cands []int // indices into the current candidate list, ascending
}

// Mine implements Miner.
func (a *AprioriTid) Mine(db *transactions.DB, minSupport float64) (*Result, error) {
	return a.MineContext(context.Background(), db, minSupport)
}

// MineContext implements ContextMiner.
func (a *AprioriTid) MineContext(ctx context.Context, db *transactions.DB, minSupport float64) (*Result, error) {
	minCount, err := checkInput(db, minSupport)
	if err != nil {
		return emptyResult(), err
	}
	res := &Result{MinCount: minCount, NumTx: db.Len()}

	level, err := frequentOne(ctx, db, minCount)
	if err != nil {
		return nil, err
	}
	res.addPass(a.hook, PassStat{K: 1, Candidates: db.NumItems(), Frequent: len(level)}, level)
	if len(level) == 0 {
		return res, nil
	}
	res.Levels = append(res.Levels, level)

	bar := initialBar(db, level)
	for k := 2; ; k++ {
		prev := itemsetsOf(level)
		cands := aprioriGen(prev)
		if len(cands) == 0 {
			break
		}
		gens := generatorIndices(cands, prev)
		counts := make([]int, len(cands))
		var barErr error
		bar, barErr = advanceBar(ctx, bar, gens, counts)
		if barErr != nil {
			return nil, barErr
		}

		level = nil
		keep := make([]int, len(cands)) // candidate idx -> idx within frequent set, or -1
		for i := range keep {
			keep[i] = -1
		}
		for ci, c := range counts {
			if c >= minCount {
				keep[ci] = len(level)
				level = append(level, ItemsetCount{Items: cands[ci], Count: c})
			}
		}
		res.addPass(a.hook, PassStat{K: k, Candidates: len(cands), Frequent: len(level)}, level)
		if len(level) == 0 {
			break
		}
		res.Levels = append(res.Levels, level)
		bar = filterBar(bar, keep)
	}
	return res, nil
}

// initialBar builds C̄1: each transaction's frequent items as indices into
// L1 (which is sorted by item id, so ids are ascending).
func initialBar(db *transactions.DB, l1 []ItemsetCount) []tidEntry {
	itemToID := make(map[int]int, len(l1))
	for i, ic := range l1 {
		itemToID[ic.Items[0]] = i
	}
	bar := make([]tidEntry, 0, db.Len())
	for tid, tx := range db.Transactions {
		ids := make([]int, 0, len(tx))
		for _, item := range tx {
			if id, ok := itemToID[item]; ok {
				ids = append(ids, id)
			}
		}
		if len(ids) > 0 {
			bar = append(bar, tidEntry{tid: tid, cands: ids})
		}
	}
	return bar
}

// generatorIndices locates, for every candidate, the positions in prev of
// its two generators: the (k-1)-prefix and the prefix with the last item
// replaced by the second-to-last candidate item (the join pair). prev is
// sorted, enabling map lookup by key.
func generatorIndices(cands, prev []transactions.Itemset) [][2]int {
	idx := make(map[string]int, len(prev))
	for i, p := range prev {
		idx[p.Key()] = i
	}
	out := make([][2]int, len(cands))
	buf := make(transactions.Itemset, 0, 16)
	for i, c := range cands {
		k := len(c)
		g1 := c[:k-1]
		buf = buf[:0]
		buf = append(buf, c[:k-2]...)
		buf = append(buf, c[k-1])
		out[i] = [2]int{idx[g1.Key()], idx[buf.Key()]}
	}
	return out
}

// advanceBar computes C̄k from C̄k-1: a transaction contains candidate c
// exactly when it contains both of c's generators. Candidates are indexed
// by their first generator so each entry only probes candidates whose g1
// it actually contains — the paper's join, rather than a scan of Ck per
// transaction. The entry loop polls ctx every ctxStride entries; on
// cancellation the partially advanced bar is discarded by the caller.
func advanceBar(ctx context.Context, bar []tidEntry, gens [][2]int, counts []int) ([]tidEntry, error) {
	// byFirst[g1] lists (candidate id, g2) pairs.
	type cg struct{ ci, g2 int }
	byFirst := make(map[int][]cg)
	for ci, g := range gens {
		byFirst[g[0]] = append(byFirst[g[0]], cg{ci: ci, g2: g[1]})
	}
	out := bar[:0]
	for ei, e := range bar {
		if ei%ctxStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		has := make(map[int]struct{}, len(e.cands))
		for _, id := range e.cands {
			has[id] = struct{}{}
		}
		var next []int
		for _, g1 := range e.cands {
			for _, c := range byFirst[g1] {
				if _, ok := has[c.g2]; ok {
					next = append(next, c.ci)
					counts[c.ci]++
				}
			}
		}
		if len(next) > 0 {
			out = append(out, tidEntry{tid: e.tid, cands: next})
		}
	}
	return out, nil
}

// filterBar renumbers entries from candidate ids to frequent-set ids,
// dropping infrequent candidates and empty entries.
func filterBar(bar []tidEntry, keep []int) []tidEntry {
	out := bar[:0]
	for _, e := range bar {
		kept := e.cands[:0]
		for _, id := range e.cands {
			if keep[id] >= 0 {
				kept = append(kept, keep[id])
			}
		}
		if len(kept) > 0 {
			out = append(out, tidEntry{tid: e.tid, cands: kept})
		}
	}
	return out
}

// AprioriHybrid runs Apriori for the early passes and switches to
// AprioriTid once the estimated size of C̄k fits the memory budget,
// following the VLDB'94 heuristic: the estimate is the sum of candidate
// supports in the current pass plus the number of transactions.
type AprioriHybrid struct {
	// BudgetEntries caps the estimated C̄k size that triggers the switch.
	// Zero means 8x the number of transactions, a laptop-scale stand-in
	// for the paper's "fits in memory" test.
	BudgetEntries int

	hook PassHook
}

// Name implements Miner.
func (a *AprioriHybrid) Name() string { return "AprioriHybrid" }

// SetPassHook implements PassObserver. Every emitted level is final.
func (a *AprioriHybrid) SetPassHook(h PassHook) { a.hook = h }

// Mine implements Miner.
func (a *AprioriHybrid) Mine(db *transactions.DB, minSupport float64) (*Result, error) {
	return a.MineContext(context.Background(), db, minSupport)
}

// MineContext implements ContextMiner.
func (a *AprioriHybrid) MineContext(ctx context.Context, db *transactions.DB, minSupport float64) (*Result, error) {
	minCount, err := checkInput(db, minSupport)
	if err != nil {
		return emptyResult(), err
	}
	budget := a.BudgetEntries
	if budget <= 0 {
		budget = 8 * db.Len()
	}
	res := &Result{MinCount: minCount, NumTx: db.Len()}

	level, err := frequentOne(ctx, db, minCount)
	if err != nil {
		return nil, err
	}
	res.addPass(a.hook, PassStat{K: 1, Candidates: db.NumItems(), Frequent: len(level)}, level)
	if len(level) == 0 {
		return res, nil
	}
	res.Levels = append(res.Levels, level)

	apriori := &Apriori{}
	switched := false
	var bar []tidEntry
	for k := 2; ; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if k == 2 {
			// Pass-2 special case mirrors Apriori: triangular counting,
			// with the C̄2 size estimated from per-transaction frequent
			// pair counts.
			nCands := len(level) * (len(level) - 1) / 2
			freq1 := make(map[int]struct{}, len(level))
			for _, ic := range level {
				freq1[ic.Items[0]] = struct{}{}
			}
			est := db.Len()
			for _, tx := range db.Transactions {
				m := 0
				for _, item := range tx {
					if _, ok := freq1[item]; ok {
						m++
					}
				}
				est += m * (m - 1) / 2
			}
			level, err = countPairsTriangular(ctx, db, level, minCount, 1)
			if err != nil {
				return nil, err
			}
			res.addPass(a.hook, PassStat{K: 2, Candidates: nCands, Frequent: len(level)}, level)
			if len(level) == 0 {
				break
			}
			res.Levels = append(res.Levels, level)
			if est <= budget {
				switched = true
				bar = buildBarFromLevel(db, level)
			}
			continue
		}
		prev := itemsetsOf(level)
		cands := aprioriGen(prev)
		if len(cands) == 0 {
			break
		}
		var counts []int
		if !switched {
			counted, err := apriori.countWithHashTree(ctx, db, cands, k)
			if err != nil {
				return nil, err
			}
			// countWithHashTree returns entries in tree order; align to cands.
			byKey := make(map[string]int, len(counted))
			for _, ic := range counted {
				byKey[ic.Items.Key()] = ic.Count
			}
			counts = make([]int, len(cands))
			estBar := db.Len()
			for i, c := range cands {
				counts[i] = byKey[c.Key()]
				estBar += counts[i]
			}
			// Switch for the next pass when C̄k+1 is estimated to fit.
			if estBar <= budget {
				switched = true
				bar = buildBarFromDB(db, cands, counts, minCount)
			}
		} else {
			gens := generatorIndices(cands, prev)
			counts = make([]int, len(cands))
			var barErr error
			bar, barErr = advanceBar(ctx, bar, gens, counts)
			if barErr != nil {
				return nil, barErr
			}
		}

		level = nil
		keep := make([]int, len(cands))
		for i := range keep {
			keep[i] = -1
		}
		for ci, c := range counts {
			if c >= minCount {
				keep[ci] = len(level)
				level = append(level, ItemsetCount{Items: cands[ci], Count: c})
			}
		}
		res.addPass(a.hook, PassStat{K: k, Candidates: len(cands), Frequent: len(level)}, level)
		if len(level) == 0 {
			break
		}
		res.Levels = append(res.Levels, level)
		if switched && bar != nil {
			bar = filterBar(bar, keep)
		}
	}
	return res, nil
}

// buildBarFromLevel materialises C̄k directly over the frequent set, with
// entry ids indexing the level (already renumbered, so no filterBar pass
// is needed afterwards).
func buildBarFromLevel(db *transactions.DB, level []ItemsetCount) []tidEntry {
	bar := make([]tidEntry, 0, db.Len())
	for tid, tx := range db.Transactions {
		var ids []int
		for li, ic := range level {
			if tx.ContainsAll(ic.Items) {
				ids = append(ids, li)
			}
		}
		if len(ids) > 0 {
			bar = append(bar, tidEntry{tid: tid, cands: ids})
		}
	}
	return bar
}

// buildBarFromDB materialises C̄k for the switch pass by one scan over the
// database, keeping only candidates that are frequent (their ids are
// renumbered later by filterBar, so ids here index cands).
func buildBarFromDB(db *transactions.DB, cands []transactions.Itemset, counts []int, minCount int) []tidEntry {
	bar := make([]tidEntry, 0, db.Len())
	for tid, tx := range db.Transactions {
		var ids []int
		for ci, c := range cands {
			if counts[ci] >= minCount && tx.ContainsAll(c) {
				ids = append(ids, ci)
			}
		}
		if len(ids) > 0 {
			bar = append(bar, tidEntry{tid: tid, cands: ids})
		}
	}
	return bar
}
