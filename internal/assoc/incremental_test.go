package assoc

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/synth"
	"repro/internal/transactions"
)

// incrementalFixture returns a pool of synthetic transactions: the first
// base of them seed the store, the rest feed appends.
func incrementalFixture(t *testing.T, total int) []transactions.Itemset {
	t.Helper()
	cfg := synth.TxI(8, 3, total, 42)
	cfg.NumItems = 60
	cfg.NumPatterns = 30
	db, err := synth.Baskets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db.Transactions
}

// mustMaintain runs Maintain and fails the test on error.
func mustMaintain(t *testing.T, inc *Incremental) (*Result, MaintainStats) {
	t.Helper()
	res, stats, err := inc.Maintain()
	if err != nil {
		t.Fatal(err)
	}
	return res, stats
}

// TestIncrementalEquivalenceProperty drives a randomized append/delete
// sequence and checks, at every step, that the maintained result is
// byte-identical to a from-scratch run on a snapshot — at workers 1 and 4.
func TestIncrementalEquivalenceProperty(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "workers1", 4: "workers4"}[workers], func(t *testing.T) {
			pool := incrementalFixture(t, 700)
			base, updates := pool[:400], pool[400:]

			store := transactions.NewShardedDB(64)
			for _, tx := range base {
				if err := store.Append(tx...); err != nil {
					t.Fatal(err)
				}
			}
			const minSup = 0.03
			inc := &Incremental{Workers: workers}
			if _, stats, err := inc.Attach(store, minSup); err != nil {
				t.Fatal(err)
			} else if !stats.FullRun || stats.DirtyShards != store.NumShards() {
				t.Fatalf("attach stats = %+v, want full run over all shards", stats)
			}

			rng := rand.New(rand.NewSource(11))
			scratch := &Apriori{}
			incRuns, fullRuns := 0, 0
			next := 0
			for step := 0; step < 12; step++ {
				// A mixed batch: a few appends from the pool, a few deletes.
				for i := 0; i < 10 && next < len(updates); i++ {
					if err := store.Append(updates[next]...); err != nil {
						t.Fatal(err)
					}
					next++
				}
				for i := 0; i < 4; i++ {
					if _, err := store.DeleteAt(rng.Intn(store.Len())); err != nil {
						t.Fatal(err)
					}
				}
				res, stats := mustMaintain(t, inc)
				if stats.FullRun {
					fullRuns++
				} else {
					incRuns++
					if stats.DirtyShards == stats.NumShards {
						t.Fatalf("step %d: incremental path re-counted every shard", step)
					}
				}
				want, err := scratch.Mine(store.Snapshot(), minSup)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(res.Canonical(), want.Canonical()) {
					t.Fatalf("step %d (stats %+v): maintained result diverged from from-scratch run", step, stats)
				}
				if res.MinCount != want.MinCount || res.NumTx != want.NumTx {
					t.Fatalf("step %d: MinCount/NumTx %d/%d, want %d/%d",
						step, res.MinCount, res.NumTx, want.MinCount, want.NumTx)
				}
			}
			if incRuns == 0 {
				t.Fatal("no update was handled incrementally; the cache never paid off")
			}
			t.Logf("workers=%d: %d incremental, %d full-run steps", workers, incRuns, fullRuns)
		})
	}
}

// TestIncrementalBorderCrossingFallsBack forces a border crossing: a flood
// of transactions containing a previously infrequent item pushes it (and
// pairs through it) into the frequent set, whose counts were never tracked.
func TestIncrementalBorderCrossingFallsBack(t *testing.T) {
	store := transactions.NewShardedDB(64)
	// Items 0..4 frequent together; item 50 appears once.
	for i := 0; i < 200; i++ {
		if err := store.Append(0, 1, 2, 3, 4); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Append(50); err != nil {
		t.Fatal(err)
	}
	inc := &Incremental{}
	if _, _, err := inc.Attach(store, 0.1); err != nil {
		t.Fatal(err)
	}

	// Flood with {50, 51} pairs: both become frequent, no tracked counts.
	for i := 0; i < 100; i++ {
		if err := store.Append(50, 51); err != nil {
			t.Fatal(err)
		}
	}
	res, stats := mustMaintain(t, inc)
	if !stats.FullRun {
		t.Fatalf("stats = %+v, want a full-run fallback on border crossing", stats)
	}
	want, err := (&Apriori{}).Mine(store.Snapshot(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Canonical(), want.Canonical()) {
		t.Fatal("fallback result diverged from from-scratch run")
	}
	if _, ok := res.Support(transactions.Itemset{50, 51}); !ok {
		t.Fatal("pair {50,51} should be frequent after the flood")
	}

	// A quiet follow-up batch is handled incrementally again.
	for i := 0; i < 5; i++ {
		if err := store.Append(0, 1, 2, 3, 4); err != nil {
			t.Fatal(err)
		}
	}
	_, stats = mustMaintain(t, inc)
	if stats.FullRun {
		t.Fatalf("stats = %+v, want incremental handling after rebuild", stats)
	}
	if stats.DirtyShards == 0 || stats.DirtyShards == stats.NumShards {
		t.Fatalf("stats = %+v, want only the appended shard dirty", stats)
	}
}

// TestIncrementalAgreesAcrossBaseMiners checks that the maintainer plumbed
// through each level-wise miner (and Eclat's bitset layout) as the
// full-run base produces the same bytes.
func TestIncrementalAgreesAcrossBaseMiners(t *testing.T) {
	pool := incrementalFixture(t, 300)
	bases := []Miner{
		&Apriori{},
		&Apriori{Strategy: CountMap},
		&DHP{},
		&Partition{NumPartitions: 3},
		&Eclat{Layout: LayoutBitset},
		&FPGrowth{},
		&FPGrowth{Workers: 4},
		&Partition{NumPartitions: 3, LocalMiner: &FPGrowth{}},
	}
	var want []byte
	for _, b := range bases {
		store := transactions.NewShardedDB(64)
		for _, tx := range pool[:250] {
			if err := store.Append(tx...); err != nil {
				t.Fatal(err)
			}
		}
		inc := &Incremental{Base: b}
		if _, _, err := inc.Attach(store, 0.04); err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		for _, tx := range pool[250:] {
			if err := store.Append(tx...); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := store.DeleteAt(10); err != nil {
			t.Fatal(err)
		}
		res, _ := mustMaintain(t, inc)
		got := res.Canonical()
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("%s as base miner diverged", b.Name())
		}
	}
}

// TestIncrementalErrors covers the precondition paths.
func TestIncrementalErrors(t *testing.T) {
	inc := &Incremental{}
	if _, _, err := inc.Maintain(); err != ErrNotAttached {
		t.Fatalf("Maintain before Attach: err=%v, want ErrNotAttached", err)
	}
	if _, err := inc.Rules(0.5); err != ErrNotAttached {
		t.Fatalf("Rules before Attach: err=%v, want ErrNotAttached", err)
	}
	store := transactions.NewShardedDB(64)
	if _, _, err := inc.Attach(store, 0); err == nil {
		t.Fatal("Attach with bad support should fail")
	}
	if _, _, err := inc.Attach(store, 0.1); err == nil {
		t.Fatal("Attach to an empty store should fail")
	}
	if err := store.Append(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := inc.Attach(store, 0.1); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	for store.Len() > 0 {
		if _, err := store.DeleteAt(0); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := inc.Maintain(); err == nil {
		t.Fatal("Maintain on emptied store should fail")
	}
}

// TestIncrementalRulesMatchScratch: rule maintenance = regenerating rules
// from the maintained counts; they must match rules from a scratch mine.
func TestIncrementalRulesMatchScratch(t *testing.T) {
	pool := incrementalFixture(t, 260)
	store := transactions.NewShardedDB(64)
	for _, tx := range pool[:200] {
		if err := store.Append(tx...); err != nil {
			t.Fatal(err)
		}
	}
	inc := &Incremental{}
	if _, _, err := inc.Attach(store, 0.05); err != nil {
		t.Fatal(err)
	}
	for _, tx := range pool[200:] {
		if err := store.Append(tx...); err != nil {
			t.Fatal(err)
		}
	}
	mustMaintain(t, inc)
	got, err := inc.Rules(0.6)
	if err != nil {
		t.Fatal(err)
	}
	scratchRes, err := (&Apriori{}).Mine(store.Snapshot(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want, err := GenerateRules(scratchRes, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d rules, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].String() != want[i].String() {
			t.Fatalf("rule %d: %s != %s", i, got[i], want[i])
		}
	}
}
