package assoc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/transactions"
)

// bruteForceFrequent enumerates every itemset over a small universe and
// counts supports directly — the oracle for the miners.
func bruteForceFrequent(db *transactions.DB, minCount, universe int) map[string]int {
	out := make(map[string]int)
	var rec func(start int, current transactions.Itemset)
	rec = func(start int, current transactions.Itemset) {
		for item := start; item < universe; item++ {
			next := append(current, item)
			sup := db.Support(next)
			if sup >= minCount {
				out[next.Key()] = sup
				rec(item+1, next)
			}
			// Anti-monotonicity: no superset of an infrequent set can be
			// frequent, so not recursing is exact, not a heuristic.
		}
	}
	rec(0, nil)
	return out
}

// TestMinersMatchBruteForceProperty drives every miner against the oracle
// on random small databases.
func TestMinersMatchBruteForceProperty(t *testing.T) {
	const universe = 8
	f := func(seed int64, minRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		db := transactions.NewDB()
		nTx := 4 + rng.Intn(20)
		for i := 0; i < nTx; i++ {
			n := 1 + rng.Intn(5)
			items := make([]int, n)
			for j := range items {
				items[j] = rng.Intn(universe)
			}
			if err := db.Add(items...); err != nil {
				return false
			}
		}
		minSup := 0.1 + float64(minRaw%60)/100.0 // 10%..69%
		minCount := db.AbsoluteSupport(minSup)
		want := bruteForceFrequent(db, minCount, universe)
		for _, m := range allMiners() {
			res, err := m.Mine(db, minSup)
			if err != nil {
				t.Logf("%s: %v", m.Name(), err)
				return false
			}
			got := resultMap(res)
			if len(got) != len(want) {
				t.Logf("%s: %d itemsets, oracle %d (seed %d minSup %v)",
					m.Name(), len(got), len(want), seed, minSup)
				return false
			}
			for k, v := range want {
				if got[k] != v {
					t.Logf("%s: support(%s)=%d, oracle %d", m.Name(), k, got[k], v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestRuleCompletenessProperty checks ap-genrules against brute-force rule
// enumeration on random databases.
func TestRuleCompletenessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := transactions.NewDB()
		for i := 0; i < 12; i++ {
			n := 1 + rng.Intn(4)
			items := make([]int, n)
			for j := range items {
				items[j] = rng.Intn(6)
			}
			if err := db.Add(items...); err != nil {
				return false
			}
		}
		res, err := (&Apriori{}).Mine(db, 0.25)
		if err != nil {
			return false
		}
		const minConf = 0.6
		rules, err := GenerateRules(res, minConf)
		if err != nil {
			return false
		}
		got := make(map[string]bool, len(rules))
		for _, r := range rules {
			got[r.Antecedent.Key()+">"+r.Consequent.Key()] = true
		}
		// Oracle: every split of every frequent itemset.
		count := 0
		for _, ic := range res.All() {
			n := len(ic.Items)
			if n < 2 {
				continue
			}
			for mask := 1; mask < (1<<n)-1; mask++ {
				var ante, cons transactions.Itemset
				for b := 0; b < n; b++ {
					if mask&(1<<b) != 0 {
						ante = append(ante, ic.Items[b])
					} else {
						cons = append(cons, ic.Items[b])
					}
				}
				conf := float64(ic.Count) / float64(db.Support(ante))
				key := ante.Key() + ">" + cons.Key()
				if conf >= minConf {
					count++
					if !got[key] {
						t.Logf("missing rule %s (seed %d)", key, seed)
						return false
					}
				} else if got[key] {
					t.Logf("spurious rule %s (seed %d)", key, seed)
					return false
				}
			}
		}
		return len(rules) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
