package assoc

import "repro/internal/transactions"

// negativeBorder returns the negative border of a level-wise frequent set
// above level 1: the itemsets produced by the Apriori join of each frequent
// level that are not themselves frequent. Every such candidate has all of
// its proper subsets frequent (aprioriGen's prune guarantees it), so these
// are exactly the minimal infrequent itemsets of length >= 2. The level-1
// part of the border — the infrequent single items — is not included;
// callers that need it (Toivonen's Sampling, the FUP-style incremental
// maintainer) track all single items anyway, because a flat pass-1 count
// array covers the whole item universe for free.
//
// The returned itemsets are deduplicated and appear in level order.
func negativeBorder(levels [][]ItemsetCount) []transactions.Itemset {
	frequent := make(map[string]struct{})
	for _, level := range levels {
		for _, ic := range level {
			frequent[ic.Items.Key()] = struct{}{}
		}
	}
	seen := make(map[string]struct{})
	var out []transactions.Itemset
	for _, level := range levels {
		for _, cand := range aprioriGen(itemsetsOf(level)) {
			key := cand.Key()
			if _, ok := frequent[key]; ok {
				continue
			}
			if _, ok := seen[key]; ok {
				continue
			}
			seen[key] = struct{}{}
			out = append(out, cand)
		}
	}
	return out
}
