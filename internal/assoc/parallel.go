package assoc

// The count-distribution engine shared by the level-wise miners.
//
// Every support-counting pass has the same shape: scan the transactions,
// accumulate counts into some structure, threshold. Count distribution
// (the classic parallelisation of Apriori) splits the database into
// contiguous shards, gives each worker a private copy of the counters,
// and merges the copies after the scan — no locks on the hot path, and
// the merged result is bit-identical to the serial scan because integer
// addition is commutative and the shards tile the database exactly.
//
// The helpers here are the per-structure instantiations of that scheme:
// flat item counters (pass 1), the triangular pair array (pass 2), the
// candidate hash tree (pass 3+), and the candidate-index map counter used
// by Partition's global phase. Miners opt in through a Workers option;
// workers <= 1 runs the identical scan inline with no goroutines.
//
// Every helper takes a context and honours cancellation: scan loops poll
// ctx every ctxStride transactions and bail out early, workers drain
// through the same poll (no goroutine outlives its helper call), and the
// helper returns ctx.Err() instead of partial counts. Under
// context.Background() the poll is a nil check per stride — free.

import (
	"context"
	"sync"

	"repro/internal/hashtree"
	"repro/internal/transactions"
)

// WorkerSetter is implemented by the miners that support count-distribution
// parallelism; the CLIs use it to apply a -workers flag uniformly.
type WorkerSetter interface {
	SetWorkers(n int)
}

// ctxStride is how many transactions a counting scan processes between
// context polls. Cancellation is therefore detected within one stride per
// worker, while the poll cost is amortised to nothing on the hot path.
const ctxStride = 1024

// forEachShard runs fn once per shard on its own goroutine (at most
// workers of them) and waits for all of them. The shard index, always
// below the workers cap, lets fn address a private counter buffer.
// workers <= 1 calls fn inline on a single whole-database shard. The
// returned error is ctx.Err() observed after every worker has exited, so
// a cancelled scan surfaces the cancellation instead of partial counts
// and never leaks a goroutine.
func forEachShard(ctx context.Context, db *transactions.DB, workers int, fn func(shard int, sh transactions.Shard)) error {
	if workers <= 1 {
		fn(0, transactions.Shard{Transactions: db.Transactions})
		return ctx.Err()
	}
	var wg sync.WaitGroup
	for i, sh := range db.Shards(workers) {
		wg.Add(1)
		go func(i int, sh transactions.Shard) {
			defer wg.Done()
			fn(i, sh)
		}(i, sh)
	}
	wg.Wait()
	return ctx.Err()
}

// countShardedInts is the engine's common case: scan fills a private
// []int counter of length n from one shard; the per-shard counters are
// merged by addition. workers <= 1 scans the whole database inline. The
// scan callback is responsible for polling ctx (use ctxStride).
func countShardedInts(ctx context.Context, db *transactions.DB, workers, n int, scan func(sh transactions.Shard, counts []int)) ([]int, error) {
	if workers <= 1 {
		counts := make([]int, n)
		scan(transactions.Shard{Transactions: db.Transactions}, counts)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return counts, nil
	}
	// Sized to workers, not the (possibly smaller) shard count; nil tails
	// are no-ops for mergeCounts.
	parts := make([][]int, workers)
	if err := forEachShard(ctx, db, workers, func(shard int, sh transactions.Shard) {
		counts := make([]int, n)
		scan(sh, counts)
		parts[shard] = counts
	}); err != nil {
		return nil, err
	}
	return mergeCounts(parts, n), nil
}

// countItems returns per-item transaction-occurrence counts (the pass-1
// scan), distributed across workers.
func countItems(ctx context.Context, db *transactions.DB, workers int) ([]int, error) {
	return countShardedInts(ctx, db, workers, db.NumItems(), func(sh transactions.Shard, counts []int) {
		for off, tx := range sh.Transactions {
			if off%ctxStride == 0 && ctx.Err() != nil {
				return
			}
			for _, item := range tx {
				counts[item]++
			}
		}
	})
}

// mergeCounts sums per-worker count arrays into one.
func mergeCounts(parts [][]int, n int) []int {
	out := make([]int, n)
	for _, p := range parts {
		for i, c := range p {
			out[i] += c
		}
	}
	return out
}

// frequentOneWorkers is frequentOne with the scan distributed.
func frequentOneWorkers(ctx context.Context, db *transactions.DB, minCount, workers int) ([]ItemsetCount, error) {
	counts, err := countItems(ctx, db, workers)
	if err != nil {
		return nil, err
	}
	var out []ItemsetCount
	for item, c := range counts {
		if c >= minCount {
			out = append(out, ItemsetCount{Items: transactions.Itemset{item}, Count: c})
		}
	}
	return out, nil
}

// countTree scans the database through a fully built candidate hash tree.
// With workers > 1 each worker counts its shard into a private
// hashtree.CountBuffer (the tree itself is only read), merged afterwards.
// On cancellation nothing is merged into the tree, so a caller that
// (wrongly) ignored the error could never observe partial counts.
func countTree(ctx context.Context, db *transactions.DB, tree *hashtree.Tree, workers int) error {
	if workers <= 1 {
		for tid, tx := range db.Transactions {
			if tid%ctxStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			tree.CountTransaction(tx, tid)
		}
		return ctx.Err()
	}
	bufs := make([]*hashtree.CountBuffer, workers)
	if err := forEachShard(ctx, db, workers, func(shard int, sh transactions.Shard) {
		buf := tree.NewCountBuffer()
		for off, tx := range sh.Transactions {
			if off%ctxStride == 0 && ctx.Err() != nil {
				return
			}
			tree.CountTransactionInto(tx, sh.Base+off, buf)
		}
		bufs[shard] = buf
	}); err != nil {
		return err
	}
	for _, buf := range bufs {
		if buf != nil {
			tree.Merge(buf)
		}
	}
	return nil
}

// countTriangle runs the pass-2 triangular pair scan: rank maps item id to
// L1 rank (-1 for infrequent items), and the result is the merged
// n*(n-1)/2 triangular count array over ranks.
func countTriangle(ctx context.Context, db *transactions.DB, rank []int, n, workers int) ([]int, error) {
	scan := func(txs []transactions.Itemset, counts []int) {
		tri := func(i, j int) int { return i*(2*n-i-1)/2 + (j - i - 1) }
		ranks := make([]int, 0, 64)
		for off, tx := range txs {
			if off%ctxStride == 0 && ctx.Err() != nil {
				return
			}
			ranks = ranks[:0]
			for _, item := range tx {
				if r := rank[item]; r >= 0 {
					ranks = append(ranks, r)
				}
			}
			for a := 0; a < len(ranks); a++ {
				for b := a + 1; b < len(ranks); b++ {
					counts[tri(ranks[a], ranks[b])]++
				}
			}
		}
	}
	return countShardedInts(ctx, db, workers, n*(n-1)/2, func(sh transactions.Shard, counts []int) {
		scan(sh.Transactions, counts)
	})
}

// countCandidatesDirect counts each candidate's support by direct subset
// tests / subset enumeration (the map strategy), returning counts indexed
// like cands. The per-transaction strategy choice depends only on the
// transaction, so sharding does not change which branch runs for a given
// transaction and the merged counts equal the serial scan's.
func countCandidatesDirect(ctx context.Context, db *transactions.DB, cands []transactions.Itemset, k, workers int) ([]int, error) {
	idx := make(map[string]int, len(cands))
	for i, c := range cands {
		idx[c.Key()] = i
	}
	scan := func(txs []transactions.Itemset, counts []int) {
		for off, tx := range txs {
			if off%ctxStride == 0 && ctx.Err() != nil {
				return
			}
			if len(tx) < k {
				continue
			}
			if choose(len(tx), k) <= len(cands) {
				forEachSubset(tx, k, func(sub transactions.Itemset) {
					if i, ok := idx[sub.Key()]; ok {
						counts[i]++
					}
				})
			} else {
				for i, c := range cands {
					if tx.ContainsAll(c) {
						counts[i]++
					}
				}
			}
		}
	}
	return countShardedInts(ctx, db, workers, len(cands), func(sh transactions.Shard, counts []int) {
		scan(sh.Transactions, counts)
	})
}
