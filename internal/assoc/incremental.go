package assoc

// FUP-style incremental maintenance of a mined frequent set under
// appends and deletes (Cheung et al., ICDE'96 — the update-time
// counterpart of the SIGMOD'96 tutorial's level-wise miners).
//
// The maintainer keeps, per shard of a transactions.ShardedDB, the cached
// counting structures of the PR 1 engine: the flat pass-1 item array, the
// triangular pass-2 pair array over the last rebuild's L1 ranks, and one
// hashtree.CountBuffer per candidate length >= 3. The tracked candidate
// set is the frequent set at a slack-lowered support plus its negative
// border (so near-threshold itemsets are already covered), and after an
// update the maintainer:
//
//  1. re-counts only the shards whose version changed (dirty shards),
//     subtracting their stale cached counts from the running totals and
//     adding the fresh ones — clean shards cost nothing, not even a merge;
//  2. re-thresholds the totals level by level, pruning candidate
//     generation to itemsets whose exact counts are already tracked;
//  3. falls back to a full re-mine only when the border is crossed — some
//     candidate the new frequent set needs was never tracked, so its count
//     is unknown.
//
// Because every tracked count is exact (the caches tile the database and
// integer addition is invertible), the maintained result is byte-identical
// to a from-scratch run at every step; the property tests verify this
// across randomized append/delete sequences.

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/hashtree"
	"repro/internal/transactions"
)

// ErrNotAttached reports Maintain before Attach.
var ErrNotAttached = errors.New("assoc: incremental miner not attached to a store")

// StoreBinder is implemented by base miners that can reuse the store's
// shard version stamps across full runs — the Distributed engine, whose
// workers keep versioned shard replicas. Attach binds such a base to the
// store, so a border-crossing full re-mine re-ships only the shards an
// Append/DeleteAt dirtied instead of re-shipping the whole database.
type StoreBinder interface {
	BindStore(*transactions.ShardedDB)
}

// MaintainStats describes the work one Maintain call did.
type MaintainStats struct {
	NumShards   int    // shards in the store
	DirtyShards int    // shards re-counted (version changed or new)
	RecountedTx int    // transactions scanned while re-counting
	FullRun     bool   // true when the update fell back to a full re-mine
	Reason      string // why the full run happened; "" when incremental
}

// shardCache is one shard's cached counting structures, valid for the
// shard version it was counted at. The pair counts are sparse — a shard
// touches far fewer pairs than the full triangle addresses — so caching
// and re-merging a shard costs O(pairs it contains), not O(|L1|^2).
type shardCache struct {
	version uint64
	numTx   int
	items   []int                         // pass-1 flat array
	triIdx  []int32                       // touched triangular indices over rebuild L1 ranks
	triCnt  []int32                       // counts parallel to triIdx
	bufs    map[int]*hashtree.CountBuffer // per-length candidate counts, k >= 3
}

// Incremental maintains the frequent itemsets of a ShardedDB across
// appends and deletes, re-counting only dirty shards (see the package
// comment above). Attach runs the initial full mine and builds the caches;
// Maintain brings the result up to date after mutations.
type Incremental struct {
	// Base is the miner used for full runs (Attach and border-crossing
	// fallbacks). Any of the package's miners works — they produce
	// identical results; nil means Apriori sharing Workers.
	Base Miner
	// Workers bounds how many dirty shards are re-counted concurrently;
	// <= 1 re-counts serially. Results are identical either way.
	Workers int
	// TrackSlack lowers the support at which the tracked candidate set is
	// frozen: rebuilds mine at minSupport*TrackSlack, so itemsets near the
	// threshold already have cached counts and small updates that nudge
	// them across it stay incremental (the same slack idea as Toivonen's
	// lowered sample threshold). Results are exact regardless — slack only
	// trades cache memory against fallback frequency. 0 means the default
	// 0.8; 1 tracks exactly the frequent set and its border.
	TrackSlack float64

	store      *transactions.ShardedDB
	minSupport float64

	// Tracked candidate set, frozen at the last rebuild.
	rank    []int                  // item id -> L1 rank at rebuild, -1 if not frequent then
	l1Items []int                  // rank -> item id
	trees   map[int]*hashtree.Tree // tracked k-itemsets (frequent + border), k >= 3
	treeIdx map[int]map[string]int // itemset key -> entry id per tree

	// Per-shard caches and the incrementally maintained global totals.
	cache      []*shardCache
	itemTotals []int
	triTotals  []int
	treeTotals map[int][]int // summed CountBuffer counts by entry id

	// triScratch pools zeroed dense triangles for countShard: each worker
	// borrows one, counts into it, extracts the touched entries into the
	// sparse cache, re-zeroes only those, and returns it.
	triScratch sync.Pool

	prev *Result
}

// SetWorkers implements WorkerSetter.
func (inc *Incremental) SetWorkers(n int) { inc.Workers = n }

// base returns the full-run miner.
func (inc *Incremental) base() Miner {
	if inc.Base != nil {
		return inc.Base
	}
	return &Apriori{Workers: inc.Workers}
}

// trackSupport returns the lowered support the tracked set is frozen at.
func (inc *Incremental) trackSupport() float64 {
	slack := inc.TrackSlack
	if slack <= 0 || slack > 1 {
		slack = 0.8
	}
	return inc.minSupport * slack
}

// Attach binds the maintainer to a store, runs the initial full mine at
// minSupport and builds the per-shard caches. It returns the initial
// result; the stats report a full run over every shard.
func (inc *Incremental) Attach(store *transactions.ShardedDB, minSupport float64) (*Result, MaintainStats, error) {
	return inc.AttachContext(context.Background(), store, minSupport)
}

// AttachContext is Attach with the initial full mine under ctx.
func (inc *Incremental) AttachContext(ctx context.Context, store *transactions.ShardedDB, minSupport float64) (*Result, MaintainStats, error) {
	if minSupport <= 0 || minSupport > 1 {
		return nil, MaintainStats{}, fmt.Errorf("%w: %v", ErrBadSupport, minSupport)
	}
	inc.store = store
	inc.minSupport = minSupport
	inc.prev = nil
	if sb, ok := inc.Base.(StoreBinder); ok {
		sb.BindStore(store)
	}
	return inc.MaintainContext(ctx)
}

// Result returns the currently maintained frequent set (nil before Attach).
func (inc *Incremental) Result() *Result { return inc.prev }

// Rules regenerates the association rules from the maintained frequent
// set — the rule-maintenance face of FUP: itemset counts are maintained
// incrementally and rules are cheap post-processing over them.
func (inc *Incremental) Rules(minConfidence float64) ([]Rule, error) {
	if inc.prev == nil {
		return nil, ErrNotAttached
	}
	return GenerateRules(inc.prev, minConfidence)
}

// Maintain brings the frequent set up to date with the store: dirty shards
// are re-counted, totals are re-thresholded, and a full re-mine runs only
// when the tracked border no longer covers the answer.
func (inc *Incremental) Maintain() (*Result, MaintainStats, error) {
	return inc.MaintainContext(context.Background())
}

// MaintainContext is Maintain under ctx. A cancelled maintain returns
// ctx.Err() before any cached totals are spliced, so the maintainer's
// state stays exactly what it was and the next call resumes cleanly —
// except when the cancellation lands inside a full rebuild, which resets
// the caches first; that case marks the maintainer dirty so the next call
// runs a fresh full mine instead of trusting half-built caches.
func (inc *Incremental) MaintainContext(ctx context.Context) (*Result, MaintainStats, error) {
	var stats MaintainStats
	if inc.store == nil {
		return nil, stats, ErrNotAttached
	}
	if inc.store.Len() == 0 {
		return nil, stats, ErrEmptyDB
	}
	stats.NumShards = inc.store.NumShards()
	if inc.prev == nil {
		return inc.rebuild(ctx, &stats, "initial full mine")
	}

	dirty := inc.dirtyShards()
	stats.DirtyShards = len(dirty)
	if len(dirty) == 0 && inc.prev.NumTx == inc.store.Len() {
		// Nothing changed: same shards, same threshold, same answer.
		return inc.prev, stats, nil
	}
	if err := inc.recount(ctx, dirty, &stats); err != nil {
		return nil, stats, err
	}

	res, ok, reason := inc.threshold()
	if !ok {
		return inc.rebuild(ctx, &stats, reason)
	}
	inc.prev = res
	return res, stats, nil
}

// dirtyShards lists the shard indices whose cache is missing or stale,
// growing the cache slice to the store's shard count.
func (inc *Incremental) dirtyShards() []int {
	n := inc.store.NumShards()
	for len(inc.cache) < n {
		inc.cache = append(inc.cache, nil)
	}
	var dirty []int
	for i := 0; i < n; i++ {
		if c := inc.cache[i]; c == nil || c.version != inc.store.Version(i) {
			dirty = append(dirty, i)
		}
	}
	return dirty
}

// recount re-counts the given shards into fresh caches (concurrently up to
// Workers) and splices them into the running totals: stale counts are
// subtracted, fresh ones added. Counting is per-shard private, so the
// concurrent path is race-free and bit-identical to the serial one. On
// cancellation it returns ctx.Err() before the splice, leaving the totals
// and caches untouched.
func (inc *Incremental) recount(ctx context.Context, dirty []int, stats *MaintainStats) error {
	fresh := make([]*shardCache, len(dirty))
	count := func(slot, shard int) {
		if ctx.Err() != nil {
			return
		}
		view, version := inc.store.ShardView(shard)
		fresh[slot] = inc.countShard(view, version)
	}
	if inc.Workers > 1 && len(dirty) > 1 {
		sem := make(chan struct{}, inc.Workers)
		var wg sync.WaitGroup
		for slot, shard := range dirty {
			wg.Add(1)
			go func(slot, shard int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				count(slot, shard)
			}(slot, shard)
		}
		wg.Wait()
	} else {
		for slot, shard := range dirty {
			count(slot, shard)
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Totals splice (serial: plain integer adds, order-independent).
	inc.growTotals()
	for slot, shard := range dirty {
		if old := inc.cache[shard]; old != nil {
			inc.spliceTotals(old, -1)
		}
		inc.spliceTotals(fresh[slot], +1)
		inc.cache[shard] = fresh[slot]
		stats.RecountedTx += fresh[slot].numTx
	}
	return nil
}

// growTotals extends the pass-1 totals to the store's current item
// universe (NumItems is monotone, so existing slots keep their counts).
func (inc *Incremental) growTotals() {
	for len(inc.itemTotals) < inc.store.NumItems() {
		inc.itemTotals = append(inc.itemTotals, 0)
	}
}

// spliceTotals adds sign*counts of one shard cache into the totals.
func (inc *Incremental) spliceTotals(c *shardCache, sign int) {
	for i, v := range c.items {
		inc.itemTotals[i] += sign * v
	}
	for i, idx := range c.triIdx {
		inc.triTotals[idx] += sign * int(c.triCnt[i])
	}
	for k, buf := range c.bufs {
		tot := inc.treeTotals[k]
		for id, v := range buf.Counts {
			tot[id] += sign * v
		}
	}
}

// countShard scans one shard into a fresh cache: pass-1 item counts, the
// triangular pair array over the rebuild's L1 ranks, and one CountBuffer
// per tracked tree. Shard-local transaction offsets serve as the dedup
// tids — they only need to be distinct within the buffer's own scan.
func (inc *Incremental) countShard(sh transactions.Shard, version uint64) *shardCache {
	c := &shardCache{
		version: version,
		numTx:   len(sh.Transactions),
		items:   make([]int, inc.store.NumItems()),
		bufs:    make(map[int]*hashtree.CountBuffer, len(inc.trees)),
	}
	for k, tree := range inc.trees {
		c.bufs[k] = tree.NewCountBuffer()
	}
	// Borrow a zeroed dense triangle, count into it, then keep only the
	// touched entries: a shard contains far fewer distinct pairs than the
	// triangle addresses, and the sparse form makes cache memory and merge
	// cost proportional to the shard, not to |L1|^2.
	var scratch []int
	if v := inc.triScratch.Get(); v != nil {
		scratch = v.([]int)
	}
	if len(scratch) < len(inc.triTotals) {
		scratch = make([]int, len(inc.triTotals))
	}
	var touched []int32
	n := len(inc.l1Items)
	tri := func(i, j int) int { return i*(2*n-i-1)/2 + (j - i - 1) }
	ranks := make([]int, 0, 64)
	for off, tx := range sh.Transactions {
		for _, item := range tx {
			c.items[item]++
		}
		ranks = ranks[:0]
		for _, item := range tx {
			if item < len(inc.rank) && inc.rank[item] >= 0 {
				ranks = append(ranks, inc.rank[item])
			}
		}
		for a := 0; a < len(ranks); a++ {
			for b := a + 1; b < len(ranks); b++ {
				idx := tri(ranks[a], ranks[b])
				if scratch[idx] == 0 {
					touched = append(touched, int32(idx))
				}
				scratch[idx]++
			}
		}
		for k, tree := range inc.trees {
			tree.CountTransactionInto(tx, off, c.bufs[k])
		}
	}
	c.triIdx = touched
	c.triCnt = make([]int32, len(touched))
	for i, idx := range touched {
		c.triCnt[i] = int32(scratch[idx])
		scratch[idx] = 0
	}
	inc.triScratch.Put(scratch)
	return c
}

// threshold re-derives the frequent set from the maintained totals. It
// reports ok=false with a reason when a candidate the new frequent set
// needs was never tracked (the border was crossed), in which case the
// caller must fall back to a full run.
func (inc *Incremental) threshold() (*Result, bool, string) {
	minCount := inc.store.AbsoluteSupport(inc.minSupport)
	res := &Result{MinCount: minCount, NumTx: inc.store.Len()}

	// Level 1 is always fully tracked: the pass-1 arrays cover the whole
	// item universe.
	var level []ItemsetCount
	for item, c := range inc.itemTotals {
		if c >= minCount {
			level = append(level, ItemsetCount{Items: transactions.Itemset{item}, Count: c})
		}
	}
	res.Passes = append(res.Passes, PassStat{K: 1, Candidates: len(inc.itemTotals), Frequent: len(level)})
	if len(level) == 0 {
		return res, true, ""
	}
	res.Levels = append(res.Levels, level)

	// Level 2 from the triangular array — tracked only for items that were
	// frequent at the last rebuild (they have an L1 rank).
	if len(level) >= 2 {
		for _, ic := range level {
			item := ic.Items[0]
			if item >= len(inc.rank) || inc.rank[item] < 0 {
				return nil, false, fmt.Sprintf("item %d newly frequent: its pairs were never counted", item)
			}
		}
		n := len(inc.l1Items)
		tri := func(i, j int) int { return i*(2*n-i-1)/2 + (j - i - 1) }
		var l2 []ItemsetCount
		for a := 0; a < len(level); a++ {
			for b := a + 1; b < len(level); b++ {
				i, j := inc.rank[level[a].Items[0]], inc.rank[level[b].Items[0]]
				if c := inc.triTotals[tri(i, j)]; c >= minCount {
					l2 = append(l2, ItemsetCount{
						Items: transactions.Itemset{level[a].Items[0], level[b].Items[0]},
						Count: c,
					})
				}
			}
		}
		res.Passes = append(res.Passes, PassStat{K: 2, Candidates: len(level) * (len(level) - 1) / 2, Frequent: len(l2)})
		if len(l2) == 0 {
			return res, true, ""
		}
		res.Levels = append(res.Levels, l2)
		level = l2
	} else {
		return res, true, ""
	}

	// Levels 3+: candidate generation pruned to the tracked trees. Any
	// candidate outside a tree has an unknown count — border crossed.
	for k := 3; ; k++ {
		cands := aprioriGen(itemsetsOf(level))
		if len(cands) == 0 {
			return res, true, ""
		}
		idx := inc.treeIdx[k]
		totals := inc.treeTotals[k]
		if idx == nil {
			return nil, false, fmt.Sprintf("no tracked candidates of length %d", k)
		}
		level = level[:0:0]
		for _, cand := range cands {
			id, ok := idx[cand.Key()]
			if !ok {
				return nil, false, fmt.Sprintf("candidate %v of length %d was never counted", cand, k)
			}
			if c := totals[id]; c >= minCount {
				level = append(level, ItemsetCount{Items: cand, Count: c})
			}
		}
		res.Passes = append(res.Passes, PassStat{K: k, Candidates: len(cands), Frequent: len(level)})
		if len(level) == 0 {
			return res, true, ""
		}
		res.Levels = append(res.Levels, level)
	}
}

// rebuild runs a full mine over a snapshot at the slack-lowered tracking
// support, refreezes the tracked set (slack-frequent itemsets plus their
// negative border), re-counts every shard into fresh caches, and derives
// the exact result at the real support by re-thresholding — so the next
// update can merge clean-shard counts for free.
func (inc *Incremental) rebuild(ctx context.Context, stats *MaintainStats, reason string) (*Result, MaintainStats, error) {
	stats.FullRun = true
	stats.Reason = reason
	full, err := MineContext(ctx, inc.base(), inc.store.Snapshot(), inc.trackSupport())
	if err != nil {
		// The caches may already hold spliced-in fresh counts from the
		// recount that preceded this rebuild, and threshold() has decided
		// they cannot derive the answer. Drop the maintained state so the
		// next Maintain cannot take the nothing-changed fast path back to
		// the stale result — it must run this full mine again.
		inc.prev = nil
		return nil, *stats, err
	}

	// Freeze the tracked set: L1 ranks for the triangular pass-2 cache,
	// and one hash tree per length >= 3 holding F_k plus the border's
	// k-itemsets.
	inc.rank = make([]int, inc.store.NumItems())
	for i := range inc.rank {
		inc.rank[i] = -1
	}
	inc.l1Items = inc.l1Items[:0]
	if len(full.Levels) > 0 {
		for r, ic := range full.Levels[0] {
			inc.rank[ic.Items[0]] = r
			inc.l1Items = append(inc.l1Items, ic.Items[0])
		}
	}
	byLen := make(map[int][]transactions.Itemset)
	for _, lv := range full.Levels {
		for _, ic := range lv {
			if len(ic.Items) >= 3 {
				byLen[len(ic.Items)] = append(byLen[len(ic.Items)], ic.Items)
			}
		}
	}
	// Border itemsets of length >= 3 only: the triangle already tracks
	// every pair of ranked items, and generating the (often enormous)
	// level-2 border through aprioriGen would dwarf the full mine itself.
	if len(full.Levels) > 1 {
		for _, b := range negativeBorder(full.Levels[1:]) {
			byLen[len(b)] = append(byLen[len(b)], b)
		}
	}
	inc.trees = make(map[int]*hashtree.Tree, len(byLen))
	inc.treeIdx = make(map[int]map[string]int, len(byLen))
	inc.treeTotals = make(map[int][]int, len(byLen))
	for k, sets := range byLen {
		tree := hashtree.New(k)
		idx := make(map[string]int, len(sets))
		for _, s := range sets {
			e, err := tree.Insert(s)
			if err != nil {
				return nil, *stats, err
			}
			idx[s.Key()] = e.ID()
		}
		inc.trees[k] = tree
		inc.treeIdx[k] = idx
		inc.treeTotals[k] = make([]int, tree.Len())
	}

	// Reset totals and re-count every shard into the new structures.
	n := len(inc.l1Items)
	inc.itemTotals = make([]int, inc.store.NumItems())
	inc.triTotals = make([]int, n*(n-1)/2)
	inc.cache = make([]*shardCache, inc.store.NumShards())
	all := make([]int, inc.store.NumShards())
	for i := range all {
		all[i] = i
	}
	rebuildStats := MaintainStats{}
	if err := inc.recount(ctx, all, &rebuildStats); err != nil {
		// The tracked set was already refrozen and the caches reset: drop
		// the maintained state so the next Maintain runs a full mine
		// rather than thresholding half-built totals.
		inc.prev = nil
		return nil, *stats, err
	}
	stats.DirtyShards = len(all)
	stats.RecountedTx = rebuildStats.RecountedTx

	// The real-support answer is a threshold filter of the tracked set:
	// every itemset frequent at minSupport is frequent at the lowered
	// tracking support too, so threshold cannot miss here.
	res, ok, why := inc.threshold()
	if !ok {
		return nil, *stats, fmt.Errorf("assoc: internal: tracked set does not cover its own threshold: %s", why)
	}
	inc.prev = res
	return res, *stats, nil
}
