package assoc

import (
	"context"
	"math/rand"

	"repro/internal/stats"
	"repro/internal/transactions"
)

// Sampling is Toivonen's sampling algorithm (VLDB'96): mine a random
// sample at a lowered support threshold, then verify the sampled frequent
// itemsets and their negative border against the full database in one
// scan. If a negative-border itemset turns out frequent, the sample missed
// part of the answer and the miss is repaired by widening the candidate
// set (rare when the lowered threshold is chosen conservatively).
type Sampling struct {
	// SampleFraction is the fraction of transactions sampled (default 0.2).
	SampleFraction float64
	// LowerFactor scales the support threshold used on the sample
	// (default 0.8, i.e. 20% slack).
	LowerFactor float64
	Seed        int64

	hook PassHook
}

// Name implements Miner.
func (s *Sampling) Name() string { return "Sampling" }

// SetPassHook implements PassObserver. Levels are emitted nil: Toivonen's
// miss-repair step may widen verified levels after their pass event, so
// only the final Result's levels are authoritative.
func (s *Sampling) SetPassHook(h PassHook) { s.hook = h }

// Mine implements Miner.
func (s *Sampling) Mine(db *transactions.DB, minSupport float64) (*Result, error) {
	return s.MineContext(context.Background(), db, minSupport)
}

// MineContext implements ContextMiner.
func (s *Sampling) MineContext(ctx context.Context, db *transactions.DB, minSupport float64) (*Result, error) {
	minCount, err := checkInput(db, minSupport)
	if err != nil {
		return emptyResult(), err
	}
	frac := s.SampleFraction
	if frac <= 0 || frac > 1 {
		frac = 0.2
	}
	lower := s.LowerFactor
	if lower <= 0 || lower > 1 {
		lower = 0.8
	}
	rng := rand.New(rand.NewSource(s.Seed))

	// Draw the sample.
	n := int(frac * float64(db.Len()))
	if n < 1 {
		n = 1
	}
	sample := transactions.NewDB()
	for _, idx := range stats.SampleWithoutReplacement(rng, db.Len(), n) {
		if err := sample.Add(db.Transactions[idx]...); err != nil {
			return nil, err
		}
	}

	// Mine the sample at lowered support, clamped so the absolute count
	// on the sample never drops below 2 — at absolute support 1 every
	// itemset in the sample is "frequent" and the candidate set explodes.
	sampleMinSup := minSupport * lower
	if floor := 2.0 / float64(sample.Len()); sampleMinSup < floor {
		sampleMinSup = floor
	}
	if sampleMinSup > 1 {
		sampleMinSup = 1
	}
	apriori := &Apriori{}
	sampleRes, err := apriori.MineContext(ctx, sample, sampleMinSup)
	if err != nil {
		return nil, err
	}

	// Candidate set: sample-frequent itemsets plus their negative border
	// (the same border computation the FUP-style incremental maintainer
	// uses to decide when its cached candidate set still covers the answer).
	candidates := make(map[string]transactions.Itemset)
	for _, ic := range sampleRes.All() {
		candidates[ic.Items.Key()] = ic.Items
	}
	for _, border := range negativeBorder(sampleRes.Levels) {
		candidates[border.Key()] = border
	}
	// Also include all single items (the level-1 negative border).
	for item := 0; item < db.NumItems(); item++ {
		one := transactions.Itemset{item}
		if _, ok := candidates[one.Key()]; !ok {
			candidates[one.Key()] = one
		}
	}

	res, err := s.verify(ctx, db, candidates, minCount)
	if err != nil {
		return nil, err
	}

	// Miss repair (Toivonen's failure handling): when a negative-border
	// itemset is frequent in the full database, the sample under-covered
	// the answer. Iterate to a fixpoint: regenerate candidates from every
	// verified level, count the ones never counted before, and fold newly
	// frequent itemsets back in. Because the verified set always contains
	// all frequent 1-itemsets, the level-wise closure reaches the exact
	// answer.
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var fresh []transactions.Itemset
		for _, level := range res.Levels {
			for _, c := range aprioriGen(itemsetsOf(level)) {
				if _, ok := candidates[c.Key()]; !ok {
					candidates[c.Key()] = c
					fresh = append(fresh, c)
				}
			}
		}
		if len(fresh) == 0 {
			break
		}
		byLen := make(map[int][]transactions.Itemset)
		for _, c := range fresh {
			byLen[len(c)] = append(byLen[len(c)], c)
		}
		grown := false
		for l, cands := range byLen {
			counted, err := countWithMap(ctx, db, cands, l)
			if err != nil {
				return nil, err
			}
			var newly []ItemsetCount
			for _, ic := range counted {
				if ic.Count >= minCount {
					newly = append(newly, ic)
				}
			}
			if len(newly) == 0 {
				continue
			}
			for len(res.Levels) < l {
				res.Levels = append(res.Levels, nil)
			}
			merged := append(res.Levels[l-1], newly...)
			sortLevel(merged)
			res.Levels[l-1] = merged
			grown = true
		}
		if !grown {
			break
		}
	}
	res.supportIdx = nil // invalidate cache after growth
	return res, nil
}

// verify counts every candidate against the full database and assembles
// the frequent result.
func (s *Sampling) verify(ctx context.Context, db *transactions.DB, candidates map[string]transactions.Itemset, minCount int) (*Result, error) {
	res := &Result{MinCount: minCount, NumTx: db.Len()}
	byLen := make(map[int][]transactions.Itemset)
	maxLen := 0
	for _, is := range candidates {
		byLen[len(is)] = append(byLen[len(is)], is)
		if len(is) > maxLen {
			maxLen = len(is)
		}
	}
	for l := 1; l <= maxLen; l++ {
		cands := byLen[l]
		if len(cands) == 0 {
			break
		}
		counted, err := countWithMap(ctx, db, cands, l)
		if err != nil {
			return nil, err
		}
		var level []ItemsetCount
		for _, ic := range counted {
			if ic.Count >= minCount {
				level = append(level, ic)
			}
		}
		sortLevel(level)
		res.addPass(s.hook, PassStat{K: l, Candidates: len(cands), Frequent: len(level)}, nil)
		if len(level) == 0 {
			break
		}
		res.Levels = append(res.Levels, level)
	}
	return res, nil
}
