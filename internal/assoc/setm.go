package assoc

import (
	"context"
	"sort"

	"repro/internal/transactions"
)

// SETM is the set-oriented miner of Houtsma & Swami (1995), designed to be
// expressible in SQL. It carries L̄k — the full multiset of (tid, itemset)
// occurrences of frequent k-itemsets — joins it with the transaction table
// to extend each occurrence by later items of the same transaction, then
// aggregates the resulting (tid, candidate) tuples to counts. Materialising
// every occurrence tuple is what makes SETM slow and memory-hungry at low
// supports, the behaviour EXP-A1 reproduces.
type SETM struct {
	hook PassHook
}

// Name implements Miner.
func (s *SETM) Name() string { return "SETM" }

// SetPassHook implements PassObserver. Every emitted level is final.
func (s *SETM) SetPassHook(h PassHook) { s.hook = h }

// setmTuple is one occurrence of an itemset in a transaction.
type setmTuple struct {
	tid   int
	items transactions.Itemset
}

// Mine implements Miner.
func (s *SETM) Mine(db *transactions.DB, minSupport float64) (*Result, error) {
	return s.MineContext(context.Background(), db, minSupport)
}

// MineContext implements ContextMiner.
func (s *SETM) MineContext(ctx context.Context, db *transactions.DB, minSupport float64) (*Result, error) {
	minCount, err := checkInput(db, minSupport)
	if err != nil {
		return emptyResult(), err
	}
	res := &Result{MinCount: minCount, NumTx: db.Len()}

	// Pass 1: occurrence tuples for frequent single items.
	level, err := frequentOne(ctx, db, minCount)
	if err != nil {
		return nil, err
	}
	res.addPass(s.hook, PassStat{K: 1, Candidates: db.NumItems(), Frequent: len(level)}, level)
	if len(level) == 0 {
		return res, nil
	}
	res.Levels = append(res.Levels, level)

	freq1 := make(map[int]struct{}, len(level))
	for _, ic := range level {
		freq1[ic.Items[0]] = struct{}{}
	}
	var tuples []setmTuple
	for tid, tx := range db.Transactions {
		for _, item := range tx {
			if _, ok := freq1[item]; ok {
				tuples = append(tuples, setmTuple{tid: tid, items: transactions.Itemset{item}})
			}
		}
	}

	for k := 2; len(tuples) > 0; k++ {
		// Join L̄k-1 with the transaction table on tid: extend each
		// occurrence by every transaction item after its maximum.
		var next []setmTuple
		counts := make(map[string]int)
		for ti, tu := range tuples {
			if ti%ctxStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			tx := db.Transactions[tu.tid]
			maxItem := tu.items[len(tu.items)-1]
			start := sort.SearchInts(tx, maxItem+1)
			for _, item := range tx[start:] {
				ext := make(transactions.Itemset, len(tu.items)+1)
				copy(ext, tu.items)
				ext[len(tu.items)] = item
				next = append(next, setmTuple{tid: tu.tid, items: ext})
				counts[ext.Key()]++
			}
		}
		// Aggregate to counts, filter, and keep only occurrences of
		// frequent candidates (the SQL HAVING + join back).
		level = nil
		for key, c := range counts {
			if c >= minCount {
				level = append(level, ItemsetCount{Items: parseKey(key), Count: c})
			}
		}
		sortLevel(level)
		res.addPass(s.hook, PassStat{K: k, Candidates: len(counts), Frequent: len(level)}, level)
		if len(level) == 0 {
			break
		}
		res.Levels = append(res.Levels, level)
		freqKeys := make(map[string]struct{}, len(level))
		for _, ic := range level {
			freqKeys[ic.Items.Key()] = struct{}{}
		}
		tuples = tuples[:0]
		for _, tu := range next {
			if _, ok := freqKeys[tu.items.Key()]; ok {
				tuples = append(tuples, tu)
			}
		}
	}
	return res, nil
}
