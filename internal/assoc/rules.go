package assoc

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/transactions"
)

// Rule is an association rule Antecedent => Consequent with its quality
// measures. Support is the absolute support of the union; Confidence is
// support(union)/support(antecedent); Lift is confidence divided by the
// consequent's relative support.
type Rule struct {
	Antecedent transactions.Itemset
	Consequent transactions.Itemset
	Support    int
	Confidence float64
	Lift       float64
}

// String renders the rule as "{a} => {b} (sup=…, conf=…, lift=…)".
func (r Rule) String() string {
	return fmt.Sprintf("%v => %v (sup=%d, conf=%.3f, lift=%.3f)",
		r.Antecedent, r.Consequent, r.Support, r.Confidence, r.Lift)
}

// ErrBadConfidence reports an out-of-range minimum confidence.
var ErrBadConfidence = errors.New("assoc: minimum confidence must be in (0, 1]")

// GenerateRules derives all rules meeting minConfidence from the frequent
// itemsets of res, using the VLDB'94 ap-genrules procedure: for each
// frequent itemset, 1-item consequents are tested first and larger
// consequents are grown with aprioriGen, exploiting the fact that moving
// items from the antecedent to the consequent can only lower confidence.
// Rules are returned sorted by descending confidence, then descending
// support, then antecedent order, for deterministic output.
func GenerateRules(res *Result, minConfidence float64) ([]Rule, error) {
	if minConfidence <= 0 || minConfidence > 1 {
		return nil, fmt.Errorf("%w: %v", ErrBadConfidence, minConfidence)
	}
	if res == nil || res.NumTx == 0 {
		return nil, ErrEmptyDB
	}
	var rules []Rule
	for k := 2; k <= res.MaxLevel(); k++ {
		for _, ic := range res.Levels[k-1] {
			rules = appendRulesFor(res, ic, minConfidence, rules)
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		a, b := rules[i], rules[j]
		if a.Confidence != b.Confidence {
			return a.Confidence > b.Confidence
		}
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if c := a.Antecedent.Compare(b.Antecedent); c != 0 {
			return c < 0
		}
		return a.Consequent.Compare(b.Consequent) < 0
	})
	return rules, nil
}

// appendRulesFor emits the rules of a single frequent itemset.
func appendRulesFor(res *Result, ic ItemsetCount, minConf float64, rules []Rule) []Rule {
	// Start with all 1-item consequents that pass the confidence bar.
	var consequents []transactions.Itemset
	for _, item := range ic.Items {
		cons := transactions.Itemset{item}
		if r, ok := makeRule(res, ic, cons, minConf); ok {
			rules = append(rules, r)
			consequents = append(consequents, cons)
		}
	}
	// Grow consequents: a consequent of size m+1 can only pass if all its
	// m-subsets passed, so aprioriGen applies directly.
	for len(consequents) > 0 && len(consequents[0])+1 < len(ic.Items) {
		next := aprioriGen(consequents)
		consequents = consequents[:0]
		for _, cons := range next {
			if r, ok := makeRule(res, ic, cons, minConf); ok {
				rules = append(rules, r)
				consequents = append(consequents, cons)
			}
		}
	}
	return rules
}

// makeRule builds the rule ic.Items \ cons => cons if it meets minConf.
func makeRule(res *Result, ic ItemsetCount, cons transactions.Itemset, minConf float64) (Rule, bool) {
	ante := diff(ic.Items, cons)
	anteSup, ok := res.Support(ante)
	if !ok || anteSup == 0 {
		return Rule{}, false
	}
	conf := float64(ic.Count) / float64(anteSup)
	if conf < minConf {
		return Rule{}, false
	}
	consSup, ok := res.Support(cons)
	lift := 0.0
	if ok && consSup > 0 {
		lift = conf / (float64(consSup) / float64(res.NumTx))
	}
	return Rule{
		Antecedent: ante,
		Consequent: cons,
		Support:    ic.Count,
		Confidence: conf,
		Lift:       lift,
	}, true
}

// diff returns the sorted set difference a \ b.
func diff(a, b transactions.Itemset) transactions.Itemset {
	out := make(transactions.Itemset, 0, len(a))
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j < len(b) && b[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}
