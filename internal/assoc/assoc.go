// Package assoc implements the first generation of association-rule mining
// algorithms surveyed by the SIGMOD'96 tutorial:
//
//   - AIS (Agrawal, Imielinski & Swami, SIGMOD'93)
//   - SETM (Houtsma & Swami, 1995)
//   - Apriori, AprioriTid and AprioriHybrid (Agrawal & Srikant, VLDB'94)
//   - Partition (Savasere, Omiecinski & Navathe, VLDB'95)
//   - DHP, direct hashing and pruning (Park, Chen & Yu, SIGMOD'95)
//
// plus Eclat's vertical-layout mining, Toivonen's Sampling, the
// candidate-free FP-growth successor (FPGrowth over internal/fptree, with
// an Auto dispatch that picks the expected-fastest engine per workload),
// confidence/lift rule generation (the ap-genrules procedure), and
// FUP-style incremental maintenance (Incremental) over an updatable
// sharded store.
//
// All miners produce identical frequent-itemset results on the same input —
// a property the test suite checks — and differ only in how much work they
// do, which is what the EXP-A benchmarks measure. The level-wise miners
// cost O(passes × |D| × candidate-tests) where the hash tree bounds each
// transaction's candidate tests; Eclat replaces rescans with tid-set
// intersections, O(sum of joined list lengths) per candidate.
//
// Support counting follows the shard/count/merge contract (parallel.go):
// the database splits into contiguous shards, every counting structure
// (flat pass-1 arrays, the triangular pass-2 pair array, hash-tree count
// buffers) fills per shard, and merging is commutative integer addition —
// so distributed, parallel and incremental counts are all bit-identical to
// a serial scan. The incremental maintainer adds one more consequence:
// integer addition is invertible, so a dirty shard's stale counts can be
// subtracted back out and only changed shards are ever re-scanned.
//
// Every registered miner additionally implements ContextMiner (hot loops
// poll the context every ctxStride transactions, so cancellation returns
// promptly without goroutine leaks) and PassObserver (a hook observes each
// completed pass) — the contract the public mining package builds its
// cancellation, progress and streaming features on. This package stays
// internal; programs use the module-root mining facade.
package assoc

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/transactions"
)

// ItemsetCount pairs a frequent itemset with its absolute support.
type ItemsetCount struct {
	Items transactions.Itemset
	Count int
}

// PassStat records the work of one level-wise pass.
type PassStat struct {
	K          int // itemset length of the pass
	Candidates int // candidates counted in the pass
	Frequent   int // candidates that met minimum support
	// Degraded marks a pass the distributed engine served through its
	// local fallback after losing every worker — the counts are still
	// exact, but nothing ran remotely. Always false on local engines.
	Degraded bool
}

// Result is the output of any miner in this package.
type Result struct {
	MinCount int // absolute minimum support used
	NumTx    int // transactions in the mined database
	// Levels[k-1] holds the frequent k-itemsets in lexicographic order.
	Levels [][]ItemsetCount
	Passes []PassStat

	supportIdx map[string]int
}

// Errors shared by the miners.
var (
	ErrBadSupport = errors.New("assoc: minimum support must be in (0, 1]")
	ErrEmptyDB    = errors.New("assoc: empty transaction database")
)

// Miner is the common interface of all association miners.
type Miner interface {
	// Name identifies the algorithm, e.g. "Apriori".
	Name() string
	// Mine finds all itemsets with relative support >= minSupport.
	Mine(db *transactions.DB, minSupport float64) (*Result, error)
}

// ContextMiner is a Miner whose hot loops honour context cancellation:
// MineContext returns ctx.Err() promptly (within one counting stride or one
// pass fan-out, whichever is shorter) once ctx is done, leaking no
// goroutines. Every registered miner implements it; Mine is MineContext
// under context.Background().
type ContextMiner interface {
	Miner
	MineContext(ctx context.Context, db *transactions.DB, minSupport float64) (*Result, error)
}

// MineContext mines db with m under ctx. Miners implementing ContextMiner
// get the context threaded through their counting loops; for any other
// Miner the context is only checked up front, since a foreign Mine cannot
// be interrupted mid-pass.
func MineContext(ctx context.Context, m Miner, db *transactions.DB, minSupport float64) (*Result, error) {
	if cm, ok := m.(ContextMiner); ok {
		return cm.MineContext(ctx, db, minSupport)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m.Mine(db, minSupport)
}

// PassHook observes a completed counting pass: stat describes the pass and
// level holds its frequent itemsets in canonical order. Engines pass a nil
// level when the pass's itemsets are not final at emission time (pattern
// growth assembles levels only at the end; Toivonen's repair step may widen
// verified levels afterwards) — consumers must treat a nil level as "read
// it from the final Result". Hooks run on the engine's coordinating
// goroutine, never concurrently with themselves.
type PassHook func(stat PassStat, level []ItemsetCount)

// PassObserver is implemented by miners that report pass completion to a
// hook — every registered miner. The public mining package uses it for
// progress reporting and result streaming.
type PassObserver interface {
	SetPassHook(PassHook)
}

// addPass records a completed pass on r and notifies hook, the single
// emission point every engine routes through so pass stats and hook events
// cannot diverge.
func (r *Result) addPass(hook PassHook, stat PassStat, level []ItemsetCount) {
	r.Passes = append(r.Passes, stat)
	if hook != nil {
		hook(stat, level)
	}
}

// All returns every frequent itemset across levels, in level order.
func (r *Result) All() []ItemsetCount {
	var out []ItemsetCount
	for _, level := range r.Levels {
		out = append(out, level...)
	}
	return out
}

// NumFrequent returns the total number of frequent itemsets.
func (r *Result) NumFrequent() int {
	n := 0
	for _, level := range r.Levels {
		n += len(level)
	}
	return n
}

// MaxLevel returns the length of the longest frequent itemset.
func (r *Result) MaxLevel() int { return len(r.Levels) }

// Support returns the absolute support of s if s is frequent.
func (r *Result) Support(s transactions.Itemset) (int, bool) {
	if r.supportIdx == nil {
		r.supportIdx = make(map[string]int, r.NumFrequent())
		for _, ic := range r.All() {
			r.supportIdx[ic.Items.Key()] = ic.Count
		}
	}
	c, ok := r.supportIdx[s.Key()]
	return c, ok
}

// Canonical returns a deterministic byte encoding of the frequent levels
// (one "items:count" line per itemset, in level then lexicographic order).
// Two results encode identically iff they found the same itemsets with the
// same supports, which is how the incremental-maintenance property tests
// and dmine's -verify mode check byte-identity against a from-scratch run.
func (r *Result) Canonical() []byte {
	var out []byte
	for _, level := range r.Levels {
		for _, ic := range level {
			out = append(out, ic.Items.Key()...)
			out = append(out, ':')
			out = append(out, fmt.Sprintf("%d", ic.Count)...)
			out = append(out, '\n')
		}
	}
	return out
}

// checkInput validates the shared Mine preconditions and returns the
// absolute support count.
func checkInput(db *transactions.DB, minSupport float64) (int, error) {
	if minSupport <= 0 || minSupport > 1 {
		return 0, fmt.Errorf("%w: %v", ErrBadSupport, minSupport)
	}
	if db == nil || db.Len() == 0 {
		return 0, ErrEmptyDB
	}
	return db.AbsoluteSupport(minSupport), nil
}

// emptyResult is the canonical degenerate Result every miner returns
// alongside a checkInput error (empty database, out-of-range support):
// zero-valued, no levels, no passes, Canonical() == "". Degenerate inputs
// thus behave identically across engines — callers that test the error get
// the usual sentinel, and callers that only read the Result get a usable
// empty one instead of a nil dereference. The cross-engine degenerate
// table test pins this contract.
func emptyResult() *Result { return &Result{} }

// frequentOne computes L1 by a counting scan, returned in item order.
func frequentOne(ctx context.Context, db *transactions.DB, minCount int) ([]ItemsetCount, error) {
	return frequentOneWorkers(ctx, db, minCount, 1)
}

// sortLevel orders a level lexicographically in place.
func sortLevel(level []ItemsetCount) {
	sort.Slice(level, func(i, j int) bool {
		return level[i].Items.Compare(level[j].Items) < 0
	})
}

// AprioriGen exposes the VLDB'94 candidate generation for reuse by the
// sequential-pattern miners (AprioriAll's litemset phase uses the same
// join/prune step). prev must be sorted lexicographically.
func AprioriGen(prev []transactions.Itemset) []transactions.Itemset {
	return aprioriGen(prev)
}

// aprioriGen implements the VLDB'94 candidate generation: the self-join of
// L_{k-1} on the first k-2 items, followed by the subset-pruning step that
// removes candidates with an infrequent (k-1)-subset. prev must be sorted
// lexicographically. The returned candidates are sorted.
func aprioriGen(prev []transactions.Itemset) []transactions.Itemset {
	if len(prev) == 0 {
		return nil
	}
	k := len(prev[0]) + 1
	prevSet := make(map[string]struct{}, len(prev))
	for _, p := range prev {
		prevSet[p.Key()] = struct{}{}
	}
	var cands []transactions.Itemset
	for i := 0; i < len(prev); i++ {
		for j := i + 1; j < len(prev); j++ {
			a, b := prev[i], prev[j]
			if !samePrefix(a, b, k-2) {
				break // prev is sorted: once prefixes diverge, no more joins for i
			}
			// Join: a ++ last(b); a < b lexicographically so order holds.
			cand := make(transactions.Itemset, k)
			copy(cand, a)
			cand[k-1] = b[k-2]
			if hasAllSubsetsFrequent(cand, prevSet) {
				cands = append(cands, cand)
			}
		}
	}
	return cands
}

func samePrefix(a, b transactions.Itemset, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hasAllSubsetsFrequent checks the Apriori prune: every (k-1)-subset of
// cand must be in prevSet. The two subsets that formed the join are
// members by construction, so only the others need testing, but testing
// all keeps the code simple and the cost is identical asymptotically.
func hasAllSubsetsFrequent(cand transactions.Itemset, prevSet map[string]struct{}) bool {
	buf := make(transactions.Itemset, 0, len(cand)-1)
	for drop := range cand {
		buf = buf[:0]
		for i, v := range cand {
			if i != drop {
				buf = append(buf, v)
			}
		}
		if _, ok := prevSet[buf.Key()]; !ok {
			return false
		}
	}
	return true
}

// itemsetsOf extracts the itemsets of a level.
func itemsetsOf(level []ItemsetCount) []transactions.Itemset {
	out := make([]transactions.Itemset, len(level))
	for i, ic := range level {
		out[i] = ic.Items
	}
	return out
}
