package assoc

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/fptree"
	"repro/internal/transactions"
)

// FPGrowth is the pattern-growth miner of Han, Pei & Yin (SIGMOD 2000) —
// the candidate-free counterpart of the level-wise family: instead of
// generating and counting candidate sets pass by pass, it compresses the
// database into an FP-tree (internal/fptree) and grows frequent itemsets
// by recursive conditional projection. At low support this sidesteps the
// candidate explosion entirely, which is what EXP-P3 measures.
//
// The tree build follows the shard → count → merge contract: with Workers
// > 1 each worker builds a private tree over one contiguous shard and the
// trees merge by serial path-wise integer addition, so the global tree's
// counts are bit-identical to a single-threaded build. Mining then fans
// the per-item conditional projections out across workers (each frequent
// item's patterns are disjoint from every other's), with a single-path
// shortcut that enumerates subset patterns without further projection and
// a per-worker fptree.Scratch recycling buffers and conditional trees
// across the recursion. Results are byte-identical to Apriori's in
// canonical order, a property the tests pin at workers 1, 2 and 8.
type FPGrowth struct {
	// Workers bounds the goroutines used for the pass-1 count scan, the
	// per-shard tree builds and the per-item projection fan-out; <= 1 runs
	// serially with identical results.
	Workers int

	hook PassHook
}

// Name implements Miner.
func (f *FPGrowth) Name() string { return "FPGrowth" }

// SetWorkers implements WorkerSetter.
func (f *FPGrowth) SetWorkers(n int) { f.Workers = n }

// SetPassHook implements PassObserver. Pattern growth assembles levels
// only after all projections finish, so the pass-1 event carries a nil
// level and later passes are emitted in one burst at the end.
func (f *FPGrowth) SetPassHook(h PassHook) { f.hook = h }

// Mine implements Miner.
func (f *FPGrowth) Mine(db *transactions.DB, minSupport float64) (*Result, error) {
	return f.MineContext(context.Background(), db, minSupport)
}

// MineContext implements ContextMiner.
func (f *FPGrowth) MineContext(ctx context.Context, db *transactions.DB, minSupport float64) (*Result, error) {
	minCount, err := checkInput(db, minSupport)
	if err != nil {
		return emptyResult(), err
	}
	res := &Result{MinCount: minCount, NumTx: db.Len()}

	counts, err := countItems(ctx, db, f.Workers)
	if err != nil {
		return nil, err
	}
	ranks := fptree.NewRanks(counts, minCount)
	res.addPass(f.hook, PassStat{K: 1, Candidates: db.NumItems(), Frequent: ranks.Len()}, nil)
	if ranks.Len() == 0 {
		return res, nil
	}
	tree, err := buildTree(ctx, db, ranks, f.Workers)
	if err != nil {
		return nil, err
	}

	perRank, err := f.minePerRank(ctx, tree, minCount)
	if err != nil {
		return nil, err
	}
	assembleGrowthLevels(res, f.hook, perRank, false)
	return res, nil
}

// assembleGrowthLevels groups the per-rank pattern buckets by itemset
// length into canonical sorted levels. The buckets are disjoint, so
// concatenation order cannot change the sorted levels — workers (and, for
// the distributed engine, shard placement) only affect wall-clock time.
// Each level's pass event fires once the level is sorted, i.e. final.
// degraded stamps every emitted pass (the distributed engine's fallback
// marker; local engines pass false).
func assembleGrowthLevels(res *Result, hook PassHook, perRank [][]ItemsetCount, degraded bool) {
	for _, bucket := range perRank {
		for _, ic := range bucket {
			k := len(ic.Items)
			for len(res.Levels) < k {
				res.Levels = append(res.Levels, nil)
			}
			res.Levels[k-1] = append(res.Levels[k-1], ic)
		}
	}
	if len(res.Levels) == 0 {
		return
	}
	for k := 2; k <= len(res.Levels); k++ {
		sortLevel(res.Levels[k-1])
		// Pattern growth generates no candidate sets; the per-pass stat
		// mirrors the frequent count so pass tables stay comparable.
		res.addPass(hook, PassStat{K: k, Candidates: len(res.Levels[k-1]), Frequent: len(res.Levels[k-1]), Degraded: degraded}, res.Levels[k-1])
	}
	sortLevel(res.Levels[0])
}

// buildTree constructs the global FP-tree: per-shard private builds when
// workers > 1, merged serially into shard 0's tree.
func buildTree(ctx context.Context, db *transactions.DB, ranks *fptree.Ranks, workers int) (*fptree.Tree, error) {
	if workers <= 1 {
		t := fptree.Build(db.Transactions, ranks)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return t, nil
	}
	trees := make([]*fptree.Tree, workers)
	if err := forEachShard(ctx, db, workers, func(shard int, sh transactions.Shard) {
		trees[shard] = fptree.Build(sh.Transactions, ranks)
	}); err != nil {
		return nil, err
	}
	var global *fptree.Tree
	for _, t := range trees {
		switch {
		case t == nil:
		case global == nil:
			global = t
		default:
			global.Merge(t)
		}
	}
	if global == nil {
		global = fptree.New(ranks)
	}
	return global, nil
}

// minePerRank mines every frequent item's conditional patterns, returning
// one bucket per rank. With Workers > 1 the ranks are pulled by workers
// from an atomic cursor — each rank's patterns are independent given the
// read-only global tree, so this is the projection analogue of count
// distribution. Workers poll ctx per rank (and growPatterns polls per
// projection), so cancellation surfaces within one conditional mine.
func (f *FPGrowth) minePerRank(ctx context.Context, tree *fptree.Tree, minCount int) ([][]ItemsetCount, error) {
	ranks := tree.Ranks()
	n := ranks.Len()
	perRank := make([][]ItemsetCount, n)
	mineOne := func(rk int, s *fptree.Scratch) {
		var out []ItemsetCount
		item := int(ranks.Items[rk])
		out = append(out, ItemsetCount{
			Items: transactions.Itemset{item},
			Count: tree.Total(int32(rk)),
		})
		cond := tree.Project(int32(rk), minCount, s)
		if !cond.Empty() {
			out = growPatterns(ctx, cond, minCount, []int{item}, s, out)
		}
		s.Release(cond)
		perRank[rk] = out
	}

	workers := f.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		s := fptree.NewScratch(ranks)
		for rk := 0; rk < n; rk++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			mineOne(rk, s)
		}
		return perRank, ctx.Err()
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := fptree.NewScratch(ranks)
			for {
				rk := int(cursor.Add(1)) - 1
				if rk >= n || ctx.Err() != nil {
					return
				}
				mineOne(rk, s)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return perRank, nil
}

// growPatterns recursively mines a conditional tree: suffix is the pattern
// mined so far (item ids, in growth order — emitted itemsets are
// re-sorted canonically), out accumulates the results. The single-path
// shortcut replaces the recursion with subset enumeration as soon as the
// conditional tree degenerates to one chain. ctx is polled once per
// projection: a cancelled mine stops descending and its partial bucket is
// discarded by minePerRank's caller.
func growPatterns(ctx context.Context, t *fptree.Tree, minCount int, suffix []int, s *fptree.Scratch, out []ItemsetCount) []ItemsetCount {
	if ctx.Err() != nil {
		return out
	}
	ranks := t.Ranks()
	if path, pcounts, ok := t.SinglePath(s); ok {
		return emitPathSubsets(ranks, path, pcounts, suffix, out)
	}
	// Least-frequent first, mirroring the paper's bottom-up header sweep.
	// Present lists only the pattern base's surviving ranks, so the sweep
	// is O(ranks in this conditional tree), not O(|L1|).
	present := t.Present()
	for i := len(present) - 1; i >= 0; i-- {
		rk := present[i]
		total := t.Total(rk)
		pattern := append(suffix, int(ranks.Items[rk]))
		out = append(out, ItemsetCount{Items: transactions.NewItemset(pattern...), Count: total})
		cond := t.Project(rk, minCount, s)
		if !cond.Empty() {
			out = growPatterns(ctx, cond, minCount, pattern, s, out)
		}
		s.Release(cond)
	}
	return out
}

// emitPathSubsets emits suffix ∪ S for every non-empty subset S of a
// single-path tree's chain. Counts are non-increasing down the chain, so a
// subset's exact support is its deepest member's count — no projections
// needed. The chain items are all frequent in this conditional context, so
// every emitted pattern meets minCount by construction.
func emitPathSubsets(ranks *fptree.Ranks, path []int32, pcounts []int, suffix []int, out []ItemsetCount) []ItemsetCount {
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		for i := start; i < len(path); i++ {
			next := append(cur, int(ranks.Items[path[i]]))
			out = append(out, ItemsetCount{Items: transactions.NewItemset(next...), Count: pcounts[i]})
			rec(i+1, next)
		}
	}
	rec(0, suffix)
	return out
}
