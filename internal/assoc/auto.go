package assoc

import (
	"context"
	"sync/atomic"

	"repro/internal/transactions"
)

// Auto dispatches each Mine call to the expected-fastest engine for the
// workload, chosen from a cheap pass-1 scan (every miner repeats that scan
// anyway, so probing costs one pass):
//
//   - genuinely dense frequent items (mean tid-list density >=
//     AutoDensityCutoff over at least AutoMinDenseItems of them): Eclat in
//     the bitset layout — word-wise AND + popcount intersections are the
//     measured winner on dense data (EXP-P1's layout ablation);
//   - a large frequent-item universe, where level-wise pair candidates
//     (|L1|^2/2) dwarf the database scan: FPGrowth — pattern growth never
//     materialises candidates (EXP-P3);
//   - otherwise: Apriori — for small frequent universes the triangular
//     pass-2 array and hash tree are cheap and scan-bound.
//
// Every engine returns identical results, so the dispatch only moves
// wall-clock time; the registry equivalence tests cover Auto like any
// other miner.
type Auto struct {
	// Workers is forwarded to whichever engine is selected.
	Workers int

	hook     PassHook
	selected atomic.Value // string: engine name of the last Select/Mine
}

// AutoDensityCutoff is the mean frequent-item density above which Auto
// prefers the bitset Eclat engine. It is deliberately higher than Eclat's
// own DefaultDensityCutoff: that constant decides bitsets vs tid-lists
// inside Eclat, this one decides whether the workload is dense enough for
// vertical intersections to beat the other engine families outright.
const AutoDensityCutoff = 1.0 / 16

// AutoMinDenseItems is the minimum frequent-item count for the dense arm:
// below it every engine is scan-bound and tiny databases would otherwise
// read as "dense" by ratio alone.
const AutoMinDenseItems = 8

// Name implements Miner.
func (a *Auto) Name() string { return "Auto" }

// SetWorkers implements WorkerSetter.
func (a *Auto) SetWorkers(n int) { a.Workers = n }

// SetPassHook implements PassObserver; the hook is forwarded to whichever
// engine the dispatch selects, so its level semantics are the engine's.
func (a *Auto) SetPassHook(h PassHook) { a.hook = h }

// Selected returns the engine name the last Select or Mine dispatched to
// ("" before the first call). It is safe to read after a concurrent Mine.
func (a *Auto) Selected() string {
	if s, ok := a.selected.Load().(string); ok {
		return s
	}
	return ""
}

// Select runs the dispatch heuristic and returns the chosen engine without
// mining. Mine is Select followed by the engine's Mine.
func (a *Auto) Select(db *transactions.DB, minSupport float64) (Miner, error) {
	return a.SelectContext(context.Background(), db, minSupport)
}

// SelectContext is Select with the probe scan under ctx.
func (a *Auto) SelectContext(ctx context.Context, db *transactions.DB, minSupport float64) (Miner, error) {
	minCount, err := checkInput(db, minSupport)
	if err != nil {
		return nil, err
	}
	counts, err := countItems(ctx, db, a.Workers)
	if err != nil {
		return nil, err
	}
	nFreq, totalTids := 0, 0
	for _, c := range counts {
		if c >= minCount {
			nFreq++
			totalTids += c
		}
	}
	var m Miner
	name := ""
	switch {
	case nFreq == 0:
		m = &Apriori{Workers: a.Workers}
	case nFreq >= AutoMinDenseItems && float64(totalTids)/float64(nFreq*db.Len()) >= AutoDensityCutoff:
		m = &Eclat{Layout: LayoutBitset, Workers: a.Workers}
		name = "Eclat(bitset)"
	case nFreq*(nFreq-1)/2 > 4*db.Len():
		m = &FPGrowth{Workers: a.Workers}
	default:
		m = &Apriori{Workers: a.Workers}
	}
	if name == "" {
		name = m.Name()
	}
	a.selected.Store(name)
	return m, nil
}

// Mine implements Miner by dispatching to the selected engine.
func (a *Auto) Mine(db *transactions.DB, minSupport float64) (*Result, error) {
	return a.MineContext(context.Background(), db, minSupport)
}

// MineContext implements ContextMiner: SelectContext followed by the
// chosen engine's MineContext, with the pass hook forwarded.
func (a *Auto) MineContext(ctx context.Context, db *transactions.DB, minSupport float64) (*Result, error) {
	m, err := a.SelectContext(ctx, db, minSupport)
	if err != nil {
		return emptyResult(), err
	}
	if a.hook != nil {
		if po, ok := m.(PassObserver); ok {
			po.SetPassHook(a.hook)
		}
	}
	return MineContext(ctx, m, db, minSupport)
}
