package assoc

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/synth"
	"repro/internal/transactions"
)

func minedPaper(t *testing.T) *Result {
	t.Helper()
	res, err := (&Apriori{}).Mine(paperDB(t), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGenerateRulesKnownValues(t *testing.T) {
	res := minedPaper(t)
	rules, err := GenerateRules(res, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// From {2,5} sup 3: 2=>5 conf 3/3=1.0; 5=>2 conf 3/3=1.0.
	// From {2,3,5} sup 2: 3=>2,5? support(3)=3 conf 2/3 <0.9 excluded;
	// {2,3}=>5 conf 2/2=1.0; {3,5}=>2 conf 2/2=1.0; {2,5}=>3 conf 2/3 no.
	// From {1,3}: 1=>3 conf 2/2=1.0; 3=>1 conf 2/3 no.
	// From {2,3}: 2=>3 conf 2/3; 3=>2 conf 2/3 no. {3,5}: both 2/3 no.
	want := map[string]bool{
		"{2} => {5}":    true,
		"{5} => {2}":    true,
		"{1} => {3}":    true,
		"{2, 3} => {5}": true,
		"{3, 5} => {2}": true,
	}
	if len(rules) != len(want) {
		var got []string
		for _, r := range rules {
			got = append(got, r.String())
		}
		t.Fatalf("rules = %v, want %d", got, len(want))
	}
	for _, r := range rules {
		key := r.Antecedent.String() + " => " + r.Consequent.String()
		if !want[key] {
			t.Errorf("unexpected rule %s", r)
		}
		if r.Confidence < 0.9 {
			t.Errorf("rule %s below min confidence", r)
		}
	}
}

func TestRuleLift(t *testing.T) {
	res := minedPaper(t)
	rules, err := GenerateRules(res, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Antecedent.String() == "{2}" && r.Consequent.String() == "{5}" {
			// conf 1.0, support(5)/N = 3/4 => lift 4/3.
			if math.Abs(r.Lift-4.0/3.0) > 1e-12 {
				t.Errorf("lift = %v, want 4/3", r.Lift)
			}
			return
		}
	}
	t.Fatal("rule {2}=>{5} not found")
}

func TestGenerateRulesSortedByConfidence(t *testing.T) {
	res := minedPaper(t)
	rules, err := GenerateRules(res, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence {
			t.Fatalf("rules not sorted at %d", i)
		}
	}
}

func TestGenerateRulesConfidenceCorrect(t *testing.T) {
	// Every emitted rule's confidence must equal sup(union)/sup(antecedent)
	// computed from scratch.
	db, err := synth.Baskets(synth.TxI(6, 2, 200, 61))
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Apriori{}).Mine(db, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := GenerateRules(res, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		union := r.Antecedent.Union(r.Consequent)
		wantSup := db.Support(union)
		if r.Support != wantSup {
			t.Errorf("rule %s support = %d, want %d", r, r.Support, wantSup)
		}
		anteSup := db.Support(r.Antecedent)
		wantConf := float64(wantSup) / float64(anteSup)
		if math.Abs(r.Confidence-wantConf) > 1e-12 {
			t.Errorf("rule %s confidence = %v, want %v", r, r.Confidence, wantConf)
		}
		if r.Confidence < 0.4 {
			t.Errorf("rule %s below threshold", r)
		}
	}
}

func TestGenerateRulesComplete(t *testing.T) {
	// Cross-check against brute-force enumeration of all antecedent
	// partitions of every frequent itemset.
	res := minedPaper(t)
	rules, err := GenerateRules(res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, r := range rules {
		got[r.Antecedent.Key()+"=>"+r.Consequent.Key()] = true
	}
	count := 0
	for _, ic := range res.All() {
		if len(ic.Items) < 2 {
			continue
		}
		n := len(ic.Items)
		for mask := 1; mask < (1<<n)-1; mask++ {
			var ante, cons transactions.Itemset
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					ante = append(ante, ic.Items[b])
				} else {
					cons = append(cons, ic.Items[b])
				}
			}
			anteSup, ok := res.Support(ante)
			if !ok {
				t.Fatalf("antecedent %v not frequent", ante)
			}
			conf := float64(ic.Count) / float64(anteSup)
			key := ante.Key() + "=>" + cons.Key()
			if conf >= 0.5 {
				count++
				if !got[key] {
					t.Errorf("missing rule %v => %v (conf %v)", ante, cons, conf)
				}
			} else if got[key] {
				t.Errorf("rule %v => %v should not pass (conf %v)", ante, cons, conf)
			}
		}
	}
	if len(rules) != count {
		t.Errorf("rule count = %d, brute force = %d", len(rules), count)
	}
}

func TestGenerateRulesValidation(t *testing.T) {
	res := minedPaper(t)
	if _, err := GenerateRules(res, 0); !errors.Is(err, ErrBadConfidence) {
		t.Errorf("conf 0 error = %v", err)
	}
	if _, err := GenerateRules(res, 1.1); !errors.Is(err, ErrBadConfidence) {
		t.Errorf("conf 1.1 error = %v", err)
	}
	if _, err := GenerateRules(nil, 0.5); !errors.Is(err, ErrEmptyDB) {
		t.Errorf("nil result error = %v", err)
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		Antecedent: transactions.NewItemset(1),
		Consequent: transactions.NewItemset(2),
		Support:    3, Confidence: 0.75, Lift: 1.5,
	}
	s := r.String()
	for _, frag := range []string{"{1}", "{2}", "sup=3", "conf=0.750", "lift=1.500"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestDiff(t *testing.T) {
	a := transactions.NewItemset(1, 2, 3, 4)
	b := transactions.NewItemset(2, 4)
	if got := diff(a, b); !got.Equal(transactions.NewItemset(1, 3)) {
		t.Errorf("diff = %v", got)
	}
	if got := diff(a, transactions.NewItemset()); !got.Equal(a) {
		t.Errorf("diff empty = %v", got)
	}
}
