package assoc

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/synth"
	"repro/internal/transactions"
)

func minedPaper(t *testing.T) *Result {
	t.Helper()
	res, err := (&Apriori{}).Mine(paperDB(t), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGenerateRulesKnownValues(t *testing.T) {
	res := minedPaper(t)
	rules, err := GenerateRules(res, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// From {2,5} sup 3: 2=>5 conf 3/3=1.0; 5=>2 conf 3/3=1.0.
	// From {2,3,5} sup 2: 3=>2,5? support(3)=3 conf 2/3 <0.9 excluded;
	// {2,3}=>5 conf 2/2=1.0; {3,5}=>2 conf 2/2=1.0; {2,5}=>3 conf 2/3 no.
	// From {1,3}: 1=>3 conf 2/2=1.0; 3=>1 conf 2/3 no.
	// From {2,3}: 2=>3 conf 2/3; 3=>2 conf 2/3 no. {3,5}: both 2/3 no.
	want := map[string]bool{
		"{2} => {5}":    true,
		"{5} => {2}":    true,
		"{1} => {3}":    true,
		"{2, 3} => {5}": true,
		"{3, 5} => {2}": true,
	}
	if len(rules) != len(want) {
		var got []string
		for _, r := range rules {
			got = append(got, r.String())
		}
		t.Fatalf("rules = %v, want %d", got, len(want))
	}
	for _, r := range rules {
		key := r.Antecedent.String() + " => " + r.Consequent.String()
		if !want[key] {
			t.Errorf("unexpected rule %s", r)
		}
		if r.Confidence < 0.9 {
			t.Errorf("rule %s below min confidence", r)
		}
	}
}

func TestRuleLift(t *testing.T) {
	res := minedPaper(t)
	rules, err := GenerateRules(res, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Antecedent.String() == "{2}" && r.Consequent.String() == "{5}" {
			// conf 1.0, support(5)/N = 3/4 => lift 4/3.
			if math.Abs(r.Lift-4.0/3.0) > 1e-12 {
				t.Errorf("lift = %v, want 4/3", r.Lift)
			}
			return
		}
	}
	t.Fatal("rule {2}=>{5} not found")
}

func TestGenerateRulesSortedByConfidence(t *testing.T) {
	res := minedPaper(t)
	rules, err := GenerateRules(res, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence {
			t.Fatalf("rules not sorted at %d", i)
		}
	}
}

func TestGenerateRulesConfidenceCorrect(t *testing.T) {
	// Every emitted rule's confidence must equal sup(union)/sup(antecedent)
	// computed from scratch.
	db, err := synth.Baskets(synth.TxI(6, 2, 200, 61))
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Apriori{}).Mine(db, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := GenerateRules(res, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		union := r.Antecedent.Union(r.Consequent)
		wantSup := db.Support(union)
		if r.Support != wantSup {
			t.Errorf("rule %s support = %d, want %d", r, r.Support, wantSup)
		}
		anteSup := db.Support(r.Antecedent)
		wantConf := float64(wantSup) / float64(anteSup)
		if math.Abs(r.Confidence-wantConf) > 1e-12 {
			t.Errorf("rule %s confidence = %v, want %v", r, r.Confidence, wantConf)
		}
		if r.Confidence < 0.4 {
			t.Errorf("rule %s below threshold", r)
		}
	}
}

func TestGenerateRulesComplete(t *testing.T) {
	// Cross-check against brute-force enumeration of all antecedent
	// partitions of every frequent itemset.
	res := minedPaper(t)
	rules, err := GenerateRules(res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, r := range rules {
		got[r.Antecedent.Key()+"=>"+r.Consequent.Key()] = true
	}
	count := 0
	for _, ic := range res.All() {
		if len(ic.Items) < 2 {
			continue
		}
		n := len(ic.Items)
		for mask := 1; mask < (1<<n)-1; mask++ {
			var ante, cons transactions.Itemset
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					ante = append(ante, ic.Items[b])
				} else {
					cons = append(cons, ic.Items[b])
				}
			}
			anteSup, ok := res.Support(ante)
			if !ok {
				t.Fatalf("antecedent %v not frequent", ante)
			}
			conf := float64(ic.Count) / float64(anteSup)
			key := ante.Key() + "=>" + cons.Key()
			if conf >= 0.5 {
				count++
				if !got[key] {
					t.Errorf("missing rule %v => %v (conf %v)", ante, cons, conf)
				}
			} else if got[key] {
				t.Errorf("rule %v => %v should not pass (conf %v)", ante, cons, conf)
			}
		}
	}
	if len(rules) != count {
		t.Errorf("rule count = %d, brute force = %d", len(rules), count)
	}
}

func TestGenerateRulesValidation(t *testing.T) {
	res := minedPaper(t)
	if _, err := GenerateRules(res, 0); !errors.Is(err, ErrBadConfidence) {
		t.Errorf("conf 0 error = %v", err)
	}
	if _, err := GenerateRules(res, 1.1); !errors.Is(err, ErrBadConfidence) {
		t.Errorf("conf 1.1 error = %v", err)
	}
	if _, err := GenerateRules(nil, 0.5); !errors.Is(err, ErrEmptyDB) {
		t.Errorf("nil result error = %v", err)
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		Antecedent: transactions.NewItemset(1),
		Consequent: transactions.NewItemset(2),
		Support:    3, Confidence: 0.75, Lift: 1.5,
	}
	s := r.String()
	for _, frag := range []string{"{1}", "{2}", "sup=3", "conf=0.750", "lift=1.500"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestDiff(t *testing.T) {
	a := transactions.NewItemset(1, 2, 3, 4)
	b := transactions.NewItemset(2, 4)
	if got := diff(a, b); !got.Equal(transactions.NewItemset(1, 3)) {
		t.Errorf("diff = %v", got)
	}
	if got := diff(a, transactions.NewItemset()); !got.Equal(a) {
		t.Errorf("diff empty = %v", got)
	}
}

// TestGenerateRulesZeroSupportAntecedent pins the divide-by-zero guard: a
// (hand-built) Result carrying zero-support itemsets must produce no rules
// from them — confidence over a zero-support antecedent is undefined, not
// +Inf — and must not panic.
func TestGenerateRulesZeroSupportAntecedent(t *testing.T) {
	res := &Result{
		MinCount: 0,
		NumTx:    4,
		Levels: [][]ItemsetCount{
			{
				{Items: transactions.NewItemset(1), Count: 0},
				{Items: transactions.NewItemset(2), Count: 2},
			},
			{
				{Items: transactions.NewItemset(1, 2), Count: 0},
			},
		},
	}
	rules, err := GenerateRules(res, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Antecedent.Equal(transactions.NewItemset(1)) {
			t.Errorf("rule with zero-support antecedent emitted: %v", r)
		}
		if r.Confidence != r.Confidence || r.Confidence > 1e9 { // NaN or Inf
			t.Errorf("rule confidence degenerate: %v", r)
		}
	}
	// An itemset whose antecedent is missing from the Result entirely is
	// skipped the same way.
	res2 := &Result{
		NumTx: 4,
		Levels: [][]ItemsetCount{
			{{Items: transactions.NewItemset(2), Count: 2}},
			{{Items: transactions.NewItemset(1, 2), Count: 2}},
		},
	}
	rules2, err := GenerateRules(res2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules2 {
		if r.Antecedent.Equal(transactions.NewItemset(1)) {
			t.Errorf("rule with untracked antecedent emitted: %v", r)
		}
	}
}

// TestCanonicalStableOnSupportTies pins Canonical's ordering when itemsets
// tie on support: levels sort lexicographically (support plays no part),
// so every engine and every repetition emits identical bytes.
func TestCanonicalStableOnSupportTies(t *testing.T) {
	// Four items in two tied pairs: {0,1} and {2,3} each appear together
	// three times, singles all tie at 3.
	db := transactions.NewDB()
	for i := 0; i < 3; i++ {
		if err := db.Add(0, 1); err != nil {
			t.Fatal(err)
		}
		if err := db.Add(2, 3); err != nil {
			t.Fatal(err)
		}
	}
	var canon string
	for _, m := range []Miner{&Apriori{}, &Eclat{}, &FPGrowth{}} {
		var prev string
		for rep := 0; rep < 3; rep++ {
			res, err := m.Mine(db, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			got := string(res.Canonical())
			if rep > 0 && got != prev {
				t.Fatalf("%s: Canonical unstable across repetitions", m.Name())
			}
			prev = got
		}
		if canon == "" {
			canon = prev
		} else if prev != canon {
			t.Fatalf("%s: Canonical diverges across engines on tied supports\n got %q\nwant %q",
				m.Name(), prev, canon)
		}
	}
	want := "0:3\n1:3\n2:3\n3:3\n0,1:3\n2,3:3\n"
	if canon != want {
		t.Fatalf("Canonical = %q, want %q", canon, want)
	}
}

// TestRuleOrderStableOnTies pins the rule sort's total order: confidence
// and support ties fall through to antecedent/consequent comparison, so
// repeated generation yields the identical slice.
func TestRuleOrderStableOnTies(t *testing.T) {
	db := transactions.NewDB()
	for i := 0; i < 4; i++ {
		if err := db.Add(0, 1); err != nil {
			t.Fatal(err)
		}
		if err := db.Add(2, 3); err != nil {
			t.Fatal(err)
		}
	}
	res, err := (&Apriori{}).Mine(db, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	first, err := GenerateRules(res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("expected tied rules")
	}
	for rep := 0; rep < 5; rep++ {
		again, err := GenerateRules(res, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(first) {
			t.Fatalf("rule count changed: %d vs %d", len(again), len(first))
		}
		for i := range first {
			if again[i].String() != first[i].String() {
				t.Fatalf("rule order unstable at %d: %v vs %v", i, again[i], first[i])
			}
		}
	}
}
