package assoc

import (
	"context"
	"testing"

	"repro/internal/transactions"
)

func TestAdaptiveFanout(t *testing.T) {
	tests := []struct {
		nCands, k, maxLeaf int
		want               int
	}{
		{100, 2, 32, 16},        // 16² = 256 cells >= 4
		{200000, 2, 32, 128},    // need f² >= 6251
		{200000, 3, 32, 32},     // need f³ >= 6251 -> 32³ = 32768
		{10, 1, 32, 16},         // minimum
		{100000000, 2, 1, 4096}, // clamped at 4096
	}
	for _, tt := range tests {
		if got := adaptiveFanout(tt.nCands, tt.k, tt.maxLeaf); got != tt.want {
			t.Errorf("adaptiveFanout(%d, %d, %d) = %d, want %d",
				tt.nCands, tt.k, tt.maxLeaf, got, tt.want)
		}
	}
}

func TestCountPairsTriangular(t *testing.T) {
	db := paperDB(t)
	ctx := context.Background()
	l1, err := frequentOne(ctx, db, 2) // items 1, 2, 3, 5
	if err != nil {
		t.Fatal(err)
	}
	got, err := countPairsTriangular(ctx, db, l1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"1,3": 2, "2,3": 2, "2,5": 3, "3,5": 2}
	if len(got) != len(want) {
		t.Fatalf("pairs = %v", got)
	}
	for _, ic := range got {
		if want[ic.Items.Key()] != ic.Count {
			t.Errorf("pair %v count %d, want %d", ic.Items, ic.Count, want[ic.Items.Key()])
		}
	}
	// Fewer than two frequent items: no pairs.
	if got, err := countPairsTriangular(ctx, db, l1[:1], 2, 1); err != nil || got != nil {
		t.Errorf("single-item pairs = %v (err %v)", got, err)
	}
}

func TestGeneratorIndices(t *testing.T) {
	prev := []transactions.Itemset{
		transactions.NewItemset(1, 2),
		transactions.NewItemset(1, 3),
		transactions.NewItemset(2, 3),
	}
	cands := aprioriGen(prev) // {1,2,3}
	if len(cands) != 1 {
		t.Fatalf("cands = %v", cands)
	}
	gens := generatorIndices(cands, prev)
	// Generators of {1,2,3}: {1,2} (index 0) and {1,3} (index 1).
	if gens[0][0] != 0 || gens[0][1] != 1 {
		t.Errorf("generators = %v", gens[0])
	}
}

func TestAdvanceBarCounts(t *testing.T) {
	// Three transactions over candidate ids {0,1,2} standing for the
	// prev-level sets; candidate X has generators (0,1), Y has (1,2).
	bar := []tidEntry{
		{tid: 0, cands: []int{0, 1, 2}}, // supports X and Y
		{tid: 1, cands: []int{0, 1}},    // supports X only
		{tid: 2, cands: []int{2}},       // supports neither
	}
	gens := [][2]int{{0, 1}, {1, 2}}
	counts := make([]int, 2)
	out, err := advanceBar(context.Background(), bar, gens, counts)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 2 || counts[1] != 1 {
		t.Errorf("counts = %v, want [2 1]", counts)
	}
	if len(out) != 2 {
		t.Fatalf("entries = %d, want 2 (empty entries dropped)", len(out))
	}
	if out[0].tid != 0 || len(out[0].cands) != 2 {
		t.Errorf("entry 0 = %+v", out[0])
	}
	if out[1].tid != 1 || len(out[1].cands) != 1 || out[1].cands[0] != 0 {
		t.Errorf("entry 1 = %+v", out[1])
	}
}

func TestFilterBarRenumbers(t *testing.T) {
	bar := []tidEntry{
		{tid: 0, cands: []int{0, 1, 2}},
		{tid: 1, cands: []int{1}},
	}
	keep := []int{-1, 0, 1} // candidate 0 infrequent; 1 -> 0; 2 -> 1
	out := filterBar(bar, keep)
	if len(out) != 2 {
		t.Fatalf("entries = %d", len(out))
	}
	if len(out[0].cands) != 2 || out[0].cands[0] != 0 || out[0].cands[1] != 1 {
		t.Errorf("entry 0 = %v", out[0].cands)
	}
	if len(out[1].cands) != 1 || out[1].cands[0] != 0 {
		t.Errorf("entry 1 = %v", out[1].cands)
	}
}

func TestDHPBucketFilterKeepsResultExact(t *testing.T) {
	// A tiny bucket table forces heavy collisions; results must still be
	// exact because the filter only ever over-approximates.
	db := paperDB(t)
	for _, buckets := range []int{1, 2, 7} {
		res, err := (&DHP{NumBuckets: buckets}).Mine(db, 0.5)
		if err != nil {
			t.Fatalf("buckets=%d: %v", buckets, err)
		}
		got := resultMap(res)
		if len(got) != len(paperExpected) {
			t.Errorf("buckets=%d: %d itemsets, want %d", buckets, len(got), len(paperExpected))
		}
	}
}

func TestDHPPairHashSymmetric(t *testing.T) {
	if pairHash(3, 7, 97) != pairHash(7, 3, 97) {
		t.Error("pairHash must be order-independent")
	}
}

func TestSamplingClampsTinySamples(t *testing.T) {
	// A 10% sample of a tiny DB is a couple of transactions; the clamp
	// must keep the sample mining from declaring everything frequent.
	db := paperDB(t)
	s := &Sampling{SampleFraction: 0.1, LowerFactor: 0.1, Seed: 3}
	res, err := s.Mine(db, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	got := resultMap(res)
	if len(got) != len(paperExpected) {
		t.Errorf("itemsets = %d, want %d", len(got), len(paperExpected))
	}
}

func TestEclatPassStats(t *testing.T) {
	db := paperDB(t)
	res, err := (&Eclat{}).Mine(db, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes[0].Frequent != 4 {
		t.Errorf("pass 1 = %+v", res.Passes[0])
	}
	if res.MaxLevel() != 3 {
		t.Errorf("MaxLevel = %d", res.MaxLevel())
	}
}
