package assoc

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/transactions"
)

// chaosRetry is the fast-paced retry policy the fault tests run under:
// tight enough that a schedule full of drops still finishes in
// milliseconds, real enough that every layer (deadline, backoff,
// failover) is exercised.
func chaosRetry(seed int64) dist.RetryPolicy {
	return dist.RetryPolicy{
		MaxAttempts: 3,
		CallTimeout: 25 * time.Millisecond,
		BaseBackoff: 200 * time.Microsecond,
		MaxBackoff:  2 * time.Millisecond,
		Seed:        seed,
	}
}

// assocWaitForGoroutines polls until the goroutine count is back to at
// most want — the chaos suite's leak check.
func assocWaitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > want {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak: %d alive, want <= %d\n%s", got, want, buf[:runtime.Stack(buf, true)])
	}
}

// TestChaosFaultSchedules is the chaos property test of the issue: for
// seeded random fault schedules (delays, drops, one-shot errors, sticky
// worker deaths) at workers 1, 2 and 4, every mine that completes is
// byte-identical to the local engine, every mine that fails (fallback
// disabled) returns an error wrapping dist.ErrNoHealthyWorkers, with the
// fallback enabled no mine fails at all, and nothing hangs or leaks.
// Schedules are deterministic per (seed, workers), so a failure replays.
func TestChaosFaultSchedules(t *testing.T) {
	before := runtime.NumGoroutine()
	for seed := int64(1); seed <= 6; seed++ {
		db := randomDB(seed)
		minSup := 0.1 + float64(seed%5)/20.0
		for _, engine := range []string{DistEngineApriori, DistEngineFPGrowth} {
			var local Miner
			if engine == DistEngineApriori {
				local = &Apriori{}
			} else {
				local = &FPGrowth{}
			}
			want, err := local.Mine(db, minSup)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4} {
				for _, noFallback := range []bool{false, true} {
					plan := dist.FaultPlan{
						Seed:      seed*31 + int64(workers),
						Drop:      0.04,
						Error:     0.12,
						Kill:      0.05,
						Delay:     200 * time.Microsecond,
						DelayProb: 0.1,
					}
					ft := dist.NewFaultTransport(dist.NewLocalTransport(workers, seed%2 == 0), plan)
					d := &Distributed{
						Transport:       ft,
						Workers:         workers,
						Engine:          engine,
						Retry:           chaosRetry(seed),
						NoLocalFallback: noFallback,
					}
					got, err := d.MineContext(context.Background(), db, minSup)
					switch {
					case err != nil && !noFallback:
						t.Errorf("seed %d %s workers=%d: mine failed despite local fallback: %v (injected: %+v)",
							seed, engine, workers, err, ft.Stats())
					case err != nil && !errors.Is(err, dist.ErrNoHealthyWorkers):
						t.Errorf("seed %d %s workers=%d: failure does not wrap ErrNoHealthyWorkers: %v",
							seed, engine, workers, err)
					case err == nil && !bytes.Equal(got.Canonical(), want.Canonical()):
						t.Errorf("seed %d %s workers=%d: completed mine differs from local engine (injected: %+v, coord: %+v)",
							seed, engine, workers, ft.Stats(), d.Coordinator().Stats())
					}
					if err == nil && d.Degraded() {
						for _, p := range got.Passes {
							if !p.Degraded {
								t.Errorf("seed %d %s workers=%d: degraded mine left pass K=%d unmarked",
									seed, engine, workers, p.K)
							}
						}
					}
					if cerr := d.Close(); cerr != nil {
						t.Fatalf("close: %v", cerr)
					}
				}
			}
		}
	}
	assocWaitForGoroutines(t, before)
}

// TestChaosScheduleReplays pins determinism end to end: the same seed
// produces the same injected-fault trace and the same coordinator fault
// counters, run to run.
func TestChaosScheduleReplays(t *testing.T) {
	db := randomDB(3)
	run := func() (dist.FaultStats, dist.Stats, []byte, error) {
		plan := dist.FaultPlan{Seed: 9, Drop: 0.05, Error: 0.15, Kill: 0.05}
		ft := dist.NewFaultTransport(dist.NewLocalTransport(2, false), plan)
		d := &Distributed{Transport: ft, Workers: 2, Retry: chaosRetry(9)}
		defer d.Close()
		res, err := d.MineContext(context.Background(), db, 0.2)
		var canon []byte
		if err == nil {
			canon = res.Canonical()
		}
		return ft.Stats(), d.Coordinator().Stats(), canon, err
	}
	f1, c1, r1, e1 := run()
	f2, c2, r2, e2 := run()
	if f1 != f2 {
		t.Errorf("injected-fault trace differs across replays: %+v vs %+v", f1, f2)
	}
	if c1.Retries != c2.Retries || c1.Failovers != c2.Failovers {
		t.Errorf("coordinator fault counters differ across replays: %+v vs %+v", c1, c2)
	}
	if (e1 == nil) != (e2 == nil) || !bytes.Equal(r1, r2) {
		t.Errorf("outcome differs across replays: err %v vs %v", e1, e2)
	}
}

// TestDegradesMidMine pins graceful degradation when the cluster dies
// between passes: the scripted schedule lets the shard shipping succeed
// and kills the workers on their first scan call, so the engine must
// switch to the local fallback mid-mine, finish byte-identically, flag
// every pass Degraded, and report Degraded() — the mine never fails.
func TestDegradesMidMine(t *testing.T) {
	for _, engine := range []string{DistEngineApriori, DistEngineFPGrowth} {
		for _, workers := range []int{1, 2} {
			db := randomDB(17)
			var local Miner
			if engine == DistEngineApriori {
				local = &Apriori{}
			} else {
				local = &FPGrowth{}
			}
			want, err := local.Mine(db, 0.15)
			if err != nil {
				t.Fatal(err)
			}
			ft := dist.NewFaultTransport(dist.NewLocalTransport(workers, true), dist.FaultPlan{})
			for w := 0; w < workers; w++ {
				// One clean call (the Ship), then the sticky death.
				ft.FailNext(w, dist.FaultNone, dist.FaultKill)
			}
			d := &Distributed{Transport: ft, Workers: workers, Engine: engine, Retry: chaosRetry(1)}
			got, err := d.MineContext(context.Background(), db, 0.15)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", engine, workers, err)
			}
			if !bytes.Equal(got.Canonical(), want.Canonical()) {
				t.Errorf("%s workers=%d: degraded mine differs from local engine", engine, workers)
			}
			if !d.Degraded() {
				t.Errorf("%s workers=%d: Degraded() = false after cluster loss", engine, workers)
			}
			if len(got.Passes) == 0 {
				t.Fatalf("%s workers=%d: no passes recorded", engine, workers)
			}
			for _, p := range got.Passes {
				if !p.Degraded {
					t.Errorf("%s workers=%d: pass K=%d not marked Degraded", engine, workers, p.K)
				}
			}
			// The next mine over a live cluster would need Revive; over
			// this dead one it must degrade again, not error.
			again, err := d.MineContext(context.Background(), db, 0.15)
			if err != nil {
				t.Fatalf("%s workers=%d second mine: %v", engine, workers, err)
			}
			if !bytes.Equal(again.Canonical(), want.Canonical()) {
				t.Errorf("%s workers=%d: post-degradation re-mine differs", engine, workers)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestNoFallbackSurfacesSentinel pins the NoLocalFallback contract: the
// same cluster loss that degrade absorbs becomes a wrapped
// ErrNoHealthyWorkers, with the condemning cause still in the chain.
func TestNoFallbackSurfacesSentinel(t *testing.T) {
	db := randomDB(17)
	ft := dist.NewFaultTransport(dist.NewLocalTransport(1, false), dist.FaultPlan{})
	ft.FailNext(0, dist.FaultNone, dist.FaultKill)
	d := &Distributed{Transport: ft, Workers: 1, Retry: chaosRetry(1), NoLocalFallback: true}
	defer d.Close()
	_, err := d.MineContext(context.Background(), db, 0.15)
	if !errors.Is(err, dist.ErrNoHealthyWorkers) {
		t.Fatalf("err = %v, want ErrNoHealthyWorkers", err)
	}
	if !errors.Is(err, dist.ErrWorkerUnavailable) {
		t.Fatalf("err = %v, want the condemning ErrWorkerUnavailable in the chain", err)
	}
}

// TestIncrementalAttachUnderFaults pins the Session-facing path: an
// Incremental over a faulty Distributed base attaches, maintains through
// appends, and stays byte-identical to from-scratch local mining — the
// dirty-shard protocol and the retry layer composing, not fighting.
func TestIncrementalAttachUnderFaults(t *testing.T) {
	db := randomDB(11)
	store := transactions.NewShardedDBFrom(db, 8)
	ft := dist.NewFaultTransport(dist.NewLocalTransport(2, true),
		dist.FaultPlan{Seed: 5, Error: 0.15, Delay: 100 * time.Microsecond, DelayProb: 0.1})
	d := &Distributed{Transport: ft, Workers: 2, Retry: chaosRetry(5)}
	defer d.Close()
	inc := &Incremental{Base: d, Workers: 2}

	const minSup = 0.2
	res, _, err := inc.AttachContext(context.Background(), store, minSup)
	if err != nil {
		t.Fatal(err)
	}
	check := func(res *Result, label string) {
		t.Helper()
		want, err := (&Apriori{}).Mine(store.Snapshot(), minSup)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Canonical(), want.Canonical()) {
			t.Errorf("%s: maintained result differs from from-scratch local mine (injected: %+v)", label, ft.Stats())
		}
	}
	check(res, "attach")
	for i := 0; i < 3; i++ {
		if err := store.Append(i%3, 3+i%2, 6); err != nil {
			t.Fatal(err)
		}
		res, _, err = inc.MaintainContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		check(res, "maintain")
	}
	if s := ft.Stats(); s.Errored == 0 {
		t.Log("schedule injected no errors; consider a different seed") // informational, keeps the test honest
	}
}
