package assoc

import (
	"errors"
	"testing"

	"repro/internal/transactions"
)

// degenerateEngines returns the engine lineup the uniform-degenerate
// contract covers (the ISSUE-4 five plus everything else registered, since
// the contract is package-wide). The cleanup func closes the distributed
// transport.
func degenerateEngines() ([]Miner, func()) {
	d := &Distributed{}
	miners := append(allMiners(), d)
	return miners, func() { d.Close() }
}

// TestDegenerateInputsUniformAcrossEngines is the cross-engine table test:
// an empty database, minSupport <= 0 and minSupport > 1 must yield, from
// every engine, the matching sentinel error AND the canonical empty Result
// — non-nil, zero frequent itemsets, empty Canonical bytes — never a nil
// result and never a panic.
func TestDegenerateInputsUniformAcrossEngines(t *testing.T) {
	db := paperDB(t)
	cases := []struct {
		name    string
		db      *transactions.DB
		minSup  float64
		wantErr error
	}{
		{"empty db", transactions.NewDB(), 0.5, ErrEmptyDB},
		{"nil db", nil, 0.5, ErrEmptyDB},
		{"zero support", db, 0, ErrBadSupport},
		{"negative support", db, -0.25, ErrBadSupport},
		{"support above one", db, 1.5, ErrBadSupport},
	}
	engines, cleanup := degenerateEngines()
	defer cleanup()
	for _, m := range engines {
		for _, tc := range cases {
			res, err := m.Mine(tc.db, tc.minSup)
			if !errors.Is(err, tc.wantErr) {
				t.Errorf("%s / %s: err = %v, want %v", m.Name(), tc.name, err, tc.wantErr)
			}
			if res == nil {
				t.Errorf("%s / %s: nil Result; want the canonical empty one", m.Name(), tc.name)
				continue
			}
			if res.NumFrequent() != 0 || res.MaxLevel() != 0 || len(res.Passes) != 0 {
				t.Errorf("%s / %s: non-empty degenerate Result: %+v", m.Name(), tc.name, res)
			}
			if len(res.Canonical()) != 0 {
				t.Errorf("%s / %s: Canonical = %q, want empty", m.Name(), tc.name, res.Canonical())
			}
			if res.MinCount != 0 || res.NumTx != 0 {
				t.Errorf("%s / %s: degenerate Result carries counts: %+v", m.Name(), tc.name, res)
			}
			// The empty result must be safe to use, not just to look at.
			if _, ok := res.Support(transactions.NewItemset(1)); ok {
				t.Errorf("%s / %s: empty Result claims support", m.Name(), tc.name)
			}
			if all := res.All(); len(all) != 0 {
				t.Errorf("%s / %s: All() = %v", m.Name(), tc.name, all)
			}
		}
	}
}

// TestDegenerateRuleGeneration covers the same contract one layer up: rule
// generation over the canonical empty Result must error without panicking.
func TestDegenerateRuleGeneration(t *testing.T) {
	if _, err := GenerateRules(emptyResult(), 0.5); !errors.Is(err, ErrEmptyDB) {
		t.Errorf("rules over empty result: err = %v, want ErrEmptyDB", err)
	}
}
