package assoc

import (
	"errors"
	"testing"

	"repro/internal/synth"
	"repro/internal/transactions"
)

// paperDB is the worked example from Agrawal & Srikant (VLDB'94 Fig. 3):
// four transactions over items 1..5, minsup 2 transactions.
func paperDB(t *testing.T) *transactions.DB {
	t.Helper()
	db := transactions.NewDB()
	for _, tx := range [][]int{
		{1, 3, 4},
		{2, 3, 5},
		{1, 2, 3, 5},
		{2, 5},
	} {
		if err := db.Add(tx...); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// paperExpected lists every frequent itemset of paperDB at minsup 50%.
var paperExpected = map[string]int{
	"1": 2, "2": 3, "3": 3, "5": 3,
	"1,3": 2, "2,3": 2, "2,5": 3, "3,5": 2,
	"2,3,5": 2,
}

// allMiners returns one instance of every algorithm.
func allMiners() []Miner {
	return []Miner{
		&Apriori{},
		&Apriori{Strategy: CountMap},
		&AprioriTid{},
		&AprioriHybrid{},
		&AIS{},
		&SETM{},
		&Partition{NumPartitions: 1},
		&Partition{NumPartitions: 3},
		&DHP{},
		&DHP{NumBuckets: 64},
		&Eclat{},
		&FPGrowth{},
		&Auto{},
		&Sampling{Seed: 7},
		&Sampling{SampleFraction: 0.5, LowerFactor: 0.6, Seed: 9},
	}
}

func resultMap(res *Result) map[string]int {
	out := make(map[string]int)
	for _, ic := range res.All() {
		out[ic.Items.Key()] = ic.Count
	}
	return out
}

func TestAllMinersPaperExample(t *testing.T) {
	db := paperDB(t)
	for _, m := range allMiners() {
		t.Run(m.Name(), func(t *testing.T) {
			res, err := m.Mine(db, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			got := resultMap(res)
			if len(got) != len(paperExpected) {
				t.Errorf("got %d frequent itemsets, want %d: %v", len(got), len(paperExpected), got)
			}
			for key, want := range paperExpected {
				if got[key] != want {
					t.Errorf("support(%s) = %d, want %d", key, got[key], want)
				}
			}
		})
	}
}

func TestMinersAgreeOnSyntheticData(t *testing.T) {
	db, err := synth.Baskets(synth.BasketConfig{
		NumTransactions: 300, AvgTxSize: 8, AvgPatternSize: 3,
		NumPatterns: 40, NumItems: 60,
		CorruptionMean: 0.4, CorruptionSD: 0.1, CorrelationMean: 0.5, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, minSup := range []float64{0.1, 0.05, 0.02} {
		ref, err := (&Apriori{}).Mine(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		want := resultMap(ref)
		for _, m := range allMiners()[1:] {
			res, err := m.Mine(db, minSup)
			if err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			got := resultMap(res)
			if len(got) != len(want) {
				t.Errorf("%s at %v: %d itemsets, Apriori found %d",
					m.Name(), minSup, len(got), len(want))
				continue
			}
			for key, w := range want {
				if got[key] != w {
					t.Errorf("%s at %v: support(%s) = %d, want %d",
						m.Name(), minSup, key, got[key], w)
				}
			}
		}
	}
}

func TestMineInputValidation(t *testing.T) {
	db := paperDB(t)
	for _, m := range allMiners() {
		if _, err := m.Mine(db, 0); !errors.Is(err, ErrBadSupport) {
			t.Errorf("%s: minsup 0 error = %v", m.Name(), err)
		}
		if _, err := m.Mine(db, 1.5); !errors.Is(err, ErrBadSupport) {
			t.Errorf("%s: minsup 1.5 error = %v", m.Name(), err)
		}
		if _, err := m.Mine(transactions.NewDB(), 0.5); !errors.Is(err, ErrEmptyDB) {
			t.Errorf("%s: empty db error = %v", m.Name(), err)
		}
	}
}

func TestSupportMonotonicity(t *testing.T) {
	// Anti-monotone property: every subset of a frequent itemset is
	// frequent with at least the same support.
	db, err := synth.Baskets(synth.TxI(6, 2, 200, 31))
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Apriori{}).Mine(db, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for _, ic := range res.All() {
		if len(ic.Items) < 2 {
			continue
		}
		for _, drop := range ic.Items {
			sub := ic.Items.Without(drop)
			subSup, ok := res.Support(sub)
			if !ok {
				t.Fatalf("subset %v of frequent %v is not frequent", sub, ic.Items)
			}
			if subSup < ic.Count {
				t.Fatalf("support(%v)=%d < support(%v)=%d", sub, subSup, ic.Items, ic.Count)
			}
		}
	}
}

func TestResultSupportLookup(t *testing.T) {
	db := paperDB(t)
	res, err := (&Apriori{}).Mine(db, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sup, ok := res.Support(transactions.NewItemset(2, 3, 5)); !ok || sup != 2 {
		t.Errorf("Support(2,3,5) = %d, %v", sup, ok)
	}
	if _, ok := res.Support(transactions.NewItemset(4)); ok {
		t.Error("item 4 should be infrequent")
	}
	if res.NumFrequent() != len(paperExpected) {
		t.Errorf("NumFrequent = %d", res.NumFrequent())
	}
	if res.MaxLevel() != 3 {
		t.Errorf("MaxLevel = %d", res.MaxLevel())
	}
}

func TestPassStatsRecorded(t *testing.T) {
	db := paperDB(t)
	res, err := (&Apriori{}).Mine(db, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Passes) < 3 {
		t.Fatalf("passes = %v", res.Passes)
	}
	if res.Passes[0].K != 1 || res.Passes[0].Frequent != 4 {
		t.Errorf("pass 1 = %+v", res.Passes[0])
	}
	if res.Passes[1].K != 2 || res.Passes[1].Frequent != 4 {
		t.Errorf("pass 2 = %+v", res.Passes[1])
	}
	// Apriori candidate generation for pass 3 from {13,23,25,35}:
	// join gives {2,3,5} only ({1,3}+{1,?} none; {2,3}+{2,5} -> {2,3,5};
	// {3,5} no partner), prune keeps it.
	if res.Passes[2].Candidates != 1 || res.Passes[2].Frequent != 1 {
		t.Errorf("pass 3 = %+v", res.Passes[2])
	}
}

func TestAISCountsMoreCandidatesThanApriori(t *testing.T) {
	// The VLDB'94 claim: AIS generates candidates Apriori's join/prune
	// never would (extensions by infrequent items). At moderate supports,
	// where Apriori's C2 = C(|L1|, 2) stays small, this shows directly in
	// the candidate counts. (At very low supports Apriori's C2 dominates
	// by count but is counted cheaply in one hash-tree scan; the paper's
	// comparison is execution time, reproduced in EXP-A1.)
	db, err := synth.Baskets(synth.TxI(8, 3, 300, 41))
	if err != nil {
		t.Fatal(err)
	}
	ap, err := (&Apriori{}).Mine(db, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	ais, err := (&AIS{}).Mine(db, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	apCands, aisCands := 0, 0
	for _, p := range ap.Passes[1:] { // skip pass 1 (same for both)
		apCands += p.Candidates
	}
	for _, p := range ais.Passes[1:] {
		aisCands += p.Candidates
	}
	if aisCands <= apCands {
		t.Errorf("AIS candidates %d <= Apriori candidates %d; expected more", aisCands, apCands)
	}
}

func TestAprioriGenJoinAndPrune(t *testing.T) {
	// L2 = {12, 13, 14, 23, 24}: join gives 123, 124, 134, 234; prune
	// removes 134 (34 missing) and 234 (34 missing).
	prev := []transactions.Itemset{
		transactions.NewItemset(1, 2),
		transactions.NewItemset(1, 3),
		transactions.NewItemset(1, 4),
		transactions.NewItemset(2, 3),
		transactions.NewItemset(2, 4),
	}
	got := aprioriGen(prev)
	if len(got) != 2 {
		t.Fatalf("candidates = %v", got)
	}
	if !got[0].Equal(transactions.NewItemset(1, 2, 3)) || !got[1].Equal(transactions.NewItemset(1, 2, 4)) {
		t.Errorf("candidates = %v", got)
	}
}

func TestAprioriGenEmpty(t *testing.T) {
	if got := aprioriGen(nil); got != nil {
		t.Errorf("aprioriGen(nil) = %v", got)
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	for _, s := range []transactions.Itemset{
		transactions.NewItemset(0),
		transactions.NewItemset(1, 22, 333),
		transactions.NewItemset(7, 1000000),
	} {
		if got := parseKey(s.Key()); !got.Equal(s) {
			t.Errorf("parseKey(%q) = %v, want %v", s.Key(), got, s)
		}
	}
}

func TestForEachSubset(t *testing.T) {
	s := transactions.NewItemset(1, 2, 3, 4)
	var got []string
	forEachSubset(s, 2, func(sub transactions.Itemset) {
		got = append(got, sub.Key())
	})
	if len(got) != 6 {
		t.Fatalf("2-subsets of 4 items = %d, want 6: %v", len(got), got)
	}
}

func TestChoose(t *testing.T) {
	tests := []struct{ n, k, want int }{
		{4, 2, 6}, {5, 0, 1}, {5, 5, 1}, {3, 4, 0}, {10, 3, 120},
	}
	for _, tt := range tests {
		if got := choose(tt.n, tt.k); got != tt.want {
			t.Errorf("choose(%d,%d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestSingleItemOnlyDB(t *testing.T) {
	db := transactions.NewDB()
	for i := 0; i < 10; i++ {
		if err := db.Add(1); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range allMiners() {
		res, err := m.Mine(db, 0.5)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if res.NumFrequent() != 1 {
			t.Errorf("%s: frequent = %d, want 1", m.Name(), res.NumFrequent())
		}
	}
}

func TestNoFrequentItemsets(t *testing.T) {
	db := transactions.NewDB()
	for i := 0; i < 10; i++ {
		if err := db.Add(i); err != nil { // every item appears once
			t.Fatal(err)
		}
	}
	for _, m := range allMiners() {
		res, err := m.Mine(db, 0.5)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if res.NumFrequent() != 0 {
			t.Errorf("%s: frequent = %d, want 0", m.Name(), res.NumFrequent())
		}
	}
}

func TestHybridSwitches(t *testing.T) {
	// With a huge budget the hybrid switches immediately after pass 2;
	// results must still match Apriori.
	db, err := synth.Baskets(synth.TxI(6, 2, 150, 51))
	if err != nil {
		t.Fatal(err)
	}
	want := resultMapFrom(t, &Apriori{}, db, 0.03)
	hybrid := &AprioriHybrid{BudgetEntries: 1 << 30}
	got := resultMapFrom(t, hybrid, db, 0.03)
	compareMaps(t, "hybrid(big budget)", got, want)

	// With budget 1 it never switches (pure Apriori path).
	hybrid = &AprioriHybrid{BudgetEntries: 1}
	got = resultMapFrom(t, hybrid, db, 0.03)
	compareMaps(t, "hybrid(budget 1)", got, want)
}

func resultMapFrom(t *testing.T, m Miner, db *transactions.DB, minSup float64) map[string]int {
	t.Helper()
	res, err := m.Mine(db, minSup)
	if err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	return resultMap(res)
}

func compareMaps(t *testing.T, label string, got, want map[string]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d itemsets, want %d", label, len(got), len(want))
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s: support(%s) = %d, want %d", label, k, got[k], w)
		}
	}
}
