package assoc

import (
	"context"
	"errors"
	"testing"

	"repro/internal/synth"
	"repro/internal/transactions"
)

// TestZeroValueOptionDefaults is the cross-engine defaults audit: for
// every registered engine, the zero-valued struct must behave exactly
// like the struct with its documented defaults spelled out. This pins the
// zero-value semantics the public mining package's option documentation
// promises:
//
//	Workers        0 (and 1) mean serial, identical results at any count
//	Apriori        Strategy=CountHashTree, adaptive Fanout/MaxLeaf
//	DHP            NumBuckets=1<<16
//	Eclat          Layout=LayoutAuto, DensityCutoff=DefaultDensityCutoff
//	Partition      NumPartitions<=1 degenerates to one partition
//	Sampling       SampleFraction=0.2, LowerFactor=0.8
//	AprioriHybrid  BudgetEntries=8*|D|
//	Distributed    Workers=1 transport, Engine=DistEngineApriori
//	Incremental    TrackSlack=0.8
func TestZeroValueOptionDefaults(t *testing.T) {
	db, err := synth.Baskets(synth.TxI(8, 3, 400, 31))
	if err != nil {
		t.Fatal(err)
	}
	const minSup = 0.01
	cases := []struct {
		name      string
		zero      Miner
		explicit  Miner
		closeBoth bool
	}{
		{name: "Apriori", zero: &Apriori{}, explicit: &Apriori{Strategy: CountHashTree, Workers: 1}},
		{name: "Apriori/CountMap-params", zero: &Apriori{Strategy: CountMap}, explicit: &Apriori{Strategy: CountMap, Workers: 1}},
		{name: "DHP", zero: &DHP{}, explicit: &DHP{NumBuckets: 1 << 16, Workers: 1}},
		{name: "Eclat", zero: &Eclat{}, explicit: &Eclat{Layout: LayoutAuto, DensityCutoff: DefaultDensityCutoff, Workers: 1}},
		{name: "Partition", zero: &Partition{}, explicit: &Partition{NumPartitions: 1, Workers: 1}},
		{name: "Sampling", zero: &Sampling{}, explicit: &Sampling{SampleFraction: 0.2, LowerFactor: 0.8}},
		{name: "AprioriHybrid", zero: &AprioriHybrid{}, explicit: &AprioriHybrid{BudgetEntries: 8 * 400}},
		{name: "FPGrowth", zero: &FPGrowth{}, explicit: &FPGrowth{Workers: 1}},
		{name: "Auto", zero: &Auto{}, explicit: &Auto{Workers: 1}},
		{name: "Distributed", zero: &Distributed{}, explicit: &Distributed{Workers: 1, Engine: DistEngineApriori}, closeBoth: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.closeBoth {
				defer tc.zero.(*Distributed).Close()
				defer tc.explicit.(*Distributed).Close()
			}
			zr, err := tc.zero.Mine(db, minSup)
			if err != nil {
				t.Fatal(err)
			}
			er, err := tc.explicit.Mine(db, minSup)
			if err != nil {
				t.Fatal(err)
			}
			if string(zr.Canonical()) != string(er.Canonical()) {
				t.Fatalf("zero-value %s differs from its documented defaults", tc.name)
			}
		})
	}

	// Partition's zero value also names itself without a partition count.
	if got := (&Partition{}).Name(); got != "Partition" {
		t.Errorf("zero Partition name = %q", got)
	}

	// Workers=0 is serial for every WorkerSetter engine: byte-identical
	// to the zero value and to an explicit 4-worker run.
	for _, m := range Registered() {
		ws, ok := m.(WorkerSetter)
		if !ok {
			continue
		}
		t.Run(m.Name()+"/workers", func(t *testing.T) {
			if c, ok := m.(interface{ Close() error }); ok {
				defer c.Close()
			}
			base, err := m.Mine(db, minSup)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{0, 4} {
				ws.SetWorkers(w)
				got, err := m.Mine(db, minSup)
				if err != nil {
					t.Fatal(err)
				}
				if string(got.Canonical()) != string(base.Canonical()) {
					t.Fatalf("%s at Workers=%d differs from zero value", m.Name(), w)
				}
			}
		})
	}
}

// TestIncrementalTrackSlackDefault pins the maintainer's slack default:
// zero means 0.8, one tracks exactly at the mining support, and the
// out-of-range values fall back to the default.
func TestIncrementalTrackSlackDefault(t *testing.T) {
	store := transactions.NewShardedDB(64)
	for i := 0; i < 10; i++ {
		if err := store.Append(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct {
		slack float64
		want  float64
	}{
		{0, 0.08},
		{0.8, 0.08},
		{1, 0.1},
		{0.5, 0.05},
		{1.5, 0.08}, // out of range: default
		{-1, 0.08},  // out of range: default
	} {
		inc := &Incremental{TrackSlack: tc.slack}
		if _, _, err := inc.Attach(store, 0.1); err != nil {
			t.Fatal(err)
		}
		if got := inc.trackSupport(); !floatEq(got, tc.want) {
			t.Errorf("TrackSlack=%v: trackSupport = %v, want %v", tc.slack, got, tc.want)
		}
	}
}

func floatEq(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

// cancellingBase is a full-run base miner that cancels its context on the
// Nth call and otherwise delegates to Apriori — the deterministic way to
// land a cancellation inside rebuild's full mine.
type cancellingBase struct {
	cancel   context.CancelFunc
	calls    int
	cancelOn int
}

// Name implements Miner.
func (c *cancellingBase) Name() string { return "cancelling" }

// Mine implements Miner.
func (c *cancellingBase) Mine(db *transactions.DB, minSupport float64) (*Result, error) {
	return c.MineContext(context.Background(), db, minSupport)
}

// MineContext implements ContextMiner.
func (c *cancellingBase) MineContext(ctx context.Context, db *transactions.DB, minSupport float64) (*Result, error) {
	c.calls++
	if c.calls == c.cancelOn {
		c.cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return (&Apriori{}).MineContext(ctx, db, minSupport)
}

// TestCancelledRebuildDropsStaleResult pins the recovery contract: when a
// Maintain's recount succeeds (caches now clean) but the border-crossing
// rebuild is cancelled mid-full-mine, the maintainer must not let a later
// Maintain take the nothing-changed fast path back to the stale result —
// the store length is unchanged (append+delete), so only the dropped
// state forces the re-mine.
func TestCancelledRebuildDropsStaleResult(t *testing.T) {
	store := transactions.NewShardedDB(64)
	for i := 0; i < 10; i++ {
		if err := store.Append(i%3, 3+i%2); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	base := &cancellingBase{cancel: cancel, cancelOn: 2} // attach mines once
	inc := &Incremental{Base: base}
	if _, _, err := inc.Attach(store, 0.1); err != nil {
		t.Fatal(err)
	}
	// Same length, new frequent item 9: the tracked set cannot cover it,
	// so Maintain recounts, fails threshold, and the rebuild is cancelled.
	if err := store.Append(9, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := store.DeleteAt(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := inc.MaintainContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled rebuild: err = %v, want context.Canceled", err)
	}
	res, _, err := inc.Maintain()
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&Apriori{}).Mine(store.Snapshot(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Canonical()) != string(want.Canonical()) {
		t.Fatal("post-cancel Maintain returned a stale result instead of re-mining")
	}
}
