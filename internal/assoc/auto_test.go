package assoc

import (
	"testing"

	"repro/internal/transactions"
)

// selectName runs Auto.Select and returns the chosen engine's display name
// (Selected carries the bitset-layout suffix a bare Name() lacks).
func selectName(t *testing.T, db *transactions.DB, minSup float64) string {
	t.Helper()
	a := &Auto{}
	if _, err := a.Select(db, minSup); err != nil {
		t.Fatal(err)
	}
	return a.Selected()
}

// TestAutoSelectDensityCutoffBoundary pins the dense-arm threshold at
// exactly AutoDensityCutoff: mean frequent-item density == 1/16 dispatches
// to the bitset Eclat engine, and one transaction more (nudging the mean
// just below the cutoff) flips the dispatch — so a change to the cutoff or
// to the >= comparison cannot slip through silently.
func TestAutoSelectDensityCutoffBoundary(t *testing.T) {
	// 16 transactions, each a singleton of a distinct item: 16 frequent
	// items of support 1, density = 16/(16*16) = 1/16 — exactly the cutoff.
	db := transactions.NewDB()
	for i := 0; i < 16; i++ {
		if err := db.Add(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := selectName(t, db, 0.05); got != "Eclat(bitset)" {
		t.Errorf("at exactly AutoDensityCutoff: selected %s, want Eclat(bitset)", got)
	}
	// One empty transaction more: density 16/(16*17) < 1/16. The dense arm
	// must not fire; with |L1| = 16 the pair explosion check (120 > 4*17)
	// sends the workload to pattern growth instead.
	if err := db.Add(); err != nil {
		t.Fatal(err)
	}
	if got := selectName(t, db, 0.05); got != "FPGrowth" {
		t.Errorf("just below AutoDensityCutoff: selected %s, want FPGrowth", got)
	}
}

// TestAutoSelectMinDenseItemsBoundary pins the dense-arm floor at exactly
// AutoMinDenseItems frequent items: 8 fully-dense items dispatch to the
// bitset Eclat engine, 7 do not.
func TestAutoSelectMinDenseItemsBoundary(t *testing.T) {
	dense := func(nItems int) *transactions.DB {
		db := transactions.NewDB()
		items := make([]int, nItems)
		for i := range items {
			items[i] = i
		}
		for i := 0; i < 4; i++ {
			if err := db.Add(items...); err != nil {
				t.Fatal(err)
			}
		}
		return db
	}
	if got := selectName(t, dense(AutoMinDenseItems), 1); got != "Eclat(bitset)" {
		t.Errorf("at exactly AutoMinDenseItems: selected %s, want Eclat(bitset)", got)
	}
	// One frequent item fewer at the same (maximal) density: the dense arm
	// is barred; 7 items' 21 pair candidates exceed 4*4 transactions, so
	// dispatch lands on FPGrowth.
	if got := selectName(t, dense(AutoMinDenseItems-1), 1); got != "FPGrowth" {
		t.Errorf("below AutoMinDenseItems: selected %s, want FPGrowth", got)
	}
}

// TestAutoSelectDefaultsToApriori pins the fall-through arm: a small
// sparse frequent universe keeps the level-wise engine.
func TestAutoSelectDefaultsToApriori(t *testing.T) {
	db := transactions.NewDB()
	for i := 0; i < 10; i++ {
		if err := db.Add(0, 1); err != nil {
			t.Fatal(err)
		}
		if err := db.Add(2 + i); err != nil { // a long sparse tail
			t.Fatal(err)
		}
	}
	if got := selectName(t, db, 0.4); got != "Apriori" {
		t.Errorf("sparse small universe: selected %s, want Apriori", got)
	}
	// No frequent items at all also stays level-wise.
	one := transactions.NewDB()
	for i := 0; i < 10; i++ {
		if err := one.Add(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := selectName(t, one, 0.5); got != "Apriori" {
		t.Errorf("no frequent items: selected %s, want Apriori", got)
	}
}
