package assoc

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/dist"
	"repro/internal/fptree"
	"repro/internal/hashtree"
	"repro/internal/transactions"
)

// Engine names Distributed dispatches between.
const (
	// DistEngineApriori runs level-wise count distribution: every pass's
	// counting scan fans out over the workers (pass-1 arrays, triangular
	// pass 2, hash-tree buffers for k >= 3) and the coordinator merges and
	// thresholds, exactly Apriori's structure with the scans remoted.
	DistEngineApriori = "Apriori"
	// DistEngineFPGrowth builds the FP-tree distributed (one tree per
	// worker over its shards, merged path-wise by the coordinator) and
	// runs pattern growth locally over the merged tree.
	DistEngineFPGrowth = "FPGrowth"
)

// Distributed is the coordinator-side mining engine over internal/dist: it
// ships database shards to workers once, runs every counting scan remotely
// and merges the returned buffers with the same commutative integer adds
// the local engines use — so distributed results are byte-identical to a
// local Apriori or FPGrowth run, a property the tests pin at workers 1, 2
// and 4.
//
// Two shard sources exist. A plain Mine(db, minSupport) splits db into one
// contiguous shard per worker and ships them all (a fresh epoch per call,
// since a plain DB carries no version stamps). BindStore attaches a
// transactions.ShardedDB instead: Mine then ships the store's shards under
// their own version stamps and re-ships only shards whose version changed
// since the last run — the incremental maintainer's dirty-shard protocol
// carried across the transport, which is what makes Distributed a useful
// Incremental base (only dirty shards travel after an Append/DeleteAt).
type Distributed struct {
	// Transport carries shards and count requests. nil lazily builds an
	// in-process channel transport with Workers workers in gob round-trip
	// mode, so even the single-binary default pays (and measures) real
	// serialization.
	Transport dist.Transport
	// Workers sizes the lazily built default transport and bounds the
	// coordinator-side pattern-growth projection fan-out; <= 1 means 1.
	// It does not resize a Transport the caller provided.
	Workers int
	// Engine selects the mining strategy: DistEngineApriori (the default
	// for "") or DistEngineFPGrowth. Both produce identical results.
	Engine string
	// Retry is the coordinator's fault policy (per-call deadline, retry
	// budget, backoff); the zero value means the documented defaults.
	// Applied at the start of every Mine, so it can be changed between
	// mines but not during one.
	Retry dist.RetryPolicy
	// NoLocalFallback disables graceful degradation: with it set, losing
	// every worker fails the mine with an error wrapping
	// dist.ErrNoHealthyWorkers instead of falling back to local counting.
	NoLocalFallback bool

	hook     PassHook
	coord    *dist.Coordinator
	store    *transactions.ShardedDB
	epoch    uint64
	degraded bool
	fallback *dist.Worker
	// onStorePath remembers whether the last sync shipped store shards;
	// switching between the plain and store paths resets the coordinator,
	// since both use small-integer shard ids and a leftover plain-epoch
	// version could otherwise collide with a store version stamp and leave
	// a stale replica in place.
	onStorePath bool
}

// Name implements Miner.
func (d *Distributed) Name() string { return "Distributed" }

// SetWorkers implements WorkerSetter; it sizes the default transport, so
// it must be called before the first Mine to take effect.
func (d *Distributed) SetWorkers(n int) { d.Workers = n }

// SetPassHook implements PassObserver. The Apriori strategy emits final
// levels per pass; the FPGrowth strategy emits them in one burst at the
// end, after the merged tree is mined (pass 1 carries a nil level).
func (d *Distributed) SetPassHook(h PassHook) { d.hook = h }

// BindStore attaches the updatable store whose shard snapshots Mine
// ships. Placement and version state reset, so the next Mine re-ships
// everything and later Mines re-ship only dirty shards. Binding nil
// returns to the plain split-per-Mine mode.
func (d *Distributed) BindStore(s *transactions.ShardedDB) {
	d.store = s
	d.onStorePath = false
	if d.coord != nil {
		d.coord.Reset()
	}
}

// Coordinator returns the engine's coordinator, creating the default
// transport if none was provided — the handle tests and benchmarks use to
// read traffic stats.
func (d *Distributed) Coordinator() *dist.Coordinator {
	if d.coord == nil {
		t := d.Transport
		if t == nil {
			n := d.Workers
			if n < 1 {
				n = 1
			}
			t = dist.NewLocalTransport(n, true)
			d.Transport = t
		}
		d.coord = dist.NewCoordinator(t)
	}
	return d.coord
}

// Close releases the transport (in-process workers or RPC connections).
// The engine is not usable afterwards. Consumers that obtain the engine
// generically (core.Miners) can reach this through io.Closer; without a
// Close the lazily built default transport's worker goroutines live until
// process exit.
func (d *Distributed) Close() error {
	if d.Transport != nil {
		return d.Transport.Close()
	}
	return nil
}

// storeMatches reports whether db is a current snapshot of the bound
// store: same live length and, transaction by transaction, the same
// backing itemsets (Snapshot shares itemset headers with the store, so
// identity is a cheap pointer walk — no content comparison). A stale
// snapshot taken before mutations, or an unrelated database that merely
// matches the store's length, fails the walk and takes the plain-DB path
// instead of silently mining the store's current contents.
func (d *Distributed) storeMatches(db *transactions.DB) bool {
	if d.store == nil || d.store.Len() != db.Len() {
		return false
	}
	k := 0
	for i := 0; i < d.store.NumShards(); i++ {
		view, _ := d.store.ShardView(i)
		for _, tx := range view.Transactions {
			o := db.Transactions[k]
			k++
			if len(tx) != len(o) {
				return false
			}
			if len(tx) > 0 && &tx[0] != &o[0] {
				return false
			}
		}
	}
	return true
}

// sync ships the current shard set and returns the item universe size the
// pass-1 arrays are sized for. With a bound store of which db is a
// current snapshot (what Incremental hands a base miner), the store's
// version-stamped shards are synced and clean replicas are reused; any
// other db is split fresh under a new epoch so stale replicas can never
// leak into the counts.
func (d *Distributed) sync(ctx context.Context, db *transactions.DB) (int, error) {
	c := d.Coordinator()
	if d.storeMatches(db) {
		if !d.onStorePath {
			// Entering the store path (after a bind or a plain-path mine):
			// drop all placement/version state so every shard re-ships.
			c.Reset()
			d.onStorePath = true
		}
		payloads := make([]dist.ShardPayload, d.store.NumShards())
		for i := range payloads {
			view, version := d.store.ShardView(i)
			payloads[i] = dist.ShardPayload{ID: i, Version: version, Txs: view.Transactions}
		}
		return d.store.NumItems(), c.Sync(ctx, payloads)
	}
	// Plain DB: one contiguous shard per worker, versioned by a fresh
	// epoch per call because the db carries no version stamps of its own.
	c.Reset()
	d.onStorePath = false
	d.epoch++
	shards := db.Shards(c.Transport().NumWorkers())
	payloads := make([]dist.ShardPayload, len(shards))
	for i, sh := range shards {
		payloads[i] = dist.ShardPayload{ID: i, Version: d.epoch, Txs: sh.Transactions}
	}
	return db.NumItems(), c.Sync(ctx, payloads)
}

// Mine implements Miner.
func (d *Distributed) Mine(db *transactions.DB, minSupport float64) (*Result, error) {
	return d.MineContext(context.Background(), db, minSupport)
}

// MineContext implements ContextMiner: the coordinator's shard shipping
// and scan fan-outs all run under ctx, so cancellation unblocks mid-pass
// even while a worker call is in flight.
//
// When the whole cluster is lost (every call path has exhausted retries
// and failover, surfacing dist.ErrNoHealthyWorkers) and NoLocalFallback
// is unset, the mine degrades instead of failing: the remaining scans run
// on an in-process fallback worker holding the whole database as one
// shard — the exact per-shard counting code the workers run, so the
// result stays byte-identical — and every pass emitted from then on
// carries PassStat.Degraded. Degradation lasts for the rest of that mine;
// the next Mine tries the cluster again (and fails fast onto the fallback
// while the workers stay marked down — Coordinator.Revive clears them).
func (d *Distributed) MineContext(ctx context.Context, db *transactions.DB, minSupport float64) (*Result, error) {
	minCount, err := checkInput(db, minSupport)
	if err != nil {
		return emptyResult(), err
	}
	// Validate the engine before sync: a bad name must not pay (or
	// pollute) a full shard-shipping round first.
	switch d.Engine {
	case "", DistEngineApriori, DistEngineFPGrowth:
	default:
		return nil, fmt.Errorf("assoc: unknown distributed engine %q", d.Engine)
	}
	d.degraded, d.fallback = false, nil
	d.Coordinator().SetRetry(d.Retry)
	numItems, err := d.sync(ctx, db)
	if err != nil {
		if !d.canDegrade(err) {
			return nil, err
		}
		if derr := d.degrade(ctx, db); derr != nil {
			return nil, derr
		}
		numItems = db.NumItems()
	}
	if d.Engine == DistEngineFPGrowth {
		return d.mineFPGrowth(ctx, db, numItems, minCount)
	}
	return d.mineApriori(ctx, db, numItems, minCount)
}

// Degraded reports whether the last Mine fell back to local counting.
func (d *Distributed) Degraded() bool { return d.degraded }

// canDegrade reports whether err is the total-cluster-loss sentinel and
// local fallback is allowed.
func (d *Distributed) canDegrade(err error) bool {
	return !d.NoLocalFallback && errors.Is(err, dist.ErrNoHealthyWorkers)
}

// degrade builds the local fallback: an in-process dist.Worker holding
// the whole database as shard 0. Counting through the same Worker code
// path the cluster runs keeps the degraded result byte-identical.
func (d *Distributed) degrade(ctx context.Context, db *transactions.DB) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	w := dist.NewWorker()
	if err := w.Ship(dist.ShipArgs{Shards: []dist.ShardPayload{{ID: 0, Version: 1, Txs: db.Transactions}}}, &dist.ShipReply{}); err != nil {
		return err
	}
	d.fallback = w
	d.degraded = true
	return nil
}

// fallbackIDs is the degraded scan target: the single whole-db shard.
var fallbackIDs = []int{0}

// countItems is the pass-1 scan, remote or degraded; a cluster lost
// mid-mine degrades here and the scan reruns locally.
func (d *Distributed) countItems(ctx context.Context, db *transactions.DB, numItems int) ([]int, error) {
	if d.fallback != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var reply dist.CountsReply
		if err := d.fallback.CountItems(dist.CountItemsArgs{ShardIDs: fallbackIDs, NumItems: numItems}, &reply); err != nil {
			return nil, err
		}
		return reply.Counts, nil
	}
	counts, err := d.Coordinator().CountItems(ctx, numItems)
	if err != nil && d.canDegrade(err) {
		if derr := d.degrade(ctx, db); derr != nil {
			return nil, derr
		}
		return d.countItems(ctx, db, numItems)
	}
	return counts, err
}

// countPairs is the triangular pass-2 scan, remote or degraded.
func (d *Distributed) countPairs(ctx context.Context, db *transactions.DB, rank []int, n int) ([]int, error) {
	if d.fallback != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var reply dist.CountsReply
		if err := d.fallback.CountPairs(dist.CountPairsArgs{ShardIDs: fallbackIDs, Rank: rank, N: n}, &reply); err != nil {
			return nil, err
		}
		return reply.Counts, nil
	}
	counts, err := d.Coordinator().CountPairs(ctx, rank, n)
	if err != nil && d.canDegrade(err) {
		if derr := d.degrade(ctx, db); derr != nil {
			return nil, derr
		}
		return d.countPairs(ctx, db, rank, n)
	}
	return counts, err
}

// countCandidates is the pass-k (k >= 3) scan, remote or degraded.
func (d *Distributed) countCandidates(ctx context.Context, db *transactions.DB, k, fanout, maxLeaf int, cands []transactions.Itemset) ([]int, error) {
	if d.fallback != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var reply dist.CountsReply
		if err := d.fallback.CountCandidates(dist.CountCandidatesArgs{ShardIDs: fallbackIDs, K: k, Fanout: fanout, MaxLeaf: maxLeaf, Candidates: cands}, &reply); err != nil {
			return nil, err
		}
		return reply.Counts, nil
	}
	counts, err := d.Coordinator().CountCandidates(ctx, k, fanout, maxLeaf, cands)
	if err != nil && d.canDegrade(err) {
		if derr := d.degrade(ctx, db); derr != nil {
			return nil, derr
		}
		return d.countCandidates(ctx, db, k, fanout, maxLeaf, cands)
	}
	return counts, err
}

// buildTree is the pattern-growth tree build, remote or degraded.
func (d *Distributed) buildTree(ctx context.Context, db *transactions.DB, ranks *fptree.Ranks) (*fptree.Tree, error) {
	if d.fallback != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var reply dist.TreeReply
		if err := d.fallback.BuildTree(dist.BuildTreeArgs{ShardIDs: fallbackIDs, Ranks: ranks}, &reply); err != nil {
			return nil, err
		}
		return fptree.Import(ranks, reply.Nodes)
	}
	tree, err := d.Coordinator().BuildTree(ctx, ranks)
	if err != nil && d.canDegrade(err) {
		if derr := d.degrade(ctx, db); derr != nil {
			return nil, derr
		}
		return d.buildTree(ctx, db, ranks)
	}
	return tree, err
}

// mineApriori is Apriori.Mine with every counting scan remoted through the
// coordinator (or the degraded fallback); generation and thresholding stay
// local and identical.
func (d *Distributed) mineApriori(ctx context.Context, db *transactions.DB, numItems, minCount int) (*Result, error) {
	res := &Result{MinCount: minCount, NumTx: db.Len()}

	counts, err := d.countItems(ctx, db, numItems)
	if err != nil {
		return nil, err
	}
	var level []ItemsetCount
	for item, cnt := range counts {
		if cnt >= minCount {
			level = append(level, ItemsetCount{Items: transactions.Itemset{item}, Count: cnt})
		}
	}
	res.addPass(d.hook, PassStat{K: 1, Candidates: numItems, Frequent: len(level), Degraded: d.degraded}, level)
	for k := 2; len(level) > 0; k++ {
		res.Levels = append(res.Levels, level)
		if k == 2 {
			n := len(level)
			var l2 []ItemsetCount
			if n >= 2 {
				pairCounts, err := d.countPairs(ctx, db, l1Ranks(level, numItems), n)
				if err != nil {
					return nil, err
				}
				l2 = thresholdTriangle(level, pairCounts, minCount)
			}
			res.addPass(d.hook, PassStat{K: 2, Candidates: n * (n - 1) / 2, Frequent: len(l2), Degraded: d.degraded}, l2)
			level = l2
			continue
		}
		cands := aprioriGen(itemsetsOf(level))
		if len(cands) == 0 {
			break
		}
		maxLeaf := hashtree.DefaultMaxLeaf
		fanout := adaptiveFanout(len(cands), k, maxLeaf)
		candCounts, err := d.countCandidates(ctx, db, k, fanout, maxLeaf, cands)
		if err != nil {
			return nil, err
		}
		level = level[:0:0]
		for i, cand := range cands {
			if candCounts[i] >= minCount {
				level = append(level, ItemsetCount{Items: cand, Count: candCounts[i]})
			}
		}
		sortLevel(level)
		res.addPass(d.hook, PassStat{K: k, Candidates: len(cands), Frequent: len(level), Degraded: d.degraded}, level)
	}
	return res, nil
}

// mineFPGrowth distributes the pass-1 scan and the tree build, then grows
// patterns locally over the merged tree — FPGrowth.Mine with the two
// database passes remoted (or served by the degraded fallback).
func (d *Distributed) mineFPGrowth(ctx context.Context, db *transactions.DB, numItems, minCount int) (*Result, error) {
	res := &Result{MinCount: minCount, NumTx: db.Len()}

	counts, err := d.countItems(ctx, db, numItems)
	if err != nil {
		return nil, err
	}
	ranks := fptree.NewRanks(counts, minCount)
	res.addPass(d.hook, PassStat{K: 1, Candidates: numItems, Frequent: ranks.Len(), Degraded: d.degraded}, nil)
	if ranks.Len() == 0 {
		return res, nil
	}
	tree, err := d.buildTree(ctx, db, ranks)
	if err != nil {
		return nil, err
	}
	grower := &FPGrowth{Workers: d.Workers}
	perRank, err := grower.minePerRank(ctx, tree, minCount)
	if err != nil {
		return nil, err
	}
	assembleGrowthLevels(res, d.hook, perRank, d.degraded)
	return res, nil
}
