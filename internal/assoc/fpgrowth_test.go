package assoc

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/synth"
	"repro/internal/transactions"
)

// TestFPGrowthMatchesAprioriProperty is the acceptance property of the
// pattern-growth engine: FPGrowth's canonical result bytes equal Apriori's
// on random databases, at workers 1, 2 and 8.
func TestFPGrowthMatchesAprioriProperty(t *testing.T) {
	f := func(seed int64, minRaw uint8) bool {
		db := randomDB(seed)
		minSup := 0.05 + float64(minRaw%70)/100.0
		want, err := (&Apriori{}).Mine(db, minSup)
		if err != nil {
			t.Logf("Apriori: %v", err)
			return false
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := (&FPGrowth{Workers: workers}).Mine(db, minSup)
			if err != nil {
				t.Logf("FPGrowth workers=%d: %v", workers, err)
				return false
			}
			if !bytes.Equal(got.Canonical(), want.Canonical()) {
				t.Logf("FPGrowth workers=%d diverges (seed %d minSup %v)\n got %s\nwant %s",
					workers, seed, minSup, got.Canonical(), want.Canonical())
				return false
			}
			if got.MinCount != want.MinCount || got.NumTx != want.NumTx {
				t.Logf("FPGrowth workers=%d: MinCount/NumTx diverge", workers)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFPGrowthMatchesAprioriSynthetic pins byte-identity on a Quest
// workload deep enough to exercise multi-level conditional trees, the
// single-path shortcut, and every shard boundary of the parallel build.
func TestFPGrowthMatchesAprioriSynthetic(t *testing.T) {
	if testing.Short() {
		t.Skip("synthetic workload")
	}
	db, err := synth.Baskets(synth.TxI(10, 4, 800, 94))
	if err != nil {
		t.Fatal(err)
	}
	for _, minSup := range []float64{0.05, 0.01, 0.005} {
		want, err := (&Apriori{}).Mine(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := (&FPGrowth{Workers: workers}).Mine(db, minSup)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Canonical(), want.Canonical()) {
				t.Errorf("FPGrowth workers=%d at minsup %v diverges from Apriori", workers, minSup)
			}
		}
	}
}

// TestFPGrowthPassStats pins the pass-stat shape: pass 1 reports the item
// scan, later passes mirror the frequent counts (pattern growth has no
// candidate sets), and levels agree with the stats.
func TestFPGrowthPassStats(t *testing.T) {
	db := paperDB(t)
	res, err := (&FPGrowth{}).Mine(db, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes[0].K != 1 || res.Passes[0].Candidates != db.NumItems() {
		t.Fatalf("pass 1 = %+v", res.Passes[0])
	}
	if len(res.Passes) != len(res.Levels) {
		t.Fatalf("%d passes for %d levels", len(res.Passes), len(res.Levels))
	}
	for i, p := range res.Passes {
		if p.Frequent != len(res.Levels[i]) {
			t.Errorf("pass %d: Frequent = %d, level has %d", p.K, p.Frequent, len(res.Levels[i]))
		}
	}
}

// TestPartitionWithFPGrowthLocalMiner checks phase 1 through the
// pattern-growth engine finds the same global answer, serial and parallel.
func TestPartitionWithFPGrowthLocalMiner(t *testing.T) {
	db, err := synth.Baskets(synth.TxI(8, 3, 400, 17))
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&Partition{NumPartitions: 4}).Mine(db, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		p := &Partition{NumPartitions: 4, LocalMiner: &FPGrowth{}, Workers: workers}
		got, err := p.Mine(db, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Levels, want.Levels) {
			t.Errorf("workers=%d: Partition(FPGrowth local) diverges from tid-list local mining", workers)
		}
	}
}

// TestAutoDispatch pins the Auto heuristic's three arms and that Selected
// reports the engine used.
func TestAutoDispatch(t *testing.T) {
	a := &Auto{}
	if a.Selected() != "" {
		t.Fatalf("Selected before Mine = %q", a.Selected())
	}

	// Dense small universe (>= AutoMinDenseItems frequent items, high mean
	// density) → bitset Eclat.
	dense := transactions.NewDB()
	for i := 0; i < 200; i++ {
		if err := dense.Add(i%10, 10+i%5); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Mine(dense, 0.05); err != nil {
		t.Fatal(err)
	}
	if a.Selected() != "Eclat(bitset)" {
		t.Errorf("dense: selected %q, want Eclat(bitset)", a.Selected())
	}

	// Sparse, huge frequent universe relative to the database → FPGrowth.
	sparse := transactions.NewDB()
	for i := 0; i < 40; i++ {
		tx := make([]int, 0, 8)
		for j := 0; j < 8; j++ {
			tx = append(tx, (i*977+j*5003)%4000)
		}
		if err := sparse.Add(tx...); err != nil {
			t.Fatal(err)
		}
	}
	m, err := a.Select(sparse, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*FPGrowth); !ok {
		t.Errorf("sparse low-support: selected %q, want FPGrowth", a.Selected())
	}

	// Tiny frequent universe → Apriori.
	small := paperDB(t)
	if _, err := a.Mine(small, 0.5); err != nil {
		t.Fatal(err)
	}
	if a.Selected() != "Apriori" {
		t.Errorf("small: selected %q, want Apriori", a.Selected())
	}

	// Dispatch must not change results.
	db, err := synth.Baskets(synth.TxI(8, 3, 300, 5))
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&Apriori{}).Mine(db, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	got, err := (&Auto{Workers: 2}).Mine(db, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Canonical(), want.Canonical()) {
		t.Error("Auto result diverges from Apriori")
	}
}
