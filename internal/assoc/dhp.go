package assoc

import (
	"context"

	"repro/internal/transactions"
)

// DHP is the direct-hashing-and-pruning variant of Park, Chen & Yu
// (SIGMOD'95). During pass 1 it additionally hashes every 2-subset of every
// transaction into a bucket-count array; pass 2 then admits a candidate
// pair only if both items are frequent AND its bucket count reached the
// minimum support, which removes most of the usually enormous C2. Later
// passes proceed as in Apriori.
//
// The paper's progressive transaction trimming is omitted — it reduces
// constants on later passes without changing which candidates exist.
type DHP struct {
	// NumBuckets sizes the pass-1 hash table; zero means 1<<16.
	NumBuckets int
	// Workers distributes the counting scans (pass-1 histogram included)
	// across this many goroutines with per-worker counters merged after
	// each pass; <= 1 runs serially with identical results.
	Workers int

	hook PassHook
}

// Name implements Miner.
func (d *DHP) Name() string { return "DHP" }

// SetWorkers implements WorkerSetter.
func (d *DHP) SetWorkers(n int) { d.Workers = n }

// SetPassHook implements PassObserver. Every emitted level is final.
func (d *DHP) SetPassHook(h PassHook) { d.hook = h }

// Mine implements Miner.
func (d *DHP) Mine(db *transactions.DB, minSupport float64) (*Result, error) {
	return d.MineContext(context.Background(), db, minSupport)
}

// MineContext implements ContextMiner.
func (d *DHP) MineContext(ctx context.Context, db *transactions.DB, minSupport float64) (*Result, error) {
	minCount, err := checkInput(db, minSupport)
	if err != nil {
		return emptyResult(), err
	}
	buckets := d.NumBuckets
	if buckets <= 0 {
		buckets = 1 << 16
	}
	res := &Result{MinCount: minCount, NumTx: db.Len()}

	// Pass 1: item counts plus the pair-bucket histogram, count-distributed
	// across workers (each fills a private histogram pair, merged after).
	scan := func(sh transactions.Shard, ic, bc []int) {
		for off, tx := range sh.Transactions {
			if off%ctxStride == 0 && ctx.Err() != nil {
				return
			}
			for _, item := range tx {
				ic[item]++
			}
			for i := 0; i < len(tx); i++ {
				for j := i + 1; j < len(tx); j++ {
					bc[pairHash(tx[i], tx[j], buckets)]++
				}
			}
		}
	}
	var itemCounts, bucket []int
	if d.Workers <= 1 {
		itemCounts = make([]int, db.NumItems())
		bucket = make([]int, buckets)
		scan(transactions.Shard{Transactions: db.Transactions}, itemCounts, bucket)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	} else {
		// Part slices are sized to the worker cap; shards may be fewer and
		// the resulting nil tails are no-ops for mergeCounts.
		itemParts := make([][]int, d.Workers)
		bucketParts := make([][]int, d.Workers)
		if err := forEachShard(ctx, db, d.Workers, func(shard int, sh transactions.Shard) {
			ic := make([]int, db.NumItems())
			bc := make([]int, buckets)
			scan(sh, ic, bc)
			itemParts[shard] = ic
			bucketParts[shard] = bc
		}); err != nil {
			return nil, err
		}
		itemCounts = mergeCounts(itemParts, db.NumItems())
		bucket = mergeCounts(bucketParts, buckets)
	}
	var level []ItemsetCount
	for item, c := range itemCounts {
		if c >= minCount {
			level = append(level, ItemsetCount{Items: transactions.Itemset{item}, Count: c})
		}
	}
	res.addPass(d.hook, PassStat{K: 1, Candidates: db.NumItems(), Frequent: len(level)}, level)
	if len(level) == 0 {
		return res, nil
	}
	res.Levels = append(res.Levels, level)

	// Pass 2: candidate pairs pre-filtered by the bucket histogram.
	var c2 []transactions.Itemset
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i].Items[0], level[j].Items[0]
			if bucket[pairHash(a, b, buckets)] >= minCount {
				c2 = append(c2, transactions.Itemset{a, b})
			}
		}
	}
	apriori := &Apriori{Workers: d.Workers}
	for k := 2; ; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var cands []transactions.Itemset
		if k == 2 {
			cands = c2
		} else {
			cands = aprioriGen(itemsetsOf(level))
		}
		if len(cands) == 0 {
			break
		}
		counted, err := apriori.countWithHashTree(ctx, db, cands, k)
		if err != nil {
			return nil, err
		}
		level = nil
		for _, ic := range counted {
			if ic.Count >= minCount {
				level = append(level, ic)
			}
		}
		sortLevel(level)
		res.addPass(d.hook, PassStat{K: k, Candidates: len(cands), Frequent: len(level)}, level)
		if len(level) == 0 {
			break
		}
		res.Levels = append(res.Levels, level)
	}
	return res, nil
}

// pairHash is the paper-style order-independent pair hash.
func pairHash(a, b, buckets int) int {
	if a > b {
		a, b = b, a
	}
	return (a*2654435761 + b) % buckets
}
