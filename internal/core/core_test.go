package core

import (
	"errors"
	"testing"

	"repro/internal/synth"
)

func TestClassifiersLineup(t *testing.T) {
	cs := Classifiers()
	if len(cs) != 5 {
		t.Fatalf("classifiers = %d", len(cs))
	}
	names := map[string]bool{}
	for _, c := range cs {
		names[c.Name()] = true
	}
	for _, want := range []string{"tree(pruned)", "naivebayes", "knn(k=5)", "neuralnet", "1R"} {
		if !names[want] {
			t.Errorf("missing %q in %v", want, names)
		}
	}
}

func TestExtendedClassifiers(t *testing.T) {
	ext := ExtendedClassifiers()
	if len(ext) != 7 {
		t.Fatalf("extended classifiers = %d", len(ext))
	}
	names := map[string]bool{}
	for _, c := range ext {
		names[c.Name()] = true
	}
	if !names["bagging"] || !names["adaboost"] {
		t.Errorf("missing ensembles in %v", names)
	}
	for _, name := range []string{"bagging", "adaboost"} {
		tr, err := ClassifierByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := synth.Classify(synth.ClassifyConfig{NumRows: 150, Function: 1, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		clf, err := tr.Train(tbl)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c := clf.Predict(tbl.Rows[0]); c < 0 || c > 1 {
			t.Errorf("%s: prediction %d", name, c)
		}
	}
}

func TestClassifierByName(t *testing.T) {
	c, err := ClassifierByName("naivebayes")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "naivebayes" {
		t.Errorf("Name = %s", c.Name())
	}
	if _, err := ClassifierByName("nope"); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Errorf("unknown error = %v", err)
	}
}

func TestCompareClassifiers(t *testing.T) {
	tbl, err := synth.Classify(synth.ClassifyConfig{NumRows: 300, Function: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	comps, err := CompareClassifiers(tbl, Classifiers(), 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 5 {
		t.Fatalf("comparisons = %d", len(comps))
	}
	for _, c := range comps {
		if c.Accuracy < 0.4 || c.Accuracy > 1 {
			t.Errorf("%s accuracy = %v", c.Name, c.Accuracy)
		}
		if len(c.FoldAcc) != 3 {
			t.Errorf("%s folds = %d", c.Name, len(c.FoldAcc))
		}
	}
}

func TestAllTrainersProduceWorkingClassifiers(t *testing.T) {
	tbl, err := synth.Classify(synth.ClassifyConfig{NumRows: 200, Function: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range Classifiers() {
		clf, err := tr.Train(tbl)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		for i := 0; i < 10; i++ {
			c := clf.Predict(tbl.Rows[i])
			if c < 0 || c >= tbl.NumClasses() {
				t.Errorf("%s: prediction %d out of range", tr.Name(), c)
			}
		}
	}
}

func TestPartitionClusterers(t *testing.T) {
	p, err := synth.GaussianMixture(synth.GaussianConfig{
		NumPoints: 120, NumCluster: 3, Dims: 2, Spread: 0.5, Separation: 50, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range PartitionClusterers(3, 7) {
		res, err := c.Cluster(p.X)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if res.NumClusters() < 1 || res.NumClusters() > 3 {
			t.Errorf("%s: clusters = %d", c.Name(), res.NumClusters())
		}
		if len(res.Assignments) != len(p.X) {
			t.Errorf("%s: assignments = %d", c.Name(), len(res.Assignments))
		}
	}
}

func TestDensityAndBirchAdapters(t *testing.T) {
	p, err := synth.GaussianMixture(synth.GaussianConfig{
		NumPoints: 200, NumCluster: 2, Dims: 2, Spread: 0.5, Separation: 40, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var dbs Clusterer = &DBSCANClusterer{}
	dbs.(*DBSCANClusterer).Eps = 2
	dbs.(*DBSCANClusterer).MinPts = 4
	if _, err := dbs.Cluster(p.X); err != nil {
		t.Fatalf("dbscan: %v", err)
	}
	var birch Clusterer = &BIRCHClusterer{}
	birch.(*BIRCHClusterer).K = 2
	if _, err := birch.Cluster(p.X); err != nil {
		t.Fatalf("birch: %v", err)
	}
	if dbs.Name() != "dbscan" || birch.Name() != "birch" {
		t.Error("adapter names wrong")
	}
}

func TestMinersRegistry(t *testing.T) {
	ms := Miners()
	if len(ms) != 12 {
		t.Fatalf("miners = %d", len(ms))
	}
	m, err := MinerByName("Apriori")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "Apriori" {
		t.Errorf("Name = %s", m.Name())
	}
	for _, name := range []string{"FPGrowth", "Auto", "Distributed"} {
		if _, err := MinerByName(name); err != nil {
			t.Errorf("MinerByName(%s): %v", name, err)
		}
	}
	if _, err := MinerByName("nope"); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Errorf("unknown error = %v", err)
	}
}

func TestSequenceMinersRegistry(t *testing.T) {
	ms := SequenceMiners()
	if len(ms) != 2 {
		t.Fatalf("sequence miners = %d", len(ms))
	}
	if ms[0].Name() != "AprioriAll" || ms[1].Name() != "GSP" {
		t.Errorf("names = %s, %s", ms[0].Name(), ms[1].Name())
	}
}
