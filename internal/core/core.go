// Package core is the internal registry facade of the library — the "data
// mining techniques" toolbox the tutorial surveys, behind three small
// interfaces: classifier trainers, clusterers, and pattern miners. The
// experiment harness uses its registries to sweep every algorithm
// uniformly, and the classifier/clusterer CLIs program against it. For
// frequent-itemset mining the public, versioned entry point is the
// module-root mining package (context-aware Mine/MineStream and the
// stateful mining.Session, which finally absorbs the incremental
// maintainer); the miner registry here is a thin re-export of
// assoc.Registered, the single list both facades share.
package core

import (
	"errors"
	"fmt"

	"repro/internal/assoc"
	"repro/internal/bayes"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/ensemble"
	"repro/internal/eval"
	"repro/internal/knn"
	"repro/internal/neural"
	"repro/internal/rules"
	"repro/internal/seqmine"
	"repro/internal/tree"
)

// ErrUnknownAlgorithm reports a name missing from a registry.
var ErrUnknownAlgorithm = errors.New("core: unknown algorithm")

// ClassifierTrainer builds classifiers from tables under a common name.
type ClassifierTrainer interface {
	Name() string
	Train(t *dataset.Table) (eval.Classifier, error)
}

// --- classifier adapters ---

// TreeTrainer adapts tree.Build.
type TreeTrainer struct {
	Config tree.Config
	// Prune applies C4.5 pessimistic pruning after building.
	Prune bool
}

// Name implements ClassifierTrainer.
func (tr *TreeTrainer) Name() string {
	if tr.Prune {
		return "tree(pruned)"
	}
	return "tree"
}

// Train implements ClassifierTrainer.
func (tr *TreeTrainer) Train(t *dataset.Table) (eval.Classifier, error) {
	model, err := tree.Build(t, tr.Config)
	if err != nil {
		return nil, err
	}
	if tr.Prune {
		model.PrunePessimistic(0.25)
	}
	return model, nil
}

// BayesTrainer adapts bayes.Train.
type BayesTrainer struct{}

// Name implements ClassifierTrainer.
func (b *BayesTrainer) Name() string { return "naivebayes" }

// Train implements ClassifierTrainer.
func (b *BayesTrainer) Train(t *dataset.Table) (eval.Classifier, error) {
	return bayes.Train(t)
}

// KNNTrainer adapts knn.Train.
type KNNTrainer struct {
	K       int  // zero means 5
	UseTree bool // k-d tree backend
}

// Name implements ClassifierTrainer.
func (k *KNNTrainer) Name() string { return fmt.Sprintf("knn(k=%d)", k.k()) }

func (k *KNNTrainer) k() int {
	if k.K <= 0 {
		return 5
	}
	return k.K
}

// Train implements ClassifierTrainer.
func (k *KNNTrainer) Train(t *dataset.Table) (eval.Classifier, error) {
	kk := k.k()
	if kk > t.NumRows() {
		kk = t.NumRows()
	}
	return knn.Train(t, kk, k.UseTree)
}

// NeuralTrainer adapts neural.Train.
type NeuralTrainer struct {
	Config neural.Config
}

// Name implements ClassifierTrainer.
func (n *NeuralTrainer) Name() string { return "neuralnet" }

// Train implements ClassifierTrainer.
func (n *NeuralTrainer) Train(t *dataset.Table) (eval.Classifier, error) {
	return neural.Train(t, n.Config)
}

// OneRTrainer adapts rules.Train1R.
type OneRTrainer struct{}

// Name implements ClassifierTrainer.
func (o *OneRTrainer) Name() string { return "1R" }

// Train implements ClassifierTrainer.
func (o *OneRTrainer) Train(t *dataset.Table) (eval.Classifier, error) {
	return rules.Train1R(t)
}

// Classifiers returns the standard classifier suite of the survey, the
// lineup the EXP-T1 comparison sweeps.
func Classifiers() []ClassifierTrainer {
	return []ClassifierTrainer{
		&TreeTrainer{Config: tree.Config{Criterion: tree.GainRatio, MinLeaf: 2}, Prune: true},
		&BayesTrainer{},
		&KNNTrainer{K: 5, UseTree: true},
		&NeuralTrainer{Config: neural.Config{Hidden: []int{8}, Epochs: 30, LearningRate: 0.3, Momentum: 0.5}},
		&OneRTrainer{},
	}
}

// BaggingTrainer adapts ensemble.Bagging.
type BaggingTrainer struct {
	Rounds int
	Seed   int64
}

// Name implements ClassifierTrainer.
func (b *BaggingTrainer) Name() string { return "bagging" }

// Train implements ClassifierTrainer.
func (b *BaggingTrainer) Train(t *dataset.Table) (eval.Classifier, error) {
	bag := &ensemble.Bagging{
		Rounds: b.Rounds,
		Tree:   tree.Config{Criterion: tree.GainRatio, MinLeaf: 2},
		Seed:   b.Seed,
	}
	return bag.Train(t)
}

// AdaBoostTrainer adapts ensemble.AdaBoost.
type AdaBoostTrainer struct {
	Rounds   int
	MaxDepth int
	Seed     int64
}

// Name implements ClassifierTrainer.
func (a *AdaBoostTrainer) Name() string { return "adaboost" }

// Train implements ClassifierTrainer.
func (a *AdaBoostTrainer) Train(t *dataset.Table) (eval.Classifier, error) {
	boost := &ensemble.AdaBoost{Rounds: a.Rounds, MaxDepth: a.MaxDepth, Seed: a.Seed}
	return boost.Train(t)
}

// ExtendedClassifiers returns Classifiers() plus the committee methods —
// the survey era's "future work" that arrived while the tutorial was in
// press (bagging 1994, AdaBoost 1995).
func ExtendedClassifiers() []ClassifierTrainer {
	return append(Classifiers(),
		&BaggingTrainer{Rounds: 10},
		&AdaBoostTrainer{Rounds: 20, MaxDepth: 3},
	)
}

// ClassifierByName finds a trainer in ExtendedClassifiers() by name.
func ClassifierByName(name string) (ClassifierTrainer, error) {
	for _, c := range ExtendedClassifiers() {
		if c.Name() == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, name)
}

// Comparison is one classifier's cross-validated performance.
type Comparison struct {
	Name     string
	Accuracy float64
	MacroF1  float64
	FoldAcc  []float64
}

// CompareClassifiers cross-validates every trainer on the table.
func CompareClassifiers(t *dataset.Table, trainers []ClassifierTrainer, folds int, seed int64) ([]Comparison, error) {
	var out []Comparison
	for _, tr := range trainers {
		tr := tr
		res, err := eval.CrossValidate(t, folds, seed, func(train *dataset.Table) (eval.Classifier, error) {
			return tr.Train(train)
		})
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", tr.Name(), err)
		}
		out = append(out, Comparison{
			Name:     tr.Name(),
			Accuracy: res.Accuracy(),
			MacroF1:  res.Matrix.MacroF1(),
			FoldAcc:  res.FoldAccuracy,
		})
	}
	return out, nil
}

// Clusterer is the common clustering interface.
type Clusterer interface {
	Name() string
	Cluster(points [][]float64) (*cluster.Result, error)
}

// --- clusterer adapters ---

// KMeansClusterer adapts cluster.KMeans.
type KMeansClusterer struct{ cluster.KMeans }

// Name implements Clusterer.
func (c *KMeansClusterer) Name() string { return "kmeans" }

// Cluster implements Clusterer.
func (c *KMeansClusterer) Cluster(points [][]float64) (*cluster.Result, error) {
	return c.Run(points)
}

// PAMClusterer adapts cluster.PAM.
type PAMClusterer struct{ cluster.PAM }

// Name implements Clusterer.
func (c *PAMClusterer) Name() string { return "pam" }

// Cluster implements Clusterer.
func (c *PAMClusterer) Cluster(points [][]float64) (*cluster.Result, error) {
	return c.Run(points)
}

// CLARAClusterer adapts cluster.CLARA.
type CLARAClusterer struct{ cluster.CLARA }

// Name implements Clusterer.
func (c *CLARAClusterer) Name() string { return "clara" }

// Cluster implements Clusterer.
func (c *CLARAClusterer) Cluster(points [][]float64) (*cluster.Result, error) {
	return c.Run(points)
}

// CLARANSClusterer adapts cluster.CLARANS.
type CLARANSClusterer struct{ cluster.CLARANS }

// Name implements Clusterer.
func (c *CLARANSClusterer) Name() string { return "clarans" }

// Cluster implements Clusterer.
func (c *CLARANSClusterer) Cluster(points [][]float64) (*cluster.Result, error) {
	return c.Run(points)
}

// DBSCANClusterer adapts cluster.DBSCAN.
type DBSCANClusterer struct{ cluster.DBSCAN }

// Name implements Clusterer.
func (c *DBSCANClusterer) Name() string { return "dbscan" }

// Cluster implements Clusterer.
func (c *DBSCANClusterer) Cluster(points [][]float64) (*cluster.Result, error) {
	return c.Run(points)
}

// BIRCHClusterer adapts cluster.BIRCH.
type BIRCHClusterer struct{ cluster.BIRCH }

// Name implements Clusterer.
func (c *BIRCHClusterer) Name() string { return "birch" }

// Cluster implements Clusterer.
func (c *BIRCHClusterer) Cluster(points [][]float64) (*cluster.Result, error) {
	return c.Run(points)
}

// PartitionClusterers returns the k-partitioning suite at a given k, the
// EXP-C1 lineup.
func PartitionClusterers(k int, seed int64) []Clusterer {
	return []Clusterer{
		&KMeansClusterer{cluster.KMeans{K: k, Seed: seed}},
		&PAMClusterer{cluster.PAM{K: k}},
		&CLARAClusterer{cluster.CLARA{K: k, Seed: seed}},
		&CLARANSClusterer{cluster.CLARANS{K: k, Seed: seed}},
	}
}

// Miners returns the association-rule miner suite, the EXP-A1 lineup. The
// canonical list lives in assoc.Registered, which the public mining
// package shares, so this is a thin re-export.
func Miners() []assoc.Miner {
	return assoc.Registered()
}

// MinerByName finds a miner by its Name().
func MinerByName(name string) (assoc.Miner, error) {
	for _, m := range Miners() {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, name)
}

// SequenceMiners returns the sequential-pattern lineup of EXP-S1.
func SequenceMiners() []seqmine.Miner {
	return []seqmine.Miner{&seqmine.AprioriAll{}, &seqmine.GSP{}}
}
