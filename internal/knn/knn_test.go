package knn

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/synth"
)

func randomPoints(rng *rand.Rand, n, dims int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, dims)
		for d := range pts[i] {
			pts[i][d] = rng.Float64() * 100
		}
	}
	return pts
}

func TestKDTreeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range []int{1, 2, 3, 5} {
		pts := randomPoints(rng, 300, dims)
		tree, err := NewKDTree(pts)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			q := make([]float64, dims)
			for d := range q {
				q[d] = rng.Float64() * 100
			}
			for _, k := range []int{1, 5, 17} {
				got, err := tree.KNearest(q, k)
				if err != nil {
					t.Fatal(err)
				}
				want, err := BruteKNearest(pts, q, k)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("dims %d k %d: lengths %d vs %d", dims, k, len(got), len(want))
				}
				for i := range got {
					if got[i].Dist2 != want[i].Dist2 {
						t.Fatalf("dims %d k %d pos %d: dist %v vs %v",
							dims, k, i, got[i].Dist2, want[i].Dist2)
					}
				}
			}
		}
	}
}

func TestKDTreeSmallLeafSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomPoints(rng, 100, 2)
	for _, leaf := range []int{1, 2, 4, 64} {
		tree, err := NewKDTreeLeaf(pts, leaf)
		if err != nil {
			t.Fatal(err)
		}
		q := []float64{50, 50}
		got, err := tree.KNearest(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := BruteKNearest(pts, q, 3)
		for i := range got {
			if got[i].Dist2 != want[i].Dist2 {
				t.Fatalf("leaf %d: mismatch at %d", leaf, i)
			}
		}
	}
}

func TestKDTreeDuplicatePoints(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {2, 2}, {3, 3}}
	tree, err := NewKDTreeLeaf(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tree.KNearest([]float64{1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, nb := range got {
		if nb.Dist2 != 0 {
			t.Errorf("expected all three zero-distance duplicates, got %v", got)
		}
	}
}

func TestKDTreeErrors(t *testing.T) {
	if _, err := NewKDTree(nil); !errors.Is(err, ErrNoPoints) {
		t.Errorf("empty error = %v", err)
	}
	if _, err := NewKDTree([][]float64{{1}, {1, 2}}); !errors.Is(err, ErrDims) {
		t.Errorf("ragged error = %v", err)
	}
	tree, err := NewKDTree([][]float64{{1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.KNearest([]float64{1}, 0); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0 error = %v", err)
	}
	if _, err := tree.KNearest([]float64{1}, 3); !errors.Is(err, ErrBadK) {
		t.Errorf("k>n error = %v", err)
	}
	if _, err := tree.KNearest([]float64{1, 2}, 1); !errors.Is(err, ErrDims) {
		t.Errorf("dims error = %v", err)
	}
	if _, err := BruteKNearest(nil, []float64{1}, 1); !errors.Is(err, ErrNoPoints) {
		t.Errorf("brute empty error = %v", err)
	}
}

// Property: the k-d tree and brute force agree on nearest-neighbour
// distance for random configurations.
func TestKDTreeProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		dims := 1 + rng.Intn(4)
		pts := randomPoints(rng, n, dims)
		k := 1 + int(kRaw)%10
		if k > n {
			k = n
		}
		tree, err := NewKDTreeLeaf(pts, 1+rng.Intn(8))
		if err != nil {
			return false
		}
		q := make([]float64, dims)
		for d := range q {
			q[d] = rng.Float64() * 100
		}
		got, err := tree.KNearest(q, k)
		if err != nil {
			return false
		}
		want, err := BruteKNearest(pts, q, k)
		if err != nil {
			return false
		}
		for i := range got {
			if got[i].Dist2 != want[i].Dist2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func classifierTable(t *testing.T) *dataset.Table {
	t.Helper()
	tbl, err := synth.Classify(synth.ClassifyConfig{NumRows: 600, Function: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestClassifierTreeAndBruteAgree(t *testing.T) {
	tbl := classifierTable(t)
	brute, err := Train(tbl, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Train(tbl, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	test, err := synth.Classify(synth.ClassifyConfig{NumRows: 200, Function: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range test.Rows {
		if brute.Predict(row) != tree.Predict(row) {
			t.Fatalf("row %d: brute %d != tree %d", i, brute.Predict(row), tree.Predict(row))
		}
	}
}

func TestClassifierAccuracy(t *testing.T) {
	tbl := classifierTable(t)
	c, err := Train(tbl, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	test, err := synth.Classify(synth.ClassifyConfig{NumRows: 500, Function: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, row := range test.Rows {
		if c.Predict(row) == test.Class(i) {
			correct++
		}
	}
	acc := float64(correct) / float64(test.NumRows())
	if acc < 0.7 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestClassifierValidation(t *testing.T) {
	tbl := classifierTable(t)
	if _, err := Train(nil, 3, false); !errors.Is(err, ErrNoPoints) {
		t.Errorf("nil error = %v", err)
	}
	if _, err := Train(tbl, 0, false); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0 error = %v", err)
	}
	noClass := dataset.New(dataset.NewNumericAttribute("x"))
	if err := noClass.AppendRow([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Train(noClass, 1, false); !errors.Is(err, ErrNoClassAttr) {
		t.Errorf("no-class error = %v", err)
	}
}

func TestClassifierMissingValues(t *testing.T) {
	tbl := classifierTable(t)
	tbl.Rows[0][0] = dataset.Missing
	c, err := Train(tbl, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	row := append([]float64(nil), tbl.Rows[1]...)
	row[2] = dataset.Missing
	if got := c.Predict(row); got != 0 && got != 1 {
		t.Errorf("prediction with missing = %d", got)
	}
}

func TestCategoricalMismatchCost(t *testing.T) {
	// Two categorical values must contribute exactly 1.0 to the squared
	// distance regardless of index separation.
	tbl := dataset.New(
		dataset.NewCategoricalAttribute("c", "a", "b", "z"),
		dataset.NewCategoricalAttribute("class", "x", "y"),
	)
	tbl.ClassIndex = 1
	if err := tbl.AppendRow([]float64{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow([]float64{2, 1}); err != nil {
		t.Fatal(err)
	}
	c, err := Train(tbl, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	va := c.vectorize([]float64{0, 0})
	vz := c.vectorize([]float64{2, 0})
	if d := dist2(va, vz); d < 0.999 || d > 1.001 {
		t.Errorf("categorical mismatch distance² = %v, want 1", d)
	}
	vsame := c.vectorize([]float64{0, 1})
	if d := dist2(va, vsame); d != 0 {
		t.Errorf("identical categorical distance² = %v, want 0", d)
	}
}
