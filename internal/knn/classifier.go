package knn

import (
	"errors"
	"math"

	"repro/internal/dataset"
)

// Classifier is a k-nearest-neighbour classifier over a dataset.Table.
// Numeric attributes are min-max scaled to [0, 1] (so no attribute
// dominates the distance) and categorical attributes contribute a 0/1
// mismatch term — the standard mixed-attribute treatment. Missing values
// are imputed at the attribute midpoint (0.5 after scaling).
type Classifier struct {
	K        int
	UseTree  bool
	LeafSize int // k-d tree leaf size; zero means DefaultLeafSize

	attrs    []dataset.Attribute
	classIdx int
	nClasses int
	mins     []float64
	ranges   []float64
	vectors  [][]float64
	labels   []int
	tree     *KDTree
}

// ErrNoClassAttr reports a table without a categorical class.
var ErrNoClassAttr = errors.New("knn: table has no categorical class attribute")

// Train memorises the training table (kNN is lazy; "training" computes the
// scaling and optionally the k-d tree).
func Train(t *dataset.Table, k int, useTree bool) (*Classifier, error) {
	return TrainLeaf(t, k, useTree, 0)
}

// TrainLeaf is Train with an explicit k-d tree leaf size.
func TrainLeaf(t *dataset.Table, k int, useTree bool, leafSize int) (*Classifier, error) {
	if t == nil || t.NumRows() == 0 {
		return nil, ErrNoPoints
	}
	if k < 1 || k > t.NumRows() {
		return nil, ErrBadK
	}
	if t.NumClasses() < 1 {
		return nil, ErrNoClassAttr
	}
	c := &Classifier{
		K: k, UseTree: useTree, LeafSize: leafSize,
		attrs: t.Attributes, classIdx: t.ClassIndex, nClasses: t.NumClasses(),
	}
	c.fitScaling(t)
	c.vectors = make([][]float64, t.NumRows())
	c.labels = make([]int, t.NumRows())
	for i, row := range t.Rows {
		c.vectors[i] = c.vectorize(row)
		c.labels[i] = t.Class(i)
	}
	if useTree {
		ls := leafSize
		if ls <= 0 {
			ls = DefaultLeafSize
		}
		tree, err := NewKDTreeLeaf(c.vectors, ls)
		if err != nil {
			return nil, err
		}
		c.tree = tree
	}
	return c, nil
}

func (c *Classifier) fitScaling(t *dataset.Table) {
	n := len(t.Attributes)
	c.mins = make([]float64, n)
	c.ranges = make([]float64, n)
	for j, a := range t.Attributes {
		if j == t.ClassIndex || a.Kind != dataset.Numeric {
			c.ranges[j] = 1
			continue
		}
		min, max := math.Inf(1), math.Inf(-1)
		for _, row := range t.Rows {
			v := row[j]
			if dataset.IsMissing(v) {
				continue
			}
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if min > max { // all missing
			min, max = 0, 1
		}
		c.mins[j] = min
		if max > min {
			c.ranges[j] = max - min
		} else {
			c.ranges[j] = 1
		}
	}
}

// vectorize maps a table row to the scaled feature vector (class column
// excluded). Categorical values are kept as indices; their distance
// contribution is handled by matching exactly: since a mismatch of
// category indices can differ by more than 1 after subtraction, categories
// are expanded one-hot-scaled so any mismatch costs the same.
func (c *Classifier) vectorize(row []float64) []float64 {
	var out []float64
	for j, a := range c.attrs {
		if j == c.classIdx {
			continue
		}
		v := row[j]
		if a.Kind == dataset.Numeric {
			if dataset.IsMissing(v) {
				out = append(out, 0.5)
			} else {
				out = append(out, (v-c.mins[j])/c.ranges[j])
			}
			continue
		}
		// One-hot with 1/sqrt(2) scaling: two differing categories then
		// contribute exactly 1 to the squared distance, matching the 0/1
		// mismatch convention.
		oh := make([]float64, len(a.Values))
		if !dataset.IsMissing(v) {
			idx := int(v)
			if idx >= 0 && idx < len(oh) {
				oh[idx] = 1 / math.Sqrt2
			}
		}
		out = append(out, oh...)
	}
	return out
}

// Predict returns the majority class among the k nearest neighbours,
// breaking ties toward the nearer neighbour's class.
func (c *Classifier) Predict(row []float64) int {
	q := c.vectorize(row)
	var nn []Neighbor
	if c.tree != nil {
		nn, _ = c.tree.KNearest(q, c.K)
	} else {
		nn, _ = BruteKNearest(c.vectors, q, c.K)
	}
	votes := make([]int, c.nClasses)
	for _, nb := range nn {
		votes[c.labels[nb.Index]]++
	}
	best, bestVotes := -1, -1
	for _, nb := range nn { // iterate nearest-first for tie-breaking
		cl := c.labels[nb.Index]
		if votes[cl] > bestVotes {
			best, bestVotes = cl, votes[cl]
		}
	}
	return best
}
