// Package knn implements the k-nearest-neighbour classifier with two query
// backends: brute-force scan and a k-d tree (Bentley), the structure whose
// query-time advantage at low dimensionality EXP-K1 reproduces. A
// brute-force query is O(n·d); a k-d tree query averages O(log n) at low
// dimensionality and degrades toward the scan as d grows (the curse the
// experiment shows).
package knn

import (
	"container/heap"
	"errors"
	"sort"
)

// Errors returned by the package.
var (
	ErrNoPoints = errors.New("knn: empty point set")
	ErrBadK     = errors.New("knn: k must be in [1, n]")
	ErrDims     = errors.New("knn: inconsistent dimensions")
)

// KDTree is a static k-d tree over a point set. Points are referenced by
// index so the classifier can map neighbours to labels.
type KDTree struct {
	points   [][]float64
	dims     int
	root     *kdNode
	leafSize int
}

type kdNode struct {
	axis  int
	split float64
	left  *kdNode
	right *kdNode
	// idx holds point indices at leaves (nil for interior nodes).
	idx []int
}

// DefaultLeafSize is the bucket size below which nodes stay leaves.
const DefaultLeafSize = 16

// NewKDTree builds a tree with the default leaf size.
func NewKDTree(points [][]float64) (*KDTree, error) {
	return NewKDTreeLeaf(points, DefaultLeafSize)
}

// NewKDTreeLeaf builds a tree with an explicit leaf size (for the
// ablation benchmark).
func NewKDTreeLeaf(points [][]float64, leafSize int) (*KDTree, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	dims := len(points[0])
	for _, p := range points {
		if len(p) != dims {
			return nil, ErrDims
		}
	}
	if leafSize < 1 {
		leafSize = 1
	}
	t := &KDTree{points: points, dims: dims, leafSize: leafSize}
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(idx, 0)
	return t, nil
}

func (t *KDTree) build(idx []int, depth int) *kdNode {
	if len(idx) <= t.leafSize {
		return &kdNode{idx: idx}
	}
	axis := depth % t.dims
	sort.Slice(idx, func(a, b int) bool {
		return t.points[idx[a]][axis] < t.points[idx[b]][axis]
	})
	mid := len(idx) / 2
	// Push equal values to the right child so the split is consistent.
	for mid > 0 && t.points[idx[mid]][axis] == t.points[idx[mid-1]][axis] {
		mid--
	}
	if mid == 0 {
		mid = len(idx) / 2
	}
	return &kdNode{
		axis:  axis,
		split: t.points[idx[mid]][axis],
		left:  t.build(append([]int(nil), idx[:mid]...), depth+1),
		right: t.build(append([]int(nil), idx[mid:]...), depth+1),
	}
}

// Neighbor is a query result: a point index with its squared distance.
type Neighbor struct {
	Index int
	Dist2 float64
}

// maxHeap over neighbour distances so the worst current neighbour pops
// first.
type nnHeap []Neighbor

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].Dist2 > h[j].Dist2 }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// KNearest returns the k nearest points to q sorted by ascending distance.
func (t *KDTree) KNearest(q []float64, k int) ([]Neighbor, error) {
	if k < 1 || k > len(t.points) {
		return nil, ErrBadK
	}
	if len(q) != t.dims {
		return nil, ErrDims
	}
	h := make(nnHeap, 0, k+1)
	t.search(t.root, q, k, &h)
	out := make([]Neighbor, len(h))
	copy(out, h)
	sort.Slice(out, func(i, j int) bool { return out[i].Dist2 < out[j].Dist2 })
	return out, nil
}

func (t *KDTree) search(n *kdNode, q []float64, k int, h *nnHeap) {
	if n.idx != nil {
		for _, i := range n.idx {
			d2 := dist2(q, t.points[i])
			if len(*h) < k {
				heap.Push(h, Neighbor{Index: i, Dist2: d2})
			} else if d2 < (*h)[0].Dist2 {
				heap.Pop(h)
				heap.Push(h, Neighbor{Index: i, Dist2: d2})
			}
		}
		return
	}
	first, second := n.left, n.right
	if q[n.axis] >= n.split {
		first, second = n.right, n.left
	}
	t.search(first, q, k, h)
	// Prune the far side unless the splitting plane is closer than the
	// current worst neighbour (or we still lack k neighbours).
	planeD := q[n.axis] - n.split
	if len(*h) < k || planeD*planeD < (*h)[0].Dist2 {
		t.search(second, q, k, h)
	}
}

func dist2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// BruteKNearest is the O(n) reference query.
func BruteKNearest(points [][]float64, q []float64, k int) ([]Neighbor, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	if k < 1 || k > len(points) {
		return nil, ErrBadK
	}
	h := make(nnHeap, 0, k+1)
	for i, p := range points {
		d2 := dist2(q, p)
		if len(h) < k {
			heap.Push(&h, Neighbor{Index: i, Dist2: d2})
		} else if d2 < h[0].Dist2 {
			heap.Pop(&h)
			heap.Push(&h, Neighbor{Index: i, Dist2: d2})
		}
	}
	out := make([]Neighbor, len(h))
	copy(out, h)
	sort.Slice(out, func(i, j int) bool { return out[i].Dist2 < out[j].Dist2 })
	return out, nil
}
