// Package dataset provides the tabular data substrate shared by the
// classification and clustering packages: typed attributes (numeric and
// categorical), instances, an in-memory Table, CSV I/O with schema
// inference, train/test splitting, and equal-width/equal-frequency
// discretization.
//
// A Table stores every cell as a float64. Numeric attributes store the value
// directly; categorical attributes store the index into the attribute's
// Values slice. Missing values are represented by NaN and are reported by
// IsMissing.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/stats"
)

// AttributeKind distinguishes numeric from categorical attributes.
type AttributeKind int

const (
	// Numeric attributes hold real values.
	Numeric AttributeKind = iota
	// Categorical attributes hold an index into a finite value set.
	Categorical
)

// String returns the kind name.
func (k AttributeKind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("AttributeKind(%d)", int(k))
	}
}

// Attribute describes one column of a Table.
type Attribute struct {
	Name   string
	Kind   AttributeKind
	Values []string // category labels; nil for numeric attributes

	index map[string]int // lazy reverse lookup for Values
}

// NewNumericAttribute returns a numeric attribute with the given name.
func NewNumericAttribute(name string) Attribute {
	return Attribute{Name: name, Kind: Numeric}
}

// NewCategoricalAttribute returns a categorical attribute with the given
// ordered value set.
func NewCategoricalAttribute(name string, values ...string) Attribute {
	return Attribute{Name: name, Kind: Categorical, Values: append([]string(nil), values...)}
}

// ValueIndex returns the index of label in the attribute's value set, or -1
// if absent or the attribute is numeric.
func (a *Attribute) ValueIndex(label string) int {
	if a.Kind != Categorical {
		return -1
	}
	if a.index == nil || len(a.index) != len(a.Values) {
		a.index = make(map[string]int, len(a.Values))
		for i, v := range a.Values {
			a.index[v] = i
		}
	}
	if i, ok := a.index[label]; ok {
		return i
	}
	return -1
}

// AddValue appends label to a categorical attribute's value set if new, and
// returns its index.
func (a *Attribute) AddValue(label string) int {
	if i := a.ValueIndex(label); i >= 0 {
		return i
	}
	a.Values = append(a.Values, label)
	i := len(a.Values) - 1
	if a.index != nil {
		a.index[label] = i
	}
	return i
}

// Missing is the cell encoding of a missing value.
var Missing = math.NaN()

// IsMissing reports whether a cell value encodes a missing value.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Errors returned by Table operations.
var (
	ErrNoClass       = errors.New("dataset: table has no class attribute")
	ErrColumnBounds  = errors.New("dataset: column index out of range")
	ErrRowWidth      = errors.New("dataset: row width does not match schema")
	ErrUnknownLabel  = errors.New("dataset: unknown categorical label")
	ErrEmptyTable    = errors.New("dataset: empty table")
	ErrBadProportion = errors.New("dataset: split proportion outside (0,1)")
)

// Table is an in-memory dataset: a schema plus rows of float64 cells.
// ClassIndex is the column index of the class attribute for supervised
// tasks, or -1 when there is none.
type Table struct {
	Attributes []Attribute
	Rows       [][]float64
	ClassIndex int
}

// New returns an empty table with the given schema and no class attribute.
func New(attrs ...Attribute) *Table {
	return &Table{Attributes: attrs, ClassIndex: -1}
}

// NumRows returns the number of instances.
func (t *Table) NumRows() int { return len(t.Rows) }

// NumAttributes returns the number of columns.
func (t *Table) NumAttributes() int { return len(t.Attributes) }

// ClassAttribute returns the class attribute.
func (t *Table) ClassAttribute() (*Attribute, error) {
	if t.ClassIndex < 0 || t.ClassIndex >= len(t.Attributes) {
		return nil, ErrNoClass
	}
	return &t.Attributes[t.ClassIndex], nil
}

// NumClasses returns the number of class labels, or 0 when the table has no
// categorical class attribute.
func (t *Table) NumClasses() int {
	a, err := t.ClassAttribute()
	if err != nil || a.Kind != Categorical {
		return 0
	}
	return len(a.Values)
}

// Class returns the class index of row i.
func (t *Table) Class(i int) int {
	return int(t.Rows[i][t.ClassIndex])
}

// AppendRow adds a row after validating its width against the schema and
// that categorical cells are in range (or missing).
func (t *Table) AppendRow(row []float64) error {
	if len(row) != len(t.Attributes) {
		return fmt.Errorf("%w: got %d cells, want %d", ErrRowWidth, len(row), len(t.Attributes))
	}
	for j, v := range row {
		if IsMissing(v) {
			continue
		}
		a := &t.Attributes[j]
		if a.Kind == Categorical {
			idx := int(v)
			if float64(idx) != v || idx < 0 || idx >= len(a.Values) {
				return fmt.Errorf("%w: column %q cell %v", ErrUnknownLabel, a.Name, v)
			}
		}
	}
	t.Rows = append(t.Rows, row)
	return nil
}

// AppendLabeled adds a row given as string labels, converting each cell
// according to the schema. Numeric cells must parse as floats; categorical
// labels must already be in the attribute's value set. Empty strings and
// "?" become missing values.
func (t *Table) AppendLabeled(cells []string) error {
	if len(cells) != len(t.Attributes) {
		return fmt.Errorf("%w: got %d cells, want %d", ErrRowWidth, len(cells), len(t.Attributes))
	}
	row := make([]float64, len(cells))
	for j, s := range cells {
		v, err := t.parseCell(j, s)
		if err != nil {
			return err
		}
		row[j] = v
	}
	t.Rows = append(t.Rows, row)
	return nil
}

func (t *Table) parseCell(j int, s string) (float64, error) {
	if s == "" || s == "?" {
		return Missing, nil
	}
	a := &t.Attributes[j]
	if a.Kind == Numeric {
		var v float64
		if _, err := fmt.Sscanf(s, "%g", &v); err != nil {
			return 0, fmt.Errorf("dataset: column %q: parsing %q: %w", a.Name, s, err)
		}
		return v, nil
	}
	idx := a.ValueIndex(s)
	if idx < 0 {
		return 0, fmt.Errorf("%w: column %q value %q", ErrUnknownLabel, a.Name, s)
	}
	return float64(idx), nil
}

// Column returns a copy of column j's cells.
func (t *Table) Column(j int) ([]float64, error) {
	if j < 0 || j >= len(t.Attributes) {
		return nil, ErrColumnBounds
	}
	out := make([]float64, len(t.Rows))
	for i, row := range t.Rows {
		out[i] = row[j]
	}
	return out, nil
}

// CellLabel renders the cell at (i, j) as a string: category label for
// categorical attributes, %g for numeric, "?" for missing.
func (t *Table) CellLabel(i, j int) string {
	v := t.Rows[i][j]
	if IsMissing(v) {
		return "?"
	}
	a := &t.Attributes[j]
	if a.Kind == Categorical {
		idx := int(v)
		if idx >= 0 && idx < len(a.Values) {
			return a.Values[idx]
		}
		return "?"
	}
	return fmt.Sprintf("%g", v)
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	attrs := make([]Attribute, len(t.Attributes))
	for i, a := range t.Attributes {
		attrs[i] = Attribute{Name: a.Name, Kind: a.Kind, Values: append([]string(nil), a.Values...)}
	}
	rows := make([][]float64, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = append([]float64(nil), r...)
	}
	return &Table{Attributes: attrs, Rows: rows, ClassIndex: t.ClassIndex}
}

// Subset returns a table sharing this table's schema and containing copies
// of the selected row indices.
func (t *Table) Subset(rowIdx []int) *Table {
	out := &Table{Attributes: t.Attributes, ClassIndex: t.ClassIndex}
	out.Rows = make([][]float64, 0, len(rowIdx))
	for _, i := range rowIdx {
		out.Rows = append(out.Rows, t.Rows[i])
	}
	return out
}

// Shuffle permutes the rows in place using rng.
func (t *Table) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(t.Rows), func(i, j int) {
		t.Rows[i], t.Rows[j] = t.Rows[j], t.Rows[i]
	})
}

// Split partitions the table into two tables where the first receives
// proportion p of the rows (rounded down, but at least one row in each part
// when possible). Rows are taken in order; shuffle first for a random split.
func (t *Table) Split(p float64) (*Table, *Table, error) {
	if p <= 0 || p >= 1 {
		return nil, nil, ErrBadProportion
	}
	if len(t.Rows) < 2 {
		return nil, nil, ErrEmptyTable
	}
	n := int(p * float64(len(t.Rows)))
	if n == 0 {
		n = 1
	}
	if n == len(t.Rows) {
		n = len(t.Rows) - 1
	}
	first := make([]int, n)
	for i := range first {
		first[i] = i
	}
	second := make([]int, len(t.Rows)-n)
	for i := range second {
		second[i] = n + i
	}
	return t.Subset(first), t.Subset(second), nil
}

// ClassDistribution returns the count of each class label among the rows.
func (t *Table) ClassDistribution() ([]int, error) {
	if _, err := t.ClassAttribute(); err != nil {
		return nil, err
	}
	counts := make([]int, t.NumClasses())
	for i := range t.Rows {
		c := t.Class(i)
		if c >= 0 && c < len(counts) {
			counts[c]++
		}
	}
	return counts, nil
}

// MajorityClass returns the most frequent class index, breaking ties toward
// the lower index.
func (t *Table) MajorityClass() (int, error) {
	counts, err := t.ClassDistribution()
	if err != nil {
		return 0, err
	}
	if len(counts) == 0 {
		return 0, ErrNoClass
	}
	best := 0
	for c, n := range counts {
		if n > counts[best] {
			best = c
		}
	}
	return best, nil
}

// SummarizeColumn returns descriptive statistics for a numeric column,
// skipping missing cells.
func (t *Table) SummarizeColumn(j int) (stats.Summary, error) {
	col, err := t.Column(j)
	if err != nil {
		return stats.Summary{}, err
	}
	vals := col[:0]
	for _, v := range col {
		if !IsMissing(v) {
			vals = append(vals, v)
		}
	}
	return stats.Summarize(vals)
}

// sortedUnique returns the sorted distinct non-missing values of xs.
func sortedUnique(xs []float64) []float64 {
	cp := make([]float64, 0, len(xs))
	for _, v := range xs {
		if !IsMissing(v) {
			cp = append(cp, v)
		}
	}
	sort.Float64s(cp)
	out := cp[:0]
	for i, v := range cp {
		if i == 0 || v != cp[i-1] {
			out = append(out, v)
		}
	}
	return out
}
