package dataset

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestCSVRoundTripProperty: any randomly generated table survives a
// WriteCSV/ReadCSV round trip cell-for-cell (as rendered labels).
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nNum := 1 + rng.Intn(3)
		nCat := 1 + rng.Intn(3)
		var attrs []Attribute
		for i := 0; i < nNum; i++ {
			attrs = append(attrs, NewNumericAttribute(fmt.Sprintf("n%d", i)))
		}
		for i := 0; i < nCat; i++ {
			vals := make([]string, 2+rng.Intn(3))
			for v := range vals {
				vals[v] = fmt.Sprintf("c%d_v%d", i, v)
			}
			attrs = append(attrs, NewCategoricalAttribute(fmt.Sprintf("c%d", i), vals...))
		}
		tbl := New(attrs...)
		tbl.ClassIndex = len(attrs) - 1
		rows := 1 + rng.Intn(30)
		for r := 0; r < rows; r++ {
			row := make([]float64, len(attrs))
			for j, a := range attrs {
				if rng.Float64() < 0.1 {
					row[j] = Missing
					continue
				}
				if a.Kind == Numeric {
					// Limited precision keeps %g rendering lossless.
					row[j] = float64(rng.Intn(2000)-1000) / 8
				} else {
					row[j] = float64(rng.Intn(len(a.Values)))
				}
			}
			if err := tbl.AppendRow(row); err != nil {
				return false
			}
		}
		var sb strings.Builder
		if err := tbl.WriteCSV(&sb); err != nil {
			return false
		}
		back, err := ReadCSV(strings.NewReader(sb.String()), attrs[len(attrs)-1].Name)
		if err != nil {
			return false
		}
		if back.NumRows() != tbl.NumRows() {
			return false
		}
		for i := 0; i < tbl.NumRows(); i++ {
			for j := range attrs {
				if tbl.CellLabel(i, j) != back.CellLabel(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestStratifiedSplitPreservesSchema: Subset of shuffled indices always
// shares the schema and class index.
func TestSubsetSharesSchema(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := New(NewNumericAttribute("x"), NewCategoricalAttribute("y", "a", "b"))
		tbl.ClassIndex = 1
		for i := 0; i < 20; i++ {
			if err := tbl.AppendRow([]float64{rng.Float64(), float64(i % 2)}); err != nil {
				return false
			}
		}
		idx := rng.Perm(20)[:5]
		sub := tbl.Subset(idx)
		if sub.ClassIndex != 1 || sub.NumAttributes() != 2 || sub.NumRows() != 5 {
			return false
		}
		for i, id := range idx {
			if sub.Rows[i][0] != tbl.Rows[id][0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
