package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV parses CSV data with a header row into a Table, inferring the
// schema: a column whose every non-missing cell parses as a float becomes
// numeric, otherwise categorical with values in first-appearance order.
// Empty cells and "?" are missing. classColumn names the class attribute;
// pass "" for none.
func ReadCSV(r io.Reader, classColumn string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(records) < 1 {
		return nil, ErrEmptyTable
	}
	header := records[0]
	data := records[1:]

	nCols := len(header)
	isNumeric := make([]bool, nCols)
	for j := 0; j < nCols; j++ {
		isNumeric[j] = true
		seen := false
		for _, rec := range data {
			if j >= len(rec) {
				return nil, fmt.Errorf("%w: row has %d cells, header has %d", ErrRowWidth, len(rec), nCols)
			}
			cell := strings.TrimSpace(rec[j])
			if cell == "" || cell == "?" {
				continue
			}
			seen = true
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				isNumeric[j] = false
				break
			}
		}
		if !seen {
			// All-missing column: keep numeric.
			isNumeric[j] = true
		}
	}

	attrs := make([]Attribute, nCols)
	classIdx := -1
	for j, name := range header {
		name = strings.TrimSpace(name)
		if isNumeric[j] {
			attrs[j] = NewNumericAttribute(name)
		} else {
			attrs[j] = NewCategoricalAttribute(name)
		}
		if classColumn != "" && name == classColumn {
			classIdx = j
		}
	}
	if classColumn != "" && classIdx < 0 {
		return nil, fmt.Errorf("dataset: class column %q not in header", classColumn)
	}
	// The class column must be categorical for classification; coerce a
	// numeric-looking class column to categorical so labels are preserved.
	if classIdx >= 0 && attrs[classIdx].Kind == Numeric {
		attrs[classIdx] = NewCategoricalAttribute(attrs[classIdx].Name)
		isNumeric[classIdx] = false
	}

	t := New(attrs...)
	t.ClassIndex = classIdx
	for _, rec := range data {
		row := make([]float64, nCols)
		for j := 0; j < nCols; j++ {
			cell := strings.TrimSpace(rec[j])
			if cell == "" || cell == "?" {
				row[j] = Missing
				continue
			}
			if isNumeric[j] {
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: column %q: %w", header[j], err)
				}
				row[j] = v
			} else {
				row[j] = float64(t.Attributes[j].AddValue(cell))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// WriteCSV writes the table as CSV with a header row. Categorical cells are
// written as their labels and missing cells as "?".
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Attributes))
	for j, a := range t.Attributes {
		header[j] = a.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing csv header: %w", err)
	}
	rec := make([]string, len(t.Attributes))
	for i := range t.Rows {
		for j := range t.Attributes {
			rec[j] = t.CellLabel(i, j)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
