package dataset

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func twoClassTable(t *testing.T) *Table {
	t.Helper()
	tbl := New(
		NewNumericAttribute("x"),
		NewCategoricalAttribute("color", "red", "green", "blue"),
		NewCategoricalAttribute("class", "yes", "no"),
	)
	tbl.ClassIndex = 2
	rows := [][]float64{
		{1.0, 0, 0},
		{2.0, 1, 0},
		{3.0, 2, 1},
		{4.0, 0, 1},
		{5.0, 1, 0},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestAttributeKindString(t *testing.T) {
	if Numeric.String() != "numeric" || Categorical.String() != "categorical" {
		t.Error("kind String() wrong")
	}
	if AttributeKind(9).String() != "AttributeKind(9)" {
		t.Error("unknown kind String() wrong")
	}
}

func TestAttributeValueIndex(t *testing.T) {
	a := NewCategoricalAttribute("c", "x", "y")
	if got := a.ValueIndex("y"); got != 1 {
		t.Errorf("ValueIndex(y) = %d, want 1", got)
	}
	if got := a.ValueIndex("z"); got != -1 {
		t.Errorf("ValueIndex(z) = %d, want -1", got)
	}
	n := NewNumericAttribute("n")
	if got := n.ValueIndex("x"); got != -1 {
		t.Errorf("numeric ValueIndex = %d, want -1", got)
	}
}

func TestAttributeAddValue(t *testing.T) {
	a := NewCategoricalAttribute("c", "x")
	if got := a.AddValue("x"); got != 0 {
		t.Errorf("AddValue existing = %d, want 0", got)
	}
	if got := a.AddValue("y"); got != 1 {
		t.Errorf("AddValue new = %d, want 1", got)
	}
	if got := a.ValueIndex("y"); got != 1 {
		t.Errorf("ValueIndex after AddValue = %d, want 1", got)
	}
}

func TestAppendRowValidation(t *testing.T) {
	tbl := twoClassTable(t)
	if err := tbl.AppendRow([]float64{1}); !errors.Is(err, ErrRowWidth) {
		t.Errorf("short row error = %v, want ErrRowWidth", err)
	}
	if err := tbl.AppendRow([]float64{1, 9, 0}); !errors.Is(err, ErrUnknownLabel) {
		t.Errorf("out-of-range category error = %v, want ErrUnknownLabel", err)
	}
	if err := tbl.AppendRow([]float64{1, 0.5, 0}); !errors.Is(err, ErrUnknownLabel) {
		t.Errorf("fractional category error = %v, want ErrUnknownLabel", err)
	}
	if err := tbl.AppendRow([]float64{Missing, Missing, Missing}); err != nil {
		t.Errorf("missing cells should be accepted: %v", err)
	}
}

func TestAppendLabeled(t *testing.T) {
	tbl := New(
		NewNumericAttribute("x"),
		NewCategoricalAttribute("c", "a", "b"),
	)
	if err := tbl.AppendLabeled([]string{"3.5", "b"}); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[0][0] != 3.5 || tbl.Rows[0][1] != 1 {
		t.Errorf("row = %v", tbl.Rows[0])
	}
	if err := tbl.AppendLabeled([]string{"?", ""}); err != nil {
		t.Fatal(err)
	}
	if !IsMissing(tbl.Rows[1][0]) || !IsMissing(tbl.Rows[1][1]) {
		t.Errorf("missing row = %v", tbl.Rows[1])
	}
	if err := tbl.AppendLabeled([]string{"1.0", "zzz"}); !errors.Is(err, ErrUnknownLabel) {
		t.Errorf("unknown label error = %v", err)
	}
	if err := tbl.AppendLabeled([]string{"notanumber", "a"}); err == nil {
		t.Error("bad numeric should error")
	}
	if err := tbl.AppendLabeled([]string{"1"}); !errors.Is(err, ErrRowWidth) {
		t.Errorf("short labeled row error = %v", err)
	}
}

func TestColumnAndCellLabel(t *testing.T) {
	tbl := twoClassTable(t)
	col, err := tbl.Column(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(col) != 5 || col[2] != 3.0 {
		t.Errorf("column 0 = %v", col)
	}
	if _, err := tbl.Column(7); !errors.Is(err, ErrColumnBounds) {
		t.Errorf("out-of-range column error = %v", err)
	}
	if got := tbl.CellLabel(0, 1); got != "red" {
		t.Errorf("CellLabel categorical = %q", got)
	}
	if got := tbl.CellLabel(0, 0); got != "1" {
		t.Errorf("CellLabel numeric = %q", got)
	}
}

func TestClassHelpers(t *testing.T) {
	tbl := twoClassTable(t)
	if tbl.NumClasses() != 2 {
		t.Errorf("NumClasses = %d", tbl.NumClasses())
	}
	dist, err := tbl.ClassDistribution()
	if err != nil {
		t.Fatal(err)
	}
	if dist[0] != 3 || dist[1] != 2 {
		t.Errorf("distribution = %v", dist)
	}
	maj, err := tbl.MajorityClass()
	if err != nil {
		t.Fatal(err)
	}
	if maj != 0 {
		t.Errorf("majority = %d, want 0", maj)
	}
	noClass := New(NewNumericAttribute("x"))
	if _, err := noClass.ClassDistribution(); !errors.Is(err, ErrNoClass) {
		t.Errorf("no-class error = %v", err)
	}
	if noClass.NumClasses() != 0 {
		t.Error("NumClasses without class should be 0")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tbl := twoClassTable(t)
	cp := tbl.Clone()
	cp.Rows[0][0] = 99
	cp.Attributes[1].Values[0] = "mutated"
	if tbl.Rows[0][0] == 99 {
		t.Error("Clone shares row storage")
	}
	if tbl.Attributes[1].Values[0] == "mutated" {
		t.Error("Clone shares attribute values")
	}
}

func TestSubset(t *testing.T) {
	tbl := twoClassTable(t)
	sub := tbl.Subset([]int{4, 0})
	if sub.NumRows() != 2 || sub.Rows[0][0] != 5.0 || sub.Rows[1][0] != 1.0 {
		t.Errorf("subset rows = %v", sub.Rows)
	}
	if sub.ClassIndex != tbl.ClassIndex {
		t.Error("subset lost class index")
	}
}

func TestSplit(t *testing.T) {
	tbl := twoClassTable(t)
	a, b, err := tbl.Split(0.6)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 3 || b.NumRows() != 2 {
		t.Errorf("split sizes = %d, %d", a.NumRows(), b.NumRows())
	}
	if _, _, err := tbl.Split(0); !errors.Is(err, ErrBadProportion) {
		t.Errorf("p=0 error = %v", err)
	}
	if _, _, err := tbl.Split(1.5); !errors.Is(err, ErrBadProportion) {
		t.Errorf("p=1.5 error = %v", err)
	}
	tiny := New(NewNumericAttribute("x"))
	if _, _, err := tiny.Split(0.5); !errors.Is(err, ErrEmptyTable) {
		t.Errorf("empty split error = %v", err)
	}
}

func TestSplitAlwaysNonEmpty(t *testing.T) {
	tbl := twoClassTable(t)
	for _, p := range []float64{0.01, 0.99} {
		a, b, err := tbl.Split(p)
		if err != nil {
			t.Fatal(err)
		}
		if a.NumRows() == 0 || b.NumRows() == 0 {
			t.Errorf("p=%v gave empty part: %d/%d", p, a.NumRows(), b.NumRows())
		}
		if a.NumRows()+b.NumRows() != tbl.NumRows() {
			t.Errorf("p=%v lost rows", p)
		}
	}
}

func TestShuffleDeterministic(t *testing.T) {
	t1 := twoClassTable(t)
	t2 := twoClassTable(t)
	t1.Shuffle(rand.New(rand.NewSource(42)))
	t2.Shuffle(rand.New(rand.NewSource(42)))
	for i := range t1.Rows {
		if t1.Rows[i][0] != t2.Rows[i][0] {
			t.Fatal("same seed produced different shuffles")
		}
	}
}

func TestSummarizeColumn(t *testing.T) {
	tbl := twoClassTable(t)
	s, err := tbl.SummarizeColumn(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
}

func TestReadCSVInference(t *testing.T) {
	in := `x,color,class
1.5,red,yes
2.5,blue,no
?,red,yes
3.5,,no
`
	tbl, err := ReadCSV(strings.NewReader(in), "class")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Attributes[0].Kind != Numeric {
		t.Error("x should be numeric")
	}
	if tbl.Attributes[1].Kind != Categorical {
		t.Error("color should be categorical")
	}
	if tbl.ClassIndex != 2 {
		t.Errorf("ClassIndex = %d", tbl.ClassIndex)
	}
	if tbl.NumRows() != 4 {
		t.Errorf("rows = %d", tbl.NumRows())
	}
	if !IsMissing(tbl.Rows[2][0]) || !IsMissing(tbl.Rows[3][1]) {
		t.Error("missing cells not detected")
	}
	if got := tbl.CellLabel(1, 1); got != "blue" {
		t.Errorf("cell(1,1) = %q", got)
	}
}

func TestReadCSVNumericClassCoerced(t *testing.T) {
	in := "x,class\n1,0\n2,1\n"
	tbl, err := ReadCSV(strings.NewReader(in), "class")
	if err != nil {
		t.Fatal(err)
	}
	a, err := tbl.ClassAttribute()
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != Categorical {
		t.Error("numeric class column should be coerced to categorical")
	}
	if len(a.Values) != 2 {
		t.Errorf("class values = %v", a.Values)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), ""); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n"), "zzz"); err == nil {
		t.Error("unknown class column should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := twoClassTable(t)
	tbl.Rows[0][0] = Missing
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()), "class")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tbl.NumRows() {
		t.Fatalf("rows = %d, want %d", back.NumRows(), tbl.NumRows())
	}
	for i := range tbl.Rows {
		for j := range tbl.Attributes {
			a, b := tbl.CellLabel(i, j), back.CellLabel(i, j)
			if a != b {
				t.Errorf("cell (%d,%d): %q != %q", i, j, a, b)
			}
		}
	}
}

func TestFitEqualWidth(t *testing.T) {
	tbl := New(NewNumericAttribute("x"))
	for _, v := range []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 10} {
		if err := tbl.AppendRow([]float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	d, err := FitEqualWidth(tbl, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBins() != 5 {
		t.Errorf("bins = %d", d.NumBins())
	}
	if got := d.Bin(0); got != 0 {
		t.Errorf("Bin(0) = %d", got)
	}
	if got := d.Bin(10); got != 4 {
		t.Errorf("Bin(10) = %d", got)
	}
	if got := d.Bin(2); got != 1 {
		t.Errorf("Bin(2) = %d, want 1 (boundary goes up)", got)
	}
	if got := d.Bin(Missing); got != -1 {
		t.Errorf("Bin(missing) = %d", got)
	}
}

func TestFitEqualFrequency(t *testing.T) {
	tbl := New(NewNumericAttribute("x"))
	for i := 0; i < 100; i++ {
		if err := tbl.AppendRow([]float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	d, err := FitEqualFrequency(tbl, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, d.NumBins())
	for i := 0; i < 100; i++ {
		counts[d.Bin(float64(i))]++
	}
	for b, n := range counts {
		if n < 20 || n > 30 {
			t.Errorf("bin %d count = %d, want ~25", b, n)
		}
	}
}

func TestFitEqualFrequencyRepeatedValues(t *testing.T) {
	tbl := New(NewNumericAttribute("x"))
	for i := 0; i < 50; i++ {
		if err := tbl.AppendRow([]float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	d, err := FitEqualFrequency(tbl, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBins() > 2 {
		t.Errorf("constant column bins = %d, want collapsed", d.NumBins())
	}
}

func TestDiscretizerErrors(t *testing.T) {
	tbl := twoClassTable(t)
	if _, err := FitEqualWidth(tbl, 0, 1); !errors.Is(err, ErrBadBins) {
		t.Errorf("1 bin error = %v", err)
	}
	if _, err := FitEqualWidth(tbl, 1, 3); err == nil {
		t.Error("categorical column should error")
	}
	if _, err := FitEqualFrequency(tbl, 1, 3); err == nil {
		t.Error("categorical column should error")
	}
	empty := New(NewNumericAttribute("x"))
	if _, err := FitEqualWidth(empty, 0, 3); !errors.Is(err, ErrEmptyTable) {
		t.Errorf("empty error = %v", err)
	}
}

func TestDiscretizerApply(t *testing.T) {
	tbl := New(NewNumericAttribute("x"), NewCategoricalAttribute("class", "a", "b"))
	tbl.ClassIndex = 1
	vals := []float64{0, 2, 4, 6, 8}
	for i, v := range vals {
		if err := tbl.AppendRow([]float64{v, float64(i % 2)}); err != nil {
			t.Fatal(err)
		}
	}
	tbl.Rows[2][0] = Missing
	d, err := FitEqualWidth(tbl, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Apply(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if out.Attributes[0].Kind != Categorical {
		t.Error("applied column should be categorical")
	}
	if !IsMissing(out.Rows[2][0]) {
		t.Error("missing should stay missing")
	}
	if out.Rows[0][0] != 0 || out.Rows[4][0] != 1 {
		t.Errorf("binned = %v, %v", out.Rows[0][0], out.Rows[4][0])
	}
	// Original untouched.
	if tbl.Attributes[0].Kind != Numeric {
		t.Error("Apply mutated source table")
	}
}

// Property: every non-missing value lands in a valid bin, and bins are
// monotone in the value.
func TestDiscretizerProperty(t *testing.T) {
	tbl := New(NewNumericAttribute("x"))
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		if err := tbl.AppendRow([]float64{rng.NormFloat64() * 10}); err != nil {
			t.Fatal(err)
		}
	}
	d, err := FitEqualWidth(tbl, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		ba, bb := d.Bin(a), d.Bin(b)
		if ba < 0 || ba >= d.NumBins() || bb < 0 || bb >= d.NumBins() {
			return false
		}
		if a <= b && ba > bb {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSortedUnique(t *testing.T) {
	got := sortedUnique([]float64{3, 1, 3, 2, Missing, 1})
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sortedUnique = %v", got)
		}
	}
}
