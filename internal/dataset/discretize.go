package dataset

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Discretizer maps a numeric column to bin indices. It is fitted on one
// table and can then be applied to another with the same schema, so the
// test fold never leaks into bin boundaries.
type Discretizer struct {
	Column int
	// Cuts are the ascending interior cut points; value v falls in bin i
	// where i is the number of cuts <= v.
	Cuts []float64
}

// ErrBadBins is returned when a discretizer is requested with fewer than
// two bins.
var ErrBadBins = errors.New("dataset: need at least two bins")

// FitEqualWidth fits an equal-width discretizer with the given number of
// bins on column j of t, ignoring missing values.
func FitEqualWidth(t *Table, j, bins int) (*Discretizer, error) {
	if bins < 2 {
		return nil, ErrBadBins
	}
	col, err := t.Column(j)
	if err != nil {
		return nil, err
	}
	if t.Attributes[j].Kind != Numeric {
		return nil, fmt.Errorf("dataset: column %q is not numeric", t.Attributes[j].Name)
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range col {
		if IsMissing(v) {
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min > max {
		return nil, ErrEmptyTable
	}
	cuts := make([]float64, 0, bins-1)
	width := (max - min) / float64(bins)
	for i := 1; i < bins; i++ {
		cuts = append(cuts, min+width*float64(i))
	}
	return &Discretizer{Column: j, Cuts: cuts}, nil
}

// FitEqualFrequency fits an equal-frequency discretizer on column j of t.
// Duplicate cut points are collapsed, so fewer than bins bins may result on
// highly repeated data.
func FitEqualFrequency(t *Table, j, bins int) (*Discretizer, error) {
	if bins < 2 {
		return nil, ErrBadBins
	}
	col, err := t.Column(j)
	if err != nil {
		return nil, err
	}
	if t.Attributes[j].Kind != Numeric {
		return nil, fmt.Errorf("dataset: column %q is not numeric", t.Attributes[j].Name)
	}
	vals := make([]float64, 0, len(col))
	for _, v := range col {
		if !IsMissing(v) {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return nil, ErrEmptyTable
	}
	sort.Float64s(vals)
	cuts := make([]float64, 0, bins-1)
	for i := 1; i < bins; i++ {
		idx := i * len(vals) / bins
		if idx >= len(vals) {
			idx = len(vals) - 1
		}
		c := vals[idx]
		if len(cuts) == 0 || c > cuts[len(cuts)-1] {
			cuts = append(cuts, c)
		}
	}
	return &Discretizer{Column: j, Cuts: cuts}, nil
}

// Bin returns the bin index for value v: the count of cuts <= v, so bins
// are [-inf,c0), [c0,c1), ..., [ck,+inf). Missing values return -1.
func (d *Discretizer) Bin(v float64) int {
	if IsMissing(v) {
		return -1
	}
	return sort.SearchFloat64s(d.Cuts, v+tinyEps)
}

// tinyEps nudges boundary values into the upper bin so that Bin(cut) lands
// in the bin that starts at cut, matching the half-open interval semantics.
const tinyEps = 1e-12

// NumBins returns the number of bins the discretizer produces.
func (d *Discretizer) NumBins() int { return len(d.Cuts) + 1 }

// Apply replaces column d.Column of t with binned categorical values,
// returning a new table. Missing values stay missing.
func (d *Discretizer) Apply(t *Table) (*Table, error) {
	if d.Column < 0 || d.Column >= len(t.Attributes) {
		return nil, ErrColumnBounds
	}
	out := t.Clone()
	labels := make([]string, d.NumBins())
	for i := range labels {
		lo, hi := "-inf", "+inf"
		if i > 0 {
			lo = fmt.Sprintf("%g", d.Cuts[i-1])
		}
		if i < len(d.Cuts) {
			hi = fmt.Sprintf("%g", d.Cuts[i])
		}
		labels[i] = fmt.Sprintf("[%s,%s)", lo, hi)
	}
	out.Attributes[d.Column] = NewCategoricalAttribute(t.Attributes[d.Column].Name, labels...)
	for i := range out.Rows {
		v := out.Rows[i][d.Column]
		if IsMissing(v) {
			continue
		}
		out.Rows[i][d.Column] = float64(d.Bin(v))
	}
	return out, nil
}
