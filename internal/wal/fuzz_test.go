package wal

import (
	"errors"
	"reflect"
	"testing"
)

// FuzzDecodeRecord pins the decoder's safety contract: on arbitrary
// bytes it returns typed errors only (ErrTruncatedRecord or
// ErrCorruptRecord), never panics, never reads past the buffer, and a
// successful decode re-encodes to something that decodes to the same op
// — the recovery path runs this decoder over whatever a crash left on
// disk, so it must be total.
func FuzzDecodeRecord(f *testing.F) {
	valid := appendRecord(nil, 7, Op{Kind: 0, Items: []int{1, 2, 3}})
	f.Add(valid)                         // intact record
	f.Add(valid[:len(valid)-3])          // torn tail
	f.Add(valid[:1])                     // truncated length
	f.Add([]byte{})                      // empty
	crc := append([]byte(nil), valid...) // CRC-corrupt
	crc[len(crc)-1] ^= 0xff
	f.Add(crc)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})      // length overflow
	f.Add(appendRecordRaw([]byte{0x01, 0x00, 0x00, 0x90, 0x80, 0x80, 0x80, 0x10})) // item-count bomb
	f.Fuzz(func(t *testing.T, data []byte) {
		op, seq, n, err := decodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrTruncatedRecord) && !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := appendRecord(nil, seq, op)
		op2, seq2, _, err := decodeRecord(re)
		if err != nil || seq2 != seq || op2.Kind != op.Kind || op2.TID != op.TID ||
			!reflect.DeepEqual(op2.Items, op.Items) {
			t.Fatalf("re-encode diverged: %+v/%d vs %+v/%d (%v)", op, seq, op2, seq2, err)
		}
	})
}

// FuzzDecodeSnapshot holds decodeSnapshot to the same totality bar.
func FuzzDecodeSnapshot(f *testing.F) {
	blob, _ := encodeSnapshot(rowsAt(3), 9)
	f.Add(blob)
	f.Add(blob[:len(blob)-2])
	f.Add([]byte(snapMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		txs, ops, err := decodeSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		re, err := encodeSnapshot(txs, ops)
		if err != nil {
			t.Fatalf("re-encode of valid snapshot: %v", err)
		}
		txs2, ops2, err := decodeSnapshot(re)
		if err != nil || ops2 != ops || len(txs2) != len(txs) {
			t.Fatalf("re-encode diverged: %v", err)
		}
	})
}
