package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/transactions"
)

// opFixture returns a deterministic op for sequence position i (1-based),
// mixing appends, deletes and store-invalid payloads — the log must
// round-trip all of them verbatim.
func opFixture(i int) Op {
	switch i % 4 {
	case 0:
		return Op{Kind: 1, TID: i / 2}
	case 1:
		return Op{Kind: 0, Items: []int{i, i + 1, i * 3}}
	case 2:
		return Op{Kind: 0, Items: []int{-i, 7}} // store-invalid, still logged
	default:
		return Op{Kind: 0, Items: nil}
	}
}

// rowsAt is the snapshot fixture: c single-item rows.
func rowsAt(c int) []transactions.Itemset {
	rows := make([]transactions.Itemset, c)
	for i := range rows {
		rows[i] = transactions.Itemset{i}
	}
	return rows
}

func TestRecordRoundTrip(t *testing.T) {
	ops := []Op{
		{},
		{Kind: 0, Items: []int{5, 1, 5, -3}},
		{Kind: 1, TID: 1 << 40},
		{Kind: 99, Items: []int{0}, TID: -9},
	}
	var buf []byte
	for i, op := range ops {
		buf = appendRecord(buf, uint64(i+1), op)
	}
	off := 0
	for i, want := range ops {
		op, seq, n, err := decodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("record %d: seq %d", i, seq)
		}
		if op.Kind != want.Kind || op.TID != want.TID || !reflect.DeepEqual(op.Items, want.Items) {
			t.Fatalf("record %d: got %+v, want %+v", i, op, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	valid := appendRecord(nil, 7, Op{Kind: 0, Items: []int{1, 2, 3}})
	t.Run("truncated prefixes", func(t *testing.T) {
		for n := 0; n < len(valid); n++ {
			_, _, _, err := decodeRecord(valid[:n])
			if !errors.Is(err, ErrTruncatedRecord) && !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("prefix %d: got %v", n, err)
			}
		}
	})
	t.Run("bit flips", func(t *testing.T) {
		for i := range valid {
			bad := append([]byte(nil), valid...)
			bad[i] ^= 0x40
			op, seq, n, err := decodeRecord(bad)
			if err == nil && (seq != 7 || n != len(valid) || !reflect.DeepEqual(op.Items, []int{1, 2, 3})) {
				t.Fatalf("flip at %d: silently decoded %+v seq %d", i, op, seq)
			}
		}
	})
	t.Run("length overflow", func(t *testing.T) {
		bad := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
		if _, _, _, err := decodeRecord(bad); !errors.Is(err, ErrCorruptRecord) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("item count bomb", func(t *testing.T) {
		// Payload claims 2^32 items with 0 bytes behind them.
		payload := []byte{0x01, 0x00, 0x00, 0x90, 0x80, 0x80, 0x80, 0x10}
		rec := appendRecordRaw(payload)
		if _, _, _, err := decodeRecord(rec); !errors.Is(err, ErrCorruptRecord) {
			t.Fatalf("got %v", err)
		}
	})
}

func TestSegmentHeaderRoundTrip(t *testing.T) {
	for _, start := range []uint64{0, 1, 1 << 50} {
		hdr := appendSegmentHeader(nil, start)
		got, n, err := decodeSegmentHeader(hdr)
		if err != nil || got != start || n != len(hdr) {
			t.Fatalf("start %d: got %d, n %d, err %v", start, got, n, err)
		}
	}
	if _, _, err := decodeSegmentHeader([]byte("NOTAWAL!")); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("got %v", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	blob, err := encodeSnapshot(rowsAt(5), 42)
	if err != nil {
		t.Fatal(err)
	}
	txs, ops, err := decodeSnapshot(blob)
	if err != nil || ops != 42 || len(txs) != 5 {
		t.Fatalf("got %d rows at %d, err %v", len(txs), ops, err)
	}
	for n := 0; n < len(blob); n++ {
		if _, _, err := decodeSnapshot(blob[:n]); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("prefix %d: got %v", n, err)
		}
	}
	bad := append([]byte(nil), blob...)
	bad[len(bad)-6] ^= 1
	if _, _, err := decodeSnapshot(bad); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("flip: got %v", err)
	}
}

func TestOpenAppendRecover(t *testing.T) {
	fs := NewMemFS()
	l, rec, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Ops != 0 || rec.Snapshot != nil || rec.Truncated {
		t.Fatalf("fresh recovery: %+v", rec)
	}
	const n = 25
	for i := 1; i <= n; i++ {
		seq, err := l.Append(opFixture(i))
		if err != nil || seq != uint64(i) {
			t.Fatalf("append %d: seq %d, err %v", i, seq, err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err = Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Ops != n || rec.Truncated || len(rec.Tail) != n {
		t.Fatalf("recovery: ops %d, truncated %v, tail %d", rec.Ops, rec.Truncated, len(rec.Tail))
	}
	for i, op := range rec.Tail {
		want := opFixture(i + 1)
		if !reflect.DeepEqual(op, want) {
			t.Fatalf("tail %d: got %+v, want %+v", i, op, want)
		}
	}
}

func TestSnapshotRotationAndGC(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if _, err := l.Append(opFixture(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Snapshot(rowsAt(10), 10); err != nil {
		t.Fatal(err)
	}
	for i := 11; i <= 14; i++ {
		if _, err := l.Append(opFixture(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Snapshot(rowsAt(14), 14); err != nil {
		t.Fatal(err)
	}
	for i := 15; i <= 16; i++ {
		if _, err := l.Append(opFixture(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	names, _ := fs.ReadDir()
	want := []string{snapName(14), segName(14)}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("directory after GC: %v, want %v", names, want)
	}
	_, rec, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotOps != 14 || len(rec.Snapshot) != 14 || rec.Ops != 16 || len(rec.Tail) != 2 {
		t.Fatalf("recovery: %+v", rec)
	}
	if !reflect.DeepEqual(rec.Tail[0], opFixture(15)) || !reflect.DeepEqual(rec.Tail[1], opFixture(16)) {
		t.Fatalf("tail: %+v", rec.Tail)
	}
}

func TestSnapshotAtWrongOffset(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(opFixture(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot(rowsAt(3), 3); err == nil {
		t.Fatal("snapshot at the wrong offset accepted")
	}
}

// TestTornTailTruncatedAndRepaired pins the repair path: a torn final
// record is cut on recovery, the segment file is rewritten to its valid
// prefix, and — the abandoned-suffix hazard — a second recovery after
// more appends must not resurrect the cut record.
func TestTornTailTruncatedAndRepaired(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := l.Append(opFixture(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record: drop its final 3 bytes.
	data, err := fs.ReadFile(segName(0))
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:len(data)-3]
	f, _ := fs.Create(segName(0))
	f.Write(torn)
	f.Sync()
	f.Close()

	l, rec, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated || rec.Ops != 4 || len(rec.Tail) != 4 {
		t.Fatalf("torn recovery: ops %d, truncated %v", rec.Ops, rec.Truncated)
	}
	// The damaged segment must have been rewritten to its valid prefix.
	repaired, err := fs.ReadFile(segName(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(repaired) >= len(torn) {
		t.Fatalf("segment not truncated: %d >= %d bytes", len(repaired), len(torn))
	}
	// Continue appending (ops 5 and 6 in the new numbering), then recover
	// again: the old op 5 must stay gone.
	for i := 5; i <= 6; i++ {
		if _, err := l.Append(opFixture(100 + i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err = Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Truncated || rec.Ops != 6 {
		t.Fatalf("second recovery: ops %d, truncated %v", rec.Ops, rec.Truncated)
	}
	if !reflect.DeepEqual(rec.Tail[4], opFixture(105)) {
		t.Fatalf("tail op 5 is %+v, want the re-appended one", rec.Tail[4])
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if _, err := l.Append(opFixture(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Snapshot(rowsAt(4), 4); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the snapshot body: recovery must fall back to a full
	// replay... but GC already removed the pre-snapshot segment, so the
	// honest outcome is truncation to the empty state. Keep the segment
	// by re-creating it from the op stream instead: simplest is to verify
	// the fallback flags.
	data, err := fs.ReadFile(snapName(4))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	f, _ := fs.Create(snapName(4))
	f.Write(data)
	f.Sync()
	f.Close()

	_, rec, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated {
		t.Fatal("corrupt snapshot not flagged")
	}
	if rec.Snapshot != nil || rec.SnapshotOps != 0 {
		t.Fatalf("corrupt snapshot still loaded: %+v", rec)
	}
}

func TestFailStop(t *testing.T) {
	mem := NewMemFS()
	// Sync always fails: the first Append survives (write ok), the first
	// Sync poisons the log, everything after returns ErrWALFailed.
	ffs := NewFaultFS(mem, FaultPlan{Seed: 1, SyncErr: 1})
	l := &Log{fs: ffs, policy: SyncAlways}
	// Build the segment by hand: openSegment would already fail its sync.
	f, err := mem.Create(segName(0))
	if err != nil {
		t.Fatal(err)
	}
	f.Write(appendSegmentHeader(nil, 0))
	f.Sync()
	l.f = &faultFile{fs: ffs, inner: f}
	if _, err := l.Append(opFixture(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("sync: %v", err)
	}
	if _, err := l.Append(opFixture(2)); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("append after failure: %v", err)
	}
	if err := l.Snapshot(rowsAt(1), 1); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("snapshot after failure: %v", err)
	}
}

// TestCrashProperty is the wal-layer half of the tentpole property: for
// random op streams, sync points and crash instants, recovery always
// yields a clean prefix of the appended sequence that includes every
// synced op — across seeds, with snapshots in the mix.
func TestCrashProperty(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			fs := NewMemFS()
			l, _, err := Open(fs, Options{Policy: SyncNever})
			if err != nil {
				t.Fatal(err)
			}
			var appended []Op
			synced := 0 // ops known durable
			n := 5 + rng.Intn(60)
			for i := 1; i <= n; i++ {
				op := opFixture(rng.Intn(1000))
				if _, err := l.Append(op); err != nil {
					t.Fatal(err)
				}
				appended = append(appended, op)
				switch rng.Intn(10) {
				case 0:
					if err := l.Sync(); err != nil {
						t.Fatal(err)
					}
					synced = i
				case 1:
					if err := l.Snapshot(rowsAt(i), uint64(i)); err != nil {
						t.Fatal(err)
					}
					synced = i
				}
			}
			// Crash without closing.
			crashed := fs.Crash(rng)
			_, rec, err := Open(crashed, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rec.Ops < uint64(synced) {
				t.Fatalf("lost synced ops: recovered %d < synced %d", rec.Ops, synced)
			}
			if rec.Ops > uint64(n) {
				t.Fatalf("invented ops: recovered %d > appended %d", rec.Ops, n)
			}
			if len(rec.Snapshot) != int(rec.SnapshotOps) {
				t.Fatalf("snapshot rows %d at ops %d", len(rec.Snapshot), rec.SnapshotOps)
			}
			if rec.SnapshotOps+uint64(len(rec.Tail)) != rec.Ops {
				t.Fatalf("ops %d != snapshot %d + tail %d", rec.Ops, rec.SnapshotOps, len(rec.Tail))
			}
			for i, op := range rec.Tail {
				want := appended[int(rec.SnapshotOps)+i]
				if !reflect.DeepEqual(op, want) {
					t.Fatalf("tail %d: got %+v, want %+v", i, op, want)
				}
			}
		})
	}
}

// appendRecordRaw frames an arbitrary payload as a record (valid length
// and checksum, possibly invalid payload) — the corruption tests' tool.
func appendRecordRaw(payload []byte) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
}

// snapFaultFS fails writes or syncs only on .tmp files (the snapshot
// staging path), letting the log's own segments run clean.
type snapFaultFS struct {
	FS
	failWrite bool
	failSync  bool
}

func (s *snapFaultFS) Create(name string) (File, error) {
	f, err := s.FS.Create(name)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(name, ".tmp") {
		return &snapFaultFile{File: f, fs: s}, nil
	}
	return f, nil
}

type snapFaultFile struct {
	File
	fs *snapFaultFS
}

func (f *snapFaultFile) Write(p []byte) (int, error) {
	if f.fs.failWrite {
		return 0, errors.New("injected: snapshot blob write failed")
	}
	return f.File.Write(p)
}

func (f *snapFaultFile) Sync() error {
	if f.fs.failSync {
		return errors.New("injected: snapshot blob sync failed")
	}
	return f.File.Sync()
}

// TestSnapshotWriteFailureNotSwallowed is the regression test for a
// shadowed-err bug in Snapshot: the error from writing or fsyncing the
// snapshot blob was assigned to an if-scoped variable and checked on
// the outer one, so a torn snapshot was renamed into place and gc then
// deleted the segments it supposedly superseded. A failed blob write or
// sync must fail the call and leave the previous snapshot authoritative.
func TestSnapshotWriteFailureNotSwallowed(t *testing.T) {
	modes := []struct {
		name      string
		failWrite bool
		failSync  bool
	}{
		{"write", true, false},
		{"sync", false, true},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			mem := NewMemFS()
			sfs := &snapFaultFS{FS: mem}
			l, _, err := Open(sfs, Options{Policy: SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 2; i++ {
				if _, err := l.Append(opFixture(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Snapshot(rowsAt(2), 2); err != nil {
				t.Fatal(err)
			}
			if _, err := l.Append(opFixture(3)); err != nil {
				t.Fatal(err)
			}
			sfs.failWrite, sfs.failSync = mode.failWrite, mode.failSync
			if err := l.Snapshot(rowsAt(3), 3); err == nil {
				t.Fatal("Snapshot with a failed blob write/sync returned nil")
			}
			if _, err := mem.ReadFile(snapName(3)); err == nil {
				t.Fatal("torn snapshot was renamed into place")
			}
			_, rec, err := Open(mem, Options{Policy: SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			if rec.SnapshotOps != 2 {
				t.Fatalf("recovered snapshot covers %d ops, want the previous snapshot's 2", rec.SnapshotOps)
			}
			if rec.Ops != 3 {
				t.Fatalf("recovered %d ops, want 3", rec.Ops)
			}
		})
	}
}

// repairFaultFS fails every write on .tmp files: the recovery repair
// path stages its truncated segment through one.
type repairFaultFS struct {
	FS
}

func (s *repairFaultFS) Create(name string) (File, error) {
	f, err := s.FS.Create(name)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(name, ".tmp") {
		return &repairFaultFile{File: f}, nil
	}
	return f, nil
}

type repairFaultFile struct{ File }

func (f *repairFaultFile) Write(p []byte) (int, error) {
	return 0, errors.New("injected: repair write failed")
}

// TestRepairWriteFailureNotSwallowed is the recover.go twin of the
// Snapshot regression: a failed write of the repaired segment must fail
// Open rather than atomically renaming an empty file over the segment.
func TestRepairWriteFailureNotSwallowed(t *testing.T) {
	mem := NewMemFS()
	l, _, err := Open(mem, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(opFixture(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the segment tail so the next recovery must repair it.
	name := segName(0)
	data, err := mem.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	torn, err := mem.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := torn.Write(data[:len(data)-3]); err != nil {
		t.Fatal(err)
	}
	if err := torn.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(&repairFaultFS{FS: mem}, Options{Policy: SyncAlways}); err == nil {
		t.Fatal("Open with a failed repair write returned nil")
	}
	// The original (torn but untouched) segment must still recover its
	// valid prefix once the fault is gone.
	_, rec, err := Open(mem, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Ops != 2 {
		t.Fatalf("recovered %d ops after repair, want 2", rec.Ops)
	}
	if !rec.Truncated {
		t.Fatal("torn tail not reported as truncated")
	}
}
