package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/transactions"
)

// Wire formats. A log segment is a header followed by records:
//
//	segment header:  segMagic | uvarint start-seq | crc32c(start-seq bytes)
//	record:          uvarint payload-len | payload | crc32c(payload)
//	payload:         uvarint seq | varint kind | varint tid |
//	                 uvarint item-count | varint items...
//
// A snapshot file is:
//
//	snapMagic | uvarint body-len | body | crc32c(body)
//	body:     uvarint ops | stable DB encoding (internal/transactions)
//
// All checksums are CRC-32C (Castagnoli). Ops are persisted opaquely —
// kind, tid and items round-trip verbatim, including values the store
// will reject on replay — because a rejected op still advances the serve
// tier's op sequence, and replay must mirror the skip, not hide it.
const (
	segMagic  = "DMWAL01\n"
	snapMagic = "DMSNAP1\n"
)

// MaxRecordSize caps one record's payload, so a corrupt length prefix
// cannot drive a giant allocation or scan past a torn tail.
const MaxRecordSize = 16 << 20

// maxSnapshotSize caps a snapshot body (1 GiB) against corrupt lengths.
const maxSnapshotSize = 1 << 30

// Typed decode errors. Recovery truncates the log at the first record
// failing with either; the fuzz target asserts the decoder returns these
// (never panics, never over-reads).
var (
	// ErrTruncatedRecord reports a record cut short — a torn tail that a
	// crash mid-write legitimately produces.
	ErrTruncatedRecord = errors.New("wal: truncated record")
	// ErrCorruptRecord reports structural damage: a failed checksum, an
	// oversized length, or a malformed payload.
	ErrCorruptRecord = errors.New("wal: corrupt record")
	// ErrBadSegment reports an unreadable segment header.
	ErrBadSegment = errors.New("wal: invalid segment header")
	// ErrBadSnapshot reports an unreadable snapshot file.
	ErrBadSnapshot = errors.New("wal: invalid snapshot")
)

// castagnoli is the CRC-32C table shared by all checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Op is one logged mutation. The log treats it opaquely: Kind tags the
// mutation (the serving tier's append/delete), Items and TID carry the
// payload, and all three round-trip through the record codec verbatim.
type Op struct {
	// Kind is the mutation tag (internal/serve's OpKind values).
	Kind int
	// Items is the transaction payload of an append.
	Items []int
	// TID is the target of a delete.
	TID int
}

// appendRecord appends the encoded record for op at seq to buf.
func appendRecord(buf []byte, seq uint64, op Op) []byte {
	payload := binary.AppendUvarint(nil, seq)
	payload = binary.AppendVarint(payload, int64(op.Kind))
	payload = binary.AppendVarint(payload, int64(op.TID))
	payload = binary.AppendUvarint(payload, uint64(len(op.Items)))
	for _, it := range op.Items {
		payload = binary.AppendVarint(payload, int64(it))
	}
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
}

// decodeRecord decodes the first record in data, returning the op, its
// sequence number and the encoded length consumed. A clean cut at the
// end of data is ErrTruncatedRecord; anything structurally wrong is
// ErrCorruptRecord. The decoder never reads past len(data) and never
// allocates more than the payload it has actually received.
func decodeRecord(data []byte) (Op, uint64, int, error) {
	length, n := binary.Uvarint(data)
	if n == 0 {
		return Op{}, 0, 0, ErrTruncatedRecord
	}
	if n < 0 || length > MaxRecordSize {
		return Op{}, 0, 0, fmt.Errorf("%w: record length", ErrCorruptRecord)
	}
	total := n + int(length) + 4
	if len(data) < total {
		return Op{}, 0, 0, ErrTruncatedRecord
	}
	payload := data[n : n+int(length)]
	want := binary.LittleEndian.Uint32(data[n+int(length):])
	if crc32.Checksum(payload, castagnoli) != want {
		return Op{}, 0, 0, fmt.Errorf("%w: checksum mismatch", ErrCorruptRecord)
	}
	op, seq, err := decodePayload(payload)
	if err != nil {
		return Op{}, 0, 0, err
	}
	return op, seq, total, nil
}

// decodePayload decodes a checksummed record payload.
func decodePayload(payload []byte) (Op, uint64, error) {
	seq, n := binary.Uvarint(payload)
	if n <= 0 {
		return Op{}, 0, fmt.Errorf("%w: record seq", ErrCorruptRecord)
	}
	rest := payload[n:]
	kind, n := binary.Varint(rest)
	if n <= 0 {
		return Op{}, 0, fmt.Errorf("%w: record kind", ErrCorruptRecord)
	}
	rest = rest[n:]
	tid, n := binary.Varint(rest)
	if n <= 0 {
		return Op{}, 0, fmt.Errorf("%w: record tid", ErrCorruptRecord)
	}
	rest = rest[n:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return Op{}, 0, fmt.Errorf("%w: record item count", ErrCorruptRecord)
	}
	rest = rest[n:]
	// Each item costs at least one byte, so a count beyond the remaining
	// payload is corruption, not a short buffer.
	if count > uint64(len(rest)) {
		return Op{}, 0, fmt.Errorf("%w: item count %d exceeds payload", ErrCorruptRecord, count)
	}
	op := Op{Kind: int(kind), TID: int(tid)}
	if count > 0 {
		op.Items = make([]int, count)
		for i := range op.Items {
			item, n := binary.Varint(rest)
			if n <= 0 {
				return Op{}, 0, fmt.Errorf("%w: record item %d", ErrCorruptRecord, i)
			}
			op.Items[i] = int(item)
			rest = rest[n:]
		}
	}
	if len(rest) != 0 {
		return Op{}, 0, fmt.Errorf("%w: %d trailing payload bytes", ErrCorruptRecord, len(rest))
	}
	return op, seq, nil
}

// appendSegmentHeader appends a segment header for a segment whose first
// record has sequence number start+1.
func appendSegmentHeader(buf []byte, start uint64) []byte {
	buf = append(buf, segMagic...)
	body := binary.AppendUvarint(nil, start)
	buf = append(buf, body...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(body, castagnoli))
}

// decodeSegmentHeader reads a segment header, returning the start
// sequence and the header length.
func decodeSegmentHeader(data []byte) (uint64, int, error) {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return 0, 0, ErrBadSegment
	}
	rest := data[len(segMagic):]
	start, n := binary.Uvarint(rest)
	if n <= 0 || len(rest) < n+4 {
		return 0, 0, ErrBadSegment
	}
	if crc32.Checksum(rest[:n], castagnoli) != binary.LittleEndian.Uint32(rest[n:]) {
		return 0, 0, fmt.Errorf("%w: checksum mismatch", ErrBadSegment)
	}
	return start, len(segMagic) + n + 4, nil
}

// encodeSnapshot encodes the transaction rows as a snapshot covering the
// first ops log operations.
func encodeSnapshot(txs []transactions.Itemset, ops uint64) ([]byte, error) {
	var body bytes.Buffer
	b := binary.AppendUvarint(nil, ops)
	body.Write(b)
	if err := transactions.EncodeStable(&body, txs); err != nil {
		return nil, err
	}
	buf := append([]byte(nil), snapMagic...)
	buf = binary.AppendUvarint(buf, uint64(body.Len()))
	buf = append(buf, body.Bytes()...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(body.Bytes(), castagnoli)), nil
}

// decodeSnapshot decodes a snapshot file into its rows and the op offset
// it covers. Any damage — truncation, checksum mismatch, malformed
// encoding — is ErrBadSnapshot; recovery then falls back to an older
// snapshot or a full replay.
func decodeSnapshot(data []byte) ([]transactions.Itemset, uint64, error) {
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != snapMagic {
		return nil, 0, ErrBadSnapshot
	}
	rest := data[len(snapMagic):]
	length, n := binary.Uvarint(rest)
	if n <= 0 || length > maxSnapshotSize {
		return nil, 0, fmt.Errorf("%w: body length", ErrBadSnapshot)
	}
	if uint64(len(rest)) < uint64(n)+length+4 {
		return nil, 0, fmt.Errorf("%w: truncated body", ErrBadSnapshot)
	}
	body := rest[n : uint64(n)+length]
	want := binary.LittleEndian.Uint32(rest[uint64(n)+length:])
	if crc32.Checksum(body, castagnoli) != want {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}
	ops, n := binary.Uvarint(body)
	if n <= 0 {
		return nil, 0, fmt.Errorf("%w: op offset", ErrBadSnapshot)
	}
	txs, err := transactions.DecodeStable(bytes.NewReader(body[n:]))
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return txs, ops, nil
}
