package wal

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/transactions"
)

// Recovery is the state reconstructed from a data directory: the newest
// valid snapshot plus the op tail replayed from the segments after it.
// The recovered op sequence is Snapshot folded through Tail — always a
// clean prefix of what was logged, truncated at the first torn or
// corrupt record.
type Recovery struct {
	// Snapshot is the newest valid snapshot's rows (nil when none).
	Snapshot []transactions.Itemset
	// SnapshotOps is the op offset the snapshot covers.
	SnapshotOps uint64
	// Tail is the ops logged after the snapshot, in sequence order
	// (ops SnapshotOps+1 through Ops).
	Tail []Op
	// Ops is the recovered op count: SnapshotOps + len(Tail).
	Ops uint64
	// Truncated reports that recovery cut a torn or corrupt tail (or
	// skipped an invalid snapshot) — expected after a crash, alarming
	// after a clean shutdown.
	Truncated bool

	// Repair plan applied by Open: rewrite repairName to repairData
	// (delete it when nil) and remove dropNames, so the truncated
	// suffix can never be resurrected by a later recovery.
	repairName string
	repairData []byte
	dropNames  []string
}

// parseName extracts the hex offset from a "<prefix><16 hex><suffix>"
// file name.
func parseName(name, prefix, suffix string) (uint64, bool) {
	if len(name) != len(prefix)+16+len(suffix) ||
		!strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(prefix):len(prefix)+16], 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Recover scans the directory and reconstructs the recovered state
// without modifying anything (Open applies the repair plan). The scan:
// pick the newest snapshot that passes its checksum; replay the segments
// above it in start order, demanding strictly contiguous sequence
// numbers; stop at the first torn/corrupt record or sequence break and
// plan the truncation of everything at and after it.
func Recover(fsys FS) (*Recovery, error) {
	names, err := fsys.ReadDir()
	if err != nil {
		return nil, err
	}
	rec := &Recovery{}
	type entry struct {
		name  string
		start uint64
	}
	var segs, snaps []entry
	for _, name := range names {
		if start, ok := parseName(name, "wal-", ".log"); ok {
			segs = append(segs, entry{name, start})
			continue
		}
		if at, ok := parseName(name, "snap-", ".snap"); ok {
			snaps = append(snaps, entry{name, at})
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			rec.dropNames = append(rec.dropNames, name)
		}
	}

	// Newest checksum-valid snapshot wins; damaged ones are dropped and
	// recovery falls back to the one before (or a full replay).
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].start > snaps[j].start })
	for _, sn := range snaps {
		if rec.Snapshot != nil {
			break
		}
		data, err := fsys.ReadFile(sn.name)
		if err == nil {
			if txs, ops, derr := decodeSnapshot(data); derr == nil && ops == sn.start {
				rec.Snapshot = txs
				if rec.Snapshot == nil {
					rec.Snapshot = []transactions.Itemset{}
				}
				rec.SnapshotOps = ops
				continue
			}
		}
		rec.Truncated = true
		rec.dropNames = append(rec.dropNames, sn.name)
	}

	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	expect := rec.SnapshotOps
	stopped := false
	for i, seg := range segs {
		if seg.start < rec.SnapshotOps {
			// Fully covered by the snapshot.
			rec.dropNames = append(rec.dropNames, seg.name)
			continue
		}
		if stopped {
			rec.dropNames = append(rec.dropNames, seg.name)
			continue
		}
		// An op limit from the next segment's start: records at or past
		// it belong to an abandoned suffix a previous truncation already
		// superseded.
		limit := ^uint64(0)
		if i+1 < len(segs) {
			limit = segs[i+1].start
		}
		data, err := fsys.ReadFile(seg.name)
		if err != nil {
			rec.truncateAt(seg.name, nil)
			stopped = true
			continue
		}
		start, off, err := decodeSegmentHeader(data)
		if err != nil || start != seg.start || start != expect {
			rec.truncateAt(seg.name, nil)
			stopped = true
			continue
		}
		for off < len(data) {
			op, seq, n, derr := decodeRecord(data[off:])
			if derr != nil || seq != expect+1 {
				rec.truncateAt(seg.name, data[:off])
				stopped = true
				break
			}
			if seq > limit {
				// Abandoned suffix: ignore it, the next segment restarts
				// at limit.
				break
			}
			rec.Tail = append(rec.Tail, op)
			expect = seq
			off += n
		}
	}
	rec.Ops = expect
	return rec, nil
}

// truncateAt plans the repair for a damaged segment: rewrite it to its
// valid prefix (delete it when the header itself is unreadable) and mark
// the recovery truncated.
func (r *Recovery) truncateAt(name string, validPrefix []byte) {
	r.Truncated = true
	r.repairName = name
	r.repairData = append([]byte(nil), validPrefix...)
	if validPrefix == nil {
		r.repairData = nil
	}
}

// repair applies the truncation plan: atomically rewrite the damaged
// segment to its valid prefix and remove superseded or abandoned files.
// Run before the log appends anything, so a crash during repair is just
// another crash before new writes — recovery converges.
func (r *Recovery) repair(fsys FS) error {
	if r.repairName != "" {
		if r.repairData == nil {
			if err := fsys.Remove(r.repairName); err != nil {
				return err
			}
		} else {
			tmp := r.repairName + ".tmp"
			f, err := fsys.Create(tmp)
			if err != nil {
				return err
			}
			_, werr := f.Write(r.repairData)
			if werr == nil {
				werr = f.Sync()
			}
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return werr
			}
			if err := fsys.Rename(tmp, r.repairName); err != nil {
				return err
			}
		}
	}
	for _, name := range r.dropNames {
		if err := fsys.Remove(name); err != nil {
			return err
		}
	}
	return nil
}
