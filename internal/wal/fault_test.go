package wal

import (
	"errors"
	"testing"
)

// TestFaultFSDeterminism pins that the same plan injects the same fault
// sequence — the reproducibility the seeded property tests rely on.
func TestFaultFSDeterminism(t *testing.T) {
	run := func() []bool {
		ffs := NewFaultFS(NewMemFS(), FaultPlan{Seed: 5, WriteErr: 0.3})
		f, err := ffs.Create("x")
		if err != nil {
			t.Fatal(err)
		}
		var outcomes []bool
		for i := 0; i < 40; i++ {
			_, err := f.Write([]byte{byte(i)})
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault schedule diverged at write %d", i)
		}
	}
	saw := false
	for _, ok := range a {
		if !ok {
			saw = true
		}
	}
	if !saw {
		t.Fatal("plan with WriteErr=0.3 injected nothing in 40 writes")
	}
}

// TestFaultFSShortWrite checks a torn write lands a strict prefix and
// reports the injected fault.
func TestFaultFSShortWrite(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem, FaultPlan{Seed: 3, ShortWrite: 1})
	f, err := ffs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789")
	n, err := f.Write(payload)
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("got %v", err)
	}
	if n >= len(payload) {
		t.Fatalf("short write landed %d of %d bytes", n, len(payload))
	}
	data, err := mem.ReadFile("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != n || string(data) != string(payload[:n]) {
		t.Fatalf("file holds %q, want prefix of %q", data, payload)
	}
}

// TestOpenUnderSyncFaults: injected fsync errors during Open or the
// first appends must fail-stop the log, never corrupt recovery. Whatever
// happened, a fault-free reopen of the underlying MemFS must succeed and
// recover a clean prefix.
func TestOpenUnderSyncFaults(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		mem := NewMemFS()
		ffs := NewFaultFS(mem, FaultPlan{Seed: seed, SyncErr: 0.5, ShortWrite: 0.2})
		appended := 0
		l, _, err := Open(ffs, Options{Policy: SyncAlways})
		if err == nil {
			for i := 1; i <= 30; i++ {
				if _, err := l.Append(opFixture(i)); err != nil {
					break
				}
				if err := l.Sync(); err != nil {
					break
				}
				appended = i
			}
			l.Close()
		}
		_, rec, err := Open(mem, Options{})
		if err != nil {
			t.Fatalf("seed %d: clean reopen failed: %v", seed, err)
		}
		if rec.Ops < uint64(appended) {
			t.Fatalf("seed %d: recovered %d < synced %d", seed, rec.Ops, appended)
		}
	}
}
