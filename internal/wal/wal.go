// Package wal is the durability layer under the serving tier: a
// length-prefixed, CRC-32C-checksummed write-ahead log of numbered ops,
// periodic snapshots of the folded store, and a recovery path that loads
// the newest valid snapshot and replays the log tail, truncating at the
// first torn or corrupt record.
//
// # Crash-safety contract
//
// An op is durable once Append and then Sync have returned nil: after
// any crash, Open recovers a state equal to folding a prefix of the
// logged op sequence that includes every synced op. With the serving
// tier's sync-before-acknowledge policy this makes acknowledged-then-
// lost impossible; weaker policies trade the tail since the last sync
// for throughput, but recovery still never yields anything other than a
// clean prefix — torn and bit-flipped tails are detected by checksum and
// cut, never half-applied.
//
// # Fail-stop
//
// The log is fail-stop: the first write or sync error permanently
// poisons it, and every later Append/Sync returns ErrWALFailed. Retrying
// a failed fsync silently drops data on most kernels (the dirty pages
// were already discarded), so the only honest continuation is to stop
// acknowledging and let the operator restart from the log.
//
// # Files
//
// A data directory holds segments ("wal-<hex start>.log") and snapshots
// ("snap-<hex ops>.snap"). A segment's name carries the op count
// preceding its first record; snapshots are written to a temp file,
// synced, then renamed, so a crash mid-snapshot leaves the previous one
// intact. Snapshot success rotates to a fresh segment and garbage-
// collects everything older.
package wal

import (
	"errors"
	"fmt"

	"repro/internal/transactions"
)

// ErrWALFailed reports use of a log after a write or sync error made it
// fail-stop. The original error is in the message; the sentinel is what
// callers test with errors.Is.
var ErrWALFailed = errors.New("wal: log failed")

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

// The sync policies. SyncAlways is the zero value: durability by
// default, weakening is the explicit choice.
const (
	// SyncAlways syncs before every acknowledgement batch: no
	// acknowledged op can be lost to a crash.
	SyncAlways SyncPolicy = iota
	// SyncInterval syncs on the serving tier's timer: a crash may lose
	// acknowledged ops appended since the last tick.
	SyncInterval
	// SyncNever leaves syncing to the OS page cache: fastest, and a
	// process kill (without power loss) still loses nothing.
	SyncNever
)

// String names the policy for banners and baselines.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// Options configure Open.
type Options struct {
	// Policy is the sync policy (zero value SyncAlways).
	Policy SyncPolicy
}

// Log is an open write-ahead log positioned at the end of the recovered
// op sequence. It is not safe for concurrent use; the serving tier's
// single ingest goroutine owns it.
type Log struct {
	fs       FS
	policy   SyncPolicy
	f        File
	seq      uint64
	segStart uint64
	snapOps  uint64
	dirty    bool
	failed   error
	buf      []byte
}

// segName is the file name of the segment whose first record is op
// start+1.
func segName(start uint64) string { return fmt.Sprintf("wal-%016x.log", start) }

// snapName is the file name of the snapshot covering the first ops ops.
func snapName(ops uint64) string { return fmt.Sprintf("snap-%016x.snap", ops) }

// Open recovers the directory's state and returns a log ready to append
// op rec.Ops+1, plus the recovery describing what was found. If recovery
// truncated a torn tail, the damaged segment has already been rewritten
// to its valid prefix (atomically, via a temp file) and everything after
// it removed, so a later crash cannot resurrect the abandoned suffix.
func Open(fsys FS, opts Options) (*Log, *Recovery, error) {
	rec, err := Recover(fsys)
	if err != nil {
		return nil, nil, err
	}
	if err := rec.repair(fsys); err != nil {
		return nil, nil, err
	}
	l := &Log{fs: fsys, policy: opts.Policy, seq: rec.Ops, segStart: rec.Ops, snapOps: rec.SnapshotOps}
	if err := l.openSegment(); err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

// openSegment creates the appending segment for ops l.segStart+1... and
// makes its header durable.
func (l *Log) openSegment() error {
	f, err := l.fs.Create(segName(l.segStart))
	if err != nil {
		return err
	}
	hdr := appendSegmentHeader(nil, l.segStart)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	l.f = f
	return nil
}

// Seq returns the sequence number of the last appended op.
func (l *Log) Seq() uint64 { return l.seq }

// SnapshotOps returns the op offset of the newest snapshot.
func (l *Log) SnapshotOps() uint64 { return l.snapOps }

// fail makes the log fail-stop on err and returns the wrapped error.
func (l *Log) fail(err error) error {
	if l.failed == nil {
		l.failed = fmt.Errorf("%w: %v", ErrWALFailed, err)
	}
	return l.failed
}

// Append writes op as the next record and returns its sequence number.
// The record is durable only after a nil Sync.
func (l *Log) Append(op Op) (uint64, error) {
	if l.failed != nil {
		return 0, l.failed
	}
	l.buf = appendRecord(l.buf[:0], l.seq+1, op)
	if _, err := l.f.Write(l.buf); err != nil {
		return 0, l.fail(err)
	}
	l.seq++
	l.dirty = true
	return l.seq, nil
}

// Sync makes every appended record durable. It is a no-op when nothing
// was appended since the last sync.
func (l *Log) Sync() error {
	if l.failed != nil {
		return l.failed
	}
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return l.fail(err)
	}
	l.dirty = false
	return nil
}

// Snapshot persists txs as the fold of the first ops ops (which must be
// the log's current position), rotates to a fresh segment, and garbage-
// collects older segments and snapshots. The snapshot commit point is
// the rename: a crash anywhere before it leaves the previous snapshot
// authoritative, and the rotation order (new segment first, rename
// second) keeps every op covered by snapshot+segments at all times.
// A snapshot failure leaves the log usable — the caller keeps the longer
// replay tail — except when the log itself is already fail-stop.
func (l *Log) Snapshot(txs []transactions.Itemset, ops uint64) error {
	if l.failed != nil {
		return l.failed
	}
	if ops != l.seq {
		return fmt.Errorf("wal: snapshot at op %d, log is at %d", ops, l.seq)
	}
	// Make the outgoing segment's records durable before the snapshot
	// claims to cover them.
	if err := l.Sync(); err != nil {
		return err
	}
	next, err := l.fs.Create(segName(ops))
	if err != nil {
		return err
	}
	hdr := appendSegmentHeader(nil, ops)
	if _, err := next.Write(hdr); err != nil {
		next.Close()
		return err
	}
	if err := next.Sync(); err != nil {
		next.Close()
		return err
	}
	blob, err := encodeSnapshot(txs, ops)
	if err != nil {
		next.Close()
		return err
	}
	tmp := snapName(ops) + ".tmp"
	sf, err := l.fs.Create(tmp)
	if err != nil {
		next.Close()
		return err
	}
	_, werr := sf.Write(blob)
	if werr == nil {
		werr = sf.Sync()
	}
	if cerr := sf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		next.Close()
		l.fs.Remove(tmp)
		return werr
	}
	if err := l.fs.Rename(tmp, snapName(ops)); err != nil {
		next.Close()
		l.fs.Remove(tmp)
		return err
	}
	// Committed: swap the appending segment and drop what the snapshot
	// superseded. GC errors are ignored — recovery skips stale files.
	if l.f != nil {
		l.f.Close()
	}
	l.f = next
	l.segStart = ops
	l.snapOps = ops
	l.dirty = false
	l.gc(ops)
	return nil
}

// gc removes segments and snapshots fully covered by the snapshot at
// ops, plus abandoned temp files.
func (l *Log) gc(ops uint64) {
	names, err := l.fs.ReadDir()
	if err != nil {
		return
	}
	for _, name := range names {
		if start, ok := parseName(name, "wal-", ".log"); ok && start < ops {
			l.fs.Remove(name)
		}
		if at, ok := parseName(name, "snap-", ".snap"); ok && at < ops {
			l.fs.Remove(name)
		}
		if len(name) > 4 && name[len(name)-4:] == ".tmp" {
			l.fs.Remove(name)
		}
	}
}

// Close syncs (under SyncAlways and SyncInterval) and closes the
// appending segment. Under SyncNever close does not imply durability.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	var err error
	if l.failed == nil && l.policy != SyncNever {
		err = l.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
