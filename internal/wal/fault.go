package wal

import (
	"errors"
	"math/rand"
	"sync"
)

// ErrInjectedFault is the error every FaultFS-injected failure wraps, so
// tests can tell injected faults from real bugs.
var ErrInjectedFault = errors.New("wal: injected fault")

// FaultPlan is a seeded, deterministic disk-fault schedule: the same
// plan over the same operation sequence injects the same faults, which
// is what makes the crash-recovery property tests reproducible.
type FaultPlan struct {
	// Seed drives the fault RNG.
	Seed int64
	// WriteErr is the probability a Write fails outright (no bytes land).
	WriteErr float64
	// ShortWrite is the probability a Write lands only a random prefix
	// before failing (a torn write).
	ShortWrite float64
	// SyncErr is the probability a Sync fails (the bytes stay volatile).
	SyncErr float64
}

// FaultFS wraps an FS and injects the plan's faults into file writes and
// syncs. Directory operations are passed through: the interesting
// crash-safety surface is the data path, and the log's fail-stop
// contract means one injected error poisons everything after it anyway.
type FaultFS struct {
	inner FS
	plan  FaultPlan
	mu    sync.Mutex
	rng   *rand.Rand
}

// NewFaultFS returns an FS injecting plan's faults over inner.
func NewFaultFS(inner FS, plan FaultPlan) *FaultFS {
	return &FaultFS{inner: inner, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Create opens a fault-injecting handle on inner's file.
func (f *FaultFS) Create(name string) (File, error) {
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

// ReadFile reads from the inner FS.
func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

// ReadDir lists the inner FS.
func (f *FaultFS) ReadDir() ([]string, error) { return f.inner.ReadDir() }

// Rename renames on the inner FS.
func (f *FaultFS) Rename(oldname, newname string) error { return f.inner.Rename(oldname, newname) }

// Remove removes on the inner FS.
func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

// roll draws one fault decision under the lock (handles may be used from
// whatever goroutine owns the log).
func (f *FaultFS) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64() < p
}

// prefix draws a torn-write length in [0, n).
func (f *FaultFS) prefix(n int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Intn(n)
}

// faultFile injects write/sync faults on one open file.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if ff.fs.roll(ff.fs.plan.WriteErr) {
		return 0, errors.Join(ErrInjectedFault, errors.New("write error"))
	}
	if len(p) > 0 && ff.fs.roll(ff.fs.plan.ShortWrite) {
		n := ff.fs.prefix(len(p))
		if _, err := ff.inner.Write(p[:n]); err != nil {
			return 0, err
		}
		return n, errors.Join(ErrInjectedFault, errors.New("short write"))
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	if ff.fs.roll(ff.fs.plan.SyncErr) {
		return errors.Join(ErrInjectedFault, errors.New("sync error"))
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error { return ff.inner.Close() }
