package wal

import (
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS is the flat-namespace filesystem surface the log needs: one data
// directory of segment and snapshot files. Keeping it an interface is
// what makes the crash-safety property *testable*: MemFS models exactly
// which bytes a crash preserves (the fsynced prefix) and FaultFS injects
// deterministic disk errors, so the recovery contract is proven against
// a precise failure model rather than hoped-for on a real disk.
type FS interface {
	// Create creates or truncates name for writing.
	Create(name string) (File, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the file names in the directory.
	ReadDir() ([]string, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
}

// File is one writable log or snapshot file.
type File interface {
	io.Writer
	// Sync makes every written byte durable (fsync).
	Sync() error
	// Close releases the file without implying durability.
	Close() error
}

// DirFS returns the production FS rooted at dir, creating the directory
// if needed. Create, Rename and Remove fsync the directory so renames
// (the snapshot commit point) survive a power cut.
func DirFS(dir string) (FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &osFS{dir: dir}, nil
}

// osFS implements FS over one real directory.
type osFS struct{ dir string }

func (o *osFS) Create(name string) (File, error) {
	f, err := os.Create(filepath.Join(o.dir, name))
	if err != nil {
		return nil, err
	}
	if err := o.syncDir(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func (o *osFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(o.dir, name))
}

func (o *osFS) ReadDir() ([]string, error) {
	entries, err := os.ReadDir(o.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (o *osFS) Rename(oldname, newname string) error {
	if err := os.Rename(filepath.Join(o.dir, oldname), filepath.Join(o.dir, newname)); err != nil {
		return err
	}
	return o.syncDir()
}

func (o *osFS) Remove(name string) error {
	if err := os.Remove(filepath.Join(o.dir, name)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return o.syncDir()
}

// syncDir fsyncs the directory itself, making entry creations and
// renames durable.
func (o *osFS) syncDir() error {
	d, err := os.Open(o.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// MemFS is the in-memory FS of the crash-safety tests. It tracks, per
// file, how many bytes have been fsynced; Crash derives the directory
// state an abrupt power cut could leave behind. Directory-level
// operations (create, rename, remove) are modeled as immediately
// durable, matching osFS's directory fsyncs.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

// memFile is one in-memory file's contents plus its durable prefix.
type memFile struct {
	data   []byte
	synced int
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string]*memFile{}}
}

// Create creates or truncates name.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.files[name] = f
	return &memHandle{fs: m, f: f}, nil
}

// ReadFile returns a copy of name's full (not necessarily durable)
// contents.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

// ReadDir lists file names in sorted order.
func (m *MemFS) ReadDir() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Rename atomically replaces newname with oldname.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

// Remove deletes name; missing files are not an error (matching osFS).
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
	return nil
}

// Crash returns a new MemFS holding what a power cut at this instant
// could leave on disk: every file keeps its fsynced prefix intact, while
// the unsynced tail is torn — a rng-chosen prefix of it survives, and
// each surviving unsynced byte may be bit-flipped (partially written
// sectors). The receiver is unchanged, so one run can be crashed at many
// points.
func (m *MemFS) Crash(rng *rand.Rand) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	// Sorted order so the rng draws hit files in a fixed sequence: the
	// same seed must produce the same crash image, or the crash-recovery
	// property tests stop being reproducible.
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := m.files[name]
		keep := f.synced
		if tail := len(f.data) - f.synced; tail > 0 {
			keep += rng.Intn(tail + 1)
		}
		data := append([]byte(nil), f.data[:keep]...)
		for i := f.synced; i < keep; i++ {
			if rng.Intn(8) == 0 {
				data[i] ^= byte(1 << rng.Intn(8))
			}
		}
		out.files[name] = &memFile{data: data, synced: len(data)}
	}
	return out
}

// SyncedBytes reports how many bytes of name are durable (test hook).
func (m *MemFS) SyncedBytes(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[name]; ok {
		return f.synced
	}
	return 0
}

// memHandle is an open handle onto a memFile. It keeps the file pointer
// (not the name), so a concurrent rename doesn't redirect writes — the
// same semantics as a Unix file descriptor.
type memHandle struct {
	fs     *MemFS
	f      *memFile
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fmt.Errorf("wal: write on closed file")
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fmt.Errorf("wal: sync on closed file")
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
