// Package quant implements quantitative association-rule mining (Srikant &
// Agrawal, SIGMOD'96): association rules over relational tables with
// numeric and categorical attributes. Numeric attributes are partitioned
// into equi-depth base intervals; items are created for every run of
// consecutive intervals whose support stays below a maximum (so
// near-full-range intervals that would make trivial rules are pruned, the
// paper's maximum-support trick); categorical values map to one item each.
// The encoded transactions are mined level-wise and itemsets that combine
// two items of the same attribute (always either nested or disjoint, hence
// redundant or empty) are filtered out. Cost is the encoding pass plus one
// standard level-wise mine over rows × encoded items.
package quant

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/assoc"
	"repro/internal/dataset"
	"repro/internal/transactions"
)

// Config controls the encoding.
type Config struct {
	// Bins is the number of equi-depth base intervals per numeric
	// attribute (default 4).
	Bins int
	// MaxSupport prunes interval items covering more than this fraction
	// of rows (default 0.5). 1 disables pruning.
	MaxSupport float64
	// SkipColumns marks columns to exclude (e.g. identifiers).
	SkipColumns []int
}

// Item describes one encoded item.
type Item struct {
	Attr int
	// Categorical value index, or -1 for an interval item.
	Value int
	// Lo and Hi bound the numeric interval (inclusive ends of the bin
	// run) for interval items.
	Lo, Hi float64
}

// Codec maps encoded item ids back to attribute conditions.
type Codec struct {
	Items []Item
	Attrs []dataset.Attribute
}

// Describe renders item id as a readable condition.
func (c *Codec) Describe(id int) string {
	if id < 0 || id >= len(c.Items) {
		return fmt.Sprintf("item(%d)", id)
	}
	it := c.Items[id]
	a := c.Attrs[it.Attr]
	if it.Value >= 0 {
		return fmt.Sprintf("%s = %s", a.Name, a.Values[it.Value])
	}
	return fmt.Sprintf("%s in [%.4g, %.4g]", a.Name, it.Lo, it.Hi)
}

// Errors returned by the package.
var (
	ErrNoRows  = errors.New("quant: empty table")
	ErrNoItems = errors.New("quant: no encodable attributes")
)

// Encode converts the table into a transaction database plus the codec.
func Encode(t *dataset.Table, cfg Config) (*transactions.DB, *Codec, error) {
	if t == nil || t.NumRows() == 0 {
		return nil, nil, ErrNoRows
	}
	bins := cfg.Bins
	if bins < 2 {
		bins = 4
	}
	maxSup := cfg.MaxSupport
	if maxSup <= 0 || maxSup > 1 {
		maxSup = 0.5
	}
	skip := make(map[int]bool, len(cfg.SkipColumns))
	for _, j := range cfg.SkipColumns {
		skip[j] = true
	}
	maxRows := int(maxSup * float64(t.NumRows()))

	codec := &Codec{Attrs: t.Attributes}
	// Per column: either value->item for categoricals, or the discretizer
	// plus interval items indexed by (loBin, hiBin).
	type colEnc struct {
		catItems []int // value index -> item id (categorical)
		disc     *dataset.Discretizer
		interval map[[2]int]int // [loBin, hiBin] -> item id
	}
	encs := make(map[int]*colEnc)
	for j, a := range t.Attributes {
		if skip[j] {
			continue
		}
		if a.Kind == dataset.Categorical {
			enc := &colEnc{catItems: make([]int, len(a.Values))}
			for v := range a.Values {
				enc.catItems[v] = len(codec.Items)
				codec.Items = append(codec.Items, Item{Attr: j, Value: v})
			}
			encs[j] = enc
			continue
		}
		disc, err := dataset.FitEqualFrequency(t, j, bins)
		if err != nil {
			continue // column unusable (all missing); skip
		}
		// Count rows per base bin to prune interval runs by support.
		binCount := make([]int, disc.NumBins())
		for _, row := range t.Rows {
			if b := disc.Bin(row[j]); b >= 0 {
				binCount[b]++
			}
		}
		// Interval bounds per bin.
		lo := make([]float64, disc.NumBins())
		hi := make([]float64, disc.NumBins())
		min, max := columnRange(t, j)
		for b := 0; b < disc.NumBins(); b++ {
			if b == 0 {
				lo[b] = min
			} else {
				lo[b] = disc.Cuts[b-1]
			}
			if b == disc.NumBins()-1 {
				hi[b] = max
			} else {
				hi[b] = disc.Cuts[b]
			}
		}
		enc := &colEnc{disc: disc, interval: make(map[[2]int]int)}
		for lb := 0; lb < disc.NumBins(); lb++ {
			rows := 0
			for hb := lb; hb < disc.NumBins(); hb++ {
				rows += binCount[hb]
				if rows > maxRows && !(lb == hb) {
					break // wider runs only grow
				}
				if rows > maxRows && lb == hb {
					continue // even the base bin is too popular
				}
				enc.interval[[2]int{lb, hb}] = len(codec.Items)
				codec.Items = append(codec.Items, Item{Attr: j, Value: -1, Lo: lo[lb], Hi: hi[hb]})
			}
		}
		encs[j] = enc
	}
	if len(codec.Items) == 0 {
		return nil, nil, ErrNoItems
	}

	db := transactions.NewDB()
	for _, row := range t.Rows {
		var items []int
		for j, enc := range encs {
			v := row[j]
			if dataset.IsMissing(v) {
				continue
			}
			if enc.catItems != nil {
				vi := int(v)
				if vi >= 0 && vi < len(enc.catItems) {
					items = append(items, enc.catItems[vi])
				}
				continue
			}
			b := enc.disc.Bin(v)
			for span, id := range enc.interval {
				if span[0] <= b && b <= span[1] {
					items = append(items, id)
				}
			}
		}
		if err := db.Add(items...); err != nil {
			return nil, nil, err
		}
	}
	return db, codec, nil
}

func columnRange(t *dataset.Table, j int) (min, max float64) {
	first := true
	for _, row := range t.Rows {
		v := row[j]
		if dataset.IsMissing(v) {
			continue
		}
		if first || v < min {
			min = v
		}
		if first || v > max {
			max = v
		}
		first = false
	}
	return min, max
}

// Rule is a quantitative association rule with readable conditions.
type Rule struct {
	Antecedent []string
	Consequent []string
	Support    int
	Confidence float64
	Lift       float64
}

// String renders the rule.
func (r Rule) String() string {
	return fmt.Sprintf("%s => %s (sup=%d, conf=%.3f, lift=%.3f)",
		strings.Join(r.Antecedent, " AND "), strings.Join(r.Consequent, " AND "),
		r.Support, r.Confidence, r.Lift)
}

// Mine encodes the table and mines quantitative rules: a level-wise
// search in which candidates combining two items of the same attribute
// are dropped *before* counting (the paper's formulation — nested
// intervals of one attribute always co-occur, so a post-filter would
// first enumerate an exponential candidate space), then rules via
// ap-genrules, decoded through the codec. Rules come back sorted by
// confidence then support.
func Mine(t *dataset.Table, cfg Config, minSupport, minConfidence float64) ([]Rule, *Codec, error) {
	db, codec, err := Encode(t, cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := mineDistinctAttr(db, codec, minSupport)
	if err != nil {
		return nil, nil, err
	}
	raw, err := assoc.GenerateRules(res, minConfidence)
	if err != nil {
		return nil, nil, err
	}
	out := make([]Rule, 0, len(raw))
	for _, r := range raw {
		out = append(out, Rule{
			Antecedent: describeAll(codec, r.Antecedent),
			Consequent: describeAll(codec, r.Consequent),
			Support:    r.Support,
			Confidence: r.Confidence,
			Lift:       r.Lift,
		})
	}
	return out, codec, nil
}

func describeAll(codec *Codec, items transactions.Itemset) []string {
	out := make([]string, len(items))
	for i, id := range items {
		out[i] = codec.Describe(id)
	}
	sort.Strings(out)
	return out
}

// mineDistinctAttr is the level-wise miner with the same-attribute
// candidate filter applied before counting.
func mineDistinctAttr(db *transactions.DB, codec *Codec, minSupport float64) (*assoc.Result, error) {
	if minSupport <= 0 || minSupport > 1 {
		return nil, fmt.Errorf("quant: minimum support %v outside (0, 1]", minSupport)
	}
	minCount := db.AbsoluteSupport(minSupport)
	res := &assoc.Result{MinCount: minCount, NumTx: db.Len()}

	// L1 by direct counting.
	counts := make([]int, db.NumItems())
	for _, tx := range db.Transactions {
		for _, item := range tx {
			counts[item]++
		}
	}
	var level []assoc.ItemsetCount
	for item, c := range counts {
		if c >= minCount {
			level = append(level, assoc.ItemsetCount{Items: transactions.Itemset{item}, Count: c})
		}
	}
	res.Passes = append(res.Passes, assoc.PassStat{K: 1, Candidates: db.NumItems(), Frequent: len(level)})
	for k := 2; len(level) > 0; k++ {
		res.Levels = append(res.Levels, level)
		prev := make([]transactions.Itemset, len(level))
		for i, ic := range level {
			prev[i] = ic.Items
		}
		var cands []transactions.Itemset
		for _, c := range assoc.AprioriGen(prev) {
			if distinctAttrs(c, codec) {
				cands = append(cands, c)
			}
		}
		if len(cands) == 0 {
			break
		}
		tally := make([]int, len(cands))
		for _, tx := range db.Transactions {
			for ci, c := range cands {
				if tx.ContainsAll(c) {
					tally[ci]++
				}
			}
		}
		level = nil
		for ci, c := range tally {
			if c >= minCount {
				level = append(level, assoc.ItemsetCount{Items: cands[ci], Count: c})
			}
		}
		res.Passes = append(res.Passes, assoc.PassStat{K: k, Candidates: len(cands), Frequent: len(level)})
	}
	return res, nil
}

func distinctAttrs(items transactions.Itemset, codec *Codec) bool {
	seen := make(map[int]bool, len(items))
	for _, id := range items {
		attr := codec.Items[id].Attr
		if seen[attr] {
			return false
		}
		seen[attr] = true
	}
	return true
}
