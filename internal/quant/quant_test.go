package quant

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

// ageTable builds a table where young people decisively buy product A.
func ageTable(t *testing.T) *dataset.Table {
	t.Helper()
	tbl := dataset.New(
		dataset.NewNumericAttribute("age"),
		dataset.NewCategoricalAttribute("product", "A", "B"),
	)
	for i := 0; i < 40; i++ {
		age := 20 + float64(i%10)                                // young: 20..29
		if err := tbl.AppendRow([]float64{age, 0}); err != nil { // buys A
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		age := 60 + float64(i%10)                                // old: 60..69
		if err := tbl.AppendRow([]float64{age, 1}); err != nil { // buys B
			t.Fatal(err)
		}
	}
	return tbl
}

func TestEncodeBasics(t *testing.T) {
	tbl := ageTable(t)
	db, codec, err := Encode(tbl, Config{Bins: 4})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != tbl.NumRows() {
		t.Fatalf("transactions = %d", db.Len())
	}
	if len(codec.Items) == 0 {
		t.Fatal("no items")
	}
	// Each transaction must include the product item and at least one
	// age-interval item.
	for i, tx := range db.Transactions {
		hasAge, hasProduct := false, false
		for _, id := range tx {
			if codec.Items[id].Attr == 0 {
				hasAge = true
			}
			if codec.Items[id].Attr == 1 {
				hasProduct = true
			}
		}
		if !hasAge || !hasProduct {
			t.Fatalf("tx %d missing attribute coverage: %v", i, tx)
		}
	}
}

func TestEncodeMaxSupportPrunesWideIntervals(t *testing.T) {
	tbl := ageTable(t)
	_, codec, err := Encode(tbl, Config{Bins: 4, MaxSupport: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	// No interval item may cover more than 30% of rows... verified via
	// the item bounds: the full range [20, 69] must not be an item.
	for _, it := range codec.Items {
		if it.Value >= 0 {
			continue
		}
		if it.Lo <= 20 && it.Hi >= 69 {
			t.Errorf("full-range interval survived: %+v", it)
		}
	}
}

func TestMineRecoversAgeProductRule(t *testing.T) {
	tbl := ageTable(t)
	rules, _, err := Mine(tbl, Config{Bins: 4}, 0.2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules found")
	}
	// Some rule must link a young-age interval to product A.
	found := false
	for _, r := range rules {
		ante := strings.Join(r.Antecedent, ";")
		cons := strings.Join(r.Consequent, ";")
		if strings.Contains(ante, "age in") && strings.Contains(cons, "product = A") {
			found = true
			if r.Confidence < 0.9 {
				t.Errorf("rule below confidence: %s", r)
			}
		}
		// No rule may mention the same attribute on both sides or twice.
		all := append(append([]string(nil), r.Antecedent...), r.Consequent...)
		attrs := map[string]int{}
		for _, cond := range all {
			attrs[strings.Fields(cond)[0]]++
		}
		for a, n := range attrs {
			if n > 1 {
				t.Errorf("attribute %s used %d times in %s", a, n, r)
			}
		}
	}
	if !found {
		for _, r := range rules {
			t.Logf("rule: %s", r)
		}
		t.Error("expected an age => product A rule")
	}
}

func TestMineOnBenchmarkPeople(t *testing.T) {
	tbl, err := synth.Classify(synth.ClassifyConfig{NumRows: 600, Function: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rules, codec, err := Mine(tbl, Config{Bins: 4, MaxSupport: 0.6}, 0.1, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(codec.Items) == 0 {
		t.Fatal("no items")
	}
	// F1 labels by age only, so among the confident rules there must be
	// one with an age condition implying a group value.
	found := false
	for _, r := range rules {
		if strings.Contains(strings.Join(r.Antecedent, ";"), "age in") &&
			strings.Contains(strings.Join(r.Consequent, ";"), "group =") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no age => group rule among %d rules", len(rules))
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, _, err := Encode(nil, Config{}); !errors.Is(err, ErrNoRows) {
		t.Errorf("nil error = %v", err)
	}
	empty := dataset.New(dataset.NewNumericAttribute("x"))
	if _, _, err := Encode(empty, Config{}); !errors.Is(err, ErrNoRows) {
		t.Errorf("empty error = %v", err)
	}
	skipped := dataset.New(dataset.NewNumericAttribute("x"))
	if err := skipped.AppendRow([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Encode(skipped, Config{SkipColumns: []int{0}}); !errors.Is(err, ErrNoItems) {
		t.Errorf("all-skipped error = %v", err)
	}
}

func TestCodecDescribe(t *testing.T) {
	tbl := ageTable(t)
	_, codec, err := Encode(tbl, Config{Bins: 2})
	if err != nil {
		t.Fatal(err)
	}
	for id := range codec.Items {
		d := codec.Describe(id)
		if !strings.Contains(d, "age") && !strings.Contains(d, "product") {
			t.Errorf("Describe(%d) = %q", id, d)
		}
	}
	if got := codec.Describe(-1); !strings.Contains(got, "item(") {
		t.Errorf("Describe(-1) = %q", got)
	}
}

func TestIntervalSupportMatchesRows(t *testing.T) {
	// The support of each interval item equals the number of rows whose
	// value falls inside the interval's bin run.
	tbl := ageTable(t)
	db, codec, err := Encode(tbl, Config{Bins: 4, MaxSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	colMax := 0.0
	for _, row := range tbl.Rows {
		if row[0] > colMax {
			colMax = row[0]
		}
	}
	for id, it := range codec.Items {
		if it.Value >= 0 || it.Attr != 0 {
			continue
		}
		// Interval semantics are half-open at the upper cut except for
		// the final bin, whose Hi is the inclusive column maximum.
		want := 0
		for _, row := range tbl.Rows {
			v := row[0]
			upperOK := v < it.Hi || (it.Hi >= colMax && v <= it.Hi)
			if v >= it.Lo && upperOK {
				want++
			}
		}
		got := 0
		for _, tx := range db.Transactions {
			if tx.Contains(id) {
				got++
			}
		}
		if got != want {
			t.Errorf("item %d [%g,%g]: encoded %d, direct %d", id, it.Lo, it.Hi, got, want)
		}
	}
}
