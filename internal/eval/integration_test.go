package eval

import (
	"testing"

	"repro/internal/bayes"
	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/rules"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/tree"
)

// TestSignificanceTreeVs1ROnComplexFunction ties the evaluation harness to
// the significance machinery: on F3 (age × education interaction) the tree
// must beat 1R with a significant paired t-test over fold accuracies.
func TestSignificanceTreeVs1ROnComplexFunction(t *testing.T) {
	tbl, err := synth.Classify(synth.ClassifyConfig{NumRows: 1000, Function: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	treeRes, err := CrossValidate(tbl, 10, 5, func(train *dataset.Table) (Classifier, error) {
		return tree.Build(train, tree.Config{Criterion: tree.GainRatio, MinLeaf: 2})
	})
	if err != nil {
		t.Fatal(err)
	}
	oneRRes, err := CrossValidate(tbl, 10, 5, func(train *dataset.Table) (Classifier, error) {
		return rules.Train1R(train)
	})
	if err != nil {
		t.Fatal(err)
	}
	tStat, df, p, err := stats.PairedTTest(treeRes.FoldAccuracy, oneRRes.FoldAccuracy)
	if err != nil {
		t.Fatal(err)
	}
	if df != 9 {
		t.Errorf("df = %d", df)
	}
	if tStat <= 0 {
		t.Errorf("t = %v, tree should dominate", tStat)
	}
	if p >= 0.01 {
		t.Errorf("p = %v, want < 0.01 for a ~30-point accuracy gap", p)
	}
}

// TestHarnessWorksWithEveryClassifierKind exercises CrossValidate with
// classifiers from four different packages, confirming the Classifier
// interface boundary.
func TestHarnessWorksWithEveryClassifierKind(t *testing.T) {
	tbl, err := synth.Classify(synth.ClassifyConfig{NumRows: 300, Function: 1, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	trainers := map[string]Trainer{
		"tree": func(train *dataset.Table) (Classifier, error) {
			return tree.Build(train, tree.Config{})
		},
		"bayes": func(train *dataset.Table) (Classifier, error) {
			return bayes.Train(train)
		},
		"knn": func(train *dataset.Table) (Classifier, error) {
			return knn.Train(train, 3, true)
		},
		"1R": func(train *dataset.Table) (Classifier, error) {
			return rules.Train1R(train)
		},
	}
	for name, tr := range trainers {
		res, err := CrossValidate(tbl, 3, 1, tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Accuracy() <= 0.5 {
			t.Errorf("%s: accuracy = %v", name, res.Accuracy())
		}
	}
}

// TestAUCAgreesWithAccuracyOrdering sanity-checks the AUC harness: a
// classifier with clearly higher accuracy on F1 also has higher
// one-vs-rest AUC than a near-random scorer.
func TestAUCAgreesWithAccuracyOrdering(t *testing.T) {
	train, err := synth.Classify(synth.ClassifyConfig{NumRows: 800, Function: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	test, err := synth.Classify(synth.ClassifyConfig{NumRows: 400, Function: 1, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	good, err := bayes.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	// A "bad" model: naive Bayes trained on labels shuffled by row order
	// (classes swapped for half the data).
	spoiled := train.Clone()
	for i := range spoiled.Rows {
		if i%2 == 0 {
			spoiled.Rows[i][spoiled.ClassIndex] = float64(1 - spoiled.Class(i))
		}
	}
	bad, err := bayes.Train(spoiled)
	if err != nil {
		t.Fatal(err)
	}
	goodAUC, err := AUCOneVsRest(good, test)
	if err != nil {
		t.Fatal(err)
	}
	badAUC, err := AUCOneVsRest(bad, test)
	if err != nil {
		t.Fatal(err)
	}
	if goodAUC <= badAUC {
		t.Errorf("good AUC %v <= spoiled AUC %v", goodAUC, badAUC)
	}
}
