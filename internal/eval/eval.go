// Package eval provides the model-evaluation harness used by the
// classifier experiments: stratified k-fold cross-validation, confusion
// matrices with the standard derived measures (accuracy, precision,
// recall, F1), one-vs-rest AUC, and paired significance testing via
// internal/stats. Cross-validation costs folds × one training plus one
// O(rows) scoring pass; everything is deterministic given the fold seed.
package eval

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dataset"
)

// Classifier is anything that predicts a class index for a row.
type Classifier interface {
	Predict(row []float64) int
}

// Trainer builds a classifier from a training table.
type Trainer func(train *dataset.Table) (Classifier, error)

// Errors returned by the harness.
var (
	ErrBadFolds = errors.New("eval: folds must be in [2, n]")
	ErrNoClass  = errors.New("eval: table has no categorical class attribute")
	ErrNoRows   = errors.New("eval: empty table")
	ErrShape    = errors.New("eval: mismatched slice lengths")
)

// ConfusionMatrix accumulates actual-vs-predicted counts.
// Cell [a][p] counts rows of actual class a predicted as p.
type ConfusionMatrix struct {
	Classes []string
	Counts  [][]int
}

// NewConfusionMatrix returns an empty matrix for the given class labels.
func NewConfusionMatrix(classes []string) *ConfusionMatrix {
	m := &ConfusionMatrix{Classes: classes, Counts: make([][]int, len(classes))}
	for i := range m.Counts {
		m.Counts[i] = make([]int, len(classes))
	}
	return m
}

// Add records one observation.
func (m *ConfusionMatrix) Add(actual, predicted int) {
	if actual >= 0 && actual < len(m.Counts) && predicted >= 0 && predicted < len(m.Counts) {
		m.Counts[actual][predicted]++
	}
}

// Total returns the number of observations.
func (m *ConfusionMatrix) Total() int {
	n := 0
	for _, row := range m.Counts {
		for _, c := range row {
			n += c
		}
	}
	return n
}

// Accuracy is the fraction of correct predictions.
func (m *ConfusionMatrix) Accuracy() float64 {
	total := m.Total()
	if total == 0 {
		return 0
	}
	correct := 0
	for i := range m.Counts {
		correct += m.Counts[i][i]
	}
	return float64(correct) / float64(total)
}

// Precision of class c: TP / (TP + FP). Returns 0 when never predicted.
func (m *ConfusionMatrix) Precision(c int) float64 {
	tp := m.Counts[c][c]
	predicted := 0
	for a := range m.Counts {
		predicted += m.Counts[a][c]
	}
	if predicted == 0 {
		return 0
	}
	return float64(tp) / float64(predicted)
}

// Recall of class c: TP / (TP + FN). Returns 0 when the class is absent.
func (m *ConfusionMatrix) Recall(c int) float64 {
	tp := m.Counts[c][c]
	actual := 0
	for _, n := range m.Counts[c] {
		actual += n
	}
	if actual == 0 {
		return 0
	}
	return float64(tp) / float64(actual)
}

// F1 of class c is the harmonic mean of precision and recall.
func (m *ConfusionMatrix) F1(c int) float64 {
	p, r := m.Precision(c), m.Recall(c)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MacroF1 averages F1 over classes.
func (m *ConfusionMatrix) MacroF1() float64 {
	if len(m.Classes) == 0 {
		return 0
	}
	total := 0.0
	for c := range m.Classes {
		total += m.F1(c)
	}
	return total / float64(len(m.Classes))
}

// String renders the matrix with row = actual, column = predicted.
func (m *ConfusionMatrix) String() string {
	out := "actual\\pred"
	for _, c := range m.Classes {
		out += fmt.Sprintf("\t%s", c)
	}
	out += "\n"
	for a, row := range m.Counts {
		out += m.Classes[a]
		for _, n := range row {
			out += fmt.Sprintf("\t%d", n)
		}
		out += "\n"
	}
	return out
}

// CVResult is the outcome of a cross-validation run.
type CVResult struct {
	Matrix *ConfusionMatrix
	// FoldAccuracy holds per-fold accuracies for significance testing.
	FoldAccuracy []float64
}

// Accuracy is the pooled accuracy over all folds.
func (r *CVResult) Accuracy() float64 { return r.Matrix.Accuracy() }

// CrossValidate runs stratified k-fold cross-validation: rows of each
// class are dealt round-robin across folds after a seeded shuffle, so fold
// class balance matches the dataset.
func CrossValidate(t *dataset.Table, folds int, seed int64, trainer Trainer) (*CVResult, error) {
	if t == nil || t.NumRows() == 0 {
		return nil, ErrNoRows
	}
	classAttr, err := t.ClassAttribute()
	if err != nil {
		return nil, ErrNoClass
	}
	if folds < 2 || folds > t.NumRows() {
		return nil, fmt.Errorf("%w: folds=%d n=%d", ErrBadFolds, folds, t.NumRows())
	}
	foldOf, err := StratifiedFolds(t, folds, seed)
	if err != nil {
		return nil, err
	}
	res := &CVResult{Matrix: NewConfusionMatrix(classAttr.Values)}
	for f := 0; f < folds; f++ {
		var trainIdx, testIdx []int
		for i, fi := range foldOf {
			if fi == f {
				testIdx = append(testIdx, i)
			} else {
				trainIdx = append(trainIdx, i)
			}
		}
		if len(testIdx) == 0 {
			continue
		}
		clf, err := trainer(t.Subset(trainIdx))
		if err != nil {
			return nil, fmt.Errorf("eval: fold %d: %w", f, err)
		}
		correct := 0
		for _, i := range testIdx {
			pred := clf.Predict(t.Rows[i])
			res.Matrix.Add(t.Class(i), pred)
			if pred == t.Class(i) {
				correct++
			}
		}
		res.FoldAccuracy = append(res.FoldAccuracy, float64(correct)/float64(len(testIdx)))
	}
	return res, nil
}

// StratifiedFolds assigns each row a fold id in [0, folds) with per-class
// round-robin dealing after a seeded shuffle.
func StratifiedFolds(t *dataset.Table, folds int, seed int64) ([]int, error) {
	if _, err := t.ClassAttribute(); err != nil {
		return nil, ErrNoClass
	}
	rng := rand.New(rand.NewSource(seed))
	byClass := make(map[int][]int)
	for i := range t.Rows {
		c := t.Class(i)
		byClass[c] = append(byClass[c], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	foldOf := make([]int, t.NumRows())
	next := 0
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			foldOf[i] = next % folds
			next++
		}
	}
	return foldOf, nil
}

// AUCBinary computes the area under the ROC curve given positive-class
// scores and boolean labels, by the rank statistic (ties get half credit).
func AUCBinary(scores []float64, positive []bool) (float64, error) {
	if len(scores) != len(positive) {
		return 0, ErrShape
	}
	nPos, nNeg := 0, 0
	for _, p := range positive {
		if p {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0, errors.New("eval: AUC needs both classes present")
	}
	type sc struct {
		s   float64
		pos bool
	}
	items := make([]sc, len(scores))
	for i := range scores {
		items[i] = sc{s: scores[i], pos: positive[i]}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].s < items[j].s })
	// Sum ranks of positives with average ranks for ties.
	rankSum := 0.0
	i := 0
	for i < len(items) {
		j := i
		for j < len(items) && items[j].s == items[i].s {
			j++
		}
		avgRank := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j) / 2
		for k := i; k < j; k++ {
			if items[k].pos {
				rankSum += avgRank
			}
		}
		i = j
	}
	auc := (rankSum - float64(nPos)*float64(nPos+1)/2) / (float64(nPos) * float64(nNeg))
	return auc, nil
}

// ProbaClassifier is a classifier that also yields class probabilities,
// enabling AUC computation.
type ProbaClassifier interface {
	Classifier
	Proba(row []float64) []float64
}

// AUCOneVsRest computes the macro-averaged one-vs-rest AUC of a
// probabilistic classifier on a table.
func AUCOneVsRest(clf ProbaClassifier, t *dataset.Table) (float64, error) {
	nClasses := t.NumClasses()
	if nClasses < 2 {
		return 0, ErrNoClass
	}
	scores := make([][]float64, nClasses)
	labels := make([][]bool, nClasses)
	for i, row := range t.Rows {
		p := clf.Proba(row)
		for c := 0; c < nClasses; c++ {
			scores[c] = append(scores[c], p[c])
			labels[c] = append(labels[c], t.Class(i) == c)
		}
	}
	total, counted := 0.0, 0
	for c := 0; c < nClasses; c++ {
		auc, err := AUCBinary(scores[c], labels[c])
		if err != nil {
			continue // class absent in the evaluation set
		}
		total += auc
		counted++
	}
	if counted == 0 {
		return 0, errors.New("eval: no class had both positives and negatives")
	}
	return total / float64(counted), nil
}
