package eval

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/bayes"
	"repro/internal/dataset"
	"repro/internal/synth"
	"repro/internal/tree"
)

func TestConfusionMatrixMeasures(t *testing.T) {
	m := NewConfusionMatrix([]string{"a", "b"})
	// actual a: 8 correct, 2 as b; actual b: 3 as a, 7 correct.
	for i := 0; i < 8; i++ {
		m.Add(0, 0)
	}
	for i := 0; i < 2; i++ {
		m.Add(0, 1)
	}
	for i := 0; i < 3; i++ {
		m.Add(1, 0)
	}
	for i := 0; i < 7; i++ {
		m.Add(1, 1)
	}
	if m.Total() != 20 {
		t.Errorf("Total = %d", m.Total())
	}
	if got := m.Accuracy(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := m.Precision(0); math.Abs(got-8.0/11.0) > 1e-12 {
		t.Errorf("Precision(0) = %v", got)
	}
	if got := m.Recall(0); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Recall(0) = %v", got)
	}
	p, r := 8.0/11.0, 0.8
	if got := m.F1(0); math.Abs(got-2*p*r/(p+r)) > 1e-12 {
		t.Errorf("F1(0) = %v", got)
	}
	if m.MacroF1() <= 0 || m.MacroF1() > 1 {
		t.Errorf("MacroF1 = %v", m.MacroF1())
	}
	s := m.String()
	if !strings.Contains(s, "a\t8\t2") {
		t.Errorf("String() = %q", s)
	}
}

func TestConfusionMatrixEdgeCases(t *testing.T) {
	m := NewConfusionMatrix([]string{"a", "b"})
	if m.Accuracy() != 0 {
		t.Error("empty accuracy should be 0")
	}
	if m.Precision(0) != 0 || m.Recall(0) != 0 || m.F1(0) != 0 {
		t.Error("empty per-class measures should be 0")
	}
	m.Add(-1, 0) // out of range ignored
	m.Add(0, 5)
	if m.Total() != 0 {
		t.Error("out-of-range adds must be ignored")
	}
}

func TestStratifiedFoldsBalanced(t *testing.T) {
	tbl, err := synth.Classify(synth.ClassifyConfig{NumRows: 400, Function: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	foldOf, err := StratifiedFolds(tbl, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Per-fold class distribution stays within ±2 of the per-fold share.
	perFold := make([]map[int]int, 10)
	for i := range perFold {
		perFold[i] = make(map[int]int)
	}
	classTotal := make(map[int]int)
	for i, f := range foldOf {
		perFold[f][tbl.Class(i)]++
		classTotal[tbl.Class(i)]++
	}
	for c, total := range classTotal {
		share := float64(total) / 10
		for f := range perFold {
			got := float64(perFold[f][c])
			if math.Abs(got-share) > 2 {
				t.Errorf("fold %d class %d count %v, share %v", f, c, got, share)
			}
		}
	}
}

func TestCrossValidateTree(t *testing.T) {
	tbl, err := synth.Classify(synth.ClassifyConfig{NumRows: 600, Function: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := CrossValidate(tbl, 5, 7, func(train *dataset.Table) (Classifier, error) {
		return tree.Build(train, tree.Config{MinLeaf: 5})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldAccuracy) != 5 {
		t.Fatalf("folds = %d", len(res.FoldAccuracy))
	}
	if res.Accuracy() < 0.85 {
		t.Errorf("CV accuracy = %v", res.Accuracy())
	}
	if res.Matrix.Total() != tbl.NumRows() {
		t.Errorf("matrix total = %d, want %d", res.Matrix.Total(), tbl.NumRows())
	}
}

func TestCrossValidateValidation(t *testing.T) {
	tbl, _ := synth.Classify(synth.ClassifyConfig{NumRows: 20, Function: 1, Seed: 3})
	trainer := func(train *dataset.Table) (Classifier, error) {
		return tree.Build(train, tree.Config{})
	}
	if _, err := CrossValidate(nil, 5, 1, trainer); !errors.Is(err, ErrNoRows) {
		t.Errorf("nil error = %v", err)
	}
	if _, err := CrossValidate(tbl, 1, 1, trainer); !errors.Is(err, ErrBadFolds) {
		t.Errorf("folds=1 error = %v", err)
	}
	if _, err := CrossValidate(tbl, 21, 1, trainer); !errors.Is(err, ErrBadFolds) {
		t.Errorf("folds>n error = %v", err)
	}
	noClass := dataset.New(dataset.NewNumericAttribute("x"))
	if err := noClass.AppendRow([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := CrossValidate(noClass, 2, 1, trainer); !errors.Is(err, ErrNoClass) {
		t.Errorf("no-class error = %v", err)
	}
}

func TestCrossValidateTrainerError(t *testing.T) {
	tbl, _ := synth.Classify(synth.ClassifyConfig{NumRows: 20, Function: 1, Seed: 4})
	boom := errors.New("boom")
	_, err := CrossValidate(tbl, 2, 1, func(train *dataset.Table) (Classifier, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("error = %v, want wrapped boom", err)
	}
}

func TestAUCBinary(t *testing.T) {
	// Perfect separation.
	auc, err := AUCBinary([]float64{0.1, 0.2, 0.8, 0.9}, []bool{false, false, true, true})
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Errorf("perfect AUC = %v", auc)
	}
	// Inverted.
	auc, _ = AUCBinary([]float64{0.9, 0.8, 0.2, 0.1}, []bool{false, false, true, true})
	if auc != 0 {
		t.Errorf("inverted AUC = %v", auc)
	}
	// All ties: 0.5.
	auc, _ = AUCBinary([]float64{0.5, 0.5, 0.5, 0.5}, []bool{false, false, true, true})
	if auc != 0.5 {
		t.Errorf("tied AUC = %v", auc)
	}
	// Known mixed case: scores 0.1(neg) 0.4(pos) 0.35(neg) 0.8(pos):
	// pairs: (0.4>0.1)+(0.4>0.35)+(0.8>0.1)+(0.8>0.35) = 4/4 = 1.
	auc, _ = AUCBinary([]float64{0.1, 0.4, 0.35, 0.8}, []bool{false, true, false, true})
	if auc != 1 {
		t.Errorf("mixed AUC = %v", auc)
	}
	if _, err := AUCBinary([]float64{1}, []bool{true, false}); !errors.Is(err, ErrShape) {
		t.Errorf("shape error = %v", err)
	}
	if _, err := AUCBinary([]float64{1, 2}, []bool{true, true}); err == nil {
		t.Error("single-class AUC should error")
	}
}

func TestAUCOneVsRest(t *testing.T) {
	train, err := synth.Classify(synth.ClassifyConfig{NumRows: 800, Function: 7, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	test, err := synth.Classify(synth.ClassifyConfig{NumRows: 400, Function: 7, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	nb, err := bayes.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	auc, err := AUCOneVsRest(nb, test)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.7 {
		t.Errorf("AUC = %v, want informative classifier", auc)
	}
	noClass := dataset.New(dataset.NewNumericAttribute("x"))
	if _, err := AUCOneVsRest(nb, noClass); err == nil {
		t.Error("no-class AUC should error")
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	tbl, _ := synth.Classify(synth.ClassifyConfig{NumRows: 300, Function: 2, Seed: 8})
	trainer := func(train *dataset.Table) (Classifier, error) {
		return tree.Build(train, tree.Config{MinLeaf: 3})
	}
	a, err := CrossValidate(tbl, 5, 99, trainer)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(tbl, 5, 99, trainer)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.FoldAccuracy {
		if a.FoldAccuracy[i] != b.FoldAccuracy[i] {
			t.Fatal("same seed produced different folds")
		}
	}
}
